// Package token defines the lexical tokens of the Devil interface definition
// language and source positions used across the compiler.
//
// The token inventory follows the published language fragment (RR-4136
// Figure 3 and §2.1): layered declarations of ports, registers and device
// variables, bit-string and bit-pattern literals, range and enum-mapping
// operators.
package token

import "fmt"

// Kind enumerates the lexical token classes.
type Kind int

// Token kinds. Literal classes matter to the mutation engine: mutations on
// literals must stay within the same semantic class (§3.2).
const (
	Illegal Kind = iota + 1
	EOF
	Comment

	Ident      // logitech_busmouse, sig_reg, ENABLE
	Int        // 42 (decimal)
	HexInt     // 0x3f6
	BitString  // '1010' or '10*1'   (0, 1, * only)
	BitPattern // '1..0000*'         (0, 1, *, .)

	// Keywords.
	KwDevice
	KwRegister
	KwVariable
	KwPrivate
	KwRead
	KwWrite
	KwMask
	KwPre
	KwVolatile
	KwTrigger
	KwSigned
	KwInt
	KwBit
	KwPort
	KwBool

	// Punctuation and operators.
	LParen   // (
	RParen   // )
	LBrace   // {
	RBrace   // }
	LBracket // [
	RBracket // ]
	At       // @
	Colon    // :
	Semi     // ;
	Comma    // ,
	Assign   // =
	Hash     // #
	DotDot   // ..
	MapTo    // =>
	MapFrom  // <=
	MapBoth  // <=>
)

var kindNames = map[Kind]string{
	Illegal:    "ILLEGAL",
	EOF:        "EOF",
	Comment:    "COMMENT",
	Ident:      "IDENT",
	Int:        "INT",
	HexInt:     "HEXINT",
	BitString:  "BITSTRING",
	BitPattern: "BITPATTERN",
	KwDevice:   "device",
	KwRegister: "register",
	KwVariable: "variable",
	KwPrivate:  "private",
	KwRead:     "read",
	KwWrite:    "write",
	KwMask:     "mask",
	KwPre:      "pre",
	KwVolatile: "volatile",
	KwTrigger:  "trigger",
	KwSigned:   "signed",
	KwInt:      "int",
	KwBit:      "bit",
	KwPort:     "port",
	KwBool:     "bool",
	LParen:     "(",
	RParen:     ")",
	LBrace:     "{",
	RBrace:     "}",
	LBracket:   "[",
	RBracket:   "]",
	At:         "@",
	Colon:      ":",
	Semi:       ";",
	Comma:      ",",
	Assign:     "=",
	Hash:       "#",
	DotDot:     "..",
	MapTo:      "=>",
	MapFrom:    "<=",
	MapBoth:    "<=>",
}

// String returns a printable name for the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// IsLiteral reports whether the kind carries literal text subject to literal
// mutation rules.
func (k Kind) IsLiteral() bool {
	switch k {
	case Int, HexInt, BitString, BitPattern:
		return true
	}
	return false
}

// IsKeyword reports whether the kind is a reserved word.
func (k Kind) IsKeyword() bool { return k >= KwDevice && k <= KwBool }

// keywords maps reserved identifier spellings to their kinds.
var keywords = map[string]Kind{
	"device":   KwDevice,
	"register": KwRegister,
	"variable": KwVariable,
	"private":  KwPrivate,
	"read":     KwRead,
	"write":    KwWrite,
	"mask":     KwMask,
	"pre":      KwPre,
	"volatile": KwVolatile,
	"trigger":  KwTrigger,
	"signed":   KwSigned,
	"int":      KwInt,
	"bit":      KwBit,
	"port":     KwPort,
	"bool":     KwBool,
}

// Lookup classifies an identifier spelling as a keyword or plain Ident.
func Lookup(ident string) Kind {
	if k, ok := keywords[ident]; ok {
		return k
	}
	return Ident
}

// Pos is a source position (1-based line and column, 0-based byte offset).
type Pos struct {
	Offset int
	Line   int
	Col    int
}

// String renders the position as line:col.
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// IsValid reports whether the position was set.
func (p Pos) IsValid() bool { return p.Line > 0 }

// Token is one lexeme: its kind, literal spelling, and position.
type Token struct {
	Kind Kind
	Lit  string
	Pos  Pos
}

// String renders the token for diagnostics.
func (t Token) String() string {
	if t.Kind.IsLiteral() || t.Kind == Ident {
		return fmt.Sprintf("%s(%q)", t.Kind, t.Lit)
	}
	return t.Kind.String()
}
