// Package codegen turns a checked Devil specification into executable stubs.
//
// The paper's compiler emits C: inline functions that perform the port I/O,
// masking, shifting and concatenation for each register and device variable,
// in either production mode (minimal checking, maximal speed) or debug mode
// (each Devil type becomes a distinct struct type so misuse is a
// compile-time error, and the stubs carry run-time assertions).
//
// Here the generated artefact is a Stubs object whose Get/Set/Eq methods
// implement exactly the semantics of those C functions against a simulated
// hw.Bus. The same object also publishes the typed interface (signatures of
// every stub and enum constant) that the strict mini-C front end uses to
// reproduce the compile-time checking of debug mode, and the C emitter in
// this package renders the Figure-4 style source text for inspection.
package codegen

import (
	"fmt"

	"repro/internal/devil/ast"
	"repro/internal/devil/check"
	"repro/internal/devil/token"
	"repro/internal/hw"
)

// Mode selects production or debug stub generation.
type Mode int

// Generation modes.
const (
	// Production stubs perform the raw I/O with no checking.
	Production Mode = iota + 1
	// Debug stubs verify types, value ranges and device behaviour at run
	// time, and expose distinct types so misuse fails to compile.
	Debug
)

// String names the mode.
func (m Mode) String() string {
	if m == Debug {
		return "debug"
	}
	return "production"
}

// Config parameterises stub generation for a concrete hardware context.
type Config struct {
	// Bus is the I/O fabric the stubs operate on.
	Bus *hw.Bus
	// Bases binds each port parameter of the device declaration to a
	// physical base port.
	Bases map[string]hw.Port
	// Mode selects production or debug stubs.
	Mode Mode
}

// Value is a typed Devil value: the Go analogue of the per-type C structs
// the debug stubs generate (Figure 4's Drive_t_ with filename, type and
// val fields). Type 0 denotes an untyped C integer.
type Value struct {
	// File is the specification the type belongs to (the __FILE__ field).
	File string
	// Type is the specification-unique type counter; 0 = untyped integer.
	Type int
	// Val is the raw bit representation (two's complement for signed).
	Val uint32
	// Raw carries the full-precision integer for untyped values, used for
	// range checking when an untyped C int flows into a sized variable.
	Raw int64
}

// Untyped reports whether the value is a plain C integer.
func (v Value) Untyped() bool { return v.Type == 0 }

// UntypedInt builds an untyped integer value, as produced by C integer
// expressions in the CDevil glue.
func UntypedInt(x int64) Value {
	return Value{Val: uint32(x), Raw: x}
}

// AssertError is a Devil run-time assertion failure (the paper's
// dil_assert/panic path). The kernel classifies it as "Run-time check" —
// the best possible outcome for an injected error.
type AssertError struct {
	Variable string
	Msg      string
}

// Error implements the error interface.
func (e *AssertError) Error() string {
	return fmt.Sprintf("Devil assertion failed: %s: %s", e.Variable, e.Msg)
}

// VarKind classifies a variable's Devil type for interface publication.
type VarKind int

// Variable type kinds, mirrored from the AST for consumers that should not
// depend on the AST package.
const (
	KindInt VarKind = iota + 1
	KindSignedInt
	KindEnum
	KindIntSet
	KindBool
)

// VarSig describes one public device variable for the strict C front end.
type VarSig struct {
	Name     string
	TypeID   int
	Kind     VarKind
	Width    int
	Readable bool
	Writable bool
	// Block reports that the variable is a data FIFO (a volatile,
	// whole-register integer variable), for which the compiler also
	// generates block-transfer stubs (get_block_X / set_block_X) that move
	// a run of values between the device and the kernel transfer buffer —
	// Devil's answer to the hand-written insw/outsw loops of C drivers.
	Block bool
	// Consts lists the enum constant names of this variable's type.
	Consts []string
}

// Interface is the typed surface a generated stub set exposes to drivers.
type Interface struct {
	SpecFile string
	// Vars lists the public variables in declaration order.
	Vars []VarSig
	// Consts maps every enum constant name to its variable.
	Consts map[string]string
}

// Stubs is the generated, executable stub set for one device instance.
type Stubs struct {
	filename string
	info     *check.Info
	cfg      Config
	// cache holds the last value written to each register, seeded with the
	// mask-fixed bits — the generated C keeps the same cache struct so that
	// read-modify-write of write-only registers is possible.
	cache map[string]uint32
	// consts maps enum constant names to their typed values.
	consts map[string]Value
	// constVar maps enum constant names to their variable.
	constVar map[string]string
	iface    *Interface
}

// Generate builds the stub set for a checked specification.
func Generate(filename string, info *check.Info, cfg Config) (*Stubs, error) {
	if cfg.Bus == nil {
		return nil, fmt.Errorf("generate %s: no bus", filename)
	}
	if cfg.Mode != Production && cfg.Mode != Debug {
		return nil, fmt.Errorf("generate %s: invalid mode %d", filename, int(cfg.Mode))
	}
	for _, p := range info.Device.Params {
		if _, ok := cfg.Bases[p.Name]; !ok {
			return nil, fmt.Errorf("generate %s: port parameter %s not bound to a base address",
				filename, p.Name)
		}
	}
	s := &Stubs{
		filename: filename,
		info:     info,
		cfg:      cfg,
		cache:    make(map[string]uint32, len(info.Registers)),
		consts:   make(map[string]Value),
		constVar: make(map[string]string),
	}
	for name, r := range info.Registers {
		s.cache[name] = fixedBits(r)
	}
	iface := &Interface{SpecFile: filename, Consts: make(map[string]string)}
	for _, name := range info.VarOrder {
		vi := info.Variables[name]
		if vi.Decl.Private {
			continue
		}
		sig := VarSig{
			Name:     name,
			TypeID:   info.TypeIDs[name],
			Kind:     kindOf(vi.Decl.Type),
			Width:    vi.Width,
			Readable: vi.Mode.CanRead(),
			Writable: vi.Mode.CanWrite(),
			Block: vi.Decl.Volatile && len(vi.Fragments) == 1 &&
				vi.Fragments[0].Frag.Whole() &&
				vi.Decl.Type.Kind == ast.TypeInt && !vi.Decl.Type.Signed &&
				(vi.Width == 16 || vi.Width == 32),
		}
		if vi.Decl.Type.Kind == ast.TypeEnum {
			for _, cs := range vi.Decl.Type.Cases {
				if prev, dup := s.constVar[cs.Name]; dup {
					return nil, fmt.Errorf("generate %s: enum constant %s defined by both %s and %s",
						filename, cs.Name, prev, name)
				}
				s.constVar[cs.Name] = name
				s.consts[cs.Name] = Value{
					File: filename,
					Type: sig.TypeID,
					Val:  encodePattern(cs.Pattern),
				}
				sig.Consts = append(sig.Consts, cs.Name)
				iface.Consts[cs.Name] = name
			}
		}
		iface.Vars = append(iface.Vars, sig)
	}
	s.iface = iface
	return s, nil
}

func kindOf(t *ast.TypeExpr) VarKind {
	switch t.Kind {
	case ast.TypeEnum:
		return KindEnum
	case ast.TypeIntSet:
		return KindIntSet
	case ast.TypeBool:
		return KindBool
	case ast.TypeInt:
		if t.Signed {
			return KindSignedInt
		}
		return KindInt
	}
	return KindInt
}

// encodePattern encodes an enum bit pattern as a concrete value, treating
// wildcard bits as zero (the generated C does the same when writing).
func encodePattern(pattern string) uint32 {
	var v uint32
	for i := 0; i < len(pattern); i++ {
		v <<= 1
		if pattern[i] == '1' {
			v |= 1
		}
	}
	return v
}

// fixedBits seeds a register cache with its mask's fixed write bits.
func fixedBits(r *ast.Register) uint32 {
	if r.Mask == "" {
		return 0
	}
	var v uint32
	for i := 0; i < len(r.Mask); i++ {
		v <<= 1
		if r.Mask[i] == '1' {
			v |= 1
		}
	}
	return v
}

// Interface returns the typed stub surface for the strict C front end.
func (s *Stubs) Interface() *Interface { return s.iface }

// Reset returns the register cache to its power-on seed — the state a
// freshly generated stub set starts from — so one generated stub set can
// be reused across boots instead of being regenerated per mutant.
func (s *Stubs) Reset() {
	for name, r := range s.info.Registers {
		s.cache[name] = fixedBits(r)
	}
}

// Accessor is a pre-resolved handle to one public device variable. A
// compiled driver resolves each get_X/set_X call site once and then
// dispatches through the handle, skipping the per-call name lookup (and
// its error paths) that Get/Set pay on every invocation.
type Accessor struct {
	s  *Stubs
	vi *check.VarInfo
}

// Accessor resolves a public device variable to a dispatch handle; ok is
// false for unknown or private variables (for which the compiler keeps
// the interpreter's undefined-call behaviour).
func (s *Stubs) Accessor(name string) (*Accessor, bool) {
	vi, ok := s.info.Variables[name]
	if !ok || vi.Decl.Private {
		return nil, false
	}
	return &Accessor{s: s, vi: vi}, true
}

// Readable reports whether the variable can be read.
func (a *Accessor) Readable() bool { return a.vi.Mode.CanRead() }

// Writable reports whether the variable can be written.
func (a *Accessor) Writable() bool { return a.vi.Mode.CanWrite() }

// ModeString renders the variable's access mode (for error messages that
// must match the unresolved Get/Set paths byte for byte).
func (a *Accessor) ModeString() string { return fmt.Sprintf("%s", a.vi.Mode) }

// Get reads the variable, with exactly the semantics of Stubs.Get minus
// the name lookup. The caller must have checked Readable.
func (a *Accessor) Get() (Value, error) {
	return a.s.getVar(a.vi)
}

// Set writes the variable, with exactly the semantics of Stubs.Set minus
// the name lookup. The caller must have checked Writable.
func (a *Accessor) Set(v Value) error {
	if a.s.cfg.Mode == Debug {
		if err := a.s.assertWriteValue(a.vi, v); err != nil {
			return err
		}
	}
	return a.s.setVar(a.vi, v)
}

// Mode returns the generation mode.
func (s *Stubs) Mode() Mode { return s.cfg.Mode }

// SpecFile returns the specification filename.
func (s *Stubs) SpecFile() string { return s.filename }

// Const returns the typed value of an enum constant.
func (s *Stubs) Const(name string) (Value, bool) {
	v, ok := s.consts[name]
	return v, ok
}

// ConstNames returns the enum constant names in no particular order.
func (s *Stubs) ConstNames() []string {
	out := make([]string, 0, len(s.consts))
	for name := range s.consts {
		out = append(out, name)
	}
	return out
}

// TypeID returns the specification-unique type counter of a variable.
func (s *Stubs) TypeID(varName string) (int, bool) {
	id, ok := s.info.TypeIDs[varName]
	return id, ok
}

// lookupVar fetches a public variable, rejecting private ones.
func (s *Stubs) lookupVar(name string) (*check.VarInfo, error) {
	vi, ok := s.info.Variables[name]
	if !ok {
		return nil, fmt.Errorf("no device variable %s in %s", name, s.filename)
	}
	if vi.Decl.Private {
		return nil, fmt.Errorf("device variable %s is private to %s", name, s.filename)
	}
	return vi, nil
}

// width returns the hw access width for a register size.
func accessWidth(size int) hw.AccessWidth {
	switch {
	case size <= 8:
		return hw.Width8
	case size <= 16:
		return hw.Width16
	default:
		return hw.Width32
	}
}

// runPre executes the pre-actions of a register: each sets a (usually
// private) variable to a constant before the guarded port is touched.
func (s *Stubs) runPre(r *ast.Register) error {
	for _, pa := range r.Pre {
		vi, ok := s.info.Variables[pa.Var]
		if !ok {
			return fmt.Errorf("pre-action of %s: unknown variable %s", r.Name, pa.Var)
		}
		if err := s.setVar(vi, Value{Val: uint32(pa.Value), Raw: pa.Value}); err != nil {
			return err
		}
	}
	return nil
}

// writeMaskFix applies the mask's write semantics to a register value:
// '1' forces the bit set, '0' and '*' force it clear, '.' keeps it.
func writeMaskFix(r *ast.Register, v uint32) uint32 {
	if r.Mask == "" {
		return v
	}
	for bit := 0; bit < r.Size; bit++ {
		idx := len(r.Mask) - 1 - bit
		switch r.Mask[idx] {
		case '1':
			v |= 1 << uint(bit)
		case '0', '*':
			v &^= 1 << uint(bit)
		}
	}
	return v
}

// readReg performs the port read for a register, including pre-actions.
func (s *Stubs) readReg(r *ast.Register) (uint32, error) {
	if err := s.runPre(r); err != nil {
		return 0, err
	}
	base, ok := s.cfg.Bases[r.ReadPort.Name]
	if !ok {
		return 0, fmt.Errorf("register %s: unbound port %s", r.Name, r.ReadPort.Name)
	}
	return s.cfg.Bus.Read(base+hw.Port(r.ReadPort.Offset), accessWidth(r.Size))
}

// writeReg performs the port write for a register, including pre-actions,
// mask fixing and cache maintenance.
func (s *Stubs) writeReg(r *ast.Register, v uint32) error {
	if err := s.runPre(r); err != nil {
		return err
	}
	base, ok := s.cfg.Bases[r.WritePort.Name]
	if !ok {
		return fmt.Errorf("register %s: unbound port %s", r.Name, r.WritePort.Name)
	}
	v = writeMaskFix(r, v)
	if err := s.cfg.Bus.Write(base+hw.Port(r.WritePort.Offset), accessWidth(r.Size), v); err != nil {
		return err
	}
	s.cache[r.Name] = v
	return nil
}

// Get reads a device variable through its stub, performing pre-actions,
// port reads, bit extraction and fragment concatenation. In debug mode the
// value is verified against the variable's type before being returned.
func (s *Stubs) Get(name string) (Value, error) {
	vi, err := s.lookupVar(name)
	if err != nil {
		return Value{}, err
	}
	if !vi.Mode.CanRead() {
		return Value{}, fmt.Errorf("device variable %s is %s", name, vi.Mode)
	}
	return s.getVar(vi)
}

func (s *Stubs) getVar(vi *check.VarInfo) (Value, error) {
	name := vi.Decl.Name
	var assembled uint32
	for _, fi := range vi.Fragments {
		raw, err := s.readReg(fi.Reg)
		if err != nil {
			return Value{}, err
		}
		field := (raw >> uint(fi.Lo)) & loMask(fi.Width)
		assembled = assembled<<uint(fi.Width) | field
	}
	v := Value{File: s.filename, Type: s.info.TypeIDs[name], Val: assembled}
	if s.cfg.Mode == Debug {
		if err := s.assertReadValue(vi, assembled); err != nil {
			return Value{}, err
		}
	}
	return v, nil
}

// assertReadValue implements the debug-mode assertion that a value read
// from the device matches the variable's declared type: an out-of-set
// integer or an enum value no read pattern covers means either the
// specification is wrong or the device misbehaves (§2.3).
func (s *Stubs) assertReadValue(vi *check.VarInfo, val uint32) error {
	t := vi.Decl.Type
	name := vi.Decl.Name
	switch t.Kind {
	case ast.TypeIntSet:
		for _, allowed := range t.Set {
			if uint32(allowed) == val {
				return nil
			}
		}
		return &AssertError{Variable: name,
			Msg: fmt.Sprintf("read value %d outside declared set %s", val, t)}
	case ast.TypeEnum:
		for _, cs := range t.Cases {
			if cs.Dir == token.MapTo {
				continue // write-only mapping
			}
			if patternMatches(cs.Pattern, val, vi.Width) {
				return nil
			}
		}
		return &AssertError{Variable: name,
			Msg: fmt.Sprintf("read value %d matches no read mapping of %s", val, t)}
	}
	return nil
}

func patternMatches(pattern string, value uint32, width int) bool {
	if len(pattern) != width {
		return false
	}
	for i := 0; i < width; i++ {
		bit := (value >> uint(width-1-i)) & 1
		switch pattern[i] {
		case '0':
			if bit != 0 {
				return false
			}
		case '1':
			if bit != 1 {
				return false
			}
		}
	}
	return true
}

// Set writes a device variable through its stub: the value is type-checked
// (debug mode), split into fragments, merged into each target register via
// the register cache, mask-fixed and written out.
func (s *Stubs) Set(name string, v Value) error {
	vi, err := s.lookupVar(name)
	if err != nil {
		return err
	}
	if !vi.Mode.CanWrite() {
		return fmt.Errorf("device variable %s is %s", name, vi.Mode)
	}
	if s.cfg.Mode == Debug {
		if err := s.assertWriteValue(vi, v); err != nil {
			return err
		}
	}
	return s.setVar(vi, v)
}

// assertWriteValue implements the debug-mode write assertions: type
// identity for enum-typed variables (the dil struct check) and value-range
// membership for integer-typed ones.
func (s *Stubs) assertWriteValue(vi *check.VarInfo, v Value) error {
	t := vi.Decl.Type
	name := vi.Decl.Name
	wantType := s.info.TypeIDs[name]
	if !v.Untyped() {
		if v.File != s.filename || v.Type != wantType {
			return &AssertError{Variable: name,
				Msg: fmt.Sprintf("type mismatch: value has type #%d (%s), variable requires #%d (%s)",
					v.Type, v.File, wantType, s.filename)}
		}
		return nil
	}
	// Untyped C integer flowing into a sized variable: range check.
	switch t.Kind {
	case ast.TypeEnum:
		return &AssertError{Variable: name,
			Msg: fmt.Sprintf("untyped integer %d written to enumerated variable", v.Raw)}
	case ast.TypeIntSet:
		for _, allowed := range t.Set {
			if allowed == v.Raw {
				return nil
			}
		}
		return &AssertError{Variable: name,
			Msg: fmt.Sprintf("value %d outside declared set %s", v.Raw, t)}
	case ast.TypeBool:
		if v.Raw == 0 || v.Raw == 1 {
			return nil
		}
		return &AssertError{Variable: name,
			Msg: fmt.Sprintf("value %d written to bool variable", v.Raw)}
	case ast.TypeInt:
		if t.Signed {
			lo := -(int64(1) << uint(vi.Width-1))
			hi := int64(1)<<uint(vi.Width-1) - 1
			if v.Raw < lo || v.Raw > hi {
				return &AssertError{Variable: name,
					Msg: fmt.Sprintf("value %d outside signed int(%d) range [%d..%d]",
						v.Raw, vi.Width, lo, hi)}
			}
			return nil
		}
		if v.Raw < 0 || v.Raw >= int64(1)<<uint(vi.Width) {
			return &AssertError{Variable: name,
				Msg: fmt.Sprintf("value %d outside int(%d) range [0..%d]",
					v.Raw, vi.Width, int64(1)<<uint(vi.Width)-1)}
		}
	}
	return nil
}

func (s *Stubs) setVar(vi *check.VarInfo, v Value) error {
	// Distribute the assembled value over the fragments, most-significant
	// fragment first.
	remaining := vi.Width
	val := v.Val & loMask(vi.Width)
	for _, fi := range vi.Fragments {
		remaining -= fi.Width
		field := (val >> uint(remaining)) & loMask(fi.Width)
		r := fi.Reg
		merged := s.cache[r.Name]&^(loMask(fi.Width)<<uint(fi.Lo)) | field<<uint(fi.Lo)
		if err := s.writeReg(r, merged); err != nil {
			return err
		}
	}
	return nil
}

// Eq implements the paper's dil_eq macro: in debug mode it asserts that the
// two values carry the same Devil type before comparing representations; in
// production mode it compares raw values only.
func (s *Stubs) Eq(a, b Value) (bool, error) {
	if s.cfg.Mode == Debug && !a.Untyped() && !b.Untyped() {
		if a.File != b.File || a.Type != b.Type {
			return false, &AssertError{Variable: "dil_eq",
				Msg: fmt.Sprintf("comparing values of different Devil types #%d (%s) and #%d (%s)",
					a.Type, a.File, b.Type, b.File)}
		}
	}
	return a.Val == b.Val, nil
}

func loMask(width int) uint32 {
	if width >= 32 {
		return 0xffffffff
	}
	return 1<<uint(width) - 1
}
