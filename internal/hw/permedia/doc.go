// Package permedia models the 3Dlabs Permedia 2 control aperture of
// specs/permedia.dil: reset, interrupt enable/flag pairs, the DMA engine,
// the video timing generator with a free-running line counter, and the
// graphics-processor input FIFO.
package permedia
