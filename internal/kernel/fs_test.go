package kernel_test

import (
	"testing"
	"testing/quick"

	"repro/internal/hw"
	"repro/internal/kernel"
)

// imageDriver serves reads and writes directly from an FSImage — a
// perfect, bug-free "driver" for exercising the mount path.
type imageDriver struct {
	img *kernel.FSImage
}

func (d *imageDriver) ReadSectors(lba uint32, count int) ([]byte, error) {
	out := make([]byte, 0, count*kernel.SectorSize)
	for i := 0; i < count; i++ {
		idx := int(lba) + i
		if idx < len(d.img.Sectors) {
			out = append(out, d.img.Sectors[idx]...)
		} else {
			out = append(out, make([]byte, kernel.SectorSize)...)
		}
	}
	return out, nil
}

func (d *imageDriver) WriteSectors(lba uint32, data []byte) error {
	for off := 0; off < len(data); off += kernel.SectorSize {
		idx := int(lba) + off/kernel.SectorSize
		if idx < len(d.img.Sectors) {
			copy(d.img.Sectors[idx], data[off:])
		}
	}
	return nil
}

func buildTestImage(t *testing.T) (*kernel.FSImage, *kernel.FSImage) {
	t.Helper()
	img, err := kernel.BuildImage(kernel.DefaultFiles(), 8)
	if err != nil {
		t.Fatal(err)
	}
	return img, img.Clone()
}

func TestMountCleanImage(t *testing.T) {
	img, pristine := buildTestImage(t)
	k := kernel.New(&hw.Clock{})
	rep, err := k.MountAndCheck(&imageDriver{img: img}, pristine, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Mounted {
		t.Fatal("clean image did not mount")
	}
	if rep.Damaged() {
		t.Errorf("clean image reported damage: %+v", rep)
	}
	if rep.FilesOK != len(kernel.DefaultFiles()) {
		t.Errorf("files ok = %d, want %d", rep.FilesOK, len(kernel.DefaultFiles()))
	}
	// The dirty flag is the only post-boot difference.
	damaged, lost := kernel.AuditDisk(img, pristine)
	if len(damaged) != 0 || lost {
		t.Errorf("audit flagged a clean boot: %v %v", damaged, lost)
	}
}

func TestMountBadMagic(t *testing.T) {
	img, pristine := buildTestImage(t)
	img.Sectors[0][510] = 0 // destroy the MBR magic
	k := kernel.New(&hw.Clock{})
	rep, err := k.MountAndCheck(&imageDriver{img: img}, pristine, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mounted || !rep.Damaged() {
		t.Errorf("bad MBR mounted: %+v", rep)
	}
}

func TestMountGeometryCheck(t *testing.T) {
	img, pristine := buildTestImage(t)
	k := kernel.New(&hw.Clock{})
	// The partition extends past a drive that claims only 4 sectors.
	rep, err := k.MountAndCheck(&imageDriver{img: img}, pristine, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mounted || !rep.Damaged() {
		t.Errorf("impossible geometry mounted: %+v", rep)
	}
}

func TestCorruptFileDetected(t *testing.T) {
	img, pristine := buildTestImage(t)
	// Flip one byte in the first file's data area.
	img.Sectors[pristine.PartStart+2][100] ^= 0xff
	k := kernel.New(&hw.Clock{})
	rep, err := k.MountAndCheck(&imageDriver{img: img}, pristine, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FilesBad == 0 {
		t.Error("corrupt file escaped the checksum")
	}
}

// TestAnySingleByteFileCorruptionDetected property: flipping any byte of
// any file-data sector is caught by mount checksums or the disk audit.
func TestAnySingleByteFileCorruptionDetected(t *testing.T) {
	prop := func(sectorSeed, byteOff uint16, flip byte) bool {
		if flip == 0 {
			return true // not a corruption
		}
		img, pristine := buildTestImage(t)
		dataStart := int(pristine.PartStart) + 2
		nData := len(img.Sectors) - dataStart - 4 // exclude the slack
		sector := dataStart + int(sectorSeed)%nData
		off := int(byteOff) % kernel.SectorSize
		img.Sectors[sector][off] ^= flip
		k := kernel.New(&hw.Clock{})
		rep, err := k.MountAndCheck(&imageDriver{img: img}, pristine, 0)
		if err != nil {
			return false
		}
		damaged, _ := kernel.AuditDisk(img, pristine)
		return rep.Damaged() || len(damaged) > 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestAuditDetectsPartitionTableLoss(t *testing.T) {
	img, pristine := buildTestImage(t)
	img.Sectors[0][0] = 0x42
	damaged, lost := kernel.AuditDisk(img, pristine)
	if !lost {
		t.Error("partition table loss not flagged")
	}
	if len(damaged) != 1 || damaged[0] != 0 {
		t.Errorf("damaged = %v, want [0]", damaged)
	}
}

func TestAuditAcceptsDirtyOrCleanSuperblock(t *testing.T) {
	img, pristine := buildTestImage(t)
	// Clean superblock (mount never ran): no damage.
	if damaged, _ := kernel.AuditDisk(img, pristine); len(damaged) != 0 {
		t.Errorf("clean superblock flagged: %v", damaged)
	}
	// Dirty superblock (mount ran): no damage either.
	img.Sectors[pristine.PartStart][8] = 1
	if damaged, _ := kernel.AuditDisk(img, pristine); len(damaged) != 0 {
		t.Errorf("dirty superblock flagged: %v", damaged)
	}
	// Any other superblock change is damage.
	img.Sectors[pristine.PartStart][0] = 0x42
	if damaged, _ := kernel.AuditDisk(img, pristine); len(damaged) != 1 {
		t.Errorf("corrupt superblock not flagged: %v", damaged)
	}
}

func TestBuildImageValidation(t *testing.T) {
	if _, err := kernel.BuildImage(nil, 0); err == nil {
		t.Error("partition at LBA 0 accepted")
	}
	long := []kernel.File{{Name: "this-name-is-way-too-long", Data: []byte("x")}}
	if _, err := kernel.BuildImage(long, 8); err == nil {
		t.Error("over-long file name accepted")
	}
	many := make([]kernel.File, 17)
	for i := range many {
		many[i] = kernel.File{Name: string(rune('a' + i)), Data: []byte("x")}
	}
	if _, err := kernel.BuildImage(many, 8); err == nil {
		t.Error("oversized file table accepted")
	}
}
