package parser_test

import (
	"testing"

	"repro/internal/devil/ast"
	"repro/internal/devil/parser"
	"repro/internal/devil/token"
)

func mustParse(t *testing.T, src string) *ast.Device {
	t.Helper()
	dev, errs := parser.Parse(src)
	if len(errs) != 0 {
		t.Fatalf("parse: %v", errs)
	}
	return dev
}

func TestParseDeviceHeader(t *testing.T) {
	dev := mustParse(t, `device d (a : bit[8] port @ {0..3}, b : bit[16] port @ {0..0}) {
		register r = a @ 0 : bit[8];
		variable v = r : int(8);
	}`)
	if dev.Name != "d" || len(dev.Params) != 2 {
		t.Fatalf("header: %s, %d params", dev.Name, len(dev.Params))
	}
	p := dev.Params[1]
	if p.Name != "b" || p.DataBits != 16 || p.RangeLo != 0 || p.RangeHi != 0 {
		t.Errorf("param b = %+v", p)
	}
}

func TestParseRegisterForms(t *testing.T) {
	dev := mustParse(t, `device d (a : bit[8] port @ {0..3}) {
		register rw = a @ 0 : bit[8];
		register ro = read a @ 1 : bit[8];
		register wo = write a @ 2, mask '1..00000' : bit[8];
		register dual = read a @ 3, write a @ 3, pre {v = 2} : bit[8];
		variable v = wo[6..5] : int(2);
		variable x = rw # ro # dual : int(24);
	}`)
	rw := dev.Register("rw")
	if rw.Mode != ast.ReadWrite || rw.ReadPort != rw.WritePort {
		t.Errorf("rw register: %+v", rw)
	}
	ro := dev.Register("ro")
	if ro.Mode != ast.ReadOnly || ro.WritePort != nil {
		t.Errorf("ro register: mode %v", ro.Mode)
	}
	wo := dev.Register("wo")
	if wo.Mode != ast.WriteOnly || wo.Mask != "1..00000" {
		t.Errorf("wo register: %+v", wo)
	}
	dual := dev.Register("dual")
	if dual.Mode != ast.ReadWrite || dual.ReadPort == dual.WritePort {
		t.Errorf("dual register: %+v", dual)
	}
	if len(dual.Pre) != 1 || dual.Pre[0].Var != "v" || dual.Pre[0].Value != 2 {
		t.Errorf("pre-actions: %+v", dual.Pre)
	}
}

func TestMaskImpliesSize(t *testing.T) {
	dev := mustParse(t, `device d (a : bit[8] port @ {0..0}) {
		register r = a @ 0, mask '1.1.....';
		variable v = r[6] : bool;
		variable w = r[4..0] : int(5);
	}`)
	if r := dev.Register("r"); r.Size != 8 {
		t.Errorf("mask-implied size = %d, want 8", r.Size)
	}
}

func TestParseVariableForms(t *testing.T) {
	dev := mustParse(t, `device d (a : bit[8] port @ {0..1}) {
		register h = a @ 0 : bit[8];
		register l = a @ 1 : bit[8];
		private variable idx = h[7..6] : int(2);
		variable s = h[5..0] # l[7..2], volatile : signed int(12);
		variable f = l[1], write trigger : { ON => '1', OFF => '0' };
		variable g = l[0] : int {0, 1};
	}`)
	idx := dev.Variable("idx")
	if !idx.Private {
		t.Error("idx should be private")
	}
	s := dev.Variable("s")
	if !s.Volatile || len(s.Fragments) != 2 || !s.Type.Signed || s.Type.Bits != 12 {
		t.Errorf("variable s: %+v type %+v", s, s.Type)
	}
	if s.Fragments[0].String() != "h[5..0]" || s.Fragments[1].String() != "l[7..2]" {
		t.Errorf("fragments: %v %v", s.Fragments[0], s.Fragments[1])
	}
	f := dev.Variable("f")
	if !f.WriteTrigger || f.Type.Kind != ast.TypeEnum || len(f.Type.Cases) != 2 {
		t.Errorf("variable f: %+v", f)
	}
	if f.Type.Cases[0].Dir != token.MapTo {
		t.Errorf("enum dir = %v", f.Type.Cases[0].Dir)
	}
	g := dev.Variable("g")
	if g.Type.Kind != ast.TypeIntSet || len(g.Type.Set) != 2 {
		t.Errorf("variable g: %+v", g.Type)
	}
}

func TestIntSetRangeExpansion(t *testing.T) {
	dev := mustParse(t, `device d (a : bit[8] port @ {0..0}) {
		register r = a @ 0, mask '00000...';
		variable v = r[2..0] : int {0..2, 5};
	}`)
	set := dev.Variable("v").Type.Set
	want := []int64{0, 1, 2, 5}
	if len(set) != len(want) {
		t.Fatalf("set = %v, want %v", set, want)
	}
	for i := range want {
		if set[i] != want[i] {
			t.Errorf("set[%d] = %d, want %d", i, set[i], want[i])
		}
	}
}

func TestParseErrorRecovery(t *testing.T) {
	// A malformed register declaration must not take the following
	// declarations down with it.
	src := `device d (a : bit[8] port @ {0..1}) {
		register broken = = : bit[8];
		register ok = a @ 1 : bit[8];
		variable v = ok : int(8);
	}`
	dev, errs := parser.Parse(src)
	if len(errs) == 0 {
		t.Fatal("no errors for malformed declaration")
	}
	if dev.Register("ok") == nil {
		t.Error("parser did not recover to the next declaration")
	}
}

func TestParseErrorCases(t *testing.T) {
	cases := []string{
		``,
		`device`,
		`device d`,
		`device d () {}`, // no params is a check error but header must parse
		`device d (a : bit[8] port @ {0..1}) { junk; }`,   // bad declaration
		`device d (a : bit[8] port @ {0..1}) {} trailing`, // trailing tokens
		`device d (a : bit[8]) {}`,                        // missing port clause
	}
	for _, src := range cases[:3] {
		if _, errs := parser.Parse(src); len(errs) == 0 {
			t.Errorf("%q parsed without errors", src)
		}
	}
	for _, src := range cases[4:] {
		if _, errs := parser.Parse(src); len(errs) == 0 {
			t.Errorf("%q parsed without errors", src)
		}
	}
}
