package cmut

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cdriver/cast"
	"repro/internal/cdriver/cparser"
	"repro/internal/cdriver/ctoken"
	"repro/internal/devil/codegen"
	"repro/internal/mutation"
)

// OperatorClasses is the reconstructed Table 1: for each mutable operator,
// the operators that may replace it.
var OperatorClasses = map[ctoken.Kind][]ctoken.Kind{
	// Bitwise class, plus the |↔|| and &↔&& confusions of §3.3.
	ctoken.Or:  {ctoken.And, ctoken.Xor, ctoken.LOr},
	ctoken.And: {ctoken.Or, ctoken.Xor, ctoken.LAnd},
	ctoken.Xor: {ctoken.Or, ctoken.And},
	// Logical class.
	ctoken.LOr:  {ctoken.LAnd, ctoken.Or},
	ctoken.LAnd: {ctoken.LOr, ctoken.And},
	// Shifts.
	ctoken.Shl: {ctoken.Shr},
	ctoken.Shr: {ctoken.Shl},
	// Additive.
	ctoken.Add: {ctoken.Sub},
	ctoken.Sub: {ctoken.Add},
	// Relational/equality class.
	ctoken.Eq: {ctoken.Ne, ctoken.Lt, ctoken.Gt, ctoken.Le, ctoken.Ge},
	ctoken.Ne: {ctoken.Eq, ctoken.Lt, ctoken.Gt, ctoken.Le, ctoken.Ge},
	ctoken.Lt: {ctoken.Gt, ctoken.Le, ctoken.Ge, ctoken.Eq, ctoken.Ne},
	ctoken.Gt: {ctoken.Lt, ctoken.Le, ctoken.Ge, ctoken.Eq, ctoken.Ne},
	ctoken.Le: {ctoken.Ge, ctoken.Lt, ctoken.Gt, ctoken.Eq, ctoken.Ne},
	ctoken.Ge: {ctoken.Le, ctoken.Lt, ctoken.Gt, ctoken.Eq, ctoken.Ne},
	// Compound assignment forms of the same classes.
	ctoken.OrAssign:  {ctoken.AndAssign, ctoken.XorAssign},
	ctoken.AndAssign: {ctoken.OrAssign, ctoken.XorAssign},
	ctoken.XorAssign: {ctoken.OrAssign, ctoken.AndAssign},
	ctoken.ShlAssign: {ctoken.ShrAssign},
	ctoken.ShrAssign: {ctoken.ShlAssign},
	ctoken.AddAssign: {ctoken.SubAssign},
	ctoken.SubAssign: {ctoken.AddAssign},
}

// IdentClass is the semantic class of an identifier for CDevil mutation.
type IdentClass string

// Identifier classes (§3.3: "mutations for these identifiers are always
// performed within the same semantic class (e.g., set function, get
// function)").
const (
	ClassAny    IdentClass = "any" // C mode: everything is an integer
	ClassGetter IdentClass = "get-stub"
	ClassSetter IdentClass = "set-stub"
	ClassConst  IdentClass = "devil-const"
	ClassMacro  IdentClass = "macro"
	ClassPlain  IdentClass = "plain"
)

// SiteKind classifies a mutation site.
type SiteKind string

// Site kinds.
const (
	SiteLiteral  SiteKind = "literal"
	SiteOperator SiteKind = "operator"
	SiteIdent    SiteKind = "identifier"
)

// Site is one mutable token position.
type Site struct {
	// Index is the token index in the analysed stream.
	Index int
	// Pos is the source position (dead-code detection keys on Pos.Line).
	Pos ctoken.Pos
	// Kind classifies the site.
	Kind SiteKind
	// Class is the identifier class (identifier sites only).
	Class IdentClass
}

// Mutant is one single-token substitution.
type Mutant struct {
	// ID is the 0-based mutant number within the enumeration.
	ID int
	// SiteIndex indexes into the Sites slice of the Result.
	SiteIndex int
	// TokenIndex is the position of the replaced token.
	TokenIndex int
	// Replacement is the substituted token (same position, new content).
	Replacement ctoken.Token
	// Description is a human-readable summary.
	Description string
}

// Result is a full mutant enumeration for one driver source.
type Result struct {
	Tokens  []ctoken.Token
	Sites   []Site
	Mutants []Mutant
}

// Apply materialises a mutant's token stream (copy with one substitution).
func (r *Result) Apply(m Mutant) []ctoken.Token {
	out := make([]ctoken.Token, len(r.Tokens))
	copy(out, r.Tokens)
	out[m.TokenIndex] = m.Replacement
	return out
}

// StreamKey identifies a mutant's full token stream without
// materialising it: all mutants share the pristine stream and differ in
// exactly one token, so (position, replacement kind, replacement text)
// identifies the stream completely — and exactly, with no hash-collision
// risk a campaign could silently mis-record through. Two mutants of the
// same enumeration with equal StreamKeys produce byte-identical
// programs — the campaign engine boots such groups once.
func (r *Result) StreamKey(m Mutant) string {
	return fmt.Sprintf("%d\x00%d\x00%s", m.TokenIndex, m.Replacement.Kind, m.Replacement.Lit)
}

// DedupKeys returns, per mutant ID, the StreamKey when at least one
// other mutant of the enumeration yields the same token stream, and ""
// for unique mutants. Identical streams arise when two literal-typo
// edits synthesise the same text (e.g. inserting '0' at either position
// of "00"); operator and identifier pools never collide.
func (r *Result) DedupKeys() []string {
	count := make(map[string]int, len(r.Mutants))
	keys := make([]string, len(r.Mutants))
	for i, m := range r.Mutants {
		keys[i] = r.StreamKey(m)
		count[keys[i]]++
	}
	for i, k := range keys {
		if count[k] < 2 {
			keys[i] = ""
		}
	}
	return keys
}

// Options configures enumeration.
type Options struct {
	// Interface is the Devil stub interface for CDevil sources; nil for
	// plain C sources.
	Interface *codegen.Interface
}

// declInfo is the symbol analysis the identifier rules need.
type declInfo struct {
	// declPositions marks token offsets that are declaration sites
	// (excluded from mutation: renaming a declaration only renames).
	declPositions map[int]bool
	macros        []string
	globals       []string
	funcs         []string
	// localsOf maps a function name to its parameter and local names.
	localsOf map[string][]string
	// funcRange maps a function to its [start, end) source-offset range.
	funcRange map[string][2]int
	funcOrder []string
}

// Enumerate analyses a driver token stream and generates every mutant the
// rules admit. The stream must parse cleanly (mutants are derived from
// correct programs).
func Enumerate(toks []ctoken.Token, opts Options) (*Result, error) {
	prog, perrs := cparser.ParseTokens(toks)
	if len(perrs) > 0 {
		return nil, fmt.Errorf("enumerate: source does not parse: %v", perrs[0])
	}
	info := analyse(prog, toks)
	res := &Result{Tokens: toks}

	for i, t := range toks {
		if !t.Tagged {
			continue
		}
		switch {
		case t.Kind.IsIntLiteral():
			res.literalSite(i, t)
		case OperatorClasses[t.Kind] != nil:
			res.operatorSite(i, t)
		case t.Kind == ctoken.Ident:
			res.identSite(i, t, info, opts)
		}
	}
	return res, nil
}

func (r *Result) addSite(s Site) int {
	r.Sites = append(r.Sites, s)
	return len(r.Sites) - 1
}

func (r *Result) addMutant(siteIdx, tokIdx int, repl ctoken.Token, desc string) {
	r.Mutants = append(r.Mutants, Mutant{
		ID:          len(r.Mutants),
		SiteIndex:   siteIdx,
		TokenIndex:  tokIdx,
		Replacement: repl,
		Description: desc,
	})
}

// literalSite expands the typo model over one integer literal.
func (r *Result) literalSite(i int, t ctoken.Token) {
	var prefix, digits, alphabet string
	var kind ctoken.Kind
	switch t.Kind {
	case ctoken.HexInt:
		prefix, digits, alphabet, kind = t.Lit[:2], strings.ToLower(t.Lit[2:]), mutation.AlphabetHex, ctoken.HexInt
	case ctoken.OctInt:
		prefix, digits, alphabet, kind = t.Lit[:1], t.Lit[1:], mutation.AlphabetOctal, ctoken.OctInt
	default:
		prefix, digits, alphabet, kind = "", t.Lit, mutation.AlphabetDecimal, ctoken.DecInt
	}
	edits := mutation.LiteralEdits(digits, alphabet)
	if len(edits) == 0 {
		return
	}
	site := r.addSite(Site{Index: i, Pos: t.Pos, Kind: SiteLiteral})
	orig := literalValue(t.Kind, prefix+digits)
	for _, e := range edits {
		lit := prefix + e.Text
		nk := kind
		if nk == ctoken.DecInt && len(e.Text) > 1 && e.Text[0] == '0' {
			// A decimal literal gaining a leading zero becomes octal — the
			// very confusion the error model is about. Reject texts with
			// non-octal digits (they would not lex).
			valid := true
			for j := 1; j < len(e.Text); j++ {
				if e.Text[j] > '7' {
					valid = false
					break
				}
			}
			if !valid {
				continue
			}
			nk = ctoken.OctInt
		}
		// Mutants must change semantics: skip value-preserving edits.
		if literalValue(nk, lit) == orig {
			continue
		}
		repl := t
		repl.Kind = nk
		repl.Lit = lit
		r.addMutant(site, i, repl,
			fmt.Sprintf("%s literal %s -> %s at %s", e.Kind, t.Lit, lit, t.Pos))
	}
}

// literalValue evaluates a literal for the semantic-difference filter.
func literalValue(kind ctoken.Kind, lit string) int64 {
	var v int64
	switch kind {
	case ctoken.HexInt:
		for i := 2; i < len(lit); i++ {
			v = v*16 + int64(hexVal(lit[i]))
		}
	case ctoken.OctInt:
		for i := 1; i < len(lit); i++ {
			v = v*8 + int64(lit[i]-'0')
		}
	default:
		for i := 0; i < len(lit); i++ {
			v = v*10 + int64(lit[i]-'0')
		}
	}
	return v
}

func hexVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	case c >= 'A' && c <= 'F':
		return int(c-'A') + 10
	}
	return 0
}

func (r *Result) operatorSite(i int, t ctoken.Token) {
	site := r.addSite(Site{Index: i, Pos: t.Pos, Kind: SiteOperator})
	for _, nk := range OperatorClasses[t.Kind] {
		repl := t
		repl.Kind = nk
		repl.Lit = nk.String()
		r.addMutant(site, i, repl,
			fmt.Sprintf("operator %s -> %s at %s", t.Kind, nk, t.Pos))
	}
}

func (r *Result) identSite(i int, t ctoken.Token, info *declInfo, opts Options) {
	if info.declPositions[t.Pos.Offset] {
		return // declaration site: renaming it is not an error model case
	}
	if strings.HasSuffix(t.Lit, "_t") {
		return // Devil type names are types, not value identifiers
	}
	class, pool := classify(t.Lit, info, opts, t.Pos.Offset)
	if len(pool) == 0 {
		return
	}
	var repls []string
	for _, name := range pool {
		if name != t.Lit {
			repls = append(repls, name)
		}
	}
	if len(repls) == 0 {
		return
	}
	site := r.addSite(Site{Index: i, Pos: t.Pos, Kind: SiteIdent, Class: class})
	for _, name := range repls {
		repl := t
		repl.Lit = name
		r.addMutant(site, i, repl,
			fmt.Sprintf("identifier %s -> %s at %s", t.Lit, name, t.Pos))
	}
}

// classify determines the identifier class of an occurrence and the
// replacement pool.
func classify(name string, info *declInfo, opts Options, off int) (IdentClass, []string) {
	if opts.Interface != nil {
		// CDevil: class-restricted pools.
		var getters, setters, consts []string
		for _, v := range opts.Interface.Vars {
			if v.Readable {
				getters = append(getters, "get_"+v.Name)
				if v.Block {
					getters = append(getters, "get_block_"+v.Name)
				}
			}
			if v.Writable {
				setters = append(setters, "set_"+v.Name)
				if v.Block {
					setters = append(setters, "set_block_"+v.Name)
				}
			}
		}
		for c := range opts.Interface.Consts {
			consts = append(consts, c)
		}
		sort.Strings(getters)
		sort.Strings(setters)
		sort.Strings(consts)
		if contains(getters, name) {
			return ClassGetter, getters
		}
		if contains(setters, name) {
			return ClassSetter, setters
		}
		if contains(consts, name) {
			return ClassConst, consts
		}
		if contains(info.macros, name) {
			return ClassMacro, info.macros
		}
		return ClassPlain, info.scopedPool(off)
	}
	// Plain C: the pre-processor has erased all distinctions.
	return ClassAny, info.scopedPool(off)
}

func contains(list []string, name string) bool {
	for _, x := range list {
		if x == name {
			return true
		}
	}
	return false
}

// scopedPool returns the identifiers visible at a source offset: macros,
// globals, function names, and the locals of the enclosing function.
func (d *declInfo) scopedPool(off int) []string {
	pool := make([]string, 0,
		len(d.macros)+len(d.globals)+len(d.funcs)+8)
	pool = append(pool, d.macros...)
	pool = append(pool, d.globals...)
	pool = append(pool, d.funcs...)
	for _, fn := range d.funcOrder {
		r := d.funcRange[fn]
		if off >= r[0] && off < r[1] {
			pool = append(pool, d.localsOf[fn]...)
			break
		}
	}
	sort.Strings(pool)
	return pool
}

// analyse walks the program collecting declarations, their positions and
// function extents.
func analyse(prog *cast.Program, toks []ctoken.Token) *declInfo {
	info := &declInfo{
		declPositions: make(map[int]bool),
		localsOf:      make(map[string][]string),
		funcRange:     make(map[string][2]int),
	}
	endOffset := 1 << 30
	if len(toks) > 0 {
		endOffset = toks[len(toks)-1].Pos.Offset + len(toks[len(toks)-1].Lit) + 1
	}
	for idx, d := range prog.Decls {
		switch d := d.(type) {
		case *cast.MacroDecl:
			info.macros = append(info.macros, d.Name)
			info.declPositions[d.NamePos.Offset] = true
		case *cast.VarDecl:
			info.globals = append(info.globals, d.Name)
			info.declPositions[d.NamePos.Offset] = true
		case *cast.FuncDecl:
			info.funcs = append(info.funcs, d.Name)
			info.funcOrder = append(info.funcOrder, d.Name)
			info.declPositions[d.NamePos.Offset] = true
			start := d.TypePos.Offset
			end := endOffset
			if idx+1 < len(prog.Decls) {
				end = prog.Decls[idx+1].Pos().Offset
			}
			info.funcRange[d.Name] = [2]int{start, end}
			var locals []string
			for _, p := range d.Params {
				locals = append(locals, p.Name)
				info.declPositions[p.NamePos.Offset] = true
			}
			collectLocals(d.Body, &locals, info.declPositions)
			info.localsOf[d.Name] = locals
		}
	}
	return info
}

// collectLocals gathers local declarations (and marks their positions) in
// a statement tree.
func collectLocals(s cast.Stmt, locals *[]string, declPos map[int]bool) {
	switch s := s.(type) {
	case *cast.Block:
		for _, st := range s.Stmts {
			collectLocals(st, locals, declPos)
		}
	case *cast.DeclStmt:
		*locals = append(*locals, s.Decl.Name)
		declPos[s.Decl.NamePos.Offset] = true
	case *cast.IfStmt:
		collectLocals(s.Then, locals, declPos)
		if s.Else != nil {
			collectLocals(s.Else, locals, declPos)
		}
	case *cast.WhileStmt:
		collectLocals(s.Body, locals, declPos)
	case *cast.DoWhileStmt:
		collectLocals(s.Body, locals, declPos)
	case *cast.ForStmt:
		if s.Init != nil {
			collectLocals(s.Init, locals, declPos)
		}
		collectLocals(s.Body, locals, declPos)
	case *cast.SwitchStmt:
		for _, cl := range s.Clauses {
			for _, st := range cl.Stmts {
				collectLocals(st, locals, declPos)
			}
		}
	}
}
