package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/campaign"
)

// campaignStatus renders a campaign Snapshot — live from a running
// run's -status-addr endpoint, or reconstructed offline from a JSONL
// store. The positional argument is disambiguated by existence: a path
// that exists on disk is a store, anything else is an address.
func campaignStatus(args []string) error {
	fs := flag.NewFlagSet("driverlab campaign status", flag.ContinueOnError)
	store := fs.String("store", "", "JSONL result store to reconstruct the snapshot from offline")
	addr := fs.String("addr", "", "status endpoint of a running campaign (host:port or URL)")
	if help, err := parseFlags(fs, args); help || err != nil {
		return err
	}
	rest := fs.Args()
	switch {
	case *store != "" && *addr != "":
		return fmt.Errorf("campaign status: -store and -addr are mutually exclusive")
	case len(rest) > 1:
		return fmt.Errorf("campaign status: want one <addr|store>, got %d arguments", len(rest))
	case len(rest) == 1 && (*store != "" || *addr != ""):
		return fmt.Errorf("campaign status: give either -store/-addr or a positional <addr|store>, not both")
	case len(rest) == 1:
		if _, err := os.Stat(rest[0]); err == nil {
			return statusFromStore(rest[0])
		}
		return statusFromAddr(rest[0])
	case *store != "":
		return statusFromStore(*store)
	case *addr != "":
		return statusFromAddr(*addr)
	}
	return fmt.Errorf("campaign status: want an <addr|store> argument " +
		"(a running campaign's -status-addr, or a JSONL store)")
}

// statusFromStore reconstructs the snapshot offline from a store's
// records; rates, ETA and worker counts are unknowable there.
func statusFromStore(path string) error {
	st, err := campaign.OpenFile(path)
	if err != nil {
		return err
	}
	defer st.Close()
	snap := campaign.SnapshotFromRecords(st.Records())
	fmt.Print(formatSnapshot(*snap, "store "+path))
	return nil
}

// statusFromAddr fetches the live snapshot from a running campaign.
func statusFromAddr(addr string) error {
	snap, err := fetchSnapshot(addr)
	if err != nil {
		return err
	}
	fmt.Print(formatSnapshot(*snap, addr))
	return nil
}

// fetchSnapshot GETs and decodes /status from a campaign's
// observability endpoint. Bare ports (":9100") and host:port pairs are
// completed to full URLs.
func fetchSnapshot(addr string) (*campaign.Snapshot, error) {
	url := addr
	if !strings.Contains(url, "://") {
		if strings.HasPrefix(url, ":") {
			url = "127.0.0.1" + url
		}
		url = "http://" + url
	}
	url = strings.TrimSuffix(url, "/") + "/status"
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return nil, fmt.Errorf("campaign status: nothing answered at %s: %w\n"+
			"  start a campaign with `driverlab campaign run -status-addr`, a fleet\n"+
			"  coordinator with `driverlab serve -status-addr` (workers join it with\n"+
			"  `driverlab worker -connect`), or point at a JSONL store for an offline view",
			url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("campaign status: %s returned %s", url, resp.Status)
	}
	var snap campaign.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, fmt.Errorf("campaign status: decoding %s: %w", url, err)
	}
	return &snap, nil
}

// formatSnapshot renders the one status shape every surface shares.
// The /status JSON, this view and the run progress line all read the
// same campaign.Snapshot, so they cannot drift apart.
func formatSnapshot(s campaign.Snapshot, source string) string {
	var b strings.Builder
	mode := "offline"
	if s.Live {
		mode = "live"
	}
	fmt.Fprintf(&b, "campaign %q (%s, %s)\n", s.Name, mode, source)
	if s.Live {
		fmt.Fprintf(&b, "  workers %d, elapsed %s\n", s.Workers, fmtSeconds(s.ElapsedSec))
	}
	if f := s.Fleet; f != nil {
		fmt.Fprintf(&b, "  fleet: %d workers connected, shards %d/%d complete (%d leased), %d leases (%d re-leased)\n",
			f.Workers, f.ShardsComplete, f.ShardsTotal, f.ShardsLeased, f.Leases, f.Releases)
		if f.RejectedFrames > 0 || f.StaleRecords > 0 {
			fmt.Fprintf(&b, "  fleet health: %d rejected frames, %d stale records dropped\n",
				f.RejectedFrames, f.StaleRecords)
		}
	}
	fmt.Fprintf(&b, "  progress: %d/%d recorded (%.1f%%) — %d booted, %d deduped, %d skipped\n",
		s.Recorded, s.Total, s.Percent(), s.Ran, s.Deduped, s.Skipped)
	if s.Panics > 0 {
		fmt.Fprintf(&b, "  panics: %d (harness panics recovered and quarantined)\n", s.Panics)
	}
	if s.BootsPerSec > 0 {
		fmt.Fprintf(&b, "  rate: %.1f boots/s", s.BootsPerSec)
		if s.ETASec > 0 {
			fmt.Fprintf(&b, ", ETA %s", fmtSeconds(s.ETASec))
		}
		b.WriteByte('\n')
	}
	for _, d := range s.Drivers {
		fmt.Fprintf(&b, "  driver %-16s %5d/%-5d recorded, %d booted",
			d.Driver, d.Recorded, d.Selected, d.Ran)
		if d.BootsPerSec > 0 {
			fmt.Fprintf(&b, ", %.1f boots/s", d.BootsPerSec)
		}
		b.WriteByte('\n')
	}
	if len(s.Shards) > 0 {
		parts := make([]string, len(s.Shards))
		for i, sh := range s.Shards {
			if sh.Planned > 0 {
				parts[i] = fmt.Sprintf("%d: %d/%d", sh.Shard, sh.Recorded, sh.Planned)
			} else {
				parts[i] = fmt.Sprintf("%d: %d", sh.Shard, sh.Recorded)
			}
		}
		fmt.Fprintf(&b, "  shards: %s\n", strings.Join(parts, ", "))
	}
	if len(s.Outcomes) > 0 {
		rows := make([]string, 0, len(s.Outcomes))
		for row := range s.Outcomes {
			rows = append(rows, row)
		}
		sort.Strings(rows)
		parts := make([]string, len(rows))
		for i, row := range rows {
			parts[i] = fmt.Sprintf("%s %d", row, s.Outcomes[row])
		}
		fmt.Fprintf(&b, "  outcomes: %s\n", strings.Join(parts, ", "))
	}
	return b.String()
}

// progressLine renders the one-line live progress of a snapshot,
// clamped to width so a terminal narrower than the line never wraps
// (wrapping leaves the \r-rewritten line garbled).
func progressLine(s campaign.Snapshot, width int) string {
	line := fmt.Sprintf("campaign: %d/%d recorded (%.1f%%", s.Recorded, s.Total, s.Percent())
	if s.BootsPerSec > 0 {
		line += fmt.Sprintf(", %.1f boots/s", s.BootsPerSec)
	}
	if s.ETASec > 0 {
		line += ", ETA " + fmtSeconds(s.ETASec)
	}
	line += ")"
	if width > 0 && len(line) > width-1 {
		line = line[:width-1]
	}
	return line
}

// termWidth reads the terminal width from $COLUMNS (the shell
// convention; the CLI takes no termios dependency), defaulting to 80.
func termWidth() int {
	if c, err := strconv.Atoi(os.Getenv("COLUMNS")); err == nil && c > 0 {
		return c
	}
	return 80
}

// fmtSeconds renders a float second count compactly ("1m23s").
func fmtSeconds(sec float64) string {
	return time.Duration(sec * float64(time.Second)).Round(time.Second).String()
}
