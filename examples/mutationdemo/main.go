// mutationdemo: one injected typo, three fates — the demonstration behind
// the paper's evaluation.
//
// The same class of inattention error (using the wrong identifier) is
// injected into (1) a Devil specification, where the consistency checker
// rejects it; (2) plain C hardware operating code, where the compiler sees
// interchangeable integers and accepts it silently; and (3) CDevil glue,
// where the distinct struct types of the debug stubs make it a type error.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/cdriver/ccheck"
	"repro/internal/cdriver/cparser"
	"repro/internal/cdriver/ctypes"
	"repro/internal/devil"
	"repro/internal/devil/codegen"
	"repro/internal/hw"
	"repro/internal/specs"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("=== 1. A typo in a Devil specification ===")
	if err := devilTypo(); err != nil {
		return err
	}
	fmt.Println("\n=== 2. The same class of typo in plain C ===")
	if err := cTypo(); err != nil {
		return err
	}
	fmt.Println("\n=== 3. And in CDevil over debug stubs ===")
	return cdevilTypo()
}

// devilTypo injects a register-name confusion into the busmouse spec.
func devilTypo() error {
	src, err := specs.Load("busmouse")
	if err != nil {
		return err
	}
	// The variable dx should be assembled from x_high # x_low; confuse the
	// second register with y_low (a classic inattention error).
	mutated := strings.Replace(src.Source,
		"variable dx = x_high[3..0] # x_low[3..0]",
		"variable dx = x_high[3..0] # y_low[3..0]", 1)
	fmt.Println("  injected: variable dx = x_high[3..0] # y_low[3..0]")
	_, err = devil.Compile(src.Filename, mutated)
	if err == nil {
		return fmt.Errorf("the Devil compiler missed the typo")
	}
	ce := err.(*devil.CompileError)
	fmt.Println("  Devil compiler says:")
	for _, e := range ce.All() {
		fmt.Printf("    %v\n", e)
	}
	return nil
}

const cFragment = `
#define MSE_READ_Y_HIGH 0xe0
#define MSE_READ_Y_LOW  0xc0
#define MSE_CONTROL     0x23e
#define MSE_DATA        0x23c

int read_dy(void)
{
    int dy;
    outb(MSE_READ_Y_LOW, MSE_CONTROL);
    dy = inb(MSE_DATA) & 0xf;
    outb(MSE_READ_Y_HIGH, MSE_CONTROL);
    dy = dy | (inb(MSE_DATA) & 0xf) << 4;
    return dy;
}
`

// cTypo injects the same confusion into C: the wrong macro.
func cTypo() error {
	// Confuse the control port with the data port — both are just ints.
	mutated := strings.Replace(cFragment,
		"outb(MSE_READ_Y_LOW, MSE_CONTROL);",
		"outb(MSE_READ_Y_LOW, MSE_DATA);", 1)
	fmt.Println("  injected: outb(MSE_READ_Y_LOW, MSE_DATA);")
	prog, perrs := cparser.Parse(mutated)
	if len(perrs) > 0 {
		return fmt.Errorf("unexpected parse failure: %v", perrs[0])
	}
	cerrs := ccheck.Check(prog, ctypes.NewEnv(false))
	if len(cerrs) == 0 {
		fmt.Println("  C compiler says: (nothing — it compiles cleanly; the bug ships)")
		return nil
	}
	return fmt.Errorf("permissive C unexpectedly rejected the mutant: %v", cerrs[0])
}

const cdevilFragment = `
int choose_drive(int want_slave)
{
    if (want_slave) {
        set_Drive(SLAVE);
    } else {
        set_Drive(MASTER);
    }
    return 0;
}
`

// cdevilTypo injects a constant confusion into CDevil glue.
func cdevilTypo() error {
	// Confuse the drive-select constant with a command opcode. In C both
	// would be small integers; over debug stubs they are distinct structs.
	mutated := strings.Replace(cdevilFragment,
		"set_Drive(SLAVE);",
		"set_Drive(CMD_IDENTIFY);", 1)
	fmt.Println("  injected: set_Drive(CMD_IDENTIFY);")

	// Build the typed environment from the IDE stub interface.
	src, err := specs.Load("ide")
	if err != nil {
		return err
	}
	spec, err := devil.Compile(src.Filename, src.Source)
	if err != nil {
		return err
	}
	bus := hw.NewBus()
	bus.SetFloating(true)
	stubs, err := spec.Generate(devil.Config{
		Bus:   bus,
		Bases: map[string]hw.Port{"cmd": 0x1f0, "ctl": 0x3f6, "data": 0x1f0},
		Mode:  codegen.Debug,
	})
	if err != nil {
		return err
	}
	env := ctypes.NewEnv(true)
	if err := env.AddStubs(stubs.Interface()); err != nil {
		return err
	}

	prog, perrs := cparser.Parse(mutated)
	if len(perrs) > 0 {
		return fmt.Errorf("unexpected parse failure: %v", perrs[0])
	}
	cerrs := ccheck.Check(prog, env)
	if len(cerrs) == 0 {
		return fmt.Errorf("strict CDevil checking missed the typo")
	}
	fmt.Println("  CDevil (debug stubs) says:")
	for _, e := range cerrs {
		fmt.Printf("    %v\n", e)
	}
	return nil
}
