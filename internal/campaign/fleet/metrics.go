package fleet

import (
	"repro/internal/obs"
)

// Metric family names the fleet coordinator registers. Every name
// listed here must appear in ARCHITECTURE.md's Observability section —
// scripts/check_docs.sh enforces that via `driverlab metrics`.
const (
	// MetricWorkers gauges the currently connected fleet workers.
	MetricWorkers = "driverlab_fleet_workers_connected"
	// MetricLeases counts shard leases granted.
	MetricLeases = "driverlab_fleet_leases_total"
	// MetricReleases counts leases returned to the pending queue for
	// re-leasing, labelled by reason (disconnect, expired, incomplete).
	MetricReleases = "driverlab_fleet_releases_total"
	// MetricRejectedFrames counts protocol offenses, labelled by reason
	// (handshake, frame).
	MetricRejectedFrames = "driverlab_fleet_rejected_frames_total"
	// MetricStaleRecords counts streamed records whose task the store
	// already held — the residue of a re-leased shard, dropped on
	// arrival.
	MetricStaleRecords = "driverlab_fleet_stale_records_total"
	// MetricWorkerRecords counts result records accepted per worker —
	// the per-worker fleet throughput surface.
	MetricWorkerRecords = "driverlab_fleet_worker_records_total"
	// MetricShardsComplete gauges how many shards have every task
	// recorded.
	MetricShardsComplete = "driverlab_fleet_shards_complete"
)

// MetricNames lists every metric family the fleet coordinator can
// register, for the docs check and the `driverlab metrics` subcommand.
func MetricNames() []string {
	return []string{
		MetricWorkers, MetricLeases, MetricReleases, MetricRejectedFrames,
		MetricStaleRecords, MetricWorkerRecords, MetricShardsComplete,
	}
}

// metrics is the coordinator's instrumentation bundle. Built on a nil
// collector it still works: obs hands out nil metrics whose methods
// are no-ops, so the coordinator threads it unconditionally.
type metrics struct {
	col            *obs.Collector
	workers        *obs.Gauge
	leases         *obs.Counter
	rejectedShake  *obs.Counter
	rejectedFrame  *obs.Counter
	stale          *obs.Counter
	shardsComplete *obs.Gauge
}

func newMetrics(col *obs.Collector) *metrics {
	return &metrics{
		col:     col,
		workers: col.Gauge(MetricWorkers, "Currently connected fleet workers."),
		leases:  col.Counter(MetricLeases, "Shard leases granted."),
		rejectedShake: col.Counter(MetricRejectedFrames,
			"Protocol offenses, by reason.", "reason", "handshake"),
		rejectedFrame: col.Counter(MetricRejectedFrames,
			"Protocol offenses, by reason.", "reason", "frame"),
		stale: col.Counter(MetricStaleRecords,
			"Streamed records whose task the store already held (re-leased shards)."),
		shardsComplete: col.Gauge(MetricShardsComplete,
			"Shards with every task recorded."),
	}
}

// release returns the re-lease counter for one reason label.
func (m *metrics) release(reason string) *obs.Counter {
	return m.col.Counter(MetricReleases,
		"Leases returned to the pending queue for re-leasing, by reason.",
		"reason", reason)
}

// workerRecords returns the accepted-records counter for one worker.
func (m *metrics) workerRecords(worker string) *obs.Counter {
	return m.col.Counter(MetricWorkerRecords,
		"Result records accepted, per fleet worker.", "worker", worker)
}
