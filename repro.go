// Package repro reproduces "Improving Driver Robustness: an Evaluation of
// the Devil Approach" (Réveillère & Muller, DSN 2001 / INRIA RR-4136) as a
// self-contained Go library.
//
// The system has four layers:
//
//   - The Devil compiler (internal/devil and subpackages): scanner, parser,
//     the §2.2 consistency checker, and the §2.3 stub generator with
//     production and debug modes, including the Figure-4 C emitter.
//   - The substrates: a simulated ISA port space with device models
//     (internal/hw and subpackages), a boot kernel with a damage-auditable
//     filesystem (internal/kernel), and an hwC driver-language front end
//     with permissive/strict typing and two execution backends — the
//     closure-compiled campaign hot path (ccompile) and the tree-walking
//     reference oracle (cinterp) it is differentially tested against
//     (internal/cdriver).
//   - The evaluation: the §3 mutation rules (internal/mutation, cmut,
//     devilmut) and the experiment harness regenerating Tables 1–4 and
//     Figures 1/3/4. A workload registry (experiment.RegisterWorkload)
//     routes every driver pair to a declarative rig descriptor —
//     devices-on-bus assembly, reset hook, boot script, success audit —
//     so all five Table-2 devices (IDE, busmouse, NE2000, Permedia 2,
//     82371FB bus master) boot through one generic experiment.Rig with
//     kernel-audited workloads (internal/experiment).
//   - The campaign engine (internal/campaign): declarative mutation
//     campaigns expanded into deterministic work-lists, partitioned into
//     hash-assigned shards, executed on a worker pool with per-worker
//     machine reuse, and streamed as JSONL records to an append-only
//     store — so runs persist, resume after interruption, merge across
//     shards, and re-derive the paper's tables purely from stored
//     records. The in-memory Table 3/4 paths are thin wrappers over the
//     same engine.
//
// Binaries: cmd/devilc (the compiler), cmd/devilmut (spec mutation),
// cmd/driverlab (the full evaluation, including the `driverlab campaign`
// run/resume/merge/report subcommands). Runnable walkthroughs live under
// examples/. The benchmark harness in bench_test.go regenerates each table
// and figure under `go test -bench`, and reports campaign throughput in
// boots per second.
package repro
