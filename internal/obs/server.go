package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler builds the HTTP surface for a collector: Prometheus text at
// /metrics, an optional JSON snapshot at /status (status is called per
// request; nil serves null), and the net/http/pprof handlers under
// /debug/pprof/. The mux is self-contained — nothing is registered on
// http.DefaultServeMux.
func Handler(c *Collector, status func() any) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		c.WritePrometheus(w)
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var v any
		if status != nil {
			v = status()
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(v)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintln(w, "driverlab observability endpoint")
		fmt.Fprintln(w, "  /metrics       Prometheus text format")
		fmt.Fprintln(w, "  /status        JSON campaign snapshot")
		fmt.Fprintln(w, "  /debug/pprof/  runtime profiles")
	})
	return mux
}

// Server is a running observability endpoint.
type Server struct {
	// URL is the base address, e.g. "http://127.0.0.1:41231". Useful
	// when the listen address was ":0".
	URL string

	ln  net.Listener
	srv *http.Server
}

// Serve starts an HTTP server on addr (":0" picks a free port)
// exposing Handler(c, status). It returns once the listener is bound;
// requests are served on a background goroutine until Close.
func Serve(addr string, c *Collector, status func() any) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: Handler(c, status)}
	s := &Server{URL: "http://" + ln.Addr().String(), ln: ln, srv: srv}
	go srv.Serve(ln)
	return s, nil
}

// Close stops the server and releases the listener.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
