// Package cparser is the recursive-descent parser for hwC.
//
// It accepts either raw source text or a pre-lexed token stream; the
// mutation engine uses the latter so that mutated token streams never need
// to round-trip through text.
package cparser

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/cdriver/cast"
	"repro/internal/cdriver/clexer"
	"repro/internal/cdriver/ctoken"
)

// Error is a syntax diagnostic.
type Error struct {
	Pos ctoken.Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: syntax error: %s", e.Pos, e.Msg) }

// ErrorList is the ordered diagnostics of one parse.
type ErrorList []*Error

// Error implements the error interface.
func (l ErrorList) Error() string {
	switch len(l) {
	case 0:
		return "no errors"
	case 1:
		return l[0].Error()
	}
	return fmt.Sprintf("%s (and %d more errors)", l[0].Error(), len(l)-1)
}

// Err returns the list as an error, or nil when empty.
func (l ErrorList) Err() error {
	if len(l) == 0 {
		return nil
	}
	return l
}

type parser struct {
	toks   []ctoken.Token
	idx    int
	errors ErrorList
}

// Parse parses hwC source text.
func Parse(src string) (*cast.Program, ErrorList) {
	toks, lexErrs := clexer.Lex(src)
	p := &parser{toks: toks}
	for _, e := range lexErrs {
		p.errors = append(p.errors, &Error{Pos: e.Pos, Msg: e.Msg})
	}
	return p.parseProgram(), p.errors
}

// ParseTokens parses a pre-lexed token stream.
func ParseTokens(toks []ctoken.Token) (*cast.Program, ErrorList) {
	p := &parser{toks: toks}
	return p.parseProgram(), p.errors
}

func (p *parser) cur() ctoken.Token {
	if p.idx >= len(p.toks) {
		var pos ctoken.Pos
		if len(p.toks) > 0 {
			pos = p.toks[len(p.toks)-1].Pos
		} else {
			pos = ctoken.Pos{Line: 1, Col: 1}
		}
		return ctoken.Token{Kind: ctoken.EOF, Pos: pos}
	}
	return p.toks[p.idx]
}

func (p *parser) peekKind(n int) ctoken.Kind {
	if p.idx+n >= len(p.toks) {
		return ctoken.EOF
	}
	return p.toks[p.idx+n].Kind
}

func (p *parser) peekTok(n int) ctoken.Token {
	if p.idx+n >= len(p.toks) {
		return ctoken.Token{Kind: ctoken.EOF}
	}
	return p.toks[p.idx+n]
}

func (p *parser) next() ctoken.Token {
	t := p.cur()
	if t.Kind != ctoken.EOF {
		p.idx++
	}
	return t
}

func (p *parser) at(k ctoken.Kind) bool { return p.cur().Kind == k }

func (p *parser) accept(k ctoken.Kind) (ctoken.Token, bool) {
	if p.at(k) {
		return p.next(), true
	}
	return ctoken.Token{}, false
}

func (p *parser) expect(k ctoken.Kind) ctoken.Token {
	if p.at(k) {
		return p.next()
	}
	t := p.cur()
	p.errorf(t.Pos, "expected %s, found %s", k, t)
	return ctoken.Token{Kind: k, Pos: t.Pos}
}

func (p *parser) errorf(pos ctoken.Pos, format string, args ...interface{}) {
	if len(p.errors) > 50 {
		return // cap the cascade on hopeless input
	}
	p.errors = append(p.errors, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// sync skips to just past the next semicolon or to a brace boundary.
func (p *parser) sync() {
	depth := 0
	for {
		switch p.cur().Kind {
		case ctoken.EOF:
			return
		case ctoken.Semi:
			if depth == 0 {
				p.next()
				return
			}
			p.next()
		case ctoken.LBrace:
			depth++
			p.next()
		case ctoken.RBrace:
			if depth == 0 {
				return
			}
			depth--
			p.next()
		default:
			p.next()
		}
	}
}

// isDevilTypeName reports whether an identifier spelling denotes a Devil
// struct type by the generated-code convention (FooBar_t).
func isDevilTypeName(name string) bool {
	return strings.HasSuffix(name, "_t") && len(name) > 2
}

// atType reports whether the current token begins a type.
func (p *parser) atType() bool {
	t := p.cur()
	if t.Kind.IsTypeKeyword() {
		return true
	}
	return t.Kind == ctoken.Ident && isDevilTypeName(t.Lit)
}

func (p *parser) parseType() cast.CType {
	t := p.next()
	switch t.Kind {
	case ctoken.KwVoid:
		return cast.CType{Kind: cast.TypeVoid}
	case ctoken.KwInt:
		return cast.CType{Kind: cast.TypeInt}
	case ctoken.KwU8:
		return cast.CType{Kind: cast.TypeU8}
	case ctoken.KwU16:
		return cast.CType{Kind: cast.TypeU16}
	case ctoken.KwU32:
		return cast.CType{Kind: cast.TypeU32}
	case ctoken.KwS8:
		return cast.CType{Kind: cast.TypeS8}
	case ctoken.KwS16:
		return cast.CType{Kind: cast.TypeS16}
	case ctoken.KwS32:
		return cast.CType{Kind: cast.TypeS32}
	case ctoken.Ident:
		if isDevilTypeName(t.Lit) {
			return cast.CType{Kind: cast.TypeDevilStruct, Name: t.Lit}
		}
	}
	p.errorf(t.Pos, "expected type, found %s", t)
	return cast.CType{Kind: cast.TypeInt}
}

func (p *parser) parseProgram() *cast.Program {
	prog := &cast.Program{}
	for !p.at(ctoken.EOF) {
		before := p.idx
		switch {
		case p.at(ctoken.HashDefine):
			if d := p.parseDefine(); d != nil {
				prog.Decls = append(prog.Decls, d)
			}
		case p.at(ctoken.KwStatic) || p.at(ctoken.KwInline) || p.at(ctoken.KwConst) || p.atType():
			if d := p.parseTopDecl(); d != nil {
				prog.Decls = append(prog.Decls, d)
			}
		default:
			t := p.cur()
			p.errorf(t.Pos, "expected declaration, found %s", t)
			p.sync()
		}
		if p.idx == before {
			p.next()
		}
	}
	return prog
}

func (p *parser) parseDefine() cast.Decl {
	p.expect(ctoken.HashDefine)
	name := p.expect(ctoken.Ident)
	body := p.parseExpr()
	p.expect(ctoken.EndDefine)
	return &cast.MacroDecl{NamePos: name.Pos, Name: name.Lit, Body: body}
}

// parseTopDecl parses a global variable or function definition.
func (p *parser) parseTopDecl() cast.Decl {
	for p.at(ctoken.KwStatic) || p.at(ctoken.KwInline) || p.at(ctoken.KwConst) {
		p.next()
	}
	typePos := p.cur().Pos
	typ := p.parseType()
	name := p.expect(ctoken.Ident)
	if p.at(ctoken.LParen) {
		return p.parseFuncRest(typePos, typ, name)
	}
	d := &cast.VarDecl{TypePos: typePos, Type: typ, Name: name.Lit, NamePos: name.Pos}
	if _, ok := p.accept(ctoken.Assign); ok {
		d.Init = p.parseExpr()
	}
	p.expect(ctoken.Semi)
	return d
}

func (p *parser) parseFuncRest(typePos ctoken.Pos, result cast.CType, name ctoken.Token) cast.Decl {
	f := &cast.FuncDecl{TypePos: typePos, Result: result, Name: name.Lit, NamePos: name.Pos}
	p.expect(ctoken.LParen)
	if p.at(ctoken.KwVoid) && p.peekKind(1) == ctoken.RParen {
		p.next() // f(void)
	}
	for !p.at(ctoken.RParen) && !p.at(ctoken.EOF) {
		ptype := p.parseType()
		pname := p.expect(ctoken.Ident)
		f.Params = append(f.Params, cast.Param{Type: ptype, Name: pname.Lit, NamePos: pname.Pos})
		if _, ok := p.accept(ctoken.Comma); !ok {
			break
		}
	}
	p.expect(ctoken.RParen)
	f.Body = p.parseBlock()
	return f
}

func (p *parser) parseBlock() *cast.Block {
	lb := p.expect(ctoken.LBrace)
	b := &cast.Block{LBrace: lb.Pos}
	for !p.at(ctoken.RBrace) && !p.at(ctoken.EOF) {
		before := p.idx
		if s := p.parseStmt(); s != nil {
			b.Stmts = append(b.Stmts, s)
		}
		if p.idx == before {
			p.next()
		}
	}
	p.expect(ctoken.RBrace)
	return b
}

func (p *parser) parseStmt() cast.Stmt {
	t := p.cur()
	switch {
	case t.Kind == ctoken.LBrace:
		return p.parseBlock()
	case t.Kind == ctoken.KwIf:
		return p.parseIf()
	case t.Kind == ctoken.KwWhile:
		p.next()
		p.expect(ctoken.LParen)
		cond := p.parseExpr()
		p.expect(ctoken.RParen)
		body := p.parseStmt()
		return &cast.WhileStmt{WhilePos: t.Pos, Cond: cond, Body: body}
	case t.Kind == ctoken.KwDo:
		p.next()
		body := p.parseStmt()
		p.expect(ctoken.KwWhile)
		p.expect(ctoken.LParen)
		cond := p.parseExpr()
		p.expect(ctoken.RParen)
		p.expect(ctoken.Semi)
		return &cast.DoWhileStmt{DoPos: t.Pos, Body: body, Cond: cond}
	case t.Kind == ctoken.KwFor:
		return p.parseFor()
	case t.Kind == ctoken.KwSwitch:
		return p.parseSwitch()
	case t.Kind == ctoken.KwBreak:
		p.next()
		p.expect(ctoken.Semi)
		return &cast.BreakStmt{KwPos: t.Pos}
	case t.Kind == ctoken.KwContinue:
		p.next()
		p.expect(ctoken.Semi)
		return &cast.ContinueStmt{KwPos: t.Pos}
	case t.Kind == ctoken.KwReturn:
		p.next()
		var x cast.Expr
		if !p.at(ctoken.Semi) {
			x = p.parseExpr()
		}
		p.expect(ctoken.Semi)
		return &cast.ReturnStmt{KwPos: t.Pos, X: x}
	case t.Kind == ctoken.Semi:
		p.next()
		return nil
	case p.atType():
		typePos := p.cur().Pos
		typ := p.parseType()
		name := p.expect(ctoken.Ident)
		d := &cast.VarDecl{TypePos: typePos, Type: typ, Name: name.Lit, NamePos: name.Pos}
		if _, ok := p.accept(ctoken.Assign); ok {
			d.Init = p.parseExpr()
		}
		p.expect(ctoken.Semi)
		return &cast.DeclStmt{Decl: d}
	default:
		return p.parseSimpleStmt(true)
	}
}

// parseSimpleStmt parses an assignment, inc/dec or expression statement.
// When wantSemi is false (for-clause contexts), the trailing semicolon is
// left for the caller.
func (p *parser) parseSimpleStmt(wantSemi bool) cast.Stmt {
	t := p.cur()
	// Assignment or inc/dec begins with an identifier followed by an
	// assignment-class operator.
	if t.Kind == ctoken.Ident {
		switch p.peekKind(1) {
		case ctoken.Assign, ctoken.OrAssign, ctoken.AndAssign, ctoken.XorAssign,
			ctoken.ShlAssign, ctoken.ShrAssign, ctoken.AddAssign, ctoken.SubAssign:
			name := p.next()
			op := p.next()
			rhs := p.parseExpr()
			if wantSemi {
				p.expect(ctoken.Semi)
			}
			return &cast.AssignStmt{
				LHS: &cast.Ident{NamePos: name.Pos, Name: name.Lit},
				Op:  op.Kind, RHS: rhs,
			}
		case ctoken.PlusPlus, ctoken.MinusMinus:
			name := p.next()
			op := p.next()
			if wantSemi {
				p.expect(ctoken.Semi)
			}
			return &cast.IncDecStmt{
				X:  &cast.Ident{NamePos: name.Pos, Name: name.Lit},
				Op: op.Kind,
			}
		}
	}
	x := p.parseExpr()
	if wantSemi {
		p.expect(ctoken.Semi)
	}
	return &cast.ExprStmt{X: x}
}

func (p *parser) parseIf() cast.Stmt {
	kw := p.expect(ctoken.KwIf)
	p.expect(ctoken.LParen)
	cond := p.parseExpr()
	p.expect(ctoken.RParen)
	then := p.parseStmt()
	var els cast.Stmt
	if _, ok := p.accept(ctoken.KwElse); ok {
		els = p.parseStmt()
	}
	return &cast.IfStmt{IfPos: kw.Pos, Cond: cond, Then: then, Else: els}
}

func (p *parser) parseFor() cast.Stmt {
	kw := p.expect(ctoken.KwFor)
	p.expect(ctoken.LParen)
	f := &cast.ForStmt{ForPos: kw.Pos}
	if !p.at(ctoken.Semi) {
		if p.atType() {
			typePos := p.cur().Pos
			typ := p.parseType()
			name := p.expect(ctoken.Ident)
			d := &cast.VarDecl{TypePos: typePos, Type: typ, Name: name.Lit, NamePos: name.Pos}
			if _, ok := p.accept(ctoken.Assign); ok {
				d.Init = p.parseExpr()
			}
			f.Init = &cast.DeclStmt{Decl: d}
		} else {
			f.Init = p.parseSimpleStmt(false)
		}
	}
	p.expect(ctoken.Semi)
	if !p.at(ctoken.Semi) {
		f.Cond = p.parseExpr()
	}
	p.expect(ctoken.Semi)
	if !p.at(ctoken.RParen) {
		f.Post = p.parseSimpleStmt(false)
	}
	p.expect(ctoken.RParen)
	f.Body = p.parseStmt()
	return f
}

func (p *parser) parseSwitch() cast.Stmt {
	kw := p.expect(ctoken.KwSwitch)
	p.expect(ctoken.LParen)
	tag := p.parseExpr()
	p.expect(ctoken.RParen)
	p.expect(ctoken.LBrace)
	sw := &cast.SwitchStmt{SwitchPos: kw.Pos, Tag: tag}
	for !p.at(ctoken.RBrace) && !p.at(ctoken.EOF) {
		t := p.cur()
		var clause *cast.CaseClause
		switch t.Kind {
		case ctoken.KwCase:
			p.next()
			clause = &cast.CaseClause{CasePos: t.Pos}
			clause.Values = append(clause.Values, p.parseExpr())
			p.expect(ctoken.Colon)
			// Adjacent case labels share a clause.
			for p.at(ctoken.KwCase) {
				p.next()
				clause.Values = append(clause.Values, p.parseExpr())
				p.expect(ctoken.Colon)
			}
		case ctoken.KwDefault:
			p.next()
			p.expect(ctoken.Colon)
			clause = &cast.CaseClause{CasePos: t.Pos}
		default:
			p.errorf(t.Pos, "expected case or default, found %s", t)
			p.sync()
			continue
		}
		for !p.at(ctoken.KwCase) && !p.at(ctoken.KwDefault) &&
			!p.at(ctoken.RBrace) && !p.at(ctoken.EOF) {
			before := p.idx
			if s := p.parseStmt(); s != nil {
				clause.Stmts = append(clause.Stmts, s)
			}
			if p.idx == before {
				p.next()
			}
		}
		sw.Clauses = append(sw.Clauses, clause)
	}
	p.expect(ctoken.RBrace)
	return sw
}

// Expression parsing: precedence climbing over the C operator grammar of
// the subset. The ternary conditional sits above everything else.
func (p *parser) parseExpr() cast.Expr {
	x := p.parseBinary(1)
	if _, ok := p.accept(ctoken.Question); ok {
		then := p.parseExpr()
		p.expect(ctoken.Colon)
		els := p.parseExpr()
		return &cast.CondExpr{Cond: x, Then: then, Else: els}
	}
	return x
}

// precedence returns the binding power of a binary operator, 0 for
// non-operators. Mirrors C.
func precedence(k ctoken.Kind) int {
	switch k {
	case ctoken.LOr:
		return 1
	case ctoken.LAnd:
		return 2
	case ctoken.Or:
		return 3
	case ctoken.Xor:
		return 4
	case ctoken.And:
		return 5
	case ctoken.Eq, ctoken.Ne:
		return 6
	case ctoken.Lt, ctoken.Gt, ctoken.Le, ctoken.Ge:
		return 7
	case ctoken.Shl, ctoken.Shr:
		return 8
	case ctoken.Add, ctoken.Sub:
		return 9
	case ctoken.Mul, ctoken.Div, ctoken.Mod:
		return 10
	}
	return 0
}

func (p *parser) parseBinary(minPrec int) cast.Expr {
	x := p.parseUnary()
	for {
		op := p.cur()
		prec := precedence(op.Kind)
		if prec < minPrec {
			return x
		}
		p.next()
		y := p.parseBinary(prec + 1)
		x = &cast.BinaryExpr{OpPos: op.Pos, Op: op.Kind, X: x, Y: y}
	}
}

func (p *parser) parseUnary() cast.Expr {
	t := p.cur()
	switch t.Kind {
	case ctoken.Not, ctoken.BitNot, ctoken.Sub:
		p.next()
		return &cast.UnaryExpr{OpPos: t.Pos, Op: t.Kind, X: p.parseUnary()}
	case ctoken.LParen:
		// Cast: "(type) unary".
		nt := p.peekTok(1)
		isCast := nt.Kind.IsTypeKeyword() ||
			(nt.Kind == ctoken.Ident && isDevilTypeName(nt.Lit))
		if isCast && p.peekKind(2) == ctoken.RParen {
			p.next()
			to := p.parseType()
			p.expect(ctoken.RParen)
			return &cast.CastExpr{LParen: t.Pos, To: to, X: p.parseUnary()}
		}
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() cast.Expr {
	t := p.cur()
	switch t.Kind {
	case ctoken.DecInt, ctoken.OctInt, ctoken.HexInt:
		p.next()
		v, err := parseCInt(t)
		if err != nil {
			p.errorf(t.Pos, "%v", err)
		}
		return &cast.IntLit{LitPos: t.Pos, Value: v, Base: t.Kind}
	case ctoken.CharLit:
		p.next()
		var v int64
		if len(t.Lit) > 0 {
			v = int64(t.Lit[0])
		}
		return &cast.IntLit{LitPos: t.Pos, Value: v, Base: ctoken.DecInt}
	case ctoken.String:
		p.next()
		return &cast.StringLit{LitPos: t.Pos, Value: t.Lit}
	case ctoken.Ident:
		p.next()
		if p.at(ctoken.LParen) {
			p.next()
			call := &cast.CallExpr{NamePos: t.Pos, Name: t.Lit}
			for !p.at(ctoken.RParen) && !p.at(ctoken.EOF) {
				call.Args = append(call.Args, p.parseExpr())
				if _, ok := p.accept(ctoken.Comma); !ok {
					break
				}
			}
			p.expect(ctoken.RParen)
			return call
		}
		return &cast.Ident{NamePos: t.Pos, Name: t.Lit}
	case ctoken.LParen:
		p.next()
		x := p.parseExpr()
		p.expect(ctoken.RParen)
		return x
	}
	p.errorf(t.Pos, "expected expression, found %s", t)
	p.next()
	return &cast.IntLit{LitPos: t.Pos, Value: 0, Base: ctoken.DecInt}
}

// parseCInt evaluates a C integer literal token.
func parseCInt(t ctoken.Token) (int64, error) {
	lit := strings.TrimRight(t.Lit, "uUlL")
	switch t.Kind {
	case ctoken.HexInt:
		v, err := strconv.ParseUint(lit[2:], 16, 64)
		if err != nil {
			return 0, fmt.Errorf("invalid hexadecimal literal %q", t.Lit)
		}
		return int64(v), nil
	case ctoken.OctInt:
		v, err := strconv.ParseUint(lit[1:], 8, 64)
		if err != nil {
			return 0, fmt.Errorf("invalid octal literal %q", t.Lit)
		}
		return int64(v), nil
	default:
		v, err := strconv.ParseUint(lit, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("invalid integer literal %q", t.Lit)
		}
		return int64(v), nil
	}
}
