// Package ast defines the abstract syntax tree of a Devil device
// specification: the device entry point with its port parameters, register
// declarations with access attributes, masks and pre-actions, and device
// variable declarations built from register bit fragments.
package ast

import (
	"fmt"
	"strings"

	"repro/internal/devil/token"
)

// Node is implemented by every AST node.
type Node interface {
	Pos() token.Pos
}

// Device is a complete specification: the entry point declaration and its
// body of register and variable declarations.
type Device struct {
	NamePos token.Pos
	Name    string
	Params  []*PortParam
	Decls   []Decl
}

// Pos implements Node.
func (d *Device) Pos() token.Pos { return d.NamePos }

// PortParam is one parameter of the device declaration, e.g.
// "base : bit[8] port @ {0..3}" — a ranged port abstracting a base address.
type PortParam struct {
	NamePos  token.Pos
	Name     string
	DataBits int   // width of data accesses through this port, e.g. bit[8]
	RangeLo  int64 // valid offset range {lo..hi}
	RangeHi  int64
}

// Pos implements Node.
func (p *PortParam) Pos() token.Pos { return p.NamePos }

// Decl is a declaration inside the device body.
type Decl interface {
	Node
	declNode()
}

// Access describes how a register (or derived variable) may be used.
type Access int

// Access modes. ReadWrite is the default when a register declaration names a
// single port with no read/write qualifier.
const (
	ReadWrite Access = iota + 1
	ReadOnly
	WriteOnly
)

// String renders the access mode as Devil surface syntax.
func (a Access) String() string {
	switch a {
	case ReadOnly:
		return "read-only"
	case WriteOnly:
		return "write-only"
	default:
		return "read/write"
	}
}

// CanRead reports whether the mode permits reads.
func (a Access) CanRead() bool { return a == ReadOnly || a == ReadWrite }

// CanWrite reports whether the mode permits writes.
func (a Access) CanWrite() bool { return a == WriteOnly || a == ReadWrite }

// PortRef is a port expression "param @ offset".
type PortRef struct {
	NamePos token.Pos
	Name    string // port parameter name
	Offset  int64
}

// Pos implements Node.
func (p *PortRef) Pos() token.Pos { return p.NamePos }

// String renders the reference as surface syntax.
func (p *PortRef) String() string { return fmt.Sprintf("%s@%d", p.Name, p.Offset) }

// PreAction is a pre-condition attached to a register: a private variable
// that must be set to a constant before the port is touched, e.g.
// "pre {index = 1}".
type PreAction struct {
	VarPos token.Pos
	Var    string
	Value  int64
}

// Pos implements Node.
func (p *PreAction) Pos() token.Pos { return p.VarPos }

// Register declares one device register.
//
// A register is accessed through one or two ports. When both ReadPort and
// WritePort are set they may differ (one port for reading, another for
// writing); when the declaration is qualified read-only or write-only the
// unused side is nil.
type Register struct {
	DeclPos   token.Pos
	NamePos   token.Pos
	Name      string
	Mode      Access
	ReadPort  *PortRef
	WritePort *PortRef
	Pre       []*PreAction
	Mask      string // bit pattern over {0,1,*,.}; empty means all relevant
	MaskPos   token.Pos
	Size      int // register width in bits
}

// Pos implements Node.
func (r *Register) Pos() token.Pos { return r.DeclPos }

func (r *Register) declNode() {}

// Fragment is a bit-range slice of a register used in a variable definition:
// "x_high[3..0]" (Hi >= Lo, inclusive) or a bare register name (whole
// register, Hi = Lo = -1 until resolution).
type Fragment struct {
	RegPos token.Pos
	Reg    string
	Hi     int // most-significant bit of the slice, -1 = whole register
	Lo     int // least-significant bit of the slice, -1 = whole register
}

// Pos implements Node.
func (f *Fragment) Pos() token.Pos { return f.RegPos }

// Whole reports whether the fragment names the full register.
func (f *Fragment) Whole() bool { return f.Hi < 0 }

// String renders the fragment as surface syntax.
func (f *Fragment) String() string {
	if f.Whole() {
		return f.Reg
	}
	if f.Hi == f.Lo {
		return fmt.Sprintf("%s[%d]", f.Reg, f.Hi)
	}
	return fmt.Sprintf("%s[%d..%d]", f.Reg, f.Hi, f.Lo)
}

// TypeKind discriminates variable type expressions.
type TypeKind int

// Variable type expression kinds.
const (
	TypeInt    TypeKind = iota + 1 // int(n) / signed int(n)
	TypeEnum                       // { NAME => '..', ... }
	TypeIntSet                     // int {0, 2, 3} or int {0..5}
	TypeBool                       // bool
)

// EnumCase is one arm of an enumerated type mapping a symbolic name to a bit
// pattern, with a direction: NAME => 'p' (write-only), NAME <= 'p'
// (read-only), NAME <=> 'p' (both).
type EnumCase struct {
	NamePos token.Pos
	Name    string
	Dir     token.Kind // MapTo, MapFrom or MapBoth
	Pattern string
	PatPos  token.Pos
}

// TypeExpr is the declared type of a device variable.
type TypeExpr struct {
	TypePos token.Pos
	Kind    TypeKind
	Signed  bool        // for TypeInt
	Bits    int         // for TypeInt: int(n)
	Cases   []*EnumCase // for TypeEnum
	Set     []int64     // for TypeIntSet: the allowed values, expanded
}

// Pos implements Node.
func (t *TypeExpr) Pos() token.Pos { return t.TypePos }

// String renders the type as surface syntax.
func (t *TypeExpr) String() string {
	switch t.Kind {
	case TypeBool:
		return "bool"
	case TypeInt:
		if t.Signed {
			return fmt.Sprintf("signed int(%d)", t.Bits)
		}
		return fmt.Sprintf("int(%d)", t.Bits)
	case TypeIntSet:
		parts := make([]string, len(t.Set))
		for i, v := range t.Set {
			parts[i] = fmt.Sprintf("%d", v)
		}
		return "int {" + strings.Join(parts, ", ") + "}"
	case TypeEnum:
		parts := make([]string, len(t.Cases))
		for i, c := range t.Cases {
			parts[i] = fmt.Sprintf("%s %s '%s'", c.Name, c.Dir, c.Pattern)
		}
		return "{ " + strings.Join(parts, ", ") + " }"
	}
	return "?"
}

// Variable declares one device variable: a typed value assembled from
// register bit fragments (most-significant fragment first).
type Variable struct {
	DeclPos      token.Pos
	NamePos      token.Pos
	Name         string
	Private      bool
	Fragments    []*Fragment
	Volatile     bool
	WriteTrigger bool
	Type         *TypeExpr
}

// Pos implements Node.
func (v *Variable) Pos() token.Pos { return v.DeclPos }

func (v *Variable) declNode() {}

// Registers returns the register declarations of the device in order.
func (d *Device) Registers() []*Register {
	var out []*Register
	for _, decl := range d.Decls {
		if r, ok := decl.(*Register); ok {
			out = append(out, r)
		}
	}
	return out
}

// Variables returns the variable declarations of the device in order.
func (d *Device) Variables() []*Variable {
	var out []*Variable
	for _, decl := range d.Decls {
		if v, ok := decl.(*Variable); ok {
			out = append(out, v)
		}
	}
	return out
}

// Register looks up a register declaration by name.
func (d *Device) Register(name string) *Register {
	for _, r := range d.Registers() {
		if r.Name == name {
			return r
		}
	}
	return nil
}

// Variable looks up a variable declaration by name.
func (d *Device) Variable(name string) *Variable {
	for _, v := range d.Variables() {
		if v.Name == name {
			return v
		}
	}
	return nil
}
