// Package experiment drives the paper's evaluation: it assembles simulated
// machines, compiles (and later mutates) driver sources, boots them, and
// classifies every run into the outcome taxonomy of §4.2.
package experiment

import (
	"fmt"
	"time"

	"repro/internal/cdriver/cast"
	"repro/internal/cdriver/ccheck"
	"repro/internal/cdriver/ccompile"
	"repro/internal/cdriver/ccov"
	"repro/internal/cdriver/cincr"
	"repro/internal/cdriver/cinterp"
	"repro/internal/cdriver/clexer"
	"repro/internal/cdriver/cparser"
	"repro/internal/cdriver/ctoken"
	"repro/internal/cdriver/ctypes"
	"repro/internal/devil/codegen"
	"repro/internal/hw"
	"repro/internal/hw/ide"
	"repro/internal/kernel"
)

// Port assignment of the simulated machine, matching the PC convention the
// driver sources hard-code.
const (
	ideCmdBase hw.Port = 0x1f0
	ideCtlBase hw.Port = 0x3f6
)

// Backend names an hwC execution engine.
type Backend string

// The three execution backends. The block backend — closure compilation
// plus basic-block fusion and batched port I/O — is the campaign hot
// path; the per-statement compiled backend is the oracle midpoint; the
// tree-walking interpreter is the reference oracle the differential
// test holds both to. All three charge the watchdog per basic block
// (one step per straight-line run), so every observable, step counts
// included, is identical across backends.
const (
	BackendBlock    Backend = "block"
	BackendCompiled Backend = "compiled"
	BackendInterp   Backend = "interp"
)

// ParseBackend normalises a backend name; the empty string selects the
// default (block) engine.
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "", string(BackendBlock):
		return BackendBlock, nil
	case string(BackendCompiled):
		return BackendCompiled, nil
	case string(BackendInterp), "tree", "interpreter":
		return BackendInterp, nil
	}
	return "", fmt.Errorf("unknown execution backend %q (want block, compiled or interp)", s)
}

// envKey indexes the cached type environments: the environment depends
// only on whether the driver is CDevil and whether checking is permissive.
type envKey struct {
	devil      bool
	permissive bool
}

// execCaches is the per-worker hot-path state every rig carries:
// generated stubs reset rather than regenerated between boots, type
// environments, and the compiled backend's pooled execution buffers.
// ccheck never mutates an environment, so one cached instance serves
// every boot of a worker.
type execCaches struct {
	exec  *ccompile.Mach
	stubs map[codegen.Mode]*codegen.Stubs
	envs  map[envKey]*ctypes.Env
	// incr holds the incremental front end's pristine pipelines: parsed
	// and checked pristine ASTs plus (compiled backend) the in-place
	// patching compiler, one per boot configuration.
	incr map[incrKey]*incrState
	// obs is the boot pipeline's instrumentation bundle — noObs (every
	// operation a no-op) unless an observed campaign rebinds it.
	obs *bootObs
}

func newExecCaches() execCaches {
	return execCaches{
		exec:  ccompile.NewMach(),
		stubs: make(map[codegen.Mode]*codegen.Stubs),
		envs:  make(map[envKey]*ctypes.Env),
		incr:  make(map[incrKey]*incrState),
		obs:   noObs,
	}
}

// stubsFor returns the cached stubs for a mode, rewound to power-on
// state — generation (spec walk, interface construction, enum tables)
// happens once per worker, not once per mutant.
func (c *execCaches) stubsFor(mode codegen.Mode, generate func(codegen.Mode) (*codegen.Stubs, error)) (*codegen.Stubs, error) {
	if s, ok := c.stubs[mode]; ok {
		s.Reset()
		return s, nil
	}
	s, err := generate(mode)
	if err != nil {
		return nil, err
	}
	c.stubs[mode] = s
	return s, nil
}

// envFor returns (building on first use) the type environment for a boot
// configuration.
func (c *execCaches) envFor(input BootInput, stubs *codegen.Stubs) (*ctypes.Env, error) {
	key := envKey{devil: input.Devil, permissive: input.Permissive}
	if env, ok := c.envs[key]; ok {
		return env, nil
	}
	env := ctypes.NewEnv(input.Devil && !input.Permissive)
	if input.Devil {
		if err := env.AddStubs(stubs.Interface()); err != nil {
			return nil, err
		}
	}
	c.envs[key] = env
	return env, nil
}

// buildEngine is the shared front half of one boot on any rig: parse
// the mutated token stream, apply the budget, look up cached stubs and
// environment, type-check, and construct the selected backend. On return
// exactly one of ex and res is meaningful: a nil ex means the boot is
// already decided (compile-time detection or an insmod fault) and res is
// final; otherwise res is fresh and the caller drives ex.
//
// With a Mutation input the incremental front end runs first: only the
// declaration span containing the mutated token is re-parsed, re-checked
// and recompiled against the worker's cached pristine pipeline. A
// span-unsafe mutation materialises the full mutated stream and falls
// through to the full pipeline below.
func (c *execCaches) buildEngine(r *Rig, input BootInput) (Engine, *BootResult, error) {
	kern, bus, generate := r.Kern, r.Bus, r.Stubs
	if input.Mutation != nil {
		ex, res, done, err := c.buildIncremental(r, input)
		if err != nil {
			return nil, nil, err
		}
		if done {
			return ex, res, nil
		}
		c.obs.fullFrontend.Inc()
		input.Tokens = input.Mutation.Apply()
	}
	res := &BootResult{}
	tp := c.obs.respan.Start()
	prog, perrs := cparser.ParseTokens(input.Tokens)
	tp.Stop()
	if len(perrs) > 0 {
		for _, e := range perrs {
			res.CompileErrors = append(res.CompileErrors, e)
		}
		return nil, res, nil
	}
	if input.Budget > 0 {
		kern.SetBudget(input.Budget)
	}
	var stubs *codegen.Stubs
	if input.Devil {
		mode := input.StubMode
		if mode == 0 {
			mode = codegen.Debug
		}
		var err error
		stubs, err = c.stubsFor(mode, generate)
		if err != nil {
			return nil, nil, err
		}
	}
	env, err := c.envFor(input, stubs)
	if err != nil {
		return nil, nil, err
	}
	tc := c.obs.check.Start()
	cerrs := ccheck.Check(prog, env)
	tc.Stop()
	if len(cerrs) > 0 {
		for _, e := range cerrs {
			res.CompileErrors = append(res.CompileErrors, e)
		}
		return nil, res, nil
	}
	if input.Mutation != nil && r.snapCounts(input) {
		// A span-unsafe mutation on a snapshotting rig still runs the
		// full prefix below (machine reset plus global initialisers).
		c.obs.snapshotFallback.Inc()
	}
	tb := c.obs.compile.Start()
	ex, rerr := newEngine(input.Backend, prog, env, kern, bus, stubs, c.exec, c.obs)
	tb.Stop()
	if rerr != nil {
		// Global initialiser fault: machine-level failure at insmod time.
		res.Outcome = kernel.Classify(rerr)
		res.RunErr = rerr
		return nil, res, nil
	}
	return ex, res, nil
}

// BootInput describes one driver build to boot.
type BootInput struct {
	// Tokens is the (possibly mutated) driver token stream.
	Tokens []ctoken.Token
	// Mutation, when non-nil, selects the incremental front end: the
	// boot is of Mutation's pristine analysed source with exactly one
	// token replaced, and Tokens is ignored (the mutated stream is only
	// materialised on the span-unsafe fallback path). The campaign hot
	// path boots this way; Tokens-based boots always run the full
	// pipeline.
	Mutation *cincr.Mutation
	// Devil selects the CDevil pipeline: strict typing + generated stubs.
	Devil bool
	// StubMode is the stub generation mode for Devil drivers (Debug when
	// zero, matching the paper's development configuration).
	StubMode codegen.Mode
	// Permissive downgrades the CDevil type checker to plain C rules while
	// keeping the stubs at run time — the weak-typing ablation.
	Permissive bool
	// Budget overrides the watchdog budget when non-zero.
	Budget int64
	// Backend selects the execution engine (compiled when empty).
	Backend Backend
	// FaultSeed seeds the rig's fault injector (if a scenario armed one)
	// for this boot. Campaign workers derive it from the task's stable
	// identity, so fault patterns survive sharding and resume.
	FaultSeed uint64
	// WallBudget, when positive, arms a wall-clock deadline on the kernel
	// for this boot — the harness safety net behind the deterministic
	// step-count watchdog.
	WallBudget time.Duration
}

// BootResult is the classified outcome of one build-and-boot.
type BootResult struct {
	// CompileErrors is non-empty when the mutant died at compile time.
	CompileErrors []error
	// Outcome classifies the run (meaningless if CompileErrors is set).
	Outcome kernel.Outcome
	// RunErr is the error the boot terminated with, if any.
	RunErr error
	// Console is the kernel console log. Like Coverage it aliases the
	// machine's pooled buffer: it is valid until the machine that
	// produced it boots again, so callers that keep results across boots
	// must copy it.
	Console []string
	// Coverage is the executed-line set (for dead-code classification).
	// With the compiled backend it aliases the machine's pooled buffer:
	// it is valid until the machine that produced it boots again, so
	// callers that keep results across boots must Clone it.
	Coverage *ccov.Set
	// Report is the filesystem mount/check report (nil if boot died first).
	Report *kernel.BootReport
	// DamagedSectors lists LBAs the audit found corrupted.
	DamagedSectors []uint32
	// PartitionTableLost mirrors the paper's reformat-the-disk anecdote.
	PartitionTableLost bool
	// Steps is the watchdog step count consumed.
	Steps int64
}

// CompileDetected reports whether the mutant died at compile time.
func (r *BootResult) CompileDetected() bool { return len(r.CompileErrors) > 0 }

// newEngine builds the selected execution backend for a checked program.
// A non-nil error is a run-time insmod fault (a global initialiser
// crashed) and classifies like any boot-terminating error. Backend
// construction itself cannot fail: the rare program shape the compiler
// rejects (ErrUnsupported) falls back to the reference interpreter, which
// executes everything.
func newEngine(b Backend, prog *cast.Program, env *ctypes.Env, kern *kernel.Kernel,
	bus *hw.Bus, stubs *codegen.Stubs, mach *ccompile.Mach, o *bootObs) (Engine, error) {
	if b == BackendInterp {
		return cinterp.New(prog, env, kern, bus, stubs)
	}
	var (
		p    *ccompile.Proc
		cerr error
	)
	if b == BackendBlock {
		p, cerr = ccompile.CompileBlocks(prog, kern, bus, stubs, mach)
	} else {
		p, cerr = ccompile.Compile(prog, kern, bus, stubs, mach)
	}
	if cerr != nil {
		o.interpFallback.Inc()
		return cinterp.New(prog, env, kern, bus, stubs)
	}
	o.addBlockStats(p.Stats())
	if err := p.Init(); err != nil {
		return p, err
	}
	return p, nil
}

// The IDE workload is the paper's Tables 3/4 rig: a full simulated PC
// with controller and checksummed disk, whose boot mounts and checks a
// filesystem through the driver and audits the image for damage.

// ideDev is the IDE workload's device handle: controller, live image and
// the pristine snapshot the damage audit compares against.
type ideDev struct {
	Ctrl     *ide.Controller
	Image    *kernel.FSImage
	Pristine *kernel.FSImage
}

var ideWorkload = WorkloadDesc{
	Name:    "ide",
	Drivers: []string{"ide_c", "ide_devil"},
	Spec:    "ide",
	Bases: map[string]hw.Port{
		"cmd":  ideCmdBase,
		"ctl":  ideCtlBase,
		"data": ideCmdBase,
	},
	Build: func(r *Rig) (any, error) {
		img, err := kernel.BuildImage(kernel.DefaultFiles(), 8)
		if err != nil {
			return nil, fmt.Errorf("build image: %w", err)
		}
		pristine := img.Clone()
		disk := ide.NewDisk("REPRO HARDDISK v1.0", img.Sectors)
		ctrl := ide.NewController(r.Clock, disk)
		if err := r.Bus.Map(ideCmdBase, 8, ctrl); err != nil {
			return nil, err
		}
		if err := r.Bus.Map(ideCtlBase, 1, ctrl.ControlBlock()); err != nil {
			return nil, err
		}
		return &ideDev{Ctrl: ctrl, Image: img, Pristine: pristine}, nil
	},
	Reset: func(dev any) {
		d := dev.(*ideDev)
		// Image restored in place via FSImage.RestoreFrom; controller
		// cold-started.
		d.Image.RestoreFrom(d.Pristine)
		d.Ctrl.Reset()
	},
	Snapshot: func(dev, snap any) any {
		// Controller registers only: the prefix cannot touch the disk (no
		// calls run in global initialisers), so the image is pristine at
		// capture time and Restore rewinds it from the pristine copy.
		s, _ := snap.(*ide.State)
		if s == nil {
			s = &ide.State{}
		}
		dev.(*ideDev).Ctrl.Snapshot(s)
		return s
	},
	Restore: func(dev, snap any) {
		d := dev.(*ideDev)
		d.Image.RestoreFrom(d.Pristine)
		d.Ctrl.Restore(snap.(*ide.State))
	},
	Run: runIDEBoot,
}

// blockAdapter exposes the executing driver as a kernel.BlockDriver.
type blockAdapter struct {
	ex   Engine
	kern *kernel.Kernel
}

var _ kernel.BlockDriver = (*blockAdapter)(nil)

// ReadSectors implements kernel.BlockDriver.
func (a *blockAdapter) ReadSectors(lba uint32, count int) ([]byte, error) {
	ret, err := a.ex.Call("ide_read_sectors",
		cinterp.IntValue(int64(lba)), cinterp.IntValue(int64(count)))
	if err != nil {
		return nil, err
	}
	data := make([]byte, count*kernel.SectorSize)
	if ret.Kind == cinterp.ValInt && ret.I != 0 {
		// The driver reported failure: the kernel logs an I/O error and the
		// zero-filled buffer fails the filesystem checks downstream.
		a.kern.Printk(fmt.Sprintf("ide0: read error at sector %d", lba))
		return data, nil
	}
	copy(data, a.kern.Buf())
	return data, nil
}

// WriteSectors implements kernel.BlockDriver.
func (a *blockAdapter) WriteSectors(lba uint32, data []byte) error {
	copy(a.kern.Buf(), data)
	count := len(data) / kernel.SectorSize
	ret, err := a.ex.Call("ide_write_sectors",
		cinterp.IntValue(int64(lba)), cinterp.IntValue(int64(count)))
	if err != nil {
		return err
	}
	if ret.Kind == cinterp.ValInt && ret.I != 0 {
		a.kern.Printk(fmt.Sprintf("ide0: write error at sector %d", lba))
	}
	return nil
}

// runIDEBoot performs the boot sequence: driver initialisation, the
// filesystem mount-and-check through the driver, then the disk audit
// against the pristine image.
func runIDEBoot(r *Rig, ex Engine, res *BootResult) (error, bool) {
	d := r.Dev.(*ideDev)
	ret, err := ex.Call("ide_init")
	if err != nil {
		return err, false
	}
	if ret.Kind == cinterp.ValInt && ret.I != 0 {
		return r.Kern.Panic("ide: initialisation failed"), false
	}
	// The driver left the IDENTIFY block in the transfer buffer; the
	// kernel extracts the drive capacity (words 60/61) and uses it to
	// sanity-check the partition, as a real block layer would.
	buf := r.Kern.Buf()
	totalSectors := uint32(buf[120]) | uint32(buf[121])<<8 |
		uint32(buf[122])<<16 | uint32(buf[123])<<24
	adapter := &blockAdapter{ex: ex, kern: r.Kern}
	rep, err := r.Kern.MountAndCheck(adapter, d.Pristine, totalSectors)
	res.Report = rep
	if err != nil {
		return err, false
	}
	r.Kern.Printk("boot: reached userspace")
	damaged, lost := kernel.AuditDisk(d.Image, d.Pristine)
	res.DamagedSectors = damaged
	res.PartitionTableLost = lost
	return nil, (rep != nil && rep.Damaged()) || len(damaged) > 0
}

// NewMachine builds the IDE rig — the full simulated PC of Tables 3/4.
// A compatibility wrapper over the generic registry path.
func NewMachine() (*Rig, error) {
	return NewRig("ide")
}

// Boot compiles and boots one IDE driver build on a freshly built rig.
// A compatibility wrapper over the generic BootDriver path.
func Boot(input BootInput) (*BootResult, error) {
	return BootDriver("ide_c", input)
}

// ParseDriver lexes a driver source for mutation or direct boot.
func ParseDriver(src string) ([]ctoken.Token, error) {
	toks, errs := clexer.Lex(src)
	if len(errs) > 0 {
		return nil, fmt.Errorf("lex driver: %v", errs[0])
	}
	return toks, nil
}

// Program parses a token stream without checking (test helper).
func Program(toks []ctoken.Token) (*cast.Program, error) {
	prog, errs := cparser.ParseTokens(toks)
	return prog, errs.Err()
}
