package hw_test

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/hw"
)

// ram is a trivial byte-addressed test device.
type ram struct {
	name  string
	cells [16]uint32
}

func (r *ram) Name() string { return r.name }

func (r *ram) Read(off hw.Port, w hw.AccessWidth) (uint32, error) {
	return r.cells[off], nil
}

func (r *ram) Write(off hw.Port, w hw.AccessWidth, v uint32) error {
	r.cells[off] = v
	return nil
}

func TestBusMapAndAccess(t *testing.T) {
	bus := hw.NewBus()
	dev := &ram{name: "ram0"}
	if err := bus.Map(0x100, 16, dev); err != nil {
		t.Fatalf("map: %v", err)
	}
	if err := bus.Out8(0x104, 0xab); err != nil {
		t.Fatalf("out8: %v", err)
	}
	v, err := bus.In8(0x104)
	if err != nil {
		t.Fatalf("in8: %v", err)
	}
	if v != 0xab {
		t.Errorf("read back %#x, want 0xab", v)
	}
	if dev.cells[4] != 0xab {
		t.Errorf("device saw offset-relative write at %v", dev.cells)
	}
}

func TestBusRejectsOverlap(t *testing.T) {
	bus := hw.NewBus()
	if err := bus.Map(0x100, 16, &ram{name: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := bus.Map(0x108, 16, &ram{name: "b"}); err == nil {
		t.Error("overlapping map accepted")
	}
	if err := bus.Map(0x110, 16, &ram{name: "c"}); err != nil {
		t.Errorf("adjacent map rejected: %v", err)
	}
	if err := bus.Map(0x200, 0, &ram{name: "d"}); err == nil {
		t.Error("empty map accepted")
	}
}

func TestBusFaultStrictVsFloating(t *testing.T) {
	bus := hw.NewBus()
	_, err := bus.In8(0x999)
	var fault *hw.BusFaultError
	if !errors.As(err, &fault) {
		t.Fatalf("strict bus: got %v, want BusFaultError", err)
	}
	if fault.Port != 0x999 || fault.Write {
		t.Errorf("fault details wrong: %+v", fault)
	}

	bus.SetFloating(true)
	v, err := bus.In8(0x999)
	if err != nil {
		t.Fatalf("floating read errored: %v", err)
	}
	if v != 0xff {
		t.Errorf("floating 8-bit read = %#x, want 0xff", v)
	}
	w, err := bus.In16(0x999)
	if err != nil || w != 0xffff {
		t.Errorf("floating 16-bit read = %#x, %v; want 0xffff", w, err)
	}
	if err := bus.Out8(0x999, 1); err != nil {
		t.Errorf("floating write errored: %v", err)
	}
}

func TestBusUnmap(t *testing.T) {
	bus := hw.NewBus()
	dev := &ram{name: "a"}
	if err := bus.Map(0x10, 16, dev); err != nil {
		t.Fatal(err)
	}
	bus.Unmap(dev)
	if _, err := bus.In8(0x10); err == nil {
		t.Error("read of unmapped device succeeded")
	}
	if err := bus.Map(0x10, 16, &ram{name: "b"}); err != nil {
		t.Errorf("remap after unmap rejected: %v", err)
	}
}

func TestBusTraceAndStats(t *testing.T) {
	bus := hw.NewBus()
	if err := bus.Map(0, 16, &ram{name: "a"}); err != nil {
		t.Fatal(err)
	}
	bus.SetTracing(true)
	_ = bus.Out8(3, 7)
	_, _ = bus.In8(3)
	_, _ = bus.In8(0x999) // fault
	trace := bus.Trace()
	if len(trace) != 3 {
		t.Fatalf("trace has %d entries, want 3", len(trace))
	}
	if !trace[0].Write || trace[0].Value != 7 {
		t.Errorf("first access should be the write of 7: %+v", trace[0])
	}
	if !trace[2].Fault {
		t.Errorf("third access should fault: %+v", trace[2])
	}
	acc, faults := bus.Stats()
	if acc != 3 || faults != 1 {
		t.Errorf("stats = %d/%d, want 3/1", acc, faults)
	}
	bus.SetTracing(false)
	if len(bus.Trace()) != 0 {
		t.Error("disabling tracing should clear the trace")
	}
}

// TestBusWidthMasking property: values written through the bus are always
// truncated to the access width before reaching the device.
func TestBusWidthMasking(t *testing.T) {
	bus := hw.NewBus()
	dev := &ram{name: "a"}
	if err := bus.Map(0, 16, dev); err != nil {
		t.Fatal(err)
	}
	prop := func(v uint32) bool {
		if err := bus.Write(1, hw.Width8, v); err != nil {
			return false
		}
		if dev.cells[1] != v&0xff {
			return false
		}
		if err := bus.Write(2, hw.Width16, v); err != nil {
			return false
		}
		return dev.cells[2] == v&0xffff
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestClock(t *testing.T) {
	var c hw.Clock
	if c.Now() != 0 {
		t.Errorf("zero clock at %d", c.Now())
	}
	var seen []uint64
	c.OnTick(func(now uint64) { seen = append(seen, now) })
	c.Tick(1)
	c.Tick(0) // no-op
	c.Tick(5)
	if c.Now() != 6 {
		t.Errorf("clock at %d, want 6", c.Now())
	}
	if len(seen) != 2 || seen[0] != 1 || seen[1] != 6 {
		t.Errorf("listener saw %v, want [1 6]", seen)
	}
}
