package ccompile

import (
	"reflect"
	"testing"

	"repro/internal/cdriver/cast"
	"repro/internal/cdriver/cparser"
	"repro/internal/hw"
	"repro/internal/kernel"
)

// These tests pin the block backend's invalidation contract from inside
// the package: Incr.Patch must recompile — and therefore re-fuse —
// exactly the declarations the patch touches. Everything else must keep
// its compiled body, byte for byte the same slice, because every call
// site captured those *cfunc pointers at pristine-compile time.

const blocksSrc = `#define LIMIT 3

int counter;

int helper(int x) {
    int y = x + 1;
    y = y * 2;
    return y;
}

int target(int n) {
    int acc = 0;
    int i;
    for (i = 0; i < n; i++) {
        acc = acc + helper(i);
    }
    return acc;
}

int uses_macro(void) {
    int a = LIMIT;
    int b = a + LIMIT;
    return b;
}
`

// bodyPtr identifies a compiled function body by its slice data pointer:
// equal pointers mean Patch left the compiled closures untouched.
func bodyPtr(f *cfunc) uintptr { return reflect.ValueOf(f.body).Pointer() }

func parseProg(t *testing.T, src string) *cast.Program {
	t.Helper()
	prog, perrs := cparser.Parse(src)
	if len(perrs) != 0 {
		t.Fatalf("parse: %v", perrs)
	}
	return prog
}

// declIdx finds the program index of a named declaration.
func declIdx(t *testing.T, prog *cast.Program, name string) int {
	t.Helper()
	for i, d := range prog.Decls {
		switch d := d.(type) {
		case *cast.FuncDecl:
			if d.Name == name {
				return i
			}
		case *cast.MacroDecl:
			if d.Name == name {
				return i
			}
		case *cast.VarDecl:
			if d.Name == name {
				return i
			}
		}
	}
	t.Fatalf("no declaration %q", name)
	return -1
}

func newBlocksIncr(t *testing.T, prog *cast.Program) *Incr {
	t.Helper()
	bus := hw.NewBus()
	bus.SetFloating(true)
	in, err := NewIncrBlocks(prog, kernel.New(&hw.Clock{}), bus, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// TestBlocksPatchInvalidatesOnlyTarget: patching one function swaps that
// function's fused blocks and nothing else's.
func TestBlocksPatchInvalidatesOnlyTarget(t *testing.T) {
	prog := parseProg(t, blocksSrc)
	in := newBlocksIncr(t, prog)

	if s := in.proc.Stats(); s.Blocks == 0 || s.FusedStmts < s.Blocks {
		t.Fatalf("pristine block compile produced no fused blocks: %+v", s)
	}
	pristine := make(map[string]uintptr)
	for _, f := range in.c.funcs {
		pristine[f.name] = bodyPtr(f)
	}

	repl := parseProg(t, `int helper(int x) {
    int y = x + 2;
    y = y * 3;
    return y;
}`).Decls[0]
	proc, err := in.Patch(declIdx(t, prog, "helper"), repl)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range in.c.funcs {
		changed := bodyPtr(f) != pristine[f.name]
		if f.name == "helper" && !changed {
			t.Error("patched function kept its pristine compiled body")
		}
		if f.name != "helper" && changed {
			t.Errorf("%s recompiled by a patch that did not touch it", f.name)
		}
	}
	if s := in.PatchStats(); s.Blocks == 0 || s.FusedStmts < s.Blocks {
		t.Errorf("PatchStats = %+v, want the patched function's fused blocks", s)
	}

	// The patched blocks must be live: helper(1) is now (1+2)*3 = 9.
	if err := proc.Init(); err != nil {
		t.Fatal(err)
	}
	v, err := proc.Call("helper", intValue(1))
	if err != nil {
		t.Fatal(err)
	}
	if v.I != 9 {
		t.Errorf("patched helper(1) = %d, want 9", v.I)
	}

	// The next patch reverts the last: helper's pristine body (the very
	// slice compiled at construction) must come back.
	if _, err := in.Patch(declIdx(t, prog, "counter"),
		parseProg(t, "int counter = 1;").Decls[0]); err != nil {
		t.Fatal(err)
	}
	for _, f := range in.c.funcs {
		if bodyPtr(f) != pristine[f.name] {
			t.Errorf("%s not restored to its pristine compiled body after revert", f.name)
		}
	}
}

// TestBlocksMacroPatchInvalidatesDependents: patching a macro recompiles
// exactly the functions that inlined it.
func TestBlocksMacroPatchInvalidatesDependents(t *testing.T) {
	prog := parseProg(t, blocksSrc)
	in := newBlocksIncr(t, prog)
	pristine := make(map[string]uintptr)
	for _, f := range in.c.funcs {
		pristine[f.name] = bodyPtr(f)
	}

	repl := parseProg(t, "#define LIMIT 5\n").Decls[0]
	proc, err := in.Patch(declIdx(t, prog, "LIMIT"), repl)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range in.c.funcs {
		changed := bodyPtr(f) != pristine[f.name]
		if f.name == "uses_macro" && !changed {
			t.Error("macro dependent kept its pristine compiled body")
		}
		if f.name != "uses_macro" && changed {
			t.Errorf("%s recompiled by a macro patch it never inlined", f.name)
		}
	}
	if s := in.PatchStats(); s.Blocks == 0 {
		t.Errorf("PatchStats = %+v, want the dependents' fused blocks", s)
	}
	if err := proc.Init(); err != nil {
		t.Fatal(err)
	}
	v, err := proc.Call("uses_macro")
	if err != nil {
		t.Fatal(err)
	}
	if v.I != 10 {
		t.Errorf("uses_macro() after LIMIT=5 patch = %d, want 10", v.I)
	}
}

// TestNonFusedIncrReportsNoBlocks: the per-statement backend never fuses,
// so its stats — compile-time and per-patch — stay zero.
func TestNonFusedIncrReportsNoBlocks(t *testing.T) {
	prog := parseProg(t, blocksSrc)
	bus := hw.NewBus()
	bus.SetFloating(true)
	in, err := NewIncr(prog, kernel.New(&hw.Clock{}), bus, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s := in.proc.Stats(); s != (BlockStats{}) {
		t.Errorf("non-fused compile stats = %+v, want zero", s)
	}
	repl := parseProg(t, `int helper(int x) { return x; }`).Decls[0]
	if _, err := in.Patch(declIdx(t, prog, "helper"), repl); err != nil {
		t.Fatal(err)
	}
	if s := in.PatchStats(); s != (BlockStats{}) {
		t.Errorf("non-fused PatchStats = %+v, want zero", s)
	}
}
