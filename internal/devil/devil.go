// Package devil is the public façade of the Devil compiler: it ties together
// the scanner, parser, consistency checker and stub generator.
//
// Devil is an interface definition language for hardware devices (Réveillère
// et al., ASE 2000; Mérillon et al., OSDI 2000). A specification describes a
// device in three layers — ports, registers, device variables — and the
// compiler both verifies the specification's internal consistency and
// generates the stubs that drivers call instead of hand-written port I/O.
//
// Typical use:
//
//	spec, err := devil.Compile("busmouse.dil", src)
//	if err != nil { ... }            // syntax or consistency errors
//	stubs, err := spec.Generate(devil.Config{
//	    Bus:   bus,
//	    Bases: map[string]hw.Port{"base": 0x23c},
//	    Mode:  devil.Debug,
//	})
//	dx, err := stubs.Get("dx")       // typed, checked access
package devil

import (
	"fmt"

	"repro/internal/devil/ast"
	"repro/internal/devil/check"
	"repro/internal/devil/parser"
)

// Spec is a parsed and checked Devil specification.
type Spec struct {
	// Filename identifies the specification source (the paper's debug stubs
	// carry it in every typed value as the __FILE__ component).
	Filename string
	// Source is the original text.
	Source string
	// AST is the parsed device declaration.
	AST *ast.Device
	// Info is the resolved symbol and layout information from the checker.
	Info *check.Info
}

// CompileError aggregates the diagnostics of a failed compilation.
type CompileError struct {
	Filename string
	Errors   []error
}

// Error implements the error interface.
func (e *CompileError) Error() string {
	if len(e.Errors) == 0 {
		return fmt.Sprintf("%s: compilation failed", e.Filename)
	}
	if len(e.Errors) == 1 {
		return fmt.Sprintf("%s:%s", e.Filename, e.Errors[0])
	}
	return fmt.Sprintf("%s:%v (and %d more errors)", e.Filename, e.Errors[0], len(e.Errors)-1)
}

// All returns every diagnostic.
func (e *CompileError) All() []error { return e.Errors }

// Parse runs only the syntactic phase.
func Parse(filename, src string) (*ast.Device, error) {
	dev, errs := parser.Parse(src)
	if len(errs) > 0 {
		return dev, wrapErrors(filename, toErrs(errs))
	}
	return dev, nil
}

// Compile parses and checks a specification.
func Compile(filename, src string) (*Spec, error) {
	dev, perrs := parser.Parse(src)
	if len(perrs) > 0 {
		return nil, wrapErrors(filename, toErrs(perrs))
	}
	info, cerrs := check.Check(dev)
	if len(cerrs) > 0 {
		errs := make([]error, len(cerrs))
		for i, e := range cerrs {
			errs[i] = e
		}
		return nil, wrapErrors(filename, errs)
	}
	return &Spec{Filename: filename, Source: src, AST: dev, Info: info}, nil
}

func toErrs(l parser.ErrorList) []error {
	errs := make([]error, len(l))
	for i, e := range l {
		errs[i] = e
	}
	return errs
}

func wrapErrors(filename string, errs []error) error {
	return &CompileError{Filename: filename, Errors: errs}
}
