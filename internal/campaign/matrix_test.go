package campaign_test

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/campaign"
)

// matrixSpec crosses the fake two-driver campaign with a scenario cell.
func matrixSpec() campaign.Spec {
	s := spec2()
	s.Scenarios = []string{"pristine", "flaky"}
	return s
}

// TestScenarioNormalizationAndFingerprint pins the matrix compatibility
// contract: every spelling of the classic pristine-only campaign
// fingerprints identically to a pre-matrix spec, scenario cells are
// fingerprinted (different matrices are different campaigns), and the
// wall-clock deadline is an execution knob outside the fingerprint.
func TestScenarioNormalizationAndFingerprint(t *testing.T) {
	base := spec2()
	for _, scenarios := range [][]string{nil, {}, {"pristine"}, {""}, {"", "pristine"}} {
		s := spec2()
		s.Scenarios = scenarios
		if s.Fingerprint() != base.Fingerprint() {
			t.Errorf("Scenarios=%q fingerprints differently from the pristine default", scenarios)
		}
		if n := s.Normalized(); len(n.Scenarios) != 0 {
			t.Errorf("Normalized(%q).Scenarios = %q, want none", scenarios, n.Scenarios)
		}
	}

	matrix := matrixSpec()
	if matrix.Fingerprint() == base.Fingerprint() {
		t.Error("a scenario matrix fingerprints like the pristine campaign")
	}
	// "pristine" and "" are one cell; duplicates collapse.
	spelled := spec2()
	spelled.Scenarios = []string{"", "flaky", "pristine", "flaky"}
	if spelled.Fingerprint() != matrix.Fingerprint() {
		t.Error(`["", flaky, pristine, flaky] fingerprints differently from [pristine, flaky]`)
	}
	if n := spelled.Normalized(); !reflect.DeepEqual(n.Scenarios, []string{"", "flaky"}) {
		t.Errorf("normalized scenarios = %q", n.Scenarios)
	}

	timeout := matrixSpec()
	timeout.BootTimeoutMS = 5000
	if timeout.Fingerprint() != matrix.Fingerprint() {
		t.Error("BootTimeoutMS changed the fingerprint (must stay an execution knob)")
	}
}

// TestMatrixRunCoversEveryCell: a scenario spec boots every selected
// mutant once per cell, records carry the scenario, and the aggregate
// keys cells by label with the pristine cell under the bare driver name.
func TestMatrixRunCoversEveryCell(t *testing.T) {
	store := campaign.NewMemStore()
	sum, err := campaign.Run(matrixSpec(), &fakeWorkload{}, store, campaign.Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Total != 130 || sum.Ran != 130 {
		t.Fatalf("summary = %+v, want 130 selected and ran (65 tasks × 2 cells)", sum)
	}
	tables, order, err := campaign.Aggregate(store.Records())
	if err != nil {
		t.Fatal(err)
	}
	wantOrder := []string{"alpha", "beta", "alpha@flaky", "beta@flaky"}
	if !reflect.DeepEqual(order, wantOrder) {
		t.Errorf("cell order = %v, want %v (scenario-major)", order, wantOrder)
	}
	for _, label := range wantOrder {
		cell := tables[label]
		if cell == nil || !cell.Complete() {
			t.Fatalf("cell %s incomplete: %+v", label, cell)
		}
		if cell.Label() != label {
			t.Errorf("cell %s labels itself %q", label, cell.Label())
		}
	}
	if tables["alpha@flaky"].Driver != "alpha" || tables["alpha@flaky"].Scenario != "flaky" {
		t.Errorf("scenario cell fields = %q/%q", tables["alpha@flaky"].Driver, tables["alpha@flaky"].Scenario)
	}
	// The pristine cell's records keep the historical shape: no scenario
	// field, so pre-matrix tooling reads them unchanged.
	for _, r := range store.Records() {
		if r.Kind == campaign.KindResult && r.Scenario != "" && r.Scenario != "flaky" {
			t.Fatalf("record with unexpected scenario %q", r.Scenario)
		}
	}

	// Offline status: per-cell progress and full totals.
	snap := campaign.SnapshotFromRecords(store.Records())
	if snap.Total != 130 || snap.Recorded != 130 {
		t.Errorf("offline snapshot %d/%d, want 130/130", snap.Recorded, snap.Total)
	}
	if len(snap.Drivers) != 4 {
		t.Errorf("offline snapshot has %d cells, want 4: %+v", len(snap.Drivers), snap.Drivers)
	}
}

// TestMatrixSerialShardedResumedIdentical runs the determinism protocol
// over the matrix: the serial aggregate, a per-shard run merged, and a
// kill-and-resume run must all reduce to identical per-cell tables.
func TestMatrixSerialShardedResumedIdentical(t *testing.T) {
	serial := campaign.NewMemStore()
	if _, err := campaign.Run(matrixSpec(), &fakeWorkload{}, serial, campaign.Options{}); err != nil {
		t.Fatal(err)
	}
	want, _, err := campaign.Aggregate(serial.Records())
	if err != nil {
		t.Fatal(err)
	}

	var stores []campaign.Store
	covered := 0
	for sh := 0; sh < 4; sh++ {
		st := campaign.NewMemStore()
		sum, err := campaign.Run(matrixSpec(), &fakeWorkload{}, st, campaign.Options{Shards: []int{sh}})
		if err != nil {
			t.Fatal(err)
		}
		covered += sum.Ran
		stores = append(stores, st)
	}
	if covered != 130 {
		t.Fatalf("shards covered %d tasks, want 130", covered)
	}
	merged := campaign.NewMemStore()
	if err := campaign.Merge(merged, stores...); err != nil {
		t.Fatal(err)
	}
	got, _, err := campaign.Aggregate(merged.Records())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("sharded+merged matrix differs from serial:\ngot  %+v\nwant %+v", got, want)
	}

	// Kill mid-run (prefix of the record stream), resume, compare.
	partial := campaign.NewMemStore()
	recs := serial.Records()
	for _, r := range recs[:len(recs)/3] {
		if err := partial.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	sum, err := campaign.Run(matrixSpec(), &fakeWorkload{}, partial, campaign.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Ran == 0 || sum.Skipped == 0 {
		t.Fatalf("resume summary %+v does not exercise the resume path", sum)
	}
	got, _, err = campaign.Aggregate(partial.Records())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("resumed matrix differs from serial")
	}
}

// TestMatrixDedupPristineCellOnly: identical mutant streams are deduped
// on the pristine cell but boot individually on scenario cells, where
// per-task fault seeds make identical streams diverge.
func TestMatrixDedupPristineCellOnly(t *testing.T) {
	spec := dedupSpec()
	spec.Scenarios = []string{"pristine", "flaky"}
	wl := &dedupWorkload{}
	store := campaign.NewMemStore()
	sum, err := campaign.Run(spec, wl, store, campaign.Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Pristine: alpha dedupes 40 mutants to 14 boots, beta boots 25.
	// Flaky: everything boots (40 + 25).
	if wl.boots != 14+25+40+25 {
		t.Errorf("boots = %d, want 104 (dedup only on the pristine cell)", wl.boots)
	}
	if sum.Deduped != 26 {
		t.Errorf("deduped = %d, want 26 (the pristine alpha duplicates)", sum.Deduped)
	}
	for _, r := range store.Records() {
		if r.Kind == campaign.KindResult && r.DedupOf != nil && r.Scenario != "" {
			t.Fatalf("scenario-cell record alpha#%d@%s carries dedup_of", r.Mutant, r.Scenario)
		}
	}
}

// TestMergeRejectsScenarioCellMismatch (the merge satellite): stores
// whose specs differ only in their scenario matrix are separate
// campaigns; the merge error must name the mismatched cells instead of
// dumping two fingerprints.
func TestMergeRejectsScenarioCellMismatch(t *testing.T) {
	pristine := campaign.NewMemStore()
	if _, err := campaign.Run(spec2(), &fakeWorkload{}, pristine, campaign.Options{}); err != nil {
		t.Fatal(err)
	}
	matrix := campaign.NewMemStore()
	if _, err := campaign.Run(matrixSpec(), &fakeWorkload{}, matrix, campaign.Options{}); err != nil {
		t.Fatal(err)
	}
	dst := campaign.NewMemStore()
	err := campaign.Merge(dst, pristine, matrix)
	if err == nil {
		t.Fatal("merge of different scenario matrices accepted")
	}
	for _, want := range []string{"scenario", "flaky", "pristine"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("scenario-mismatch error %q does not name %q", err, want)
		}
	}

	// A genuinely different spec (not just scenarios) keeps the plain
	// fingerprint error.
	other := spec2()
	other.Seed = 99
	foreign := campaign.NewMemStore()
	if _, err := campaign.Run(other, &fakeWorkload{}, foreign, campaign.Options{}); err != nil {
		t.Fatal(err)
	}
	dst2 := campaign.NewMemStore()
	err = campaign.Merge(dst2, pristine, foreign)
	if err == nil {
		t.Fatal("merge of different specs accepted")
	}
	if strings.Contains(err.Error(), "scenario") {
		t.Errorf("unrelated spec mismatch misreported as a scenario mismatch: %v", err)
	}
}

// panickyWorkload panics the harness on every alpha mutant divisible by
// 10 — a worker-killing fault the engine must quarantine, not die from.
type panickyWorkload struct {
	fakeWorkload
	mu      sync.Mutex
	workers int
}

func (f *panickyWorkload) NewWorker(campaign.Spec) (campaign.Worker, error) {
	f.mu.Lock()
	f.workers++
	f.mu.Unlock()
	return &panickyWorker{f: f}, nil
}

type panickyWorker struct{ f *panickyWorkload }

func (w *panickyWorker) Boot(t campaign.Task) (campaign.Outcome, error) {
	if t.Driver == "alpha" && t.Mutant%10 == 0 {
		panic(fmt.Sprintf("sim blew up on %s", t.Key()))
	}
	return (&fakeWorker{f: &w.f.fakeWorkload}).Boot(t)
}

func (w *panickyWorker) Close() {}

// TestHarnessPanicQuarantine: a panicking boot is recovered, recorded as
// a quarantined RowHarnessPanic result with the panic text, the worker
// is rebuilt, and the campaign completes with a live process.
func TestHarnessPanicQuarantine(t *testing.T) {
	wl := &panickyWorkload{}
	store := campaign.NewMemStore()
	sum, err := campaign.Run(spec2(), wl, store, campaign.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Panics != 4 { // alpha mutants 0, 10, 20, 30
		t.Errorf("panics = %d, want 4", sum.Panics)
	}
	if sum.Ran != 61 || sum.Ran+sum.Panics != sum.Total {
		t.Errorf("summary = %+v, want every task recorded", sum)
	}
	if wl.workers <= 2 {
		t.Errorf("workers built = %d; quarantine must rebuild the panicked worker", wl.workers)
	}
	quarantined := 0
	for _, r := range store.Records() {
		if r.Kind != campaign.KindResult || !r.HarnessPanic {
			continue
		}
		quarantined++
		if r.Row != campaign.RowHarnessPanic {
			t.Errorf("panic record row = %q", r.Row)
		}
		if !strings.Contains(r.Panic, "sim blew up") {
			t.Errorf("panic record text = %q", r.Panic)
		}
		if r.Driver != "alpha" || r.Mutant%10 != 0 {
			t.Errorf("unexpected quarantined mutant %s#%d", r.Driver, r.Mutant)
		}
	}
	if quarantined != 4 {
		t.Errorf("%d quarantined records, want 4", quarantined)
	}

	// The quarantined row reaches the offline snapshot and the tables.
	snap := campaign.SnapshotFromRecords(store.Records())
	if snap.Panics != 4 || snap.Recorded != 65 {
		t.Errorf("offline snapshot panics=%d recorded=%d, want 4/65", snap.Panics, snap.Recorded)
	}
	tables, _, err := campaign.Aggregate(store.Records())
	if err != nil {
		t.Fatal(err)
	}
	if tables["alpha"].Counts[campaign.RowHarnessPanic] != 4 {
		t.Errorf("alpha table counts %d harness panics, want 4",
			tables["alpha"].Counts[campaign.RowHarnessPanic])
	}

	// A rerun over the store treats quarantined mutants as decided.
	sum, err = campaign.Run(spec2(), &fakeWorkload{}, store, campaign.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Ran != 0 || sum.Skipped != 65 {
		t.Errorf("rerun after quarantine: %+v, want everything skipped", sum)
	}
}

// alwaysPanicWorkload panics on every single boot — the pathological
// workload of the CI smoke: the run must still finish with a live
// process and a fully quarantined store.
type alwaysPanicWorkload struct{ fakeWorkload }

func (f *alwaysPanicWorkload) NewWorker(campaign.Spec) (campaign.Worker, error) {
	return alwaysPanicWorker{}, nil
}

type alwaysPanicWorker struct{}

func (alwaysPanicWorker) Boot(t campaign.Task) (campaign.Outcome, error) {
	panic("every boot dies")
}
func (alwaysPanicWorker) Close() {}

func TestAlwaysPanickingWorkloadCompletes(t *testing.T) {
	store := campaign.NewMemStore()
	sum, err := campaign.Run(spec2(), &alwaysPanicWorkload{}, store, campaign.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Panics != 65 || sum.Ran != 0 {
		t.Errorf("summary = %+v, want all 65 quarantined", sum)
	}
	snap := campaign.SnapshotFromRecords(store.Records())
	if snap.Panics != 65 || snap.Recorded != 65 {
		t.Errorf("offline snapshot %+v, want 65 panics", snap)
	}
}
