package campaign_test

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/campaign"
)

// fakeWorkload is a deterministic synthetic workload: driver "alpha" has
// 40 mutants, "beta" 25; the outcome row is a pure function of the task.
type fakeWorkload struct {
	mu    sync.Mutex
	boots int
}

var fakeRows = []string{"Boot", "Crash", "Halt"}

func (f *fakeWorkload) Expand(spec campaign.Spec) ([]campaign.Meta, []campaign.Task, error) {
	sizes := map[string]int{"alpha": 40, "beta": 25}
	var metas []campaign.Meta
	var tasks []campaign.Task
	for _, d := range spec.Drivers {
		n, ok := sizes[d]
		if !ok {
			return nil, nil, fmt.Errorf("unknown driver %q", d)
		}
		metas = append(metas, campaign.Meta{Driver: d, Sites: n / 2, Enumerated: n, Selected: n})
		for i := 0; i < n; i++ {
			tasks = append(tasks, campaign.Task{Driver: d, Mutant: i})
		}
	}
	return metas, tasks, nil
}

func (f *fakeWorkload) NewWorker(campaign.Spec) (campaign.Worker, error) {
	return &fakeWorker{f: f}, nil
}

type fakeWorker struct{ f *fakeWorkload }

func (w *fakeWorker) Boot(t campaign.Task) (campaign.Outcome, error) {
	w.f.mu.Lock()
	w.f.boots++
	w.f.mu.Unlock()
	return campaign.Outcome{
		Row:   fakeRows[t.Mutant%len(fakeRows)],
		Site:  t.Mutant / 2,
		Lost:  t.Mutant == 7,
		Steps: int64(100 + t.Mutant),
	}, nil
}

func (w *fakeWorker) Close() {}

func spec2() campaign.Spec {
	return campaign.Spec{Name: "t", Drivers: []string{"alpha", "beta"}, Seed: 1, Shards: 4}
}

func TestRunRecordsEverything(t *testing.T) {
	store := campaign.NewMemStore()
	sum, err := campaign.Run(spec2(), &fakeWorkload{}, store, campaign.Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Total != 65 || sum.Ran != 65 || sum.Skipped != 0 {
		t.Fatalf("summary = %+v, want 65/65/0", sum)
	}
	tables, order, err := campaign.Aggregate(store.Records())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(order, []string{"alpha", "beta"}) {
		t.Errorf("driver order = %v", order)
	}
	if !tables["alpha"].Complete() || tables["alpha"].Results != 40 {
		t.Errorf("alpha incomplete: %+v", tables["alpha"])
	}
	if tables["alpha"].Losses != 1 {
		t.Errorf("alpha losses = %d, want 1 (mutant 7)", tables["alpha"].Losses)
	}
	if tables["beta"].Losses != 1 {
		t.Errorf("beta losses = %d, want 1 (mutant 7)", tables["beta"].Losses)
	}
}

// TestRunIsIdempotent: a second run over a complete store boots nothing.
func TestRunIsIdempotent(t *testing.T) {
	store := campaign.NewMemStore()
	wl := &fakeWorkload{}
	if _, err := campaign.Run(spec2(), wl, store, campaign.Options{}); err != nil {
		t.Fatal(err)
	}
	sum, err := campaign.Run(spec2(), wl, store, campaign.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Ran != 0 || sum.Skipped != 65 {
		t.Errorf("second run: %+v, want 0 ran / 65 skipped", sum)
	}
	if wl.boots != 65 {
		t.Errorf("total boots = %d, want 65", wl.boots)
	}
}

// TestShardedRunsMergeToSerialResult: running each shard into its own
// store and merging yields exactly the serial aggregate.
func TestShardedRunsMergeToSerialResult(t *testing.T) {
	serial := campaign.NewMemStore()
	if _, err := campaign.Run(spec2(), &fakeWorkload{}, serial, campaign.Options{}); err != nil {
		t.Fatal(err)
	}
	want, _, err := campaign.Aggregate(serial.Records())
	if err != nil {
		t.Fatal(err)
	}

	var stores []campaign.Store
	seen := 0
	for sh := 0; sh < 4; sh++ {
		st := campaign.NewMemStore()
		sum, err := campaign.Run(spec2(), &fakeWorkload{}, st, campaign.Options{Shards: []int{sh}})
		if err != nil {
			t.Fatal(err)
		}
		seen += sum.Ran
		stores = append(stores, st)
	}
	if seen != 65 {
		t.Fatalf("shards covered %d tasks, want 65", seen)
	}
	merged := campaign.NewMemStore()
	if err := campaign.Merge(merged, stores...); err != nil {
		t.Fatal(err)
	}
	got, _, err := campaign.Aggregate(merged.Records())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("merged aggregate differs from serial:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestResumeSkipsStoredResults: a store holding half the results only
// boots the other half, and the aggregate matches a full run.
func TestResumeSkipsStoredResults(t *testing.T) {
	full := campaign.NewMemStore()
	if _, err := campaign.Run(spec2(), &fakeWorkload{}, full, campaign.Options{}); err != nil {
		t.Fatal(err)
	}
	recs := full.Records()
	partial := campaign.NewMemStore()
	for _, r := range recs[:len(recs)/2] {
		if err := partial.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	wl := &fakeWorkload{}
	sum, err := campaign.Run(spec2(), wl, partial, campaign.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Ran == 0 || sum.Ran == 65 || sum.Ran+sum.Skipped != 65 {
		t.Fatalf("resume summary = %+v", sum)
	}
	want, _, _ := campaign.Aggregate(recs)
	got, _, _ := campaign.Aggregate(partial.Records())
	if !reflect.DeepEqual(got, want) {
		t.Errorf("resumed aggregate differs from full run")
	}
}

// TestFingerprintMismatchRejected: a store from one spec refuses a run
// of another.
func TestFingerprintMismatchRejected(t *testing.T) {
	store := campaign.NewMemStore()
	if _, err := campaign.Run(spec2(), &fakeWorkload{}, store, campaign.Options{}); err != nil {
		t.Fatal(err)
	}
	other := spec2()
	other.Seed = 99
	if _, err := campaign.Run(other, &fakeWorkload{}, store, campaign.Options{}); err == nil {
		t.Error("run with a different spec accepted")
	}
	// Shard count is a partition choice, not a workload change: same
	// fingerprint, so a differently-sharded resume is allowed.
	resharded := spec2()
	resharded.Shards = 2
	if resharded.Fingerprint() != spec2().Fingerprint() {
		t.Error("shard count changed the fingerprint")
	}
}

// TestBackendSpellingsFingerprintIdentically: every spelling of the same
// execution engine must canonicalize to one fingerprint, so a rerun that
// names the default explicitly (or uses an alias) still resumes.
func TestBackendSpellingsFingerprintIdentically(t *testing.T) {
	base := spec2()
	want := base.Fingerprint()
	explicit := spec2()
	explicit.Backend = "block"
	if explicit.Fingerprint() != want {
		t.Error(`"block" fingerprints differently from the "" default`)
	}
	compiled := spec2()
	compiled.Backend = "compiled"
	if compiled.Fingerprint() == want {
		t.Error(`"compiled" fingerprints like the block default`)
	}
	interp := spec2()
	interp.Backend = "interp"
	tree := spec2()
	tree.Backend = "tree"
	if interp.Fingerprint() != tree.Fingerprint() {
		t.Error(`"tree" fingerprints differently from "interp"`)
	}
	if interp.Fingerprint() == want {
		t.Error("interp backend fingerprints like the block default")
	}
}

// TestFileStoreRoundTripAndTornLine: records survive reopen, and a torn
// final line (the crash artefact) is ignored.
func TestFileStoreRoundTripAndTornLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.jsonl")
	st, err := campaign.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := campaign.Run(spec2(), &fakeWorkload{}, st, campaign.Options{}); err != nil {
		t.Fatal(err)
	}
	n := len(st.Records())
	st.Close()

	// Simulate a crash mid-append: torn trailing line.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"kind":"result","driver":"alp`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st2, err := campaign.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if len(st2.Records()) != n {
		t.Errorf("reopened store has %d records, want %d", len(st2.Records()), n)
	}
	sum, err := campaign.Run(spec2(), &fakeWorkload{}, st2, campaign.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Ran != 0 {
		t.Errorf("complete store reran %d tasks after torn line", sum.Ran)
	}
}

// TestInvalidShardLeavesStoreUntouched: a rejected invocation must not
// initialize the store (a later resume would silently launch it).
func TestInvalidShardLeavesStoreUntouched(t *testing.T) {
	store := campaign.NewMemStore()
	_, err := campaign.Run(spec2(), &fakeWorkload{}, store, campaign.Options{Shards: []int{9}})
	if err == nil {
		t.Fatal("out-of-range shard accepted")
	}
	if n := len(store.Records()); n != 0 {
		t.Errorf("rejected run wrote %d records to the store", n)
	}
}

// failingStore rejects every Append after the first result record.
type failingStore struct {
	campaign.MemStore
	mu      sync.Mutex
	results int
}

func (s *failingStore) Append(r campaign.Record) error {
	if r.Kind == campaign.KindResult {
		s.mu.Lock()
		s.results++
		dead := s.results > 1
		s.mu.Unlock()
		if dead {
			return fmt.Errorf("disk full")
		}
	}
	return s.MemStore.Append(r)
}

// TestRunAbortsOnPersistentStoreError: once the store fails, the engine
// must stop booting instead of paying for the whole campaign.
func TestRunAbortsOnPersistentStoreError(t *testing.T) {
	wl := &fakeWorkload{}
	st := &failingStore{}
	_, err := campaign.Run(spec2(), wl, st, campaign.Options{Workers: 2})
	if err == nil {
		t.Fatal("store failure not reported")
	}
	// The feed aborts promptly: far fewer boots than the 65-task campaign.
	if wl.boots > 20 {
		t.Errorf("engine booted %d tasks after the store died", wl.boots)
	}
}

// TestFileStoreAppendsAfterCrashSurviveReopen: a torn line must not
// orphan the records a resume appends after it — OpenFile truncates the
// crash artefact, so the resumed store converges on disk.
func TestFileStoreAppendsAfterCrashSurviveReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.jsonl")
	st, err := campaign.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	spec := spec2()
	spec.Drivers = []string{"beta"}
	if _, err := campaign.Run(spec, &fakeWorkload{}, st, campaign.Options{Shards: []int{0, 1}}); err != nil {
		t.Fatal(err)
	}
	st.Close()

	// Crash artefact at the tail.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"kind":"result","driver":"be`)
	f.Close()

	// Resume: the remaining shards' results append after the truncated
	// artefact and must be visible on the next open.
	st2, err := campaign.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := campaign.Run(spec, &fakeWorkload{}, st2, campaign.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Ran == 0 {
		t.Fatal("nothing left to resume; test premise broken")
	}
	want := len(st2.Records())
	st2.Close()

	st3, err := campaign.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	if got := len(st3.Records()); got != want {
		t.Errorf("records after reopen = %d, want %d (post-crash appends lost)", got, want)
	}
	sum, err = campaign.Run(spec, &fakeWorkload{}, st3, campaign.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Ran != 0 {
		t.Errorf("store did not converge: %d tasks reran", sum.Ran)
	}
}

// TestOpenFileRejectsForeignFile: pointing the store at some other file
// must fail instead of silently loading nothing (or truncating it).
func TestOpenFileRejectsForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "go.mod")
	if err := os.WriteFile(path, []byte("module repro\n\ngo 1.24\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := campaign.OpenFile(path); err == nil {
		t.Fatal("foreign file accepted as a campaign store")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "module repro\n\ngo 1.24\n" {
		t.Error("foreign file was modified by OpenFile")
	}
}

// TestShardAssignmentIsStable: the hash partition covers every task and
// does not depend on enumeration order.
func TestShardAssignmentIsStable(t *testing.T) {
	counts := make(map[int]int)
	for i := 0; i < 65; i++ {
		sh := campaign.ShardOf("alpha", i, 4)
		if sh < 0 || sh >= 4 {
			t.Fatalf("shard %d outside range", sh)
		}
		counts[sh]++
		if sh != campaign.ShardOf("alpha", i, 4) {
			t.Fatal("shard assignment not deterministic")
		}
	}
	if len(counts) != 4 {
		t.Errorf("only %d of 4 shards populated: %v", len(counts), counts)
	}
	if campaign.ShardOf("alpha", 3, 1) != 0 {
		t.Error("single-shard campaign must map everything to shard 0")
	}
}

// TestMergeRejectsForeignStore: merging stores of different specs fails.
func TestMergeRejectsForeignStore(t *testing.T) {
	a := campaign.NewMemStore()
	if _, err := campaign.Run(spec2(), &fakeWorkload{}, a, campaign.Options{}); err != nil {
		t.Fatal(err)
	}
	other := spec2()
	other.SamplePct = 50
	b := campaign.NewMemStore()
	if _, err := campaign.Run(other, &fakeWorkload{}, b, campaign.Options{}); err != nil {
		t.Fatal(err)
	}
	dst := campaign.NewMemStore()
	if err := campaign.Merge(dst, a, b); err == nil {
		t.Error("merge of stores with different fingerprints accepted")
	}
}

// dedupWorkload is fakeWorkload with stream-hash collisions: driver
// "alpha" mutants 3k, 3k+1 and 3k+2 share one mutated token stream.
type dedupWorkload struct {
	fakeWorkload
}

func (f *dedupWorkload) Expand(spec campaign.Spec) ([]campaign.Meta, []campaign.Task, error) {
	metas, tasks, err := f.fakeWorkload.Expand(spec)
	if err != nil {
		return nil, nil, err
	}
	for i := range tasks {
		if tasks[i].Driver == "alpha" {
			tasks[i].Dedup = fmt.Sprintf("grp%d", tasks[i].Mutant/3)
		}
	}
	return metas, tasks, nil
}

func (f *dedupWorkload) NewWorker(campaign.Spec) (campaign.Worker, error) {
	return &fakeWorker{f: &f.fakeWorkload}, nil
}

// The fake outcome is a pure function of the mutant ID, so mutants of
// one dedup group would NOT boot identically — which is exactly how the
// test proves the engine copies the representative's outcome instead of
// booting duplicates.
func dedupSpec() campaign.Spec {
	return campaign.Spec{Name: "dd", Drivers: []string{"alpha", "beta"}, Seed: 1}
}

// TestDedupBootsOnceAndRecordsAll: duplicate streams boot once, every
// mutant still gets a result record, and the duplicates carry dedup_of
// provenance pointing at the mutant that booted.
func TestDedupBootsOnceAndRecordsAll(t *testing.T) {
	wl := &dedupWorkload{}
	store := campaign.NewMemStore()
	sum, err := campaign.Run(dedupSpec(), wl, store, campaign.Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	// alpha: 40 mutants in ceil(40/3)=14 groups → 14 boots; beta: 25.
	if wl.boots != 14+25 {
		t.Errorf("boots = %d, want 39", wl.boots)
	}
	if sum.Ran != 39 || sum.Deduped != 26 || sum.Total != 65 {
		t.Errorf("summary = %+v, want Ran=39 Deduped=26 Total=65", sum)
	}
	byMutant := make(map[string]campaign.Record)
	for _, r := range store.Records() {
		if r.Kind == campaign.KindResult {
			byMutant[campaign.TaskKey(r.Driver, r.Mutant)] = r
		}
	}
	if len(byMutant) != 65 {
		t.Fatalf("%d result records, want 65 (every selected mutant records)", len(byMutant))
	}
	for m := 0; m < 40; m++ {
		r := byMutant[campaign.TaskKey("alpha", m)]
		rep := (m / 3) * 3
		if m == rep {
			if r.DedupOf != nil {
				t.Errorf("alpha#%d is a representative but has dedup_of=%d", m, *r.DedupOf)
			}
			continue
		}
		if r.DedupOf == nil || *r.DedupOf != rep {
			t.Errorf("alpha#%d: dedup_of = %v, want %d", m, r.DedupOf, rep)
			continue
		}
		want := byMutant[campaign.TaskKey("alpha", rep)]
		if r.Row != want.Row || r.Site != want.Site || r.Steps != want.Steps || r.Lost != want.Lost {
			t.Errorf("alpha#%d outcome differs from its representative", m)
		}
		if r.Shard != campaign.ShardOf("alpha", m, 1) {
			t.Errorf("alpha#%d: dedup record keeps the representative's shard", m)
		}
	}
	for _, r := range byMutant {
		if r.Driver == "beta" && r.DedupOf != nil {
			t.Errorf("beta#%d deduped without a dedup key", r.Mutant)
		}
	}
}

// TestDedupResumeUsesStoredRepresentative: when the representative's
// record survived a crash but the duplicates' did not, a resume records
// them from the stored outcome without booting anything in the group.
func TestDedupResumeUsesStoredRepresentative(t *testing.T) {
	full := campaign.NewMemStore()
	if _, err := campaign.Run(dedupSpec(), &dedupWorkload{}, full, campaign.Options{}); err != nil {
		t.Fatal(err)
	}
	// Keep spec/meta records plus only the representatives' results.
	partial := campaign.NewMemStore()
	for _, r := range full.Records() {
		if r.Kind == campaign.KindResult && r.DedupOf != nil {
			continue
		}
		if err := partial.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	wl := &dedupWorkload{}
	sum, err := campaign.Run(dedupSpec(), wl, partial, campaign.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if wl.boots != 0 {
		t.Errorf("resume booted %d mutants; all outcomes were derivable from stored representatives", wl.boots)
	}
	if sum.Deduped != 26 || sum.Ran != 0 {
		t.Errorf("resume summary = %+v, want Ran=0 Deduped=26", sum)
	}
	wantAgg, _, _ := campaign.Aggregate(full.Records())
	gotAgg, _, _ := campaign.Aggregate(partial.Records())
	if !reflect.DeepEqual(gotAgg, wantAgg) {
		t.Error("resumed-with-dedup aggregate differs from the original run")
	}
}

// TestDedupInvisibleToAggregation: tables derived from a deduped store
// are identical to tables from a store where every mutant booted.
func TestDedupInvisibleToAggregation(t *testing.T) {
	deduped := campaign.NewMemStore()
	if _, err := campaign.Run(dedupSpec(), &dedupWorkload{}, deduped, campaign.Options{}); err != nil {
		t.Fatal(err)
	}
	booted := campaign.NewMemStore()
	if _, err := campaign.Run(dedupSpec(), &fakeWorkload{}, booted, campaign.Options{}); err != nil {
		t.Fatal(err)
	}
	// The fake outcome is a function of the mutant ID, so a deduped
	// group's duplicates aggregate with the representative's row; to
	// compare apples to apples, rewrite the booted store's records for
	// duplicates to their representative's outcome — what identical
	// streams would have produced in a real workload.
	rewritten := campaign.NewMemStore()
	byMutant := make(map[int]campaign.Record)
	for _, r := range booted.Records() {
		if r.Kind == campaign.KindResult && r.Driver == "alpha" {
			byMutant[r.Mutant] = r
		}
	}
	for _, r := range booted.Records() {
		if r.Kind == campaign.KindResult && r.Driver == "alpha" {
			rep := byMutant[(r.Mutant/3)*3]
			r.Row, r.Site, r.Steps, r.Lost = rep.Row, rep.Site, rep.Steps, rep.Lost
		}
		if err := rewritten.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	want, _, err := campaign.Aggregate(rewritten.Records())
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := campaign.Aggregate(deduped.Records())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("deduped aggregate differs:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestFlushEveryKnob: Spec.FlushEvery reaches the file store, does not
// change the fingerprint (a durability knob, not a workload change),
// and a crash-resume at a non-default interval converges exactly like
// the default — the unflushed tail simply reruns.
func TestFlushEveryKnob(t *testing.T) {
	spec := spec2()
	spec.FlushEvery = 7
	if spec.Fingerprint() != spec2().Fingerprint() {
		t.Error("FlushEvery changed the fingerprint")
	}

	path := filepath.Join(t.TempDir(), "c.jsonl")
	st, err := campaign.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// campaign.Run only part of the campaign, then simulate a crash: drop the
	// file without Close, so everything since the last 7-record
	// checkpoint is lost, then corrupt the tail like a torn write.
	if _, err := campaign.Run(spec, &fakeWorkload{}, st, campaign.Options{Shards: []int{0, 2}}); err != nil {
		t.Fatal(err)
	}
	inMemory := len(st.Records())
	// Abandon st (no Close, no flush): the OS file holds only complete
	// checkpoints.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"kind":"result","driver":"alp`)
	f.Close()

	st2, err := campaign.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	onDisk := len(st2.Records())
	if onDisk >= inMemory {
		t.Fatalf("crash lost nothing (%d on disk, %d were appended); flush interval not in effect?",
			onDisk, inMemory)
	}
	sum, err := campaign.Run(spec, &fakeWorkload{}, st2, campaign.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Ran == 0 {
		t.Fatal("resume booted nothing")
	}
	if sum.Ran+sum.Skipped != sum.Total || sum.Total != 65 {
		t.Errorf("resume summary %+v does not converge", sum)
	}
	tables, _, err := campaign.Aggregate(st2.Records())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []string{"alpha", "beta"} {
		if !tables[d].Complete() {
			t.Errorf("%s incomplete after crash-resume at FlushEvery=7: %d/%d",
				d, tables[d].Results, tables[d].Selected)
		}
	}
}

// TestProgressReachesTotal: the callback's final done equals the total.
func TestProgressReachesTotal(t *testing.T) {
	store := campaign.NewMemStore()
	var mu sync.Mutex
	maxDone, total := 0, 0
	_, err := campaign.Run(spec2(), &fakeWorkload{}, store, campaign.Options{
		Progress: func(d, tot int) {
			mu.Lock()
			if d > maxDone {
				maxDone = d
			}
			total = tot
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if maxDone != 65 || total != 65 {
		t.Errorf("progress peaked at %d/%d, want 65/65", maxDone, total)
	}
}
