package codegen_test

import (
	"strings"
	"testing"

	"repro/internal/devil"
	"repro/internal/devil/codegen"
	"repro/internal/specs"
)

// TestFigure4Shape checks that the emitted debug stub for the IDE Drive
// variable carries every element the paper's Figure 4 shows: the per-type
// struct with filename/type/val, the typed constants, the register cache
// read-modify-write, and the bit extraction.
func TestFigure4Shape(t *testing.T) {
	s, err := specs.Load("ide")
	if err != nil {
		t.Fatal(err)
	}
	spec, err := devil.Compile(s.Filename, s.Source)
	if err != nil {
		t.Fatal(err)
	}
	text, err := spec.EmitCVariable(codegen.Debug, "Drive")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"struct Drive_t_ { const char *filename; int type; u32 val; }",
		"static const Drive_t MASTER",
		"static const Drive_t SLAVE",
		"static inline void reg_set_ide_select(u8 v)",
		"cache.cache_ide_select",
		"static inline void set_Drive(Drive_t v)",
		"dil_assert",
		"static inline Drive_t get_Drive(void)",
		"v.filename = __FILE__;",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("Figure-4 emission missing %q\n%s", want, text)
		}
	}
	// The mask semantics of ide_select ('1.1.....'): relevant bits 6 and
	// 4..0 are kept (0x5f), bits 7 and 5 forced to 1 (0xa0).
	if !strings.Contains(text, "0x5fu | 0xa0u") {
		t.Errorf("mask fixing constants wrong:\n%s", text)
	}
	// The Drive bit is bit 4: extraction and merge must shift by 4.
	if !strings.Contains(text, "<< 4") || !strings.Contains(text, ">> 4") {
		t.Errorf("Drive bit position wrong:\n%s", text)
	}
}

func TestProductionEmissionOmitsChecks(t *testing.T) {
	s, err := specs.Load("ide")
	if err != nil {
		t.Fatal(err)
	}
	spec, err := devil.Compile(s.Filename, s.Source)
	if err != nil {
		t.Fatal(err)
	}
	text := spec.EmitC(codegen.Production)
	if strings.Contains(text, "dil_assert") {
		t.Error("production emission contains assertions")
	}
	if strings.Contains(text, "struct Drive_t_") {
		t.Error("production emission contains debug struct types")
	}
	if !strings.Contains(text, "static inline") {
		t.Error("production emission has no stubs at all")
	}
}

func TestFullDebugEmission(t *testing.T) {
	s, err := specs.Load("busmouse")
	if err != nil {
		t.Fatal(err)
	}
	spec, err := devil.Compile(s.Filename, s.Source)
	if err != nil {
		t.Fatal(err)
	}
	text := spec.EmitC(codegen.Debug)
	for _, want := range []string{
		"#define dil_assert",
		"#define dil_eq",
		"set_index(0);", // pre-action call inside the x_low read stub
		"reg_get_x_low",
		"get_dx",
		"private: no public stubs",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("debug emission missing %q", want)
		}
	}
}

func TestEmitUnknownVariable(t *testing.T) {
	s, _ := specs.Load("busmouse")
	spec, err := devil.Compile(s.Filename, s.Source)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := spec.EmitCVariable(codegen.Debug, "nonexistent"); err == nil {
		t.Error("emission for unknown variable succeeded")
	}
}
