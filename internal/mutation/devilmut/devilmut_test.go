package devilmut_test

import (
	"strings"
	"testing"

	"repro/internal/devil"
	"repro/internal/mutation/devilmut"
	"repro/internal/specs"
)

const sampleSpec = `device d (a : bit[8] port @ {0..1})
{
    register ctl = write a @ 1, mask '1..00000' : bit[8];
    private variable idx = ctl[6..5] : int(2);
    register w0 = read a @ 0, pre {idx = 0}, mask '****....' : bit[8];
    register w1 = read a @ 0, pre {idx = 1}, mask '****....' : bit[8];
    variable Lo = w0[3..0], volatile : int(4);
    variable Hi = w1[3..0], volatile : { A <=  '0000', B <=  '0001', C <= '001*', D <= '01**', E <= '1***' };
}
`

func TestEnumerateSampleSpec(t *testing.T) {
	res, err := devilmut.Enumerate(sampleSpec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sites) == 0 || len(res.Mutants) == 0 {
		t.Fatal("nothing enumerated")
	}
	kinds := map[devilmut.SiteKind]int{}
	for _, s := range res.Sites {
		kinds[s.Kind]++
	}
	for _, k := range []devilmut.SiteKind{
		devilmut.SiteLiteral, devilmut.SiteOperator, devilmut.SiteIdent,
	} {
		if kinds[k] == 0 {
			t.Errorf("no %s sites", k)
		}
	}
}

func TestVariableDeclNamesExcluded(t *testing.T) {
	res, err := devilmut.Enumerate(sampleSpec)
	if err != nil {
		t.Fatal(err)
	}
	// The declaration "variable Lo = ..." must not offer Lo as a site;
	// but the pre-action use of idx must be a site.
	foundIdxUse := false
	for _, s := range res.Sites {
		if s.Kind != devilmut.SiteIdent {
			continue
		}
		tok := res.Tokens[s.Index]
		if tok.Lit == "Lo" || tok.Lit == "Hi" || tok.Lit == "idx" {
			// idx appears both at its declaration (excluded) and in two
			// pre-actions (included). Declaration offsets differ.
			prev := res.Tokens[s.Index-1]
			if prev.Lit == "variable" || prev.Lit == "private" {
				t.Errorf("variable declaration name %q is a site", tok.Lit)
			}
			if tok.Lit == "idx" {
				foundIdxUse = true
			}
		}
	}
	if !foundIdxUse {
		t.Error("pre-action variable use not a site")
	}
}

func TestIdentifierClassRestriction(t *testing.T) {
	res, err := devilmut.Enumerate(sampleSpec)
	if err != nil {
		t.Fatal(err)
	}
	registers := map[string]bool{"ctl": true, "w0": true, "w1": true}
	variables := map[string]bool{"idx": true, "Lo": true, "Hi": true}
	for _, m := range res.Mutants {
		if res.Sites[m.SiteIndex].Kind != devilmut.SiteIdent {
			continue
		}
		orig := res.Tokens[m.TokenIndex].Lit
		repl := m.Replacement.Lit
		if registers[orig] && !registers[repl] {
			t.Errorf("register %q replaced by non-register %q", orig, repl)
		}
		if variables[orig] && !variables[repl] {
			t.Errorf("variable %q replaced by non-variable %q", orig, repl)
		}
	}
}

func TestOperatorMutants(t *testing.T) {
	res, err := devilmut.Enumerate(sampleSpec)
	if err != nil {
		t.Fatal(err)
	}
	sawMapSwap := false
	for _, m := range res.Mutants {
		if strings.Contains(m.Description, "<= -> =>") ||
			strings.Contains(m.Description, "<= -> <=>") {
			sawMapSwap = true
		}
	}
	if !sawMapSwap {
		t.Error("no mapping-operator mutants generated")
	}
}

func TestMutantsRenderAndMostAreCaught(t *testing.T) {
	res, err := devilmut.Enumerate(sampleSpec)
	if err != nil {
		t.Fatal(err)
	}
	detected := 0
	for _, m := range res.Mutants {
		src := res.Render(m)
		if src == "" {
			t.Fatalf("mutant %d rendered empty", m.ID)
		}
		if ok, _ := devilmut.CheckMutant(res, m, "sample.dil"); ok {
			detected++
		}
	}
	pct := 100 * float64(detected) / float64(len(res.Mutants))
	if pct < 60 {
		t.Errorf("detection rate %.1f%% suspiciously low", pct)
	}
	t.Logf("sample spec: %d mutants, %.1f%% detected", len(res.Mutants), pct)
}

// TestKnownSurvivor: a pre-action value typo (idx = 0 -> idx = 1) is the
// classic undetectable Devil mutant — the specification stays fully
// consistent, it just describes the wrong device.
func TestKnownSurvivor(t *testing.T) {
	res, err := devilmut.Enumerate(sampleSpec)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range res.Mutants {
		if !strings.Contains(m.Description, "literal 0 -> 2 at") {
			continue
		}
		// The pre-action value is the literal right after "idx =".
		if m.TokenIndex < 2 || res.Tokens[m.TokenIndex-2].Lit != "idx" {
			continue
		}
		if detected, diag := devilmut.CheckMutant(res, m, "sample.dil"); detected {
			t.Errorf("pre-action value typo unexpectedly detected: %s", diag)
		}
		return
	}
	t.Error("pre-action literal mutant not found")
}

// TestBusmouseDetectionRate pins the Table-2 headline for the paper's own
// specification: around 95% of busmouse mutants die in the compiler
// (paper: 95.4%).
func TestBusmouseDetectionRate(t *testing.T) {
	s, err := specs.Load("busmouse")
	if err != nil {
		t.Fatal(err)
	}
	res, err := devilmut.Enumerate(s.Source)
	if err != nil {
		t.Fatal(err)
	}
	detected := 0
	for _, m := range res.Mutants {
		if ok, _ := devilmut.CheckMutant(res, m, s.Filename); ok {
			detected++
		}
	}
	pct := 100 * float64(detected) / float64(len(res.Mutants))
	if pct < 85 || pct > 100 {
		t.Errorf("busmouse detection = %.1f%%, paper reports 95.4%%", pct)
	}
}

func TestEnumerateRejectsBrokenSpec(t *testing.T) {
	if _, err := devilmut.Enumerate("device {"); err == nil {
		t.Error("broken spec enumerated")
	}
	// A spec that parses but fails the checker is also rejected: mutants
	// must derive from correct programs.
	bad := `device d (a : bit[8] port @ {0..0}) {
		register r = a @ 0 : bit[16];
		variable V = r : int(16);
	}`
	if _, err := devil.Compile("bad.dil", bad); err == nil {
		t.Fatal("test premise broken: spec should be inconsistent")
	}
}
