package campaign

import (
	"fmt"
	"sort"
	"strings"
)

// TableData is the per-cell aggregate a record stream reduces to: the
// exact inputs of the paper's Table 3/4 rendering, one per (driver,
// scenario) matrix cell. Aggregation is order-independent and
// duplicate-tolerant (first result per mutant wins), so serial, sharded
// and merged stores of the same spec reduce to identical tables.
type TableData struct {
	Driver string
	// Scenario is the hardware scenario the cell ran under ("" for the
	// pristine cell, whose map key stays the bare driver name).
	Scenario string
	// Counts maps a row label to its mutant count.
	Counts map[string]int
	// SiteSets maps a row label to the contributing site set.
	SiteSets map[string]map[int]bool
	// TotalSites, Enumerated, Selected mirror the driver's meta record.
	TotalSites int
	Enumerated int
	Selected   int
	// Results is the number of distinct result records aggregated; a
	// complete campaign has Results == Selected.
	Results int
	// Losses counts partition-table destructions.
	Losses int
}

// Complete reports whether every selected mutant has a stored result.
func (d *TableData) Complete() bool { return d.Results == d.Selected }

// Label names the cell: the driver, or driver@scenario off the
// pristine cell — the key the cell carries in Aggregate's map.
func (d *TableData) Label() string { return CellLabel(d.Driver, d.Scenario) }

// Aggregate reduces a record stream to per-cell table data, keyed by
// cell label (the bare driver name for pristine cells, so pre-matrix
// stores and one-cell campaigns aggregate under the keys they always
// had), returning the cells in first-appearance order alongside the map.
func Aggregate(records []Record) (map[string]*TableData, []string, error) {
	tables := make(map[string]*TableData)
	var order []string
	get := func(driver, scenario string) *TableData {
		label := CellLabel(driver, scenario)
		t, ok := tables[label]
		if !ok {
			t = &TableData{
				Driver:   driver,
				Scenario: scenario,
				Counts:   make(map[string]int),
				SiteSets: make(map[string]map[int]bool),
			}
			tables[label] = t
			order = append(order, label)
		}
		return t
	}
	seen := make(map[string]bool)
	for _, r := range records {
		switch r.Kind {
		case KindMeta:
			t := get(r.Driver, r.Scenario)
			if t.Selected == 0 { // first meta wins
				t.TotalSites = r.Sites
				t.Enumerated = r.Enumerated
				t.Selected = r.Selected
			}
		case KindResult:
			if r.Row == "" {
				return nil, nil, fmt.Errorf("campaign: result record for %s has no row",
					recordKey(r))
			}
			key := recordKey(r)
			if seen[key] {
				continue
			}
			seen[key] = true
			t := get(r.Driver, r.Scenario)
			t.Counts[r.Row]++
			if t.SiteSets[r.Row] == nil {
				t.SiteSets[r.Row] = make(map[int]bool)
			}
			t.SiteSets[r.Row][r.Site] = true
			if r.Lost {
				t.Losses++
			}
			t.Results++
		}
	}
	return tables, order, nil
}

// scenarioCells names a spec's matrix cells for merge diagnostics: the
// scenario list, with the pristine cell spelled out.
func scenarioCells(s *Spec) string {
	if s == nil || len(s.Scenarios) == 0 {
		return "pristine only"
	}
	names := make([]string, len(s.Scenarios))
	for i, sc := range s.Scenarios {
		if sc == "" {
			sc = "pristine"
		}
		names[i] = sc
	}
	return strings.Join(names, ", ")
}

// fingerprintMismatch builds the error for two stores whose spec
// fingerprints differ. When the specs differ only in their scenario
// matrix — the same work-list crossed with different cells — the error
// names the mismatched cells instead of leaving the user to diff hashes:
// such stores are separate matrices, not shards of one, and must not be
// merged (their per-cell fault seeds and dedup policies differ).
func fingerprintMismatch(i int, got Record, wantFP string, wantSpec *Spec) error {
	if got.Spec != nil && wantSpec != nil {
		a, b := *got.Spec, *wantSpec
		a.Scenarios, b.Scenarios = nil, nil
		if a.Fingerprint() == b.Fingerprint() {
			return fmt.Errorf("campaign merge: source %d runs scenario cells [%s] but the destination runs [%s]; "+
				"stores from different scenario matrices cannot be merged",
				i+1, scenarioCells(got.Spec), scenarioCells(wantSpec))
		}
	}
	return fmt.Errorf("campaign merge: source %d has fingerprint %s, want %s",
		i+1, got.Fingerprint, wantFP)
}

// Merge folds the records of every source store into dst, validating
// that all stores carry the same spec fingerprint and deduplicating meta
// and result records per matrix cell. Results already present in dst are
// kept.
func Merge(dst Store, sources ...Store) error {
	want := ""
	var wantSpec *Spec
	haveMeta := make(map[string]bool)
	seen := make(map[string]bool)
	for _, r := range dst.Records() {
		switch r.Kind {
		case KindSpec:
			want = r.Fingerprint
			wantSpec = r.Spec
		case KindMeta:
			haveMeta[CellLabel(r.Driver, r.Scenario)] = true
		case KindResult:
			seen[recordKey(r)] = true
		}
	}
	for i, src := range sources {
		for _, r := range src.Records() {
			switch r.Kind {
			case KindSpec:
				if want == "" {
					want = r.Fingerprint
					wantSpec = r.Spec
					if err := dst.Append(r); err != nil {
						return err
					}
				} else if r.Fingerprint != want {
					return fingerprintMismatch(i, r, want, wantSpec)
				}
			case KindMeta:
				label := CellLabel(r.Driver, r.Scenario)
				if !haveMeta[label] {
					haveMeta[label] = true
					if err := dst.Append(r); err != nil {
						return err
					}
				}
			case KindResult:
				key := recordKey(r)
				if seen[key] {
					continue
				}
				seen[key] = true
				if err := dst.Append(r); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Completion summarises a store's progress per matrix cell, sorted by
// cell label: how many of the selected mutants have results.
func Completion(records []Record) []string {
	tables, order, err := Aggregate(records)
	if err != nil {
		return []string{fmt.Sprintf("unaggregatable store: %v", err)}
	}
	sort.Strings(order)
	var out []string
	for _, label := range order {
		t := tables[label]
		out = append(out, fmt.Sprintf("%s: %d/%d booted", label, t.Results, t.Selected))
	}
	return out
}
