package campaign

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"
)

// Store is an append-only result store. Append must be safe for
// concurrent use; Records returns everything the store held when it was
// opened plus everything appended since, in order.
type Store interface {
	Records() []Record
	Append(Record) error
	Close() error
}

// MemStore is the in-memory store used by the in-process table paths and
// by tests.
type MemStore struct {
	mu   sync.Mutex
	recs []Record
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{} }

// Records implements Store.
func (s *MemStore) Records() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Record, len(s.recs))
	copy(out, s.recs)
	return out
}

// Append implements Store.
func (s *MemStore) Append(r Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.recs = append(s.recs, r)
	return nil
}

// Close implements Store.
func (s *MemStore) Close() error { return nil }

// defaultFlushEvery bounds how many records a crash can lose: the
// buffered writer is flushed on every flushEvery-th append (a
// checkpoint) and on Close. Between checkpoints appends cost a buffered
// memcpy, not a write(2) — the difference is measurable at campaign
// throughput, where every boot appends one record. Spec.FlushEvery (via
// SetFlushEvery) overrides the interval per campaign.
const defaultFlushEvery = 64

// FileStore is the JSONL store: one record per line, encoded straight
// into a buffered writer that is flushed on checkpoint and Close.
// OpenFile truncates a torn trailing line (the crash artefact) so that
// subsequent appends extend the good prefix — the mutants the torn or
// unflushed tail described simply rerun on resume.
type FileStore struct {
	mu         sync.Mutex
	f          *os.File
	w          *bufio.Writer
	enc        *json.Encoder
	flushEvery int
	pending    int // appends since the last flush
	flushHook  func(time.Duration)
	recs       []Record
}

// OpenFile opens (or creates) a JSONL store at path and loads every
// complete record already present. A file whose very first record is
// unparseable is rejected — it is some other file, not a campaign store
// — while garbage after at least one good record is treated as a crash
// artefact and truncated away.
func OpenFile(path string) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("campaign store: %w", err)
	}
	s := &FileStore{f: f, flushEvery: defaultFlushEvery}
	br := bufio.NewReader(f)
	var off int64 // end offset of the last good record
	for {
		line, rerr := br.ReadString('\n')
		if len(line) > 0 {
			complete := strings.HasSuffix(line, "\n")
			trimmed := strings.TrimSpace(line)
			bad := false
			if trimmed != "" {
				var r Record
				if !complete || json.Unmarshal([]byte(trimmed), &r) != nil {
					bad = true
				} else {
					s.recs = append(s.recs, r)
				}
			}
			if bad {
				if len(s.recs) == 0 {
					f.Close()
					return nil, fmt.Errorf("campaign store %s: not a campaign store (unparseable first record)", path)
				}
				if err := f.Truncate(off); err != nil {
					f.Close()
					return nil, fmt.Errorf("campaign store %s: truncate crash artefact: %w", path, err)
				}
				break
			}
			off += int64(len(line))
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			f.Close()
			return nil, fmt.Errorf("campaign store %s: %w", path, rerr)
		}
	}
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("campaign store %s: %w", path, err)
	}
	s.w = bufio.NewWriter(f)
	s.enc = json.NewEncoder(s.w)
	return s, nil
}

// Records implements Store.
func (s *FileStore) Records() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Record, len(s.recs))
	copy(out, s.recs)
	return out
}

// Append implements Store: one JSON line per record, encoded into the
// buffered writer atomically with respect to other Append calls. The
// encoder terminates every record with '\n', preserving the JSONL
// framing the torn-line recovery depends on.
func (s *FileStore) Append(r Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return fmt.Errorf("campaign store: append after Close")
	}
	if err := s.enc.Encode(r); err != nil {
		return fmt.Errorf("campaign store: append: %w", err)
	}
	// The record is in the buffer and may still reach the file on a later
	// flush, so mirror it in memory even if this checkpoint flush fails —
	// Records() must never under-report what the file can hold.
	s.recs = append(s.recs, r)
	s.pending++
	if s.pending >= s.flushEvery {
		if err := s.flushLocked(); err != nil {
			return err
		}
	}
	return nil
}

// SetFlushEvery overrides the checkpoint interval: how many appends may
// sit in the buffer before a flush. Campaign Run applies Spec.FlushEvery
// through this; n < 1 restores the default. Raising it trades a larger
// crash-loss window (those mutants simply rerun on resume) for fewer
// write(2) calls on long campaigns.
func (s *FileStore) SetFlushEvery(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n < 1 {
		n = defaultFlushEvery
	}
	s.flushEvery = n
}

// Flush forces buffered records to the operating system — the explicit
// checkpoint between the periodic ones.
func (s *FileStore) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return fmt.Errorf("campaign store: flush after Close")
	}
	return s.flushLocked()
}

// SetFlushHook registers fn to observe the duration of every flush —
// the checkpoint-latency seam campaign.Metrics hooks into. A nil fn
// removes the hook.
func (s *FileStore) SetFlushHook(fn func(time.Duration)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushHook = fn
}

func (s *FileStore) flushLocked() error {
	s.pending = 0
	var t0 time.Time
	if s.flushHook != nil {
		t0 = time.Now()
	}
	if err := s.w.Flush(); err != nil {
		return fmt.Errorf("campaign store: flush: %w", err)
	}
	if s.flushHook != nil {
		s.flushHook(time.Since(t0))
	}
	return nil
}

// Close implements Store, flushing buffered records first.
func (s *FileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	ferr := s.flushLocked()
	err := s.f.Close()
	s.f = nil
	if err == nil {
		err = ferr
	}
	return err
}
