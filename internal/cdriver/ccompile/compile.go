package ccompile

import (
	"fmt"

	"repro/internal/cdriver/cast"
	"repro/internal/cdriver/cinterp"
	"repro/internal/cdriver/ctoken"
	"repro/internal/devil/codegen"
	"repro/internal/hw"
	"repro/internal/kernel"
)

// globalRef is the compile-time view of one file-scope variable.
type globalRef struct {
	ord  int // declaration order (for the declsReady guard)
	slot int
	typ  cast.CType
}

// macroRef is the compile-time view of one macro.
type macroRef struct {
	ord  int
	decl *cast.MacroDecl
}

// localSlot is the compile-time view of one local variable.
type localSlot struct {
	idx int
	typ cast.CType
}

// compiler holds the one-pass compilation state.
type compiler struct {
	prog    *cast.Program
	stubs   *codegen.Stubs
	varSigs map[string]codegen.VarSig
	// bus is the machine's I/O space, bound at compile time so port-I/O
	// sites can batch their bus resolution (nil in unit tests that
	// compile without a machine).
	bus *hw.Bus
	// fuse enables the block-fusion pass: maximal runs of simple
	// statements compile to single basic-block closures. Watchdog
	// charging is per basic block either way (see seq).
	fuse bool
	// domLine is the source line the innermost enclosing statement
	// closure unconditionally covers before any sub-expression runs
	// (-1 outside statements). Under fuse, expression closures on that
	// line skip their own redundant coverage add: line coverage is a
	// set, so re-adding a line the dominating statement already added
	// is unobservable. Compile-time state only.
	domLine int
	// stats counts what the fusion pass produced.
	stats BlockStats

	funcIdx   map[string]int
	funcs     []*cfunc
	funcDecls []*cast.FuncDecl

	globalIdx   map[string]globalRef
	globalTypes []cast.CType

	macros     map[string]macroRef
	macroStack []string
	// onMacro, when non-nil, is invoked for every macro inlined at a use
	// site (including macros reached through nested expansion) — the
	// incremental compiler records which compilation units must be
	// recompiled when a macro body mutates.
	onMacro func(name string)

	// Per-function compile state: lexical scopes mapping names to frame
	// slots, and the slot high-water mark.
	scopes []map[string]localSlot
	nslots int

	maxSlots int
	maxLine  int
	err      error
}

// line records a source line for coverage sizing and returns it.
func (c *compiler) line(pos ctoken.Pos) int {
	if pos.Line > c.maxLine {
		c.maxLine = pos.Line
	}
	return pos.Line
}

func (c *compiler) fail(err error) {
	if c.err == nil {
		c.err = err
	}
}

func (c *compiler) pushScope() { c.scopes = append(c.scopes, make(map[string]localSlot)) }
func (c *compiler) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

// declareLocal assigns the next frame slot to a name in the top scope.
func (c *compiler) declareLocal(name string, typ cast.CType) int {
	idx := c.nslots
	c.nslots++
	c.scopes[len(c.scopes)-1][name] = localSlot{idx: idx, typ: typ}
	return idx
}

// lookupLocal resolves a name through the lexical scope chain.
func (c *compiler) lookupLocal(name string) (localSlot, bool) {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if s, ok := c.scopes[i][name]; ok {
			return s, true
		}
	}
	return localSlot{}, false
}

// compileFunc fills in a pre-registered cfunc.
func (c *compiler) compileFunc(f *cfunc, d *cast.FuncDecl) {
	c.scopes = c.scopes[:0]
	c.nslots = 0
	c.pushScope()
	for _, p := range d.Params {
		c.declareLocal(p.Name, p.Type)
		f.params = append(f.params, p.Type)
	}
	f.body = c.blockBody(d.Body)
	c.popScope()
	f.nslots = c.nslots
	if c.nslots > c.maxSlots {
		c.maxSlots = c.nslots
	}
}

// blockBody compiles a block's statements under a fresh lexical scope.
// The caller decides whether the block itself charges a watchdog step
// (statement blocks do, function bodies do not — as in the interpreter).
func (c *compiler) blockBody(b *cast.Block) []stmtFn {
	c.pushScope()
	out := c.seq(b.Stmts)
	c.popScope()
	return out
}

// chargeWrap prefixes a compiled statement with one watchdog charge.
func chargeWrap(f stmtFn) stmtFn {
	return func(st *state, fr []Value) (flow, Value, error) {
		if err := st.kern.Step(); err != nil {
			return flowNormal, voidValue, err
		}
		return f(st, fr)
	}
}

// fuseRun folds a maximal run of simple statements into one basic-block
// closure: a single watchdog charge at entry, then the statement bodies
// in order. A failing charge executes (and covers) none of the run, and
// control flow (break/continue/return) propagates out of the block —
// exactly the interpreter's execSeq semantics.
func fuseRun(run []stmtFn) stmtFn {
	if len(run) == 1 {
		return chargeWrap(run[0])
	}
	body := make([]stmtFn, len(run))
	copy(body, run)
	return func(st *state, fr []Value) (flow, Value, error) {
		if err := st.kern.Step(); err != nil {
			return flowNormal, voidValue, err
		}
		for _, f := range body {
			fl, v, err := f(st, fr)
			if err != nil || fl != flowNormal {
				return fl, v, err
			}
		}
		return flowNormal, voidValue, nil
	}
}

// seq compiles a statement list with basic-block step accounting: one
// watchdog charge at the head of every maximal run of simple statements
// (cinterp.SimpleStmt is the shared fusion rule), one per control-flow
// statement. With fusion on, each run additionally collapses into a
// single closure; with fusion off, the per-statement closures are kept
// and only the charges are elided — the "compiled" backend, the oracle
// midpoint between the interpreter and the block backend.
func (c *compiler) seq(stmts []cast.Stmt) []stmtFn {
	if !c.fuse {
		out := make([]stmtFn, len(stmts))
		prevSimple := false
		for i, s := range stmts {
			simple := cinterp.SimpleStmt(s)
			f := c.stmtBody(s)
			if !simple || !prevSimple {
				f = chargeWrap(f)
			}
			out[i] = f
			prevSimple = simple
		}
		return out
	}
	var out []stmtFn
	var run []stmtFn
	flush := func() {
		if len(run) == 0 {
			return
		}
		c.stats.Blocks++
		c.stats.FusedStmts += int64(len(run))
		out = append(out, fuseRun(run))
		run = run[:0]
	}
	for _, s := range stmts {
		if cinterp.SimpleStmt(s) {
			run = append(run, c.stmtBody(s))
			continue
		}
		flush()
		out = append(out, chargeWrap(c.stmtBody(s)))
	}
	flush()
	return out
}

// stmt compiles one statement for statement position (a loop body, an
// if branch, a for init/post), with the interpreter's execStmt
// semantics: one watchdog step, then the body.
func (c *compiler) stmt(s cast.Stmt) stmtFn {
	return chargeWrap(c.stmtBody(s))
}

// stmtBody compiles a statement's behaviour without the watchdog
// charge: the statement's line is covered, then the node-specific
// behaviour runs. The caller (seq or stmt) decides run-head vs
// per-statement charging.
func (c *compiler) stmtBody(s cast.Stmt) stmtFn {
	line := c.line(s.Pos())
	// Every case below emits a closure that covers line before its
	// sub-expressions run, so line dominates them for coverage purposes.
	prevDom := c.domLine
	c.domLine = line
	defer func() { c.domLine = prevDom }()
	switch s := s.(type) {
	case *cast.Block:
		body := c.blockBody(s)
		return func(st *state, fr []Value) (flow, Value, error) {
			st.cov.Add(line)
			return runSeq(body, st, fr)
		}

	case *cast.DeclStmt:
		d := s.Decl
		var initFn exprFn
		if d.Init != nil {
			initFn = c.expr(d.Init) // compiled before the name is visible
		}
		slot := c.declareLocal(d.Name, d.Type)
		typ := d.Type
		if initFn != nil {
			return func(st *state, fr []Value) (flow, Value, error) {
				st.cov.Add(line)
				iv, err := initFn(st, fr)
				if err != nil {
					return flowNormal, voidValue, err
				}
				fr[slot] = cinterp.Truncate(typ, iv)
				return flowNormal, voidValue, nil
			}
		}
		def := defaultValue(d.Type)
		return func(st *state, fr []Value) (flow, Value, error) {
			st.cov.Add(line)
			fr[slot] = def
			return flowNormal, voidValue, nil
		}

	case *cast.ExprStmt:
		xf := c.expr(s.X)
		return func(st *state, fr []Value) (flow, Value, error) {
			st.cov.Add(line)
			_, err := xf(st, fr)
			return flowNormal, voidValue, err
		}

	case *cast.AssignStmt:
		return c.assign(s, line)

	case *cast.IncDecStmt:
		delta := int64(1)
		if s.Op == ctoken.MinusMinus {
			delta = -1
		}
		// Local counters (every loop induction variable) update their
		// frame slot directly — no load/store closure pair.
		if ls, ok := c.lookupLocal(s.X.Name); ok {
			slot := ls.idx
			if tf := truncFn(ls.typ); tf != nil {
				return func(st *state, fr []Value) (flow, Value, error) {
					st.cov.Add(line)
					fr[slot] = intValue(tf(fr[slot].I + delta))
					return flowNormal, voidValue, nil
				}
			}
			return func(st *state, fr []Value) (flow, Value, error) {
				st.cov.Add(line)
				fr[slot] = intValue(fr[slot].I + delta)
				return flowNormal, voidValue, nil
			}
		}
		store := c.lvalue(s.X)
		return func(st *state, fr []Value) (flow, Value, error) {
			st.cov.Add(line)
			cell, err := store.load(st, fr)
			if err != nil {
				return flowNormal, voidValue, err
			}
			store.store(st, fr, cinterp.Truncate(store.typ, intValue(cell.I+delta)))
			return flowNormal, voidValue, nil
		}

	case *cast.IfStmt:
		condFn := c.expr(s.Cond)
		thenFn := c.stmt(s.Then)
		var elseFn stmtFn
		if s.Else != nil {
			elseFn = c.stmt(s.Else)
		}
		return func(st *state, fr []Value) (flow, Value, error) {
			st.cov.Add(line)
			cond, err := condFn(st, fr)
			if err != nil {
				return flowNormal, voidValue, err
			}
			if cond.Truthy() {
				return thenFn(st, fr)
			}
			if elseFn != nil {
				return elseFn(st, fr)
			}
			return flowNormal, voidValue, nil
		}

	case *cast.WhileStmt:
		if c.fuse && c.loopEligible(s.Body, nil) {
			return c.whileSuper(s, line)
		}
		condFn := c.expr(s.Cond)
		bodyFn := c.stmt(s.Body)
		return func(st *state, fr []Value) (flow, Value, error) {
			st.cov.Add(line)
			for {
				cond, err := condFn(st, fr)
				if err != nil {
					return flowNormal, voidValue, err
				}
				if !cond.Truthy() {
					break
				}
				fl, v, err := bodyFn(st, fr)
				if err != nil {
					return flowNormal, voidValue, err
				}
				if fl == flowBreak {
					break
				}
				if fl == flowReturn {
					return fl, v, nil
				}
				if err := st.kern.Step(); err != nil {
					return flowNormal, voidValue, err
				}
			}
			return flowNormal, voidValue, nil
		}

	case *cast.DoWhileStmt:
		bodyFn := c.stmt(s.Body)
		condFn := c.expr(s.Cond)
		return func(st *state, fr []Value) (flow, Value, error) {
			st.cov.Add(line)
			for {
				fl, v, err := bodyFn(st, fr)
				if err != nil {
					return flowNormal, voidValue, err
				}
				if fl == flowBreak {
					break
				}
				if fl == flowReturn {
					return fl, v, nil
				}
				cond, err := condFn(st, fr)
				if err != nil {
					return flowNormal, voidValue, err
				}
				if !cond.Truthy() {
					break
				}
				if err := st.kern.Step(); err != nil {
					return flowNormal, voidValue, err
				}
			}
			return flowNormal, voidValue, nil
		}

	case *cast.ForStmt:
		if c.fuse && c.loopEligible(s.Body, s.Post) {
			return c.forSuper(s, line)
		}
		c.pushScope() // the init declaration's scope, as in the interpreter
		var initFn stmtFn
		if s.Init != nil {
			initFn = c.stmt(s.Init)
		}
		var condFn exprFn
		if s.Cond != nil {
			condFn = c.expr(s.Cond)
		}
		var postFn stmtFn
		if s.Post != nil {
			postFn = c.stmt(s.Post)
		}
		bodyFn := c.stmt(s.Body)
		c.popScope()
		return func(st *state, fr []Value) (flow, Value, error) {
			st.cov.Add(line)
			if initFn != nil {
				if fl, v, err := initFn(st, fr); err != nil || fl != flowNormal {
					return fl, v, err
				}
			}
			for {
				if condFn != nil {
					cond, err := condFn(st, fr)
					if err != nil {
						return flowNormal, voidValue, err
					}
					if !cond.Truthy() {
						break
					}
				}
				fl, v, err := bodyFn(st, fr)
				if err != nil {
					return flowNormal, voidValue, err
				}
				if fl == flowBreak {
					break
				}
				if fl == flowReturn {
					return fl, v, nil
				}
				if postFn != nil {
					if fl, v, err := postFn(st, fr); err != nil || fl == flowReturn {
						return fl, v, err
					}
				}
				if err := st.kern.Step(); err != nil {
					return flowNormal, voidValue, err
				}
			}
			return flowNormal, voidValue, nil
		}

	case *cast.SwitchStmt:
		return c.switchStmt(s, line)

	case *cast.BreakStmt:
		return func(st *state, fr []Value) (flow, Value, error) {
			st.cov.Add(line)
			return flowBreak, voidValue, nil
		}

	case *cast.ContinueStmt:
		return func(st *state, fr []Value) (flow, Value, error) {
			st.cov.Add(line)
			return flowContinue, voidValue, nil
		}

	case *cast.ReturnStmt:
		if s.X == nil {
			return func(st *state, fr []Value) (flow, Value, error) {
				st.cov.Add(line)
				return flowReturn, voidValue, nil
			}
		}
		xf := c.expr(s.X)
		return func(st *state, fr []Value) (flow, Value, error) {
			st.cov.Add(line)
			v, err := xf(st, fr)
			if err != nil {
				return flowNormal, voidValue, err
			}
			return flowReturn, v, nil
		}
	}

	// Unknown statement kinds execute as a charged no-op, exactly like
	// the interpreter's execStmt default (unknown kinds are not simple,
	// so seq always charges them).
	return func(st *state, fr []Value) (flow, Value, error) {
		st.cov.Add(line)
		return flowNormal, voidValue, nil
	}
}

// runSeq executes a compiled statement sequence with block semantics.
func runSeq(body []stmtFn, st *state, fr []Value) (flow, Value, error) {
	for _, sf := range body {
		fl, v, err := sf(st, fr)
		if err != nil || fl != flowNormal {
			return fl, v, err
		}
	}
	return flowNormal, voidValue, nil
}

// cclause is one compiled switch arm.
type cclause struct {
	vals      []exprFn
	caseLine  int
	body      []stmtFn
	isDefault bool
}

func (c *compiler) switchStmt(s *cast.SwitchStmt, line int) stmtFn {
	tagFn := c.expr(s.Tag)
	clauses := make([]*cclause, len(s.Clauses))
	for i, cl := range s.Clauses {
		cc := &cclause{caseLine: c.line(cl.CasePos), isDefault: cl.Values == nil}
		for _, vx := range cl.Values {
			cc.vals = append(cc.vals, c.expr(vx))
		}
		c.pushScope()
		cc.body = c.seq(cl.Stmts)
		c.popScope()
		clauses[i] = cc
	}
	return func(st *state, fr []Value) (flow, Value, error) {
		st.cov.Add(line)
		tag, err := tagFn(st, fr)
		if err != nil {
			return flowNormal, voidValue, err
		}
		var chosen, deflt *cclause
		for _, cl := range clauses {
			if cl.isDefault {
				deflt = cl
				continue
			}
			for _, vf := range cl.vals {
				v, err := vf(st, fr)
				if err != nil {
					return flowNormal, voidValue, err
				}
				if v.I == tag.I {
					chosen = cl
					break
				}
			}
			if chosen != nil {
				break
			}
		}
		if chosen == nil {
			chosen = deflt
		}
		if chosen == nil {
			return flowNormal, voidValue, nil
		}
		st.cov.Add(chosen.caseLine)
		for _, sf := range chosen.body {
			fl, v, err := sf(st, fr)
			if err != nil {
				return flowNormal, voidValue, err
			}
			switch fl {
			case flowBreak:
				return flowNormal, voidValue, nil
			case flowReturn, flowContinue:
				return fl, v, nil
			}
		}
		return flowNormal, voidValue, nil
	}
}

// assignLocal compiles an assignment to a local frame slot, with the
// generic closures' exact semantics inlined. Returns nil for compound
// operators outside the known set (the generic path owns their
// bad-operator fault).
func (c *compiler) assignLocal(s *cast.AssignStmt, line int, rhsFn exprFn, ls localSlot) stmtFn {
	slot, typ := ls.idx, ls.typ
	tf := truncFn(typ)
	if s.Op == ctoken.Assign {
		if tf == nil {
			// Full-width storage: truncation is identity.
			return func(st *state, fr []Value) (flow, Value, error) {
				st.cov.Add(line)
				rhs, err := rhsFn(st, fr)
				if err != nil {
					return flowNormal, voidValue, err
				}
				// Direct assignment: Devil values flow through unchanged.
				if fr[slot].Kind == cinterp.ValDevil || rhs.Kind == cinterp.ValDevil {
					fr[slot] = rhs
				} else {
					fr[slot] = intValue(rhs.I)
				}
				return flowNormal, voidValue, nil
			}
		}
		return func(st *state, fr []Value) (flow, Value, error) {
			st.cov.Add(line)
			rhs, err := rhsFn(st, fr)
			if err != nil {
				return flowNormal, voidValue, err
			}
			// Direct assignment: Devil values flow through unchanged.
			if fr[slot].Kind == cinterp.ValDevil || rhs.Kind == cinterp.ValDevil {
				fr[slot] = rhs
			} else {
				fr[slot] = intValue(tf(rhs.I))
			}
			return flowNormal, voidValue, nil
		}
	}
	var base ctoken.Kind
	switch s.Op {
	case ctoken.OrAssign:
		base = ctoken.Or
	case ctoken.AndAssign:
		base = ctoken.And
	case ctoken.XorAssign:
		base = ctoken.Xor
	case ctoken.ShlAssign:
		base = ctoken.Shl
	case ctoken.ShrAssign:
		base = ctoken.Shr
	case ctoken.AddAssign:
		base = ctoken.Add
	case ctoken.SubAssign:
		base = ctoken.Sub
	default:
		return nil
	}
	opf := intBinOp(base)
	if tf == nil {
		return func(st *state, fr []Value) (flow, Value, error) {
			st.cov.Add(line)
			rhs, err := rhsFn(st, fr)
			if err != nil {
				return flowNormal, voidValue, err
			}
			fr[slot] = intValue(opf(fr[slot].I, rhs.I))
			return flowNormal, voidValue, nil
		}
	}
	return func(st *state, fr []Value) (flow, Value, error) {
		st.cov.Add(line)
		rhs, err := rhsFn(st, fr)
		if err != nil {
			return flowNormal, voidValue, err
		}
		fr[slot] = intValue(tf(opf(fr[slot].I, rhs.I)))
		return flowNormal, voidValue, nil
	}
}

// truncFn resolves cinterp.Truncate's storage-type switch at compile
// time. Returns nil when the declared type stores full 64-bit values,
// so callers can drop the call entirely.
func truncFn(t cast.CType) func(int64) int64 {
	switch t.Kind {
	case cast.TypeU8:
		return func(x int64) int64 { return int64(uint8(x)) }
	case cast.TypeU16:
		return func(x int64) int64 { return int64(uint16(x)) }
	case cast.TypeU32:
		return func(x int64) int64 { return int64(uint32(x)) }
	case cast.TypeS8:
		return func(x int64) int64 { return int64(int8(x)) }
	case cast.TypeS16:
		return func(x int64) int64 { return int64(int16(x)) }
	case cast.TypeInt, cast.TypeS32:
		return func(x int64) int64 { return int64(int32(x)) }
	}
	return nil
}

// lval is a compiled storage location: local slot, global slot, or the
// interpreter's undefined-variable fault.
type lval struct {
	typ   cast.CType
	load  func(st *state, fr []Value) (Value, error)
	store func(st *state, fr []Value, v Value)
}

// lvalue resolves an assignment target at compile time, reproducing the
// interpreter's loadSlot chain (locals, then globals, then a crash).
func (c *compiler) lvalue(id *cast.Ident) *lval {
	if ls, ok := c.lookupLocal(id.Name); ok {
		slot := ls.idx
		return &lval{
			typ:   ls.typ,
			load:  func(st *state, fr []Value) (Value, error) { return fr[slot], nil },
			store: func(st *state, fr []Value, v Value) { fr[slot] = v },
		}
	}
	if g, ok := c.globalIdx[id.Name]; ok {
		slot, ord, name := g.slot, g.ord, id.Name
		return &lval{
			typ: g.typ,
			load: func(st *state, fr []Value) (Value, error) {
				if ord >= st.declsReady {
					return voidValue, undefVarErr(name)
				}
				return st.globals[slot], nil
			},
			store: func(st *state, fr []Value, v Value) { st.globals[slot] = v },
		}
	}
	name := id.Name
	return &lval{
		typ:   cast.CType{Kind: cast.TypeInt},
		load:  func(st *state, fr []Value) (Value, error) { return voidValue, undefVarErr(name) },
		store: func(st *state, fr []Value, v Value) {},
	}
}

func undefVarErr(name string) error {
	return &kernel.CrashError{Cause: fmt.Errorf("read of undefined variable %q", name)}
}

// assign compiles "lhs op rhs" with the interpreter's order: RHS first,
// then target resolution, then the op-specific store.
func (c *compiler) assign(s *cast.AssignStmt, line int) stmtFn {
	rhsFn := c.expr(s.RHS)
	// Local targets store into their frame slot directly — no
	// load/store closure pair on the hot path.
	if ls, ok := c.lookupLocal(s.LHS.Name); ok {
		if f := c.assignLocal(s, line, rhsFn, ls); f != nil {
			return f
		}
	}
	target := c.lvalue(s.LHS)
	typ := target.typ
	if s.Op == ctoken.Assign {
		return func(st *state, fr []Value) (flow, Value, error) {
			st.cov.Add(line)
			rhs, err := rhsFn(st, fr)
			if err != nil {
				return flowNormal, voidValue, err
			}
			cur, err := target.load(st, fr)
			if err != nil {
				return flowNormal, voidValue, err
			}
			// Direct assignment: Devil values flow through unchanged.
			if cur.Kind == cinterp.ValDevil || rhs.Kind == cinterp.ValDevil {
				target.store(st, fr, rhs)
			} else {
				target.store(st, fr, cinterp.Truncate(typ, intValue(rhs.I)))
			}
			return flowNormal, voidValue, nil
		}
	}
	var op func(a, b int64) int64
	switch s.Op {
	case ctoken.OrAssign:
		op = func(a, b int64) int64 { return a | b }
	case ctoken.AndAssign:
		op = func(a, b int64) int64 { return a & b }
	case ctoken.XorAssign:
		op = func(a, b int64) int64 { return a ^ b }
	case ctoken.ShlAssign:
		op = func(a, b int64) int64 { return a << uint(b&63) }
	case ctoken.ShrAssign:
		op = func(a, b int64) int64 { return a >> uint(b&63) }
	case ctoken.AddAssign:
		op = func(a, b int64) int64 { return a + b }
	case ctoken.SubAssign:
		op = func(a, b int64) int64 { return a - b }
	default:
		badOp := s.Op
		return func(st *state, fr []Value) (flow, Value, error) {
			st.cov.Add(line)
			rhs, err := rhsFn(st, fr)
			if err != nil {
				return flowNormal, voidValue, err
			}
			if _, err := target.load(st, fr); err != nil {
				return flowNormal, voidValue, err
			}
			_ = rhs
			return flowNormal, voidValue,
				&kernel.CrashError{Cause: fmt.Errorf("bad assignment operator %s", badOp)}
		}
	}
	return func(st *state, fr []Value) (flow, Value, error) {
		st.cov.Add(line)
		rhs, err := rhsFn(st, fr)
		if err != nil {
			return flowNormal, voidValue, err
		}
		cur, err := target.load(st, fr)
		if err != nil {
			return flowNormal, voidValue, err
		}
		target.store(st, fr, cinterp.Truncate(typ, intValue(op(cur.I, rhs.I))))
		return flowNormal, voidValue, nil
	}
}
