package experiment

import (
	"encoding/json"
	"fmt"
	"net"
	"sort"
	"sync"
	"testing"

	"repro/internal/campaign"
	"repro/internal/campaign/fleet"
	"repro/internal/obs"
)

// The snapshot determinism suite: pristine-prefix snapshotting is an
// execution shortcut, so a campaign with it on must produce result
// records — row, site, partition loss and step count — byte-identical
// to the same campaign with every boot forced through the full prefix.
// Three legs cover the three execution modes: a pristine campaign where
// restores actually fire, a scenario matrix (injected cells are
// snapshot-ineligible and must all fall back), and a fleet run.

// resultLines renders a store's result records as sorted JSON lines,
// one per (scenario, mutant) cell — the byte-comparison surface of the
// suite. Spec records are excluded: the two runs differ in the
// fingerprint-excluded snapshot knob by construction.
func resultLines(t *testing.T, st campaign.Store) []string {
	t.Helper()
	var lines []string
	for _, r := range st.Records() {
		if r.Kind != campaign.KindResult {
			continue
		}
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		lines = append(lines, string(b))
	}
	sort.Strings(lines)
	return lines
}

// runSnapshotLeg runs spec once with snapshotting on and once with it
// off and requires byte-identical result records. It returns the
// observed collector of the snapshot-on run for counter assertions.
func runSnapshotLeg(t *testing.T, spec campaign.Spec) *obs.Collector {
	t.Helper()
	col := obs.New()
	on := campaign.NewMemStore()
	spec.Snapshot = "on"
	if _, err := campaign.Run(spec, NewObservedWorkload(col), on, campaign.Options{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	off := campaign.NewMemStore()
	spec.Snapshot = "off"
	if _, err := campaign.Run(spec, NewWorkload(), off, campaign.Options{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	wantLines, gotLines := resultLines(t, off), resultLines(t, on)
	if len(wantLines) != len(gotLines) {
		t.Fatalf("record count diverges: snapshot-on %d, snapshot-off %d", len(gotLines), len(wantLines))
	}
	for i := range wantLines {
		if wantLines[i] != gotLines[i] {
			t.Errorf("record %d diverges:\nsnapshot-off %s\nsnapshot-on  %s", i, wantLines[i], gotLines[i])
		}
	}
	return col
}

// counterTotal sums one counter family across its label sets.
func counterTotal(col *obs.Collector, family string) float64 {
	var total float64
	for _, s := range col.Gather() {
		if s.Name == family {
			total += s.Value
		}
	}
	return total
}

// TestSnapshotDeterminism: a pristine C-driver campaign — the case the
// optimisation exists for — must be byte-identical with and without
// restores, and the restores must actually have fired.
func TestSnapshotDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("snapshot determinism test is not short")
	}
	spec := CampaignSpec("ide_c", MutationOptions{SamplePct: 2, Seed: 7})
	spec.Name = "snapshot-determinism"
	col := runSnapshotLeg(t, spec)
	if hits := counterTotal(col, MetricSnapshotHits); hits == 0 {
		t.Error("no boot restored from the snapshot; the on-leg tested nothing")
	}
}

// TestSnapshotMatrixDeterminism: fault-injected matrix cells are
// snapshot-ineligible (the injector holds unhooked state), so every
// mutation boot there must fall back — and the tables must still be
// byte-identical, with restores firing only in the pristine cell.
func TestSnapshotMatrixDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("snapshot matrix determinism test is not short")
	}
	spec := CampaignSpec("busmouse_c", MutationOptions{SamplePct: 10, Seed: 11})
	spec.Name = "snapshot-matrix"
	spec.Scenarios = []string{"pristine", "flaky-bus:10"}
	col := runSnapshotLeg(t, spec)
	if hits := counterTotal(col, MetricSnapshotHits); hits == 0 {
		t.Error("pristine cell never restored from the snapshot")
	}
	if fb := counterTotal(col, MetricSnapshotFallbacks); fb == 0 {
		t.Error("injected cell never fell back; the scenario gate is not exercised")
	}
}

// TestSnapshotFleetDeterminism: a leased fleet with snapshotting on
// must aggregate to the same tables as a serial snapshot-off run.
func TestSnapshotFleetDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("snapshot fleet determinism test is not short")
	}
	spec := CampaignSpec("busmouse_c", MutationOptions{SamplePct: 5, Seed: 13})
	spec.Name = "snapshot-fleet"
	spec.Shards = 4

	render := func(st campaign.Store) string {
		t.Helper()
		tables, order, err := campaign.Aggregate(st.Records())
		if err != nil {
			t.Fatal(err)
		}
		var text string
		for _, d := range order {
			text += FormatDriverTable(TableFromCampaign(tables[d]), d)
		}
		return text
	}

	serialOff := spec
	serialOff.Snapshot = "off"
	ref := campaign.NewMemStore()
	if _, err := campaign.Run(serialOff, NewWorkload(), ref, campaign.Options{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	want := render(ref)

	fleetOn := spec
	fleetOn.Snapshot = "on"
	fstore := campaign.NewMemStore()
	co, err := fleet.NewCoordinator(fleet.CoordinatorConfig{
		Spec: fleetOn, Workload: NewWorkload(), Store: fstore,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	co.Start(ln)
	defer co.Close()
	var wg sync.WaitGroup
	workerErrs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, workerErrs[i] = fleet.RunWorker(co.Addr(), NewWorkload(),
				fleet.WorkerOptions{Name: fmt.Sprintf("snap-w%d", i), Workers: 1})
		}(i)
	}
	wg.Wait()
	for i, werr := range workerErrs {
		if werr != nil {
			t.Fatalf("fleet worker %d: %v", i, werr)
		}
	}
	if err := co.Wait(); err != nil {
		t.Fatal(err)
	}
	if got := render(fstore); got != want {
		t.Errorf("fleet snapshot-on tables differ from serial snapshot-off:\n--- serial off\n%s\n--- fleet on\n%s", want, got)
	}
}
