/*
 * busmouse_c.c — traditional Logitech busmouse driver.
 *
 * The motion counters live behind a single data port, one nibble at a
 * time, selected by writes to the control port — the masking and
 * shifting the paper's Figure 1 quotes verbatim.
 */

//@hw
#define MSE_DATA_PORT    0x23c
#define MSE_SIGNATURE    0x23d
#define MSE_CONTROL_PORT 0x23e
#define MSE_CONFIG_PORT  0x23f

#define MSE_READ_X_LOW   0x80
#define MSE_READ_X_HIGH  0xa0
#define MSE_READ_Y_LOW   0xc0
#define MSE_READ_Y_HIGH  0xe0

#define MSE_SIG_BYTE     0xa5
#define MSE_CONFIG_BYTE  0x91
//@endhw

/* Select one counter nibble and read it. */
static int read_nibble(int sel)
{
    //@hw
    outb(sel, MSE_CONTROL_PORT);
    return inb(MSE_DATA_PORT) & 0xf;
    //@endhw
}

int mouse_init(void)
{
    //@hw
    outb(MSE_SIG_BYTE, MSE_SIGNATURE);
    if (inb(MSE_SIGNATURE) != MSE_SIG_BYTE) {
        printk("busmouse: no adapter found");
        return 1;
    }
    outb(MSE_CONFIG_BYTE, MSE_CONFIG_PORT);
    outb(MSE_READ_X_LOW, MSE_CONTROL_PORT);
    //@endhw
    printk("busmouse: adapter configured");
    return 0;
}

/* Poll the counters: dx in the low byte, dy in the second byte, buttons
 * in the third. */
int mouse_poll(void)
{
    int dx;
    int dy;
    int b;
    //@hw
    dx = read_nibble(MSE_READ_X_LOW);
    dx = dx | (read_nibble(MSE_READ_X_HIGH) << 4);
    dy = read_nibble(MSE_READ_Y_LOW);
    outb(MSE_READ_Y_HIGH, MSE_CONTROL_PORT);
    b = inb(MSE_DATA_PORT);
    dy = dy | ((b & 0xf) << 4);
    //@endhw
    return dx | (dy << 8) | (((b >> 5) & 0x7) << 16);
}
