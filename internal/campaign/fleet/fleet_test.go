package fleet

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"repro/internal/campaign"
)

// TestFrameRoundTrip: every message type survives WriteMsg/ReadMsg with
// its fields intact, including a shard-0 lease (the omitempty trap).
func TestFrameRoundTrip(t *testing.T) {
	spec := campaign.Spec{Name: "rt", Drivers: []string{"alpha"}, Seed: 3}.Normalized()
	msgs := []Msg{
		{T: MsgHello, Name: "w1", Proto: Proto, Fingerprint: "abc"},
		{T: MsgWelcome, Spec: &spec, Fingerprint: spec.Fingerprint(), HeartbeatMS: 250, LeaseTTLMS: 1000},
		{T: MsgReject, Error: "wrong campaign"},
		{T: MsgLease},
		{T: MsgGrant, Shard: 0, Done: []campaign.Record{
			{Kind: campaign.KindResult, Driver: "alpha", Mutant: 4, Row: "Boot"},
		}},
		{T: MsgRetry, DelayMS: 50},
		{T: MsgDrain},
		{T: MsgRecords, Shard: 2, Records: []campaign.Record{
			{Kind: campaign.KindResult, Driver: "alpha", Mutant: 7, Row: "Crash", Shard: 2},
		}},
		{T: MsgHeartbeat},
		{T: MsgDone, Shard: 0},
	}
	var buf bytes.Buffer
	for _, m := range msgs {
		if err := WriteMsg(&buf, m); err != nil {
			t.Fatalf("write %s: %v", m.T, err)
		}
	}
	for _, want := range msgs {
		got, err := ReadMsg(&buf)
		if err != nil {
			t.Fatalf("read %s: %v", want.T, err)
		}
		if got.T != want.T || got.Shard != want.Shard || got.Error != want.Error ||
			got.DelayMS != want.DelayMS || len(got.Done) != len(want.Done) ||
			len(got.Records) != len(want.Records) {
			t.Errorf("round trip %s: got %+v, want %+v", want.T, got, want)
		}
	}
	if _, err := ReadMsg(&buf); err != io.EOF {
		t.Errorf("drained stream: err = %v, want io.EOF", err)
	}
}

// TestReadMsgRejectsMalformedFrames: every class of malformed input is
// rejected with an error naming the offense — the coordinator's log
// must say what a misbehaving peer actually sent.
func TestReadMsgRejectsMalformedFrames(t *testing.T) {
	frame := func(m Msg) []byte {
		var buf bytes.Buffer
		if err := WriteMsg(&buf, m); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"torn header", []byte{0, 0}, "torn frame"},
		{"torn header names header", []byte{0, 0, 1}, "length header"},
		{"empty frame", []byte{0, 0, 0, 0}, "empty frame"},
		{"oversized frame", []byte{0xff, 0xff, 0xff, 0xff}, "oversized frame"},
		{"oversized frame names limit", []byte{0x7f, 0, 0, 0}, "limit is 8388608"},
		{"torn payload", frame(Msg{T: MsgHeartbeat})[:8], "torn frame"},
		{"torn payload counts bytes", append([]byte{0, 0, 0, 10}, 'x', 'y'), "2 of 10 payload bytes"},
		{"unparseable payload", append([]byte{0, 0, 0, 4}, []byte("{{{{")...), "unparseable frame payload"},
		{"unknown type", func() []byte {
			p := []byte(`{"t":"bogus"}`)
			return append([]byte{0, 0, 0, byte(len(p))}, p...)
		}(), `unknown message type "bogus"`},
		{"missing type", func() []byte {
			p := []byte(`{"shard":3}`)
			return append([]byte{0, 0, 0, byte(len(p))}, p...)
		}(), `unknown message type ""`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadMsg(bytes.NewReader(tc.data))
			if err == nil {
				t.Fatalf("ReadMsg accepted %q", tc.data)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not name the offense %q", err, tc.want)
			}
		})
	}
}

// TestWriteMsgRejectsOversizedPayload: a frame that would exceed the
// limit is refused on the sending side too, before any bytes move.
func TestWriteMsgRejectsOversizedPayload(t *testing.T) {
	big := Msg{T: MsgRecords, Records: []campaign.Record{{
		Kind: campaign.KindResult, Driver: strings.Repeat("x", MaxFrame),
	}}}
	var buf bytes.Buffer
	err := WriteMsg(&buf, big)
	if err == nil {
		t.Fatal("WriteMsg accepted an oversized payload")
	}
	if !strings.Contains(err.Error(), "exceeding") {
		t.Errorf("error %q does not name the limit", err)
	}
	if buf.Len() != 0 {
		t.Errorf("%d bytes written for a rejected frame", buf.Len())
	}
}

// FuzzReadMsg: no input may panic the codec, and anything it accepts
// must re-encode and re-decode to the same message type.
func FuzzReadMsg(f *testing.F) {
	var seed bytes.Buffer
	WriteMsg(&seed, Msg{T: MsgHello, Name: "w", Proto: Proto})
	f.Add(seed.Bytes())
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 'x'})
	f.Add(append([]byte{0, 0, 0, 13}, []byte(`{"t":"lease"}`)...))
	f.Add([]byte{0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadMsg(bytes.NewReader(data))
		if err != nil {
			return
		}
		if !knownTypes[m.T] {
			t.Fatalf("ReadMsg accepted unknown type %q", m.T)
		}
		var buf bytes.Buffer
		if err := WriteMsg(&buf, m); err != nil {
			t.Fatalf("accepted message does not re-encode: %v", err)
		}
		m2, err := ReadMsg(&buf)
		if err != nil {
			t.Fatalf("re-encoded message does not re-decode: %v", err)
		}
		if m2.T != m.T {
			t.Fatalf("round trip changed type %q -> %q", m.T, m2.T)
		}
	})
}
