package experiment

import (
	"strings"
	"testing"

	"repro/internal/drivers"
	"repro/internal/kernel"
)

// bootDriver runs the unmutated driver and returns the result.
func bootDriver(t *testing.T, name string) *BootResult {
	t.Helper()
	src, err := drivers.Load(name)
	if err != nil {
		t.Fatalf("load %s: %v", name, err)
	}
	toks, err := ParseDriver(src.Text)
	if err != nil {
		t.Fatalf("lex %s: %v", name, err)
	}
	res, err := Boot(BootInput{Tokens: toks, Devil: src.Devil})
	if err != nil {
		t.Fatalf("boot %s: %v", name, err)
	}
	return res
}

// TestCleanBoot is the baseline of the whole evaluation: both the C driver
// and the Devil driver must compile cleanly and boot with no damage.
func TestCleanBoot(t *testing.T) {
	for _, name := range []string{"ide_c", "ide_devil"} {
		t.Run(name, func(t *testing.T) {
			res := bootDriver(t, name)
			if res.CompileDetected() {
				for _, e := range res.CompileErrors {
					t.Errorf("  compile: %v", e)
				}
				t.Fatalf("%s: clean driver failed to compile", name)
			}
			if res.Outcome != kernel.OutcomeBoot {
				t.Errorf("outcome = %v, want Boot; run error: %v", res.Outcome, res.RunErr)
				for _, line := range res.Console {
					t.Logf("console: %s", line)
				}
			}
			if res.Report == nil || !res.Report.Mounted {
				t.Error("filesystem did not mount")
			}
			if res.Report != nil && res.Report.FilesBad != 0 {
				t.Errorf("%d files failed their checksums: %v",
					res.Report.FilesBad, res.Report.Problems)
			}
			if len(res.DamagedSectors) != 0 {
				t.Errorf("disk audit found damaged sectors: %v", res.DamagedSectors)
			}
			foundUserspace := false
			for _, line := range res.Console {
				if strings.Contains(line, "reached userspace") {
					foundUserspace = true
				}
			}
			if !foundUserspace {
				t.Error("boot did not reach userspace")
			}
			t.Logf("%s: clean boot in %d steps, console %d lines", name, res.Steps, len(res.Console))
		})
	}
}
