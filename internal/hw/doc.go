// Package hw simulates the port-mapped I/O fabric that device drivers talk
// to. It stands in for the ISA/PCI bus of the paper's test machine: devices
// register handler callbacks for ranges of port addresses, and drivers (or
// Devil-generated stubs) issue 8/16/32-bit reads and writes against the bus.
//
// The bus is deliberately unforgiving: an access to an unmapped port, or an
// access whose width a device rejects, returns a BusFaultError. The kernel
// simulator treats an unhandled bus fault as a machine crash, which is how
// the paper's "Crash" outcome class arises from typographical errors in port
// constants.
package hw
