package scanner_test

import (
	"testing"

	"repro/internal/devil/scanner"
	"repro/internal/devil/token"
)

func kinds(toks []token.Token) []token.Kind {
	out := make([]token.Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestScanDeclaration(t *testing.T) {
	src := `register cr = write base @ 3, mask '1001000.' : bit[8];`
	toks, errs := scanner.ScanAll(src)
	if len(errs) != 0 {
		t.Fatalf("errors: %v", errs)
	}
	want := []token.Kind{
		token.KwRegister, token.Ident, token.Assign, token.KwWrite,
		token.Ident, token.At, token.Int, token.Comma, token.KwMask,
		token.BitPattern, token.Colon, token.KwBit, token.LBracket,
		token.Int, token.RBracket, token.Semi,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestBitLiteralClassification(t *testing.T) {
	tests := []struct {
		src  string
		want token.Kind
	}{
		{`'0101'`, token.BitString},
		{`'***1'`, token.BitString},
		{`'10.0'`, token.BitPattern},
		{`'.'`, token.BitPattern},
	}
	for _, tt := range tests {
		toks, errs := scanner.ScanAll(tt.src)
		if len(errs) != 0 || len(toks) != 1 {
			t.Errorf("%s: toks=%v errs=%v", tt.src, toks, errs)
			continue
		}
		if toks[0].Kind != tt.want {
			t.Errorf("%s classified %v, want %v", tt.src, toks[0].Kind, tt.want)
		}
	}
}

func TestMappingOperators(t *testing.T) {
	toks, errs := scanner.ScanAll(`=> <= <=> .. , =`)
	if len(errs) != 0 {
		t.Fatalf("errors: %v", errs)
	}
	want := []token.Kind{token.MapTo, token.MapFrom, token.MapBoth,
		token.DotDot, token.Comma, token.Assign}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestComments(t *testing.T) {
	toks, errs := scanner.ScanAll("// line\nfoo /* block\nspanning */ bar")
	if len(errs) != 0 {
		t.Fatalf("errors: %v", errs)
	}
	if len(toks) != 2 || toks[0].Lit != "foo" || toks[1].Lit != "bar" {
		t.Errorf("tokens = %v", toks)
	}
	if toks[1].Pos.Line != 3 {
		t.Errorf("bar at line %d, want 3", toks[1].Pos.Line)
	}
}

func TestScanErrors(t *testing.T) {
	for _, src := range []string{
		"'01",         // unterminated bit literal
		"'012'",       // invalid bit char
		"''",          // empty bit literal
		"0x",          // no hex digits
		"register $x", // stray character
		"/* open",     // unterminated comment
	} {
		_, errs := scanner.ScanAll(src)
		if len(errs) == 0 {
			t.Errorf("%q scanned without errors", src)
		}
	}
}

// TestRenderRoundTrip: rendering a token stream and re-scanning it yields
// the same stream (kinds + literals).
func TestRenderRoundTrip(t *testing.T) {
	src := `device d (base : bit[8] port @ {0..3}) {
		register r = base @ 1, mask '1..0***.' : bit[8];
		variable v = r[0] : { A => '1', B <=> '0' };
	}`
	toks, errs := scanner.ScanAll(src)
	if len(errs) != 0 {
		t.Fatalf("scan: %v", errs)
	}
	rendered := scanner.Render(toks)
	toks2, errs2 := scanner.ScanAll(rendered)
	if len(errs2) != 0 {
		t.Fatalf("rescan: %v\nrendered:\n%s", errs2, rendered)
	}
	if len(toks) != len(toks2) {
		t.Fatalf("token count changed: %d -> %d", len(toks), len(toks2))
	}
	for i := range toks {
		if toks[i].Kind != toks2[i].Kind || toks[i].Lit != toks2[i].Lit {
			t.Errorf("token %d: %v -> %v", i, toks[i], toks2[i])
		}
	}
}
