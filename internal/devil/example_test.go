package devil_test

import (
	"fmt"
	"log"

	"repro/internal/devil"
	"repro/internal/specs"
)

// ExampleCompile parses and checks a Devil specification — here the
// paper's Figure 3 busmouse — yielding a Spec whose Generate method
// builds executable stubs for a concrete bus assembly.
func ExampleCompile() {
	s, err := specs.Load("busmouse")
	if err != nil {
		log.Fatal(err)
	}
	spec, err := devil.Compile(s.Filename, s.Source)
	if err != nil {
		log.Fatal(err)
	}
	public := 0
	for _, v := range spec.AST.Variables() {
		if !v.Private {
			public++
		}
	}
	fmt.Printf("%s: %d registers, %d public variables\n",
		spec.AST.Name, len(spec.AST.Registers()), public)
	// Output: logitech_busmouse: 8 registers, 6 public variables
}
