package experiment

import (
	"testing"

	"repro/internal/campaign"
	"repro/internal/obs"
)

// TestObservedCampaignMetrics runs a small real campaign with the full
// instrumentation stack enabled and checks the two contracts the
// observability layer makes: every gathered family is declared (so the
// docs check covers it), and the counter arithmetic matches the store.
func TestObservedCampaignMetrics(t *testing.T) {
	col := obs.New()
	wl := NewObservedWorkload(col)
	store := campaign.NewMemStore()
	spec := CampaignSpec("busmouse_c", MutationOptions{SamplePct: 3, Seed: 11})
	spec.Name = "observed"
	sum, err := campaign.Run(spec, wl, store, campaign.Options{
		Workers: 2,
		Metrics: campaign.NewMetrics(col),
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Ran == 0 {
		t.Fatal("campaign booted nothing; test premise broken")
	}

	declared := make(map[string]bool)
	for _, n := range append(campaign.MetricNames(), BootMetricNames()...) {
		declared[n] = true
	}
	for _, name := range col.Names() {
		if !declared[name] {
			t.Errorf("collector registered undeclared family %q (add it to MetricNames/BootMetricNames)", name)
		}
	}

	var boots float64
	phases := make(map[string]uint64)
	for _, s := range col.Gather() {
		switch s.Name {
		case campaign.MetricBoots:
			boots += s.Value
		case MetricBootPhase:
			if s.Label("workload") != "busmouse" {
				t.Errorf("phase span for workload %q, want busmouse", s.Label("workload"))
			}
			phases[s.Label("phase")] += s.Count
		}
	}
	if int(boots) != sum.Ran {
		t.Errorf("%s = %v, want %d", campaign.MetricBoots, boots, sum.Ran)
	}
	// Execute and classify run once per non-compile-detected boot; the
	// front-end phases at least once per boot. All must have fired.
	for _, ph := range []string{PhaseRespan, PhaseCheck, PhaseExecute, PhaseClassify} {
		if phases[ph] == 0 {
			t.Errorf("phase %q never recorded (got %v)", ph, phases)
		}
	}
	if phases[PhaseExecute] != phases[PhaseClassify] {
		t.Errorf("execute (%d) and classify (%d) span counts differ",
			phases[PhaseExecute], phases[PhaseClassify])
	}
	if phases[PhaseExecute] > uint64(sum.Ran) {
		t.Errorf("execute spans (%d) exceed boots (%d)", phases[PhaseExecute], sum.Ran)
	}
}

// TestObservedMatchesUnobserved: instrumentation must not change
// results — the same spec aggregates identically with and without the
// collector.
func TestObservedMatchesUnobserved(t *testing.T) {
	spec := CampaignSpec("busmouse_c", MutationOptions{SamplePct: 2, Seed: 5})
	plain := campaign.NewMemStore()
	if _, err := campaign.Run(spec, NewWorkload(), plain, campaign.Options{}); err != nil {
		t.Fatal(err)
	}
	col := obs.New()
	observed := campaign.NewMemStore()
	if _, err := campaign.Run(spec, NewObservedWorkload(col), observed, campaign.Options{
		Metrics: campaign.NewMetrics(col),
	}); err != nil {
		t.Fatal(err)
	}
	want, _, err := campaign.Aggregate(plain.Records())
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := campaign.Aggregate(observed.Records())
	if err != nil {
		t.Fatal(err)
	}
	for d, w := range want {
		g := got[d]
		if g == nil || FormatDriverTable(TableFromCampaign(g), d) != FormatDriverTable(TableFromCampaign(w), d) {
			t.Errorf("driver %s: observed table differs from unobserved", d)
		}
	}
}
