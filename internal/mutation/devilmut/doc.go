// Package devilmut implements the Devil specification mutation rules of
// §3.2 over Devil token streams:
//
//   - literals: the §3.1 typo model per semantic class — decimal and
//     hexadecimal constants, bit strings (0, 1, *) and bit patterns
//     (0, 1, *, .);
//   - operators: swaps within the two operator classes — the integer-range
//     operators ("," and "..") and the type-mapping operators ("<=", "=>"
//     and "<=>");
//   - identifiers: swaps within the same semantic class (port parameter,
//     register, variable), never at the declaration site of a variable
//     name (renaming a declaration only renames the generated stub).
package devilmut
