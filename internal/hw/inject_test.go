package hw

import (
	"testing"
)

// counterDev is a read-sensitive device: every read strobe advances the
// value, so dropped and doubled strobes are visible in the stream.
type counterDev struct {
	n      uint32
	writes int
}

func (d *counterDev) Name() string { return "counter" }

func (d *counterDev) Read(off Port, width AccessWidth) (uint32, error) {
	d.n++
	return d.n, nil
}

func (d *counterDev) Write(off Port, width AccessWidth, v uint32) error {
	d.writes++
	return nil
}

func injectedBus(t *testing.T, cfg InjectorConfig, clock *Clock) (*Bus, *Injector, *counterDev) {
	t.Helper()
	b := NewBus()
	dev := &counterDev{}
	if err := b.Map(0x100, 4, dev); err != nil {
		t.Fatal(err)
	}
	inj := NewInjector(cfg, clock)
	b.SetInjector(inj)
	return b, inj, dev
}

// readStream reads the port n times and returns the observed values.
func readStream(t *testing.T, b *Bus, n int) []uint32 {
	t.Helper()
	out := make([]uint32, n)
	for i := range out {
		v, err := b.Read(0x100, Width8)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = v
	}
	return out
}

// TestInjectorDeterminism: the same seed over the same access sequence
// yields byte-identical observed values and fault counts; a different
// seed yields a different fault pattern.
func TestInjectorDeterminism(t *testing.T) {
	cfg := InjectorConfig{DropPerMyriad: 1500, DupPerMyriad: 1500, StalePerMyriad: 1500}
	run := func(seed uint64) ([]uint32, [3]uint64) {
		b, inj, _ := injectedBus(t, cfg, nil)
		inj.Reseed(seed)
		vals := readStream(t, b, 400)
		var st [3]uint64
		st[0], st[1], st[2] = inj.Stats()
		return vals, st
	}
	v1, s1 := run(42)
	v2, s2 := run(42)
	if s1 != s2 {
		t.Fatalf("same seed, different fault counts: %v vs %v", s1, s2)
	}
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatalf("same seed diverged at read %d: %d vs %d", i, v1[i], v2[i])
		}
	}
	if s1[0]+s1[1]+s1[2] == 0 {
		t.Fatal("15%% rates injected nothing over 400 reads")
	}
	v3, _ := run(43)
	same := true
	for i := range v1 {
		if v1[i] != v3[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical fault patterns")
	}
}

// TestInjectorReseedRewinds: Reseed makes one injector replay the exact
// fault pattern — the per-boot reuse pattern campaign workers rely on.
func TestInjectorReseedRewinds(t *testing.T) {
	cfg := InjectorConfig{DropPerMyriad: 2000, DupPerMyriad: 2000, StalePerMyriad: 2000}
	b := NewBus()
	dev := &counterDev{}
	if err := b.Map(0x100, 4, dev); err != nil {
		t.Fatal(err)
	}
	inj := NewInjector(cfg, nil)
	b.SetInjector(inj)

	inj.Reseed(7)
	first := readStream(t, b, 200)
	d1, u1, s1 := inj.Stats()
	dev.n = 0 // rewind the device alongside the injector, like a rig Reset
	inj.Reseed(7)
	second := readStream(t, b, 200)
	d2, u2, s2 := inj.Stats()
	if d1 != d2 || u1 != u2 || s1 != s2 {
		t.Fatalf("reseed did not rewind the fault counters: (%d,%d,%d) vs (%d,%d,%d)",
			d1, u1, s1, d2, u2, s2)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("reseed did not replay: read %d is %d, was %d", i, second[i], first[i])
		}
	}
}

// TestInjectorFaultModes: each fault class shows its signature — drops
// return the floating value without strobing the device, dups advance
// the device twice, stale reads repeat the previous latch — and the
// pristine (all-zero) config is a transparent wrapper.
func TestInjectorFaultModes(t *testing.T) {
	// Drop-only: floating values appear, and the device sees exactly
	// (reads - drops) strobes.
	b, inj, dev := injectedBus(t, InjectorConfig{DropPerMyriad: 3000}, nil)
	inj.Reseed(1)
	vals := readStream(t, b, 300)
	drops, _, _ := inj.Stats()
	if drops == 0 {
		t.Fatal("30%% drop rate never dropped in 300 reads")
	}
	floating := 0
	for _, v := range vals {
		if v == 0xff {
			floating++
		}
	}
	if uint64(floating) < drops {
		t.Fatalf("%d drops but only %d floating reads", drops, floating)
	}
	if got, want := uint64(dev.n), uint64(300)-drops; got != want {
		t.Fatalf("device saw %d strobes, want %d (300 reads - %d drops)", got, want, drops)
	}

	// Dup-only: the device sees (reads + dups) strobes.
	b, inj, dev = injectedBus(t, InjectorConfig{DupPerMyriad: 3000}, nil)
	inj.Reseed(1)
	readStream(t, b, 300)
	_, dups, _ := inj.Stats()
	if dups == 0 {
		t.Fatal("30%% dup rate never doubled in 300 reads")
	}
	if got, want := uint64(dev.n), uint64(300)+dups; got != want {
		t.Fatalf("device saw %d strobes, want %d (300 reads + %d dups)", got, want, dups)
	}

	// Stale-only: a stale read repeats an earlier value and skips the
	// strobe, so the monotonic counter stream shows repeats.
	b, inj, dev = injectedBus(t, InjectorConfig{StalePerMyriad: 3000}, nil)
	inj.Reseed(1)
	vals = readStream(t, b, 300)
	_, _, stales := inj.Stats()
	if stales == 0 {
		t.Fatal("30%% stale rate never latched in 300 reads")
	}
	repeats := uint64(0)
	seen := make(map[uint32]bool)
	for _, v := range vals {
		if seen[v] {
			repeats++
		}
		seen[v] = true
	}
	if repeats != stales {
		t.Fatalf("%d stale faults but %d repeated values", stales, repeats)
	}
	if got, want := uint64(dev.n), uint64(300)-stales; got != want {
		t.Fatalf("device saw %d strobes, want %d (300 reads - %d stales)", got, want, stales)
	}

	// Pristine config: transparent.
	b, inj, dev = injectedBus(t, InjectorConfig{}, nil)
	inj.Reseed(1)
	vals = readStream(t, b, 50)
	for i, v := range vals {
		if v != uint32(i+1) {
			t.Fatalf("zero-rate injector perturbed read %d: got %d", i, v)
		}
	}
	if d, u, s := inj.Stats(); d+u+s != 0 {
		t.Fatalf("zero-rate injector counted faults: %d %d %d", d, u, s)
	}
}

// TestInjectorLatency: LatencyTicks charges the clock per mapped access,
// reads and writes alike, and unmapped accesses stay untouched.
func TestInjectorLatency(t *testing.T) {
	clock := &Clock{}
	b, _, _ := injectedBus(t, InjectorConfig{LatencyTicks: 5}, clock)
	b.SetFloating(true)
	start := clock.Now()
	if _, err := b.Read(0x100, Width8); err != nil {
		t.Fatal(err)
	}
	if err := b.Write(0x100, Width8, 1); err != nil {
		t.Fatal(err)
	}
	if got := clock.Now() - start; got != 10 {
		t.Fatalf("two mapped accesses charged %d ticks, want 10", got)
	}
	start = clock.Now()
	if _, err := b.Read(0x900, Width8); err != nil { // unmapped: floats
		t.Fatal(err)
	}
	if got := clock.Now() - start; got != 0 {
		t.Fatalf("unmapped access charged %d ticks, want 0", got)
	}
}
