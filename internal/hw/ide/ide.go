// Package ide models a PIIX4-era IDE (ATA-1) controller with one attached
// master disk, at the fidelity the paper's evaluation needs: the task-file
// register protocol, PIO data transfers, command timing (busy phases
// advanced by the virtual clock), the reset signature, and the degenerate
// behaviours mutated drivers provoke — reading the data port without DRQ,
// selecting an absent slave, issuing unknown commands, or addressing
// sectors that do not exist.
package ide

import (
	"encoding/binary"
	"fmt"

	"repro/internal/hw"
)

// Status register bits.
const (
	StatusError       = 0x01
	StatusIndex       = 0x02
	StatusCorrected   = 0x04
	StatusDataRequest = 0x08
	StatusSeekDone    = 0x10
	StatusWriteFault  = 0x20
	StatusReady       = 0x40
	StatusBusy        = 0x80
)

// Error register bits.
const (
	ErrAddrMarkNotFound = 0x01
	ErrTrack0NotFound   = 0x02
	ErrAborted          = 0x04
	ErrIDNotFound       = 0x10
	ErrUncorrectable    = 0x40
)

// ATA command opcodes implemented by the model.
const (
	CmdRecalibrate  = 0x10
	CmdReadSectors  = 0x20
	CmdWriteSectors = 0x30
	CmdSeek         = 0x70
	CmdInitParams   = 0x91
	CmdIdentify     = 0xec
	CmdSetFeatures  = 0xef
)

// SectorSize is the ATA sector size.
const SectorSize = 512

// Command-phase durations in clock ticks.
const (
	cmdBusyTicks   = 50
	resetBusyTicks = 200
	stepBusyTicks  = 10
)

// Disk is the storage behind the master drive.
type Disk struct {
	// Model is the ASCII model string reported by IDENTIFY.
	Model string
	// Cylinders, Heads, SectorsPerTrack describe the default geometry.
	Cylinders       uint16
	Heads           uint16
	SectorsPerTrack uint16
	// Sectors is the content, indexed by LBA.
	Sectors [][]byte
}

// NewDisk builds a disk over the given sector image with a geometry that
// covers it.
func NewDisk(model string, sectors [][]byte) *Disk {
	heads, spt := uint16(4), uint16(8)
	cyl := uint16((len(sectors) + int(heads)*int(spt) - 1) / (int(heads) * int(spt)))
	if cyl == 0 {
		cyl = 1
	}
	return &Disk{
		Model:           model,
		Cylinders:       cyl,
		Heads:           heads,
		SectorsPerTrack: spt,
		Sectors:         sectors,
	}
}

// transferState is the controller's data-phase state machine.
type transferState int

const (
	stateIdle transferState = iota
	stateBusy               // command accepted, BSY until busyUntil
	stateReadDRQ
	stateWriteDRQ
)

// pendingOp is what the busy phase resolves into.
type pendingOp int

const (
	opNone pendingOp = iota
	opLoadSector
	opIdentify
	opComplete
	opReset
	opWriteNext
)

// Controller is the IDE controller model. It exposes two hw.Device
// endpoints: the command block (8 ports) via the controller itself, and the
// control block (1 port) via ControlBlock.
type Controller struct {
	clock *hw.Clock
	disk  *Disk // master; the slave is absent

	feature      uint8
	sectorCount  uint8
	sectorNumber uint8
	cylLow       uint8
	cylHigh      uint8
	driveHead    uint8
	errorReg     uint8
	status       uint8
	devControl   uint8

	state       transferState
	pending     pendingOp
	busyUntil   uint64
	buf         [SectorSize]byte
	bufPos      int
	curLBA      uint32
	sectorsLeft int
	writing     bool
	resetting   bool
}

var _ hw.Device = (*Controller)(nil)

// NewController attaches a controller with one master disk to the clock.
func NewController(clock *hw.Clock, disk *Disk) *Controller {
	c := &Controller{
		clock:  clock,
		disk:   disk,
		status: StatusReady | StatusSeekDone,
	}
	clock.OnTick(c.tick)
	return c
}

// Name implements hw.Device.
func (c *Controller) Name() string { return "ide0" }

// Reset returns the controller to its power-on state: task file cleared,
// transfer state machine idle, status ready. This is a cold start (for
// the campaign engine's machine-reuse path), not an ATA soft reset — the
// latter goes through the device-control register and loads the reset
// signature.
func (c *Controller) Reset() {
	c.feature, c.sectorCount, c.sectorNumber = 0, 0, 0
	c.cylLow, c.cylHigh, c.driveHead = 0, 0, 0
	c.errorReg = 0
	c.devControl = 0
	c.status = StatusReady | StatusSeekDone
	c.state = stateIdle
	c.pending = opNone
	c.busyUntil = 0
	c.bufPos = 0
	c.curLBA = 0
	c.sectorsLeft = 0
	c.writing = false
	c.resetting = false
}

// Disk returns the attached master disk.
func (c *Controller) Disk() *Disk { return c.disk }

// State is saved controller state for the campaign engine's
// pristine-prefix snapshot: a value copy of the whole register file,
// transfer state machine and sector buffer. Disk content is not
// captured — the workload owns the image and restores it separately.
type State struct {
	c Controller
}

// Snapshot copies the controller's state into s (copy-in-place; s is
// reused across captures). The clock and disk bindings are machine
// wiring, not boot state, and are not captured.
func (c *Controller) Snapshot(s *State) {
	s.c = *c
	s.c.clock, s.c.disk = nil, nil
}

// Restore rewinds the controller to the captured state, keeping its
// clock and disk bindings.
func (c *Controller) Restore(s *State) {
	clock, disk := c.clock, c.disk
	*c = s.c
	c.clock, c.disk = clock, disk
}

// slaveSelected reports whether the (absent) slave drive is selected.
func (c *Controller) slaveSelected() bool { return c.driveHead&0x10 != 0 }

// tick advances the busy-phase state machine.
func (c *Controller) tick(now uint64) {
	if c.state != stateBusy || now < c.busyUntil {
		return
	}
	switch c.pending {
	case opIdentify:
		c.fillIdentify()
		c.bufPos = 0
		c.state = stateReadDRQ
		c.status = StatusReady | StatusSeekDone | StatusDataRequest
	case opLoadSector:
		if int(c.curLBA) >= len(c.disk.Sectors) {
			c.failCommand(ErrIDNotFound)
			return
		}
		copy(c.buf[:], c.disk.Sectors[c.curLBA])
		c.bufPos = 0
		c.state = stateReadDRQ
		c.status = StatusReady | StatusSeekDone | StatusDataRequest
	case opComplete:
		c.state = stateIdle
		c.status = StatusReady | StatusSeekDone
	case opReset:
		c.resetting = false
		c.state = stateIdle
		c.signature()
	case opWriteNext:
		c.state = stateWriteDRQ
		c.status = StatusReady | StatusSeekDone | StatusDataRequest
	}
	c.pending = opNone
}

// signature loads the ATA reset signature into the task file.
func (c *Controller) signature() {
	c.sectorCount = 1
	c.sectorNumber = 1
	c.cylLow = 0
	c.cylHigh = 0
	c.errorReg = 0x01 // diagnostics passed
	c.status = StatusReady | StatusSeekDone
}

func (c *Controller) failCommand(errBits uint8) {
	c.errorReg = errBits
	c.state = stateIdle
	c.pending = opNone
	c.status = StatusReady | StatusSeekDone | StatusError
}

// beginBusy enters the busy phase for d ticks resolving into op.
func (c *Controller) beginBusy(d uint64, op pendingOp) {
	c.state = stateBusy
	c.pending = op
	c.busyUntil = c.clock.Now() + d
	c.status = StatusBusy
}

// targetLBA decodes the addressing registers per the LBA-mode bit.
func (c *Controller) targetLBA() (uint32, bool) {
	if c.driveHead&0x40 != 0 { // LBA mode
		lba := uint32(c.driveHead&0x0f)<<24 |
			uint32(c.cylHigh)<<16 |
			uint32(c.cylLow)<<8 |
			uint32(c.sectorNumber)
		return lba, int(lba) < len(c.disk.Sectors)
	}
	// CHS: sectors are 1-based.
	cyl := uint32(c.cylHigh)<<8 | uint32(c.cylLow)
	head := uint32(c.driveHead & 0x0f)
	sec := uint32(c.sectorNumber)
	if sec == 0 || head >= uint32(c.disk.Heads) || sec > uint32(c.disk.SectorsPerTrack) {
		return 0, false
	}
	lba := (cyl*uint32(c.disk.Heads)+head)*uint32(c.disk.SectorsPerTrack) + sec - 1
	return lba, int(lba) < len(c.disk.Sectors)
}

// command dispatches a write to the command register.
func (c *Controller) command(op uint8) {
	if c.status&StatusBusy != 0 {
		return // commands while busy are ignored
	}
	if c.slaveSelected() {
		return // nobody home
	}
	c.errorReg = 0
	count := int(c.sectorCount)
	if count == 0 {
		count = 256
	}
	switch op {
	case CmdIdentify:
		c.sectorsLeft = 1
		c.writing = false
		c.beginBusy(cmdBusyTicks, opIdentify)
	case CmdReadSectors, CmdReadSectors | 1: // with/without retry
		lba, ok := c.targetLBA()
		if !ok {
			c.failCommand(ErrIDNotFound)
			return
		}
		c.curLBA = lba
		c.sectorsLeft = count
		c.writing = false
		c.beginBusy(cmdBusyTicks, opLoadSector)
	case CmdWriteSectors, CmdWriteSectors | 1:
		lba, ok := c.targetLBA()
		if !ok {
			c.failCommand(ErrIDNotFound)
			return
		}
		c.curLBA = lba
		c.sectorsLeft = count
		c.writing = true
		c.bufPos = 0
		c.state = stateWriteDRQ
		c.status = StatusReady | StatusSeekDone | StatusDataRequest
	case CmdRecalibrate, CmdSeek, CmdInitParams, CmdSetFeatures:
		c.beginBusy(cmdBusyTicks, opComplete)
	default:
		c.failCommand(ErrAborted)
	}
}

// fillIdentify builds the 512-byte IDENTIFY DEVICE block.
func (c *Controller) fillIdentify() {
	for i := range c.buf {
		c.buf[i] = 0
	}
	put16 := func(word int, v uint16) {
		binary.LittleEndian.PutUint16(c.buf[word*2:], v)
	}
	put16(0, 0x0040) // fixed drive
	put16(1, c.disk.Cylinders)
	put16(3, c.disk.Heads)
	put16(6, c.disk.SectorsPerTrack)
	total := uint32(len(c.disk.Sectors))
	put16(60, uint16(total))
	put16(61, uint16(total>>16))
	put16(49, 0x0200) // LBA supported
	// Model string in words 27..46, ASCII with bytes swapped per ATA.
	model := c.disk.Model
	for i := 0; i < 40; i++ {
		ch := byte(' ')
		if i < len(model) {
			ch = model[i]
		}
		c.buf[27*2+(i^1)] = ch
	}
}

// dataRead services a 16-bit read of the data port.
func (c *Controller) dataRead() uint16 {
	if c.state != stateReadDRQ || c.status&StatusDataRequest == 0 {
		return 0xffff // floating bus: no data phase active
	}
	v := binary.LittleEndian.Uint16(c.buf[c.bufPos:])
	c.bufPos += 2
	if c.bufPos >= SectorSize {
		c.sectorsLeft--
		if c.sectorsLeft > 0 {
			c.curLBA++
			c.beginBusy(stepBusyTicks, opLoadSector)
		} else {
			c.state = stateIdle
			c.status = StatusReady | StatusSeekDone
		}
	}
	return v
}

// dataWrite services a 16-bit write of the data port.
func (c *Controller) dataWrite(v uint16) {
	if c.state != stateWriteDRQ || c.status&StatusDataRequest == 0 {
		return // dropped on the floor
	}
	binary.LittleEndian.PutUint16(c.buf[c.bufPos:], v)
	c.bufPos += 2
	if c.bufPos >= SectorSize {
		if int(c.curLBA) < len(c.disk.Sectors) {
			copy(c.disk.Sectors[c.curLBA], c.buf[:])
		}
		c.sectorsLeft--
		c.bufPos = 0
		if c.sectorsLeft > 0 {
			c.curLBA++
			c.beginBusy(stepBusyTicks, opWriteNext)
		} else {
			c.state = stateIdle
			c.status = StatusReady | StatusSeekDone
		}
	}
}

// Read implements hw.Device for the command block.
func (c *Controller) Read(offset hw.Port, width hw.AccessWidth) (uint32, error) {
	switch offset {
	case 0:
		if width != hw.Width16 {
			return 0xff, nil // 8-bit poke at the data port yields garbage
		}
		if c.slaveSelected() {
			return 0xffff, nil
		}
		return uint32(c.dataRead()), nil
	case 1:
		if c.slaveSelected() {
			return 0, nil
		}
		return uint32(c.errorReg), nil
	case 2:
		return uint32(c.sectorCount), nil
	case 3:
		return uint32(c.sectorNumber), nil
	case 4:
		return uint32(c.cylLow), nil
	case 5:
		return uint32(c.cylHigh), nil
	case 6:
		return uint32(c.driveHead | 0xa0), nil
	case 7:
		if c.slaveSelected() {
			return 0, nil
		}
		return uint32(c.status), nil
	}
	return 0, fmt.Errorf("ide: read of nonexistent register %d", offset)
}

// Write implements hw.Device for the command block.
func (c *Controller) Write(offset hw.Port, width hw.AccessWidth, value uint32) error {
	switch offset {
	case 0:
		if width == hw.Width16 && !c.slaveSelected() {
			c.dataWrite(uint16(value))
		}
		return nil
	case 1:
		c.feature = uint8(value)
		return nil
	case 2:
		c.sectorCount = uint8(value)
		return nil
	case 3:
		c.sectorNumber = uint8(value)
		return nil
	case 4:
		c.cylLow = uint8(value)
		return nil
	case 5:
		c.cylHigh = uint8(value)
		return nil
	case 6:
		c.driveHead = uint8(value)
		return nil
	case 7:
		c.command(uint8(value))
		return nil
	}
	return fmt.Errorf("ide: write of nonexistent register %d", offset)
}

// controlBlock adapts the control-block port to hw.Device.
type controlBlock struct {
	c *Controller
}

var _ hw.Device = (*controlBlock)(nil)

// ControlBlock returns the device endpoint for the control block (alternate
// status / device control at 0x3f6).
func (c *Controller) ControlBlock() hw.Device { return &controlBlock{c: c} }

// Name implements hw.Device.
func (b *controlBlock) Name() string { return "ide0-ctl" }

// Read implements hw.Device: alternate status.
func (b *controlBlock) Read(offset hw.Port, width hw.AccessWidth) (uint32, error) {
	if offset != 0 {
		return 0, fmt.Errorf("ide-ctl: read of nonexistent register %d", offset)
	}
	if b.c.slaveSelected() {
		return 0, nil
	}
	return uint32(b.c.status), nil
}

// Write implements hw.Device: device control, including soft reset.
func (b *controlBlock) Write(offset hw.Port, width hw.AccessWidth, value uint32) error {
	if offset != 0 {
		return fmt.Errorf("ide-ctl: write of nonexistent register %d", offset)
	}
	prev := b.c.devControl
	b.c.devControl = uint8(value)
	if value&0x04 != 0 && !b.c.resetting {
		// SRST asserted: the drive goes busy.
		b.c.resetting = true
		b.c.status = StatusBusy
		b.c.state = stateBusy
		b.c.pending = opNone // wait for release
	}
	if prev&0x04 != 0 && value&0x04 == 0 && b.c.resetting {
		// SRST released: finish the reset after the reset delay.
		b.c.beginBusy(resetBusyTicks, opReset)
	}
	return nil
}
