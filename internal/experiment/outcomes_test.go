package experiment

import (
	"strings"
	"testing"

	"repro/internal/cdriver/ctoken"
	"repro/internal/drivers"
	"repro/internal/kernel"
)

// mutateToken loads a driver, finds the nth token matching old inside a
// tagged region, and swaps its literal (and kind, when given).
func mutateToken(t *testing.T, driver, old, new string, kind ctoken.Kind, nth int) []ctoken.Token {
	t.Helper()
	src, err := drivers.Load(driver)
	if err != nil {
		t.Fatal(err)
	}
	toks, err := ParseDriver(src.Text)
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for i, tok := range toks {
		if !tok.Tagged || tok.Lit != old {
			continue
		}
		if seen < nth {
			seen++
			continue
		}
		out := make([]ctoken.Token, len(toks))
		copy(out, toks)
		out[i].Lit = new
		if kind != 0 {
			out[i].Kind = kind
		}
		return out
	}
	t.Fatalf("token %q (occurrence %d) not found in tagged region of %s", old, nth, driver)
	return nil
}

func bootTokens(t *testing.T, toks []ctoken.Token, isDevil bool) *BootResult {
	t.Helper()
	res, err := Boot(BootInput{Tokens: toks, Devil: isDevil, Budget: ExperimentBudget})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestOutcomeHalt: corrupting the reset-release control byte leaves the
// drive busy; the C driver's bounded ready-wait panics.
func TestOutcomeHalt(t *testing.T) {
	// SEL_DEFAULT -> SEL_LBA swap is harmless; instead redirect the status
	// read: IDE_STATUS (0x1f7) -> 0x1f1 (error register, reads 0 = never
	// READY) makes wait_ready time out and panic.
	toks := mutateToken(t, "ide_c", "0x1f7", "0x1f1", 0, 0)
	res := bootTokens(t, toks, false)
	if res.Outcome != kernel.OutcomeHalt && res.Outcome != kernel.OutcomeInfiniteLoop {
		t.Errorf("outcome = %v (%v), want Halt or InfiniteLoop", res.Outcome, res.RunErr)
	}
}

// TestOutcomeCrash: a stray write to the interrupt controller wedges the
// machine silently.
func TestOutcomeCrash(t *testing.T) {
	// IDE_CONTROL 0x3f6 -> 0x21 (PIC mask register).
	toks := mutateToken(t, "ide_c", "0x3f6", "0x21", 0, 0)
	res := bootTokens(t, toks, false)
	if res.Outcome != kernel.OutcomeCrash {
		t.Errorf("outcome = %v (%v), want Crash", res.Outcome, res.RunErr)
	}
}

// TestOutcomeInfiniteLoop: redirecting the status port to a floating port
// makes BSY read as stuck-on; the unbounded busy-wait never exits.
func TestOutcomeInfiniteLoop(t *testing.T) {
	toks := mutateToken(t, "ide_c", "0x1f7", "0x2f7", 0, 0)
	res := bootTokens(t, toks, false)
	if res.Outcome != kernel.OutcomeInfiniteLoop {
		t.Errorf("outcome = %v (%v), want InfiniteLoop", res.Outcome, res.RunErr)
	}
}

// TestOutcomeDamagedBoot: a wrong shift in the transfer-buffer offset
// makes multi-sector reads overlap in the buffer; the single-sector mount
// metadata reads survive, so the boot completes with corrupt files.
func TestOutcomeDamagedBoot(t *testing.T) {
	// In "(s << 9) + i + i", 9 -> 8 halves the per-sector stride.
	toks := mutateToken(t, "ide_c", "9", "8", 0, 0)
	res := bootTokens(t, toks, false)
	if res.Outcome != kernel.OutcomeDamagedBoot {
		t.Errorf("outcome = %v (%v), want DamagedBoot", res.Outcome, res.RunErr)
		for _, l := range res.Console {
			t.Logf("console: %s", l)
		}
	}
}

// TestOutcomeRuntimeCheck: swapping a dil_eq constant across Devil types
// compiles (dil_eq is polymorphic) and dies on the run-time type check.
func TestOutcomeRuntimeCheck(t *testing.T) {
	// In wait_not_busy: dil_eq(get_Busy(), BUSY) with BUSY -> MASTER.
	toks := mutateToken(t, "ide_devil", "BUSY", "MASTER", 0, 0)
	res := bootTokens(t, toks, true)
	if res.CompileDetected() {
		t.Fatalf("unexpected compile error: %v", res.CompileErrors[0])
	}
	if res.Outcome != kernel.OutcomeRuntimeCheck {
		t.Errorf("outcome = %v (%v), want RuntimeCheck", res.Outcome, res.RunErr)
	}
	// The diagnostic names the mechanism, like the paper's dil_assert.
	if res.RunErr == nil || !strings.Contains(res.RunErr.Error(), "Devil assertion failed") {
		t.Errorf("run error = %v, want a Devil assertion", res.RunErr)
	}
}

// TestOutcomeCompileCheck: passing a constant of the wrong Devil type to a
// setter is a compile-time type error in the strict world.
func TestOutcomeCompileCheck(t *testing.T) {
	toks := mutateToken(t, "ide_devil", "MASTER", "CMD_IDENTIFY", 0, 0)
	res := bootTokens(t, toks, true)
	if !res.CompileDetected() {
		t.Fatalf("mutant compiled; outcome %v", res.Outcome)
	}
	found := false
	for _, e := range res.CompileErrors {
		if strings.Contains(e.Error(), "incompatible type") {
			found = true
		}
	}
	if !found {
		t.Errorf("no type diagnostic: %v", res.CompileErrors)
	}
}

// TestOutcomeDeadCode: a mutation inside the never-executed write-fault
// arm boots cleanly and its line is uncovered.
func TestOutcomeDeadCode(t *testing.T) {
	// The write-fault arm of end_of_command never runs on healthy
	// hardware; its printk line must stay uncovered through a clean boot.
	src, err := drivers.Load("ide_devil")
	if err != nil {
		t.Fatal(err)
	}
	toks, err := ParseDriver(src.Text)
	if err != nil {
		t.Fatal(err)
	}
	idx := -1
	for i, tok := range toks {
		if tok.Kind == ctoken.String && tok.Lit == "ide0: write fault" {
			idx = i
		}
	}
	if idx < 0 {
		t.Fatal("write-fault arm not found")
	}
	line := toks[idx].Pos.Line
	res := bootTokens(t, toks, true)
	if res.Outcome != kernel.OutcomeBoot {
		t.Fatalf("baseline boot failed: %v", res.Outcome)
	}
	if res.Coverage.Covered(line) {
		t.Errorf("write-fault arm (line %d) unexpectedly executed", line)
	}
}

// TestOutcomeSilentBoot: widening the timeout constant changes nothing
// observable — the worst case.
func TestOutcomeSilentBoot(t *testing.T) {
	toks := mutateToken(t, "ide_c", "20000", "60000", 0, 0)
	res := bootTokens(t, toks, false)
	if res.Outcome != kernel.OutcomeBoot {
		t.Errorf("outcome = %v (%v), want Boot", res.Outcome, res.RunErr)
	}
}

// TestPartitionTableLossScenario reproduces the paper's anecdote: a mutant
// that redirects the superblock write to LBA 0 destroys the partition
// table ("required re-formatting the disk").
func TestPartitionTableLossScenario(t *testing.T) {
	src, err := drivers.Load("ide_c")
	if err != nil {
		t.Fatal(err)
	}
	toks, err := ParseDriver(src.Text)
	if err != nil {
		t.Fatal(err)
	}
	// Each transfer path masks the LBA with three 0xff constants; the
	// write path's first one (hits[3]) is "lba & 0xff" for IDE_SECTOR.
	var hits []int
	for i, tok := range toks {
		if tok.Tagged && tok.Lit == "0xff" {
			hits = append(hits, i)
		}
	}
	if len(hits) != 6 {
		t.Fatalf("expected 6 0xff sites (3 per transfer path), got %d", len(hits))
	}
	// hits[3] is the write path's "lba & 0xff": zeroing the mask makes the
	// superblock dirty-flag write land on LBA 0 — the partition table.
	out := make([]ctoken.Token, len(toks))
	copy(out, toks)
	out[hits[3]].Lit = "0x0"
	res := bootTokens(t, out, false)
	if !res.PartitionTableLost && res.Outcome != kernel.OutcomeDamagedBoot {
		t.Errorf("outcome = %v, PT lost = %v; want damage", res.Outcome, res.PartitionTableLost)
	}
}
