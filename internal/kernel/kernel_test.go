package kernel_test

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/devil/codegen"
	"repro/internal/hw"
	"repro/internal/kernel"
)

func TestWatchdog(t *testing.T) {
	k := kernel.New(&hw.Clock{})
	k.SetBudget(10)
	for i := 0; i < 10; i++ {
		if err := k.Step(); err != nil {
			t.Fatalf("step %d tripped early: %v", i, err)
		}
	}
	err := k.Step()
	var wd *kernel.WatchdogError
	if !errors.As(err, &wd) {
		t.Fatalf("got %v, want WatchdogError", err)
	}
	if wd.Budget != 10 {
		t.Errorf("budget in error = %d", wd.Budget)
	}
}

func TestDelayChargesWatchdogAndClock(t *testing.T) {
	clock := &hw.Clock{}
	k := kernel.New(clock)
	k.SetBudget(100)
	if err := k.Delay(50); err != nil {
		t.Fatal(err)
	}
	if clock.Now() != 50 {
		t.Errorf("clock = %d, want 50", clock.Now())
	}
	if err := k.Delay(100); err == nil {
		t.Error("oversized delay did not trip the watchdog")
	}
	if err := k.Delay(-5); err == nil {
		t.Log("negative delay treated as zero (ok)")
	}
}

func TestPanicGoesToConsole(t *testing.T) {
	k := kernel.New(&hw.Clock{})
	err := k.Panic("ide: timeout")
	var pe *kernel.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("got %v, want PanicError", err)
	}
	console := k.Console()
	if len(console) != 1 || console[0] != "Kernel panic: ide: timeout" {
		t.Errorf("console = %v", console)
	}
}

func TestBufferBounds(t *testing.T) {
	k := kernel.New(&hw.Clock{})
	if err := k.BufWrite16(0, 0xbeef); err != nil {
		t.Fatal(err)
	}
	v, err := k.BufRead16(0)
	if err != nil || v != 0xbeef {
		t.Fatalf("round trip = %#x, %v", v, err)
	}
	_, err = k.BufRead8(int64(len(k.Buf())))
	var crash *kernel.CrashError
	if !errors.As(err, &crash) {
		t.Errorf("wild read: got %v, want CrashError", err)
	}
	if err := k.BufWrite8(-1, 0); !errors.As(err, &crash) {
		t.Errorf("wild write: got %v, want CrashError", err)
	}
}

// TestBuf16RoundTrip property: 16-bit buffer accesses are little-endian
// and lossless.
func TestBuf16RoundTrip(t *testing.T) {
	k := kernel.New(&hw.Clock{})
	prop := func(off uint16, v uint16) bool {
		o := int64(off) % int64(len(k.Buf())-2)
		if err := k.BufWrite16(o, v); err != nil {
			return false
		}
		got, err := k.BufRead16(o)
		if err != nil {
			return false
		}
		lo, _ := k.BufRead8(o)
		return got == v && lo == uint8(v)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestClassify(t *testing.T) {
	tests := []struct {
		err  error
		want kernel.Outcome
	}{
		{nil, kernel.OutcomeBoot},
		{&codegen.AssertError{Variable: "Drive", Msg: "type"}, kernel.OutcomeRuntimeCheck},
		{&kernel.PanicError{Msg: "x"}, kernel.OutcomeHalt},
		{&kernel.WatchdogError{Budget: 1}, kernel.OutcomeInfiniteLoop},
		{&kernel.CrashError{Cause: errors.New("boom")}, kernel.OutcomeCrash},
		{&hw.BusFaultError{Port: 1}, kernel.OutcomeCrash},
		{errors.New("anything else"), kernel.OutcomeCrash},
		{fmt.Errorf("wrapped: %w", &kernel.PanicError{Msg: "y"}), kernel.OutcomeHalt},
	}
	for _, tt := range tests {
		if got := kernel.Classify(tt.err); got != tt.want {
			t.Errorf("Classify(%v) = %v, want %v", tt.err, got, tt.want)
		}
	}
}

func TestOutcomeSemantics(t *testing.T) {
	if !kernel.OutcomeRuntimeCheck.Detected() {
		t.Error("run-time check must count as detected")
	}
	for _, o := range []kernel.Outcome{
		kernel.OutcomeBoot, kernel.OutcomeCrash, kernel.OutcomeHalt,
		kernel.OutcomeInfiniteLoop, kernel.OutcomeDamagedBoot, kernel.OutcomeDeadCode,
	} {
		if o.Detected() {
			t.Errorf("%v must not count as detected", o)
		}
	}
	if !kernel.OutcomeBoot.Silent() || kernel.OutcomeHalt.Silent() {
		t.Error("silence classification wrong")
	}
	if kernel.OutcomeBoot.String() != "Boot" || kernel.Outcome(99).String() != "Unknown" {
		t.Error("outcome names wrong")
	}
}

func TestWallClockDeadline(t *testing.T) {
	k := kernel.New(&hw.Clock{})
	k.SetBudget(1 << 40) // the step watchdog must not be the one that fires
	k.SetDeadline(time.Nanosecond)
	time.Sleep(time.Millisecond)
	var err error
	for i := 0; i < 4097 && err == nil; i++ { // deadline polls every 4096 steps
		err = k.Step()
	}
	var dl *kernel.DeadlineError
	if !errors.As(err, &dl) {
		t.Fatalf("got %v, want DeadlineError", err)
	}
	if kernel.Classify(err) != kernel.OutcomeInfiniteLoop {
		t.Errorf("deadline expiry classified as %v, want OutcomeInfiniteLoop", kernel.Classify(err))
	}
	// Delay polls the deadline immediately.
	k2 := kernel.New(&hw.Clock{})
	k2.SetBudget(1 << 40)
	k2.SetDeadline(time.Nanosecond)
	time.Sleep(time.Millisecond)
	if err := k2.Delay(1); !errors.As(err, &dl) {
		t.Fatalf("Delay after deadline: got %v, want DeadlineError", err)
	}
	// Reset disarms: a reused kernel does not inherit the old deadline.
	k.Reset()
	for i := 0; i < 5000; i++ {
		if err := k.Step(); err != nil {
			t.Fatalf("step after Reset tripped stale deadline: %v", err)
		}
	}
	// A generous deadline never fires on a normal boot.
	k3 := kernel.New(&hw.Clock{})
	k3.SetDeadline(time.Hour)
	for i := 0; i < 10000; i++ {
		if err := k3.Step(); err != nil {
			t.Fatalf("armed-but-distant deadline fired: %v", err)
		}
	}
}
