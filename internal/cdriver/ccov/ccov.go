// Package ccov holds the statement-level line-coverage representation
// shared by the hwC execution backends (the cinterp tree-walker and the
// ccompile closure compiler).
//
// Coverage decides the "Dead code" row of Tables 3 and 4: a mutant that
// boots cleanly without ever executing its mutation site cannot be blamed
// on the driver. The experiment hot path queries a single line per boot,
// so the representation is a dense bitset — one word per 64 source lines —
// rather than a map: setting a line is one shift-and-or, querying one is a
// bounds check and a mask, and resetting between pooled boots is a memclr
// instead of a reallocation.
package ccov

import (
	"iter"
	"math/bits"
)

// Set is a dense set of executed source lines. The zero value is an empty
// set ready for use. Lines are 1-based like ctoken positions; line 0 (the
// "no position" marker) is never stored.
type Set struct {
	words []uint64
	n     int // number of lines set
}

// New returns a set pre-sized for lines up to maxLine, so the execution
// hot path never grows it.
func New(maxLine int) *Set {
	s := &Set{}
	s.Grow(maxLine)
	return s
}

// Grow ensures the set can hold lines up to maxLine without reallocating.
func (s *Set) Grow(maxLine int) {
	need := maxLine/64 + 1
	if need > len(s.words) {
		words := make([]uint64, need)
		copy(words, s.words)
		s.words = words
	}
}

// Add marks a line as executed. Non-positive lines are ignored, matching
// the interpreter's cover() guard.
func (s *Set) Add(line int) {
	if line <= 0 {
		return
	}
	w, bit := line/64, uint64(1)<<uint(line%64)
	if w >= len(s.words) {
		s.Grow(line)
	}
	if s.words[w]&bit == 0 {
		s.words[w] |= bit
		s.n++
	}
}

// Covered reports whether a line was executed. A nil set covers nothing
// (a boot that died before execution has no coverage).
func (s *Set) Covered(line int) bool {
	if s == nil || line <= 0 {
		return false
	}
	w := line / 64
	return w < len(s.words) && s.words[w]&(1<<uint(line%64)) != 0
}

// Len returns the number of covered lines.
func (s *Set) Len() int {
	if s == nil {
		return 0
	}
	return s.n
}

// Reset empties the set in place, keeping its backing storage — the
// per-boot rewind of a pooled coverage buffer.
func (s *Set) Reset() {
	clear(s.words)
	s.n = 0
}

// Lines returns an iterator over the covered lines in ascending order.
// It allocates nothing: classification and diffing walk the bitset words
// directly.
func (s *Set) Lines() iter.Seq[int] {
	return func(yield func(int) bool) {
		if s == nil {
			return
		}
		for w, word := range s.words {
			for word != 0 {
				line := w*64 + bits.TrailingZeros64(word)
				if !yield(line) {
					return
				}
				word &= word - 1
			}
		}
	}
}

// Slice returns the covered lines as a sorted slice (test and report
// helper; the hot path uses Lines or Covered).
func (s *Set) Slice() []int {
	out := make([]int, 0, s.Len())
	for line := range s.Lines() {
		out = append(out, line)
	}
	return out
}

// Equal reports whether two sets cover exactly the same lines; nil is
// the empty set.
func (s *Set) Equal(o *Set) bool {
	if s.Len() != o.Len() {
		return false
	}
	var long, short []uint64
	if s != nil {
		long = s.words
	}
	if o != nil {
		short = o.words
	}
	if len(long) < len(short) {
		long, short = short, long
	}
	for i, w := range long {
		var ow uint64
		if i < len(short) {
			ow = short[i]
		}
		if w != ow {
			return false
		}
	}
	return true
}

// CopyFrom overwrites s with o's contents in place, reusing s's backing
// storage — the snapshot-restore counterpart of Reset. nil o empties s.
func (s *Set) CopyFrom(o *Set) {
	if o == nil {
		s.Reset()
		return
	}
	s.words = append(s.words[:0], o.words...)
	s.n = o.n
}

// Clone returns an independent copy.
func (s *Set) Clone() *Set {
	out := &Set{words: make([]uint64, len(s.words)), n: s.n}
	copy(out.words, s.words)
	return out
}
