package sysboard_test

import (
	"errors"
	"testing"

	"repro/internal/hw"
	"repro/internal/hw/sysboard"
)

func TestStrayWritesWedge(t *testing.T) {
	bus := hw.NewBus()
	if err := sysboard.MapAll(bus); err != nil {
		t.Fatal(err)
	}
	for _, port := range []hw.Port{0x00, 0x20, 0x21, 0x40, 0x43, 0x60, 0x70, 0xa0, 0xc0} {
		err := bus.Out8(port, 0x42)
		var wedge *sysboard.WedgeError
		if !errors.As(err, &wedge) {
			t.Errorf("write to %#x: got %v, want WedgeError", port, err)
		}
	}
}

func TestStrayReadsFloat(t *testing.T) {
	bus := hw.NewBus()
	if err := sysboard.MapAll(bus); err != nil {
		t.Fatal(err)
	}
	v, err := bus.In8(0x21)
	if err != nil {
		t.Fatalf("read of PIC mask errored: %v", err)
	}
	if v != 0xff {
		t.Errorf("system device read = %#x, want 0xff", v)
	}
}

func TestRegionsDoNotOverlapExpansionSpace(t *testing.T) {
	for _, r := range sysboard.Regions() {
		if r.Base+r.Size > 0x100 {
			t.Errorf("%s extends past the system-device area: %#x+%#x",
				r.Name, r.Base, r.Size)
		}
	}
	// All regions must coexist on one bus.
	bus := hw.NewBus()
	if err := sysboard.MapAll(bus); err != nil {
		t.Fatal(err)
	}
}
