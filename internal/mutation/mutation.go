// Package mutation holds the language-independent core of the error model
// of §3.1: typographical mutations of literals (character insertion,
// deletion and replacement within a semantic character class) and
// deterministic sampling of mutant populations.
//
// The language-specific rule sets build on it: mutation/cmut implements
// the C rules of §3.3 and Table 1, mutation/devilmut the Devil rules of
// §3.2.
package mutation

// EditKind classifies a literal character edit.
type EditKind int

// Edit kinds.
const (
	EditDelete EditKind = iota + 1
	EditInsert
	EditReplace
)

// String names the edit kind.
func (k EditKind) String() string {
	switch k {
	case EditDelete:
		return "delete"
	case EditInsert:
		return "insert"
	case EditReplace:
		return "replace"
	}
	return "?"
}

// LiteralEdit is one typographical variant of a literal's character string.
type LiteralEdit struct {
	Kind EditKind
	// Text is the mutated character string.
	Text string
}

// LiteralEdits enumerates the §3.1 typo model over a character string:
// every single-character deletion (unless it would empty the string),
// every insertion of an alphabet character at every position, and every
// replacement of a character by a different alphabet character.
//
// Duplicates (edits yielding the same text, e.g. deleting either '5' of
// "55") are emitted once. The given example of the paper — a 2-digit
// base-10 number yields 2 deletions + 30 insertions + 18 replacements = 50
// mutants — holds when no duplicates arise.
func LiteralEdits(text string, alphabet string) []LiteralEdit {
	seen := make(map[string]bool, 4*len(text)*len(alphabet))
	seen[text] = true // never regenerate the original
	var out []LiteralEdit
	emit := func(kind EditKind, s string) {
		if seen[s] {
			return
		}
		seen[s] = true
		out = append(out, LiteralEdit{Kind: kind, Text: s})
	}
	// Deletions.
	if len(text) > 1 {
		for i := 0; i < len(text); i++ {
			emit(EditDelete, text[:i]+text[i+1:])
		}
	}
	// Insertions.
	for i := 0; i <= len(text); i++ {
		for j := 0; j < len(alphabet); j++ {
			emit(EditInsert, text[:i]+string(alphabet[j])+text[i:])
		}
	}
	// Replacements.
	for i := 0; i < len(text); i++ {
		for j := 0; j < len(alphabet); j++ {
			if alphabet[j] == text[i] {
				continue
			}
			emit(EditReplace, text[:i]+string(alphabet[j])+text[i+1:])
		}
	}
	return out
}

// Alphabets of the literal semantic classes.
const (
	AlphabetDecimal    = "0123456789"
	AlphabetOctal      = "01234567"
	AlphabetHex        = "0123456789abcdef"
	AlphabetBitString  = "01*"
	AlphabetBitPattern = "01*."
)

// Sample returns k distinct indices from [0, n) drawn with a deterministic
// linear-congruential generator, in increasing order. It reproduces the
// paper's "randomly tested 25% of the generated mutants" step without
// pulling in global randomness (runs must be reproducible).
func Sample(n, k int, seed uint64) []int {
	if k >= n {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	// Partial Fisher-Yates over an index permutation.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	state := seed*6364136223846793005 + 1442695040888963407
	next := func(bound int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(bound))
	}
	for i := 0; i < k; i++ {
		j := i + next(n-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	picked := idx[:k]
	// Sort the selection (insertion sort: k is modest).
	for i := 1; i < len(picked); i++ {
		for j := i; j > 0 && picked[j-1] > picked[j]; j-- {
			picked[j-1], picked[j] = picked[j], picked[j-1]
		}
	}
	return picked
}
