// Package drivers embeds the hwC driver corpus of the evaluation: three
// traditional/CDevil pairs over the same hardware — the PIIX4 IDE disk
// driver of Tables 3/4 (ide_c, ide_devil), the Logitech busmouse pair
// (busmouse_c, busmouse_devil), and the NE2000 Ethernet pair (ne2000_c,
// ne2000_devil). Each _c source hand-codes the port protocol the matching
// _devil source delegates to generated stubs, and the //@hw markers bound
// the hardware operating code the mutation rules apply to.
package drivers
