package experiment

import (
	"repro/internal/cdriver/cast"
	"repro/internal/cdriver/ccheck"
	"repro/internal/cdriver/ccompile"
	"repro/internal/cdriver/cincr"
	"repro/internal/cdriver/cinterp"
	"repro/internal/cdriver/cparser"
	"repro/internal/cdriver/ctoken"
	"repro/internal/cdriver/ctypes"
	"repro/internal/devil/codegen"
	"repro/internal/hw"
	"repro/internal/kernel"
)

// This file is the incremental front end of one boot: with a
// BootInput.Mutation the per-mutant work shrinks from "re-lex, re-parse,
// re-check and re-compile the whole driver" to "re-run the front end on
// the one declaration span containing the mutated token". The pristine
// driver is parsed, checked and (on the compiled backend) compiled once
// per worker configuration; each mutant then costs one span re-parse,
// one declaration re-check, and one in-place declaration recompile.
// Anything the span analysis cannot prove equivalent (cincr.ErrSpanUnsafe)
// falls back to the full front end on the materialised mutated stream,
// so observable behaviour is identical by construction — and verified
// mutant-by-mutant by the differential oracle.

// Frontend names a per-mutant front-end strategy.
type Frontend string

// The two front ends. Incremental is the campaign hot path; full
// re-runs the entire pipeline per mutant and anchors the differential
// tests (and remains the automatic fallback for span-unsafe mutations).
const (
	FrontendIncremental Frontend = "incremental"
	FrontendFull        Frontend = "full"
)

// ParseFrontend normalises a front-end name; the empty string selects
// the default (incremental) strategy.
func ParseFrontend(s string) (Frontend, error) {
	switch s {
	case "", string(FrontendIncremental):
		return FrontendIncremental, nil
	case string(FrontendFull):
		return FrontendFull, nil
	}
	return "", errUnknownFrontend(s)
}

type errUnknownFrontend string

func (e errUnknownFrontend) Error() string {
	return "unknown front end \"" + string(e) + "\" (want incremental or full)"
}

// incrKey identifies one incremental pipeline: the pristine source plus
// everything the check and compile depend on. A campaign worker boots
// one configuration, so the map holds one entry per driver in practice.
type incrKey struct {
	src        *cincr.Source
	devil      bool
	permissive bool
	mode       codegen.Mode
	backend    Backend
}

// incrState is the per-worker pristine pipeline of one configuration:
// the parsed and checked pristine AST, the collected check scope, the
// cached stubs/env, and — for the compiled backend — the incremental
// compiler with its in-place patching tables.
type incrState struct {
	src   *cincr.Source
	prog  *cast.Program
	scope *ccheck.Scope
	env   *ctypes.Env
	stubs *codegen.Stubs
	inc   *ccompile.Incr // nil on the interp backend (or ErrUnsupported pristine)

	// scratch is the span re-parse buffer, reused across boots.
	scratch []ctoken.Token
	// spliceDecls is the declaration list of the spliced program, reused
	// across boots (only one boot is alive per worker at a time).
	spliceDecls []cast.Decl

	// bad marks a configuration whose pristine setup failed; every boot
	// then uses the full front end.
	bad bool

	// initsCallDone/initsCallVal cache whether any pristine global
	// initialiser contains a call, transitively through the macros it
	// references (computed lazily by snapshot.go's initsHaveCalls). A
	// call could observe machine state the snapshot would skip over, so
	// such configurations never restore from a snapshot.
	initsCallDone bool
	initsCallVal  bool
}

// incrFor returns (building on first use) the incremental state for a
// boot configuration, or nil when the configuration cannot use the
// incremental front end.
func (c *execCaches) incrFor(kern *kernel.Kernel, bus *hw.Bus,
	generate func(codegen.Mode) (*codegen.Stubs, error), input BootInput) (*incrState, error) {
	mode := input.StubMode
	if mode == 0 {
		mode = codegen.Debug
	}
	key := incrKey{
		src:        input.Mutation.Src,
		devil:      input.Devil,
		permissive: input.Permissive,
		mode:       mode,
		backend:    input.Backend,
	}
	if st, ok := c.incr[key]; ok {
		if st.bad {
			return nil, nil
		}
		if st.stubs != nil {
			st.stubs.Reset() // power-on state, as stubsFor gives the full path
		}
		return st, nil
	}
	st := &incrState{src: input.Mutation.Src}

	if input.Devil {
		stubs, err := c.stubsFor(mode, generate)
		if err != nil {
			return nil, err // transient harness error: not cached
		}
		st.stubs = stubs
	}
	env, err := c.envFor(input, st.stubs)
	if err != nil {
		return nil, err
	}
	st.env = env

	// Parse and check the pristine stream once. The mutation model
	// requires a clean pristine driver; anything else permanently
	// disables the incremental path for this configuration.
	prog, perrs := cparser.ParseTokens(st.src.Tokens)
	if len(perrs) > 0 || len(prog.Decls) != len(st.src.Spans) {
		st.bad = true
	} else if cerrs := ccheck.Check(prog, env); len(cerrs) > 0 {
		st.bad = true
	} else {
		st.prog = prog
		st.scope = ccheck.NewScope(prog, env)
		st.spliceDecls = make([]cast.Decl, len(prog.Decls))
		if input.Backend != BackendInterp {
			// The pristine compile binds this machine's kernel, bus and
			// stub accessors once; a compile rejection (ErrUnsupported)
			// leaves inc nil and every incremental boot uses the
			// interpreter, exactly as the full path's per-boot fallback
			// would.
			build := ccompile.NewIncr
			if input.Backend == BackendBlock {
				build = ccompile.NewIncrBlocks
			}
			if inc, err := build(prog, kern, bus, st.stubs, c.exec); err == nil {
				st.inc = inc
			}
		}
	}
	c.incr[key] = st
	if st.bad {
		return nil, nil
	}
	return st, nil
}

// splice overlays the replacement declaration on the pristine AST. The
// returned program reuses the state's declaration buffer: it is valid
// until the next splice on this worker, which is after the current boot
// has finished with it.
func (st *incrState) splice(declIdx int, d cast.Decl) *cast.Program {
	copy(st.spliceDecls, st.prog.Decls)
	st.spliceDecls[declIdx] = d
	return &cast.Program{Decls: st.spliceDecls}
}

// buildIncremental is the incremental counterpart of buildEngine's full
// pipeline. done=false means the mutation was span-unsafe (or the
// configuration cannot run incrementally) and the caller must fall back
// to the full front end; the semantics of ex/res/err otherwise match
// buildEngine exactly. It is also the only path that can serve a boot's
// prefix from the rig's pristine snapshot (see snapshot.go).
func (c *execCaches) buildIncremental(r *Rig, input BootInput) (ex Engine, res *BootResult, done bool, err error) {
	kern := r.Kern
	st, err := c.incrFor(kern, r.Bus, r.Stubs, input)
	if err != nil {
		return nil, nil, false, err
	}
	if st == nil {
		return nil, nil, false, nil
	}

	o := c.obs
	mut := input.Mutation
	tr := o.respan.Start()
	scratch, declIdx, decl, rerr := st.src.Respan(st.scratch, mut.Index, mut.Replacement)
	tr.Stop()
	st.scratch = scratch
	if rerr != nil {
		return nil, nil, false, nil // ErrSpanUnsafe: full front end
	}

	res = &BootResult{}
	if input.Budget > 0 {
		kern.SetBudget(input.Budget)
	}
	tc := o.check.Start()
	cerrs := st.scope.CheckReplacement(declIdx, decl)
	tc.Stop()
	if len(cerrs) > 0 {
		for _, e := range cerrs {
			res.CompileErrors = append(res.CompileErrors, e)
		}
		return nil, res, true, nil
	}

	// Build the engine: patch the incremental compile in place, falling
	// back to the interpreter over the spliced AST exactly where the full
	// path would (interp backend, or a compile rejection).
	tb := o.compile.Start()
	if input.Backend != BackendInterp && st.inc != nil {
		p, cerr := st.inc.Patch(declIdx, decl)
		if cerr == nil {
			o.addBlockStats(st.inc.PatchStats())
			use, capture := r.snapPlan(st, decl, input)
			if use {
				// The mutation cannot affect the prefix, and a matching
				// snapshot is armed: rewind clock, kernel, devices and
				// globals to the captured post-Init state instead of
				// re-running the initialisers on the reset machine.
				tb.Stop()
				r.snapRestore(p, input)
				o.snapshotHit.Inc()
				return p, res, true, nil
			}
			if r.snapCounts(input) {
				o.snapshotFallback.Inc()
			}
			ierr := p.Init()
			tb.Stop()
			if ierr != nil {
				res.Outcome = kernel.Classify(ierr)
				res.RunErr = ierr
				return nil, res, true, nil
			}
			if capture {
				r.snapCapture(st, p, input)
			}
			return p, res, true, nil
		}
	}
	if input.Backend != BackendInterp {
		// Compiled backend requested, interpreter executing: the pristine
		// compile was rejected (inc == nil) or the patch was.
		o.interpFallback.Inc()
	}
	if r.snapCounts(input) {
		o.snapshotFallback.Inc()
	}
	in, runErr := cinterp.New(st.splice(declIdx, decl), st.env, kern, r.Bus, st.stubs)
	tb.Stop()
	if runErr != nil {
		// Global initialiser fault: machine-level failure at insmod time.
		res.Outcome = kernel.Classify(runErr)
		res.RunErr = runErr
		return nil, res, true, nil
	}
	return in, res, true, nil
}
