package kernel

// Outcome classifies the terminal state of one boot.
type Outcome int

// Boot outcomes, ordered as in the paper's presentation.
const (
	// OutcomeRuntimeCheck is case 1: a Devil run-time assertion detected
	// the error and identified the faulty line.
	OutcomeRuntimeCheck Outcome = iota + 1
	// OutcomeDeadCode is case 2: the mutation sits on a path the boot never
	// executes; the run is irrelevant.
	OutcomeDeadCode
	// OutcomeBoot is case 3: the kernel booted and no damage is observable,
	// the worst situation for the developer.
	OutcomeBoot
	// OutcomeCrash is case 4: the kernel crashed printing nothing.
	OutcomeCrash
	// OutcomeInfiniteLoop is case 5: the boot never completed.
	OutcomeInfiniteLoop
	// OutcomeHalt is case 6: the kernel halted with a panic message.
	OutcomeHalt
	// OutcomeDamagedBoot is case 7: the boot completed but with visible
	// damage (unmounted filesystem, missing or corrupted files).
	OutcomeDamagedBoot
)

var outcomeNames = map[Outcome]string{
	OutcomeRuntimeCheck: "Run-time check",
	OutcomeDeadCode:     "Dead code",
	OutcomeBoot:         "Boot",
	OutcomeCrash:        "Crash",
	OutcomeInfiniteLoop: "Infinite loop",
	OutcomeHalt:         "Halt",
	OutcomeDamagedBoot:  "Damaged boot",
}

// String returns the paper's name for the outcome.
func (o Outcome) String() string {
	if s, ok := outcomeNames[o]; ok {
		return s
	}
	return "Unknown"
}

// Detected reports whether the outcome counts as a detected error in the
// paper's accounting: the developer is told, at a precise location, that
// something is wrong. Only run-time checks qualify among boot outcomes
// (compile-time checks are accounted separately); crashes, hangs and halts
// signal a bug but require tedious tracking, and are reported in their own
// rows.
func (o Outcome) Detected() bool { return o == OutcomeRuntimeCheck }

// Silent reports whether the outcome is the worst case: the error stays
// completely invisible.
func (o Outcome) Silent() bool { return o == OutcomeBoot }
