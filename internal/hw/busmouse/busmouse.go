// Package busmouse models the Logitech bus mouse adapter that Figure 3 of
// the paper specifies: four ports carrying a signature register, a
// write-only configuration register, an interrupt/index control register,
// and a data port multiplexed by the index bits into the four nibbles of
// the motion counters and the button state.
package busmouse

import (
	"fmt"

	"repro/internal/hw"
)

// Register offsets within the adapter's four-port window.
const (
	offData      hw.Port = 0 // read: nibble selected by the index bits
	offSignature hw.Port = 1 // read/write: signature (diagnostic) register
	offControl   hw.Port = 2 // write: interrupt enable + index bits
	offConfig    hw.Port = 3 // write: configuration register
)

// Index values select which nibble the data port exposes.
const (
	idxXLow  = 0
	idxXHigh = 1
	idxYLow  = 2
	idxYHigh = 3
)

// Mouse is the adapter model. Tests and examples feed it motion with Move
// and Buttons; the driver reads it out through the ports.
type Mouse struct {
	signature uint8
	config    uint8
	control   uint8
	dx        int8
	dy        int8
	buttons   uint8 // 3 bits, active-low on the wire like the real part
}

var _ hw.Device = (*Mouse)(nil)

// New returns a mouse with the power-on signature.
func New() *Mouse {
	return &Mouse{signature: 0xa5}
}

// Reset returns the adapter to its power-on state, so one mouse can be
// reused across boots instead of being rebuilt per mutant.
func (m *Mouse) Reset() {
	*m = Mouse{signature: 0xa5}
}

// Name implements hw.Device.
func (m *Mouse) Name() string { return "busmouse" }

// State is saved adapter state for the campaign engine's pristine-prefix
// snapshot: the Mouse holds no machine wiring, so a value copy is the
// whole snapshot.
type State struct {
	m Mouse
}

// Snapshot copies the adapter's state into s (copy-in-place).
func (m *Mouse) Snapshot(s *State) { s.m = *m }

// Restore rewinds the adapter to the captured state.
func (m *Mouse) Restore(s *State) { *m = s.m }

// Move accumulates relative motion, saturating at the counter width.
func (m *Mouse) Move(dx, dy int) {
	m.dx = satAdd(m.dx, dx)
	m.dy = satAdd(m.dy, dy)
}

func satAdd(cur int8, delta int) int8 {
	v := int(cur) + delta
	if v > 127 {
		v = 127
	}
	if v < -128 {
		v = -128
	}
	return int8(v)
}

// SetButtons sets the three button states (bit 0 = left).
func (m *Mouse) SetButtons(b uint8) { m.buttons = b & 0x07 }

// index returns the current nibble selector from the control register.
func (m *Mouse) index() int { return int(m.control>>5) & 0x03 }

// Read implements hw.Device.
func (m *Mouse) Read(offset hw.Port, width hw.AccessWidth) (uint32, error) {
	switch offset {
	case offData:
		dx, dy := uint8(m.dx), uint8(m.dy)
		switch m.index() {
		case idxXLow:
			return uint32(dx & 0x0f), nil
		case idxXHigh:
			return uint32(dx >> 4), nil
		case idxYLow:
			return uint32(dy & 0x0f), nil
		default: // idxYHigh: buttons in bits 7..5, y high nibble in 3..0
			v := uint32(dy>>4) & 0x0f
			v |= uint32(m.buttons) << 5
			return v, nil
		}
	case offSignature:
		return uint32(m.signature), nil
	case offControl, offConfig:
		return 0xff, nil // write-only: the data lines float
	}
	return 0, fmt.Errorf("busmouse: read of nonexistent register %d", offset)
}

// Write implements hw.Device.
func (m *Mouse) Write(offset hw.Port, width hw.AccessWidth, value uint32) error {
	switch offset {
	case offData:
		return nil // data port writes are ignored
	case offSignature:
		m.signature = uint8(value)
		return nil
	case offControl:
		m.control = uint8(value)
		return nil
	case offConfig:
		m.config = uint8(value)
		return nil
	}
	return fmt.Errorf("busmouse: write of nonexistent register %d", offset)
}

// Config returns the last value written to the configuration register.
func (m *Mouse) Config() uint8 { return m.config }

// InterruptsEnabled decodes the interrupt bit of the control register
// (0 = enabled, matching the specification's ENABLE => '0').
func (m *Mouse) InterruptsEnabled() bool { return m.control&0x10 == 0 }
