package experiment

import (
	"testing"

	"repro/internal/campaign"
	"repro/internal/drivers"
	"repro/internal/hw/pci"
	"repro/internal/kernel"
)

// TestCleanBMBoot: both bus-master drivers must compile, probe the
// engine and run the whole transfer script with every audit check
// green.
func TestCleanBMBoot(t *testing.T) {
	for _, name := range []string{"busmaster_c", "busmaster_devil"} {
		t.Run(name, func(t *testing.T) {
			src, err := drivers.Load(name)
			if err != nil {
				t.Fatal(err)
			}
			toks, err := ParseDriver(src.Text)
			if err != nil {
				t.Fatal(err)
			}
			res, err := BootDriver(name, BootInput{Tokens: toks, Devil: src.Devil})
			if err != nil {
				t.Fatal(err)
			}
			if res.CompileDetected() {
				for _, e := range res.CompileErrors {
					t.Errorf("  compile: %v", e)
				}
				t.Fatal("clean driver failed to compile")
			}
			if res.Outcome != kernel.OutcomeBoot {
				t.Errorf("outcome = %v (%v)", res.Outcome, res.RunErr)
				for _, line := range res.Console {
					t.Logf("console: %s", line)
				}
			}
			t.Logf("%s: %d steps", name, res.Steps)
		})
	}
}

// TestBMRigResetRestoresCleanBoot: after a boot that programmed the
// descriptor pointer and latched the completion interrupt, Reset must
// return the rig to a state where the clean driver boots cleanly.
func TestBMRigResetRestoresCleanBoot(t *testing.T) {
	assertResetRestoresCleanBoot(t, "busmaster_c", nil, func(t *testing.T, m *Rig) {
		bm := m.Dev.(*pci.BusMaster)
		if bm.DescriptorTable() != 0 || bm.Active() || bm.IrqPending() {
			t.Fatalf("bus-master state survived Reset: prdt=%#x active=%v irq=%v",
				bm.DescriptorTable(), bm.Active(), bm.IrqPending())
		}
	})
}

// TestBMMutationSmoke runs a sampled bus-master mutation experiment and
// checks the Devil-vs-C shape carries over to the fifth driver pair.
func TestBMMutationSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("mutation smoke test is not short")
	}
	opts := MutationOptions{SamplePct: 25, Seed: 7}
	c, err := DriverMutation("busmaster_c", opts)
	if err != nil {
		t.Fatal(err)
	}
	d, err := DriverMutation("busmaster_devil", opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s\n%s",
		FormatDriverTable(c, "Extension: mutations on the C bus-master driver"),
		FormatDriverTable(d, "Extension: mutations on the CDevil bus-master driver"))
	if d.DetectedPct() <= c.DetectedPct() {
		t.Errorf("Devil detection (%.1f%%) should exceed C (%.1f%%)",
			d.DetectedPct(), c.DetectedPct())
	}
	if d.Counts[RowRuntime] == 0 {
		t.Error("CDevil driver produced no run-time checks")
	}
}

// TestNewDeviceCampaignDeterminism: a campaign over the two new Table-2
// device pairs satisfies the shared determinism protocol (serial =
// sharded+merged = resumed = interp oracle), and both Devil drivers
// detect strictly more mutants than their C counterparts.
func TestNewDeviceCampaignDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign determinism test is not short")
	}
	spec := campaign.Spec{
		Name:      "table2-completion",
		Drivers:   []string{"permedia_c", "permedia_devil", "busmaster_c", "busmaster_devil"},
		SamplePct: 5,
		Seed:      11,
		Shards:    2,
		Budget:    ExperimentBudget,
	}
	tables := assertCampaignDeterminism(t, spec)

	for _, pair := range []struct{ c, devil string }{
		{"permedia_c", "permedia_devil"},
		{"busmaster_c", "busmaster_devil"},
	} {
		c := TableFromCampaign(tables[pair.c])
		d := TableFromCampaign(tables[pair.devil])
		if d.DetectedPct() <= c.DetectedPct() {
			t.Errorf("%s detection (%.1f%%) should exceed %s (%.1f%%)",
				pair.devil, d.DetectedPct(), pair.c, c.DetectedPct())
		}
	}
}
