/*
 * ne2000_devil.c — the NE2000 driver re-engineered over Devil stubs.
 *
 * The banked page-0/page-1 register dance, the remote-DMA start/count
 * split and the ISR write-1-to-clear protocol all live in the
 * specification: the glue below manipulates typed device variables
 * (PageStart, RemoteOp, Loopback, ...) and moves frame data with the
 * generated block-transfer stubs for the DataWord FIFO.
 */

#define TX_PAGE     0x40
#define RING_START  0x46
#define RING_STOP   0x60

#define NET_TIMEOUT 20000

/* Bounded wait for transmit completion. */
static int tx_wait(void)
{
    int t;
    //@hw
    for (t = 0; t < NET_TIMEOUT; t++) {
        if (get_PacketTransmitted()) {
            return 0;
        }
    }
    //@endhw
    return 1;
}

int net_init(void)
{
    //@hw
    set_ResetTrigger(0xff);
    if (!get_ResetStatus()) {
        printk("ne2000: no adapter found");
        return 1;
    }
    set_Stop(1);
    set_WordTransfer(1);
    set_FifoThreshold(2);
    set_AcceptBroadcast(1);
    set_Loopback(LOOP_INTERNAL);
    set_PageStart(RING_START);
    set_PageStop(RING_STOP);
    set_Boundary(RING_START);
    set_PacketReceived(1);
    set_PacketTransmitted(1);
    set_InterruptMask(0);
    set_PhysAddr0(0x02);
    set_PhysAddr1(0x11);
    set_PhysAddr2(0x22);
    set_PhysAddr3(0x33);
    set_PhysAddr4(0x44);
    set_PhysAddr5(0x55);
    set_CurrentPage(RING_START + 1);
    set_Stop(0);
    set_Start(1);
    //@endhw
    printk("ne2000: adapter up");
    return 0;
}

/* Transmit the len-byte frame in the kernel buffer: remote-DMA it into
 * the transmit page, then fire and wait for completion. */
int net_send(int len)
{
    //@hw
    set_RemoteStartLow(0x00);
    set_RemoteStartHigh(TX_PAGE);
    set_RemoteCountLow(len & 0xff);
    set_RemoteCountHigh(len >> 8);
    set_RemoteOp(DMA_WRITE);
    set_block_DataWord(0, (len + 1) / 2);
    set_PacketTransmitted(1);
    set_TransmitPage(TX_PAGE);
    set_TxCountLow(len & 0xff);
    set_TxCountHigh(len >> 8);
    set_Transmit(TX_START);
    set_Transmit(TX_IDLE);
    if (tx_wait()) {
        printk("ne2000: transmit timeout");
        return 1;
    }
    //@endhw
    return 0;
}

/* Drain one frame from the receive ring into the kernel buffer. Returns
 * the payload length, 0 when the ring is empty, negative on a corrupt
 * ring header. */
int net_recv(void)
{
    int curr;
    int page;
    int next;
    int status;
    int total;
    int hdr;
    //@hw
    curr = get_CurrentPage();
    page = get_Boundary() + 1;
    if (page >= RING_STOP) {
        page = RING_START;
    }
    if (page == curr) {
        return 0;
    }
    set_RemoteStartLow(0x00);
    set_RemoteStartHigh(page);
    set_RemoteCountLow(4);
    set_RemoteCountHigh(0);
    set_RemoteOp(DMA_READ);
    hdr = get_DataWord();
    status = hdr & 0xff;
    next = (hdr >> 8) & 0xff;
    total = get_DataWord();
    if ((status & 0x01) == 0 || total < 4) {
        printk("ne2000: bad ring header");
        return -1;
    }
    set_RemoteStartLow(4);
    set_RemoteStartHigh(page);
    set_RemoteCountLow((total - 4) & 0xff);
    set_RemoteCountHigh((total - 4) >> 8);
    set_RemoteOp(DMA_READ);
    get_block_DataWord(0, (total - 4 + 1) / 2);
    if (next == RING_START) {
        set_Boundary(RING_STOP - 1);
    } else {
        set_Boundary(next - 1);
    }
    set_PacketReceived(1);
    //@endhw
    return total - 4;
}
