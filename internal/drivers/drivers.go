package drivers

import (
	"embed"
	"fmt"
	"sort"
	"strings"
)

//go:embed src/*.c
var files embed.FS

// Names returns every embedded driver name in sorted order, derived from
// the src/ directory — the single source of truth the CLI help text,
// bench defaults and corpus tests build on.
func Names() []string {
	entries, err := files.ReadDir("src")
	if err != nil {
		return nil
	}
	var names []string
	for _, e := range entries {
		if name, ok := strings.CutSuffix(e.Name(), ".c"); ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// Source is one embedded driver source file.
type Source struct {
	// Name is the short driver name ("ide_c", "ide_devil", ...).
	Name string
	// Filename is the embedded file name.
	Filename string
	// Text is the source code.
	Text string
	// Devil reports whether the driver is CDevil glue over generated stubs.
	Devil bool
}

// Load returns the named driver source.
func Load(name string) (Source, error) {
	fn := name + ".c"
	data, err := files.ReadFile("src/" + fn)
	if err != nil {
		return Source{}, fmt.Errorf("drivers: unknown driver %q", name)
	}
	return Source{
		Name:     name,
		Filename: fn,
		Text:     string(data),
		Devil:    len(name) > 6 && name[len(name)-6:] == "_devil",
	}, nil
}
