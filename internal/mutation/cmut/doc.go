// Package cmut implements the C mutation rules of §3.3 and Table 1 over
// hwC token streams.
//
// Three operator/identifier/literal rule families apply, always inside the
// //@hw-tagged hardware operating code (for the C driver) or CDevil code
// (for the Devil driver):
//
//   - literals: the §3.1 typo model per base (decimal, octal, hexadecimal);
//   - operators: swaps within the reconstructed Table 1 classes — the three
//     bitwise operators, the two logical connectives, the explicit |↔|| and
//     &↔&& confusions the paper calls out, shift direction, additive
//     operators, the relational/equality class, and the corresponding
//     compound-assignment forms;
//   - identifiers: in C mode any defined identifier can replace any other
//     ("they are expanded by the pre-processor and only viewed as integers
//     by the C compiler"); in CDevil mode replacements stay within the
//     semantic class — get stubs, set stubs, Devil constants, macros, or
//     plain C identifiers.
package cmut
