package devil_test

import (
	"strings"
	"testing"

	"repro/internal/devil"
	"repro/internal/specs"
)

func TestCompileBusmouse(t *testing.T) {
	spec, err := specs.Load("busmouse")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	compiled, err := devil.Compile(spec.Filename, spec.Source)
	if err != nil {
		t.Fatalf("compile busmouse: %v", err)
	}
	dev := compiled.AST
	if dev.Name != "logitech_busmouse" {
		t.Errorf("device name = %q, want logitech_busmouse", dev.Name)
	}
	if got := len(dev.Registers()); got != 8 {
		t.Errorf("registers = %d, want 8", got)
	}
	if got := len(dev.Variables()); got != 7 {
		t.Errorf("variables = %d, want 7", got)
	}
	dx := compiled.Info.Variables["dx"]
	if dx == nil {
		t.Fatal("variable dx not resolved")
	}
	if dx.Width != 8 {
		t.Errorf("dx width = %d, want 8", dx.Width)
	}
	if len(dx.Fragments) != 2 {
		t.Errorf("dx fragments = %d, want 2", len(dx.Fragments))
	}
	idx := compiled.Info.Variables["index"]
	if idx == nil || !idx.Decl.Private {
		t.Error("index should be a private variable")
	}
}

func TestCompileErrorsAreReported(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want string // substring of the expected diagnostic
	}{
		{
			name: "unknown register in variable",
			src: `device d (base : bit[8] port @ {0..0}) {
				register r = base @ 0 : bit[8];
				variable v = nosuch : int(8);
			}`,
			want: "unknown register",
		},
		{
			name: "type width mismatch",
			src: `device d (base : bit[8] port @ {0..0}) {
				register r = base @ 0 : bit[8];
				variable v = r : int(4);
			}`,
			want: "does not match fragment width",
		},
		{
			name: "mask size mismatch",
			src: `device d (base : bit[8] port @ {0..0}) {
				register r = base @ 0, mask '....' : bit[8];
				variable v = r[3..0] : int(4);
			}`,
			want: "mask",
		},
		{
			name: "offset outside port range",
			src: `device d (base : bit[8] port @ {0..0}) {
				register r = base @ 5 : bit[8];
				variable v = r : int(8);
			}`,
			want: "outside range",
		},
		{
			name: "duplicate register",
			src: `device d (base : bit[8] port @ {0..0}) {
				register r = base @ 0 : bit[8];
				register r = base @ 0 : bit[8];
				variable v = r : int(8);
			}`,
			want: "redeclared",
		},
		{
			name: "unused port offset",
			src: `device d (base : bit[8] port @ {0..1}) {
				register r = base @ 0 : bit[8];
				variable v = r : int(8);
			}`,
			want: "not used by any register",
		},
		{
			name: "variable bit overlap",
			src: `device d (base : bit[8] port @ {0..0}) {
				register r = base @ 0 : bit[8];
				variable v = r[7..4] : int(4);
				variable w = r[4..0] : int(5);
			}`,
			want: "no-overlap",
		},
		{
			name: "syntax error",
			src:  `device d base : bit[8] port @ {0..0}) {}`,
			want: "syntax error",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := devil.Compile("test.dil", tt.src)
			if err == nil {
				t.Fatal("compile succeeded, want error")
			}
			if !strings.Contains(err.Error(), tt.want) {
				ce, ok := err.(*devil.CompileError)
				if ok {
					for _, e := range ce.All() {
						if strings.Contains(e.Error(), tt.want) {
							return
						}
					}
				}
				t.Errorf("error %q does not mention %q", err, tt.want)
			}
		})
	}
}
