// permedia: bring up the simulated Permedia 2 graphics chip through
// Devil stubs — trigger a chip reset and wait out its latency, program
// the video timing generator, feed words into the graphics-processor
// input FIFO under FifoSpace flow control, and run a DMA transfer
// acknowledged through the write-1-to-clear interrupt flags. The
// register offsets, busy bits and flag masks all live in the
// specification.
package main

import (
	"fmt"
	"log"

	"repro/internal/devil"
	"repro/internal/hw"
	"repro/internal/hw/permedia"
	"repro/internal/specs"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Assemble the chip: 24 control dwords plus the input-FIFO window.
	clock := &hw.Clock{}
	bus := hw.NewBus()
	gpu := permedia.New(clock)
	if err := bus.Map(0x8000, 24, gpu.Control()); err != nil {
		return err
	}
	if err := bus.Map(0x9000, 1, gpu.FIFO()); err != nil {
		return err
	}

	src, err := specs.Load("permedia")
	if err != nil {
		return err
	}
	spec, err := devil.Compile(src.Filename, src.Source)
	if err != nil {
		return err
	}
	stubs, err := spec.Generate(devil.Config{
		Bus:   bus,
		Bases: map[string]hw.Port{"ctrl": 0x8000, "fifo": 0x9000},
		Mode:  devil.Debug,
	})
	if err != nil {
		return err
	}

	set := func(name string, val int64) {
		if err := stubs.Set(name, devil.Value{Val: uint32(val), Raw: val}); err != nil {
			log.Fatalf("set %s: %v", name, err)
		}
	}
	get := func(name string) int64 {
		v, err := stubs.Get(name)
		if err != nil {
			log.Fatalf("get %s: %v", name, err)
		}
		return int64(v.Val)
	}

	// Reset pulse, then wait out the chip's reset latency.
	set("ResetTrigger", 1)
	for get("ResetBusy") != 0 {
		clock.Tick(1)
	}
	fmt.Println("permedia: reset complete")

	// Video timing bring-up: a 100x64 frame, retrace interrupt enabled.
	set("ScreenBase", 0)
	set("Stride", 640)
	set("HTotal", 100)
	set("VTotal", 64)
	set("VideoEnable", 1)
	set("IntEnable", 0x19)
	for get("IntFlags")&0x10 == 0 {
		clock.Tick(1)
	}
	set("IntFlags", 0x10) // write 1 to clear
	fmt.Println("permedia: first vertical retrace")

	// Feed the graphics processor under FifoSpace flow control.
	const words = 48
	for w := int64(0); w < words; w++ {
		for get("FifoSpace") == 0 {
			clock.Tick(1)
		}
		set("GpFifoWord", w)
		clock.Tick(1)
	}
	for get("FifoSpace") != 32 {
		clock.Tick(1)
	}
	fmt.Printf("permedia: core consumed %d FIFO words\n", gpu.Drained())

	// One DMA transfer, completion acknowledged through the flags.
	set("DmaAddress", 0x200000)
	set("DmaCount", 96)
	for get("IntFlags")&0x01 == 0 {
		clock.Tick(1)
	}
	set("IntFlags", 0x01)
	fmt.Println("permedia: dma transfer complete")
	return nil
}
