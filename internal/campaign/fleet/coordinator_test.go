package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/campaign"
)

// fleetWorkload is the synthetic deterministic workload the fleet tests
// run: driver "alpha" has 40 mutants, "beta" 25, and the outcome row is
// a pure function of the task — so any execution order, partition or
// crash schedule must aggregate identically. Hooks inject chaos.
type fleetWorkload struct {
	mu    sync.Mutex
	boots int
	// onBoot, when non-nil, runs at the start of every boot (under no
	// lock) — the seam chaos tests use to kill or wedge a worker at a
	// chosen moment.
	onBoot func(t campaign.Task, nth int)
}

func (f *fleetWorkload) Expand(spec campaign.Spec) ([]campaign.Meta, []campaign.Task, error) {
	sizes := map[string]int{"alpha": 40, "beta": 25}
	var metas []campaign.Meta
	var tasks []campaign.Task
	for _, d := range spec.Drivers {
		n, ok := sizes[d]
		if !ok {
			return nil, nil, fmt.Errorf("unknown driver %q", d)
		}
		metas = append(metas, campaign.Meta{Driver: d, Sites: n / 2, Enumerated: n, Selected: n})
		for i := 0; i < n; i++ {
			tasks = append(tasks, campaign.Task{Driver: d, Mutant: i})
		}
	}
	return metas, tasks, nil
}

func (f *fleetWorkload) NewWorker(campaign.Spec) (campaign.Worker, error) {
	return &fleetBooter{f: f}, nil
}

type fleetBooter struct{ f *fleetWorkload }

var fleetRows = []string{"Boot", "Crash", "Halt"}

func (w *fleetBooter) Boot(t campaign.Task) (campaign.Outcome, error) {
	w.f.mu.Lock()
	w.f.boots++
	nth := w.f.boots
	hook := w.f.onBoot
	w.f.mu.Unlock()
	if hook != nil {
		hook(t, nth)
	}
	return campaign.Outcome{
		Row:   fleetRows[t.Mutant%len(fleetRows)],
		Site:  t.Mutant / 2,
		Lost:  t.Mutant == 7,
		Steps: int64(100 + t.Mutant),
	}, nil
}

func (w *fleetBooter) Close() {}

func fleetSpec() campaign.Spec {
	return campaign.Spec{Name: "fleet-t", Drivers: []string{"alpha", "beta"}, Seed: 1, Shards: 6}
}

// tablesJSON renders a store's aggregate as canonical JSON — the
// byte-comparison currency of every determinism assertion here.
func tablesJSON(t *testing.T, st campaign.Store) string {
	t.Helper()
	tables, order, err := campaign.Aggregate(st.Records())
	if err != nil {
		t.Fatal(err)
	}
	for _, cell := range order {
		if !tables[cell].Complete() {
			t.Fatalf("cell %s incomplete: %d/%d", cell, tables[cell].Results, tables[cell].Selected)
		}
	}
	data, err := json.Marshal(struct {
		Order  []string
		Tables map[string]*campaign.TableData
	}{order, tables})
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// serialTablesJSON runs the reference serial campaign.
func serialTablesJSON(t *testing.T, spec campaign.Spec) string {
	t.Helper()
	st := campaign.NewMemStore()
	if _, err := campaign.Run(spec, &fleetWorkload{}, st, campaign.Options{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	return tablesJSON(t, st)
}

// startCoordinator builds and starts a coordinator on a loopback
// listener, cleaning both up with the test.
func startCoordinator(t *testing.T, cfg CoordinatorConfig) *Coordinator {
	t.Helper()
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	co, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	co.Start(ln)
	t.Cleanup(func() { co.Close() })
	return co
}

// assertExactlyOnce: the store holds exactly one result record per
// planned task — nothing lost, nothing duplicated — no matter what the
// fleet went through.
func assertExactlyOnce(t *testing.T, spec campaign.Spec, st campaign.Store) {
	t.Helper()
	_, tasks, err := campaign.ExpandPlan(spec, &fleetWorkload{})
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	for _, r := range st.Records() {
		if r.Kind == campaign.KindResult {
			counts[r.Key()]++
		}
	}
	for _, task := range tasks {
		if n := counts[task.Key()]; n != 1 {
			t.Errorf("task %s has %d records, want exactly 1", task.Key(), n)
		}
	}
	if len(counts) != len(tasks) {
		t.Errorf("store holds %d result keys, plan has %d tasks", len(counts), len(tasks))
	}
}

// TestFleetMatchesSerial: a loopback coordinator with three in-process
// workers produces tables byte-identical to the one-worker serial run.
func TestFleetMatchesSerial(t *testing.T) {
	spec := fleetSpec()
	want := serialTablesJSON(t, spec)

	store := campaign.NewMemStore()
	co := startCoordinator(t, CoordinatorConfig{
		Spec: spec, Workload: &fleetWorkload{}, Store: store,
	})

	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = RunWorker(co.Addr(), &fleetWorkload{}, WorkerOptions{
				Name: fmt.Sprintf("w%d", i), Workers: 2, BatchSize: 4, Logf: t.Logf,
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	if err := co.Wait(); err != nil {
		t.Fatal(err)
	}
	assertExactlyOnce(t, spec, store)
	if got := tablesJSON(t, store); got != want {
		t.Errorf("fleet tables differ from serial:\n--- serial\n%s\n--- fleet\n%s", want, got)
	}
	fs := co.FleetStatus()
	if fs.ShardsComplete != spec.Shards {
		t.Errorf("ShardsComplete = %d, want %d", fs.ShardsComplete, spec.Shards)
	}
	if fs.StaleRecords != 0 {
		t.Errorf("StaleRecords = %d on a clean run, want 0", fs.StaleRecords)
	}
}

// TestFleetResumesPartialStore: a coordinator restarted over a partial
// store leases only the remaining tasks — the fleet-boundary resume.
func TestFleetResumesPartialStore(t *testing.T) {
	spec := fleetSpec()
	want := serialTablesJSON(t, spec)

	// The "crashed" first campaign: a serial prefix in a file store.
	serial := campaign.NewMemStore()
	if _, err := campaign.Run(spec, &fleetWorkload{}, serial, campaign.Options{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	recs := serial.Records()
	path := filepath.Join(t.TempDir(), "partial.jsonl")
	partial, err := campaign.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	prefixResults := 0
	for _, r := range recs[:len(recs)/2] {
		if err := partial.Append(r); err != nil {
			t.Fatal(err)
		}
		if r.Kind == campaign.KindResult {
			prefixResults++
		}
	}
	if err := partial.Close(); err != nil {
		t.Fatal(err)
	}
	if prefixResults == 0 {
		t.Fatal("prefix holds no results; the interruption was not simulated")
	}

	resumed, err := campaign.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	wl := &fleetWorkload{}
	co := startCoordinator(t, CoordinatorConfig{Spec: spec, Workload: wl, Store: resumed})
	sum, err := RunWorker(co.Addr(), wl, WorkerOptions{Name: "resumer", Workers: 2, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if err := co.Wait(); err != nil {
		t.Fatal(err)
	}
	total := 65 // alpha 40 + beta 25
	if sum.Records != total-prefixResults {
		t.Errorf("resumed fleet streamed %d records, want %d (total %d - %d stored)",
			sum.Records, total-prefixResults, total, prefixResults)
	}
	if wl.boots != total-prefixResults {
		t.Errorf("resumed fleet booted %d mutants, want %d", wl.boots, total-prefixResults)
	}
	assertExactlyOnce(t, spec, resumed)
	if got := tablesJSON(t, resumed); got != want {
		t.Errorf("resumed fleet tables differ from serial:\n--- serial\n%s\n--- fleet\n%s", want, got)
	}
}

// TestFleetSurvivesKilledWorker: a worker killed mid-shard loses its
// lease to a healthy worker; the final store has no lost and no
// duplicated task records and the tables still match serial.
func TestFleetSurvivesKilledWorker(t *testing.T) {
	spec := fleetSpec()
	want := serialTablesJSON(t, spec)

	store := campaign.NewMemStore()
	co := startCoordinator(t, CoordinatorConfig{
		Spec: spec, Workload: &fleetWorkload{}, Store: store,
		LeaseTTL: 500 * time.Millisecond,
	})

	// The victim dies on its 5th boot — mid-shard, with records already
	// streamed (BatchSize 1) and more tasks still pending.
	interrupt := make(chan struct{})
	var once sync.Once
	victim := &fleetWorkload{onBoot: func(_ campaign.Task, nth int) {
		if nth >= 5 {
			once.Do(func() { close(interrupt) })
		}
	}}
	var wg sync.WaitGroup
	wg.Add(1)
	var victimErr error
	go func() {
		defer wg.Done()
		_, victimErr = RunWorker(co.Addr(), victim, WorkerOptions{
			Name: "victim", Workers: 1, BatchSize: 1, Interrupt: interrupt, Logf: t.Logf,
		})
	}()

	// The survivor joins after the victim is already dying and finishes
	// everything, including the re-leased shard.
	<-interrupt
	wg.Wait()
	if !errors.Is(victimErr, campaign.ErrInterrupted) {
		t.Fatalf("victim returned %v, want ErrInterrupted", victimErr)
	}
	if _, err := RunWorker(co.Addr(), &fleetWorkload{}, WorkerOptions{
		Name: "survivor", Workers: 2, Logf: t.Logf,
	}); err != nil {
		t.Fatal(err)
	}
	if err := co.Wait(); err != nil {
		t.Fatal(err)
	}
	assertExactlyOnce(t, spec, store)
	if got := tablesJSON(t, store); got != want {
		t.Errorf("post-kill tables differ from serial:\n--- serial\n%s\n--- fleet\n%s", want, got)
	}
	if fs := co.FleetStatus(); fs.Releases == 0 {
		t.Errorf("no lease was released; the kill did not exercise re-leasing (status %+v)", fs)
	}
}

// TestFleetReleasesStalledWorker: a worker that stops heartbeating
// while wedged inside a boot loses its lease to the janitor; a healthy
// worker re-leases the shard and the campaign completes exactly-once.
// When the wedged worker finally wakes and streams its stale records,
// the coordinator drops them by key instead of duplicating tasks.
func TestFleetReleasesStalledWorker(t *testing.T) {
	spec := fleetSpec()
	want := serialTablesJSON(t, spec)

	store := campaign.NewMemStore()
	co := startCoordinator(t, CoordinatorConfig{
		Spec: spec, Workload: &fleetWorkload{}, Store: store,
		LeaseTTL: 200 * time.Millisecond,
	})

	// The sloth takes a lease, then wedges on its first boot with
	// heartbeats suppressed — from the coordinator's side it has gone
	// silent while holding a lease.
	wedge := make(chan struct{})
	wedged := make(chan struct{})
	var wedgeOnce sync.Once
	sloth := &fleetWorkload{onBoot: func(campaign.Task, int) {
		wedgeOnce.Do(func() { close(wedged) })
		<-wedge
	}}
	var wg sync.WaitGroup
	wg.Add(1)
	var slothSum *WorkerSummary
	var slothErr error
	go func() {
		defer wg.Done()
		slothSum, slothErr = RunWorker(co.Addr(), sloth, WorkerOptions{
			Name: "sloth", Workers: 1, BatchSize: 1, Logf: t.Logf,
			suppressHeartbeats: true,
		})
	}()
	<-wedged

	// The healthy worker completes the whole campaign, including the
	// sloth's expired shard.
	if _, err := RunWorker(co.Addr(), &fleetWorkload{}, WorkerOptions{
		Name: "healthy", Workers: 2, Logf: t.Logf,
	}); err != nil {
		t.Fatal(err)
	}
	if err := co.Wait(); err != nil {
		t.Fatal(err)
	}
	fs := co.FleetStatus()
	if fs.Releases == 0 {
		t.Errorf("no lease expired; the stall did not exercise the janitor (status %+v)", fs)
	}

	// Wake the sloth: it finishes its shard against a complete store,
	// streams records the coordinator already has, and drains cleanly.
	close(wedge)
	wg.Wait()
	if slothErr != nil {
		t.Fatalf("woken sloth returned %v, want clean drain", slothErr)
	}
	if slothSum == nil || slothSum.Records == 0 {
		t.Fatalf("sloth streamed no records (%+v); stale-record dedup was not exercised", slothSum)
	}
	if fs := co.FleetStatus(); fs.StaleRecords == 0 {
		t.Errorf("StaleRecords = 0 after a stale worker streamed; dedup untested (status %+v)", fs)
	}
	assertExactlyOnce(t, spec, store)
	if got := tablesJSON(t, store); got != want {
		t.Errorf("post-stall tables differ from serial:\n--- serial\n%s\n--- fleet\n%s", want, got)
	}
}

// dialRaw opens a raw client connection to the coordinator for
// protocol-hardening tests.
func dialRaw(t *testing.T, co *Coordinator) net.Conn {
	t.Helper()
	nc, err := net.Dial("tcp", co.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	return nc
}

// TestCoordinatorRejectsBadHandshakes: every handshake offense comes
// back as a reject frame naming the offense (and the offender), and the
// coordinator survives all of them to serve a real worker afterwards.
func TestCoordinatorRejectsBadHandshakes(t *testing.T) {
	spec := fleetSpec()
	store := campaign.NewMemStore()
	co := startCoordinator(t, CoordinatorConfig{
		Spec: spec, Workload: &fleetWorkload{}, Store: store,
	})

	expectReject := func(t *testing.T, nc net.Conn, wants ...string) {
		t.Helper()
		m, err := ReadMsg(nc)
		if err != nil {
			t.Fatalf("no reject frame came back: %v", err)
		}
		if m.T != MsgReject {
			t.Fatalf("got %q frame, want %q", m.T, MsgReject)
		}
		for _, want := range wants {
			if !strings.Contains(m.Error, want) {
				t.Errorf("reject %q does not name %q", m.Error, want)
			}
		}
	}

	t.Run("first frame not hello", func(t *testing.T) {
		nc := dialRaw(t, co)
		if err := WriteMsg(nc, Msg{T: MsgLease}); err != nil {
			t.Fatal(err)
		}
		expectReject(t, nc, "handshake violation", `"lease"`)
	})
	t.Run("wrong protocol version", func(t *testing.T) {
		nc := dialRaw(t, co)
		if err := WriteMsg(nc, Msg{T: MsgHello, Name: "old-worker", Proto: Proto + 1}); err != nil {
			t.Fatal(err)
		}
		expectReject(t, nc, "old-worker", "protocol")
	})
	t.Run("fingerprint mismatch names the worker", func(t *testing.T) {
		nc := dialRaw(t, co)
		if err := WriteMsg(nc, Msg{T: MsgHello, Name: "wrong-campaign", Proto: Proto,
			Fingerprint: "deadbeefdeadbeef"}); err != nil {
			t.Fatal(err)
		}
		expectReject(t, nc, "wrong-campaign", "deadbeefdeadbeef", spec.Fingerprint())
	})
	t.Run("garbage bytes", func(t *testing.T) {
		nc := dialRaw(t, co)
		if _, err := nc.Write(append([]byte{0, 0, 0, 9}, []byte("not json!")...)); err != nil {
			t.Fatal(err)
		}
		expectReject(t, nc, "unparseable")
	})
	t.Run("oversized frame announcement", func(t *testing.T) {
		nc := dialRaw(t, co)
		if _, err := nc.Write([]byte{0xff, 0xff, 0xff, 0xff}); err != nil {
			t.Fatal(err)
		}
		expectReject(t, nc, "oversized")
	})
	t.Run("unknown message type", func(t *testing.T) {
		nc := dialRaw(t, co)
		payload := []byte(`{"t":"gimme"}`)
		if _, err := nc.Write(append([]byte{0, 0, 0, byte(len(payload))}, payload...)); err != nil {
			t.Fatal(err)
		}
		expectReject(t, nc, `unknown message type "gimme"`)
	})

	// RunWorker's own reject path: the caller sees the named refusal.
	_, err := RunWorker(co.Addr(), &fleetWorkload{}, WorkerOptions{
		Name: "stale-build", Fingerprint: "feedfacefeedface", Logf: t.Logf,
	})
	if err == nil || !strings.Contains(err.Error(), "stale-build") ||
		!strings.Contains(err.Error(), "feedfacefeedface") {
		t.Errorf("rejected worker error %v does not name the worker and fingerprint", err)
	}

	// After six offenses and a rejection the coordinator still serves a
	// real worker to completion.
	if _, err := RunWorker(co.Addr(), &fleetWorkload{}, WorkerOptions{
		Name: "honest", Workers: 2, Logf: t.Logf,
	}); err != nil {
		t.Fatal(err)
	}
	if err := co.Wait(); err != nil {
		t.Fatal(err)
	}
	fs := co.FleetStatus()
	if fs.RejectedFrames < 6 {
		t.Errorf("RejectedFrames = %d, want >= 6", fs.RejectedFrames)
	}
	assertExactlyOnce(t, spec, store)
}

// TestCoordinatorDropsMidSessionOffender: a worker that completes the
// handshake and then sends garbage is dropped (its lease released)
// without taking the coordinator down.
func TestCoordinatorDropsMidSessionOffender(t *testing.T) {
	spec := fleetSpec()
	store := campaign.NewMemStore()
	co := startCoordinator(t, CoordinatorConfig{
		Spec: spec, Workload: &fleetWorkload{}, Store: store,
	})

	nc := dialRaw(t, co)
	if err := WriteMsg(nc, Msg{T: MsgHello, Name: "offender", Proto: Proto}); err != nil {
		t.Fatal(err)
	}
	if m, err := ReadMsg(nc); err != nil || m.T != MsgWelcome {
		t.Fatalf("handshake: %v %+v", err, m)
	}
	// Take a lease, then send a torn frame instead of records.
	if err := WriteMsg(nc, Msg{T: MsgLease}); err != nil {
		t.Fatal(err)
	}
	if m, err := ReadMsg(nc); err != nil || m.T != MsgGrant {
		t.Fatalf("lease: %v %+v", err, m)
	}
	if _, err := nc.Write([]byte{0, 0, 1, 0, 'x'}); err != nil {
		t.Fatal(err)
	}
	nc.Close()

	// The coordinator released the offender's lease; an honest worker
	// finishes the whole campaign.
	if _, err := RunWorker(co.Addr(), &fleetWorkload{}, WorkerOptions{
		Name: "honest", Workers: 2, Logf: t.Logf,
	}); err != nil {
		t.Fatal(err)
	}
	if err := co.Wait(); err != nil {
		t.Fatal(err)
	}
	assertExactlyOnce(t, spec, store)
	fs := co.FleetStatus()
	if fs.Releases == 0 {
		t.Errorf("offender's lease was never released (status %+v)", fs)
	}
}

// TestCoordinatorOverCompleteStore: serving an already-finished store
// is valid — Wait returns immediately and workers drain on arrival.
func TestCoordinatorOverCompleteStore(t *testing.T) {
	spec := fleetSpec()
	store := campaign.NewMemStore()
	if _, err := campaign.Run(spec, &fleetWorkload{}, store, campaign.Options{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	co := startCoordinator(t, CoordinatorConfig{
		Spec: spec, Workload: &fleetWorkload{}, Store: store,
	})
	if err := co.Wait(); err != nil {
		t.Fatalf("Wait over a complete store: %v", err)
	}
	wl := &fleetWorkload{}
	sum, err := RunWorker(co.Addr(), wl, WorkerOptions{Name: "latecomer", Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Shards != 0 || sum.Records != 0 || wl.boots != 0 {
		t.Errorf("latecomer did work on a complete campaign: %+v, %d boots", sum, wl.boots)
	}
}

// TestCoordinatorRejectsForeignStore: a store whose spec record carries
// a different fingerprint is refused at construction.
func TestCoordinatorRejectsForeignStore(t *testing.T) {
	other := fleetSpec()
	other.Seed = 99
	store := campaign.NewMemStore()
	if err := store.Append(campaign.SpecRecord(other)); err != nil {
		t.Fatal(err)
	}
	_, err := NewCoordinator(CoordinatorConfig{
		Spec: fleetSpec(), Workload: &fleetWorkload{}, Store: store,
	})
	if err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("foreign store accepted: %v", err)
	}
}

// TestFleetStatusSnapshot: the tracker the coordinator feeds renders a
// fleet-aware snapshot — the /status surface `campaign status <addr>`
// shows.
func TestFleetStatusSnapshot(t *testing.T) {
	spec := fleetSpec()
	tracker := campaign.NewStatusTracker()
	store := campaign.NewMemStore()
	co := startCoordinator(t, CoordinatorConfig{
		Spec: spec, Workload: &fleetWorkload{}, Store: store, Status: tracker,
	})
	if _, err := RunWorker(co.Addr(), &fleetWorkload{}, WorkerOptions{
		Name: "w0", Workers: 2, Logf: t.Logf,
	}); err != nil {
		t.Fatal(err)
	}
	if err := co.Wait(); err != nil {
		t.Fatal(err)
	}
	snap := tracker.Snapshot()
	if snap.Recorded != 65 || snap.Total != 65 {
		t.Errorf("snapshot %d/%d recorded, want 65/65", snap.Recorded, snap.Total)
	}
	if snap.Name != spec.Normalized().Name || snap.Fingerprint != spec.Fingerprint() {
		t.Errorf("snapshot identity %q/%q, want %q/%q",
			snap.Name, snap.Fingerprint, spec.Normalized().Name, spec.Fingerprint())
	}
	if len(snap.Drivers) != 2 || len(snap.Shards) != spec.Shards {
		t.Errorf("snapshot breakdowns: %d drivers, %d shards; want 2 and %d",
			len(snap.Drivers), len(snap.Shards), spec.Shards)
	}
	fs := co.FleetStatus()
	if fs.ShardsComplete != spec.Shards || fs.Leases == 0 {
		t.Errorf("fleet status %+v: want all %d shards complete and leases counted", fs, spec.Shards)
	}
}
