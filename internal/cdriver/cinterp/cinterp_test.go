package cinterp_test

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/cdriver/cinterp"
	"repro/internal/cdriver/cparser"
	"repro/internal/cdriver/ctypes"
	"repro/internal/hw"
	"repro/internal/kernel"
)

// run interprets src and calls fn, returning the result.
func run(t *testing.T, src, fn string, args ...cinterp.Value) (cinterp.Value, error) {
	t.Helper()
	prog, errs := cparser.Parse(src)
	if len(errs) != 0 {
		t.Fatalf("parse: %v", errs)
	}
	kern := kernel.New(&hw.Clock{})
	bus := hw.NewBus()
	bus.SetFloating(true)
	in, err := cinterp.New(prog, ctypes.NewEnv(false), kern, bus, nil)
	if err != nil {
		t.Fatalf("new interp: %v", err)
	}
	return in.Call(fn, args...)
}

func runInt(t *testing.T, src, fn string, args ...cinterp.Value) int64 {
	t.Helper()
	v, err := run(t, src, fn, args...)
	if err != nil {
		t.Fatalf("call: %v", err)
	}
	return v.I
}

func TestArithmeticSemantics(t *testing.T) {
	tests := []struct {
		expr string
		want int64
	}{
		{"1 + 2 * 3", 7},
		{"(1 + 2) * 3", 9},
		{"0x10 | 0x01", 0x11},
		{"0xff & 0x0f", 0x0f},
		{"0xf0 ^ 0xff", 0x0f},
		{"1 << 4", 16},
		{"256 >> 4", 16},
		{"7 % 3", 1},
		{"7 / 2", 3},
		{"~0 & 0xff", 0xff},
		{"!5", 0},
		{"!0", 1},
		{"-5 + 3", -2},
		{"1 < 2", 1},
		{"2 <= 1", 0},
		{"3 == 3", 1},
		{"3 != 3", 0},
		{"1 && 2", 1},
		{"0 || 3", 1},
		{"1 ? 10 : 20", 10},
		{"0 ? 10 : 20", 20},
		{"(u8) 0x1ff", 0xff},
		{"(s8) 0xff", -1},
		{"(u16) 0x12345", 0x2345},
	}
	for _, tt := range tests {
		src := "int f(void) { return " + tt.expr + "; }"
		got := runInt(t, src, "f")
		if got != tt.want {
			t.Errorf("%s = %d, want %d", tt.expr, got, tt.want)
		}
	}
}

func TestShortCircuit(t *testing.T) {
	// The right operand of && must not evaluate when the left is false —
	// here it would divide by zero.
	src := `int f(int x) { return x != 0 && 10 / x > 1; }`
	if got := runInt(t, src, "f", cinterp.IntValue(0)); got != 0 {
		t.Errorf("short circuit failed: %d", got)
	}
	if got := runInt(t, src, "f", cinterp.IntValue(5)); got != 1 {
		t.Errorf("wrong result for x=5: %d", got)
	}
}

func TestDivisionByZeroCrashes(t *testing.T) {
	_, err := run(t, `int f(void) { return 1 / 0; }`, "f")
	var crash *kernel.CrashError
	if !errors.As(err, &crash) {
		t.Errorf("got %v, want CrashError", err)
	}
}

func TestControlFlow(t *testing.T) {
	src := `
int sum_to(int n) {
    int acc = 0;
    int i;
    for (i = 1; i <= n; i++) {
        acc += i;
    }
    return acc;
}
int count_down(int n) {
    int steps = 0;
    while (n > 0) {
        n--;
        steps++;
        if (steps > 100) { break; }
    }
    return steps;
}
int pick(int x) {
    switch (x) {
    case 1:
        return 10;
    case 2:
    case 3:
        return 23;
    default:
        return 99;
    }
}
int skipper(void) {
    int i;
    int hits = 0;
    for (i = 0; i < 10; i++) {
        if (i % 2) { continue; }
        hits++;
    }
    return hits;
}`
	if got := runInt(t, src, "sum_to", cinterp.IntValue(10)); got != 55 {
		t.Errorf("sum_to(10) = %d", got)
	}
	if got := runInt(t, src, "count_down", cinterp.IntValue(7)); got != 7 {
		t.Errorf("count_down(7) = %d", got)
	}
	for _, tc := range []struct{ in, want int64 }{{1, 10}, {2, 23}, {3, 23}, {7, 99}} {
		if got := runInt(t, src, "pick", cinterp.IntValue(tc.in)); got != tc.want {
			t.Errorf("pick(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
	if got := runInt(t, src, "skipper"); got != 5 {
		t.Errorf("skipper() = %d", got)
	}
}

func TestMacrosAndGlobals(t *testing.T) {
	src := `
#define BASE 0x100
#define NEXT (BASE + 4)
u8 counter = 250;
int f(void) {
    counter += 10;
    return NEXT + counter;
}`
	// counter is u8: 250+10 wraps to 4.
	if got := runInt(t, src, "f"); got != 0x104+4 {
		t.Errorf("f() = %d, want %d", got, 0x104+4)
	}
}

func TestMacroCycleCrashes(t *testing.T) {
	src := `
#define A B
#define B A
int f(void) { return A; }`
	_, err := run(t, src, "f")
	var crash *kernel.CrashError
	if !errors.As(err, &crash) {
		t.Errorf("macro cycle: got %v, want CrashError", err)
	}
}

func TestRecursionOverflowCrashes(t *testing.T) {
	_, err := run(t, `int f(int n) { return f(n + 1); }`, "f", cinterp.IntValue(0))
	var crash *kernel.CrashError
	if !errors.As(err, &crash) {
		t.Errorf("got %v, want CrashError", err)
	}
}

func TestWatchdogStopsLoops(t *testing.T) {
	prog, errs := cparser.Parse(`void f(void) { while (1) { } }`)
	if len(errs) != 0 {
		t.Fatal(errs)
	}
	kern := kernel.New(&hw.Clock{})
	kern.SetBudget(1000)
	in, err := cinterp.New(prog, ctypes.NewEnv(false), kern, hw.NewBus(), nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = in.Call("f")
	var wd *kernel.WatchdogError
	if !errors.As(err, &wd) {
		t.Errorf("got %v, want WatchdogError", err)
	}
}

func TestPortIOBuiltins(t *testing.T) {
	prog, errs := cparser.Parse(`
int f(void) {
    outb(0xab, 0x10);
    return inb(0x10);
}`)
	if len(errs) != 0 {
		t.Fatal(errs)
	}
	kern := kernel.New(&hw.Clock{})
	bus := hw.NewBus()
	dev := &cell{}
	if err := bus.Map(0x10, 1, dev); err != nil {
		t.Fatal(err)
	}
	in, err := cinterp.New(prog, ctypes.NewEnv(false), kern, bus, nil)
	if err != nil {
		t.Fatal(err)
	}
	v, err := in.Call("f")
	if err != nil || v.I != 0xab {
		t.Errorf("port round trip = %d, %v", v.I, err)
	}
}

// cell is a one-port device.
type cell struct{ v uint32 }

func (c *cell) Name() string { return "cell" }

func (c *cell) Read(off hw.Port, w hw.AccessWidth) (uint32, error) { return c.v, nil }

func (c *cell) Write(off hw.Port, w hw.AccessWidth, v uint32) error {
	c.v = v
	return nil
}

func TestPanicBuiltin(t *testing.T) {
	_, err := run(t, `void f(void) { panic("ide: timeout"); }`, "f")
	var pe *kernel.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("got %v, want PanicError", err)
	}
}

func TestKbufBuiltins(t *testing.T) {
	src := `
int f(void) {
    kbuf_write16(10, 0xbeef);
    kbuf_write8(2, 0x7f);
    return kbuf_read16(10) + kbuf_read8(2);
}`
	if got := runInt(t, src, "f"); got != 0xbeef+0x7f {
		t.Errorf("kbuf = %#x", got)
	}
}

func TestCoverage(t *testing.T) {
	prog, errs := cparser.Parse(`
int f(int x) {
    if (x > 0) {
        return 1;
    }
    return 2;
}`)
	if len(errs) != 0 {
		t.Fatal(errs)
	}
	kern := kernel.New(&hw.Clock{})
	in, err := cinterp.New(prog, ctypes.NewEnv(false), kern, hw.NewBus(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.Call("f", cinterp.IntValue(5)); err != nil {
		t.Fatal(err)
	}
	if !in.Covered(4) { // "return 1;"
		t.Error("taken branch not covered")
	}
	if in.Covered(6) { // "return 2;"
		t.Error("untaken branch marked covered")
	}
}

// TestExpressionPropertyVsGo cross-checks interpreter arithmetic against
// Go semantics over random inputs.
func TestExpressionPropertyVsGo(t *testing.T) {
	src := `int f(int a, int b) { return ((a | b) & 0xffff) + ((a ^ b) >> 3) - (a << 1); }`
	prog, errs := cparser.Parse(src)
	if len(errs) != 0 {
		t.Fatal(errs)
	}
	kern := kernel.New(&hw.Clock{})
	kern.SetBudget(1 << 40)
	in, err := cinterp.New(prog, ctypes.NewEnv(false), kern, hw.NewBus(), nil)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(a, b int32) bool {
		v, err := in.Call("f", cinterp.IntValue(int64(a)), cinterp.IntValue(int64(b)))
		if err != nil {
			return false
		}
		x, y := int64(a), int64(b)
		want := int64(int32(((x | y) & 0xffff) + ((x ^ y) >> 3) - (x << 1)))
		return v.I == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
