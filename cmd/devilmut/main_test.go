package main

import "testing"

func TestRunBusmouse(t *testing.T) {
	if err := run([]string{"busmouse"}); err != nil {
		t.Fatalf("devilmut busmouse: %v", err)
	}
	if err := run([]string{"-v", "-survivors", "3", "busmouse"}); err != nil {
		t.Fatalf("devilmut -v busmouse: %v", err)
	}
}

func TestErrors(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("missing argument accepted")
	}
	if err := run([]string{"no-such-spec"}); err == nil {
		t.Error("unknown spec accepted")
	}
}
