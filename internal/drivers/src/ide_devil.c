/*
 * ide_devil.c — the IDE driver re-engineered over Devil stubs.
 *
 * All hardware knowledge lives in the specification: no port numbers,
 * no status masks, no LBA splitting. The glue below manipulates typed
 * device variables (Drive, Busy, Command, Lba, ...) through generated
 * get_/set_ stubs, compares enumerated values with dil_eq, and moves
 * sector data with the generated block-transfer stubs.
 */

#define IDE_TIMEOUT 20000

/* Bounded wait for the controller to leave the busy phase. */
static int wait_not_busy(void)
{
    int t;
    //@hw
    for (t = 0; t < IDE_TIMEOUT; t++) {
        if (!dil_eq(get_Busy(), BUSY))
            return 0;
    }
    //@endhw
    return 1;
}

/* Bounded wait for drive-ready. */
static int wait_ready(void)
{
    int t;
    //@hw
    for (t = 0; t < IDE_TIMEOUT; t++) {
        if (dil_eq(get_Ready(), READY))
            return 0;
    }
    //@endhw
    return 1;
}

/* Bounded wait for the data-request phase. */
static int wait_drq(void)
{
    int t;
    //@hw
    for (t = 0; t < IDE_TIMEOUT; t++) {
        if (dil_eq(get_DataRequest(), DRQ))
            return 0;
    }
    //@endhw
    return 1;
}

/* Post-command status check; the write-fault arm never runs on healthy
 * hardware. */
static int end_of_command(void)
{
    //@hw
    if (wait_not_busy())
        return 1;
    if (get_WriteFault()) {
        printk("ide0: write fault");
        return 1;
    }
    if (get_ErrorFlag()) {
        printk("ide0: command error");
        return 1;
    }
    //@endhw
    return 0;
}

int ide_init(void)
{
    //@hw
    set_IrqControl(IRQ_DISABLE);
    set_SoftReset(ASSERT_RESET);
    udelay(50);
    set_SoftReset(RELEASE_RESET);
    if (wait_not_busy()) {
        printk("ide0: drive stuck busy");
        return 1;
    }
    set_Drive(MASTER);
    set_AddressMode(LBA_MODE);
    if (wait_ready()) {
        printk("ide0: drive not ready");
        return 1;
    }
    set_Command(CMD_IDENTIFY);
    if (wait_drq()) {
        printk("ide0: identify failed");
        return 1;
    }
    get_block_DataWord(0, 256);
    //@endhw
    printk("ide0: drive identified");
    return 0;
}

int ide_read_sectors(int lba, int count)
{
    int s;
    //@hw
    if (wait_not_busy())
        return 1;
    set_Drive(MASTER);
    set_AddressMode(LBA_MODE);
    set_SectorCount(count);
    set_Lba(lba);
    set_Command(CMD_READ_SECTORS);
    for (s = 0; s < count; s++) {
        if (wait_drq())
            return 1;
        get_block_DataWord(s << 9, 256);
    }
    //@endhw
    return 0;
}

int ide_write_sectors(int lba, int count)
{
    int s;
    //@hw
    if (wait_not_busy())
        return 1;
    set_Drive(MASTER);
    set_AddressMode(LBA_MODE);
    set_SectorCount(count);
    set_Lba(lba);
    set_Command(CMD_WRITE_SECTORS);
    for (s = 0; s < count; s++) {
        if (wait_drq())
            return 1;
        set_block_DataWord(s << 9, 256);
    }
    //@endhw
    return end_of_command();
}
