// Package ctoken defines the lexical tokens of hwC, the C subset that the
// evaluation's driver sources are written in. The subset covers what the
// hardware operating code of the paper's drivers needs: object-like macros,
// integer literals in the three C bases, the bit-manipulation and control
// operators of Table 1, functions, and the usual statement forms.
package ctoken

import "fmt"

// Kind enumerates the lexical token classes.
type Kind int

// Token kinds.
const (
	Illegal Kind = iota + 1
	EOF

	Ident
	DecInt // 123
	OctInt // 0777 (leading zero, C semantics)
	HexInt // 0x1f0
	CharLit
	String

	// Keywords.
	KwIf
	KwElse
	KwWhile
	KwDo
	KwFor
	KwSwitch
	KwCase
	KwDefault
	KwBreak
	KwContinue
	KwReturn
	KwStatic
	KwInline
	KwConst
	KwVoid
	KwInt
	KwU8
	KwU16
	KwU32
	KwS8
	KwS16
	KwS32

	// Directives.
	HashDefine // "#define"
	EndDefine  // synthesized at the end of the directive line

	// Punctuation.
	LParen
	RParen
	LBrace
	RBrace
	Comma
	Semi
	Colon
	Question

	// Operators.
	Assign     // =
	OrAssign   // |=
	AndAssign  // &=
	XorAssign  // ^=
	ShlAssign  // <<=
	ShrAssign  // >>=
	AddAssign  // +=
	SubAssign  // -=
	PlusPlus   // ++
	MinusMinus // --

	Or     // |
	And    // &
	Xor    // ^
	Shl    // <<
	Shr    // >>
	Add    // +
	Sub    // -
	Mul    // *
	Div    // /
	Mod    // %
	LOr    // ||
	LAnd   // &&
	Not    // !
	BitNot // ~
	Eq     // ==
	Ne     // !=
	Lt     // <
	Gt     // >
	Le     // <=
	Ge     // >=
)

var kindNames = map[Kind]string{
	Illegal: "ILLEGAL", EOF: "EOF",
	Ident: "IDENT", DecInt: "DECINT", OctInt: "OCTINT", HexInt: "HEXINT",
	CharLit: "CHAR", String: "STRING",
	KwIf: "if", KwElse: "else", KwWhile: "while", KwDo: "do", KwFor: "for",
	KwSwitch: "switch", KwCase: "case", KwDefault: "default",
	KwBreak: "break", KwContinue: "continue", KwReturn: "return",
	KwStatic: "static", KwInline: "inline", KwConst: "const",
	KwVoid: "void", KwInt: "int",
	KwU8: "u8", KwU16: "u16", KwU32: "u32", KwS8: "s8", KwS16: "s16", KwS32: "s32",
	HashDefine: "#define", EndDefine: "<end-define>",
	LParen: "(", RParen: ")", LBrace: "{", RBrace: "}",
	Comma: ",", Semi: ";", Colon: ":", Question: "?",
	Assign: "=", OrAssign: "|=", AndAssign: "&=", XorAssign: "^=",
	ShlAssign: "<<=", ShrAssign: ">>=", AddAssign: "+=", SubAssign: "-=",
	PlusPlus: "++", MinusMinus: "--",
	Or: "|", And: "&", Xor: "^", Shl: "<<", Shr: ">>",
	Add: "+", Sub: "-", Mul: "*", Div: "/", Mod: "%",
	LOr: "||", LAnd: "&&", Not: "!", BitNot: "~",
	Eq: "==", Ne: "!=", Lt: "<", Gt: ">", Le: "<=", Ge: ">=",
}

// String names the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// IsIntLiteral reports whether the token is an integer literal of one of
// the three C bases.
func (k Kind) IsIntLiteral() bool { return k == DecInt || k == OctInt || k == HexInt }

// IsTypeKeyword reports whether the token starts a declaration.
func (k Kind) IsTypeKeyword() bool { return k >= KwVoid && k <= KwS32 }

// keywords maps reserved identifier spellings to their kinds.
var keywords = map[string]Kind{
	"if": KwIf, "else": KwElse, "while": KwWhile, "do": KwDo, "for": KwFor,
	"switch": KwSwitch, "case": KwCase, "default": KwDefault,
	"break": KwBreak, "continue": KwContinue, "return": KwReturn,
	"static": KwStatic, "inline": KwInline, "const": KwConst,
	"void": KwVoid, "int": KwInt,
	"u8": KwU8, "u16": KwU16, "u32": KwU32,
	"s8": KwS8, "s16": KwS16, "s32": KwS32,
}

// Lookup classifies an identifier spelling.
func Lookup(ident string) Kind {
	if k, ok := keywords[ident]; ok {
		return k
	}
	return Ident
}

// Pos is a source position.
type Pos struct {
	Offset int
	Line   int
	Col    int
}

// String renders the position.
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexeme.
type Token struct {
	Kind Kind
	Lit  string
	Pos  Pos
	// Tagged reports whether the token lies inside a //@hw .. //@endhw
	// region — the hardware operating code the mutation engine targets.
	Tagged bool
}

// String renders the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case Ident, DecInt, OctInt, HexInt, String:
		return fmt.Sprintf("%s(%q)", t.Kind, t.Lit)
	}
	return t.Kind.String()
}
