package ne2000

import (
	"fmt"

	"repro/internal/hw"
)

// Port offsets within the adapter's window (the 8390 register file is
// mapped by the specification's three port parameters, not one window, so
// the model exposes three hw.Device endpoints).
const (
	// MemStart and MemStop bound the on-board packet memory in pages.
	MemStart = 0x40
	MemStop  = 0x80
	pageSize = 256
)

// Interrupt status bits.
const (
	IsrPacketReceived  = 0x01
	IsrPacketSent      = 0x02
	IsrReceiveError    = 0x04
	IsrTransmitError   = 0x08
	IsrOverwrite       = 0x10
	IsrCounterOverflow = 0x20
	IsrRemoteDone      = 0x40
	IsrReset           = 0x80
)

// NIC is the adapter model.
type NIC struct {
	mem [MemStop * pageSize]byte

	// Page-0/1 register file.
	cr     uint8
	pstart uint8
	pstop  uint8
	bnry   uint8
	tpsr   uint8
	tbcr   uint16
	isr    uint8
	rsar   uint16
	rbcr   uint16
	rcr    uint8
	tcr    uint8
	dcr    uint8
	imr    uint8
	par    [6]uint8
	mar    [8]uint8
	curr   uint8
	tsr    uint8
	rsr    uint8
	cntr   [3]uint8

	stopped bool
}

// New returns a NIC in the post-hardware-reset state.
func New() *NIC {
	return &NIC{isr: IsrReset, stopped: true, curr: MemStart + 1, bnry: MemStart}
}

// Reset returns the NIC to the cold power-on state New returns: packet
// memory cleared, the whole register file rewound. It is the campaign
// worker's rig-reuse hook — distinct from the warm reset the reset port
// performs, which only stops the core and raises the reset latch.
func (n *NIC) Reset() {
	*n = NIC{isr: IsrReset, stopped: true, curr: MemStart + 1, bnry: MemStart}
}

// State is saved adapter state for the campaign engine's pristine-prefix
// snapshot: a value copy of the register file and the on-board packet
// memory. The NIC holds no machine wiring (no clock, no bus pointers),
// so a plain value copy is the whole snapshot.
type State struct {
	n NIC
}

// Snapshot copies the adapter's state into s (copy-in-place; s is
// reused across captures).
func (n *NIC) Snapshot(s *State) { s.n = *n }

// Restore rewinds the adapter to the captured state.
func (n *NIC) Restore(s *State) { *n = s.n }

// page returns the register page selected by CR bits 7..6.
func (n *NIC) page() int { return int(n.cr>>6) & 3 }

// remoteOp returns CR bits 5..3.
func (n *NIC) remoteOp() int { return int(n.cr>>3) & 7 }

// MAC returns the station address programmed into PAR0..5.
func (n *NIC) MAC() [6]byte {
	var m [6]byte
	copy(m[:], n.par[:])
	return m
}

// Mem returns a copy of the on-board packet memory (test inspection).
func (n *NIC) Mem() []byte {
	out := make([]byte, len(n.mem))
	copy(out, n.mem[:])
	return out
}

// registers is the 16-port 8390 register file endpoint.
type registers struct{ n *NIC }

// dataPort is the 16-bit remote-DMA data port endpoint.
type dataPort struct{ n *NIC }

// resetPort is the adapter reset endpoint.
type resetPort struct{ n *NIC }

var (
	_ hw.Device = (*registers)(nil)
	_ hw.Device = (*dataPort)(nil)
	_ hw.Device = (*resetPort)(nil)
)

// Registers returns the 8390 register-file endpoint (16 ports).
func (n *NIC) Registers() hw.Device { return &registers{n: n} }

// DataPort returns the remote-DMA data-port endpoint (1 port, 16-bit).
func (n *NIC) DataPort() hw.Device { return &dataPort{n: n} }

// ResetPort returns the adapter reset endpoint (1 port).
func (n *NIC) ResetPort() hw.Device { return &resetPort{n: n} }

// Name implements hw.Device.
func (r *registers) Name() string { return "ne2000" }

// Read implements hw.Device for the register file.
func (r *registers) Read(offset hw.Port, width hw.AccessWidth) (uint32, error) {
	n := r.n
	if offset == 0 {
		return uint32(n.cr), nil
	}
	if n.page() == 1 {
		switch {
		case offset >= 1 && offset <= 6:
			return uint32(n.par[offset-1]), nil
		case offset == 7:
			return uint32(n.curr), nil
		default:
			return uint32(n.mar[offset-8]), nil
		}
	}
	switch offset {
	case 3:
		return uint32(n.bnry), nil
	case 4:
		return uint32(n.tsr), nil
	case 7:
		return uint32(n.isr), nil
	case 12:
		return uint32(n.rsr), nil
	case 13, 14, 15:
		v := n.cntr[offset-13]
		n.cntr[offset-13] = 0 // tally counters clear on read
		return uint32(v), nil
	default:
		return 0, nil // CLDA/CRDA and friends: not modelled, read as zero
	}
}

// Write implements hw.Device for the register file.
func (r *registers) Write(offset hw.Port, width hw.AccessWidth, value uint32) error {
	n := r.n
	v := uint8(value)
	if offset == 0 {
		n.writeCR(v)
		return nil
	}
	if n.page() == 1 {
		switch {
		case offset >= 1 && offset <= 6:
			n.par[offset-1] = v
		case offset == 7:
			n.curr = v
		default:
			n.mar[offset-8] = v
		}
		return nil
	}
	switch offset {
	case 1:
		n.pstart = v
	case 2:
		n.pstop = v
	case 3:
		n.bnry = v
	case 4:
		n.tpsr = v
	case 5:
		n.tbcr = n.tbcr&0xff00 | uint16(v)
	case 6:
		n.tbcr = n.tbcr&0x00ff | uint16(v)<<8
	case 7:
		n.isr &^= v // write 1 to clear
	case 8:
		n.rsar = n.rsar&0xff00 | uint16(v)
	case 9:
		n.rsar = n.rsar&0x00ff | uint16(v)<<8
	case 10:
		n.rbcr = n.rbcr&0xff00 | uint16(v)
	case 11:
		n.rbcr = n.rbcr&0x00ff | uint16(v)<<8
	case 12:
		n.rcr = v
	case 13:
		n.tcr = v
	case 14:
		n.dcr = v
	case 15:
		n.imr = v
	}
	return nil
}

// writeCR handles command-register writes: start/stop, remote-DMA abort,
// and transmit trigger.
func (n *NIC) writeCR(v uint8) {
	n.cr = v
	if v&0x01 != 0 { // STP
		n.stopped = true
	}
	if v&0x02 != 0 { // STA
		n.stopped = false
		n.isr &^= IsrReset
	}
	if v&0x04 != 0 && !n.stopped { // TXP
		n.transmit()
		n.cr &^= 0x04 // self-clearing
	}
}

// transmit sends the packet at TPSR/TBCR. In loopback mode (any non-zero
// loopback selection in TCR) the frame is delivered back into the receive
// ring; otherwise it leaves the (simulated) wire and only TSR/ISR update.
func (n *NIC) transmit() {
	start := int(n.tpsr) * pageSize
	length := int(n.tbcr)
	if start+length > len(n.mem) || length == 0 {
		n.isr |= IsrTransmitError
		n.tsr = 0x20 // FU: fifo underrun-ish failure
		return
	}
	n.tsr = 0x01 // PTX
	n.isr |= IsrPacketSent
	if n.tcr>>1&0x03 != 0 {
		frame := make([]byte, length)
		copy(frame, n.mem[start:start+length])
		n.Receive(frame)
	}
}

// Receive delivers a frame into the receive ring with the standard 8390
// 4-byte header (status, next page, length little-endian).
func (n *NIC) Receive(frame []byte) {
	if n.stopped || n.pstart < MemStart || n.pstop > MemStop || n.pstart >= n.pstop {
		n.isr |= IsrReceiveError
		return
	}
	if n.curr < n.pstart || n.curr >= n.pstop {
		// A misprogrammed write pointer outside the ring: the real chip
		// would scribble over arbitrary packet memory; the model flags it.
		n.isr |= IsrReceiveError
		n.rsr = 0x02
		return
	}
	total := len(frame) + 4
	pages := (total + pageSize - 1) / pageSize
	ring := int(n.pstop - n.pstart)
	if pages >= ring {
		n.isr |= IsrReceiveError
		n.rsr = 0x02
		return
	}
	cur := n.curr
	next := cur + uint8(pages)
	if next >= n.pstop {
		next = n.pstart + (next - n.pstop)
	}
	if next == n.bnry {
		n.isr |= IsrOverwrite
		return
	}
	// Write header + frame, wrapping at PSTOP.
	hdr := []byte{0x01, next, byte(total), byte(total >> 8)}
	pos := int(cur) * pageSize
	writeByte := func(b byte) {
		n.mem[pos] = b
		pos++
		if pos >= int(n.pstop)*pageSize {
			pos = int(n.pstart) * pageSize
		}
	}
	for _, b := range hdr {
		writeByte(b)
	}
	for _, b := range frame {
		writeByte(b)
	}
	n.curr = next
	n.rsr = 0x01
	n.isr |= IsrPacketReceived
}

// Name implements hw.Device.
func (d *dataPort) Name() string { return "ne2000-data" }

// Read implements hw.Device: remote-DMA read.
func (d *dataPort) Read(offset hw.Port, width hw.AccessWidth) (uint32, error) {
	n := d.n
	if n.remoteOp() != 1 || n.rbcr == 0 {
		return 0xffff, nil
	}
	step := 1
	if width == hw.Width16 {
		step = 2
	}
	var v uint32
	for i := 0; i < step; i++ {
		addr := int(n.rsar)
		var b byte
		if addr < len(n.mem) {
			b = n.mem[addr]
		} else {
			b = 0xff
		}
		v |= uint32(b) << uint(8*i)
		n.rsar++
		if n.rbcr > 0 {
			n.rbcr--
		}
	}
	if n.rbcr == 0 {
		n.isr |= IsrRemoteDone
	}
	return v, nil
}

// Write implements hw.Device: remote-DMA write.
func (d *dataPort) Write(offset hw.Port, width hw.AccessWidth, value uint32) error {
	n := d.n
	if n.remoteOp() != 2 || n.rbcr == 0 {
		return nil // dropped: no remote write programmed
	}
	step := 1
	if width == hw.Width16 {
		step = 2
	}
	for i := 0; i < step; i++ {
		addr := int(n.rsar)
		if addr < len(n.mem) {
			n.mem[addr] = byte(value >> uint(8*i))
		}
		n.rsar++
		if n.rbcr > 0 {
			n.rbcr--
		}
	}
	if n.rbcr == 0 {
		n.isr |= IsrRemoteDone
	}
	return nil
}

// Name implements hw.Device.
func (p *resetPort) Name() string { return "ne2000-reset" }

// Read implements hw.Device: reading the reset port resets the adapter.
func (p *resetPort) Read(offset hw.Port, width hw.AccessWidth) (uint32, error) {
	p.n.reset()
	return 0xff, nil
}

// Write implements hw.Device: writing completes the reset pulse.
func (p *resetPort) Write(offset hw.Port, width hw.AccessWidth, value uint32) error {
	p.n.reset()
	return nil
}

func (n *NIC) reset() {
	n.stopped = true
	n.isr = IsrReset
	n.cr = 0x21 // page 0, abort DMA, stopped
}

// String summarises the NIC state for diagnostics.
func (n *NIC) String() string {
	return fmt.Sprintf("ne2000{cr=%#02x curr=%#02x bnry=%#02x isr=%#02x}",
		n.cr, n.curr, n.bnry, n.isr)
}
