// Package ne2000 models an NE2000 Ethernet adapter (DP8390 core): the
// paged register file, 16 KiB of on-board packet memory, the remote-DMA
// engine behind the data port, and loopback transmission into the receive
// ring — enough to exercise every register of specs/ne2000.dil and to run
// a full transmit/receive round trip in the examples and the ne2000_*
// campaign workload.
package ne2000
