package ccompile

import (
	"fmt"
	"strings"

	"repro/internal/cdriver/cast"
	"repro/internal/cdriver/cinterp"
	"repro/internal/cdriver/ctoken"
	"repro/internal/devil/codegen"
	"repro/internal/hw"
	"repro/internal/kernel"
)

// expr compiles one expression into a closure with the interpreter's
// evalIn semantics: the expression's line is covered first, then the
// node-specific evaluation runs.
func (c *compiler) expr(x cast.Expr) exprFn {
	line := c.line(x.Pos())
	switch x := x.(type) {
	case *cast.IntLit:
		v := intValue(x.Value)
		return func(st *state, fr []Value) (Value, error) {
			st.cov.Add(line)
			return v, nil
		}

	case *cast.StringLit:
		v := Value{Kind: cinterp.ValString, S: x.Value}
		return func(st *state, fr []Value) (Value, error) {
			st.cov.Add(line)
			return v, nil
		}

	case *cast.Ident:
		return c.ident(x, line)

	case *cast.CallExpr:
		return c.call(x, line)

	case *cast.UnaryExpr:
		xf := c.expr(x.X)
		switch x.Op {
		case ctoken.Not:
			return func(st *state, fr []Value) (Value, error) {
				st.cov.Add(line)
				v, err := xf(st, fr)
				if err != nil {
					return voidValue, err
				}
				if v.Truthy() {
					return intValue(0), nil
				}
				return intValue(1), nil
			}
		case ctoken.BitNot:
			return func(st *state, fr []Value) (Value, error) {
				st.cov.Add(line)
				v, err := xf(st, fr)
				if err != nil {
					return voidValue, err
				}
				return intValue(^v.I), nil
			}
		case ctoken.Sub:
			return func(st *state, fr []Value) (Value, error) {
				st.cov.Add(line)
				v, err := xf(st, fr)
				if err != nil {
					return voidValue, err
				}
				return intValue(-v.I), nil
			}
		}
		badOp := x.Op
		return func(st *state, fr []Value) (Value, error) {
			st.cov.Add(line)
			if _, err := xf(st, fr); err != nil {
				return voidValue, err
			}
			return voidValue, &kernel.CrashError{Cause: fmt.Errorf("bad unary operator %s", badOp)}
		}

	case *cast.BinaryExpr:
		return c.binary(x, line)

	case *cast.CondExpr:
		condFn := c.expr(x.Cond)
		thenFn := c.expr(x.Then)
		elseFn := c.expr(x.Else)
		return func(st *state, fr []Value) (Value, error) {
			st.cov.Add(line)
			cond, err := condFn(st, fr)
			if err != nil {
				return voidValue, err
			}
			if cond.Truthy() {
				return thenFn(st, fr)
			}
			return elseFn(st, fr)
		}

	case *cast.CastExpr:
		xf := c.expr(x.X)
		to := x.To
		return func(st *state, fr []Value) (Value, error) {
			st.cov.Add(line)
			v, err := xf(st, fr)
			if err != nil {
				return voidValue, err
			}
			return cinterp.Truncate(to, v), nil
		}
	}

	// Unknown expression kinds crash exactly like the interpreter.
	pos := x.Pos()
	return func(st *state, fr []Value) (Value, error) {
		st.cov.Add(line)
		return voidValue, &kernel.CrashError{Cause: fmt.Errorf("unknown expression at %s", pos)}
	}
}

// ident compiles an identifier use, resolving it at compile time through
// the interpreter's evalIdent chain: locals, globals, macros (inlined at
// the use site, depth-guarded), Devil enum constants, then an undefined
// fault. Globals and macros carry the declsReady guard so that during
// global initialisation the not-yet-declared tail of the file is
// invisible, falling through to the later links of the chain exactly as
// the interpreter's incrementally filled maps do.
func (c *compiler) ident(id *cast.Ident, line int) exprFn {
	name := id.Name
	if ls, ok := c.lookupLocal(name); ok {
		slot := ls.idx
		return func(st *state, fr []Value) (Value, error) {
			st.cov.Add(line)
			return fr[slot], nil
		}
	}

	// The links of the chain that follow a global or macro whose
	// declaration has not run yet (only reachable mid-initialisation).
	lateFallback := func(st *state) (Value, error) {
		if st.stubs != nil {
			if cv, ok := st.stubs.Const(name); ok {
				return Value{Kind: cinterp.ValDevil, Devil: cv}, nil
			}
		}
		return voidValue, undefIdentErr(name)
	}

	if g, ok := c.globalIdx[name]; ok {
		slot, ord := g.slot, g.ord
		return func(st *state, fr []Value) (Value, error) {
			st.cov.Add(line)
			if ord >= st.declsReady {
				return lateFallback(st)
			}
			return st.globals[slot], nil
		}
	}

	if m, ok := c.macros[name]; ok {
		for _, active := range c.macroStack {
			if active == name {
				c.fail(fmt.Errorf("%w: macro expansion cycle at %q", ErrUnsupported, name))
				return func(st *state, fr []Value) (Value, error) {
					return voidValue, undefIdentErr(name)
				}
			}
		}
		c.macroStack = append(c.macroStack, name)
		bodyFn := c.expr(m.decl.Body)
		c.macroStack = c.macroStack[:len(c.macroStack)-1]
		ord := m.ord
		return func(st *state, fr []Value) (Value, error) {
			st.cov.Add(line)
			if ord >= st.declsReady {
				return lateFallback(st)
			}
			if st.depth >= maxCallDepth {
				return voidValue, &kernel.CrashError{
					Cause: fmt.Errorf("macro expansion too deep at %q", name),
				}
			}
			st.depth++
			v, err := bodyFn(st, fr)
			st.depth--
			return v, err
		}
	}

	if c.stubs != nil {
		if cv, ok := c.stubs.Const(name); ok {
			v := Value{Kind: cinterp.ValDevil, Devil: cv}
			return func(st *state, fr []Value) (Value, error) {
				st.cov.Add(line)
				return v, nil
			}
		}
	}

	return func(st *state, fr []Value) (Value, error) {
		st.cov.Add(line)
		return voidValue, undefIdentErr(name)
	}
}

func undefIdentErr(name string) error {
	return &kernel.CrashError{Cause: fmt.Errorf("use of undefined identifier %q", name)}
}

// binary compiles a binary operation with a per-operator closure.
func (c *compiler) binary(x *cast.BinaryExpr, line int) exprFn {
	lf := c.expr(x.X)
	// Short-circuit operators first.
	if x.Op == ctoken.LAnd || x.Op == ctoken.LOr {
		rf := c.expr(x.Y)
		and := x.Op == ctoken.LAnd
		return func(st *state, fr []Value) (Value, error) {
			st.cov.Add(line)
			l, err := lf(st, fr)
			if err != nil {
				return voidValue, err
			}
			if and && !l.Truthy() {
				return intValue(0), nil
			}
			if !and && l.Truthy() {
				return intValue(1), nil
			}
			r, err := rf(st, fr)
			if err != nil {
				return voidValue, err
			}
			if r.Truthy() {
				return intValue(1), nil
			}
			return intValue(0), nil
		}
	}
	rf := c.expr(x.Y)

	eval2 := func(st *state, fr []Value) (int64, int64, error) {
		st.cov.Add(line)
		l, err := lf(st, fr)
		if err != nil {
			return 0, 0, err
		}
		r, err := rf(st, fr)
		if err != nil {
			return 0, 0, err
		}
		return l.I, r.I, nil
	}
	boolVal := func(ok bool) Value {
		if ok {
			return intValue(1)
		}
		return intValue(0)
	}

	switch x.Op {
	case ctoken.Or:
		return func(st *state, fr []Value) (Value, error) {
			a, b, err := eval2(st, fr)
			if err != nil {
				return voidValue, err
			}
			return intValue(a | b), nil
		}
	case ctoken.Xor:
		return func(st *state, fr []Value) (Value, error) {
			a, b, err := eval2(st, fr)
			if err != nil {
				return voidValue, err
			}
			return intValue(a ^ b), nil
		}
	case ctoken.And:
		return func(st *state, fr []Value) (Value, error) {
			a, b, err := eval2(st, fr)
			if err != nil {
				return voidValue, err
			}
			return intValue(a & b), nil
		}
	case ctoken.Shl:
		return func(st *state, fr []Value) (Value, error) {
			a, b, err := eval2(st, fr)
			if err != nil {
				return voidValue, err
			}
			return intValue(a << uint(b&63)), nil
		}
	case ctoken.Shr:
		return func(st *state, fr []Value) (Value, error) {
			a, b, err := eval2(st, fr)
			if err != nil {
				return voidValue, err
			}
			return intValue(a >> uint(b&63)), nil
		}
	case ctoken.Add:
		return func(st *state, fr []Value) (Value, error) {
			a, b, err := eval2(st, fr)
			if err != nil {
				return voidValue, err
			}
			return intValue(a + b), nil
		}
	case ctoken.Sub:
		return func(st *state, fr []Value) (Value, error) {
			a, b, err := eval2(st, fr)
			if err != nil {
				return voidValue, err
			}
			return intValue(a - b), nil
		}
	case ctoken.Mul:
		return func(st *state, fr []Value) (Value, error) {
			a, b, err := eval2(st, fr)
			if err != nil {
				return voidValue, err
			}
			return intValue(a * b), nil
		}
	case ctoken.Div, ctoken.Mod:
		mod := x.Op == ctoken.Mod
		opPos := x.OpPos
		return func(st *state, fr []Value) (Value, error) {
			a, b, err := eval2(st, fr)
			if err != nil {
				return voidValue, err
			}
			if b == 0 {
				return voidValue, &kernel.CrashError{
					Cause: fmt.Errorf("division by zero at %s", opPos),
				}
			}
			if mod {
				return intValue(a % b), nil
			}
			return intValue(a / b), nil
		}
	case ctoken.Eq:
		return func(st *state, fr []Value) (Value, error) {
			a, b, err := eval2(st, fr)
			if err != nil {
				return voidValue, err
			}
			return boolVal(a == b), nil
		}
	case ctoken.Ne:
		return func(st *state, fr []Value) (Value, error) {
			a, b, err := eval2(st, fr)
			if err != nil {
				return voidValue, err
			}
			return boolVal(a != b), nil
		}
	case ctoken.Lt:
		return func(st *state, fr []Value) (Value, error) {
			a, b, err := eval2(st, fr)
			if err != nil {
				return voidValue, err
			}
			return boolVal(a < b), nil
		}
	case ctoken.Gt:
		return func(st *state, fr []Value) (Value, error) {
			a, b, err := eval2(st, fr)
			if err != nil {
				return voidValue, err
			}
			return boolVal(a > b), nil
		}
	case ctoken.Le:
		return func(st *state, fr []Value) (Value, error) {
			a, b, err := eval2(st, fr)
			if err != nil {
				return voidValue, err
			}
			return boolVal(a <= b), nil
		}
	case ctoken.Ge:
		return func(st *state, fr []Value) (Value, error) {
			a, b, err := eval2(st, fr)
			if err != nil {
				return voidValue, err
			}
			return boolVal(a >= b), nil
		}
	}
	badOp := x.Op
	return func(st *state, fr []Value) (Value, error) {
		if _, _, err := eval2(st, fr); err != nil {
			return voidValue, err
		}
		return voidValue, &kernel.CrashError{Cause: fmt.Errorf("bad binary operator %s", badOp)}
	}
}

// callImpl consumes evaluated arguments — the compiled analogue of the
// interpreter's builtin/callFunc dispatch.
type callImpl func(st *state, args []Value) (Value, error)

// call compiles a call expression: arguments evaluate in order into a
// pooled buffer, then the pre-resolved implementation runs.
func (c *compiler) call(x *cast.CallExpr, line int) exprFn {
	argFns := make([]exprFn, len(x.Args))
	for i, a := range x.Args {
		argFns[i] = c.expr(a)
	}
	var impl callImpl
	// Driver-defined functions take priority over builtins of the same
	// name, as in the interpreter.
	if idx, ok := c.funcIdx[x.Name]; ok {
		f := c.funcs[idx]
		impl = func(st *state, args []Value) (Value, error) {
			return st.callFunc(f, args)
		}
	} else {
		impl = c.builtin(x)
	}
	n := len(argFns)
	return func(st *state, fr []Value) (Value, error) {
		st.cov.Add(line)
		args := st.grabArgs(n)
		for i, af := range argFns {
			v, err := af(st, fr)
			if err != nil {
				st.releaseArgs(args)
				return voidValue, err
			}
			args[i] = v
		}
		v, err := impl(st, args)
		st.releaseArgs(args)
		return v, err
	}
}

// argI mirrors the interpreter's lenient argument accessor.
func argI(args []Value, i int) int64 {
	if i < len(args) {
		return args[i].I
	}
	return 0
}

// builtin resolves a non-driver call at compile time: kernel builtins,
// the Devil stub surface, or the undefined-function fault.
func (c *compiler) builtin(x *cast.CallExpr) callImpl {
	switch x.Name {
	case "inb":
		return func(st *state, args []Value) (Value, error) {
			v, err := st.bus.Read(hw.Port(argI(args, 0)), hw.Width8)
			return intValue(int64(v)), err
		}
	case "inw":
		return func(st *state, args []Value) (Value, error) {
			v, err := st.bus.Read(hw.Port(argI(args, 0)), hw.Width16)
			return intValue(int64(v)), err
		}
	case "inl":
		return func(st *state, args []Value) (Value, error) {
			v, err := st.bus.Read(hw.Port(argI(args, 0)), hw.Width32)
			return intValue(int64(v)), err
		}
	case "outb":
		return func(st *state, args []Value) (Value, error) {
			return voidValue, st.bus.Write(hw.Port(argI(args, 1)), hw.Width8, uint32(argI(args, 0)))
		}
	case "outw":
		return func(st *state, args []Value) (Value, error) {
			return voidValue, st.bus.Write(hw.Port(argI(args, 1)), hw.Width16, uint32(argI(args, 0)))
		}
	case "outl":
		return func(st *state, args []Value) (Value, error) {
			return voidValue, st.bus.Write(hw.Port(argI(args, 1)), hw.Width32, uint32(argI(args, 0)))
		}
	case "panic":
		namePos := x.NamePos
		return func(st *state, args []Value) (Value, error) {
			msg := "panic"
			if len(args) > 0 && args[0].Kind == cinterp.ValString {
				msg = args[0].S
			}
			return voidValue, st.kern.Panic(fmt.Sprintf("%s (at %s)", msg, namePos))
		}
	case "printk":
		return func(st *state, args []Value) (Value, error) {
			st.kern.Printk(cinterp.FormatPrintk(args))
			return voidValue, nil
		}
	case "udelay":
		return func(st *state, args []Value) (Value, error) {
			return voidValue, st.kern.Delay(argI(args, 0))
		}
	case "kbuf_read8":
		return func(st *state, args []Value) (Value, error) {
			v, err := st.kern.BufRead8(argI(args, 0))
			return intValue(int64(v)), err
		}
	case "kbuf_write8":
		return func(st *state, args []Value) (Value, error) {
			return voidValue, st.kern.BufWrite8(argI(args, 0), uint8(argI(args, 1)))
		}
	case "kbuf_read16":
		return func(st *state, args []Value) (Value, error) {
			v, err := st.kern.BufRead16(argI(args, 0))
			return intValue(int64(v)), err
		}
	case "kbuf_write16":
		return func(st *state, args []Value) (Value, error) {
			return voidValue, st.kern.BufWrite16(argI(args, 0), uint16(argI(args, 1)))
		}
	case "dil_eq":
		return func(st *state, args []Value) (Value, error) {
			if st.stubs == nil || len(args) != 2 {
				return voidValue, &kernel.CrashError{Cause: fmt.Errorf("dil_eq without stubs")}
			}
			eq, err := st.stubs.Eq(toDevil(args[0]), toDevil(args[1]))
			if err != nil {
				return voidValue, err
			}
			if eq {
				return intValue(1), nil
			}
			return intValue(0), nil
		}
	}
	if c.stubs != nil {
		if impl := c.stubCall(x); impl != nil {
			return impl
		}
	}
	return c.undefinedCall(x)
}

func toDevil(v Value) codegen.Value {
	if v.Kind == cinterp.ValDevil {
		return v.Devil
	}
	return codegen.UntypedInt(v.I)
}

func (c *compiler) undefinedCall(x *cast.CallExpr) callImpl {
	name, pos := x.Name, x.NamePos
	return func(st *state, args []Value) (Value, error) {
		return voidValue, &kernel.CrashError{
			Cause: fmt.Errorf("call to undefined function %q at %s", name, pos),
		}
	}
}

// stubCall resolves a get_X/set_X/get_block_X/set_block_X call to an
// indexed accessor dispatch, replacing the interpreter's per-call string
// prefix matching and stub-table lookups. Returns nil when the name does
// not resolve to a stub (the undefined-function fault applies).
func (c *compiler) stubCall(x *cast.CallExpr) callImpl {
	name := x.Name
	switch {
	case strings.HasPrefix(name, "get_block_"), strings.HasPrefix(name, "set_block_"):
		reading := strings.HasPrefix(name, "get_block_")
		varName := strings.TrimPrefix(strings.TrimPrefix(name, "get_block_"), "set_block_")
		sig, ok := c.varSigs[varName]
		if !ok || !sig.Block {
			return nil
		}
		acc, ok := c.stubs.Accessor(varName)
		if !ok {
			return nil
		}
		return c.blockCall(name, varName, reading, sig, acc)

	case strings.HasPrefix(name, "get_"):
		varName := name[len("get_"):]
		sig, ok := c.varSigs[varName]
		if !ok {
			return nil
		}
		acc, aok := c.stubs.Accessor(varName)
		if !aok {
			return nil
		}
		if !acc.Readable() {
			return modeFaultImpl(varName, acc)
		}
		switch {
		case sig.Kind == codegen.KindEnum:
			return func(st *state, args []Value) (Value, error) {
				dv, err := acc.Get()
				if err != nil {
					return voidValue, err
				}
				return Value{Kind: cinterp.ValDevil, Devil: dv}, nil
			}
		case sig.Kind == codegen.KindSignedInt && sig.Width > 0 && sig.Width < 64:
			shift := uint(64 - sig.Width)
			return func(st *state, args []Value) (Value, error) {
				dv, err := acc.Get()
				if err != nil {
					return voidValue, err
				}
				// Sign-extend the raw field.
				return intValue(int64(dv.Val) << shift >> shift), nil
			}
		default:
			return func(st *state, args []Value) (Value, error) {
				dv, err := acc.Get()
				if err != nil {
					return voidValue, err
				}
				return intValue(int64(dv.Val)), nil
			}
		}

	case strings.HasPrefix(name, "set_"):
		varName := name[len("set_"):]
		if _, ok := c.varSigs[varName]; !ok {
			return nil
		}
		acc, aok := c.stubs.Accessor(varName)
		if !aok {
			return nil
		}
		if !acc.Writable() {
			return modeFaultImpl(varName, acc)
		}
		return func(st *state, args []Value) (Value, error) {
			var dv codegen.Value
			if len(args) == 1 && args[0].Kind == cinterp.ValDevil {
				dv = args[0].Devil
			} else if len(args) == 1 {
				dv = codegen.UntypedInt(args[0].I)
			}
			return voidValue, acc.Set(dv)
		}
	}
	return nil
}

// modeFaultImpl reproduces the Get/Set access-mode fault of a stub whose
// direction the call does not have ("device variable X is write-only").
func modeFaultImpl(varName string, acc *codegen.Accessor) callImpl {
	mode := acc.ModeString()
	return func(st *state, args []Value) (Value, error) {
		return voidValue, fmt.Errorf("device variable %s is %s", varName, mode)
	}
}

// blockCall compiles the FIFO block-transfer stubs with the exact
// element loop of the interpreter: one watchdog step per element, the
// same buffer access pattern, the same fault order.
func (c *compiler) blockCall(name, varName string, reading bool,
	sig codegen.VarSig, acc *codegen.Accessor) callImpl {
	elem := int64(sig.Width / 8)
	canRead, canWrite := acc.Readable(), acc.Writable()
	mode := acc.ModeString()
	return func(st *state, args []Value) (Value, error) {
		if len(args) != 2 {
			return voidValue, &kernel.CrashError{
				Cause: fmt.Errorf("%s: wrong argument count", name),
			}
		}
		off, count := args[0].I, args[1].I
		for k := int64(0); k < count; k++ {
			if err := st.kern.Step(); err != nil {
				return voidValue, err
			}
			byteOff := off + k*elem
			if reading {
				if !canRead {
					return voidValue, fmt.Errorf("device variable %s is %s", varName, mode)
				}
				dv, err := acc.Get()
				if err != nil {
					return voidValue, err
				}
				var werr error
				if elem == 2 {
					werr = st.kern.BufWrite16(byteOff, uint16(dv.Val))
				} else {
					if werr = st.kern.BufWrite16(byteOff, uint16(dv.Val)); werr == nil {
						werr = st.kern.BufWrite16(byteOff+2, uint16(dv.Val>>16))
					}
				}
				if werr != nil {
					return voidValue, werr
				}
				continue
			}
			var val uint32
			if elem == 2 {
				w, err := st.kern.BufRead16(byteOff)
				if err != nil {
					return voidValue, err
				}
				val = uint32(w)
			} else {
				lo, err := st.kern.BufRead16(byteOff)
				if err != nil {
					return voidValue, err
				}
				hi, err := st.kern.BufRead16(byteOff + 2)
				if err != nil {
					return voidValue, err
				}
				val = uint32(lo) | uint32(hi)<<16
			}
			if !canWrite {
				return voidValue, fmt.Errorf("device variable %s is %s", varName, mode)
			}
			if err := acc.Set(codegen.UntypedInt(int64(val))); err != nil {
				return voidValue, err
			}
		}
		return voidValue, nil
	}
}
