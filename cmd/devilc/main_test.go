package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestCompileEmbeddedSpecs(t *testing.T) {
	for _, name := range []string{"busmouse", "pci", "ide", "ne2000", "permedia"} {
		if err := run([]string{"-check", name}); err != nil {
			t.Errorf("devilc -check %s: %v", name, err)
		}
	}
}

func TestEmitModes(t *testing.T) {
	for _, args := range [][]string{
		{"-mode", "debug", "ide"},
		{"-mode", "production", "ide"},
		{"-var", "Drive", "ide"},
	} {
		if err := run(args); err != nil {
			t.Errorf("devilc %v: %v", args, err)
		}
	}
}

func TestFileInput(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tiny.dil")
	src := `device tiny (a : bit[8] port @ {0..0}) {
		register r = a @ 0 : bit[8];
		variable V = r : int(8);
	}`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-check", path}); err != nil {
		t.Errorf("devilc on file: %v", err)
	}
}

func TestErrors(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("missing argument accepted")
	}
	if err := run([]string{"-mode", "bogus", "ide"}); err == nil {
		t.Error("bad mode accepted")
	}
	if err := run([]string{"nonexistent-spec"}); err == nil {
		t.Error("unknown spec accepted")
	}
	if err := run([]string{"-var", "NoSuchVar", "ide"}); err == nil {
		t.Error("unknown variable accepted")
	}
	// An inconsistent spec must be rejected with diagnostics.
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.dil")
	src := `device bad (a : bit[8] port @ {0..0}) {
		register r = a @ 0 : bit[16];
		variable V = r : int(16);
	}`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-check", path}); err == nil {
		t.Error("inconsistent spec accepted")
	}
}
