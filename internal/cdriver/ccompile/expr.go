package ccompile

import (
	"fmt"
	"strings"

	"repro/internal/cdriver/cast"
	"repro/internal/cdriver/cinterp"
	"repro/internal/cdriver/ctoken"
	"repro/internal/devil/codegen"
	"repro/internal/hw"
	"repro/internal/kernel"
)

// expr compiles one expression into a closure with the interpreter's
// evalIn semantics: the expression's line is covered first, then the
// node-specific evaluation runs.
func (c *compiler) expr(x cast.Expr) exprFn {
	line := c.line(x.Pos())
	switch x := x.(type) {
	case *cast.IntLit:
		v := intValue(x.Value)
		if c.skipCov(line) {
			return func(st *state, fr []Value) (Value, error) {
				return v, nil
			}
		}
		return func(st *state, fr []Value) (Value, error) {
			st.cov.Add(line)
			return v, nil
		}

	case *cast.StringLit:
		v := Value{Kind: cinterp.ValString, S: x.Value}
		return func(st *state, fr []Value) (Value, error) {
			st.cov.Add(line)
			return v, nil
		}

	case *cast.Ident:
		return c.ident(x, line)

	case *cast.CallExpr:
		return c.call(x, line)

	case *cast.UnaryExpr:
		xf := c.expr(x.X)
		switch x.Op {
		case ctoken.Not:
			return func(st *state, fr []Value) (Value, error) {
				st.cov.Add(line)
				v, err := xf(st, fr)
				if err != nil {
					return voidValue, err
				}
				if v.Truthy() {
					return intValue(0), nil
				}
				return intValue(1), nil
			}
		case ctoken.BitNot:
			return func(st *state, fr []Value) (Value, error) {
				st.cov.Add(line)
				v, err := xf(st, fr)
				if err != nil {
					return voidValue, err
				}
				return intValue(^v.I), nil
			}
		case ctoken.Sub:
			return func(st *state, fr []Value) (Value, error) {
				st.cov.Add(line)
				v, err := xf(st, fr)
				if err != nil {
					return voidValue, err
				}
				return intValue(-v.I), nil
			}
		}
		badOp := x.Op
		return func(st *state, fr []Value) (Value, error) {
			st.cov.Add(line)
			if _, err := xf(st, fr); err != nil {
				return voidValue, err
			}
			return voidValue, &kernel.CrashError{Cause: fmt.Errorf("bad unary operator %s", badOp)}
		}

	case *cast.BinaryExpr:
		return c.binary(x, line)

	case *cast.CondExpr:
		condFn := c.expr(x.Cond)
		thenFn := c.expr(x.Then)
		elseFn := c.expr(x.Else)
		return func(st *state, fr []Value) (Value, error) {
			st.cov.Add(line)
			cond, err := condFn(st, fr)
			if err != nil {
				return voidValue, err
			}
			if cond.Truthy() {
				return thenFn(st, fr)
			}
			return elseFn(st, fr)
		}

	case *cast.CastExpr:
		xf := c.expr(x.X)
		to := x.To
		return func(st *state, fr []Value) (Value, error) {
			st.cov.Add(line)
			v, err := xf(st, fr)
			if err != nil {
				return voidValue, err
			}
			return cinterp.Truncate(to, v), nil
		}
	}

	// Unknown expression kinds crash exactly like the interpreter.
	pos := x.Pos()
	return func(st *state, fr []Value) (Value, error) {
		st.cov.Add(line)
		return voidValue, &kernel.CrashError{Cause: fmt.Errorf("unknown expression at %s", pos)}
	}
}

// ident compiles an identifier use, resolving it at compile time through
// the interpreter's evalIdent chain: locals, globals, macros (inlined at
// the use site, depth-guarded), Devil enum constants, then an undefined
// fault. Globals and macros carry the declsReady guard so that during
// global initialisation the not-yet-declared tail of the file is
// invisible, falling through to the later links of the chain exactly as
// the interpreter's incrementally filled maps do.
func (c *compiler) ident(id *cast.Ident, line int) exprFn {
	name := id.Name
	if ls, ok := c.lookupLocal(name); ok {
		slot := ls.idx
		if c.skipCov(line) {
			return func(st *state, fr []Value) (Value, error) {
				return fr[slot], nil
			}
		}
		return func(st *state, fr []Value) (Value, error) {
			st.cov.Add(line)
			return fr[slot], nil
		}
	}

	// The links of the chain that follow a global or macro whose
	// declaration has not run yet (only reachable mid-initialisation).
	lateFallback := func(st *state) (Value, error) {
		if st.stubs != nil {
			if cv, ok := st.stubs.Const(name); ok {
				return Value{Kind: cinterp.ValDevil, Devil: cv}, nil
			}
		}
		return voidValue, undefIdentErr(name)
	}

	if g, ok := c.globalIdx[name]; ok {
		slot, ord := g.slot, g.ord
		if c.skipCov(line) {
			return func(st *state, fr []Value) (Value, error) {
				if ord >= st.declsReady {
					return lateFallback(st)
				}
				return st.globals[slot], nil
			}
		}
		return func(st *state, fr []Value) (Value, error) {
			st.cov.Add(line)
			if ord >= st.declsReady {
				return lateFallback(st)
			}
			return st.globals[slot], nil
		}
	}

	if m, ok := c.macros[name]; ok {
		if c.onMacro != nil {
			c.onMacro(name)
		}
		// Constant macros — the `#define NAME <literal>` idiom that is
		// every macro in the driver corpus — collapse to one closure: the
		// guards and both coverage points of the generic expansion, no
		// nested closure call, no depth bookkeeping (a literal body
		// cannot recurse, so increment-then-decrement is unobservable;
		// the depth *check*, reachable at full recursion depth, stays).
		if lit, isLit := m.decl.Body.(*cast.IntLit); isLit {
			v := intValue(lit.Value)
			bodyLine := c.line(lit.Pos())
			ord := m.ord
			if c.skipCov(line) {
				return func(st *state, fr []Value) (Value, error) {
					if ord >= st.declsReady {
						return lateFallback(st)
					}
					if st.depth >= maxCallDepth {
						return voidValue, &kernel.CrashError{
							Cause: fmt.Errorf("macro expansion too deep at %q", name),
						}
					}
					st.cov.Add(bodyLine)
					return v, nil
				}
			}
			return func(st *state, fr []Value) (Value, error) {
				st.cov.Add(line)
				if ord >= st.declsReady {
					return lateFallback(st)
				}
				if st.depth >= maxCallDepth {
					return voidValue, &kernel.CrashError{
						Cause: fmt.Errorf("macro expansion too deep at %q", name),
					}
				}
				st.cov.Add(bodyLine)
				return v, nil
			}
		}
		for _, active := range c.macroStack {
			if active == name {
				c.fail(fmt.Errorf("%w: macro expansion cycle at %q", ErrUnsupported, name))
				return func(st *state, fr []Value) (Value, error) {
					return voidValue, undefIdentErr(name)
				}
			}
		}
		c.macroStack = append(c.macroStack, name)
		bodyFn := c.expr(m.decl.Body)
		c.macroStack = c.macroStack[:len(c.macroStack)-1]
		ord := m.ord
		return func(st *state, fr []Value) (Value, error) {
			st.cov.Add(line)
			if ord >= st.declsReady {
				return lateFallback(st)
			}
			if st.depth >= maxCallDepth {
				return voidValue, &kernel.CrashError{
					Cause: fmt.Errorf("macro expansion too deep at %q", name),
				}
			}
			st.depth++
			v, err := bodyFn(st, fr)
			st.depth--
			return v, err
		}
	}

	if c.stubs != nil {
		if cv, ok := c.stubs.Const(name); ok {
			v := Value{Kind: cinterp.ValDevil, Devil: cv}
			return func(st *state, fr []Value) (Value, error) {
				st.cov.Add(line)
				return v, nil
			}
		}
	}

	return func(st *state, fr []Value) (Value, error) {
		st.cov.Add(line)
		return voidValue, undefIdentErr(name)
	}
}

func undefIdentErr(name string) error {
	return &kernel.CrashError{Cause: fmt.Errorf("use of undefined identifier %q", name)}
}

// fop is a fused binary operand: a local frame slot, an integer
// literal, or a constant macro, evaluated inline by the binary closure
// instead of through its own closure call. The fields replicate the
// operand closure's exact observable sequence — coverage points first,
// then (for macros) the declsReady and depth guards.
type fop struct {
	slot     int // >= 0: local frame slot; -1: constant
	v        int64
	useLine  int
	bodyLine int // constant macros cover their body's line too
	guarded  bool
	ord      int
	name     string
}

// fuseOperand classifies an expression as a fused binary operand.
// Macro operands record the dependency exactly like a compiled
// expansion would, so incremental patching still recompiles this unit
// when the macro body mutates.
func (c *compiler) fuseOperand(x cast.Expr) (fop, bool) {
	switch x := x.(type) {
	case *cast.IntLit:
		return fop{slot: -1, v: x.Value, useLine: c.line(x.LitPos)}, true
	case *cast.Ident:
		if ls, ok := c.lookupLocal(x.Name); ok {
			return fop{slot: ls.idx, useLine: c.line(x.NamePos)}, true
		}
		if _, isGlobal := c.globalIdx[x.Name]; isGlobal {
			return fop{}, false
		}
		if m, ok := c.macros[x.Name]; ok {
			lit, isLit := m.decl.Body.(*cast.IntLit)
			if !isLit {
				return fop{}, false
			}
			if c.onMacro != nil {
				c.onMacro(x.Name)
			}
			return fop{
				slot: -1, v: lit.Value,
				useLine: c.line(x.NamePos), bodyLine: c.line(lit.Pos()),
				guarded: true, ord: m.ord, name: x.Name,
			}, true
		}
	}
	return fop{}, false
}

// evalFused evaluates a fused operand — small enough for the compiler
// to inline into the binary closures, with the macro fallback kept out
// of line in macroLate.
func evalFused(st *state, fr []Value, o *fop) (int64, error) {
	st.cov.Add(o.useLine)
	if o.slot >= 0 {
		return fr[o.slot].I, nil
	}
	if o.guarded {
		if o.ord >= st.declsReady {
			return macroLate(st, o.name)
		}
		if st.depth >= maxCallDepth {
			return 0, &kernel.CrashError{
				Cause: fmt.Errorf("macro expansion too deep at %q", o.name),
			}
		}
		st.cov.Add(o.bodyLine)
	}
	return o.v, nil
}

// macroLate is the not-yet-declared macro path (reachable only during
// global initialisation): the chain links after macros — Devil enum
// constants, then the undefined fault — exactly as ident's lateFallback.
func macroLate(st *state, name string) (int64, error) {
	if st.stubs != nil {
		if _, ok := st.stubs.Const(name); ok {
			// A Devil enum constant: binary operands read a value's .I,
			// which is zero for Devil values.
			return 0, nil
		}
	}
	return 0, undefIdentErr(name)
}

// skipCov reports whether an expression on line may omit its own
// coverage add: under fuse, the innermost enclosing statement closure
// has already added that exact line before the expression runs, and
// the covered-line set is idempotent.
func (c *compiler) skipCov(line int) bool {
	return c.fuse && line == c.domLine
}

// covLine resolves an operand's coverage line at compile time: -1 when
// the add is redundant (the operator's own line or the dominating
// statement's line covers it first), the line itself otherwise.
func (c *compiler) covLine(useLine, opLine int) int {
	if useLine == opLine || (c.fuse && useLine == c.domLine) {
		return -1
	}
	return useLine
}

// covWrap prefixes a closure with a coverage add when one is needed.
func covWrap(add bool, line int, f exprFn) exprFn {
	if !add {
		return f
	}
	return func(st *state, fr []Value) (Value, error) {
		st.cov.Add(line)
		return f(st, fr)
	}
}

// intBinOp resolves a binary operator to its pure integer
// implementation at compile time — the applyBin jump table without the
// per-execution switch. Returns nil for the operators that need an
// error path (div/mod) or short-circuit evaluation.
func intBinOp(op ctoken.Kind) func(a, b int64) int64 {
	switch op {
	case ctoken.Or:
		return func(a, b int64) int64 { return a | b }
	case ctoken.Xor:
		return func(a, b int64) int64 { return a ^ b }
	case ctoken.And:
		return func(a, b int64) int64 { return a & b }
	case ctoken.Shl:
		return func(a, b int64) int64 { return a << uint(b&63) }
	case ctoken.Shr:
		return func(a, b int64) int64 { return a >> uint(b&63) }
	case ctoken.Add:
		return func(a, b int64) int64 { return a + b }
	case ctoken.Sub:
		return func(a, b int64) int64 { return a - b }
	case ctoken.Mul:
		return func(a, b int64) int64 { return a * b }
	case ctoken.Eq:
		return func(a, b int64) int64 { return b2i(a == b) }
	case ctoken.Ne:
		return func(a, b int64) int64 { return b2i(a != b) }
	case ctoken.Lt:
		return func(a, b int64) int64 { return b2i(a < b) }
	case ctoken.Gt:
		return func(a, b int64) int64 { return b2i(a > b) }
	case ctoken.Le:
		return func(a, b int64) int64 { return b2i(a <= b) }
	case ctoken.Ge:
		return func(a, b int64) int64 { return b2i(a >= b) }
	}
	return nil
}

func b2i(ok bool) int64 {
	if ok {
		return 1
	}
	return 0
}

// fusedBinary emits an operator-specialized closure for a binary whose
// operands both fused and whose operator has a pure integer
// implementation: the operator resolves at compile time, unguarded
// operands read their frame slot or constant inline with no error
// path, and compile-time-redundant coverage adds are gone. Two
// constant operands fold to a literal. Returns nil when the shape
// needs one of the generic closures (guarded macro operands keep their
// declsReady/depth guards through evalFused).
func (c *compiler) fusedBinary(op ctoken.Kind, line int, xo, yo fop) exprFn {
	f := intBinOp(op)
	if f == nil {
		return nil
	}
	add := !c.skipCov(line)
	if xo.guarded || yo.guarded {
		xo, yo := xo, yo
		return covWrap(add, line, func(st *state, fr []Value) (Value, error) {
			a, err := evalFused(st, fr, &xo)
			if err != nil {
				return voidValue, err
			}
			b, err := evalFused(st, fr, &yo)
			if err != nil {
				return voidValue, err
			}
			return intValue(f(a, b)), nil
		})
	}
	xl := c.covLine(xo.useLine, line)
	yl := c.covLine(yo.useLine, line)
	switch {
	case xo.slot >= 0 && yo.slot >= 0:
		i, j := xo.slot, yo.slot
		return covWrap(add, line, func(st *state, fr []Value) (Value, error) {
			cover2(st, xl, yl)
			return intValue(f(fr[i].I, fr[j].I)), nil
		})
	case xo.slot >= 0:
		i, k := xo.slot, yo.v
		return covWrap(add, line, func(st *state, fr []Value) (Value, error) {
			cover2(st, xl, yl)
			return intValue(f(fr[i].I, k)), nil
		})
	case yo.slot >= 0:
		k, j := xo.v, yo.slot
		return covWrap(add, line, func(st *state, fr []Value) (Value, error) {
			cover2(st, xl, yl)
			return intValue(f(k, fr[j].I)), nil
		})
	default:
		v := intValue(f(xo.v, yo.v)) // constant folding, coverage kept
		return covWrap(add, line, func(st *state, fr []Value) (Value, error) {
			cover2(st, xl, yl)
			return v, nil
		})
	}
}

// halfFused emits an operator-specialized closure for a binary with one
// compiled operand and one fused, unguarded operand — the
// `inb(port) & MASK` shape of every status poll. The operator resolves
// at compile time; the fused operand reads its frame slot or constant
// inline. fusedLeft says which side fused, preserving evaluation and
// coverage order exactly: a left fused operand records its use line
// before the compiled side runs, a right one only after the compiled
// side succeeded.
func (c *compiler) halfFused(op ctoken.Kind, line int, ef exprFn, o fop, fusedLeft bool) exprFn {
	if !c.fuse {
		return nil
	}
	f := intBinOp(op)
	if f == nil {
		return nil
	}
	add := !c.skipCov(line)
	if o.guarded {
		// Guarded macro operands: the declsReady/depth guards inline
		// with evalFused's exact coverage order — use line first
		// (dedup'd at compile time when the statement line already
		// covers it), body line only once the guards pass. The
		// init-time-only slow case defers to evalFused.
		o := o
		ul := c.covLine(o.useLine, line)
		bodyLine, ord, k := o.bodyLine, o.ord, o.v
		if fusedLeft {
			return covWrap(add, line, func(st *state, fr []Value) (Value, error) {
				if ul >= 0 {
					st.cov.Add(ul)
				}
				a := k
				if ord >= st.declsReady || st.depth >= maxCallDepth {
					var err error
					if a, err = evalFused(st, fr, &o); err != nil {
						return voidValue, err
					}
				} else {
					st.cov.Add(bodyLine)
				}
				r, err := ef(st, fr)
				if err != nil {
					return voidValue, err
				}
				return intValue(f(a, r.I)), nil
			})
		}
		return covWrap(add, line, func(st *state, fr []Value) (Value, error) {
			l, err := ef(st, fr)
			if err != nil {
				return voidValue, err
			}
			if ul >= 0 {
				st.cov.Add(ul)
			}
			b := k
			if ord >= st.declsReady || st.depth >= maxCallDepth {
				if b, err = evalFused(st, fr, &o); err != nil {
					return voidValue, err
				}
			} else {
				st.cov.Add(bodyLine)
			}
			return intValue(f(l.I, b)), nil
		})
	}
	ol := c.covLine(o.useLine, line)
	if o.slot >= 0 {
		j := o.slot
		if fusedLeft {
			return covWrap(add, line, func(st *state, fr []Value) (Value, error) {
				if ol >= 0 {
					st.cov.Add(ol)
				}
				a := fr[j].I
				r, err := ef(st, fr)
				if err != nil {
					return voidValue, err
				}
				return intValue(f(a, r.I)), nil
			})
		}
		return covWrap(add, line, func(st *state, fr []Value) (Value, error) {
			l, err := ef(st, fr)
			if err != nil {
				return voidValue, err
			}
			if ol >= 0 {
				st.cov.Add(ol)
			}
			return intValue(f(l.I, fr[j].I)), nil
		})
	}
	k := o.v
	if fusedLeft {
		return covWrap(add, line, func(st *state, fr []Value) (Value, error) {
			if ol >= 0 {
				st.cov.Add(ol)
			}
			r, err := ef(st, fr)
			if err != nil {
				return voidValue, err
			}
			return intValue(f(k, r.I)), nil
		})
	}
	return covWrap(add, line, func(st *state, fr []Value) (Value, error) {
		l, err := ef(st, fr)
		if err != nil {
			return voidValue, err
		}
		if ol >= 0 {
			st.cov.Add(ol)
		}
		return intValue(f(l.I, k)), nil
	})
}

// cover2 adds the (rare) operand coverage lines a fused binary could
// not prove redundant at compile time.
func cover2(st *state, xl, yl int) {
	if xl >= 0 {
		st.cov.Add(xl)
	}
	if yl >= 0 {
		st.cov.Add(yl)
	}
}

// binary compiles a binary operation. Operands that are local slots,
// literals or constant macros fuse into the operator's own closure —
// the `status & MASK` shape of every polling loop then costs one
// closure call instead of three.
func (c *compiler) binary(x *cast.BinaryExpr, line int) exprFn {
	op := x.Op
	opPos := x.OpPos
	if op != ctoken.LAnd && op != ctoken.LOr {
		xo, xok := c.fuseOperand(x.X)
		yo, yok := c.fuseOperand(x.Y)
		if c.fuse && xok && yok {
			if f := c.fusedBinary(op, line, xo, yo); f != nil {
				return f
			}
		}
		switch {
		case xok && yok:
			return func(st *state, fr []Value) (Value, error) {
				st.cov.Add(line)
				a, err := evalFused(st, fr, &xo)
				if err != nil {
					return voidValue, err
				}
				b, err := evalFused(st, fr, &yo)
				if err != nil {
					return voidValue, err
				}
				return applyBin(op, opPos, a, b)
			}
		case yok:
			if cx, isCall := x.X.(*cast.CallExpr); isCall {
				if f := c.maskedRead(op, line, cx, yo); f != nil {
					return f
				}
			}
			lf := c.expr(x.X)
			if f := c.halfFused(op, line, lf, yo, false); f != nil {
				return f
			}
			return func(st *state, fr []Value) (Value, error) {
				st.cov.Add(line)
				l, err := lf(st, fr)
				if err != nil {
					return voidValue, err
				}
				b, err := evalFused(st, fr, &yo)
				if err != nil {
					return voidValue, err
				}
				return applyBin(op, opPos, l.I, b)
			}
		case xok:
			rf := c.expr(x.Y)
			if f := c.halfFused(op, line, rf, xo, true); f != nil {
				return f
			}
			return func(st *state, fr []Value) (Value, error) {
				st.cov.Add(line)
				a, err := evalFused(st, fr, &xo)
				if err != nil {
					return voidValue, err
				}
				r, err := rf(st, fr)
				if err != nil {
					return voidValue, err
				}
				return applyBin(op, opPos, a, r.I)
			}
		}
	}

	lf := c.expr(x.X)
	// Short-circuit operators first.
	if op == ctoken.LAnd || op == ctoken.LOr {
		rf := c.expr(x.Y)
		and := op == ctoken.LAnd
		return func(st *state, fr []Value) (Value, error) {
			st.cov.Add(line)
			l, err := lf(st, fr)
			if err != nil {
				return voidValue, err
			}
			if and && !l.Truthy() {
				return intValue(0), nil
			}
			if !and && l.Truthy() {
				return intValue(1), nil
			}
			r, err := rf(st, fr)
			if err != nil {
				return voidValue, err
			}
			if r.Truthy() {
				return intValue(1), nil
			}
			return intValue(0), nil
		}
	}
	rf := c.expr(x.Y)
	return func(st *state, fr []Value) (Value, error) {
		st.cov.Add(line)
		l, err := lf(st, fr)
		if err != nil {
			return voidValue, err
		}
		r, err := rf(st, fr)
		if err != nil {
			return voidValue, err
		}
		return applyBin(op, opPos, l.I, r.I)
	}
}

// applyBin is the shared operator jump table of every binary closure.
func applyBin(op ctoken.Kind, opPos ctoken.Pos, a, b int64) (Value, error) {
	switch op {
	case ctoken.Or:
		return intValue(a | b), nil
	case ctoken.Xor:
		return intValue(a ^ b), nil
	case ctoken.And:
		return intValue(a & b), nil
	case ctoken.Shl:
		return intValue(a << uint(b&63)), nil
	case ctoken.Shr:
		return intValue(a >> uint(b&63)), nil
	case ctoken.Add:
		return intValue(a + b), nil
	case ctoken.Sub:
		return intValue(a - b), nil
	case ctoken.Mul:
		return intValue(a * b), nil
	case ctoken.Div, ctoken.Mod:
		if b == 0 {
			return voidValue, &kernel.CrashError{
				Cause: fmt.Errorf("division by zero at %s", opPos),
			}
		}
		if op == ctoken.Mod {
			return intValue(a % b), nil
		}
		return intValue(a / b), nil
	case ctoken.Eq:
		return boolValue(a == b), nil
	case ctoken.Ne:
		return boolValue(a != b), nil
	case ctoken.Lt:
		return boolValue(a < b), nil
	case ctoken.Gt:
		return boolValue(a > b), nil
	case ctoken.Le:
		return boolValue(a <= b), nil
	case ctoken.Ge:
		return boolValue(a >= b), nil
	}
	return voidValue, &kernel.CrashError{Cause: fmt.Errorf("bad binary operator %s", op)}
}

// boolValue is C truth as a runtime value.
func boolValue(ok bool) Value {
	if ok {
		return intValue(1)
	}
	return intValue(0)
}

// callImpl consumes evaluated arguments — the compiled analogue of the
// interpreter's builtin/callFunc dispatch.
type callImpl func(st *state, args []Value) (Value, error)

// call compiles a call expression: arguments evaluate in order into a
// pooled buffer, then the pre-resolved implementation runs. The I/O and
// kernel-buffer builtins that sit on every polling loop compile to
// direct closures with no argument buffer at all.
func (c *compiler) call(x *cast.CallExpr, line int) exprFn {
	argFns := make([]exprFn, len(x.Args))
	for i, a := range x.Args {
		argFns[i] = c.expr(a)
	}
	var impl callImpl
	// Driver-defined functions take priority over builtins of the same
	// name, as in the interpreter.
	if idx, ok := c.funcIdx[x.Name]; ok {
		f := c.funcs[idx]
		impl = func(st *state, args []Value) (Value, error) {
			return st.callFunc(f, args)
		}
	} else {
		if direct := c.directBuiltin(x, argFns, line); direct != nil {
			return direct
		}
		impl = c.builtin(x)
	}
	n := len(argFns)
	return func(st *state, fr []Value) (Value, error) {
		st.cov.Add(line)
		args := st.grabArgs(n)
		for i, af := range argFns {
			v, err := af(st, fr)
			if err != nil {
				st.releaseArgs(args)
				return voidValue, err
			}
			args[i] = v
		}
		v, err := impl(st, args)
		st.releaseArgs(args)
		return v, err
	}
}

// argI mirrors the interpreter's lenient argument accessor.
func argI(args []Value, i int) int64 {
	if i < len(args) {
		return args[i].I
	}
	return 0
}

// directBuiltin compiles the hot kernel builtins — port I/O, udelay and
// the transfer-buffer accessors — to direct closures when the call's
// arity matches the builtin's access pattern, skipping the pooled
// argument buffer and the callImpl indirection of the generic path.
// Wrong-arity calls (a mutant artefact) return nil and take the generic
// path, whose lenient argI semantics they rely on. Returns nil for
// everything else.
func (c *compiler) directBuiltin(x *cast.CallExpr, argFns []exprFn, line int) exprFn {
	var width hw.AccessWidth
	ok := true
	switch x.Name {
	case "inb", "outb":
		width = hw.Width8
	case "inw", "outw":
		width = hw.Width16
	case "inl", "outl":
		width = hw.Width32
	default:
		ok = false
	}
	switch {
	case ok && x.Name[0] == 'i' && len(argFns) == 1:
		af := argFns[0]
		if c.fuse {
			// Block backend: batch consecutive accesses to the same
			// device through a per-site one-entry resolution cache. The
			// typical poll loop reads one status register thousands of
			// times; after the first access the mapping scan is gone.
			// The cache is sound because a rig's port map is fixed at
			// machine assembly and a Proc is bound to one rig. Unmapped
			// ports resolve to nil and take the generic path, which
			// owns the floating/fault semantics.
			c.stats.BatchedIO++
			if o, fok := c.fuseOperand(x.Args[0]); fok {
				// The port operand fused: no argument closure call, and
				// a compile-time-constant port pins its handle for good.
				return c.fusedRead(o, line, width)
			}
			var cp hw.Port
			var ch *hw.PortHandle
			return func(st *state, fr []Value) (Value, error) {
				st.cov.Add(line)
				a, err := af(st, fr)
				if err != nil {
					return voidValue, err
				}
				p := hw.Port(a.I)
				if ch == nil || p != cp {
					ch, cp = st.bus.Resolve(p), p
				}
				if ch == nil {
					v, err := st.bus.Read(p, width)
					return intValue(int64(v)), err
				}
				v, err := ch.Read(width)
				return intValue(int64(v)), err
			}
		}
		return func(st *state, fr []Value) (Value, error) {
			st.cov.Add(line)
			a, err := af(st, fr)
			if err != nil {
				return voidValue, err
			}
			v, err := st.bus.Read(hw.Port(a.I), width)
			return intValue(int64(v)), err
		}
	case ok && x.Name[0] == 'o' && len(argFns) == 2:
		vf, pf := argFns[0], argFns[1]
		if c.fuse {
			c.stats.BatchedIO++
			if o, fok := c.fuseOperand(x.Args[1]); fok {
				return c.fusedWrite(vf, o, line, width)
			}
			var cp hw.Port
			var ch *hw.PortHandle
			return func(st *state, fr []Value) (Value, error) {
				st.cov.Add(line)
				v, err := vf(st, fr)
				if err != nil {
					return voidValue, err
				}
				p, err := pf(st, fr)
				if err != nil {
					return voidValue, err
				}
				pp := hw.Port(p.I)
				if ch == nil || pp != cp {
					ch, cp = st.bus.Resolve(pp), pp
				}
				if ch == nil {
					return voidValue, st.bus.Write(pp, width, uint32(v.I))
				}
				return voidValue, ch.Write(width, uint32(v.I))
			}
		}
		return func(st *state, fr []Value) (Value, error) {
			st.cov.Add(line)
			v, err := vf(st, fr)
			if err != nil {
				return voidValue, err
			}
			p, err := pf(st, fr)
			if err != nil {
				return voidValue, err
			}
			return voidValue, st.bus.Write(hw.Port(p.I), width, uint32(v.I))
		}
	}
	switch x.Name {
	case "udelay":
		if len(argFns) == 1 {
			af := argFns[0]
			return func(st *state, fr []Value) (Value, error) {
				st.cov.Add(line)
				a, err := af(st, fr)
				if err != nil {
					return voidValue, err
				}
				return voidValue, st.kern.Delay(a.I)
			}
		}
	case "kbuf_read8", "kbuf_read16":
		if len(argFns) == 1 {
			wide := x.Name == "kbuf_read16"
			af := argFns[0]
			return func(st *state, fr []Value) (Value, error) {
				st.cov.Add(line)
				a, err := af(st, fr)
				if err != nil {
					return voidValue, err
				}
				if wide {
					v, err := st.kern.BufRead16(a.I)
					return intValue(int64(v)), err
				}
				v, err := st.kern.BufRead8(a.I)
				return intValue(int64(v)), err
			}
		}
	case "kbuf_write8", "kbuf_write16":
		if len(argFns) == 2 {
			wide := x.Name == "kbuf_write16"
			of, vf := argFns[0], argFns[1]
			return func(st *state, fr []Value) (Value, error) {
				st.cov.Add(line)
				o, err := of(st, fr)
				if err != nil {
					return voidValue, err
				}
				v, err := vf(st, fr)
				if err != nil {
					return voidValue, err
				}
				if wide {
					return voidValue, st.kern.BufWrite16(o.I, uint16(v.I))
				}
				return voidValue, st.kern.BufWrite8(o.I, uint8(v.I))
			}
		}
	}
	return nil
}

// portCache memoises Bus.Resolve for a slot-valued port operand. Call
// sites that cycle through a handful of ports (a register-window helper
// taking the port as a parameter) keep every handle; a linear scan of a
// few entries beats re-resolving under the bus lock. Misses are cached
// too — a mutant polling a mutated, unmapped port would otherwise pay
// a full mapping scan twice per access (Resolve, then the generic
// read). Like the pinned constant-port handles, entries stay valid
// because each compiled program runs against one bus whose mappings
// are fixed at attach time.
type portCache struct {
	ports   [4]hw.Port
	handles [4]*hw.PortHandle
	n       int
}

func (pc *portCache) get(st *state, p hw.Port) *hw.PortHandle {
	for i := 0; i < pc.n; i++ {
		if pc.ports[i] == p {
			return pc.handles[i]
		}
	}
	h := st.bus.Resolve(p)
	if pc.n < len(pc.ports) {
		pc.ports[pc.n] = p
		pc.handles[pc.n] = h
		pc.n++
	}
	return h
}

// fusedRead emits the port-input closure for a fused port operand: no
// argument closure call, and a compile-time-constant port resolves its
// handle once and pins it — the port can never change, so the
// per-access compare is gone too. Macro-constant ports keep their
// declsReady/depth guards inline, deferring to evalFused (and the
// generic bus path) in the init-time-only slow case.
func (c *compiler) fusedRead(o fop, line int, width hw.AccessWidth) exprFn {
	add := !c.skipCov(line)
	pl := c.covLine(o.useLine, line)
	if o.slot >= 0 {
		slot := o.slot
		var cache portCache
		return covWrap(add, line, func(st *state, fr []Value) (Value, error) {
			if pl >= 0 {
				st.cov.Add(pl)
			}
			p := hw.Port(fr[slot].I)
			if ch := cache.get(st, p); ch != nil {
				v, err := ch.Read(width)
				return intValue(int64(v)), err
			}
			v, err := st.bus.Read(p, width)
			return intValue(int64(v)), err
		})
	}
	port := hw.Port(o.v)
	bodyLine := o.bodyLine
	guarded := o.guarded
	var ch *hw.PortHandle
	var tried bool
	return covWrap(add, line, func(st *state, fr []Value) (Value, error) {
		if pl >= 0 {
			st.cov.Add(pl)
		}
		if guarded {
			if o.ord >= st.declsReady || st.depth >= maxCallDepth {
				a, err := evalFused(st, fr, &o)
				if err != nil {
					return voidValue, err
				}
				v, err := st.bus.Read(hw.Port(a), width)
				return intValue(int64(v)), err
			}
			st.cov.Add(bodyLine)
		}
		if !tried {
			tried, ch = true, st.bus.Resolve(port)
		}
		if ch == nil {
			v, err := st.bus.Read(port, width)
			return intValue(int64(v)), err
		}
		v, err := ch.Read(width)
		return intValue(int64(v)), err
	})
}

// maskedRead fuses the full poll-loop condition shape
// `in*(port) OP mask` — a read builtin with a fusable port operand,
// combined with a fusable mask through a pure integer operator — into
// one closure: no call-closure hop, no boxed intermediate value. The
// compile-time resolution rules of call() apply unchanged (driver
// functions shadow builtins, only exact-arity reads qualify), and the
// coverage/guard order matches the split closures it replaces exactly:
// binary line, call line, port use line, port read, mask use line,
// mask guards. Returns nil whenever any piece falls outside the shape.
func (c *compiler) maskedRead(op ctoken.Kind, line int, call *cast.CallExpr, yo fop) exprFn {
	if !c.fuse {
		return nil
	}
	f := intBinOp(op)
	if f == nil {
		return nil
	}
	if _, isFunc := c.funcIdx[call.Name]; isFunc {
		return nil
	}
	var width hw.AccessWidth
	switch call.Name {
	case "inb":
		width = hw.Width8
	case "inw":
		width = hw.Width16
	case "inl":
		width = hw.Width32
	default:
		return nil
	}
	if len(call.Args) != 1 {
		return nil
	}
	po, pok := c.fuseOperand(call.Args[0])
	if !pok {
		return nil
	}
	c.stats.BatchedIO++
	add := !c.skipCov(line)
	callLine := c.line(call.Pos())
	cl := c.covLine(callLine, line)
	pl := c.covLine(po.useLine, callLine)
	ml := c.covLine(yo.useLine, line)
	var cache portCache
	var ch *hw.PortHandle
	var tried bool
	return covWrap(add, line, func(st *state, fr []Value) (Value, error) {
		if cl >= 0 {
			st.cov.Add(cl)
		}
		if pl >= 0 {
			st.cov.Add(pl)
		}
		var v uint32
		var err error
		switch {
		case po.slot >= 0:
			p := hw.Port(fr[po.slot].I)
			if h := cache.get(st, p); h != nil {
				v, err = h.Read(width)
			} else {
				v, err = st.bus.Read(p, width)
			}
		case po.guarded && (po.ord >= st.declsReady || st.depth >= maxCallDepth):
			var a int64
			if a, err = evalFused(st, fr, &po); err != nil {
				return voidValue, err
			}
			v, err = st.bus.Read(hw.Port(a), width)
		default:
			if po.guarded {
				st.cov.Add(po.bodyLine)
			}
			if !tried {
				tried, ch = true, st.bus.Resolve(hw.Port(po.v))
			}
			if ch != nil {
				v, err = ch.Read(width)
			} else {
				v, err = st.bus.Read(hw.Port(po.v), width)
			}
		}
		if err != nil {
			return voidValue, err
		}
		if ml >= 0 {
			st.cov.Add(ml)
		}
		b := yo.v
		if yo.slot >= 0 {
			b = fr[yo.slot].I
		} else if yo.guarded {
			if yo.ord >= st.declsReady || st.depth >= maxCallDepth {
				if b, err = evalFused(st, fr, &yo); err != nil {
					return voidValue, err
				}
				return intValue(f(int64(v), b)), nil
			}
			st.cov.Add(yo.bodyLine)
		}
		return intValue(f(int64(v), b)), nil
	})
}

// fusedWrite is fusedRead's output twin: the value still evaluates
// through its compiled closure (it is rarely a constant), the fused
// port operand is inlined.
func (c *compiler) fusedWrite(vf exprFn, o fop, line int, width hw.AccessWidth) exprFn {
	add := !c.skipCov(line)
	pl := c.covLine(o.useLine, line)
	if o.slot >= 0 {
		slot := o.slot
		var cache portCache
		return covWrap(add, line, func(st *state, fr []Value) (Value, error) {
			v, err := vf(st, fr)
			if err != nil {
				return voidValue, err
			}
			if pl >= 0 {
				st.cov.Add(pl)
			}
			p := hw.Port(fr[slot].I)
			if ch := cache.get(st, p); ch != nil {
				return voidValue, ch.Write(width, uint32(v.I))
			}
			return voidValue, st.bus.Write(p, width, uint32(v.I))
		})
	}
	port := hw.Port(o.v)
	bodyLine := o.bodyLine
	guarded := o.guarded
	var ch *hw.PortHandle
	var tried bool
	return covWrap(add, line, func(st *state, fr []Value) (Value, error) {
		v, err := vf(st, fr)
		if err != nil {
			return voidValue, err
		}
		if pl >= 0 {
			st.cov.Add(pl)
		}
		if guarded {
			if o.ord >= st.declsReady || st.depth >= maxCallDepth {
				a, err := evalFused(st, fr, &o)
				if err != nil {
					return voidValue, err
				}
				return voidValue, st.bus.Write(hw.Port(a), width, uint32(v.I))
			}
			st.cov.Add(bodyLine)
		}
		if !tried {
			tried, ch = true, st.bus.Resolve(port)
		}
		if ch == nil {
			return voidValue, st.bus.Write(port, width, uint32(v.I))
		}
		return voidValue, ch.Write(width, uint32(v.I))
	})
}

// builtin resolves a non-driver call at compile time: kernel builtins,
// the Devil stub surface, or the undefined-function fault.
func (c *compiler) builtin(x *cast.CallExpr) callImpl {
	switch x.Name {
	case "inb", "inw", "inl", "outb", "outw", "outl":
		// A wrong-arity I/O call (a mutant artefact) stays on the
		// generic bus path — count the site so the fallback rate is
		// observable.
		if c.fuse {
			c.stats.FallbackIO++
		}
	}
	switch x.Name {
	case "inb":
		return func(st *state, args []Value) (Value, error) {
			v, err := st.bus.Read(hw.Port(argI(args, 0)), hw.Width8)
			return intValue(int64(v)), err
		}
	case "inw":
		return func(st *state, args []Value) (Value, error) {
			v, err := st.bus.Read(hw.Port(argI(args, 0)), hw.Width16)
			return intValue(int64(v)), err
		}
	case "inl":
		return func(st *state, args []Value) (Value, error) {
			v, err := st.bus.Read(hw.Port(argI(args, 0)), hw.Width32)
			return intValue(int64(v)), err
		}
	case "outb":
		return func(st *state, args []Value) (Value, error) {
			return voidValue, st.bus.Write(hw.Port(argI(args, 1)), hw.Width8, uint32(argI(args, 0)))
		}
	case "outw":
		return func(st *state, args []Value) (Value, error) {
			return voidValue, st.bus.Write(hw.Port(argI(args, 1)), hw.Width16, uint32(argI(args, 0)))
		}
	case "outl":
		return func(st *state, args []Value) (Value, error) {
			return voidValue, st.bus.Write(hw.Port(argI(args, 1)), hw.Width32, uint32(argI(args, 0)))
		}
	case "panic":
		namePos := x.NamePos
		return func(st *state, args []Value) (Value, error) {
			msg := "panic"
			if len(args) > 0 && args[0].Kind == cinterp.ValString {
				msg = args[0].S
			}
			return voidValue, st.kern.Panic(fmt.Sprintf("%s (at %s)", msg, namePos))
		}
	case "printk":
		return func(st *state, args []Value) (Value, error) {
			st.kern.Printk(cinterp.FormatPrintk(args))
			return voidValue, nil
		}
	case "udelay":
		return func(st *state, args []Value) (Value, error) {
			return voidValue, st.kern.Delay(argI(args, 0))
		}
	case "kbuf_read8":
		return func(st *state, args []Value) (Value, error) {
			v, err := st.kern.BufRead8(argI(args, 0))
			return intValue(int64(v)), err
		}
	case "kbuf_write8":
		return func(st *state, args []Value) (Value, error) {
			return voidValue, st.kern.BufWrite8(argI(args, 0), uint8(argI(args, 1)))
		}
	case "kbuf_read16":
		return func(st *state, args []Value) (Value, error) {
			v, err := st.kern.BufRead16(argI(args, 0))
			return intValue(int64(v)), err
		}
	case "kbuf_write16":
		return func(st *state, args []Value) (Value, error) {
			return voidValue, st.kern.BufWrite16(argI(args, 0), uint16(argI(args, 1)))
		}
	case "dil_eq":
		return func(st *state, args []Value) (Value, error) {
			if st.stubs == nil || len(args) != 2 {
				return voidValue, &kernel.CrashError{Cause: fmt.Errorf("dil_eq without stubs")}
			}
			eq, err := st.stubs.Eq(toDevil(args[0]), toDevil(args[1]))
			if err != nil {
				return voidValue, err
			}
			if eq {
				return intValue(1), nil
			}
			return intValue(0), nil
		}
	}
	if c.stubs != nil {
		if impl := c.stubCall(x); impl != nil {
			return impl
		}
	}
	return c.undefinedCall(x)
}

func toDevil(v Value) codegen.Value {
	if v.Kind == cinterp.ValDevil {
		return v.Devil
	}
	return codegen.UntypedInt(v.I)
}

func (c *compiler) undefinedCall(x *cast.CallExpr) callImpl {
	name, pos := x.Name, x.NamePos
	return func(st *state, args []Value) (Value, error) {
		return voidValue, &kernel.CrashError{
			Cause: fmt.Errorf("call to undefined function %q at %s", name, pos),
		}
	}
}

// stubCall resolves a get_X/set_X/get_block_X/set_block_X call to an
// indexed accessor dispatch, replacing the interpreter's per-call string
// prefix matching and stub-table lookups. Returns nil when the name does
// not resolve to a stub (the undefined-function fault applies).
func (c *compiler) stubCall(x *cast.CallExpr) callImpl {
	name := x.Name
	switch {
	case strings.HasPrefix(name, "get_block_"), strings.HasPrefix(name, "set_block_"):
		reading := strings.HasPrefix(name, "get_block_")
		varName := strings.TrimPrefix(strings.TrimPrefix(name, "get_block_"), "set_block_")
		sig, ok := c.varSigs[varName]
		if !ok || !sig.Block {
			return nil
		}
		acc, ok := c.stubs.Accessor(varName)
		if !ok {
			return nil
		}
		return c.blockCall(name, varName, reading, sig, acc)

	case strings.HasPrefix(name, "get_"):
		varName := name[len("get_"):]
		sig, ok := c.varSigs[varName]
		if !ok {
			return nil
		}
		acc, aok := c.stubs.Accessor(varName)
		if !aok {
			return nil
		}
		if !acc.Readable() {
			return modeFaultImpl(varName, acc)
		}
		switch {
		case sig.Kind == codegen.KindEnum:
			return func(st *state, args []Value) (Value, error) {
				dv, err := acc.Get()
				if err != nil {
					return voidValue, err
				}
				return Value{Kind: cinterp.ValDevil, Devil: dv}, nil
			}
		case sig.Kind == codegen.KindSignedInt && sig.Width > 0 && sig.Width < 64:
			shift := uint(64 - sig.Width)
			return func(st *state, args []Value) (Value, error) {
				dv, err := acc.Get()
				if err != nil {
					return voidValue, err
				}
				// Sign-extend the raw field.
				return intValue(int64(dv.Val) << shift >> shift), nil
			}
		default:
			return func(st *state, args []Value) (Value, error) {
				dv, err := acc.Get()
				if err != nil {
					return voidValue, err
				}
				return intValue(int64(dv.Val)), nil
			}
		}

	case strings.HasPrefix(name, "set_"):
		varName := name[len("set_"):]
		if _, ok := c.varSigs[varName]; !ok {
			return nil
		}
		acc, aok := c.stubs.Accessor(varName)
		if !aok {
			return nil
		}
		if !acc.Writable() {
			return modeFaultImpl(varName, acc)
		}
		return func(st *state, args []Value) (Value, error) {
			var dv codegen.Value
			if len(args) == 1 && args[0].Kind == cinterp.ValDevil {
				dv = args[0].Devil
			} else if len(args) == 1 {
				dv = codegen.UntypedInt(args[0].I)
			}
			return voidValue, acc.Set(dv)
		}
	}
	return nil
}

// modeFaultImpl reproduces the Get/Set access-mode fault of a stub whose
// direction the call does not have ("device variable X is write-only").
func modeFaultImpl(varName string, acc *codegen.Accessor) callImpl {
	mode := acc.ModeString()
	return func(st *state, args []Value) (Value, error) {
		return voidValue, fmt.Errorf("device variable %s is %s", varName, mode)
	}
}

// blockCall compiles the FIFO block-transfer stubs with the exact
// element loop of the interpreter: one watchdog step per element, the
// same buffer access pattern, the same fault order.
func (c *compiler) blockCall(name, varName string, reading bool,
	sig codegen.VarSig, acc *codegen.Accessor) callImpl {
	elem := int64(sig.Width / 8)
	canRead, canWrite := acc.Readable(), acc.Writable()
	mode := acc.ModeString()
	return func(st *state, args []Value) (Value, error) {
		if len(args) != 2 {
			return voidValue, &kernel.CrashError{
				Cause: fmt.Errorf("%s: wrong argument count", name),
			}
		}
		off, count := args[0].I, args[1].I
		for k := int64(0); k < count; k++ {
			if err := st.kern.Step(); err != nil {
				return voidValue, err
			}
			byteOff := off + k*elem
			if reading {
				if !canRead {
					return voidValue, fmt.Errorf("device variable %s is %s", varName, mode)
				}
				dv, err := acc.Get()
				if err != nil {
					return voidValue, err
				}
				var werr error
				if elem == 2 {
					werr = st.kern.BufWrite16(byteOff, uint16(dv.Val))
				} else {
					if werr = st.kern.BufWrite16(byteOff, uint16(dv.Val)); werr == nil {
						werr = st.kern.BufWrite16(byteOff+2, uint16(dv.Val>>16))
					}
				}
				if werr != nil {
					return voidValue, werr
				}
				continue
			}
			var val uint32
			if elem == 2 {
				w, err := st.kern.BufRead16(byteOff)
				if err != nil {
					return voidValue, err
				}
				val = uint32(w)
			} else {
				lo, err := st.kern.BufRead16(byteOff)
				if err != nil {
					return voidValue, err
				}
				hi, err := st.kern.BufRead16(byteOff + 2)
				if err != nil {
					return voidValue, err
				}
				val = uint32(lo) | uint32(hi)<<16
			}
			if !canWrite {
				return voidValue, fmt.Errorf("device variable %s is %s", varName, mode)
			}
			if err := acc.Set(codegen.UntypedInt(int64(val))); err != nil {
				return voidValue, err
			}
		}
		return voidValue, nil
	}
}
