package busmouse_test

import (
	"testing"
	"testing/quick"

	"repro/internal/hw"
	"repro/internal/hw/busmouse"
)

func newRig(t *testing.T) (*hw.Bus, *busmouse.Mouse) {
	t.Helper()
	bus := hw.NewBus()
	m := busmouse.New()
	if err := bus.Map(0x23c, 4, m); err != nil {
		t.Fatal(err)
	}
	return bus, m
}

// readNibble selects index n via the control port and reads the data port.
func readNibble(t *testing.T, bus *hw.Bus, idx uint8) uint8 {
	t.Helper()
	// Bit 7 is forced to 1 on control writes per the mask '1..00000'.
	if err := bus.Out8(0x23e, 0x80|idx<<5); err != nil {
		t.Fatal(err)
	}
	v, err := bus.In8(0x23c)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestSignatureRegister(t *testing.T) {
	bus, _ := newRig(t)
	if err := bus.Out8(0x23d, 0x5a); err != nil {
		t.Fatal(err)
	}
	v, err := bus.In8(0x23d)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0x5a {
		t.Errorf("signature readback = %#x, want 0x5a", v)
	}
}

func TestMotionReadout(t *testing.T) {
	bus, m := newRig(t)
	m.Move(-3, 17)
	m.SetButtons(0b101)

	xl := readNibble(t, bus, 0) & 0x0f
	xh := readNibble(t, bus, 1) & 0x0f
	yl := readNibble(t, bus, 2) & 0x0f
	yhRaw := readNibble(t, bus, 3)
	yh := yhRaw & 0x0f
	buttons := yhRaw >> 5

	dx := int8(xh<<4 | xl)
	dy := int8(yh<<4 | yl)
	if dx != -3 || dy != 17 {
		t.Errorf("motion = (%d, %d), want (-3, 17)", dx, dy)
	}
	if buttons != 0b101 {
		t.Errorf("buttons = %03b, want 101", buttons)
	}
}

func TestCountersAccumulateAcrossSamples(t *testing.T) {
	bus, m := newRig(t)
	m.Move(5, 5)
	_ = readNibble(t, bus, 0)
	_ = readNibble(t, bus, 3)
	m.Move(2, 0)
	// The counters accumulate; drivers read cumulative motion and the
	// host tracks deltas (keeps index-order differences between driver
	// styles immaterial).
	if got := readNibble(t, bus, 0) & 0x0f; got != 7 {
		t.Errorf("x low after second move = %d, want 7", got)
	}
}

func TestMotionSaturates(t *testing.T) {
	bus, m := newRig(t)
	m.Move(1000, -1000)
	xl := readNibbleRaw(t, bus, 0)
	xh := readNibbleRaw(t, bus, 1)
	if dx := int8(xh<<4 | xl); dx != 127 {
		t.Errorf("saturated dx = %d, want 127", dx)
	}
	yl := readNibbleRaw(t, bus, 2)
	yh := readNibbleRaw(t, bus, 3)
	if dy := int8(yh<<4 | yl); dy != -128 {
		t.Errorf("saturated dy = %d, want -128", dy)
	}
}

func readNibbleRaw(t *testing.T, bus *hw.Bus, idx uint8) uint8 {
	t.Helper()
	if err := bus.Out8(0x23e, 0x80|idx<<5); err != nil {
		t.Fatal(err)
	}
	v, err := bus.In8(0x23c)
	if err != nil {
		t.Fatal(err)
	}
	return v & 0x0f
}

// TestMotionRoundTrip property: any in-range motion reads back exactly.
func TestMotionRoundTrip(t *testing.T) {
	prop := func(dx, dy int8, buttons uint8) bool {
		bus, m := newRig(t)
		m.Move(int(dx), int(dy))
		m.SetButtons(buttons)
		xl := readNibbleRaw(t, bus, 0)
		xh := readNibbleRaw(t, bus, 1)
		yl := readNibbleRaw(t, bus, 2)
		if err := bus.Out8(0x23e, 0x80|3<<5); err != nil {
			return false
		}
		yhRaw, err := bus.In8(0x23c)
		if err != nil {
			return false
		}
		gotDx := int8(xh<<4 | xl)
		gotDy := int8(yhRaw&0x0f<<4 | yl)
		return gotDx == dx && gotDy == dy && yhRaw>>5 == buttons&0x07
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestInterruptAndConfig(t *testing.T) {
	bus, m := newRig(t)
	if err := bus.Out8(0x23e, 0x90); err != nil { // bit4 = 1: disable
		t.Fatal(err)
	}
	if m.InterruptsEnabled() {
		t.Error("interrupts should be disabled")
	}
	if err := bus.Out8(0x23f, 0x91); err != nil {
		t.Fatal(err)
	}
	if m.Config() != 0x91 {
		t.Errorf("config = %#x, want 0x91", m.Config())
	}
	// Control and config are write-only: reads float.
	if v, _ := bus.In8(0x23e); v != 0xff {
		t.Errorf("write-only register read = %#x, want 0xff", v)
	}
}
