package campaign

import (
	"sort"
	"sync"
	"time"
)

// Snapshot is the one status shape every surface renders: the /status
// JSON endpoint, the `driverlab campaign status` view, and the run
// progress line all read from this type, so they cannot drift apart.
// Live snapshots come from a StatusTracker attached to a running
// engine; offline snapshots are reconstructed from a store's records
// by SnapshotFromRecords (rates, ETA and worker count are then zero —
// a store does not record time).
type Snapshot struct {
	Name        string `json:"name"`
	Fingerprint string `json:"fingerprint,omitempty"`
	// Live distinguishes a running campaign's snapshot from an offline
	// store reconstruction.
	Live       bool    `json:"live"`
	Workers    int     `json:"workers,omitempty"`
	ElapsedSec float64 `json:"elapsed_s,omitempty"`

	// Total is the number of selected tasks; Recorded how many have a
	// result (Ran booted + Deduped copied + Skipped already stored +
	// Panics quarantined).
	Total    int `json:"total"`
	Recorded int `json:"recorded"`
	Ran      int `json:"ran"`
	Deduped  int `json:"deduped"`
	Skipped  int `json:"skipped"`
	// Panics counts quarantined harness panics: the boot blew up in the
	// harness, was recovered and recorded as RowHarnessPanic.
	Panics int `json:"panics,omitempty"`

	// BootsPerSec is Ran over elapsed time; ETASec extrapolates the
	// remaining tasks at that rate. Both are zero offline.
	BootsPerSec float64 `json:"boots_per_s,omitempty"`
	ETASec      float64 `json:"eta_s,omitempty"`

	// Fleet, when non-nil, is the coordinator's slice of the snapshot:
	// lease and protocol counters a single-process run does not have.
	Fleet *FleetStatus `json:"fleet,omitempty"`

	// Outcomes histograms every recorded result by outcome row.
	Outcomes map[string]int `json:"outcomes,omitempty"`
	// Drivers breaks progress down per driver, in plan order.
	Drivers []DriverStatus `json:"drivers,omitempty"`
	// Shards breaks progress down per shard index, ascending.
	Shards []ShardStatus `json:"shards,omitempty"`
}

// FleetStatus is a fleet coordinator's slice of a Snapshot: how the
// shard leases and the wire protocol are doing. It exists in this
// package (not in campaign/fleet) so Snapshot stays the one status
// shape every surface — /status JSON, `campaign status`, progress line
// — renders.
type FleetStatus struct {
	// Workers is the number of currently connected fleet workers.
	Workers int `json:"workers"`
	// ShardsTotal/ShardsComplete/ShardsLeased partition the campaign's
	// shard count by lease state (pending shards are the remainder).
	ShardsTotal    int `json:"shards_total"`
	ShardsComplete int `json:"shards_complete"`
	ShardsLeased   int `json:"shards_leased"`
	// Leases counts grants handed out; Releases counts leases returned
	// to the pending queue (worker disconnect, heartbeat lapse, or an
	// incomplete done), i.e. re-leased work.
	Leases   int64 `json:"leases"`
	Releases int64 `json:"releases"`
	// RejectedFrames counts protocol offenses (torn/oversized/unknown
	// frames, handshake violations); StaleRecords counts result records
	// that arrived for a task the store already held — the harmless
	// residue of a re-leased shard.
	RejectedFrames int64 `json:"rejected_frames"`
	StaleRecords   int64 `json:"stale_records"`
}

// DriverStatus is one matrix cell's slice of a Snapshot; Driver is the
// cell label ("driver" or "driver@scenario").
type DriverStatus struct {
	Driver      string  `json:"driver"`
	Selected    int     `json:"selected"`
	Recorded    int     `json:"recorded"`
	Ran         int     `json:"ran"`
	BootsPerSec float64 `json:"boots_per_s,omitempty"`
}

// ShardStatus is one shard's slice of a Snapshot. Planned is zero in
// offline snapshots of stores that never saw this run's shard plan.
type ShardStatus struct {
	Shard    int `json:"shard"`
	Planned  int `json:"planned,omitempty"`
	Recorded int `json:"recorded"`
}

// Percent returns recorded progress as a percentage (0 when nothing is
// planned).
func (s *Snapshot) Percent() float64 {
	if s.Total == 0 {
		return 0
	}
	return 100 * float64(s.Recorded) / float64(s.Total)
}

// StatusTracker accumulates a running campaign's progress and serves
// point-in-time Snapshots — the engine writes to it, the HTTP /status
// handler and the progress printer read from it concurrently. A nil
// tracker is the disabled tracker; the engine's calls are guarded.
type StatusTracker struct {
	mu          sync.Mutex
	started     bool
	start       time.Time
	name        string
	fingerprint string
	workers     int

	total   int
	ran     int
	deduped int
	skipped int
	panics  int

	outcomes map[string]int
	drivers  map[string]*driverProgress
	order    []string
	shards   map[int]*shardProgress
}

type driverProgress struct {
	selected int
	recorded int
	ran      int
}

type shardProgress struct {
	planned  int
	recorded int
}

// NewStatusTracker returns an empty tracker, ready to hand to
// Options.Status and to a status server.
func NewStatusTracker() *StatusTracker {
	return &StatusTracker{
		outcomes: make(map[string]int),
		drivers:  make(map[string]*driverProgress),
		shards:   make(map[int]*shardProgress),
	}
}

// Begin stamps the campaign identity and the clock. Idempotent so a
// resume loop can reuse one tracker. The engine calls it per Run; a
// fleet coordinator calls it once at startup (with a zero worker count
// that SetWorkers then follows the fleet with).
func (t *StatusTracker) Begin(name, fingerprint string, workers int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.name, t.fingerprint, t.workers = name, fingerprint, workers
	if !t.started {
		t.started = true
		t.start = time.Now()
	}
}

// SetWorkers updates the live worker count — the fleet coordinator's
// connected-worker gauge, where the pool size is not fixed at Begin.
func (t *StatusTracker) SetWorkers(n int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.workers = n
}

// Plan registers one selected task before any results flow.
func (t *StatusTracker) Plan(driver string, shard int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.total++
	t.driverLocked(driver).selected++
	t.shardLocked(shard).planned++
}

// RecordKind distinguishes how a result was obtained.
type RecordKind int

// The four ways a result reaches a store: booted in this run, copied
// from an identical mutant's outcome, already stored before the run,
// or quarantined after a harness panic.
const (
	RecordRan RecordKind = iota
	RecordDedup
	RecordSkip
	RecordPanic
)

// KindOfRecord classifies a result record the way the tracker counts
// it: dedup copies and quarantined panics are distinguished by their
// provenance fields, everything else counts as a boot. Skips are a
// run-local notion (the store already held the record when the run
// started), so streamed records never classify as RecordSkip.
func KindOfRecord(r Record) RecordKind {
	switch {
	case r.HarnessPanic:
		return RecordPanic
	case r.DedupOf != nil:
		return RecordDedup
	default:
		return RecordRan
	}
}

// Record registers one recorded result.
func (t *StatusTracker) Record(driver string, shard int, row string, kind RecordKind) {
	t.mu.Lock()
	defer t.mu.Unlock()
	switch kind {
	case RecordRan:
		t.ran++
		t.driverLocked(driver).ran++
	case RecordDedup:
		t.deduped++
	case RecordSkip:
		t.skipped++
	case RecordPanic:
		t.panics++
	}
	t.outcomes[row]++
	t.driverLocked(driver).recorded++
	t.shardLocked(shard).recorded++
}

func (t *StatusTracker) driverLocked(driver string) *driverProgress {
	d, ok := t.drivers[driver]
	if !ok {
		d = &driverProgress{}
		t.drivers[driver] = d
		t.order = append(t.order, driver)
	}
	return d
}

func (t *StatusTracker) shardLocked(shard int) *shardProgress {
	s, ok := t.shards[shard]
	if !ok {
		s = &shardProgress{}
		t.shards[shard] = s
	}
	return s
}

// Snapshot returns a point-in-time copy of the tracker's state with
// derived rates and ETA filled in.
func (t *StatusTracker) Snapshot() Snapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := Snapshot{
		Name:        t.name,
		Fingerprint: t.fingerprint,
		Live:        true,
		Workers:     t.workers,
		Total:       t.total,
		Ran:         t.ran,
		Deduped:     t.deduped,
		Skipped:     t.skipped,
		Panics:      t.panics,
		Recorded:    t.ran + t.deduped + t.skipped + t.panics,
	}
	var elapsed float64
	if t.started {
		elapsed = time.Since(t.start).Seconds()
		s.ElapsedSec = elapsed
	}
	if elapsed > 0 && t.ran > 0 {
		s.BootsPerSec = float64(t.ran) / elapsed
		if remaining := t.total - s.Recorded; remaining > 0 {
			s.ETASec = float64(remaining) / s.BootsPerSec
		}
	}
	if len(t.outcomes) > 0 {
		s.Outcomes = make(map[string]int, len(t.outcomes))
		for row, n := range t.outcomes {
			s.Outcomes[row] = n
		}
	}
	for _, name := range t.order {
		d := t.drivers[name]
		ds := DriverStatus{Driver: name, Selected: d.selected, Recorded: d.recorded, Ran: d.ran}
		if elapsed > 0 && d.ran > 0 {
			ds.BootsPerSec = float64(d.ran) / elapsed
		}
		s.Drivers = append(s.Drivers, ds)
	}
	for sh, p := range t.shards {
		s.Shards = append(s.Shards, ShardStatus{Shard: sh, Planned: p.planned, Recorded: p.recorded})
	}
	sort.Slice(s.Shards, func(i, j int) bool { return s.Shards[i].Shard < s.Shards[j].Shard })
	return s
}

// SnapshotFromRecords reconstructs a Snapshot offline from a store's
// records — the `campaign status <store>` path. Total comes from the
// meta records' selection counts (the whole campaign, not any single
// run's shard selection), Recorded from deduplicated results; rates,
// ETA, per-run skip counts and worker counts are unknowable offline
// and left zero.
func SnapshotFromRecords(records []Record) *Snapshot {
	s := &Snapshot{Outcomes: make(map[string]int)}
	type driverAgg struct {
		selected int
		hasMeta  bool
		prog     driverProgress
	}
	drivers := make(map[string]*driverAgg)
	var order []string
	agg := func(driver string) *driverAgg {
		d, ok := drivers[driver]
		if !ok {
			d = &driverAgg{}
			drivers[driver] = d
			order = append(order, driver)
		}
		return d
	}
	shards := make(map[int]*shardProgress)
	seen := make(map[string]bool)
	for _, r := range records {
		switch r.Kind {
		case KindSpec:
			if r.Spec != nil {
				s.Name = r.Spec.Name
			}
			s.Fingerprint = r.Fingerprint
		case KindMeta:
			d := agg(CellLabel(r.Driver, r.Scenario))
			d.selected = r.Selected
			d.hasMeta = true
		case KindResult:
			key := recordKey(r)
			if seen[key] {
				continue
			}
			seen[key] = true
			d := agg(CellLabel(r.Driver, r.Scenario))
			d.prog.recorded++
			switch {
			case r.HarnessPanic:
				s.Panics++
			case r.DedupOf != nil:
				s.Deduped++
			default:
				s.Ran++
				d.prog.ran++
			}
			s.Outcomes[r.Row]++
			sh, ok := shards[r.Shard]
			if !ok {
				sh = &shardProgress{}
				shards[r.Shard] = sh
			}
			sh.recorded++
		}
	}
	s.Recorded = s.Ran + s.Deduped + s.Panics
	for _, name := range order {
		d := drivers[name]
		ds := DriverStatus{Driver: name, Recorded: d.prog.recorded, Ran: d.prog.ran}
		if d.hasMeta {
			ds.Selected = d.selected
			s.Total += d.selected
		}
		s.Drivers = append(s.Drivers, ds)
	}
	for sh, p := range shards {
		s.Shards = append(s.Shards, ShardStatus{Shard: sh, Recorded: p.recorded})
	}
	sort.Slice(s.Shards, func(i, j int) bool { return s.Shards[i].Shard < s.Shards[j].Shard })
	if len(s.Outcomes) == 0 {
		s.Outcomes = nil
	}
	return s
}
