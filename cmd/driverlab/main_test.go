package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/drivers"
	"repro/internal/experiment"
)

// TestFastPaths exercises the non-mutation paths of the CLI (the mutation
// tables are covered by the experiment package and the benchmarks).
func TestFastPaths(t *testing.T) {
	for _, args := range [][]string{
		{"-table", "1"},
		{"-figure", "1"},
		{"-figure", "3"},
		{"-figure", "4"},
	} {
		if err := run(args); err != nil {
			t.Errorf("driverlab %v: %v", args, err)
		}
	}
}

// TestAdvertisedTables runs every value the -table help text promises,
// with a minimal sample so the mutation tables stay affordable.
func TestAdvertisedTables(t *testing.T) {
	if testing.Short() {
		t.Skip("full table sweep is not short")
	}
	for _, args := range [][]string{
		{"-table", "1"},
		{"-table", "2"},
		{"-table", "3", "-sample", "1"},
		{"-table", "4", "-sample", "1"},
		{"-table", "5", "-sample", "2"},
		{"-table", "6", "-sample", "1"},
		{"-table", "7", "-sample", "1"},
		{"-table", "8", "-sample", "2"},
		{"-table", "all", "-sample", "1"},
	} {
		if err := run(args); err != nil {
			t.Errorf("driverlab %v: %v", args, err)
		}
	}
}

// TestUsageEnumeratesSurface: the top-level -h banner must name the
// campaign and bench subcommands, every embedded driver, and both
// -backend values — the CLI's whole surface, not just the flag list —
// and asking for help is success, not an error.
func TestUsageEnumeratesSurface(t *testing.T) {
	usage := usageText()
	wants := []string{
		"campaign", "run", "resume", "merge", "report", "bench",
		"compiled", "interp", "BENCH_campaign.json",
	}
	wants = append(wants, drivers.Names()...)
	// Every registered extension pair must appear in the table numbering.
	for _, d := range experiment.Workloads() {
		if d.Name != "ide" {
			wants = append(wants, d.Name+" extension)")
		}
	}
	for _, want := range wants {
		if !strings.Contains(usage, want) {
			t.Errorf("usage text does not mention %q", want)
		}
	}
	for _, args := range [][]string{
		{"-h"},
		{"campaign", "run", "-h"},
		{"bench", "-h"},
	} {
		if err := run(args); err != nil {
			t.Errorf("run(%v) = %v, want nil (help is not an error)", args, err)
		}
	}
}

func TestBadFlags(t *testing.T) {
	if err := run([]string{"-figure", "99"}); err == nil {
		t.Error("unknown figure accepted")
	}
	if err := run([]string{"-table", "9"}); err == nil {
		t.Error("table past the registered extensions accepted")
	}
	if err := run([]string{"-table", "busmouse"}); err == nil {
		t.Error("non-numeric table accepted")
	}
	if err := run([]string{"-table", "3", "-backend", "jit"}); err == nil {
		t.Error("unknown backend accepted")
	}
}

// TestBenchCLI runs the throughput bench on a small sample and checks
// the JSON report lands with the advertised fields.
func TestBenchCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("bench is not short")
	}
	dir := t.TempDir()
	out := filepath.Join(dir, "BENCH_campaign.json")
	if err := run([]string{"bench", "-drivers", "busmouse_devil", "-sample", "50",
		"-json", "-out", out}); err != nil {
		t.Fatalf("bench: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("bench report missing: %v", err)
	}
	var rep BenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("bench report is not JSON: %v", err)
	}
	if rep.Bench != "campaign" || rep.Backend != "compiled" {
		t.Errorf("report header = %q/%q, want campaign/compiled", rep.Bench, rep.Backend)
	}
	// The default -frontend both emits one driver row and one total per
	// front end, full first.
	if len(rep.Frontends) != 2 || rep.Frontends[0] != "full" || rep.Frontends[1] != "incremental" {
		t.Errorf("report frontends = %v, want [full incremental]", rep.Frontends)
	}
	if len(rep.Totals) != 2 {
		t.Fatalf("report has %d totals, want one per front end", len(rep.Totals))
	}
	for _, total := range rep.Totals {
		if total.Boots == 0 || total.BootsPerSec <= 0 {
			t.Errorf("report total = %+v, want >0 boots and boots/s", total)
		}
	}
	if err := run([]string{"bench", "-backend", "jit"}); err == nil {
		t.Error("bench with unknown backend accepted")
	}
	if err := run([]string{"bench", "-frontend", "psychic"}); err == nil {
		t.Error("bench with unknown front end accepted")
	}
}

// TestCampaignCLI drives the full campaign lifecycle through the
// subcommand surface: sharded runs into separate stores, merge, report,
// and an idempotent resume.
func TestCampaignCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign CLI test is not short")
	}
	dir := t.TempDir()
	a := filepath.Join(dir, "a.jsonl")
	b := filepath.Join(dir, "b.jsonl")
	m := filepath.Join(dir, "m.jsonl")
	base := []string{"-drivers", "busmouse_c", "-sample", "10", "-seed", "11",
		"-shards", "2", "-quiet"}

	if err := run(append([]string{"campaign", "run", "-store", a, "-shard", "0"}, base...)); err != nil {
		t.Fatalf("campaign run shard 0: %v", err)
	}
	if err := run(append([]string{"campaign", "run", "-store", b, "-shard", "1"}, base...)); err != nil {
		t.Fatalf("campaign run shard 1: %v", err)
	}
	if err := run([]string{"campaign", "merge", "-out", m, a, b}); err != nil {
		t.Fatalf("campaign merge: %v", err)
	}
	if err := run([]string{"campaign", "report", "-store", m}); err != nil {
		t.Fatalf("campaign report: %v", err)
	}
	if err := run([]string{"campaign", "resume", "-store", m, "-quiet"}); err != nil {
		t.Fatalf("campaign resume: %v", err)
	}
}

func TestCampaignCLIErrors(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"campaign"}); err == nil {
		t.Error("missing campaign verb accepted")
	}
	if err := run([]string{"campaign", "destroy"}); err == nil {
		t.Error("unknown campaign verb accepted")
	}
	if err := run([]string{"campaign", "run"}); err == nil {
		t.Error("campaign run without -store accepted")
	}
	if err := run([]string{"campaign", "resume", "-store",
		filepath.Join(dir, "empty.jsonl"), "-quiet"}); err == nil {
		t.Error("resume of an empty store accepted")
	}
	if err := run([]string{"campaign", "merge", "-out", filepath.Join(dir, "out.jsonl")}); err == nil {
		t.Error("merge without inputs accepted")
	}
	if err := run([]string{"campaign", "run", "-store", filepath.Join(dir, "s.jsonl"),
		"-drivers", "busmouse_c", "-sample", "10", "-shards", "2", "-shard", "7", "-quiet"}); err == nil {
		t.Error("out-of-range shard accepted")
	}
	_ = os.Remove(filepath.Join(dir, "s.jsonl"))
}
