/*
 * ide_c.c — traditional hand-written IDE disk driver.
 *
 * Hardware operating code (port numbers, status masks, the four-way LBA
 * split) is marked with the //@hw tags the mutation methodology of the
 * paper requires. Everything the Devil re-engineering would generate is
 * written out by hand here: busy-waits on the status byte, the task-file
 * register protocol, and word-at-a-time PIO through the data port.
 */

//@hw
#define IDE_DATA     0x1f0
#define IDE_ERROR    0x1f1
#define IDE_NSECTOR  0x1f2
#define IDE_SECTOR   0x1f3
#define IDE_LCYL     0x1f4
#define IDE_HCYL     0x1f5
#define IDE_SELECT   0x1f6
#define IDE_STATUS   0x1f7
#define IDE_COMMAND  0x1f7
#define IDE_CONTROL  0x3f6

#define ST_ERROR     0x01
#define ST_DRQ       0x08
#define ST_WFAULT    0x20
#define ST_READY     0x40
#define ST_BUSY      0x80

#define WIN_RESTORE  0x10
#define WIN_READ     0x20
#define WIN_WRITE    0x30
#define WIN_IDENTIFY 0xec

#define SEL_DEFAULT  0xa0
#define SEL_LBA      0xe0

#define CTL_RESET    0x0a
#define CTL_IRQOFF   0x02

#define IDE_TIMEOUT  20000
//@endhw

/* Unbounded wait for the controller to leave the busy phase, exactly as
 * the era's drivers spelled it. */
static void wait_not_busy(void)
{
    //@hw
    while (inb(IDE_STATUS) & ST_BUSY) {
    }
    //@endhw
}

/* Bounded wait for drive-ready; a drive that never comes ready is a
 * configuration error the driver reports. */
static int wait_ready(void)
{
    int t;
    //@hw
    for (t = 0; t < IDE_TIMEOUT; t++) {
        if (inb(IDE_STATUS) & ST_READY)
            return 0;
    }
    //@endhw
    return 1;
}

/* Bounded wait for the data-request phase of a transfer. */
static int wait_drq(void)
{
    int t;
    //@hw
    for (t = 0; t < IDE_TIMEOUT; t++) {
        if (inb(IDE_STATUS) & ST_DRQ)
            return 0;
    }
    //@endhw
    return 1;
}

int ide_init(void)
{
    int i;
    int w;
    //@hw
    outb(CTL_RESET, IDE_CONTROL);
    udelay(50);
    outb(CTL_IRQOFF, IDE_CONTROL);
    wait_not_busy();
    outb(SEL_DEFAULT, IDE_SELECT);
    if (wait_ready()) {
        printk("ide0: drive not ready");
        return 1;
    }
    outb(WIN_IDENTIFY, IDE_COMMAND);
    if (wait_drq()) {
        printk("ide0: identify failed");
        return 1;
    }
    for (i = 0; i < 256; i++) {
        w = inw(IDE_DATA);
        kbuf_write16(i + i, w);
    }
    //@endhw
    printk("ide0: drive identified");
    return 0;
}

int ide_read_sectors(int lba, int count)
{
    int s;
    int i;
    int w;
    //@hw
    wait_not_busy();
    outb(SEL_LBA, IDE_SELECT);
    outb(count, IDE_NSECTOR);
    outb(lba & 0xff, IDE_SECTOR);
    outb((lba >> 8) & 0xff, IDE_LCYL);
    outb((lba >> 16) & 0xff, IDE_HCYL);
    outb(WIN_READ, IDE_COMMAND);
    for (s = 0; s < count; s++) {
        if (wait_drq())
            return 1;
        for (i = 0; i < 256; i++) {
            w = inw(IDE_DATA);
            kbuf_write16((s << 9) + i + i, w);
        }
    }
    //@endhw
    return 0;
}

int ide_write_sectors(int lba, int count)
{
    int s;
    int i;
    int w;
    //@hw
    wait_not_busy();
    outb(SEL_LBA, IDE_SELECT);
    outb(count, IDE_NSECTOR);
    outb(lba & 0xff, IDE_SECTOR);
    outb((lba >> 8) & 0xff, IDE_LCYL);
    outb((lba >> 16) & 0xff, IDE_HCYL);
    outb(WIN_WRITE, IDE_COMMAND);
    for (s = 0; s < count; s++) {
        if (wait_drq())
            return 1;
        for (i = 0; i < 256; i++) {
            w = kbuf_read16((s << 9) + i + i);
            outw(w, IDE_DATA);
        }
    }
    wait_not_busy();
    if (inb(IDE_STATUS) & ST_WFAULT) {
        printk("ide0: write fault");
        return 1;
    }
    if (inb(IDE_STATUS) & ST_ERROR) {
        printk("ide0: write error");
        return 1;
    }
    //@endhw
    return 0;
}
