package experiment

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/drivers"
	"repro/internal/kernel"
)

// TestScenarioRegistryValidation: registration rejects the malformed
// shapes CheckScenario depends on catching early.
func TestScenarioRegistryValidation(t *testing.T) {
	noop := func(param string, d WorkloadDesc) (WorkloadDesc, error) { return d, nil }
	cases := []struct {
		desc ScenarioDesc
		want string
	}{
		{ScenarioDesc{Name: "", Transform: noop}, "empty name"},
		{ScenarioDesc{Name: "a:b", Transform: noop}, "':'"},
		{ScenarioDesc{Name: "no-transform"}, "Transform is required"},
		{ScenarioDesc{Name: "pristine", Transform: noop}, "already registered"},
	}
	for _, c := range cases {
		err := RegisterScenario(c.desc)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("RegisterScenario(%q) = %v, want error containing %q", c.desc.Name, err, c.want)
		}
	}

	// A valid registration round-trips and unregisters cleanly.
	name := "synthetic-scenario-" + t.Name()
	if err := RegisterScenario(ScenarioDesc{Name: name, Help: "h", Transform: noop}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { unregisterScenario(name) })
	if err := CheckScenario(name); err != nil {
		t.Errorf("CheckScenario(%s) = %v", name, err)
	}
	found := false
	for _, d := range Scenarios() {
		if d.Name == name {
			found = true
		}
	}
	if !found {
		t.Error("registered scenario missing from Scenarios()")
	}
}

// TestScenarioParamErrors: the builtin scenarios reject out-of-range and
// non-numeric parameters, pristine rejects any parameter, and an unknown
// scenario name lists what is known.
func TestScenarioParamErrors(t *testing.T) {
	for _, bad := range []string{
		"flaky-bus:0", "flaky-bus:34", "flaky-bus:x", "flaky-bus:-1",
		"timing:0", "timing:4097", "timing:fast",
		"pristine:5",
	} {
		if err := CheckScenario(bad); err == nil {
			t.Errorf("CheckScenario(%q) accepted", bad)
		}
	}
	err := CheckScenario("flaky-buss")
	if err == nil || !strings.Contains(err.Error(), "flaky-bus") {
		t.Errorf("unknown-scenario error %v does not list the known names", err)
	}
	for _, good := range []string{"pristine", "flaky-bus", "flaky-bus:33", "timing", "timing:4096"} {
		if err := CheckScenario(good); err != nil {
			t.Errorf("CheckScenario(%q) = %v", good, err)
		}
	}
}

// TestScenarioRigArming: pristine cells get no injector (byte-for-byte
// the classic rig); flaky-bus and timing cells arm one on both the bus
// and the rig, and distinct cells get distinct rigs while one cell's rig
// is reused.
func TestScenarioRigArming(t *testing.T) {
	rigs := rigSet{}
	pristine, err := rigs.rigFor("busmouse_devil", "")
	if err != nil {
		t.Fatal(err)
	}
	if pristine.Injector != nil || pristine.Scenario != "" {
		t.Error("pristine rig carries an injector")
	}
	alias, err := rigs.rigFor("busmouse_devil", "pristine")
	if err != nil {
		t.Fatal(err)
	}
	if alias.Injector != nil {
		t.Error(`rigFor(driver, "pristine") armed an injector`)
	}

	for _, sc := range []string{"flaky-bus:10", "timing:16"} {
		r, err := rigs.rigFor("busmouse_devil", sc)
		if err != nil {
			t.Fatal(err)
		}
		if r.Injector == nil {
			t.Fatalf("scenario %s rig has no injector", sc)
		}
		if r.Bus.Injector() != r.Injector {
			t.Errorf("scenario %s: bus and rig disagree on the injector", sc)
		}
		if r.Scenario != sc {
			t.Errorf("scenario %s rig labelled %q", sc, r.Scenario)
		}
		if r == pristine {
			t.Errorf("scenario %s shares the pristine rig", sc)
		}
		again, err := rigs.rigFor("busmouse_devil", sc)
		if err != nil {
			t.Fatal(err)
		}
		if again != r {
			t.Errorf("scenario %s cell rebuilt its rig instead of reusing it", sc)
		}
	}
}

// TestScenarioBootDeterminism is the seeding contract behind the whole
// matrix: booting the same mutant stream with the same FaultSeed on a
// fault-injected rig is byte-identical — console, steps, outcome and
// injected-fault counts — while a different seed genuinely changes the
// fault pattern.
func TestScenarioBootDeterminism(t *testing.T) {
	src, err := drivers.Load("busmouse_devil")
	if err != nil {
		t.Fatal(err)
	}
	toks, err := ParseDriver(src.Text)
	if err != nil {
		t.Fatal(err)
	}
	seed := campaign.Task{Driver: "busmouse_devil", Mutant: 12, Scenario: "flaky-bus:25"}.FaultSeed()

	boot := func(seed uint64) (*BootResult, [3]uint64) {
		t.Helper()
		rigs := rigSet{}
		r, err := rigs.rigFor("busmouse_devil", "flaky-bus:25")
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.Boot(BootInput{Tokens: toks, Devil: src.Devil, FaultSeed: seed})
		if err != nil {
			t.Fatal(err)
		}
		drops, dups, stales := r.Injector.Stats()
		return res, [3]uint64{drops, dups, stales}
	}

	a, fa := boot(seed)
	b, fb := boot(seed)
	if !reflect.DeepEqual(a.Console, b.Console) || a.Steps != b.Steps || a.Outcome != b.Outcome {
		t.Errorf("same-seed boots differ: steps %d vs %d, outcome %v vs %v",
			a.Steps, b.Steps, a.Outcome, b.Outcome)
	}
	if fa != fb {
		t.Errorf("same-seed fault counts differ: %v vs %v", fa, fb)
	}
	if fa == [3]uint64{} {
		t.Error("flaky-bus:25 injected no faults at all — the scenario is inert")
	}

	other := campaign.Task{Driver: "busmouse_devil", Mutant: 13, Scenario: "flaky-bus:25"}.FaultSeed()
	_, fc := boot(other)
	if fc == fa {
		t.Logf("note: seeds %d and %d produced identical fault counts %v", seed, other, fa)
	}
}

// TestScenarioWallDeadline: the wall-clock budget is armed per boot and
// a boot that exceeds it dies with a DeadlineError classified as an
// infinite loop, instead of hanging the harness. The driver loops long
// enough to cross the 4096-step deadline-poll interval but stays far
// inside the step watchdog, so the failure can only come from the wall
// clock — the budget is made impossibly small so even one poll trips it.
func TestScenarioWallDeadline(t *testing.T) {
	const loopSource = `
int probe(void)
{
    int i;
    int acc;
    acc = 0;
    for (i = 0; i < 20000; i = i + 1) {
        acc = acc + i;
    }
    return 0;
}
`
	name := "wall-deadline-" + t.Name()
	err := RegisterWorkload(WorkloadDesc{
		Name:    name,
		Drivers: []string{name + "_c"},
		Build:   func(r *Rig) (any, error) { return nil, nil },
		Run: func(r *Rig, ex Engine, res *BootResult) (error, bool) {
			_, err := ex.Call("probe")
			return err, false
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { unregisterWorkload(name) })

	toks, err := ParseDriver(loopSource)
	if err != nil {
		t.Fatal(err)
	}
	rigs := rigSet{}
	r, err := rigs.rigFor(name+"_c", "")
	if err != nil {
		t.Fatal(err)
	}

	// Without a wall budget the loop completes as a clean boot.
	res, err := r.Boot(BootInput{Tokens: toks})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != kernel.OutcomeBoot || res.Steps <= 4096 {
		t.Fatalf("baseline boot: outcome %v after %d steps; the loop must cross the poll interval",
			res.Outcome, res.Steps)
	}

	r.Reset()
	res, err = r.Boot(BootInput{Tokens: toks, WallBudget: 1})
	if err != nil {
		t.Fatal(err)
	}
	var dl *kernel.DeadlineError
	if !errors.As(res.RunErr, &dl) {
		t.Fatalf("1ns wall budget boot ended with %v, want a DeadlineError", res.RunErr)
	}
	if res.Outcome != kernel.OutcomeInfiniteLoop {
		t.Errorf("deadline expiry classified %v, want %v", res.Outcome, kernel.OutcomeInfiniteLoop)
	}
}
