package experiment

import (
	"fmt"
	"testing"

	"repro/internal/campaign"
	"repro/internal/cdriver/cincr"
)

// The differential oracle: the compiled backend and the incremental
// front end exist for throughput, the tree-walking interpreter over a
// full per-mutant recompile for trust. These tests boot generated
// mutants on every backend × front-end combination — through the same
// per-worker machine-reuse pattern the campaign engine uses — and
// require identical observable results: compile-time detection, outcome
// class, terminating error text, console log, covered-line set,
// watchdog step count, and the Table 3/4 row the mutant lands in.

// diffRig reuses one rig per workload per backend × front end through
// the same rigSet pool a campaign worker uses: drivers route through
// the registry, not a name switch.
type diffRig struct {
	backend     Backend
	incremental bool
	// scenario, when non-empty, boots every mutant under the named
	// hardware scenario with the campaign's task-derived fault seed.
	scenario string
	rigs     rigSet
}

func (r *diffRig) boot(t *testing.T, p *driverPlan, driver string, mutantID int) *BootResult {
	t.Helper()
	m := p.res.Mutants[mutantID]
	input := BootInput{
		Devil:   p.src.Devil,
		Budget:  ExperimentBudget,
		Backend: r.backend,
		// The seed a campaign task of this cell would derive — the
		// scenario determinism contract is that THIS seed, not run
		// structure, decides the fault pattern.
		FaultSeed: campaign.Task{Driver: driver, Mutant: mutantID, Scenario: r.scenario}.FaultSeed(),
	}
	if r.incremental {
		if p.incr == nil {
			t.Fatalf("%s: no span analysis for incremental rig", driver)
		}
		input.Mutation = &cincr.Mutation{Src: p.incr, Index: m.TokenIndex, Replacement: m.Replacement}
	} else {
		input.Tokens = p.res.Apply(m)
	}
	if r.rigs == nil {
		r.rigs = make(rigSet)
	}
	rig, err := r.rigs.rigFor(driver, r.scenario)
	if err != nil {
		t.Fatal(err)
	}
	br, err := rig.Boot(input)
	if err != nil {
		t.Fatalf("%s mutant %d (%s): harness error: %v", driver, mutantID, r.backend, err)
	}
	return br
}

func errText(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// diffOne compares every observable of one mutant's two boots.
func diffOne(t *testing.T, driver string, p *driverPlan, id int, interp, comp *BootResult) {
	t.Helper()
	m := p.res.Mutants[id]
	site := p.res.Sites[m.SiteIndex]
	fail := func(field string, iv, cv interface{}) {
		t.Errorf("%s mutant %d (%s): %s divergence:\n  interp:   %v\n  compiled: %v",
			driver, id, m.Description, field, iv, cv)
	}
	if interp.CompileDetected() != comp.CompileDetected() {
		fail("compile detection", interp.CompileErrors, comp.CompileErrors)
		return
	}
	if interp.CompileDetected() {
		if len(interp.CompileErrors) != len(comp.CompileErrors) ||
			errText(interp.CompileErrors[0]) != errText(comp.CompileErrors[0]) {
			fail("compile errors", interp.CompileErrors, comp.CompileErrors)
		}
		return
	}
	if interp.Outcome != comp.Outcome {
		fail("outcome", interp.Outcome, comp.Outcome)
	}
	if errText(interp.RunErr) != errText(comp.RunErr) {
		fail("terminating error", errText(interp.RunErr), errText(comp.RunErr))
	}
	if fmt.Sprint(interp.Console) != fmt.Sprint(comp.Console) {
		fail("console", interp.Console, comp.Console)
	}
	if !interp.Coverage.Equal(comp.Coverage) {
		fail("coverage", interp.Coverage.Slice(), comp.Coverage.Slice())
	}
	if interp.Steps != comp.Steps {
		fail("steps", interp.Steps, comp.Steps)
	}
	if interp.PartitionTableLost != comp.PartitionTableLost {
		fail("partition table", interp.PartitionTableLost, comp.PartitionTableLost)
	}
	if fmt.Sprint(interp.DamagedSectors) != fmt.Sprint(comp.DamagedSectors) {
		fail("damaged sectors", interp.DamagedSectors, comp.DamagedSectors)
	}
	if ir, cr := classifyRow(interp, site), classifyRow(comp, site); ir != cr {
		fail("table row", ir, cr)
	}
}

// TestDifferentialOracle boots generated mutants of every embedded
// driver on every backend × front-end combination, anchored to the
// interpreter over a full recompile (the reference semantics). The
// busmouse, bus-master and CDevil IDE/NE2000/Permedia drivers run their
// full enumerations; the C IDE, C NE2000 and C Permedia drivers (7600+,
// 13800+ and 5100+ mutants, the slowest boots) run seeded samples.
func TestDifferentialOracle(t *testing.T) {
	plans := []struct {
		driver   string
		pct      int // sample percentage (0 = all)
		shortPct int // sample percentage under -short
		scenario string
	}{
		{"busmouse_c", 0, 20, ""},
		{"busmouse_devil", 0, 0, ""},
		{"ide_devil", 0, 10, ""},
		{"ide_c", 8, 2, ""},
		{"ne2000_devil", 0, 5, ""},
		{"ne2000_c", 8, 2, ""},
		{"permedia_devil", 0, 10, ""},
		{"permedia_c", 8, 2, ""},
		{"busmaster_devil", 0, 25, ""},
		{"busmaster_c", 0, 5, ""},
		// The scenario axes: the oracle must hold under injected faults
		// too, because the injector is reseeded per boot from the task
		// identity — both backends and front ends meet the exact same
		// fault pattern at the same access ordinals.
		{"busmouse_c", 0, 20, "flaky-bus:10"},
		{"busmouse_devil", 0, 10, "flaky-bus:10"},
		{"ide_devil", 5, 2, "flaky-bus"},
		{"ne2000_devil", 5, 2, "timing:16"},
		{"ide_c", 2, 1, "timing:8"},
	}
	wl := NewWorkload().(*workload)
	for _, tc := range plans {
		name := tc.driver
		if tc.scenario != "" {
			name += "@" + tc.scenario
		}
		t.Run(name, func(t *testing.T) {
			p, err := wl.plan(tc.driver)
			if err != nil {
				t.Fatal(err)
			}
			pct := tc.pct
			if testing.Short() {
				pct = tc.shortPct
			}
			selected := selectMutants(len(p.res.Mutants), MutationOptions{SamplePct: pct, Seed: 2001})
			ref := &diffRig{backend: BackendInterp, scenario: tc.scenario}
			variants := []struct {
				name string
				rig  *diffRig
			}{
				{"compiled/full", &diffRig{backend: BackendCompiled, scenario: tc.scenario}},
				{"compiled/incremental", &diffRig{backend: BackendCompiled, incremental: true, scenario: tc.scenario}},
				{"block/full", &diffRig{backend: BackendBlock, scenario: tc.scenario}},
				{"block/incremental", &diffRig{backend: BackendBlock, incremental: true, scenario: tc.scenario}},
				{"interp/incremental", &diffRig{backend: BackendInterp, incremental: true, scenario: tc.scenario}},
			}
			for _, id := range selected {
				rb := ref.boot(t, p, tc.driver, id)
				// The reference result aliases pooled buffers that the next
				// boot on the same rig overwrites; the variants use separate
				// rigs, but the reference must survive all three comparisons.
				rb.Console = append([]string(nil), rb.Console...)
				if rb.Coverage != nil {
					rb.Coverage = rb.Coverage.Clone()
				}
				for _, v := range variants {
					vb := v.rig.boot(t, p, tc.driver, id)
					diffOne(t, tc.driver, p, id, rb, vb)
					if t.Failed() {
						t.Fatalf("%s: %s diverged from interp/full at mutant %d",
							tc.driver, v.name, id)
					}
				}
			}
			t.Logf("%s: %d mutants identical on all backend/front-end combinations",
				tc.driver, len(selected))
		})
	}
}

// TestDifferentialTables runs the paper's Table 3 and Table 4 end to end
// through the campaign engine on each backend and requires the rendered
// tables to be byte-identical.
func TestDifferentialTables(t *testing.T) {
	sample := 4
	if testing.Short() {
		sample = 1
	}
	for _, tc := range []struct {
		driver  string
		caption string
	}{
		{"ide_c", "Table 3"},
		{"ide_devil", "Table 4"},
	} {
		opts := MutationOptions{SamplePct: sample, Seed: 2001, Backend: BackendCompiled}
		compiled, err := DriverMutation(tc.driver, opts)
		if err != nil {
			t.Fatal(err)
		}
		opts.Backend = BackendBlock
		block, err := DriverMutation(tc.driver, opts)
		if err != nil {
			t.Fatal(err)
		}
		opts.Backend = BackendInterp
		interp, err := DriverMutation(tc.driver, opts)
		if err != nil {
			t.Fatal(err)
		}
		ct := FormatDriverTable(compiled, tc.caption)
		bt := FormatDriverTable(block, tc.caption)
		it := FormatDriverTable(interp, tc.caption)
		if ct != it {
			t.Errorf("%s differs between backends:\ncompiled:\n%s\ninterp:\n%s", tc.caption, ct, it)
		}
		if bt != it {
			t.Errorf("%s differs between backends:\nblock:\n%s\ninterp:\n%s", tc.caption, bt, it)
		}
	}
}

// TestCampaignBlockBackendSmoke runs a parallel campaign on the block
// backend — under -race in CI, this is the data-race smoke for the
// fused-closure hot path (per-site I/O handle caches, pooled machines)
// across concurrent workers.
func TestCampaignBlockBackendSmoke(t *testing.T) {
	spec := CampaignSpec("busmouse_c", MutationOptions{SamplePct: 30, Seed: 7})
	spec.Backend = "block"
	spec.Shards = 2
	store := campaign.NewMemStore()
	sum, err := campaign.Run(spec, NewWorkload(), store, campaign.Options{Workers: 4})
	if err != nil {
		t.Fatalf("block-backend campaign: %v", err)
	}
	if sum.Ran == 0 {
		t.Fatal("block-backend campaign booted nothing")
	}
}

// TestCampaignBackendField: a campaign spec naming a backend flows it to
// every boot, and an unknown backend is rejected at expansion.
func TestCampaignBackendField(t *testing.T) {
	spec := CampaignSpec("busmouse_devil", MutationOptions{SamplePct: 20, Seed: 5})
	spec.Backend = "interp"
	store := campaign.NewMemStore()
	if _, err := campaign.Run(spec, NewWorkload(), store, campaign.Options{}); err != nil {
		t.Fatalf("interp-backend campaign: %v", err)
	}
	bad := spec
	bad.Backend = "jit"
	if _, _, err := NewWorkload().Expand(bad); err == nil {
		t.Error("unknown backend accepted by Expand")
	}
}
