package ccompile

import (
	"fmt"

	"repro/internal/cdriver/cast"
	"repro/internal/devil/codegen"
	"repro/internal/hw"
	"repro/internal/kernel"
)

// Incr is the incremental compiler: the pristine driver compiled once
// per worker, retaining the compiler tables so a single mutated
// declaration recompiles in place while every other compiled closure is
// reused as-is.
//
// Three properties of the closure representation make this sound:
//
//   - cross-function calls capture stable *cfunc pointers, so swapping a
//     function's compiled body (and slot count) in place redirects every
//     caller without recompiling it;
//   - globals are referenced through slot indices and types that the
//     single-token mutation model cannot change;
//   - macros are the only construct inlined across declaration
//     boundaries, so the compiler records, per macro, exactly which
//     functions and global initialisers inlined it — a mutated macro
//     body recompiles those units and nothing else.
//
// Patch is destructive but reversible: the pristine compiled artefacts
// are snapshotted at construction, and every Patch first restores the
// previous patch, so one Incr serves an entire campaign's worth of
// mutants on one worker.
type Incr struct {
	c    *compiler
	mach *Mach
	proc *Proc

	// inits is the live initialiser list (aliased by proc.inits).
	inits []initStep
	// initDecls is the pristine VarDecl behind each init step.
	initDecls []*cast.VarDecl

	// Pristine snapshots for reverting patches.
	pristineFuncs  []cfunc
	pristineInits  []initStep
	pristineMacros map[string]macroRef

	// Declaration-order lookup tables.
	funcIdxOfOrd map[int]int
	initIdxOfOrd map[int]int

	// Macro-inlining dependencies recorded during the pristine compile.
	macroFuncs map[string][]int
	macroInits map[string][]int

	// Units touched by the current patch, restored on the next one.
	touchedFuncs []int
	touchedInits []int
	patchedMacro string

	// lastPatch is the fusion work of the most recent successful Patch.
	lastPatch BlockStats
}

// NewIncr compiles a checked pristine program against a concrete machine
// and retains everything needed to recompile single declarations. It
// fails only with ErrUnsupported, exactly like Compile; callers then use
// the interpreter for every boot, as the full path would.
func NewIncr(prog *cast.Program, kern *kernel.Kernel, bus *hw.Bus,
	stubs *codegen.Stubs, m *Mach) (*Incr, error) {
	return newIncr(prog, kern, bus, stubs, m, false)
}

// NewIncrBlocks is NewIncr for the block backend: recompiled units get
// the same basic-block fusion and batched port I/O as CompileBlocks, so
// a patched declaration's observables — including step counts — match a
// from-scratch block compile.
func NewIncrBlocks(prog *cast.Program, kern *kernel.Kernel, bus *hw.Bus,
	stubs *codegen.Stubs, m *Mach) (*Incr, error) {
	return newIncr(prog, kern, bus, stubs, m, true)
}

func newIncr(prog *cast.Program, kern *kernel.Kernel, bus *hw.Bus,
	stubs *codegen.Stubs, m *Mach, fuse bool) (*Incr, error) {
	if m == nil {
		m = NewMach()
	}
	in := &Incr{
		mach:           m,
		funcIdxOfOrd:   make(map[int]int),
		initIdxOfOrd:   make(map[int]int),
		macroFuncs:     make(map[string][]int),
		macroInits:     make(map[string][]int),
		pristineMacros: make(map[string]macroRef),
	}
	c := newCompiler(prog, stubs)
	c.fuse = fuse
	c.bus = bus
	in.c = c
	c.registerDecls()
	for name, mr := range c.macros {
		in.pristineMacros[name] = mr
	}

	// Compile with dependency recording: every macro a unit inlines
	// (directly or through nested expansion — onMacro fires at each
	// resolution) adds the unit to that macro's recompile list, once.
	var (
		curKind unitKind
		curIdx  int
	)
	seen := make(map[string]bool)
	c.onMacro = func(name string) {
		if seen[name] {
			return
		}
		seen[name] = true
		switch curKind {
		case unitInit:
			in.macroInits[name] = append(in.macroInits[name], curIdx)
		case unitFunc:
			in.macroFuncs[name] = append(in.macroFuncs[name], curIdx)
		}
	}
	in.inits = c.compileInits(func(idx int) { curKind, curIdx = unitInit, idx; clear(seen) })
	c.compileFuncs(func(idx int) { curKind, curIdx = unitFunc, idx; clear(seen) })
	c.onMacro = nil
	if c.err != nil {
		return nil, c.err
	}

	// Map declaration order to compiled units (first declaration wins,
	// matching registerDecls).
	for i, fd := range c.funcDecls {
		if c.funcIdx[fd.Name] == i {
			in.funcIdxOfOrd[declOrd(prog, fd)] = i
		}
	}
	for i, step := range in.inits {
		in.initIdxOfOrd[step.declOrd] = i
		in.initDecls = append(in.initDecls, prog.Decls[step.declOrd].(*cast.VarDecl))
	}

	// Snapshot the pristine compiled artefacts.
	in.pristineFuncs = make([]cfunc, len(c.funcs))
	for i, f := range c.funcs {
		in.pristineFuncs[i] = *f
	}
	in.pristineInits = append([]initStep(nil), in.inits...)

	c.sizeMach(m)
	in.proc = c.newProc(kern, bus, stubs, m, in.inits)
	return in, nil
}

// unitKind tags the compilation unit currently recording macro deps.
type unitKind int

const (
	unitInit unitKind = iota + 1
	unitFunc
)

// declOrd finds a declaration's index in the program.
func declOrd(prog *cast.Program, d cast.Decl) int {
	for i, pd := range prog.Decls {
		if pd == d {
			return i
		}
	}
	return -1
}

// revert restores every unit the previous Patch touched to its pristine
// compiled form.
func (in *Incr) revert() {
	for _, i := range in.touchedFuncs {
		*in.c.funcs[i] = in.pristineFuncs[i]
	}
	for _, i := range in.touchedInits {
		in.inits[i] = in.pristineInits[i]
	}
	if in.patchedMacro != "" {
		in.c.macros[in.patchedMacro] = in.pristineMacros[in.patchedMacro]
	}
	in.touchedFuncs = in.touchedFuncs[:0]
	in.touchedInits = in.touchedInits[:0]
	in.patchedMacro = ""
}

// recompileFunc compiles a function declaration into the stable cfunc at
// index idx, preserving the pointer every call site captured.
func (in *Incr) recompileFunc(idx int, d *cast.FuncDecl) {
	in.touchedFuncs = append(in.touchedFuncs, idx)
	nf := cfunc{name: d.Name, result: d.Result}
	in.c.compileFunc(&nf, d)
	*in.c.funcs[idx] = nf
}

// recompileInit rebuilds the initialiser step at index idx from a
// declaration (the mutated one, or the pristine one when a macro it
// inlines changed).
func (in *Incr) recompileInit(idx int, d *cast.VarDecl) {
	in.touchedInits = append(in.touchedInits, idx)
	step := in.pristineInits[idx]
	step.typ = d.Type
	step.def = defaultValue(d.Type)
	step.init = nil
	if d.Init != nil {
		step.init = in.c.expr(d.Init)
	}
	in.inits[idx] = step
}

// Patch recompiles declaration slot ord with the replacement decl and
// returns the Proc reset to its pre-Init state, ready for Init and the
// boot script. The previous patch is reverted first, so Patch(i, prist)
// is never needed to undo Patch(i, mutant).
//
// A replacement whose shape the compiler rejects (today: a macro body
// mutated into an expansion cycle) returns ErrUnsupported; the caller
// falls back to the interpreter over the spliced AST, exactly as the
// full path falls back when Compile rejects a mutant.
func (in *Incr) Patch(ord int, d cast.Decl) (*Proc, error) {
	in.revert()
	in.c.err = nil
	before := in.c.stats
	switch d := d.(type) {
	case *cast.FuncDecl:
		idx, ok := in.funcIdxOfOrd[ord]
		if !ok {
			return nil, fmt.Errorf("%w: declaration %d is not a compiled function", ErrUnsupported, ord)
		}
		in.recompileFunc(idx, d)

	case *cast.MacroDecl:
		mr, ok := in.pristineMacros[d.Name]
		if !ok || mr.ord != ord {
			return nil, fmt.Errorf("%w: declaration %d is not macro %q", ErrUnsupported, ord, d.Name)
		}
		in.patchedMacro = d.Name
		in.c.macros[d.Name] = macroRef{ord: mr.ord, decl: d}
		// Every unit that inlined the macro holds its old body: recompile
		// them all from their pristine declarations.
		for _, fi := range in.macroFuncs[d.Name] {
			in.recompileFunc(fi, in.c.funcDecls[fi])
		}
		for _, ii := range in.macroInits[d.Name] {
			in.recompileInit(ii, in.initDecls[ii])
		}

	case *cast.VarDecl:
		idx, ok := in.initIdxOfOrd[ord]
		if !ok {
			return nil, fmt.Errorf("%w: declaration %d is not a compiled global", ErrUnsupported, ord)
		}
		in.recompileInit(idx, d)

	default:
		return nil, fmt.Errorf("%w: unknown declaration kind", ErrUnsupported)
	}
	if in.c.err != nil {
		return nil, in.c.err
	}

	// The mutated unit may need more frame slots or (defensively) new
	// coverage lines; regrow the pooled buffers like a fresh Compile
	// would, and re-sync in case the fallback path grew the shared Mach.
	in.c.sizeMach(in.mach)
	in.proc.st.stack = in.mach.stack[:cap(in.mach.stack)]
	in.proc.resetRun()
	in.lastPatch = in.c.stats.sub(before)
	return in.proc, nil
}

// PatchStats reports the fusion work the most recent successful Patch
// performed: the basic blocks, fused statements and I/O sites of just
// the recompiled units (zero on the non-fusing backend). The campaign
// engine feeds it into the driverlab_exec_blocks_* counters.
func (in *Incr) PatchStats() BlockStats { return in.lastPatch }

// resetRun rewinds a Proc's mutable execution state to the moment
// Compile would have returned it: globals cleared, stack and call depth
// rewound, not yet initialised. The coverage bitset is reset by
// sizeMach.
func (p *Proc) resetRun() {
	for i := range p.st.globals {
		p.st.globals[i] = Value{}
	}
	p.st.sp = 0
	p.st.depth = 0
	p.st.declsReady = 0
	p.inited = false
}
