package experiment

import (
	"repro/internal/cdriver/cast"
	"repro/internal/cdriver/ccompile"
	"repro/internal/kernel"
)

// Pristine-prefix snapshotting. Every campaign boot of a mutant repeats
// the same prefix before the mutation can possibly matter: reset the
// machine, patch the mutated declaration in place, and re-evaluate the
// pristine global initialisers. When the mutation provably cannot change
// what that prefix does, the rig captures the post-Init machine state
// once and rewinds to it on later boots instead of re-running Init.
//
// The restore runs on top of the already-Reset machine (rigFor's reset
// contract is untouched): rewinding the clock, the kernel, the
// workload's devices and the process image together reproduces the
// captured state exactly, because every piece of state a boot can
// observe lives in one of those four places. Safety is decided per boot
// by snapPlan; any gate failing means the boot runs the full prefix and
// is counted as a fallback, so the optimisation can never change an
// observable — a property the determinism suite checks byte-for-byte.

// rigSnap is one rig's captured pristine-prefix snapshot.
type rigSnap struct {
	// valid marks an armed snapshot; st and budget are its validity key.
	// st pins the incremental pipeline the capture ran under (its incrKey
	// already encodes source, Devil mode, permissiveness, stub mode and
	// backend); budget pins the step budget the kernel was armed with.
	valid  bool
	st     *incrState
	budget int64

	clockNow uint64
	kern     kernel.Snapshot
	proc     ccompile.InitSnapshot
	// dev is the workload's pooled device snapshot handle, owned by the
	// descriptor's Snapshot/Restore hook pair.
	dev any
}

// snapCounts reports whether this boot participates in the snapshot
// counters: a mutation boot on a rig with snapshotting enabled. Such a
// boot is either served from the snapshot (a hit) or runs the full
// prefix (a fallback); pristine boots and disabled rigs count as
// neither.
func (r *Rig) snapCounts(input BootInput) bool {
	return !r.DisableSnapshot && input.Mutation != nil
}

// snapPlan decides, after a successful in-place patch of decl, whether
// the boot can restore from the armed snapshot (use) and whether the
// full prefix it is about to run should capture one (capture).
//
// The gates make restoring provably unobservable:
//   - pristine scenario and no Devil stubs: the only mutable state
//     outside kernel/clock/process is the workload's devices, which the
//     descriptor hooks snapshot (a scenario's injector and Devil's stub
//     state would be two more, unhooked, state holders);
//   - FuncDecl replacement only: a mutated macro or global initialiser
//     can change what Init computes, a mutated function body cannot be
//     reached by it when
//   - no global initialiser contains a call, transitively through the
//     macros it references: initialisers are then pure expressions over
//     literals and globals, so they touch no device, charge no steps
//     and cannot reach the mutated function.
//
// Under those gates the post-Init state of any eligible mutant equals
// the pristine post-Init state, so the capture may come from whichever
// eligible boot runs first.
func (r *Rig) snapPlan(st *incrState, decl cast.Decl, input BootInput) (use, capture bool) {
	if r.DisableSnapshot || r.Scenario != "" || input.Devil ||
		r.Desc.Snapshot == nil || r.Desc.Restore == nil || st.inc == nil {
		return false, false
	}
	if _, ok := decl.(*cast.FuncDecl); !ok {
		return false, false
	}
	if st.initsCall() {
		return false, false
	}
	s := &r.snap
	if s.valid && s.st == st && s.budget == input.Budget {
		return true, false
	}
	return false, true
}

// snapCapture records the post-Init state of an eligible boot: virtual
// clock, kernel (console, steps, remaining budget, transfer buffer),
// the process image's globals and coverage, and the workload's devices.
func (r *Rig) snapCapture(st *incrState, p *ccompile.Proc, input BootInput) {
	s := &r.snap
	s.st = st
	s.budget = input.Budget
	s.clockNow = r.Clock.Snapshot()
	r.Kern.Snapshot(&s.kern)
	p.SnapshotInit(&s.proc)
	s.dev = r.Desc.Snapshot(r.Dev, s.dev)
	s.valid = true
}

// snapRestore rewinds the just-Reset, just-patched machine to the
// captured post-Init state. Clock and devices restore together — device
// models anchor timeouts to absolute virtual times, so one without the
// other would corrupt every pending delay. The kernel snapshot does not
// carry the wall-clock deadline (it is real time, not machine state),
// so the boot's deadline re-arms here exactly as the full path armed it
// in Boot.
func (r *Rig) snapRestore(p *ccompile.Proc, input BootInput) {
	s := &r.snap
	r.Clock.Restore(s.clockNow)
	r.Kern.Restore(&s.kern)
	if input.WallBudget > 0 {
		r.Kern.SetDeadline(input.WallBudget)
	}
	r.Desc.Restore(r.Dev, s.dev)
	p.RestoreInit(&s.proc)
}

// initsCall reports (computing once per pipeline) whether any pristine
// global initialiser contains a call, transitively through the macros
// it references.
func (st *incrState) initsCall() bool {
	if !st.initsCallDone {
		st.initsCallVal = initsHaveCalls(st.prog)
		st.initsCallDone = true
	}
	return st.initsCallVal
}

// initsHaveCalls walks every global initialiser expression looking for
// a CallExpr, expanding object-like macro references as it goes. A
// macro reference cycle cannot introduce a call, so revisits terminate
// the walk (the map doubles as memoisation: a macro already walked
// without finding a call reports false again).
func initsHaveCalls(prog *cast.Program) bool {
	var macros map[string]*cast.MacroDecl
	for _, d := range prog.Decls {
		if m, ok := d.(*cast.MacroDecl); ok {
			if macros == nil {
				macros = make(map[string]*cast.MacroDecl)
			}
			macros[m.Name] = m
		}
	}
	seen := make(map[string]bool)
	var walk func(e cast.Expr) bool
	walk = func(e cast.Expr) bool {
		switch e := e.(type) {
		case *cast.CallExpr:
			return true
		case *cast.Ident:
			m, ok := macros[e.Name]
			if !ok || seen[e.Name] {
				return false
			}
			seen[e.Name] = true
			return walk(m.Body)
		case *cast.UnaryExpr:
			return walk(e.X)
		case *cast.BinaryExpr:
			return walk(e.X) || walk(e.Y)
		case *cast.CondExpr:
			return walk(e.Cond) || walk(e.Then) || walk(e.Else)
		case *cast.CastExpr:
			return walk(e.X)
		}
		return false // IntLit, StringLit, nil
	}
	for _, d := range prog.Decls {
		if v, ok := d.(*cast.VarDecl); ok && v.Init != nil && walk(v.Init) {
			return true
		}
	}
	return false
}
