package ccompile_test

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/cdriver/cast"
	"repro/internal/cdriver/ccheck"
	"repro/internal/cdriver/ccompile"
	"repro/internal/cdriver/cinterp"
	"repro/internal/cdriver/cparser"
	"repro/internal/cdriver/ctypes"
)

// parseChecked parses and checks a plain-C source.
func parseChecked(t *testing.T, src string) (*cast.Program, *ctypes.Env) {
	t.Helper()
	prog, perrs := cparser.Parse(src)
	if len(perrs) != 0 {
		t.Fatalf("parse: %v", perrs)
	}
	env := ctypes.NewEnv(false)
	if cerrs := ccheck.Check(prog, env); len(cerrs) != 0 {
		t.Fatalf("check: %v", cerrs)
	}
	return prog, env
}

// parseDecl parses a source holding exactly one declaration and checks
// it in the scope of prog (the splice discipline of the incremental
// front end).
func parseDecl(t *testing.T, prog *cast.Program, env *ctypes.Env, src string) cast.Decl {
	t.Helper()
	p, perrs := cparser.Parse(src)
	if len(perrs) != 0 || len(p.Decls) != 1 {
		t.Fatalf("replacement decl %q: %v (%d decls)", src, perrs, len(p.Decls))
	}
	d := p.Decls[0]
	idx := -1
	kindOf := func(d cast.Decl) string {
		switch d.(type) {
		case *cast.MacroDecl:
			return "macro"
		case *cast.VarDecl:
			return "var"
		}
		return "func"
	}
	name := func(d cast.Decl) string {
		switch d := d.(type) {
		case *cast.MacroDecl:
			return d.Name
		case *cast.VarDecl:
			return d.Name
		case *cast.FuncDecl:
			return d.Name
		}
		return ""
	}
	for i, pd := range prog.Decls {
		if name(pd) == name(d) && kindOf(pd) == kindOf(d) {
			idx = i
			break
		}
	}
	if idx < 0 {
		t.Fatalf("replacement %q names no pristine declaration", src)
	}
	if errs := ccheck.NewScope(prog, env).CheckReplacement(idx, d); len(errs) != 0 {
		t.Fatalf("replacement %q does not check: %v", src, errs)
	}
	return d
}

func declIdx(t *testing.T, prog *cast.Program, name string) int {
	t.Helper()
	for i, d := range prog.Decls {
		switch d := d.(type) {
		case *cast.MacroDecl:
			if d.Name == name {
				return i
			}
		case *cast.VarDecl:
			if d.Name == name {
				return i
			}
		case *cast.FuncDecl:
			if d.Name == name {
				return i
			}
		}
	}
	t.Fatalf("no declaration %q", name)
	return -1
}

const incrSrc = `
#define STEP 3
#define BIG (STEP + 100)

int base = STEP;

int bump(int x) {
	return x + STEP;
}

int twice(int x) {
	return bump(x) + bump(x);
}

int total(void) {
	return base + twice(10);
}
`

// patchAndCall patches one declaration and compares the call against a
// from-scratch Compile of the equivalently spliced program.
func patchAndCall(t *testing.T, in *ccompile.Incr, prog *cast.Program, idx int,
	d cast.Decl, fn string, args ...cinterp.Value) cinterp.Value {
	t.Helper()
	p, err := in.Patch(idx, d)
	if err != nil {
		t.Fatalf("Patch: %v", err)
	}
	if err := p.Init(); err != nil {
		t.Fatalf("Init: %v", err)
	}
	got, gerr := p.Call(fn, args...)

	spliced := &cast.Program{Decls: append([]cast.Decl(nil), prog.Decls...)}
	spliced.Decls[idx] = d
	ref := newRig()
	rp, cerr := ccompile.Compile(spliced, ref.kern, ref.bus, nil, nil)
	if cerr != nil {
		t.Fatalf("reference compile: %v", cerr)
	}
	if err := rp.Init(); err != nil {
		t.Fatalf("reference init: %v", err)
	}
	want, werr := rp.Call(fn, args...)
	if (gerr == nil) != (werr == nil) || (gerr != nil && gerr.Error() != werr.Error()) {
		t.Fatalf("patched error %v, reference %v", gerr, werr)
	}
	if got != want {
		t.Fatalf("patched %s() = %+v, reference %+v", fn, got, want)
	}
	return got
}

func TestPatchFunctionInPlace(t *testing.T) {
	prog, env := parseChecked(t, incrSrc)
	r := newRig()
	in, err := ccompile.NewIncr(prog, r.kern, r.bus, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Callers of a patched function must reach the new body through
	// their existing compiled call sites.
	d := parseDecl(t, prog, env, "int bump(int x) {\n\treturn x - STEP;\n}")
	v := patchAndCall(t, in, prog, declIdx(t, prog, "bump"), d, "total")
	if v.I != 3+(10-3)*2 {
		t.Errorf("total with patched bump = %d, want 17", v.I)
	}

	// The next patch must first revert the previous one.
	d2 := parseDecl(t, prog, env, "int twice(int x) {\n\treturn bump(x) * 2;\n}")
	v = patchAndCall(t, in, prog, declIdx(t, prog, "twice"), d2, "total")
	if v.I != 3+(10+3)*2 {
		t.Errorf("total with patched twice (bump reverted) = %d, want 29", v.I)
	}
}

func TestPatchMacroRecompilesDependents(t *testing.T) {
	prog, env := parseChecked(t, incrSrc)
	r := newRig()
	in, err := ccompile.NewIncr(prog, r.kern, r.bus, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	// STEP is inlined into bump (a function), base (a global
	// initialiser) and BIG (transitively through twice? no — through
	// any function that uses BIG; here only the definition). Patching
	// it must recompile every dependent unit.
	d := parseDecl(t, prog, env, "#define STEP 5")
	v := patchAndCall(t, in, prog, declIdx(t, prog, "STEP"), d, "total")
	if v.I != 5+(10+5)*2 {
		t.Errorf("total with STEP=5 = %d, want 35", v.I)
	}

	// Patch something else: the macro must revert everywhere.
	d2 := parseDecl(t, prog, env, "int base = STEP + 1;")
	v = patchAndCall(t, in, prog, declIdx(t, prog, "base"), d2, "total")
	if v.I != 4+(10+3)*2 {
		t.Errorf("total with base=STEP+1 (STEP reverted) = %d, want 30", v.I)
	}
}

func TestPatchGlobalInitialiser(t *testing.T) {
	prog, env := parseChecked(t, incrSrc)
	r := newRig()
	in, err := ccompile.NewIncr(prog, r.kern, r.bus, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	d := parseDecl(t, prog, env, "int base = 40;")
	v := patchAndCall(t, in, prog, declIdx(t, prog, "base"), d, "total")
	if v.I != 40+(10+3)*2 {
		t.Errorf("total with base=40 = %d, want 66", v.I)
	}
}

func TestPatchRejectsMacroCycle(t *testing.T) {
	src := "#define A 1\n#define B (A + 1)\nint f(void) { return B; }\n"
	prog, _ := parseChecked(t, src)
	r := newRig()
	in, err := ccompile.NewIncr(prog, r.kern, r.bus, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Mutate A's body to reference B: expanding B now cycles, which the
	// compiler rejects so the caller falls back to the interpreter —
	// exactly as a full Compile of the mutated program would.
	p, perrs := cparser.Parse("#define A (B + 1)")
	if len(perrs) != 0 {
		t.Fatal(perrs)
	}
	if _, err := in.Patch(declIdx(t, prog, "A"), p.Decls[0]); !errors.Is(err, ccompile.ErrUnsupported) {
		t.Fatalf("cyclic macro patch: err = %v, want ErrUnsupported", err)
	}
	// The Incr must stay usable: a clean patch afterwards works.
	p2, _ := cparser.Parse("#define A 7")
	proc, err := in.Patch(declIdx(t, prog, "A"), p2.Decls[0])
	if err != nil {
		t.Fatalf("patch after rejected patch: %v", err)
	}
	if err := proc.Init(); err != nil {
		t.Fatal(err)
	}
	v, err := proc.Call("f")
	if err != nil || v.I != 8 {
		t.Fatalf("f() after recovery = %v (%v), want 8", v.I, err)
	}
}

func TestPatchStateResetBetweenBoots(t *testing.T) {
	src := "int counter;\nint tick(void) { counter = counter + 1; return counter; }\n"
	prog, env := parseChecked(t, src)
	r := newRig()
	in, err := ccompile.NewIncr(prog, r.kern, r.bus, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	d := parseDecl(t, prog, env, "int tick(void) { counter = counter + 2; return counter; }")
	idx := declIdx(t, prog, "tick")
	for boot := 0; boot < 3; boot++ {
		p, err := in.Patch(idx, d)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Init(); err != nil {
			t.Fatal(err)
		}
		v, err := p.Call("tick")
		if err != nil {
			t.Fatal(err)
		}
		if v.I != 2 {
			t.Fatalf("boot %d: tick() = %d, want 2 (globals must reset between patches)", boot, v.I)
		}
	}
}

func TestScopeCheckReplacementMatchesFullCheck(t *testing.T) {
	prog, env := parseChecked(t, incrSrc)
	scope := ccheck.NewScope(prog, env)
	cases := []struct {
		src  string
		want string // substring of the expected diagnostic; "" = clean
	}{
		{"int bump(int x) {\n\treturn x + STEP;\n}", ""},
		{"int bump(int x) {\n\treturn x + nosuch;\n}", "undeclared"},
		{"int bump(int x) {\n\treturn bump;\n}", "used as a value"},
		{"int base = missing;", "undeclared"},
		// Calls resolve through the whole program (callType consults
		// prog.Func), so a forward call in a global initialiser is clean
		// in the full check and must be clean incrementally too; only
		// plain identifier references are prefix-scoped.
		{"int base = bump(1);", ""},
		{"int base = bump;", "undeclared"},
		{"#define STEP 9", ""},
	}
	for _, tc := range cases {
		p, perrs := cparser.Parse(tc.src)
		if len(perrs) != 0 || len(p.Decls) != 1 {
			t.Fatalf("replacement %q: %v", tc.src, perrs)
		}
		d := p.Decls[0]
		var idx int
		switch d := d.(type) {
		case *cast.MacroDecl:
			idx = declIdx(t, prog, d.Name)
		case *cast.VarDecl:
			idx = declIdx(t, prog, d.Name)
		case *cast.FuncDecl:
			idx = declIdx(t, prog, d.Name)
		}
		errs := scope.CheckReplacement(idx, d)

		// Reference: full check of the spliced program.
		spliced, _ := cparser.Parse(incrSrc)
		spliced.Decls[idx] = d
		ferrs := ccheck.Check(spliced, ctypes.NewEnv(false))

		if len(errs) != len(ferrs) {
			t.Errorf("%q: incremental %d errors, full %d: %v vs %v", tc.src, len(errs), len(ferrs), errs, ferrs)
			continue
		}
		for i := range errs {
			if errs[i].Error() != ferrs[i].Error() {
				t.Errorf("%q: error %d differs:\nincremental: %v\nfull:        %v", tc.src, i, errs[i], ferrs[i])
			}
		}
		if tc.want == "" && len(errs) != 0 {
			t.Errorf("%q: unexpected errors %v", tc.src, errs)
		}
		if tc.want != "" && (len(errs) == 0 || !strings.Contains(errs[0].Error(), tc.want)) {
			t.Errorf("%q: errors %v, want one containing %q", tc.src, errs, tc.want)
		}
	}
}
