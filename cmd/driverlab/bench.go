package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"repro/internal/campaign"
	"repro/internal/drivers"
	"repro/internal/experiment"
	"repro/internal/obs"
)

// BenchDriver is the measured throughput of one driver's campaign under
// one front end.
type BenchDriver struct {
	Driver   string `json:"driver"`
	Frontend string `json:"frontend"`
	// Backend is the execution backend the row was measured on.
	Backend string `json:"backend,omitempty"`
	// SamplePct is the row's effective mutant sampling percentage —
	// the -sample flag, unless the -min-boots floor raised it for a
	// driver whose mutation space is too small to sample meaningfully.
	SamplePct     int     `json:"sample_pct,omitempty"`
	Boots         int     `json:"boots"`
	ElapsedSec    float64 `json:"elapsed_s"`
	BootsPerSec   float64 `json:"boots_per_s"`
	AllocsPerBoot float64 `json:"allocs_per_boot"`
	BytesPerBoot  float64 `json:"bytes_per_boot"`
	// Phases is the per-phase boot time breakdown (-phases), in
	// pipeline order, from the collector's phase-span histograms.
	Phases []BenchPhase `json:"phases,omitempty"`
}

// BenchPhase is the measured cost of one boot-pipeline phase across a
// driver's bench campaign.
type BenchPhase struct {
	Phase    string  `json:"phase"`
	Count    int     `json:"count"`
	TotalSec float64 `json:"total_s"`
	MeanUS   float64 `json:"mean_us"`
	// Share is this phase's fraction of the summed phase time.
	Share float64 `json:"share"`
}

// phaseRows folds a collector's phase-span histograms into bench
// report rows, in pipeline order.
func phaseRows(col *obs.Collector) []BenchPhase {
	byPhase := make(map[string]*BenchPhase)
	var total float64
	for _, s := range col.Gather() {
		if s.Name != experiment.MetricBootPhase {
			continue
		}
		p := byPhase[s.Label("phase")]
		if p == nil {
			p = &BenchPhase{Phase: s.Label("phase")}
			byPhase[p.Phase] = p
		}
		p.Count += int(s.Count)
		p.TotalSec += s.Sum
		total += s.Sum
	}
	var out []BenchPhase
	for _, ph := range experiment.BootPhases {
		p := byPhase[ph]
		if p == nil {
			continue
		}
		if p.Count > 0 {
			p.MeanUS = p.TotalSec / float64(p.Count) * 1e6
		}
		if total > 0 {
			p.Share = p.TotalSec / total
		}
		out = append(out, *p)
	}
	return out
}

// BenchReport is the JSON shape of BENCH_campaign.json: one campaign
// throughput measurement per driver × front end plus per-front-end
// aggregates, keyed by the exact configuration so numbers are
// comparable across PRs. The full rows are the before, the incremental
// rows the after, of the incremental-front-end change.
type BenchReport struct {
	Bench      string        `json:"bench"`
	Backend    string        `json:"backend"`
	Frontends  []string      `json:"frontends"`
	SamplePct  int           `json:"sample_pct"`
	Seed       uint64        `json:"seed"`
	Workers    int           `json:"workers"`
	GoMaxProcs int           `json:"go_max_procs"`
	Drivers    []BenchDriver `json:"drivers"`
	Totals     []BenchDriver `json:"totals"`
}

// benchFrontends resolves the -frontend flag: one front end, or both
// ("both" and "compare" measure full first, then incremental).
func benchFrontends(flagVal string) ([]experiment.Frontend, bool, error) {
	switch flagVal {
	case "both":
		return []experiment.Frontend{experiment.FrontendFull, experiment.FrontendIncremental}, false, nil
	case "compare":
		return []experiment.Frontend{experiment.FrontendFull, experiment.FrontendIncremental}, true, nil
	}
	f, err := experiment.ParseFrontend(flagVal)
	if err != nil {
		return nil, false, err
	}
	return []experiment.Frontend{f}, false, nil
}

// loadBenchReport reads an earlier bench report for the -compare gate.
func loadBenchReport(path string) (*BenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("bench -compare: %w", err)
	}
	var rep BenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("bench -compare: %s: %w", path, err)
	}
	return &rep, nil
}

// compareReports gates the fresh measurement against an older report,
// printing a per-driver delta table and returning an error when any
// driver regressed beyond pct percent — in boots/s or in allocs/boot.
//
// The two reports usually come from different machines (the checked-in
// report vs a CI runner), so absolute boots/s are not comparable.
// Instead every common driver×frontend row gets a new/old throughput
// ratio and the median ratio is taken as the machine-speed factor; a
// driver regresses when its own ratio falls more than pct percent below
// that factor. This catches one driver's hot path eroding relative to
// the rest; a uniform slowdown of every driver is indistinguishable
// from a slower machine and needs a same-machine before/after run.
//
// Allocations per boot get the same normalized treatment (the median
// alloc ratio absorbs a deliberate fleet-wide allocator change, e.g. a
// new per-boot cache): a driver fails when its allocs/boot grow more
// than pct percent beyond the fleet's factor. Allocation counts are
// deterministic per code version, so this gate is far less noisy than
// throughput and catches a hot path quietly starting to allocate.
func compareReports(old, cur *BenchReport, pct float64) error {
	type key struct{ driver, frontend string }
	oldRows := make(map[key]BenchDriver)
	for _, d := range old.Drivers {
		if d.BootsPerSec > 0 {
			oldRows[key{d.Driver, d.Frontend}] = d
		}
	}
	type row struct {
		driver, frontend string
		oldR, newR, rat  float64
		oldA, newA, arat float64 // allocs/boot; arat 0 when either side lacks it
	}
	var rows []row
	for _, d := range cur.Drivers {
		o, ok := oldRows[key{d.Driver, d.Frontend}]
		if !ok || d.BootsPerSec <= 0 {
			continue
		}
		r := row{
			driver: d.Driver, frontend: d.Frontend,
			oldR: o.BootsPerSec, newR: d.BootsPerSec, rat: d.BootsPerSec / o.BootsPerSec,
			oldA: o.AllocsPerBoot, newA: d.AllocsPerBoot,
		}
		if o.AllocsPerBoot > 0 && d.AllocsPerBoot > 0 {
			r.arat = d.AllocsPerBoot / o.AllocsPerBoot
		}
		rows = append(rows, r)
	}
	if len(rows) == 0 {
		return fmt.Errorf("bench -compare: no driver/frontend rows in common with the old report")
	}
	median := func(v []float64) float64 {
		sort.Float64s(v)
		m := v[len(v)/2]
		if n := len(v); n%2 == 0 {
			m = (v[n/2-1] + v[n/2]) / 2
		}
		return m
	}
	ratios := make([]float64, len(rows))
	var aratios []float64
	for i, r := range rows {
		ratios[i] = r.rat
		if r.arat > 0 {
			aratios = append(aratios, r.arat)
		}
	}
	scale := median(ratios)
	ascale := 1.0
	if len(aratios) > 0 {
		ascale = median(aratios)
	}
	floor := 1 - pct/100
	ceil := 1 + pct/100
	fmt.Printf("bench compare vs old report: machine-speed factor %.2fx, alloc factor %.2fx (medians of %d rows), threshold %.0f%%\n",
		scale, ascale, len(rows), pct)
	var bad []string
	for _, r := range rows {
		rel := r.rat / scale
		status := "ok"
		if rel < floor {
			status = "REGRESSED"
			bad = append(bad, fmt.Sprintf("%s/%s throughput %.1f%% below the fleet", r.driver, r.frontend, 100*(1-rel)))
		}
		arel := 0.0
		if r.arat > 0 {
			arel = r.arat / ascale
			if arel > ceil {
				status = "REGRESSED"
				bad = append(bad, fmt.Sprintf("%s/%s allocs/boot %.1f%% above the fleet (%.0f -> %.0f)",
					r.driver, r.frontend, 100*(arel-1), r.oldA, r.newA))
			}
		}
		fmt.Printf("  %-14s %-12s %9.1f -> %9.1f boots/s  %+6.1f%% vs fleet  %6.0f -> %6.0f allocs/boot  %s\n",
			r.driver, r.frontend, r.oldR, r.newR, 100*(rel-1), r.oldA, r.newA, status)
	}
	if len(bad) > 0 {
		return fmt.Errorf("bench -compare: regression: %s", strings.Join(bad, "; "))
	}
	fmt.Println("bench compare vs old report: no driver regressed")
	return nil
}

// runBench measures end-to-end campaign throughput — the boots/s number
// every future scenario multiplies against — and optionally persists it.
// With -frontend compare it exits non-zero if the incremental front end
// is slower than a full recompile on any driver (the CI regression
// gate); with -compare old.json it additionally gates every driver
// against an earlier report (see compareReports). With -obs on (or
// -phases) the metric collector is enabled and the per-phase boot time
// breakdown lands in the report; -obs compare measures
// disabled-then-enabled and exits non-zero if the collector costs more
// than 3% throughput (reported rows keep the disabled numbers).
func runBench(args []string) error {
	fs := flag.NewFlagSet("driverlab bench", flag.ContinueOnError)
	driversFlag := fs.String("drivers", strings.Join(drivers.Names(), ","),
		"comma-separated driver list to measure")
	sample := fs.Int("sample", 2, "percentage of mutants to boot per driver")
	minBoots := fs.Int("min-boots", 25,
		"per-driver minimum boots: raise a driver's sampling percentage until at least this many mutants boot (0 disables)")
	seed := fs.Uint64("seed", 2001, "sampling seed")
	backendFlag := fs.String("backend", "", "hwC execution backend: block (default), compiled or interp")
	comparePath := fs.String("compare", "",
		"older BENCH_campaign.json to gate against: exit non-zero if any driver regresses beyond -compare-pct")
	comparePct := fs.Float64("compare-pct", 25,
		"regression threshold for -compare, in percent, after cross-driver machine-speed normalization")
	frontendFlag := fs.String("frontend", "both",
		"front end(s) to measure: incremental, full, both, or compare (both + fail if incremental is slower)")
	workers := fs.Int("workers", 0, "boot worker count (default: GOMAXPROCS)")
	repeat := fs.Int("repeat", 1, "measurements per driver (the best is reported; >1 damps scheduler noise)")
	jsonOut := fs.Bool("json", false, "write the report to -out as JSON")
	out := fs.String("out", "BENCH_campaign.json", "report path for -json")
	obsFlag := fs.String("obs", "off",
		"metric collector: off (default), on, or compare (measure off then on; fail if enabled is >3% slower)")
	phases := fs.Bool("phases", false,
		"record the per-phase boot time breakdown per driver (implies -obs on)")
	cpuProfile := fs.String("cpuprofile", "",
		"write a pprof CPU profile of the campaign loop to this file")
	memProfile := fs.String("memprofile", "",
		"write a pprof allocation profile of the campaign loop to this file")
	if help, err := parseFlags(fs, args); help || err != nil {
		return err
	}
	backend, err := experiment.ParseBackend(*backendFlag)
	if err != nil {
		return err
	}
	frontends, compare, err := benchFrontends(*frontendFlag)
	if err != nil {
		return err
	}
	switch *obsFlag {
	case "off", "on", "compare":
	default:
		return fmt.Errorf("bench: unknown -obs mode %q (want off, on or compare)", *obsFlag)
	}
	if *phases && *obsFlag == "off" {
		*obsFlag = "on"
	}

	report := BenchReport{
		Bench:      "campaign",
		Backend:    string(backend),
		SamplePct:  *sample,
		Seed:       *seed,
		Workers:    *workers,
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	for _, f := range frontends {
		report.Frontends = append(report.Frontends, string(f))
	}

	// The profiles cover exactly the measurement loop below — campaign
	// boots plus the warm-up expansion, none of the report plumbing — so
	// the flat top of the CPU profile is the boot hot path.
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("bench -cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("bench -cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}

	perSec := make(map[string]map[experiment.Frontend]float64) // driver -> frontend -> boots/s
	wl := experiment.NewWorkload()
	for _, frontend := range frontends {
		total := BenchDriver{Driver: "total", Frontend: string(frontend), Backend: string(backend)}
		var allocs, bytes float64
		for _, driver := range strings.Split(*driversFlag, ",") {
			driver = strings.TrimSpace(driver)
			if driver == "" {
				continue
			}
			opts := experiment.MutationOptions{SamplePct: *sample, Seed: *seed, Backend: backend}
			spec := experiment.CampaignSpec(driver, opts)
			spec.Name = "bench"
			spec.Frontend = string(frontend)

			// Warm the per-campaign caches (enumeration, spec compilation) so
			// the measurement is the steady-state hot path — and pre-flight
			// the work-list size for the sampling floor: a boots/s number
			// derived from a handful of boots is scheduler noise, so a
			// driver whose mutation space is too small for -sample gets its
			// percentage raised until at least -min-boots mutants boot.
			metas, _, err := wl.Expand(spec)
			if err != nil {
				return err
			}
			effPct := *sample
			if *minBoots > 0 && len(metas) > 0 {
				m := metas[0]
				if m.Selected < *minBoots && m.Selected < m.Enumerated {
					effPct = (*minBoots*100 + m.Enumerated - 1) / m.Enumerated
					if effPct > 100 {
						effPct = 100
					}
					opts.SamplePct = effPct
					spec = experiment.CampaignSpec(driver, opts)
					spec.Name = "bench"
					spec.Frontend = string(frontend)
					if _, _, err := wl.Expand(spec); err != nil {
						return err
					}
				}
			}

			// measure runs the campaign *repeat times against one workload
			// (instrumented or not) and keeps the best run.
			measure := func(mwl campaign.Workload, metrics *campaign.Metrics) (BenchDriver, error) {
				var best BenchDriver
				for rep := 0; rep < max(*repeat, 1); rep++ {
					var before, after runtime.MemStats
					runtime.GC()
					runtime.ReadMemStats(&before)
					start := time.Now()
					store := campaign.NewMemStore()
					sum, err := campaign.Run(spec, mwl, store, campaign.Options{
						Workers: *workers, Metrics: metrics,
					})
					if err != nil {
						return best, fmt.Errorf("bench %s/%s: %w", driver, frontend, err)
					}
					elapsed := time.Since(start).Seconds()
					runtime.ReadMemStats(&after)

					boots := sum.Ran
					r := BenchDriver{
						Driver:     driver,
						Frontend:   string(frontend),
						Boots:      boots,
						ElapsedSec: elapsed,
					}
					if boots > 0 && elapsed > 0 {
						r.BootsPerSec = float64(boots) / elapsed
						r.AllocsPerBoot = float64(after.Mallocs-before.Mallocs) / float64(boots)
						r.BytesPerBoot = float64(after.TotalAlloc-before.TotalAlloc) / float64(boots)
					}
					if rep == 0 || r.BootsPerSec > best.BootsPerSec {
						best = r
					}
				}
				return best, nil
			}
			// observed builds a fresh collector plus a workload bound to it,
			// warmed like the shared one.
			observed := func() (*obs.Collector, campaign.Workload, error) {
				col := obs.New()
				owl := experiment.NewObservedWorkload(col)
				if _, _, err := owl.Expand(spec); err != nil {
					return nil, nil, err
				}
				return col, owl, nil
			}

			var d BenchDriver
			var col *obs.Collector
			switch *obsFlag {
			case "off":
				d, err = measure(wl, nil)
			case "on":
				var owl campaign.Workload
				col, owl, err = observed()
				if err != nil {
					return err
				}
				d, err = measure(owl, campaign.NewMetrics(col))
			case "compare":
				d, err = measure(wl, nil)
				if err != nil {
					return err
				}
				var owl campaign.Workload
				col, owl, err = observed()
				if err != nil {
					return err
				}
				var e BenchDriver
				e, err = measure(owl, campaign.NewMetrics(col))
				if err == nil {
					// The acceptance bar for the instrumentation layer: with
					// the collector fully enabled, throughput may not regress
					// more than 3%.
					const obsBand = 0.97
					if e.BootsPerSec < d.BootsPerSec*obsBand {
						return fmt.Errorf("bench -obs compare: %s/%s with the collector enabled is >3%% slower (%.1f vs %.1f boots/s)",
							driver, frontend, e.BootsPerSec, d.BootsPerSec)
					}
					fmt.Printf("bench %-14s %-12s collector overhead %.1f%% (%.1f vs %.1f boots/s): ok\n",
						driver, frontend, 100*(1-e.BootsPerSec/d.BootsPerSec), e.BootsPerSec, d.BootsPerSec)
				}
			}
			if err != nil {
				return err
			}
			if *phases && col != nil {
				d.Phases = phaseRows(col)
			}
			d.Backend = string(backend)
			d.SamplePct = effPct
			report.Drivers = append(report.Drivers, d)
			total.Boots += d.Boots
			total.ElapsedSec += d.ElapsedSec
			allocs += d.AllocsPerBoot * float64(d.Boots)
			bytes += d.BytesPerBoot * float64(d.Boots)
			if perSec[driver] == nil {
				perSec[driver] = make(map[experiment.Frontend]float64)
			}
			perSec[driver][frontend] = d.BootsPerSec
			fmt.Printf("bench %-14s %-12s %5d boots  %8.1f boots/s  %8.0f allocs/boot  %10.0f B/boot\n",
				driver, frontend, d.Boots, d.BootsPerSec, d.AllocsPerBoot, d.BytesPerBoot)
			for _, p := range d.Phases {
				fmt.Printf("      phase %-9s %7d spans  %10.1f us/span  %5.1f%% of phase time\n",
					p.Phase, p.Count, p.MeanUS, 100*p.Share)
			}
		}
		if total.Boots > 0 && total.ElapsedSec > 0 {
			total.BootsPerSec = float64(total.Boots) / total.ElapsedSec
			total.AllocsPerBoot = allocs / float64(total.Boots)
			total.BytesPerBoot = bytes / float64(total.Boots)
		}
		report.Totals = append(report.Totals, total)
		fmt.Printf("bench %-14s %-12s %5d boots  %8.1f boots/s  %8.0f allocs/boot  %10.0f B/boot\n",
			"total", frontend, total.Boots, total.BootsPerSec, total.AllocsPerBoot, total.BytesPerBoot)
	}

	if *cpuProfile != "" {
		pprof.StopCPUProfile() // idempotent with the deferred stop
		fmt.Printf("bench CPU profile written to %s\n", *cpuProfile)
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return fmt.Errorf("bench -memprofile: %w", err)
		}
		// The allocs profile carries cumulative allocation sites since
		// process start — effectively the campaign loop, which dwarfs
		// flag parsing — so no GC fence is needed for alloc_objects.
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			f.Close()
			return fmt.Errorf("bench -memprofile: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("bench -memprofile: %w", err)
		}
		fmt.Printf("bench allocation profile written to %s\n", *memProfile)
	}

	if *jsonOut {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("bench report written to %s\n", *out)
	}

	if *comparePath != "" {
		old, err := loadBenchReport(*comparePath)
		if err != nil {
			return err
		}
		if err := compareReports(old, &report, *comparePct); err != nil {
			return err
		}
	}

	if compare {
		// Sub-second boots/s measurements on shared CI runners vary by a
		// few percent even best-of-N; the gate guards against the front
		// end regressing, not against scheduler noise, so "slower" means
		// slower beyond a 5% noise band.
		const noiseBand = 0.95
		for driver, rates := range perSec {
			full, incr := rates[experiment.FrontendFull], rates[experiment.FrontendIncremental]
			if incr < full*noiseBand {
				return fmt.Errorf("bench compare: %s incremental front end is slower than full recompilation (%.1f vs %.1f boots/s)",
					driver, incr, full)
			}
		}
		fmt.Println("bench compare: incremental front end is no slower than full recompilation on every driver")
	}
	return nil
}
