package devilmut

import (
	"repro/internal/devil/ast"
	"repro/internal/devil/check"
)

// devilcheck adapts the checker to the error interface.
func devilcheck(dev *ast.Device) (*check.Info, error) {
	info, errs := check.Check(dev)
	return info, errs.Err()
}
