package campaign

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
)

// Store is an append-only result store. Append must be safe for
// concurrent use; Records returns everything the store held when it was
// opened plus everything appended since, in order.
type Store interface {
	Records() []Record
	Append(Record) error
	Close() error
}

// MemStore is the in-memory store used by the in-process table paths and
// by tests.
type MemStore struct {
	mu   sync.Mutex
	recs []Record
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{} }

// Records implements Store.
func (s *MemStore) Records() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Record, len(s.recs))
	copy(out, s.recs)
	return out
}

// Append implements Store.
func (s *MemStore) Append(r Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.recs = append(s.recs, r)
	return nil
}

// Close implements Store.
func (s *MemStore) Close() error { return nil }

// FileStore is the JSONL store: one record per line, appended record by
// record so a killed campaign loses at most the line being written.
// OpenFile truncates a torn trailing line (the crash artefact) so that
// subsequent appends extend the good prefix — the mutant the torn line
// described simply reruns on resume.
type FileStore struct {
	mu   sync.Mutex
	f    *os.File
	recs []Record
}

// OpenFile opens (or creates) a JSONL store at path and loads every
// complete record already present. A file whose very first record is
// unparseable is rejected — it is some other file, not a campaign store
// — while garbage after at least one good record is treated as a crash
// artefact and truncated away.
func OpenFile(path string) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("campaign store: %w", err)
	}
	s := &FileStore{f: f}
	br := bufio.NewReader(f)
	var off int64 // end offset of the last good record
	for {
		line, rerr := br.ReadString('\n')
		if len(line) > 0 {
			complete := strings.HasSuffix(line, "\n")
			trimmed := strings.TrimSpace(line)
			bad := false
			if trimmed != "" {
				var r Record
				if !complete || json.Unmarshal([]byte(trimmed), &r) != nil {
					bad = true
				} else {
					s.recs = append(s.recs, r)
				}
			}
			if bad {
				if len(s.recs) == 0 {
					f.Close()
					return nil, fmt.Errorf("campaign store %s: not a campaign store (unparseable first record)", path)
				}
				if err := f.Truncate(off); err != nil {
					f.Close()
					return nil, fmt.Errorf("campaign store %s: truncate crash artefact: %w", path, err)
				}
				break
			}
			off += int64(len(line))
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			f.Close()
			return nil, fmt.Errorf("campaign store %s: %w", path, rerr)
		}
	}
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("campaign store %s: %w", path, err)
	}
	return s, nil
}

// Records implements Store.
func (s *FileStore) Records() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Record, len(s.recs))
	copy(out, s.recs)
	return out
}

// Append implements Store: one JSON line per record, written atomically
// with respect to other Append calls.
func (s *FileStore) Append(r Record) error {
	data, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("campaign store: marshal: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.f.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("campaign store: append: %w", err)
	}
	s.recs = append(s.recs, r)
	return nil
}

// Close implements Store.
func (s *FileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}
