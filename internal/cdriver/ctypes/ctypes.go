// Package ctypes defines the type environment the hwC front end checks
// driver sources against: the kernel builtins every driver sees, and — for
// CDevil drivers — the typed stub interface generated from a Devil
// specification.
//
// The environment has two modes, mirroring the paper's comparison:
//
//   - Permissive ("plain C"): every value is an integer. Macros, port
//     numbers, commands and bit masks are interchangeable, so the compiler
//     can only reject structural faults (assignment to a non-lvalue, call
//     of a non-function, wrong arity).
//   - Strict ("CDevil debug"): each enumerated Devil type is a distinct
//     struct type (Drive_t, Command_t, ...). Passing the wrong constant to
//     a stub, comparing values of different device variables with ==, or
//     mixing a Devil value into integer arithmetic is a compile-time error,
//     exactly as with the C structs the Devil compiler generates in debug
//     mode (§2.3).
package ctypes

import (
	"fmt"
	"sort"

	"repro/internal/cdriver/cast"
	"repro/internal/devil/codegen"
)

// Func is the signature of a callable: builtin, driver function or stub.
type Func struct {
	Name     string
	Params   []cast.CType
	Result   cast.CType
	Variadic bool
	// Builtin marks functions provided by the kernel/stub runtime rather
	// than defined in the driver source.
	Builtin bool
	// StubVar names the device variable a get_/set_ stub accesses; empty
	// for non-stub functions.
	StubVar string
	// StubKind is "get" or "set" for stubs.
	StubKind string
}

// Env is the ambient typing environment of one driver compilation.
type Env struct {
	// Strict selects CDevil debug-mode typing.
	Strict bool
	// Funcs maps callable names to signatures.
	Funcs map[string]*Func
	// Consts maps enum constant names to their Devil struct type.
	Consts map[string]cast.CType
}

var (
	tInt  = cast.CType{Kind: cast.TypeInt}
	tU8   = cast.CType{Kind: cast.TypeU8}
	tU16  = cast.CType{Kind: cast.TypeU16}
	tU32  = cast.CType{Kind: cast.TypeU32}
	tS32  = cast.CType{Kind: cast.TypeS32}
	tVoid = cast.CType{Kind: cast.TypeVoid}
)

// NewEnv builds an environment holding only the kernel builtins.
func NewEnv(strict bool) *Env {
	e := &Env{
		Strict: strict,
		Funcs:  make(map[string]*Func),
		Consts: make(map[string]cast.CType),
	}
	add := func(name string, result cast.CType, params ...cast.CType) {
		e.Funcs[name] = &Func{Name: name, Params: params, Result: result, Builtin: true}
	}
	// Port I/O (Linux argument order: value first for output).
	add("inb", tU8, tInt)
	add("inw", tU16, tInt)
	add("inl", tU32, tInt)
	add("outb", tVoid, tU8, tInt)
	add("outw", tVoid, tU16, tInt)
	add("outl", tVoid, tU32, tInt)
	// Kernel services.
	add("panic", tVoid, stringType)
	e.Funcs["printk"] = &Func{
		Name: "printk", Params: []cast.CType{stringType},
		Result: tVoid, Variadic: true, Builtin: true,
	}
	add("udelay", tVoid, tInt)
	// Kernel transfer buffer.
	add("kbuf_read8", tU8, tInt)
	add("kbuf_write8", tVoid, tInt, tU8)
	add("kbuf_read16", tU16, tInt)
	add("kbuf_write16", tVoid, tInt, tU16)
	return e
}

// stringType is the internal type of string literals; it is not a
// spellable hwC type.
var stringType = cast.CType{Kind: cast.TypeVoid, Name: "string"}

// StringType returns the internal string type used for literal checking.
func StringType() cast.CType { return stringType }

// IsStringType reports whether t is the internal string type.
func IsStringType(t cast.CType) bool {
	return t.Kind == cast.TypeVoid && t.Name == "string"
}

// AddStubs registers the generated stub interface of a Devil specification:
// get_X/set_X functions and enum constants, plus dil_eq.
//
// Integer-typed device variables use plain C integer types (as in the
// paper's Figure 1: "u8 bm_get_buttons(); s8 bm_get_dy();"); enumerated
// variables use a distinct struct type per variable in strict mode and
// plain ints in permissive mode.
func (e *Env) AddStubs(iface *codegen.Interface) error {
	for _, v := range iface.Vars {
		var vt cast.CType
		switch v.Kind {
		case codegen.KindEnum:
			if e.Strict {
				vt = cast.CType{Kind: cast.TypeDevilStruct, Name: v.Name + "_t"}
			} else {
				vt = tU32
			}
		case codegen.KindSignedInt:
			vt = tS32
		case codegen.KindBool, codegen.KindInt, codegen.KindIntSet:
			vt = tU32
		default:
			return fmt.Errorf("stub %s: unknown kind %d", v.Name, int(v.Kind))
		}
		if v.Readable {
			name := "get_" + v.Name
			e.Funcs[name] = &Func{
				Name: name, Result: vt, Builtin: true,
				StubVar: v.Name, StubKind: "get",
			}
			if v.Block {
				bname := "get_block_" + v.Name
				e.Funcs[bname] = &Func{
					Name: bname, Params: []cast.CType{tInt, tInt},
					Result: tVoid, Builtin: true,
					StubVar: v.Name, StubKind: "get",
				}
			}
		}
		if v.Writable {
			name := "set_" + v.Name
			e.Funcs[name] = &Func{
				Name: name, Params: []cast.CType{vt}, Result: tVoid, Builtin: true,
				StubVar: v.Name, StubKind: "set",
			}
			if v.Block {
				bname := "set_block_" + v.Name
				e.Funcs[bname] = &Func{
					Name: bname, Params: []cast.CType{tInt, tInt},
					Result: tVoid, Builtin: true,
					StubVar: v.Name, StubKind: "set",
				}
			}
		}
		for _, c := range v.Consts {
			e.Consts[c] = vt
		}
	}
	// dil_eq: the polymorphic comparison macro; its devil-operand
	// requirement is special-cased by the checker.
	e.Funcs["dil_eq"] = &Func{
		Name: "dil_eq", Result: tInt, Builtin: true, StubKind: "eq",
		Params: []cast.CType{{Kind: cast.TypeDevilStruct, Name: "*"},
			{Kind: cast.TypeDevilStruct, Name: "*"}},
	}
	return nil
}

// BuiltinNames returns the registered callable names, sorted.
func (e *Env) BuiltinNames() []string {
	out := make([]string, 0, len(e.Funcs))
	for name := range e.Funcs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
