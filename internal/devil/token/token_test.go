package token_test

import (
	"testing"

	"repro/internal/devil/token"
)

func TestKeywordLookup(t *testing.T) {
	tests := map[string]token.Kind{
		"device":   token.KwDevice,
		"register": token.KwRegister,
		"variable": token.KwVariable,
		"private":  token.KwPrivate,
		"mask":     token.KwMask,
		"pre":      token.KwPre,
		"volatile": token.KwVolatile,
		"trigger":  token.KwTrigger,
		"signed":   token.KwSigned,
		"int":      token.KwInt,
		"bit":      token.KwBit,
		"port":     token.KwPort,
		"bool":     token.KwBool,
		"read":     token.KwRead,
		"write":    token.KwWrite,
		"sig_reg":  token.Ident,
		"Device":   token.Ident, // case-sensitive
	}
	for lit, want := range tests {
		if got := token.Lookup(lit); got != want {
			t.Errorf("Lookup(%q) = %v, want %v", lit, got, want)
		}
	}
}

func TestKindPredicates(t *testing.T) {
	for _, k := range []token.Kind{token.Int, token.HexInt, token.BitString, token.BitPattern} {
		if !k.IsLiteral() {
			t.Errorf("%v should be a literal", k)
		}
	}
	for _, k := range []token.Kind{token.Ident, token.KwDevice, token.Comma} {
		if k.IsLiteral() {
			t.Errorf("%v should not be a literal", k)
		}
	}
	if !token.KwDevice.IsKeyword() || token.Ident.IsKeyword() {
		t.Error("keyword predicate wrong")
	}
}

func TestPosAndTokenString(t *testing.T) {
	p := token.Pos{Offset: 10, Line: 3, Col: 7}
	if p.String() != "3:7" {
		t.Errorf("pos = %q", p)
	}
	if !p.IsValid() || (token.Pos{}).IsValid() {
		t.Error("validity wrong")
	}
	tok := token.Token{Kind: token.Ident, Lit: "dx", Pos: p}
	if tok.String() != `IDENT("dx")` {
		t.Errorf("token string = %q", tok)
	}
	op := token.Token{Kind: token.MapBoth}
	if op.String() != "<=>" {
		t.Error("operator token string wrong")
	}
}
