package drivers_test

import (
	"slices"
	"sort"
	"strings"
	"testing"

	"repro/internal/cdriver/clexer"
	"repro/internal/cdriver/cparser"
	"repro/internal/drivers"
)

var corpus = []string{
	"ide_c", "ide_devil",
	"busmouse_c", "busmouse_devil",
	"ne2000_c", "ne2000_devil",
	"permedia_c", "permedia_devil",
	"busmaster_c", "busmaster_devil",
}

// TestNamesMatchesCorpus binds the derived name list to the explicit
// corpus, so a driver file going missing (or arriving unlisted) fails.
func TestNamesMatchesCorpus(t *testing.T) {
	want := append([]string(nil), corpus...)
	sort.Strings(want)
	got := drivers.Names()
	if !slices.Equal(got, want) {
		t.Errorf("drivers.Names() = %v, want %v", got, want)
	}
}

func TestLoadCorpus(t *testing.T) {
	for _, name := range corpus {
		src, err := drivers.Load(name)
		if err != nil {
			t.Fatalf("load %s: %v", name, err)
		}
		if src.Name != name || src.Text == "" {
			t.Errorf("%s: bad source record", name)
		}
		wantDevil := strings.HasSuffix(name, "_devil")
		if src.Devil != wantDevil {
			t.Errorf("%s: Devil = %v, want %v", name, src.Devil, wantDevil)
		}
	}
	if _, err := drivers.Load("nonexistent"); err == nil {
		t.Error("unknown driver loaded")
	}
}

func TestCorpusParsesClean(t *testing.T) {
	for _, name := range corpus {
		src, err := drivers.Load(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, errs := cparser.Parse(src.Text); len(errs) != 0 {
			t.Errorf("%s does not parse: %v", name, errs[0])
		}
	}
}

func TestCorpusHasTaggedRegions(t *testing.T) {
	for _, name := range corpus {
		src, err := drivers.Load(name)
		if err != nil {
			t.Fatal(err)
		}
		toks, lerrs := clexer.Lex(src.Text)
		if len(lerrs) != 0 {
			t.Fatalf("%s: lex: %v", name, lerrs[0])
		}
		tagged := 0
		for _, tok := range toks {
			if tok.Tagged {
				tagged++
			}
		}
		if tagged == 0 {
			t.Errorf("%s has no //@hw-tagged tokens", name)
		}
		if tagged == len(toks) {
			t.Errorf("%s is entirely tagged — tags are meaningless", name)
		}
	}
}

// TestDevilDriversAreHardwareFree: the CDevil sources must not contain raw
// port I/O — that is the whole point of the re-engineering.
func TestDevilDriversAreHardwareFree(t *testing.T) {
	for _, name := range []string{"ide_devil", "busmouse_devil", "ne2000_devil", "permedia_devil", "busmaster_devil"} {
		src, err := drivers.Load(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, forbidden := range []string{"inb(", "outb(", "inw(", "outw(", "inl(", "outl(",
			"0x1f", "0x23c", "0x3f6", "0x30", "0x31f", "0x80", "0x9000", "0xc00"} {
			if strings.Contains(src.Text, forbidden) {
				t.Errorf("%s contains raw hardware access %q", name, forbidden)
			}
		}
	}
}
