#!/bin/sh
# check_docs.sh — the docs smoke check CI runs:
#
#  1. every internal/ package must carry a package comment in a non-test
#     file, so `go doc` gives a one-paragraph orientation per package;
#  2. every examples/* binary must build and run cleanly against the
#     simulated hardware;
#  3. the driverlab -h banner must name every embedded driver, so the
#     corpus (including newly added pairs) stays discoverable from the
#     CLI without reading the source;
#  4. every metric family the instrumented stack can register (the
#     `driverlab metrics` list) must be documented in ARCHITECTURE.md's
#     Observability section;
#  5. every registered hardware scenario (the `driverlab scenarios
#     -names` list) must be named in both ARCHITECTURE.md and README.md,
#     so the matrix axis stays discoverable from the docs;
#  6. the fleet subcommands (serve, worker) must be named in the
#     driverlab -h banner, so the scale-out surface is discoverable
#     from the CLI;
#  7. every execution backend (block, compiled, interp) must be named
#     in the driverlab -h banner, ARCHITECTURE.md and README.md, so
#     the -backend axis stays discoverable from the docs.
#
# Run from the repository root.
set -e

fail=0
for d in $(find internal -type d | sort); do
    has_nontest=0
    found=0
    for f in "$d"/*.go; do
        [ -e "$f" ] || continue
        case "$f" in *_test.go) continue ;; esac
        has_nontest=1
        if grep -q '^// Package ' "$f"; then
            found=1
        fi
    done
    if [ "$has_nontest" -eq 1 ] && [ "$found" -eq 0 ]; then
        echo "missing package comment: $d" >&2
        fail=1
    fi
done
if [ "$fail" -ne 0 ]; then
    echo "add a doc.go (or a package comment) to the packages above" >&2
    exit 1
fi
echo "package comments: ok"

for d in examples/*/; do
    printf 'running %s... ' "$d"
    go run "./$d" >/dev/null
    echo ok
done

usage=$(go run ./cmd/driverlab -h 2>&1)
fail=0
for src in internal/drivers/src/*.c; do
    name=$(basename "$src" .c)
    case "$usage" in
        *"$name"*) ;;
        *)
            echo "driverlab -h does not mention driver $name" >&2
            fail=1
            ;;
    esac
done
if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "driver corpus in usage text: ok"

for cmd in serve worker -connect; do
    case "$usage" in
        *"$cmd"*) ;;
        *)
            echo "driverlab -h does not mention fleet surface $cmd" >&2
            fail=1
            ;;
    esac
done
if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "fleet subcommands in usage text: ok"

arch=$(cat ARCHITECTURE.md)
fail=0
for m in $(go run ./cmd/driverlab metrics); do
    case "$arch" in
        *"$m"*) ;;
        *)
            echo "ARCHITECTURE.md does not document metric $m" >&2
            fail=1
            ;;
    esac
done
if [ "$fail" -ne 0 ]; then
    echo "add the metrics above to ARCHITECTURE.md's Observability section" >&2
    exit 1
fi
echo "metric names in ARCHITECTURE.md: ok"

readme=$(cat README.md)
fail=0
for s in $(go run ./cmd/driverlab scenarios -names); do
    case "$arch" in
        *"$s"*) ;;
        *)
            echo "ARCHITECTURE.md does not document scenario $s" >&2
            fail=1
            ;;
    esac
    case "$readme" in
        *"$s"*) ;;
        *)
            echo "README.md does not document scenario $s" >&2
            fail=1
            ;;
    esac
done
if [ "$fail" -ne 0 ]; then
    echo "add the scenarios above to ARCHITECTURE.md's Scenario axes section and the README" >&2
    exit 1
fi
echo "scenario names in ARCHITECTURE.md and README.md: ok"

fail=0
for b in block compiled interp; do
    for doc in usage arch readme; do
        eval "text=\$$doc"
        case "$text" in
            *"$b"*) ;;
            *)
                echo "$doc does not mention execution backend $b" >&2
                fail=1
                ;;
        esac
    done
done
if [ "$fail" -ne 0 ]; then
    echo "name every execution backend in driverlab -h, ARCHITECTURE.md and README.md" >&2
    exit 1
fi
echo "backend names in usage, ARCHITECTURE.md and README.md: ok"
