package experiment_test

import (
	"fmt"
	"log"

	"repro/internal/drivers"
	"repro/internal/experiment"
)

// ExampleBoot compiles the unmutated C IDE driver and boots it on a
// freshly assembled simulated PC: the kernel initialises the driver,
// mounts and checks the filesystem through it, and classifies the run.
func ExampleBoot() {
	src, err := drivers.Load("ide_c")
	if err != nil {
		log.Fatal(err)
	}
	toks, err := experiment.ParseDriver(src.Text)
	if err != nil {
		log.Fatal(err)
	}
	res, err := experiment.Boot(experiment.BootInput{Tokens: toks, Devil: src.Devil})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("outcome:", res.Outcome)
	fmt.Println(res.Console[len(res.Console)-1])
	// Output:
	// outcome: Boot
	// boot: reached userspace
}
