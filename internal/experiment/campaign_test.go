package experiment

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/campaign"
	"repro/internal/kernel"
)

// campaignTestSpec keeps the determinism tests affordable: a small,
// seeded sample of the C IDE driver's mutants.
func campaignTestSpec() campaign.Spec {
	s := CampaignSpec("ide_c", MutationOptions{SamplePct: 2, Seed: 7})
	s.Name = "determinism"
	s.Shards = 4
	return s
}

// renderStore reduces a store to the formatted Table-3 text.
func renderStore(t *testing.T, st campaign.Store) string {
	t.Helper()
	tables, _, err := campaign.Aggregate(st.Records())
	if err != nil {
		t.Fatal(err)
	}
	data, ok := tables["ide_c"]
	if !ok {
		t.Fatal("no ide_c data in store")
	}
	if !data.Complete() {
		t.Fatalf("store incomplete: %d/%d", data.Results, data.Selected)
	}
	return FormatDriverTable(TableFromCampaign(data), "Table 3")
}

// TestCampaignDeterminism: the same spec and seed produce byte-identical
// aggregated tables whether the campaign runs serially, sharded four
// ways into separate stores and merged, or killed halfway and resumed
// from the JSONL store.
func TestCampaignDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign determinism test is not short")
	}
	spec := campaignTestSpec()
	wl := NewWorkload()

	// Serial reference run (one worker, one shard selection: everything).
	serial := campaign.NewMemStore()
	if _, err := campaign.Run(spec, wl, serial, campaign.Options{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	want := renderStore(t, serial)

	// Sharded: each shard runs into its own file store; merge and compare.
	dir := t.TempDir()
	var stores []campaign.Store
	for sh := 0; sh < spec.Shards; sh++ {
		st, err := campaign.OpenFile(filepath.Join(dir, "shard.jsonl"+string(rune('0'+sh))))
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		if _, err := campaign.Run(spec, wl, st, campaign.Options{Shards: []int{sh}}); err != nil {
			t.Fatal(err)
		}
		stores = append(stores, st)
	}
	merged, err := campaign.OpenFile(filepath.Join(dir, "merged.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer merged.Close()
	if err := campaign.Merge(merged, stores...); err != nil {
		t.Fatal(err)
	}
	if got := renderStore(t, merged); got != want {
		t.Errorf("sharded+merged table differs from serial:\n--- serial\n%s\n--- sharded\n%s", want, got)
	}

	// Interrupted: keep only a prefix of the serial store (as a kill mid-
	// run would), resume, and compare.
	interrupted, err := campaign.OpenFile(filepath.Join(dir, "interrupted.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer interrupted.Close()
	recs := serial.Records()
	for _, r := range recs[:len(recs)/2] {
		if err := interrupted.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	sum, err := campaign.Run(spec, wl, interrupted, campaign.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Ran == 0 {
		t.Fatal("resume booted nothing; the interruption was not simulated")
	}
	if got := renderStore(t, interrupted); got != want {
		t.Errorf("resumed table differs from serial:\n--- serial\n%s\n--- resumed\n%s", want, got)
	}
}

// TestMachineReuseMatchesFreshBoots: booting through a Reset machine
// must classify identically to booting on a fresh machine — the
// machine-reuse fast path may not leak state between boots.
func TestMachineReuseMatchesFreshBoots(t *testing.T) {
	wl := NewWorkload().(*workload)
	p, err := wl.plan("ide_c")
	if err != nil {
		t.Fatal(err)
	}
	selected := selectMutants(len(p.res.Mutants), MutationOptions{SamplePct: 1, Seed: 3})
	m, err := NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range selected {
		mut := p.res.Mutants[id]
		input := BootInput{Tokens: p.res.Apply(mut), Budget: ExperimentBudget}
		fresh, err := Boot(input)
		if err != nil {
			t.Fatalf("mutant %d: fresh boot: %v", id, err)
		}
		m.Reset()
		reused, err := BootOn(m, input)
		if err != nil {
			t.Fatalf("mutant %d: reused boot: %v", id, err)
		}
		site := p.res.Sites[mut.SiteIndex]
		if classifyRow(fresh, site) != classifyRow(reused, site) {
			t.Errorf("mutant %d: fresh=%s reused=%s", id,
				classifyRow(fresh, site), classifyRow(reused, site))
		}
		if fresh.PartitionTableLost != reused.PartitionTableLost {
			t.Errorf("mutant %d: partition-loss divergence", id)
		}
	}
}

// TestMachineResetRestoresCleanBoot: after a damaging boot, Reset must
// return the machine to a state where the clean driver boots cleanly.
func TestMachineResetRestoresCleanBoot(t *testing.T) {
	m, err := NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	// Scribble over the image and wedge the controller state, then Reset.
	for _, s := range m.Image.Sectors {
		for i := range s {
			s[i] = 0xaa
		}
	}
	m.Kern.Printk("stale console line")
	m.Kern.SetBudget(1)
	m.Reset()

	src := mustLoadDriver(t, "ide_c")
	toks, err := ParseDriver(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := BootOn(m, BootInput{Tokens: toks})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != kernel.OutcomeBoot {
		t.Fatalf("clean boot on reset machine: %v (%v)", res.Outcome, res.RunErr)
	}
	if len(res.DamagedSectors) != 0 || res.PartitionTableLost {
		t.Errorf("audit found damage after Reset: %v", res.DamagedSectors)
	}
	for _, line := range res.Console {
		if line == "stale console line" {
			t.Error("console not cleared by Reset")
		}
	}
}

func mustLoadDriver(t *testing.T, name string) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "drivers", "src", name+".c"))
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}
