package ccompile_test

import (
	"testing"

	"repro/internal/cdriver/ccompile"
	"repro/internal/cdriver/cinterp"
)

// Loop-superblock edge cases: every control-flow shape that can break a
// fused loop out of its lean fast path must stay byte-identical — value,
// console, coverage and step count — across the interpreter, the
// per-statement backend and the block backend. runBoth enforces all four.

func intArg(v int64) cinterp.Value { return cinterp.Value{Kind: cinterp.ValInt, I: v} }

func TestSuperblockBreak(t *testing.T) {
	src := `
int find(int limit) {
	int i = 0;
	int acc = 0;
	while (i < 100) {
		acc = acc + i;
		if (acc > limit) {
			break;
		}
		i = i + 1;
	}
	return i;
}
`
	out := runBoth(t, src, "find", intArg(10))
	if out.val.I != 5 {
		t.Fatalf("find(10) = %d, want 5", out.val.I)
	}
}

func TestSuperblockContinue(t *testing.T) {
	src := `
int odds(int n) {
	int sum = 0;
	int i;
	for (i = 0; i < n; i = i + 1) {
		if ((i % 2) == 0) {
			continue;
		}
		sum = sum + i;
	}
	return sum;
}
`
	out := runBoth(t, src, "odds", intArg(10))
	if out.val.I != 25 {
		t.Fatalf("odds(10) = %d, want 25", out.val.I)
	}
}

func TestSuperblockNested(t *testing.T) {
	src := `
int grid(int n) {
	int total = 0;
	int i;
	for (i = 0; i < n; i = i + 1) {
		int j = 0;
		while (j < n) {
			if (i == j) {
				j = j + 1;
				continue;
			}
			total = total + 1;
			j = j + 1;
		}
		if (total > 1000) {
			break;
		}
	}
	return total;
}
`
	out := runBoth(t, src, "grid", intArg(7))
	if out.val.I != 42 {
		t.Fatalf("grid(7) = %d, want 42", out.val.I)
	}
}

func TestSuperblockZeroIterations(t *testing.T) {
	src := `
int skip(int n) {
	int count = 0;
	while (n > 10) {
		count = count + 1;
		n = n - 1;
	}
	for (; n > 10; n = n - 1) {
		count = count + 1;
	}
	return count;
}
`
	out := runBoth(t, src, "skip", intArg(3))
	if out.val.I != 0 {
		t.Fatalf("skip(3) = %d, want 0", out.val.I)
	}
	if out.steps == 0 {
		t.Fatalf("zero-iteration loops still charge their predicate steps")
	}
}

func TestSuperblockDoWhile(t *testing.T) {
	src := `
int atleastonce(int n) {
	int count = 0;
	do {
		count = count + 1;
		n = n - 1;
	} while (n > 0);
	return count;
}
`
	out := runBoth(t, src, "atleastonce", intArg(0))
	if out.val.I != 1 {
		t.Fatalf("atleastonce(0) = %d, want 1", out.val.I)
	}
}

// TestSuperblockRefusedAfterPatch mutates a fused loop's predicate
// through the incremental front end and requires (a) the patched body to
// agree with a from-scratch compile of the spliced program and (b) the
// patch to have re-fused the loop into a superblock rather than fall
// back to per-statement closures.
func TestSuperblockRefusedAfterPatch(t *testing.T) {
	src := `
int sum(int n) {
	int acc = 0;
	int i = 0;
	while (i < n) {
		acc = acc + i;
		i = i + 1;
	}
	return acc;
}
`
	prog, env := parseChecked(t, src)
	r := newRig()
	in, err := ccompile.NewIncrBlocks(prog, r.kern, r.bus, nil, nil)
	if err != nil {
		t.Fatalf("NewIncrBlocks: %v", err)
	}
	idx := declIdx(t, prog, "sum")
	// The cmut-style predicate mutation: relational operator flipped to
	// "<=", one extra iteration.
	d := parseDecl(t, prog, env, `
int sum(int n) {
	int acc = 0;
	int i = 0;
	while (i <= n) {
		acc = acc + i;
		i = i + 1;
	}
	return acc;
}
`)
	got := patchAndCall(t, in, prog, idx, d, "sum", intArg(4))
	if got.I != 10 {
		t.Fatalf("mutated sum(4) = %d, want 10", got.I)
	}
	if st := in.PatchStats(); st.Superblocks == 0 {
		t.Fatalf("patch did not re-fuse the loop: stats %+v", st)
	}
}
