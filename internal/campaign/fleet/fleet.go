// Package fleet scales the campaign engine across processes: a
// long-running coordinator loads a campaign.Spec, partitions the
// deterministic work-list into shard leases, and hands them to worker
// processes over a small TCP protocol of length-prefixed JSON frames.
//
// The division of labour keeps every execution decision where it
// already lives: the coordinator never boots a mutant — it expands the
// spec (exactly as campaign.Run would), tracks which task keys the
// canonical store still lacks, and leases shards; each worker runs the
// unmodified campaign engine over its leased shard against a seeded
// in-memory store and streams the freshly appended result records
// back in batches. Because task outcomes are pure functions of the
// task identity (seeded sampling, seeded fault injection, the
// differential-oracle guarantee across backends and front ends), a
// serial run, a fleet run, and a fleet run that lost workers
// mid-campaign all converge to byte-identical report tables.
//
// Robustness is lease-based: workers heartbeat while booting, the
// coordinator re-leases any shard whose owner disconnects or whose
// heartbeat lapses, and record appends deduplicate by task key — so a
// re-leased shard can be partially re-executed by a second worker
// without losing or duplicating a single task record. Spec
// fingerprints are exchanged at handshake; a worker built for a
// different campaign is rejected by name before any work flows.
package fleet

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/campaign"
)

// Proto is the fleet protocol version. The handshake rejects a worker
// whose version differs — frame shapes may change between versions.
const Proto = 1

// MaxFrame bounds one frame's JSON payload. A grant carrying every
// already-stored record of a dense shard is the largest frame the
// protocol produces; 8 MiB holds tens of thousands of records. Frames
// announcing a larger payload are rejected without reading it.
const MaxFrame = 8 << 20

// Message types. Every frame is one Msg; T selects which fields are
// meaningful, mirroring the flat campaign.Record schema.
const (
	// MsgHello is the worker's opening frame: name, protocol version,
	// and (optionally) the spec fingerprint it insists on.
	MsgHello = "hello"
	// MsgWelcome is the coordinator's handshake reply: the campaign
	// spec, its fingerprint, and the heartbeat/lease intervals.
	MsgWelcome = "welcome"
	// MsgReject refuses a handshake, naming the offense; the
	// coordinator closes the connection after sending it.
	MsgReject = "reject"
	// MsgLease asks for the next shard lease.
	MsgLease = "lease"
	// MsgGrant hands the worker one shard plus the result records the
	// store already holds for it (the worker seeds its engine with
	// them, so only the remaining tasks boot).
	MsgGrant = "grant"
	// MsgRetry answers a lease request when nothing is leaseable right
	// now (all pending shards are leased out); the worker sleeps
	// DelayMS and asks again.
	MsgRetry = "retry"
	// MsgDrain answers a lease request when the campaign is complete;
	// the worker exits cleanly.
	MsgDrain = "drain"
	// MsgRecords streams a batch of freshly booted result records.
	MsgRecords = "records"
	// MsgHeartbeat keeps the worker's leases alive while it boots.
	MsgHeartbeat = "heartbeat"
	// MsgDone reports a leased shard fully executed.
	MsgDone = "done"
)

// knownTypes is the frame dispatch table; ReadMsg rejects anything
// outside it by name.
var knownTypes = map[string]bool{
	MsgHello: true, MsgWelcome: true, MsgReject: true,
	MsgLease: true, MsgGrant: true, MsgRetry: true, MsgDrain: true,
	MsgRecords: true, MsgHeartbeat: true, MsgDone: true,
}

// Msg is the one envelope every fleet frame carries. A single flat
// shape (like campaign.Record) keeps the codec trivial and the wire
// format human-decodable; T selects the meaningful fields.
type Msg struct {
	T string `json:"t"`

	// Handshake fields (hello/welcome).
	Name        string         `json:"name,omitempty"`
	Proto       int            `json:"proto,omitempty"`
	Fingerprint string         `json:"fingerprint,omitempty"`
	Spec        *campaign.Spec `json:"spec,omitempty"`
	HeartbeatMS int            `json:"heartbeat_ms,omitempty"`
	LeaseTTLMS  int            `json:"lease_ttl_ms,omitempty"`

	// Lease fields (grant/records/done). Shard deliberately has no
	// omitempty: shard 0 is a valid lease.
	Shard   int               `json:"shard"`
	Done    []campaign.Record `json:"done,omitempty"`
	Records []campaign.Record `json:"records,omitempty"`

	// Backpressure (retry) and refusal (reject) fields.
	DelayMS int    `json:"delay_ms,omitempty"`
	Error   string `json:"error,omitempty"`
}

// WriteMsg encodes one frame: a 4-byte big-endian payload length
// followed by the JSON payload, written in a single Write so a frame
// is one TCP segment in the common case.
func WriteMsg(w io.Writer, m Msg) error {
	payload, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("fleet: encode %s frame: %w", m.T, err)
	}
	if len(payload) > MaxFrame {
		return fmt.Errorf("fleet: %s frame payload is %d bytes, exceeding the %d-byte limit",
			m.T, len(payload), MaxFrame)
	}
	buf := make([]byte, 4+len(payload))
	binary.BigEndian.PutUint32(buf, uint32(len(payload)))
	copy(buf[4:], payload)
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("fleet: write %s frame: %w", m.T, err)
	}
	return nil
}

// ReadMsg decodes one frame. Every malformed input is rejected with an
// error naming the offense — a torn frame (the stream ended mid-frame),
// an oversized payload, an unparseable payload, or an unknown message
// type — so a coordinator log names what a misbehaving peer sent. A
// clean close at a frame boundary returns io.EOF unwrapped.
func ReadMsg(r io.Reader) (Msg, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return Msg{}, io.EOF
		}
		return Msg{}, fmt.Errorf("fleet: torn frame: stream ended inside the length header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 {
		return Msg{}, fmt.Errorf("fleet: empty frame (zero-length payload)")
	}
	if n > MaxFrame {
		return Msg{}, fmt.Errorf("fleet: oversized frame: %d-byte payload announced, limit is %d",
			n, MaxFrame)
	}
	payload := make([]byte, n)
	if got, err := io.ReadFull(r, payload); err != nil {
		return Msg{}, fmt.Errorf("fleet: torn frame: %d of %d payload bytes before the stream ended: %w",
			got, n, err)
	}
	var m Msg
	if err := json.Unmarshal(payload, &m); err != nil {
		return Msg{}, fmt.Errorf("fleet: unparseable frame payload: %w", err)
	}
	if !knownTypes[m.T] {
		return Msg{}, fmt.Errorf("fleet: unknown message type %q", m.T)
	}
	return m, nil
}
