package permedia_test

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/hw/permedia"
)

func newRig(t *testing.T) (*hw.Bus, *hw.Clock, *permedia.GPU) {
	t.Helper()
	clock := &hw.Clock{}
	bus := hw.NewBus()
	gpu := permedia.New(clock)
	if err := bus.Map(0x8000, 24, gpu.Control()); err != nil {
		t.Fatal(err)
	}
	if err := bus.Map(0x9000, 1, gpu.FIFO()); err != nil {
		t.Fatal(err)
	}
	return bus, clock, gpu
}

func TestSoftwareReset(t *testing.T) {
	bus, clock, _ := newRig(t)
	if err := bus.Out32(0x8009, 0xdead); err != nil { // scribble ScreenBase
		t.Fatal(err)
	}
	if err := bus.Out32(0x8000, 1); err != nil { // trigger reset
		t.Fatal(err)
	}
	v, _ := bus.In32(0x8000)
	if v>>31 != 1 {
		t.Fatalf("reset not in progress: %#x", v)
	}
	clock.Tick(200)
	v, _ = bus.In32(0x8000)
	if v>>31 != 0 {
		t.Errorf("reset still pending after delay: %#x", v)
	}
	v, _ = bus.In32(0x8009)
	if v != 0 {
		t.Errorf("registers not cleared by reset: ScreenBase=%#x", v)
	}
}

func TestFIFOFlowControl(t *testing.T) {
	bus, clock, gpu := newRig(t)
	space, _ := bus.In32(0x8003)
	if space == 0 {
		t.Fatal("no FIFO space at power-on")
	}
	for i := uint32(0); i < space; i++ {
		if err := bus.Out32(0x9000, i); err != nil {
			t.Fatal(err)
		}
	}
	if s, _ := bus.In32(0x8003); s != 0 {
		t.Errorf("FIFO space after filling = %d, want 0", s)
	}
	// Overflow raises the error interrupt.
	if err := bus.Out32(0x9000, 0xffffffff); err != nil {
		t.Fatal(err)
	}
	if flags, _ := bus.In32(0x8002); flags&permedia.IntError == 0 {
		t.Errorf("overflow did not raise error interrupt: %#x", flags)
	}
	// The core drains the FIFO over time.
	clock.Tick(16)
	if s, _ := bus.In32(0x8003); s == 0 {
		t.Error("core did not drain the FIFO")
	}
	if gpu.Drained() == 0 {
		t.Error("drain counter did not advance")
	}
}

func TestVerticalRetraceInterrupt(t *testing.T) {
	bus, clock, _ := newRig(t)
	if err := bus.Out32(0x8010, 100); err != nil { // VTotal
		t.Fatal(err)
	}
	if err := bus.Out32(0x8014, 1); err != nil { // VideoControl: enable
		t.Fatal(err)
	}
	clock.Tick(150)
	line, _ := bus.In32(0x8015)
	if line == 0 || line >= 100 {
		t.Errorf("line counter = %d, want 1..99", line)
	}
	if flags, _ := bus.In32(0x8002); flags&permedia.IntVRetrace == 0 {
		t.Errorf("no vertical retrace interrupt after a full frame: %#x", flags)
	}
	// Write-1-to-clear.
	if err := bus.Out32(0x8002, permedia.IntVRetrace); err != nil {
		t.Fatal(err)
	}
	if flags, _ := bus.In32(0x8002); flags&permedia.IntVRetrace != 0 {
		t.Error("retrace flag survived clear")
	}
}

// TestHostileProgramming drives the model the way mutated drivers do —
// out-of-range DMA counts, FIFO overrun past capacity, a zero vertical
// total, and enormous elapsed-time batches from a mutated delay
// constant — and requires the chip to misbehave politely (flags, drops,
// clamps) instead of panicking the harness.
func TestHostileProgramming(t *testing.T) {
	bus, clock, gpu := newRig(t)
	// Maximum DMA count with a huge time jump: must clamp, complete, and
	// raise the completion interrupt, not overflow.
	if err := bus.Out32(0x8006, 0xffffffff); err != nil {
		t.Fatal(err)
	}
	clock.Tick(1 << 40)
	if cnt, _ := bus.In32(0x8006); cnt != 0 {
		t.Errorf("hostile DMA count did not drain: %d", cnt)
	}
	if flags, _ := bus.In32(0x8002); flags&permedia.IntDMA == 0 {
		t.Errorf("hostile DMA count raised no completion interrupt: %#x", flags)
	}
	// Zero vertical total with video enabled: the timing generator must
	// free-run, keep the line counter in range and raise retrace.
	if err := bus.Out32(0x8010, 0); err != nil {
		t.Fatal(err)
	}
	if err := bus.Out32(0x8014, 1); err != nil {
		t.Fatal(err)
	}
	clock.Tick(1 << 40)
	if line, _ := bus.In32(0x8015); line >= 1024 {
		t.Errorf("line counter out of range with zero VTotal: %d", line)
	}
	if flags, _ := bus.In32(0x8002); flags&permedia.IntVRetrace == 0 {
		t.Errorf("free-running frame raised no retrace: %#x", flags)
	}
	// FIFO overrun far past capacity: every excess word drops with the
	// error flag, and the drain accounting stays consistent.
	for i := 0; i < 100; i++ {
		if err := bus.Out32(0x9000, uint32(i)); err != nil {
			t.Fatal(err)
		}
	}
	if gpu.FIFODepth() != 32 {
		t.Errorf("FIFO depth after overrun = %d, want capacity 32", gpu.FIFODepth())
	}
	if flags, _ := bus.In32(0x8002); flags&permedia.IntError == 0 {
		t.Errorf("overrun raised no error interrupt: %#x", flags)
	}
	clock.Tick(1 << 40)
	if gpu.FIFODepth() != 0 {
		t.Errorf("FIFO not drained after huge elapsed batch: %d", gpu.FIFODepth())
	}
	// Out-of-aperture accesses are device errors, not panics.
	if _, err := gpu.Control().Read(24, hw.Width32); err == nil {
		t.Error("read past the aperture succeeded")
	}
	if err := gpu.Control().Write(1000, hw.Width32, 1); err == nil {
		t.Error("write past the aperture succeeded")
	}
}

// TestGPUReset: Reset returns the chip to the cold power-on state —
// the campaign rig-reuse contract.
func TestGPUReset(t *testing.T) {
	bus, clock, gpu := newRig(t)
	if err := bus.Out32(0x8010, 50); err != nil {
		t.Fatal(err)
	}
	if err := bus.Out32(0x8014, 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := bus.Out32(0x9000, uint32(i)); err != nil {
			t.Fatal(err)
		}
	}
	clock.Tick(200)
	gpu.Reset()
	if gpu.Drained() != 0 || gpu.FIFODepth() != 0 || gpu.VideoEnabled() ||
		gpu.IntFlags() != 0 || gpu.VTotal() != 0 {
		t.Errorf("state survived Reset: drained=%d depth=%d video=%v flags=%#x vtotal=%d",
			gpu.Drained(), gpu.FIFODepth(), gpu.VideoEnabled(), gpu.IntFlags(), gpu.VTotal())
	}
	// The drain clock restarts from the reset instant, not power-on.
	for i := 0; i < 4; i++ {
		if err := bus.Out32(0x9000, uint32(i)); err != nil {
			t.Fatal(err)
		}
	}
	clock.Tick(64)
	if gpu.Drained() != 4 {
		t.Errorf("post-Reset drain = %d, want 4", gpu.Drained())
	}
}

func TestDMACompletionInterrupt(t *testing.T) {
	bus, clock, _ := newRig(t)
	if err := bus.Out32(0x8005, 0x1000); err != nil { // DMAAddress
		t.Fatal(err)
	}
	if err := bus.Out32(0x8006, 64); err != nil { // DMACount
		t.Fatal(err)
	}
	clock.Tick(16)
	if cnt, _ := bus.In32(0x8006); cnt != 0 {
		t.Errorf("DMA count did not drain: %d", cnt)
	}
	if flags, _ := bus.In32(0x8002); flags&permedia.IntDMA == 0 {
		t.Errorf("DMA completion interrupt missing: %#x", flags)
	}
}
