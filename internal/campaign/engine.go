package campaign

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Outcome is a worker's classification of one booted mutant.
type Outcome struct {
	// Row is the Table 3/4 row label the boot landed in.
	Row string
	// Site is the mutation-site index the mutant belongs to.
	Site int
	// Lost reports partition-table destruction (the paper's anecdote).
	Lost bool
	// Steps is the watchdog step count the boot consumed.
	Steps int64
}

// Worker executes tasks. A worker is owned by exactly one pool goroutine,
// so implementations can keep heavyweight per-worker state — notably a
// simulated machine that is Reset between boots instead of rebuilt.
type Worker interface {
	Boot(Task) (Outcome, error)
	Close()
}

// Workload binds the engine to a concrete experiment: how a spec expands
// into tasks, and how one task boots.
type Workload interface {
	// Expand deterministically derives the per-driver metadata and the
	// full selected work-list, in enumeration order, shards unassigned.
	Expand(Spec) ([]Meta, []Task, error)
	// NewWorker builds one worker. Called once per pool goroutine.
	NewWorker(Spec) (Worker, error)
}

// Options tunes one engine run.
type Options struct {
	// Workers is the pool size (default: GOMAXPROCS).
	Workers int
	// Shards selects which shard indices to run; nil means all of them.
	// Tasks of unselected shards are neither run nor counted in Total.
	Shards []int
	// Progress, when non-nil, is called after every recorded boot with
	// the number of selected tasks already in the store and the total.
	Progress func(done, total int)
	// Metrics, when non-nil, receives boot/outcome/dedup/store-latency
	// instrumentation. The disabled (nil) bundle costs nothing.
	Metrics *Metrics
	// Status, when non-nil, accumulates the live progress the /status
	// endpoint and progress line render.
	Status *StatusTracker
	// Interrupt, when non-nil, stops feeding new tasks once it is
	// closed; in-flight boots finish and are recorded, then Run
	// returns ErrInterrupted. The store is left consistent, so a
	// subsequent Run resumes exactly where this one stopped.
	Interrupt <-chan struct{}
}

// ErrInterrupted reports that Run stopped early because Options.
// Interrupt was closed. The Summary alongside it is valid, and the
// campaign resumes by re-running the same spec against the same store.
var ErrInterrupted = errors.New("campaign interrupted")

// Summary reports what one Run did.
type Summary struct {
	// Total is the number of selected tasks (after shard filtering).
	Total int
	// Skipped is how many of them the store already held (resume).
	Skipped int
	// Ran is how many booted in this run.
	Ran int
	// Deduped is how many were recorded without booting because their
	// mutated token stream was identical to another task's (dedup_of).
	Deduped int
	// Panics is how many boots the harness panicked on; each was
	// recovered, recorded as RowHarnessPanic and quarantined.
	Panics int
	// Rows histograms the outcomes recorded this run (boots + dedups).
	Rows map[string]int
}

// expandMatrix crosses a workload's pristine expansion with the spec's
// scenario list: one meta and one copy of every task per scenario cell.
// A spec without scenarios passes through untouched, so pre-matrix
// campaigns keep their exact work-list.
func expandMatrix(spec Spec, metas []Meta, tasks []Task) ([]Meta, []Task) {
	if len(spec.Scenarios) == 0 {
		return metas, tasks
	}
	outM := make([]Meta, 0, len(metas)*len(spec.Scenarios))
	outT := make([]Task, 0, len(tasks)*len(spec.Scenarios))
	for _, sc := range spec.Scenarios {
		for _, m := range metas {
			m.Scenario = sc
			outM = append(outM, m)
		}
		for _, t := range tasks {
			t.Scenario = sc
			if sc != "" {
				// Off the pristine cell, stream-identical mutants no longer
				// boot identically: each task's injector seed includes its
				// mutant ID, so the engine boots every mutant rather than
				// copying a representative's outcome.
				t.Dedup = ""
			}
			outT = append(outT, t)
		}
	}
	return outM, outT
}

// Transient store append/flush failures (an NFS hiccup, a momentary
// ENOSPC) are retried with exponential backoff before they abort the
// campaign; storeSleep is swapped out by tests.
var (
	storeBackoff = []time.Duration{5 * time.Millisecond, 25 * time.Millisecond, 125 * time.Millisecond}
	storeSleep   = time.Sleep
)

// bootSafely runs one boot with a recover() fence: a panic anywhere in
// the worker's boot path (workload hooks, sims, backends) comes back as
// the panic's text instead of unwinding the pool. The campaign records
// it as a quarantined RowHarnessPanic outcome and keeps going — one sick
// mutant must not kill a fault-heavy run.
func bootSafely(w Worker, t Task) (out Outcome, err error, panicMsg string) {
	defer func() {
		if r := recover(); r != nil {
			panicMsg = fmt.Sprint(r)
			if panicMsg == "" {
				panicMsg = "panic with empty message"
			}
		}
	}()
	out, err = w.Boot(t)
	return out, err, ""
}

// Run executes a campaign: expand, shard, skip already-stored results,
// boot the remainder on a worker pool, and append every outcome to the
// store. Run is idempotent — rerunning a completed campaign boots
// nothing — and crash-safe: killing it mid-run loses at most one record,
// and the next Run picks up where the store ends.
func Run(spec Spec, wl Workload, store Store, opts Options) (*Summary, error) {
	spec = spec.Normalized()
	fp := spec.Fingerprint()
	if spec.FlushEvery > 0 {
		if fs, ok := store.(interface{ SetFlushEvery(int) }); ok {
			fs.SetFlushEvery(spec.FlushEvery)
		}
	}

	// put is the instrumented, retrying append: with metrics enabled
	// every store append is timed and FileStore checkpoints report their
	// flush latency through the hook; a failing append is retried with
	// backoff before it aborts the campaign. A retried append can leave
	// a duplicate record behind a partially-flushed failure — harmless,
	// since aggregation and resume are first-record-wins.
	base := store.Append
	if opts.Metrics != nil {
		base = func(r Record) error {
			t := opts.Metrics.appendH.Start()
			err := store.Append(r)
			t.Stop()
			return err
		}
		if fs, ok := store.(interface{ SetFlushHook(func(time.Duration)) }); ok {
			fs.SetFlushHook(opts.Metrics.ObserveFlush)
		}
	}
	put := func(r Record) error {
		err := base(r)
		for attempt := 0; err != nil && attempt < len(storeBackoff); attempt++ {
			storeSleep(storeBackoff[attempt])
			opts.Metrics.retry()
			err = base(r)
		}
		if err != nil {
			return fmt.Errorf("campaign: store append failed after %d attempts: %w",
				len(storeBackoff)+1, err)
		}
		return nil
	}

	wantShard := func(int) bool { return true }
	if opts.Shards != nil {
		sel := make(map[int]bool, len(opts.Shards))
		for _, sh := range opts.Shards {
			if sh < 0 || sh >= spec.Shards {
				return nil, fmt.Errorf("campaign: shard %d outside [0..%d)", sh, spec.Shards)
			}
			sel[sh] = true
		}
		wantShard = func(sh int) bool { return sel[sh] }
	}

	existing := store.Records()
	done := make(map[string]bool)
	resultAt := make(map[string]int) // stored-outcome index, for dedup copies
	haveSpec := false
	haveMeta := make(map[string]bool)
	for i, r := range existing {
		switch r.Kind {
		case KindSpec:
			if r.Fingerprint != fp {
				return nil, fmt.Errorf("campaign: store belongs to a different spec (fingerprint %s, want %s)",
					r.Fingerprint, fp)
			}
			haveSpec = true
		case KindMeta:
			haveMeta[CellLabel(r.Driver, r.Scenario)] = true
		case KindResult:
			key := recordKey(r)
			if !done[key] {
				done[key] = true
				resultAt[key] = i
			}
		}
	}

	metas, tasks, err := ExpandPlan(spec, wl)
	if err != nil {
		return nil, err
	}
	if !haveSpec {
		if err := put(SpecRecord(spec)); err != nil {
			return nil, err
		}
	}
	for _, m := range metas {
		if !haveMeta[CellLabel(m.Driver, m.Scenario)] {
			if err := put(MetaRecord(m)); err != nil {
				return nil, err
			}
		}
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if opts.Status != nil {
		opts.Status.Begin(spec.Name, fp, workers)
	}

	sum := &Summary{Rows: make(map[string]int)}

	// Mutant deduplication: tasks of one driver sharing a Dedup key have
	// byte-identical mutated token streams, hence identical boot
	// outcomes. The first such task in enumeration order (or one whose
	// outcome the store already holds) is the group's representative;
	// the rest are recorded from its outcome with dedup_of provenance
	// instead of booting. Groups form within this invocation's shard
	// selection, so independent shard runs stay independent — a
	// duplicate whose representative lives in another shard simply
	// boots, and the tables agree either way.
	type dedupGroup struct {
		repMutant int
		repKey    string
		stored    bool   // representative's outcome already in the store
		dups      []Task // pending tasks awaiting the representative's boot
	}
	groups := make(map[string]*dedupGroup)
	groupKey := func(t Task) string { return t.Driver + "\x00" + t.Scenario + "\x00" + t.Dedup }

	var pending []Task
	for _, t := range tasks {
		if !wantShard(t.Shard) {
			continue
		}
		sum.Total++
		key := t.Key()
		cell := CellLabel(t.Driver, t.Scenario)
		if opts.Status != nil {
			opts.Status.Plan(cell, t.Shard)
		}
		if done[key] {
			if t.Dedup != "" && groups[groupKey(t)] == nil {
				groups[groupKey(t)] = &dedupGroup{repMutant: t.Mutant, repKey: key, stored: true}
			}
			sum.Skipped++
			row := existing[resultAt[key]].Row
			opts.Metrics.skip(cell, row)
			if opts.Status != nil {
				opts.Status.Record(cell, t.Shard, row, RecordSkip)
			}
			continue
		}
		if t.Dedup == "" {
			pending = append(pending, t)
			continue
		}
		g := groups[groupKey(t)]
		switch {
		case g == nil:
			groups[groupKey(t)] = &dedupGroup{repMutant: t.Mutant, repKey: key}
			pending = append(pending, t)
		case g.stored:
			// The identical stream booted in a previous run: record the
			// shared outcome immediately (resume path).
			rep := existing[resultAt[g.repKey]]
			if err := put(dedupRecord(rep, g.repMutant, t)); err != nil {
				return sum, err
			}
			sum.Deduped++
			sum.Rows[rep.Row]++
			opts.Metrics.dedup(cell, rep.Row)
			if opts.Status != nil {
				opts.Status.Record(cell, t.Shard, rep.Row, RecordDedup)
			}
		default:
			g.dups = append(g.dups, t)
		}
	}
	if len(pending) == 0 {
		return sum, nil
	}

	if workers > len(pending) {
		workers = len(pending)
	}

	var (
		mu       sync.Mutex // guards sum, recorded, firstErr
		recorded = sum.Skipped + sum.Deduped
		firstErr error
		stopped  atomic.Bool // aborts the feed after the first error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		stopped.Store(true)
	}
	feed := make(chan Task)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			w, err := wl.NewWorker(spec)
			if err != nil {
				fail(err)
				for range feed {
				} // drain
				return
			}
			// Closure, not a bound method: w is reassigned when a panic
			// quarantine rebuilds the worker, and nil when the rebuild
			// itself failed.
			defer func() {
				if w != nil {
					w.Close()
				}
			}()
			workerBoots := opts.Metrics.worker(worker)
			for t := range feed {
				if stopped.Load() {
					continue // drain: the campaign is aborting
				}
				cell := CellLabel(t.Driver, t.Scenario)
				out, err, panicMsg := bootSafely(w, t)
				panicked := panicMsg != ""
				if panicked {
					// Quarantine: record the panic as the mutant's outcome and
					// replace the worker — an unwound boot leaves its rigs in
					// an unknown state, and the next mutant deserves a clean
					// machine.
					out = Outcome{Row: RowHarnessPanic}
					opts.Metrics.panicked(cell)
					w.Close()
					if w, err = wl.NewWorker(spec); err != nil {
						w = nil
						fail(fmt.Errorf("campaign: worker rebuild after harness panic (%s): %w",
							panicMsg, err))
						continue
					}
				} else if err != nil {
					fail(err)
					continue
				}
				rec := Record{Kind: KindResult, Driver: t.Driver, Mutant: t.Mutant,
					Scenario: t.Scenario, Site: out.Site, Row: out.Row, Lost: out.Lost,
					Steps: out.Steps, Shard: t.Shard,
					HarnessPanic: panicked, Panic: panicMsg}
				if err := put(rec); err != nil {
					fail(err)
					continue
				}
				// If this task represents a dedup group, its duplicates are
				// now decided: record them from the fresh outcome. The
				// representative's record is always appended first, so a
				// crash can orphan duplicates (rerun on resume) but never a
				// dedup_of reference.
				extra := 0
				if t.Dedup != "" {
					if g := groups[groupKey(t)]; g != nil && g.repKey == t.Key() {
						for _, d := range g.dups {
							if err := put(dedupRecord(rec, t.Mutant, d)); err != nil {
								fail(err)
								break
							}
							extra++
							opts.Metrics.dedup(CellLabel(d.Driver, d.Scenario), rec.Row)
							if opts.Status != nil {
								opts.Status.Record(CellLabel(d.Driver, d.Scenario),
									d.Shard, rec.Row, RecordDedup)
							}
						}
					}
				}
				kind := RecordRan
				if panicked {
					kind = RecordPanic
				} else {
					opts.Metrics.boot(cell, out.Row, out.Steps)
					workerBoots.Inc()
				}
				if opts.Status != nil {
					opts.Status.Record(cell, t.Shard, out.Row, kind)
				}
				mu.Lock()
				if panicked {
					sum.Panics++
				} else {
					sum.Ran++
				}
				sum.Deduped += extra
				sum.Rows[out.Row] += 1 + extra
				recorded += 1 + extra
				prog := recorded
				mu.Unlock()
				if opts.Progress != nil {
					opts.Progress(prog, sum.Total)
				}
			}
		}(i)
	}
	var interrupted bool
feedLoop:
	for _, t := range pending {
		if stopped.Load() {
			break
		}
		select {
		case feed <- t:
		case <-opts.Interrupt:
			// A nil Interrupt channel never selects; a closed one stops
			// the feed. Queued workers finish their in-flight boots.
			interrupted = true
			break feedLoop
		}
	}
	close(feed)
	wg.Wait()
	if firstErr != nil {
		return sum, firstErr
	}
	if interrupted {
		return sum, ErrInterrupted
	}
	return sum, nil
}

// dedupRecord builds the result record of a task whose mutated stream
// is identical to an already-recorded representative: the same outcome
// fields under the task's own identity, with dedup_of pointing at the
// mutant that actually booted (following an existing dedup_of chain to
// its origin).
func dedupRecord(rep Record, repMutant int, t Task) Record {
	r := rep
	r.Mutant = t.Mutant
	r.Shard = t.Shard
	if r.DedupOf == nil {
		m := repMutant
		r.DedupOf = &m
	}
	return r
}

// ExpandPlan derives a spec's complete work plan: the workload's
// pristine expansion crossed with the scenario matrix, every task
// carrying its shard assignment. This is exactly the work-list Run
// executes — exported so a fleet coordinator can partition the same
// plan into leases without running a single boot itself.
func ExpandPlan(spec Spec, wl Workload) ([]Meta, []Task, error) {
	spec = spec.Normalized()
	metas, tasks, err := wl.Expand(spec)
	if err != nil {
		return nil, nil, err
	}
	metas, tasks = expandMatrix(spec, metas, tasks)
	for i := range tasks {
		tasks[i].Shard = ShardOfTask(tasks[i], spec.Shards)
	}
	return metas, tasks, nil
}

// ParallelDo runs fn over [0,n) with a bounded worker pool and waits —
// the generic fan-out primitive the experiment package's in-memory loops
// delegate to.
func ParallelDo(n, workers int, fn func(i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// ShardPlan reports how a spec's work-list distributes over its shards —
// the operator-facing preview of a sharded campaign. Tasks are the
// workload's pristine expansion; the spec's scenario matrix is applied
// here, as Run does.
func ShardPlan(spec Spec, tasks []Task) map[int]int {
	spec = spec.Normalized()
	_, tasks = expandMatrix(spec, nil, tasks)
	plan := make(map[int]int, spec.Shards)
	for _, t := range tasks {
		plan[ShardOfTask(t, spec.Shards)]++
	}
	return plan
}

// SortShards returns the shard indices of a plan in order.
func SortShards(plan map[int]int) []int {
	out := make([]int, 0, len(plan))
	for sh := range plan {
		out = append(out, sh)
	}
	sort.Ints(out)
	return out
}
