package experiment

import (
	"fmt"

	"repro/internal/cdriver/cinterp"
	"repro/internal/devil"
	"repro/internal/devil/codegen"
	"repro/internal/hw"
	"repro/internal/hw/busmouse"
	"repro/internal/hw/sysboard"
	"repro/internal/kernel"
	"repro/internal/specs"
)

// The busmouse experiment extends the paper's evaluation to a second
// driver pair — §4.2 notes the authors were "currently evaluating the
// robustness of Devil over several other Linux drivers". The boot here is
// the mouse's: probe via the signature register, configure, then sample a
// fixed motion script; an event stream that differs from the script is
// visible damage (a wild cursor).

const mouseBase hw.Port = 0x23c

// mouseSpec caches the compiled busmouse specification.
var mouseSpec = mustCompileSpec("busmouse")

func mustCompileSpec(name string) *devil.Spec {
	s, err := specs.Load(name)
	if err != nil {
		panic(err)
	}
	spec, err := devil.Compile(s.Filename, s.Source)
	if err != nil {
		panic(err)
	}
	return spec
}

// motionScript is the deterministic input the simulated user provides.
var motionScript = []struct {
	dx, dy  int
	buttons uint8
}{
	{1, 0, 0}, {3, -2, 0}, {-4, 5, 1}, {0, 0, 5},
	{2, 2, 4}, {-1, -3, 0}, {5, 1, 2}, {-2, 4, 0},
}

// MouseMachine is the assembled busmouse rig: clock, bus with the system
// board and the adapter mapped, kernel, plus the same per-worker caches
// as the IDE Machine (stubs, type environments, compiled-backend
// buffers). A campaign worker builds one and Resets it between boots.
type MouseMachine struct {
	Clock *hw.Clock
	Bus   *hw.Bus
	Kern  *kernel.Kernel
	Mouse *busmouse.Mouse

	caches execCaches
}

// NewMouseMachine assembles the busmouse rig.
func NewMouseMachine() (*MouseMachine, error) {
	clock := &hw.Clock{}
	bus := hw.NewBus()
	bus.SetFloating(true)
	if err := sysboard.MapAll(bus); err != nil {
		return nil, err
	}
	mouse := busmouse.New()
	if err := bus.Map(mouseBase, 4, mouse); err != nil {
		return nil, err
	}
	return &MouseMachine{
		Clock:  clock,
		Bus:    bus,
		Kern:   kernel.New(clock),
		Mouse:  mouse,
		caches: newExecCaches(),
	}, nil
}

// Reset returns the rig to its power-on state (the system-board devices
// are stateless, so mouse and kernel are the only state to rewind).
func (m *MouseMachine) Reset() {
	m.Mouse.Reset()
	m.Kern.Reset()
}

// MouseStubs generates busmouse stubs bound to the rig's bus.
func (m *MouseMachine) MouseStubs(mode codegen.Mode) (*codegen.Stubs, error) {
	return mouseSpec.Generate(devil.Config{
		Bus:   m.Bus,
		Bases: map[string]hw.Port{"base": mouseBase},
		Mode:  mode,
	})
}

// BootMouse compiles and boots one busmouse driver build on a freshly
// built rig.
func BootMouse(input BootInput) (*BootResult, error) {
	m, err := NewMouseMachine()
	if err != nil {
		return nil, err
	}
	return BootMouseOn(m, input)
}

// BootMouseOn compiles and boots one busmouse driver build on m, which
// must be freshly built or Reset.
func BootMouseOn(m *MouseMachine, input BootInput) (*BootResult, error) {
	ex, res, err := m.caches.buildEngine(m.Kern, m.Bus, m.MouseStubs, input)
	if err != nil {
		return nil, err
	}
	if ex == nil {
		return res, nil
	}
	runErr, damaged := runMouseBoot(m.Kern, m.Mouse, ex)
	res.Console = m.Kern.ConsoleView()
	res.Coverage = ex.Coverage()
	res.Steps = m.Kern.Steps()
	res.RunErr = runErr
	res.Outcome = kernel.Classify(runErr)
	if runErr == nil && damaged {
		res.Outcome = kernel.OutcomeDamagedBoot
	}
	return res, nil
}

// runMouseBoot initialises the driver, feeds the motion script and checks
// the event stream. The mouse counters accumulate, so the harness compares
// cumulative positions.
func runMouseBoot(kern *kernel.Kernel, mouse *busmouse.Mouse, ex execEngine) (error, bool) {
	ret, err := ex.Call("mouse_init")
	if err != nil {
		return err, false
	}
	if ret.Kind == cinterp.ValInt && ret.I != 0 {
		return kern.Panic("busmouse: initialisation failed"), false
	}
	if !mouse.InterruptsEnabled() {
		kern.Printk("busmouse: warning: interrupts left disabled")
	}
	damaged := false
	var totalX, totalY int8
	for i, ev := range motionScript {
		mouse.Move(ev.dx, ev.dy)
		mouse.SetButtons(ev.buttons)
		totalX += int8(ev.dx)
		totalY += int8(ev.dy)
		v, err := ex.Call("mouse_poll")
		if err != nil {
			return err, false
		}
		gotDx := int8(v.I)
		gotDy := int8(v.I >> 8)
		gotButtons := uint8(v.I>>16) & 0x07
		if gotDx != totalX || gotDy != totalY || gotButtons != ev.buttons {
			kern.Printk(fmt.Sprintf(
				"busmouse: event %d corrupt: got (%d,%d,%d), expected (%d,%d,%d)",
				i, gotDx, gotDy, gotButtons, totalX, totalY, ev.buttons))
			damaged = true
		}
	}
	kern.Printk("busmouse: event stream complete")
	return nil, damaged
}

// MouseMutation runs the driver-mutation experiment for a busmouse driver
// ("busmouse_c" or "busmouse_devil"). It is DriverMutation under a
// historical name: the campaign workload routes busmouse_* tasks to the
// mouse harness by driver name.
func MouseMutation(driver string, opts MutationOptions) (*DriverTable, error) {
	return DriverMutation(driver, opts)
}
