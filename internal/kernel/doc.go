// Package kernel simulates the operating-system context the paper boots
// mutated drivers in: a boot sequence that exercises the driver, a panic
// facility, a watchdog that bounds execution, and a filesystem whose
// integrity can be audited after boot.
//
// Each mutant run terminates in exactly one Outcome, reproducing the
// classification of §4.2:
//
//  1. Run-time check — a Devil assertion fired; the source line is known.
//  2. Dead code      — the mutated site was never executed.
//  3. Boot           — the kernel booted with no observable damage (the
//     worst case: the error is latent).
//  4. Crash          — the machine crashed with no information printed.
//  5. Infinite loop  — the boot never completed (watchdog expired).
//  6. Halt           — the kernel halted with a panic message.
//  7. Damaged boot   — the boot completed but left visible damage.
//
// Compile-time detection happens before a kernel is ever built and is
// classified by the experiment harness, not here.
package kernel
