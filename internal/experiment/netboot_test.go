package experiment

import (
	"path/filepath"
	"testing"

	"repro/internal/campaign"
	"repro/internal/drivers"
	"repro/internal/kernel"
)

// TestCleanNetBoot: both NE2000 drivers must compile, bring the adapter
// up, and deliver the frame script verbatim through loopback.
func TestCleanNetBoot(t *testing.T) {
	for _, name := range []string{"ne2000_c", "ne2000_devil"} {
		t.Run(name, func(t *testing.T) {
			src, err := drivers.Load(name)
			if err != nil {
				t.Fatal(err)
			}
			toks, err := ParseDriver(src.Text)
			if err != nil {
				t.Fatal(err)
			}
			res, err := BootNet(BootInput{Tokens: toks, Devil: src.Devil})
			if err != nil {
				t.Fatal(err)
			}
			if res.CompileDetected() {
				for _, e := range res.CompileErrors {
					t.Errorf("  compile: %v", e)
				}
				t.Fatal("clean driver failed to compile")
			}
			if res.Outcome != kernel.OutcomeBoot {
				t.Errorf("outcome = %v (%v)", res.Outcome, res.RunErr)
				for _, line := range res.Console {
					t.Logf("console: %s", line)
				}
			}
			t.Logf("%s: %d steps", name, res.Steps)
		})
	}
}

// TestNetMachineResetRestoresCleanBoot: after a boot that filled packet
// memory and scribbled the register file, Reset must return the rig to a
// state where the clean driver boots cleanly — the rig-reuse guarantee
// campaign workers depend on.
func TestNetMachineResetRestoresCleanBoot(t *testing.T) {
	m, err := NewNetMachine()
	if err != nil {
		t.Fatal(err)
	}
	src, err := drivers.Load("ne2000_c")
	if err != nil {
		t.Fatal(err)
	}
	toks, err := ParseDriver(src.Text)
	if err != nil {
		t.Fatal(err)
	}
	// First boot dirties the NIC (ring contents, pointers) and the kernel.
	if _, err := BootNetOn(m, BootInput{Tokens: toks}); err != nil {
		t.Fatal(err)
	}
	m.Kern.Printk("stale console line")
	m.Kern.SetBudget(1)
	m.Reset()

	res, err := BootNetOn(m, BootInput{Tokens: toks})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != kernel.OutcomeBoot {
		t.Fatalf("clean boot on reset rig: %v (%v)", res.Outcome, res.RunErr)
	}
	for _, line := range res.Console {
		if line == "stale console line" {
			t.Error("console not cleared by Reset")
		}
	}
}

// TestNetMutationSmoke runs a sampled NE2000 mutation experiment and
// checks the Devil-vs-C shape carries over to the third driver pair:
// the Devil driver must detect strictly more mutants (compile-time plus
// run-time checks) than the hand-written C driver.
func TestNetMutationSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("mutation smoke test is not short")
	}
	opts := MutationOptions{SamplePct: 10, Seed: 7}
	c, err := DriverMutation("ne2000_c", opts)
	if err != nil {
		t.Fatal(err)
	}
	d, err := DriverMutation("ne2000_devil", opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s\n%s",
		FormatDriverTable(c, "Extension: mutations on the C NE2000 driver"),
		FormatDriverTable(d, "Extension: mutations on the CDevil NE2000 driver"))
	if d.DetectedPct() <= c.DetectedPct() {
		t.Errorf("Devil detection (%.1f%%) should exceed C (%.1f%%)",
			d.DetectedPct(), c.DetectedPct())
	}
	if d.Counts[RowRuntime] == 0 {
		t.Error("CDevil driver produced no run-time checks")
	}
}

// TestNetCampaignDeterminism: an NE2000 campaign over both drivers
// aggregates to byte-identical tables whether it runs serially, sharded
// into separate stores and merged, killed halfway and resumed, or
// executed on the tree-walking oracle instead of the compiled backend —
// and the Devil driver detects strictly more mutants in every variant.
func TestNetCampaignDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign determinism test is not short")
	}
	spec := campaign.Spec{
		Name:      "ne2000",
		Drivers:   []string{"ne2000_c", "ne2000_devil"},
		SamplePct: 5,
		Seed:      11,
		Shards:    3,
		Budget:    ExperimentBudget,
	}
	wl := NewWorkload()

	render := func(st campaign.Store) (string, map[string]*campaign.TableData) {
		t.Helper()
		tables, order, err := campaign.Aggregate(st.Records())
		if err != nil {
			t.Fatal(err)
		}
		var text string
		for _, d := range order {
			if !tables[d].Complete() {
				t.Fatalf("%s incomplete: %d/%d", d, tables[d].Results, tables[d].Selected)
			}
			text += FormatDriverTable(TableFromCampaign(tables[d]), d)
		}
		return text, tables
	}

	serial := campaign.NewMemStore()
	if _, err := campaign.Run(spec, wl, serial, campaign.Options{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	want, tables := render(serial)

	c := TableFromCampaign(tables["ne2000_c"])
	d := TableFromCampaign(tables["ne2000_devil"])
	if d.DetectedPct() <= c.DetectedPct() {
		t.Errorf("Devil detection (%.1f%%) should exceed C (%.1f%%)",
			d.DetectedPct(), c.DetectedPct())
	}

	// Sharded into separate stores, then merged.
	dir := t.TempDir()
	var stores []campaign.Store
	for sh := 0; sh < spec.Shards; sh++ {
		st, err := campaign.OpenFile(filepath.Join(dir, "shard"+string(rune('0'+sh))+".jsonl"))
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		if _, err := campaign.Run(spec, wl, st, campaign.Options{Shards: []int{sh}}); err != nil {
			t.Fatal(err)
		}
		stores = append(stores, st)
	}
	merged, err := campaign.OpenFile(filepath.Join(dir, "merged.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer merged.Close()
	if err := campaign.Merge(merged, stores...); err != nil {
		t.Fatal(err)
	}
	if got, _ := render(merged); got != want {
		t.Errorf("sharded+merged tables differ from serial:\n--- serial\n%s\n--- sharded\n%s", want, got)
	}

	// Killed halfway and resumed.
	interrupted, err := campaign.OpenFile(filepath.Join(dir, "interrupted.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer interrupted.Close()
	recs := serial.Records()
	for _, r := range recs[:len(recs)/2] {
		if err := interrupted.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	sum, err := campaign.Run(spec, wl, interrupted, campaign.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Ran == 0 {
		t.Fatal("resume booted nothing; the interruption was not simulated")
	}
	if got, _ := render(interrupted); got != want {
		t.Errorf("resumed tables differ from serial:\n--- serial\n%s\n--- resumed\n%s", want, got)
	}

	// The tree-walking oracle must aggregate to the identical text.
	oracle := spec
	oracle.Backend = "interp"
	ost := campaign.NewMemStore()
	if _, err := campaign.Run(oracle, wl, ost, campaign.Options{}); err != nil {
		t.Fatal(err)
	}
	if got, _ := render(ost); got != want {
		t.Errorf("interp-backend tables differ from compiled:\n--- compiled\n%s\n--- interp\n%s", want, got)
	}
}
