package hw

// This file is the bus-level fault injector behind the campaign's
// scenario axis. An Injector sits on the Bus data path and perturbs
// mapped-device accesses with the failure modes field hardware shows a
// driver: port reads that return the floating data lines (a dropped
// strobe), reads the device sees twice (a doubled strobe perturbing
// read-sensitive registers), reads that return the port's previously
// latched value (a delayed latch), and extra device-time charged per
// access (a slow part). Unmapped-port accesses are untouched: those
// already model a missing device.
//
// Every decision is a pure function of (seed, access ordinal) through a
// splitmix64 mix, never of global randomness or wall time. The two
// execution backends make byte-identical bus access sequences (the
// differential oracle pins console, coverage and step counts), so a
// reseeded injector perturbs both identically — which is what lets the
// oracle hold observables byte-identical under every scenario. Campaign
// workers reseed per boot from the task's fingerprint, so serial,
// sharded and resumed runs of one cell see the same faults.

// InjectorConfig sets the per-access fault rates. The three read-fault
// rates are per ten thousand reads of mapped ports; their sum must stay
// below 10_000. LatencyTicks is charged on every mapped-device access,
// read or write.
type InjectorConfig struct {
	// DropPerMyriad is the rate of reads that return the floating value
	// without the device ever seeing the strobe.
	DropPerMyriad uint32
	// DupPerMyriad is the rate of reads issued to the device twice; the
	// driver sees the second value.
	DupPerMyriad uint32
	// StalePerMyriad is the rate of reads that return the port's
	// previously latched value instead of strobing the device.
	StalePerMyriad uint32
	// LatencyTicks is the extra device time every mapped access costs.
	LatencyTicks uint64
}

// Injector perturbs a Bus's mapped-device accesses deterministically.
// Like the Bus it attaches to, an Injector belongs to one worker
// goroutine; Reseed rewinds it between boots.
type Injector struct {
	cfg   InjectorConfig
	clock *Clock
	seed  uint64
	n     uint64 // read ordinal since the last Reseed
	last  map[Port]uint32

	drops  uint64
	dups   uint64
	stales uint64
}

// NewInjector builds an injector with the given rates. The clock, when
// non-nil, is charged LatencyTicks per mapped access.
func NewInjector(cfg InjectorConfig, clock *Clock) *Injector {
	return &Injector{cfg: cfg, clock: clock, last: make(map[Port]uint32)}
}

// Reseed rewinds the injector to the start of a boot under the given
// seed: the read ordinal, the per-port latches and the fault counters
// all reset, so one (seed, access sequence) pair always yields the same
// faults.
func (i *Injector) Reseed(seed uint64) {
	i.seed = seed
	i.n = 0
	clear(i.last)
	i.drops, i.dups, i.stales = 0, 0, 0
}

// Stats reports the faults injected since the last Reseed.
func (i *Injector) Stats() (drops, dups, stales uint64) {
	return i.drops, i.dups, i.stales
}

// InjectorState is saved injector boot state: everything Reseed rewinds.
// The zero value is an empty snapshot whose latch map is grown on first
// capture and reused by every later one.
type InjectorState struct {
	seed   uint64
	n      uint64
	last   map[Port]uint32
	drops  uint64
	dups   uint64
	stales uint64
}

// Snapshot captures the injector's per-boot state into s, reusing s's
// latch map.
func (i *Injector) Snapshot(s *InjectorState) {
	s.seed, s.n = i.seed, i.n
	s.drops, s.dups, s.stales = i.drops, i.dups, i.stales
	if s.last == nil {
		s.last = make(map[Port]uint32, len(i.last))
	}
	clear(s.last)
	for p, v := range i.last {
		s.last[p] = v
	}
}

// Restore rewinds the injector to the captured state, so a restored boot
// replays the same (seed, access ordinal) fault decisions a full boot
// from the same point would.
func (i *Injector) Restore(s *InjectorState) {
	i.seed, i.n = s.seed, s.n
	i.drops, i.dups, i.stales = s.drops, s.dups, s.stales
	clear(i.last)
	for p, v := range s.last {
		i.last[p] = v
	}
}

// roll consumes one read ordinal and returns its splitmix64 mix.
func (i *Injector) roll() uint64 {
	x := i.seed + (i.n+1)*0x9E3779B97F4A7C15
	i.n++
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// delay charges the configured access latency to the clock.
func (i *Injector) delay() {
	if i.cfg.LatencyTicks > 0 && i.clock != nil {
		i.clock.Tick(i.cfg.LatencyTicks)
	}
}

// read services one mapped read through the fault model. It owns the
// whole read path — device strobe, trace record, masking — so the Bus
// fast path stays a single nil check.
func (i *Injector) read(b *Bus, m *mapping, port Port, width AccessWidth) (uint32, error) {
	i.delay()
	r := i.roll() % 10_000
	mode := r
	switch {
	case mode < uint64(i.cfg.DropPerMyriad):
		// Dropped strobe: the device never sees the read and the driver
		// sees the floating data lines, exactly like an unmapped port.
		i.drops++
		b.record(Access{Port: port, Width: width, Value: widthMask(width)})
		return widthMask(width), nil
	case mode < uint64(i.cfg.DropPerMyriad+i.cfg.DupPerMyriad):
		// Doubled strobe: read-sensitive registers (status latches, FIFO
		// heads) advance twice; the driver sees the second value. A fault
		// on the discarded strobe is dropped with it.
		i.dups++
		_, _ = m.dev.Read(port-m.base, width)
	case mode < uint64(i.cfg.DropPerMyriad+i.cfg.DupPerMyriad+i.cfg.StalePerMyriad):
		// Delayed latch: the port returns what it last read. Before the
		// first successful read there is nothing latched and the strobe
		// goes through normally.
		if v, ok := i.last[port]; ok {
			i.stales++
			b.record(Access{Port: port, Width: width, Value: v})
			return v & widthMask(width), nil
		}
	}
	v, err := m.dev.Read(port-m.base, width)
	b.record(Access{Port: port, Width: width, Value: v, Fault: err != nil})
	if err != nil {
		return 0, deviceError(m, err)
	}
	v &= widthMask(width)
	i.last[port] = v
	return v, nil
}

// write charges the access latency on one mapped write; writes are
// otherwise delivered untouched (a lost write is indistinguishable from
// a driver bug, so the model keeps faults on the observable read side).
func (i *Injector) write() {
	i.delay()
}
