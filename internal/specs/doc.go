// Package specs embeds the Devil specifications of the five devices the
// paper's Table 2 evaluates: the Logitech busmouse, the Intel 82371FB PCI
// bus-master IDE function, the Intel PIIX4 IDE disk interface, the NE2000
// (ns8390) Ethernet controller, and the 3Dlabs Permedia 2 graphics chip.
//
// The busmouse specification is transcribed from the paper's Figure 3; the
// others are reconstructions from the register maps of the public datasheets
// the original specifications were written against, sized comparably to the
// line counts reported in Table 2.
package specs
