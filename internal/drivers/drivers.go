// Package drivers embeds the hwC driver sources of the evaluation: the
// traditional C IDE driver and its CDevil re-engineering, plus a busmouse
// pair used by examples and tests.
package drivers

import (
	"embed"
	"fmt"
)

//go:embed src/*.c
var files embed.FS

// Source is one embedded driver source file.
type Source struct {
	// Name is the short driver name ("ide_c", "ide_devil", ...).
	Name string
	// Filename is the embedded file name.
	Filename string
	// Text is the source code.
	Text string
	// Devil reports whether the driver is CDevil glue over generated stubs.
	Devil bool
}

// Load returns the named driver source.
func Load(name string) (Source, error) {
	fn := name + ".c"
	data, err := files.ReadFile("src/" + fn)
	if err != nil {
		return Source{}, fmt.Errorf("drivers: unknown driver %q", name)
	}
	return Source{
		Name:     name,
		Filename: fn,
		Text:     string(data),
		Devil:    len(name) > 6 && name[len(name)-6:] == "_devil",
	}, nil
}
