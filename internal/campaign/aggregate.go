package campaign

import (
	"fmt"
	"sort"
)

// TableData is the per-driver aggregate a record stream reduces to: the
// exact inputs of the paper's Table 3/4 rendering. Aggregation is
// order-independent and duplicate-tolerant (first result per mutant
// wins), so serial, sharded and merged stores of the same spec reduce to
// identical tables.
type TableData struct {
	Driver string
	// Counts maps a row label to its mutant count.
	Counts map[string]int
	// SiteSets maps a row label to the contributing site set.
	SiteSets map[string]map[int]bool
	// TotalSites, Enumerated, Selected mirror the driver's meta record.
	TotalSites int
	Enumerated int
	Selected   int
	// Results is the number of distinct result records aggregated; a
	// complete campaign has Results == Selected.
	Results int
	// Losses counts partition-table destructions.
	Losses int
}

// Complete reports whether every selected mutant has a stored result.
func (d *TableData) Complete() bool { return d.Results == d.Selected }

// Aggregate reduces a record stream to per-driver table data, returning
// the drivers in first-appearance order alongside the map.
func Aggregate(records []Record) (map[string]*TableData, []string, error) {
	tables := make(map[string]*TableData)
	var order []string
	get := func(driver string) *TableData {
		t, ok := tables[driver]
		if !ok {
			t = &TableData{
				Driver:   driver,
				Counts:   make(map[string]int),
				SiteSets: make(map[string]map[int]bool),
			}
			tables[driver] = t
			order = append(order, driver)
		}
		return t
	}
	seen := make(map[string]bool)
	for _, r := range records {
		switch r.Kind {
		case KindMeta:
			t := get(r.Driver)
			if t.Selected == 0 { // first meta wins
				t.TotalSites = r.Sites
				t.Enumerated = r.Enumerated
				t.Selected = r.Selected
			}
		case KindResult:
			if r.Row == "" {
				return nil, nil, fmt.Errorf("campaign: result record for %s#%d has no row",
					r.Driver, r.Mutant)
			}
			key := TaskKey(r.Driver, r.Mutant)
			if seen[key] {
				continue
			}
			seen[key] = true
			t := get(r.Driver)
			t.Counts[r.Row]++
			if t.SiteSets[r.Row] == nil {
				t.SiteSets[r.Row] = make(map[int]bool)
			}
			t.SiteSets[r.Row][r.Site] = true
			if r.Lost {
				t.Losses++
			}
			t.Results++
		}
	}
	return tables, order, nil
}

// Merge folds the records of every source store into dst, validating
// that all stores carry the same spec fingerprint and deduplicating meta
// and result records. Results already present in dst are kept.
func Merge(dst Store, sources ...Store) error {
	want := ""
	haveMeta := make(map[string]bool)
	seen := make(map[string]bool)
	for _, r := range dst.Records() {
		switch r.Kind {
		case KindSpec:
			want = r.Fingerprint
		case KindMeta:
			haveMeta[r.Driver] = true
		case KindResult:
			seen[TaskKey(r.Driver, r.Mutant)] = true
		}
	}
	for i, src := range sources {
		for _, r := range src.Records() {
			switch r.Kind {
			case KindSpec:
				if want == "" {
					want = r.Fingerprint
					if err := dst.Append(r); err != nil {
						return err
					}
				} else if r.Fingerprint != want {
					return fmt.Errorf("campaign merge: source %d has fingerprint %s, want %s",
						i+1, r.Fingerprint, want)
				}
			case KindMeta:
				if !haveMeta[r.Driver] {
					haveMeta[r.Driver] = true
					if err := dst.Append(r); err != nil {
						return err
					}
				}
			case KindResult:
				key := TaskKey(r.Driver, r.Mutant)
				if seen[key] {
					continue
				}
				seen[key] = true
				if err := dst.Append(r); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Completion summarises a store's progress per driver, sorted by driver
// name: how many of the selected mutants have results.
func Completion(records []Record) []string {
	tables, order, err := Aggregate(records)
	if err != nil {
		return []string{fmt.Sprintf("unaggregatable store: %v", err)}
	}
	sort.Strings(order)
	var out []string
	for _, driver := range order {
		t := tables[driver]
		out = append(out, fmt.Sprintf("%s: %d/%d booted", driver, t.Results, t.Selected))
	}
	return out
}
