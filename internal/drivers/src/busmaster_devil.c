/*
 * busmaster_devil.c — the 82371FB bus-master driver re-engineered over
 * Devil stubs.
 *
 * The start/direction bit packing, the mixed-behaviour status byte and
 * the descriptor alignment all live in the specification: the glue
 * below manipulates typed device variables (BusMaster, Direction,
 * IrqPending, DescriptorBase, ...) and acknowledges latches through the
 * one-way ClearIrq/ClearError enumerations.
 */

#define BM_TIMEOUT 20000

/* Bounded wait for the completion interrupt. */
static int bm_wait(void)
{
    int t;
    //@hw
    for (t = 0; t < BM_TIMEOUT; t++) {
        if (get_IrqPending()) {
            return 0;
        }
    }
    //@endhw
    return 1;
}

int bm_init(void)
{
    //@hw
    if (!get_Drive0Capable()) {
        printk("piix: no DMA-capable drive");
        return 1;
    }
    set_SetCapable(3);
    set_ClearIrq(CLEAR_IRQ);
    set_ClearError(CLEAR_ERROR);
    set_BusMaster(DMA_STOP);
    //@endhw
    printk("piix: bus master ready");
    return 0;
}

/* Run one PRD-table transfer: program the descriptor base, set the
 * direction, start the engine, wait for completion, stop and
 * acknowledge. dir is 1 for a read to memory. */
int bm_transfer(int addr, int dir)
{
    int err;
    //@hw
    set_DescriptorBase(addr >> 2);
    if (dir) {
        set_Direction(TO_MEMORY);
    } else {
        set_Direction(FROM_MEMORY);
    }
    set_BusMaster(DMA_START);
    if (bm_wait()) {
        set_BusMaster(DMA_STOP);
        printk("piix: transfer timeout");
        return 1;
    }
    err = get_DmaError();
    set_BusMaster(DMA_STOP);
    set_ClearIrq(CLEAR_IRQ);
    if (err) {
        set_ClearError(CLEAR_ERROR);
        printk("piix: dma error");
        return 1;
    }
    //@endhw
    return 0;
}
