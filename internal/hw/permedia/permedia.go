package permedia

import (
	"fmt"

	"repro/internal/hw"
)

// Control-register dword indices within the aperture.
const (
	regResetStatus = 0
	regIntEnable   = 1
	regIntFlags    = 2
	regInFIFOSpace = 3
	regOutFIFO     = 4
	regDMAAddress  = 5
	regDMACount    = 6
	regFIFODiscon  = 7
	regChipConfig  = 8
	regScreenBase  = 9
	regStride      = 10
	regHTotal      = 11
	regVTotal      = 16
	regVideoCtl    = 20
	regLineCount   = 21
	regFBReadMode  = 22
	regFBWriteMode = 23
	numRegs        = 24
)

// Interrupt flag bits.
const (
	IntDMA      = 0x01
	IntSync     = 0x02
	IntExternal = 0x04
	IntError    = 0x08
	IntVRetrace = 0x10
)

const (
	resetTicks    = 100
	fifoCapacity  = 32
	fifoDrainTime = 8 // ticks per FIFO word the graphics core consumes
	dmaTickRate   = 8 // DMA dwords counted down per tick
)

// GPU is the Permedia 2 model.
type GPU struct {
	regs       [numRegs]uint32
	resetUntil uint64
	fifo       []uint32
	fifoCredit uint64 // elapsed ticks not yet converted into drained words
	clock      *hw.Clock
	lastNow    uint64
	drained    uint64 // total FIFO words consumed by the core
}

// New attaches a GPU model to the clock.
func New(clock *hw.Clock) *GPU {
	g := &GPU{clock: clock}
	clock.OnTick(g.tick)
	return g
}

// Reset returns the GPU to the cold power-on state New leaves it in:
// registers cleared, FIFO empty, drain counter rewound. It is the
// campaign worker's rig-reuse hook — distinct from the warm reset a
// write to the reset register performs, which takes resetTicks to
// complete.
func (g *GPU) Reset() {
	g.regs = [numRegs]uint32{}
	g.resetUntil = 0
	g.fifo = g.fifo[:0]
	g.fifoCredit = 0
	g.drained = 0
	g.lastNow = g.clock.Now()
}

// State is saved GPU state for the campaign engine's pristine-prefix
// snapshot. The FIFO contents are copied into a buffer s owns, so one
// State is reused across captures without allocation once grown.
type State struct {
	regs       [numRegs]uint32
	resetUntil uint64
	fifo       []uint32
	fifoCredit uint64
	lastNow    uint64
	drained    uint64
}

// Snapshot copies the GPU's state into s (copy-in-place). The captured
// time anchors (resetUntil, lastNow) are absolute virtual-time values;
// Restore is only exact when the shared clock is rewound to the same
// capture instant, which the rig-level snapshot does.
func (g *GPU) Snapshot(s *State) {
	s.regs = g.regs
	s.resetUntil = g.resetUntil
	s.fifo = append(s.fifo[:0], g.fifo...)
	s.fifoCredit = g.fifoCredit
	s.lastNow = g.lastNow
	s.drained = g.drained
}

// Restore rewinds the GPU to the captured state, keeping its clock
// binding.
func (g *GPU) Restore(s *State) {
	g.regs = s.regs
	g.resetUntil = s.resetUntil
	g.fifo = append(g.fifo[:0], s.fifo...)
	g.fifoCredit = s.fifoCredit
	g.lastNow = s.lastNow
	g.drained = s.drained
}

func (g *GPU) tick(now uint64) {
	// Clock listeners are invoked once per Tick batch, so the model works
	// in elapsed virtual time rather than per invocation. Mutated drivers
	// can make a single batch enormous (a mutated udelay constant), so
	// every computation below clamps rather than trusting elapsed to be
	// small — the model must misbehave politely, never panic or wedge.
	elapsed := now - g.lastNow
	g.lastNow = now
	if elapsed == 0 {
		return
	}
	// The graphics core consumes one FIFO word every fifoDrainTime ticks;
	// an idle core accrues no credit.
	if len(g.fifo) > 0 {
		credit := g.fifoCredit + elapsed
		words := credit / fifoDrainTime
		g.fifoCredit = credit % fifoDrainTime
		drain := len(g.fifo)
		if words < uint64(drain) {
			drain = int(words)
		}
		g.fifo = g.fifo[drain:]
		g.drained += uint64(drain)
	} else {
		g.fifoCredit = 0
	}
	// DMA engine: counts down, raising the DMA interrupt at zero.
	if cnt := g.regs[regDMACount]; cnt > 0 {
		step := uint64(cnt)
		if elapsed < 1<<32 {
			if s := elapsed * dmaTickRate; s < step {
				step = s
			}
		}
		g.regs[regDMACount] = cnt - uint32(step)
		if g.regs[regDMACount] == 0 {
			g.regs[regIntFlags] |= IntDMA
		}
	}
	// Video timing: the line counter runs whenever video is enabled.
	if g.regs[regVideoCtl]&0x01 != 0 {
		vtotal := g.regs[regVTotal] & 0xfff
		if vtotal == 0 {
			vtotal = 1024 // a zero VTotal is bogus; free-run a full frame
		}
		line := g.regs[regLineCount] + uint32(elapsed%uint64(vtotal))
		if line >= vtotal || elapsed >= uint64(vtotal) {
			g.regs[regIntFlags] |= IntVRetrace
		}
		g.regs[regLineCount] = line % vtotal
	}
}

// Drained reports how many FIFO words the core has consumed.
func (g *GPU) Drained() uint64 { return g.drained }

// FIFODepth reports how many words sit in the input FIFO.
func (g *GPU) FIFODepth() int { return len(g.fifo) }

// VideoEnabled reports whether the video timing generator is running.
func (g *GPU) VideoEnabled() bool { return g.regs[regVideoCtl]&0x01 != 0 }

// IntFlags returns the pending interrupt flags.
func (g *GPU) IntFlags() uint32 { return g.regs[regIntFlags] }

// IntEnable returns the programmed interrupt enable mask.
func (g *GPU) IntEnable() uint32 { return g.regs[regIntEnable] }

// DMAAddress returns the programmed DMA base address.
func (g *GPU) DMAAddress() uint32 { return g.regs[regDMAAddress] }

// DMACount returns the remaining DMA dword count.
func (g *GPU) DMACount() uint32 { return g.regs[regDMACount] }

// VTotal returns the programmed vertical total (in lines).
func (g *GPU) VTotal() uint32 { return g.regs[regVTotal] & 0xfff }

// ScreenBase returns the programmed frame-buffer base address.
func (g *GPU) ScreenBase() uint32 { return g.regs[regScreenBase] }

// control is the control-aperture endpoint.
type control struct{ g *GPU }

// fifoPort is the GP input FIFO endpoint.
type fifoPort struct{ g *GPU }

var (
	_ hw.Device = (*control)(nil)
	_ hw.Device = (*fifoPort)(nil)
)

// Control returns the control-aperture endpoint (24 dword registers).
func (g *GPU) Control() hw.Device { return &control{g: g} }

// FIFO returns the input-FIFO endpoint.
func (g *GPU) FIFO() hw.Device { return &fifoPort{g: g} }

// Name implements hw.Device.
func (c *control) Name() string { return "permedia2" }

// Read implements hw.Device.
func (c *control) Read(offset hw.Port, width hw.AccessWidth) (uint32, error) {
	g := c.g
	if int(offset) >= numRegs {
		return 0, fmt.Errorf("permedia: read of nonexistent register %d", offset)
	}
	switch int(offset) {
	case regResetStatus:
		if g.clock.Now() < g.resetUntil {
			return 1 << 31, nil
		}
		return 0, nil
	case regInFIFOSpace:
		return uint32(fifoCapacity - len(g.fifo)), nil
	case regOutFIFO:
		return 0, nil
	default:
		return g.regs[offset], nil
	}
}

// Write implements hw.Device.
func (c *control) Write(offset hw.Port, width hw.AccessWidth, value uint32) error {
	g := c.g
	if int(offset) >= numRegs {
		return fmt.Errorf("permedia: write of nonexistent register %d", offset)
	}
	switch int(offset) {
	case regResetStatus:
		g.resetUntil = g.clock.Now() + resetTicks
		for i := range g.regs {
			g.regs[i] = 0
		}
		g.fifo = nil
	case regIntFlags:
		g.regs[regIntFlags] &^= value // write 1 to clear
	case regInFIFOSpace, regOutFIFO, regLineCount:
		// read-only
	default:
		g.regs[offset] = value
	}
	return nil
}

// Name implements hw.Device.
func (f *fifoPort) Name() string { return "permedia2-fifo" }

// Read implements hw.Device: the FIFO port is write-only; reads float.
func (f *fifoPort) Read(offset hw.Port, width hw.AccessWidth) (uint32, error) {
	return 0xffffffff, nil
}

// Write implements hw.Device: push a word into the GP input FIFO. An
// overflowing FIFO raises the error interrupt and drops the word — the
// misbehaviour drivers must avoid by polling InFIFOSpace.
func (f *fifoPort) Write(offset hw.Port, width hw.AccessWidth, value uint32) error {
	g := f.g
	if len(g.fifo) >= fifoCapacity {
		g.regs[regIntFlags] |= IntError
		return nil
	}
	// An idle core holds no drain credit. tick zeroes the credit on every
	// batch that finds the FIFO empty, but batched ticks (kernel.StepN)
	// can deliver the drain-to-empty and the next write in one batch —
	// zeroing here keeps the word's drain countdown starting from zero
	// exactly as per-step ticking would have it.
	if len(g.fifo) == 0 {
		g.fifoCredit = 0
	}
	g.fifo = append(g.fifo, value)
	return nil
}
