package campaign

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// Outcome is a worker's classification of one booted mutant.
type Outcome struct {
	// Row is the Table 3/4 row label the boot landed in.
	Row string
	// Site is the mutation-site index the mutant belongs to.
	Site int
	// Lost reports partition-table destruction (the paper's anecdote).
	Lost bool
	// Steps is the watchdog step count the boot consumed.
	Steps int64
}

// Worker executes tasks. A worker is owned by exactly one pool goroutine,
// so implementations can keep heavyweight per-worker state — notably a
// simulated machine that is Reset between boots instead of rebuilt.
type Worker interface {
	Boot(Task) (Outcome, error)
	Close()
}

// Workload binds the engine to a concrete experiment: how a spec expands
// into tasks, and how one task boots.
type Workload interface {
	// Expand deterministically derives the per-driver metadata and the
	// full selected work-list, in enumeration order, shards unassigned.
	Expand(Spec) ([]Meta, []Task, error)
	// NewWorker builds one worker. Called once per pool goroutine.
	NewWorker(Spec) (Worker, error)
}

// Options tunes one engine run.
type Options struct {
	// Workers is the pool size (default: GOMAXPROCS).
	Workers int
	// Shards selects which shard indices to run; nil means all of them.
	// Tasks of unselected shards are neither run nor counted in Total.
	Shards []int
	// Progress, when non-nil, is called after every recorded boot with
	// the number of selected tasks already in the store and the total.
	Progress func(done, total int)
}

// Summary reports what one Run did.
type Summary struct {
	// Total is the number of selected tasks (after shard filtering).
	Total int
	// Skipped is how many of them the store already held (resume).
	Skipped int
	// Ran is how many booted in this run.
	Ran int
	// Rows histograms the outcomes of this run's boots.
	Rows map[string]int
}

// Run executes a campaign: expand, shard, skip already-stored results,
// boot the remainder on a worker pool, and append every outcome to the
// store. Run is idempotent — rerunning a completed campaign boots
// nothing — and crash-safe: killing it mid-run loses at most one record,
// and the next Run picks up where the store ends.
func Run(spec Spec, wl Workload, store Store, opts Options) (*Summary, error) {
	spec = spec.Normalized()
	fp := spec.Fingerprint()

	wantShard := func(int) bool { return true }
	if opts.Shards != nil {
		sel := make(map[int]bool, len(opts.Shards))
		for _, sh := range opts.Shards {
			if sh < 0 || sh >= spec.Shards {
				return nil, fmt.Errorf("campaign: shard %d outside [0..%d)", sh, spec.Shards)
			}
			sel[sh] = true
		}
		wantShard = func(sh int) bool { return sel[sh] }
	}

	existing := store.Records()
	done := make(map[string]bool)
	haveSpec := false
	haveMeta := make(map[string]bool)
	for _, r := range existing {
		switch r.Kind {
		case KindSpec:
			if r.Fingerprint != fp {
				return nil, fmt.Errorf("campaign: store belongs to a different spec (fingerprint %s, want %s)",
					r.Fingerprint, fp)
			}
			haveSpec = true
		case KindMeta:
			haveMeta[r.Driver] = true
		case KindResult:
			done[TaskKey(r.Driver, r.Mutant)] = true
		}
	}

	metas, tasks, err := wl.Expand(spec)
	if err != nil {
		return nil, err
	}
	if !haveSpec {
		if err := store.Append(SpecRecord(spec)); err != nil {
			return nil, err
		}
	}
	for _, m := range metas {
		if !haveMeta[m.Driver] {
			if err := store.Append(MetaRecord(m)); err != nil {
				return nil, err
			}
		}
	}

	sum := &Summary{Rows: make(map[string]int)}
	var pending []Task
	for _, t := range tasks {
		t.Shard = ShardOf(t.Driver, t.Mutant, spec.Shards)
		if !wantShard(t.Shard) {
			continue
		}
		sum.Total++
		if done[t.Key()] {
			sum.Skipped++
			continue
		}
		pending = append(pending, t)
	}
	if len(pending) == 0 {
		return sum, nil
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pending) {
		workers = len(pending)
	}

	var (
		mu       sync.Mutex // guards sum, recorded, firstErr
		recorded = sum.Skipped
		firstErr error
		stopped  atomic.Bool // aborts the feed after the first error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		stopped.Store(true)
	}
	feed := make(chan Task)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w, err := wl.NewWorker(spec)
			if err != nil {
				fail(err)
				for range feed {
				} // drain
				return
			}
			defer w.Close()
			for t := range feed {
				if stopped.Load() {
					continue // drain: the campaign is aborting
				}
				out, err := w.Boot(t)
				if err != nil {
					fail(err)
					continue
				}
				rec := Record{Kind: KindResult, Driver: t.Driver, Mutant: t.Mutant,
					Site: out.Site, Row: out.Row, Lost: out.Lost, Steps: out.Steps,
					Shard: t.Shard}
				if err := store.Append(rec); err != nil {
					fail(err)
					continue
				}
				mu.Lock()
				sum.Ran++
				sum.Rows[out.Row]++
				recorded++
				prog := recorded
				mu.Unlock()
				if opts.Progress != nil {
					opts.Progress(prog, sum.Total)
				}
			}
		}()
	}
	for _, t := range pending {
		if stopped.Load() {
			break
		}
		feed <- t
	}
	close(feed)
	wg.Wait()
	if firstErr != nil {
		return sum, firstErr
	}
	return sum, nil
}

// ParallelDo runs fn over [0,n) with a bounded worker pool and waits —
// the generic fan-out primitive the experiment package's in-memory loops
// delegate to.
func ParallelDo(n, workers int, fn func(i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// ShardPlan reports how a spec's work-list distributes over its shards —
// the operator-facing preview of a sharded campaign.
func ShardPlan(spec Spec, tasks []Task) map[int]int {
	spec = spec.Normalized()
	plan := make(map[int]int, spec.Shards)
	for _, t := range tasks {
		plan[ShardOf(t.Driver, t.Mutant, spec.Shards)]++
	}
	return plan
}

// SortShards returns the shard indices of a plan in order.
func SortShards(plan map[int]int) []int {
	out := make([]int, 0, len(plan))
	for sh := range plan {
		out = append(out, sh)
	}
	sort.Ints(out)
	return out
}
