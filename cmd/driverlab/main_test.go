package main

import "testing"

// TestFastPaths exercises the non-mutation paths of the CLI (the mutation
// tables are covered by the experiment package and the benchmarks).
func TestFastPaths(t *testing.T) {
	for _, args := range [][]string{
		{"-table", "1"},
		{"-figure", "1"},
		{"-figure", "3"},
		{"-figure", "4"},
	} {
		if err := run(args); err != nil {
			t.Errorf("driverlab %v: %v", args, err)
		}
	}
}

func TestBadFlags(t *testing.T) {
	if err := run([]string{"-figure", "99"}); err == nil {
		t.Error("unknown figure accepted")
	}
}
