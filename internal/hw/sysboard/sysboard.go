// Package sysboard models the fragile legacy PC system devices that share
// the ISA port space with expansion cards: the 8237 DMA controller, the
// 8259 interrupt controllers, the 8253 timer, the keyboard controller and
// the RTC/CMOS.
//
// The paper's "Crash" outcome — "the kernel crashes but no information is
// printed; at least a hardware reset is needed" — arises on real machines
// when a typo'd port constant lands an output instruction on one of these
// devices: reprogramming the PIC mask or the timer mid-boot wedges the
// machine. The model reproduces exactly that: reads float harmlessly,
// stray writes wedge the machine.
package sysboard

import (
	"fmt"

	"repro/internal/hw"
)

// WedgeError reports a machine-wedging write to a system device. It prints
// nothing on the console; the kernel classifies it as a crash.
type WedgeError struct {
	Device string
	Port   hw.Port
}

// Error implements the error interface.
func (e *WedgeError) Error() string {
	return fmt.Sprintf("machine wedged: stray write to %s (port %#x)", e.Device, uint32(e.Port))
}

// Region is one fragile port range.
type Region struct {
	Name string
	Base hw.Port
	Size hw.Port
}

// Regions returns the standard PC system-device port map.
func Regions() []Region {
	return []Region{
		{Name: "DMA controller 1 (8237)", Base: 0x00, Size: 0x10},
		{Name: "interrupt controller 1 (8259)", Base: 0x20, Size: 0x02},
		{Name: "timer (8253)", Base: 0x40, Size: 0x04},
		{Name: "keyboard controller (8042)", Base: 0x60, Size: 0x05},
		{Name: "RTC/CMOS", Base: 0x70, Size: 0x02},
		{Name: "DMA page registers", Base: 0x80, Size: 0x10},
		{Name: "interrupt controller 2 (8259)", Base: 0xa0, Size: 0x02},
		{Name: "DMA controller 2 (8237)", Base: 0xc0, Size: 0x20},
	}
}

// Device is one fragile system device.
type Device struct {
	region Region
}

var _ hw.Device = (*Device)(nil)

// Name implements hw.Device.
func (d *Device) Name() string { return d.region.Name }

// Read implements hw.Device: system devices tolerate stray reads — the
// data lines float.
func (d *Device) Read(offset hw.Port, width hw.AccessWidth) (uint32, error) {
	switch width {
	case hw.Width8:
		return 0xff, nil
	case hw.Width16:
		return 0xffff, nil
	default:
		return 0xffffffff, nil
	}
}

// Write implements hw.Device: a stray write reprograms a device the boot
// depends on and wedges the machine.
func (d *Device) Write(offset hw.Port, width hw.AccessWidth, value uint32) error {
	return &WedgeError{Device: d.region.Name, Port: d.region.Base + offset}
}

// MapAll claims every fragile region on the bus.
func MapAll(bus *hw.Bus) error {
	for _, r := range Regions() {
		if err := bus.Map(r.Base, r.Size, &Device{region: r}); err != nil {
			return fmt.Errorf("sysboard: %w", err)
		}
	}
	return nil
}
