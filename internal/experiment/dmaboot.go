package experiment

import (
	"fmt"

	"repro/internal/cdriver/cinterp"
	"repro/internal/hw"
	"repro/internal/hw/pci"
)

// The 82371FB bus-master experiment completes the Table-2 set: the
// PIIX4's bus-master DMA function as an extension of the IDE workload —
// where the PIO IDE pair moves sectors a word at a time, this pair
// programs physical-region-descriptor transfers through the bus-master
// engine's command/status/descriptor registers. The boot is a
// capability probe plus a scripted sequence of DMA transactions; the
// kernel holds the expected descriptor-table addresses and directions,
// so a driver that programs the wrong PRD address, leaves the engine
// running, forgets to acknowledge the completion interrupt or clobbers
// the drive-capability latches is caught as visible damage.

// Bus assembly at the conventional BMIBA offsets: command at +0, status
// at +2, descriptor pointer at +4.
const (
	bmCmdBase  hw.Port = 0xc000
	bmStatBase hw.Port = 0xc002
	bmDescBase hw.Port = 0xc004
)

// bmScript is the deterministic transfer script: PRD table address and
// direction (1 = read to memory) of each transaction the kernel
// requests. Addresses are dword-aligned, as the engine forces.
var bmScript = []struct {
	addr uint32
	read int
}{
	{0x0001000, 1},
	{0x0042000, 0},
	{0x01f8000, 1},
	{0x0300400, 1},
}

var dmaWorkload = WorkloadDesc{
	Name:    "busmaster",
	Drivers: []string{"busmaster_c", "busmaster_devil"},
	Spec:    "pci",
	Bases: map[string]hw.Port{
		"bmicmd":  bmCmdBase,
		"bmistat": bmStatBase,
		"bmidesc": bmDescBase,
	},
	Build: func(r *Rig) (any, error) {
		bm := pci.New(r.Clock)
		if err := r.Bus.Map(bmCmdBase, 1, bm.Command()); err != nil {
			return nil, err
		}
		if err := r.Bus.Map(bmStatBase, 1, bm.Status()); err != nil {
			return nil, err
		}
		if err := r.Bus.Map(bmDescBase, 1, bm.Descriptor()); err != nil {
			return nil, err
		}
		return bm, nil
	},
	Reset: func(dev any) { dev.(*pci.BusMaster).Reset() },
	Snapshot: func(dev, snap any) any {
		s, _ := snap.(*pci.State)
		if s == nil {
			s = &pci.State{}
		}
		dev.(*pci.BusMaster).Snapshot(s)
		return s
	},
	Restore: func(dev, snap any) { dev.(*pci.BusMaster).Restore(snap.(*pci.State)) },
	Run:     runBMBoot,
}

// runBMBoot drives the transfer script: initialise (probe capabilities,
// clear stale latches), run every scripted transaction, then audit the
// engine state against what a correct driver must leave behind.
func runBMBoot(r *Rig, ex Engine, res *BootResult) (error, bool) {
	kern, bm := r.Kern, r.Dev.(*pci.BusMaster)
	ret, err := ex.Call("bm_init")
	if err != nil {
		return err, false
	}
	if ret.Kind == cinterp.ValInt && ret.I != 0 {
		return kern.Panic("piix: initialisation failed"), false
	}
	damaged := false
	for i, tr := range bmScript {
		v, err := ex.Call("bm_transfer",
			cinterp.IntValue(int64(tr.addr)), cinterp.IntValue(int64(tr.read)))
		if err != nil {
			return err, false
		}
		if v.Kind == cinterp.ValInt && v.I != 0 {
			kern.Printk(fmt.Sprintf("piix: transfer %d failed", i))
			damaged = true
			continue
		}
		if got := bm.DescriptorTable(); got != tr.addr&^3 {
			kern.Printk(fmt.Sprintf("piix: transfer %d descriptor table %#x, expected %#x",
				i, got, tr.addr&^3))
			damaged = true
		}
	}
	// The audit: engine idle, no pending latches, capabilities intact.
	if bm.Active() {
		kern.Printk("piix: engine left running")
		damaged = true
	}
	if bm.IrqPending() {
		kern.Printk("piix: completion interrupt left pending")
		damaged = true
	}
	if bm.ErrorLatched() {
		kern.Printk("piix: error latch left set")
		damaged = true
	}
	if bm.Capabilities() != 0x60 {
		kern.Printk(fmt.Sprintf("piix: drive capabilities clobbered: %#x", bm.Capabilities()))
		damaged = true
	}
	kern.Printk("piix: transfer script complete")
	return nil, damaged
}
