package experiment

import (
	"testing"

	"repro/internal/campaign"
	"repro/internal/drivers"
	"repro/internal/kernel"
)

// TestCleanNetBoot: both NE2000 drivers must compile, bring the adapter
// up, and deliver the frame script verbatim through loopback.
func TestCleanNetBoot(t *testing.T) {
	for _, name := range []string{"ne2000_c", "ne2000_devil"} {
		t.Run(name, func(t *testing.T) {
			src, err := drivers.Load(name)
			if err != nil {
				t.Fatal(err)
			}
			toks, err := ParseDriver(src.Text)
			if err != nil {
				t.Fatal(err)
			}
			res, err := BootNet(BootInput{Tokens: toks, Devil: src.Devil})
			if err != nil {
				t.Fatal(err)
			}
			if res.CompileDetected() {
				for _, e := range res.CompileErrors {
					t.Errorf("  compile: %v", e)
				}
				t.Fatal("clean driver failed to compile")
			}
			if res.Outcome != kernel.OutcomeBoot {
				t.Errorf("outcome = %v (%v)", res.Outcome, res.RunErr)
				for _, line := range res.Console {
					t.Logf("console: %s", line)
				}
			}
			t.Logf("%s: %d steps", name, res.Steps)
		})
	}
}

// TestNetMachineResetRestoresCleanBoot: after a boot that filled packet
// memory and scribbled the register file, Reset must return the rig to a
// state where the clean driver boots cleanly — the rig-reuse guarantee
// campaign workers depend on.
func TestNetMachineResetRestoresCleanBoot(t *testing.T) {
	assertResetRestoresCleanBoot(t, "ne2000_c", nil, nil)
}

// TestNetMutationSmoke runs a sampled NE2000 mutation experiment and
// checks the Devil-vs-C shape carries over to the third driver pair:
// the Devil driver must detect strictly more mutants (compile-time plus
// run-time checks) than the hand-written C driver.
func TestNetMutationSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("mutation smoke test is not short")
	}
	opts := MutationOptions{SamplePct: 10, Seed: 7}
	c, err := DriverMutation("ne2000_c", opts)
	if err != nil {
		t.Fatal(err)
	}
	d, err := DriverMutation("ne2000_devil", opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s\n%s",
		FormatDriverTable(c, "Extension: mutations on the C NE2000 driver"),
		FormatDriverTable(d, "Extension: mutations on the CDevil NE2000 driver"))
	if d.DetectedPct() <= c.DetectedPct() {
		t.Errorf("Devil detection (%.1f%%) should exceed C (%.1f%%)",
			d.DetectedPct(), c.DetectedPct())
	}
	if d.Counts[RowRuntime] == 0 {
		t.Error("CDevil driver produced no run-time checks")
	}
}

// TestNetCampaignDeterminism: an NE2000 campaign over both drivers
// satisfies the shared determinism protocol (serial = sharded+merged =
// resumed = interp oracle), and the Devil driver detects strictly more
// mutants.
func TestNetCampaignDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign determinism test is not short")
	}
	spec := campaign.Spec{
		Name:      "ne2000",
		Drivers:   []string{"ne2000_c", "ne2000_devil"},
		SamplePct: 5,
		Seed:      11,
		Shards:    3,
		Budget:    ExperimentBudget,
	}
	tables := assertCampaignDeterminism(t, spec)

	c := TableFromCampaign(tables["ne2000_c"])
	d := TableFromCampaign(tables["ne2000_devil"])
	if d.DetectedPct() <= c.DetectedPct() {
		t.Errorf("Devil detection (%.1f%%) should exceed C (%.1f%%)",
			d.DetectedPct(), c.DetectedPct())
	}
}
