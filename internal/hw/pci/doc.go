// Package pci models the bus-master IDE function of the Intel 82371FB
// (PIIX): the primary-channel command, status and descriptor-table-pointer
// registers of specs/pci.dil, with a simple DMA engine that "completes"
// after a programmable number of clock ticks.
package pci
