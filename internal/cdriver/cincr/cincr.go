// Package cincr is the incremental front end of the hwC pipeline: the
// span analysis that lets a mutant boot re-run the lexer-to-compiler
// chain on one top-level declaration instead of the whole driver.
//
// The mutation model of the paper guarantees that a mutant differs from
// the pristine driver in exactly one token. Analyze therefore splits the
// pristine token stream once per driver into per-declaration spans — one
// per #define, file-scope variable and function — and Respan re-parses
// only the span containing the mutated token, yielding a fresh
// declaration the caller splices into the cached pristine AST (and, on
// the compiled backend, recompiles in place via ccompile.Incr).
//
// The analysis is conservative: anything it cannot prove behaves exactly
// like a full recompile is reported as ErrSpanUnsafe, and the caller
// falls back to the full front end on the materialised mutated stream.
// That covers span-boundary mutations (a replaced `}` or `#define`
// token), replacements that change a declaration's parse (a new name, a
// second declaration, a syntax error — whose authoritative error list
// must come from the full parse), and streams whose top-level structure
// the splitter does not recognise.
package cincr

import (
	"errors"
	"fmt"

	"repro/internal/cdriver/cast"
	"repro/internal/cdriver/cparser"
	"repro/internal/cdriver/ctoken"
)

// ErrSpanUnsafe reports a mutation the incremental front end cannot
// prove equivalent to a full recompile; the caller must materialise the
// mutated stream and run the full pipeline instead.
var ErrSpanUnsafe = errors.New("mutation not confined to a recompilable span")

// SpanKind classifies a top-level span.
type SpanKind int

// Span kinds, mirroring the three top-level declaration forms.
const (
	SpanMacro SpanKind = iota + 1
	SpanVar
	SpanFunc
)

// String names the kind.
func (k SpanKind) String() string {
	switch k {
	case SpanMacro:
		return "macro"
	case SpanVar:
		return "var"
	case SpanFunc:
		return "func"
	}
	return fmt.Sprintf("SpanKind(%d)", int(k))
}

// Span is the token range [Start, End) of one top-level declaration.
// Spans partition the stream: span i covers declaration i of the parsed
// program, Analyze verifies the correspondence.
type Span struct {
	Start, End int
	Kind       SpanKind
	// Name is the declared name, used to verify that a respan did not
	// change the program's global surface.
	Name string
}

// Source is the pristine analysis of one driver: the token stream and
// its span partition. A Source is immutable after Analyze and safe to
// share across campaign workers.
type Source struct {
	Tokens []ctoken.Token
	Spans  []Span
	// spanIdx maps a token index to its span index.
	spanIdx []int32
}

// Analyze splits a pristine token stream into declaration spans and
// verifies them against a full parse: the stream must parse cleanly and
// yield exactly one declaration per span, with matching kind and name.
// An error means the stream is outside the recognised shape and the
// caller should keep using the full front end for every mutant.
func Analyze(toks []ctoken.Token) (*Source, error) {
	s := &Source{Tokens: toks, spanIdx: make([]int32, len(toks))}
	i := 0
	for i < len(toks) {
		sp, err := scanSpan(toks, i)
		if err != nil {
			return nil, err
		}
		for j := sp.Start; j < sp.End; j++ {
			s.spanIdx[j] = int32(len(s.Spans))
		}
		s.Spans = append(s.Spans, sp)
		i = sp.End
	}

	// Cross-check against the real parser: same declaration count, kinds
	// and names, so a respan of span i is guaranteed to replace exactly
	// declaration i.
	prog, perrs := cparser.ParseTokens(toks)
	if len(perrs) > 0 {
		return nil, fmt.Errorf("cincr: pristine stream does not parse: %v", perrs[0])
	}
	if len(prog.Decls) != len(s.Spans) {
		return nil, fmt.Errorf("cincr: %d spans but %d declarations", len(s.Spans), len(prog.Decls))
	}
	for i, d := range prog.Decls {
		kind, name := declShape(d)
		if kind != s.Spans[i].Kind || name != s.Spans[i].Name {
			return nil, fmt.Errorf("cincr: span %d is %s %q but declaration is %s %q",
				i, s.Spans[i].Kind, s.Spans[i].Name, kind, name)
		}
	}
	return s, nil
}

// declShape reports a declaration's span kind and name.
func declShape(d cast.Decl) (SpanKind, string) {
	switch d := d.(type) {
	case *cast.MacroDecl:
		return SpanMacro, d.Name
	case *cast.VarDecl:
		return SpanVar, d.Name
	case *cast.FuncDecl:
		return SpanFunc, d.Name
	}
	return 0, ""
}

// scanSpan delimits the top-level declaration starting at token i.
func scanSpan(toks []ctoken.Token, i int) (Span, error) {
	t := toks[i]
	if t.Kind == ctoken.HashDefine {
		// "#define Name body... <end-define>"
		if i+1 >= len(toks) || toks[i+1].Kind != ctoken.Ident {
			return Span{}, fmt.Errorf("cincr: malformed #define at %s", t.Pos)
		}
		for j := i + 2; j < len(toks); j++ {
			if toks[j].Kind == ctoken.EndDefine {
				return Span{Start: i, End: j + 1, Kind: SpanMacro, Name: toks[i+1].Lit}, nil
			}
		}
		return Span{}, fmt.Errorf("cincr: unterminated #define at %s", t.Pos)
	}

	// "[static|inline|const]* type name ..." — a function if a '(' follows
	// the name, otherwise a variable ending at the top-level ';'.
	j := i
	for j < len(toks) && (toks[j].Kind == ctoken.KwStatic ||
		toks[j].Kind == ctoken.KwInline || toks[j].Kind == ctoken.KwConst) {
		j++
	}
	if j >= len(toks) || !typeToken(toks[j]) {
		return Span{}, fmt.Errorf("cincr: expected type at %s", toks[min(j, len(toks)-1)].Pos)
	}
	j++
	if j >= len(toks) || toks[j].Kind != ctoken.Ident {
		return Span{}, fmt.Errorf("cincr: expected declaration name at %s", toks[min(j, len(toks)-1)].Pos)
	}
	name := toks[j].Lit
	j++
	if j < len(toks) && toks[j].Kind == ctoken.LParen {
		// Function: skip to the body's opening brace, then to its match.
		depth := 0
		for ; j < len(toks); j++ {
			switch toks[j].Kind {
			case ctoken.LBrace:
				depth++
			case ctoken.RBrace:
				depth--
				if depth == 0 {
					return Span{Start: i, End: j + 1, Kind: SpanFunc, Name: name}, nil
				}
			}
		}
		return Span{}, fmt.Errorf("cincr: unterminated function %q at %s", name, toks[i].Pos)
	}
	// Variable: runs to the next top-level semicolon.
	for ; j < len(toks); j++ {
		if toks[j].Kind == ctoken.Semi {
			return Span{Start: i, End: j + 1, Kind: SpanVar, Name: name}, nil
		}
	}
	return Span{}, fmt.Errorf("cincr: unterminated declaration %q at %s", name, toks[i].Pos)
}

// typeToken reports whether a token can begin a declared type.
func typeToken(t ctoken.Token) bool {
	if t.Kind.IsTypeKeyword() {
		return true
	}
	return t.Kind == ctoken.Ident && len(t.Lit) > 2 && t.Lit[len(t.Lit)-2:] == "_t"
}

// SpanOf returns the index of the span containing token index i, or -1
// when i lies outside the stream.
func (s *Source) SpanOf(i int) int {
	if i < 0 || i >= len(s.spanIdx) {
		return -1
	}
	return int(s.spanIdx[i])
}

// Respan re-parses the span containing the mutated token, with the
// replacement applied, into a fresh declaration ready to splice over
// declaration index declIdx of the pristine program. scratch is a
// caller-owned buffer reused across calls (pass the previous return
// value); it comes back resliced so the campaign hot path never
// allocates a token copy.
//
// ErrSpanUnsafe is returned — and the caller must fall back to the full
// front end — when the index lies outside the stream, or the mutated
// span no longer parses to exactly one clean declaration of the same
// kind and name. In particular a replacement that introduces a syntax
// error always falls back, so diagnostic text and recovery behaviour
// come from the authoritative full parse.
func (s *Source) Respan(scratch []ctoken.Token, index int, repl ctoken.Token) ([]ctoken.Token, int, cast.Decl, error) {
	si := s.SpanOf(index)
	if si < 0 {
		return scratch, 0, nil, ErrSpanUnsafe
	}
	sp := s.Spans[si]
	n := sp.End - sp.Start
	if cap(scratch) < n {
		scratch = make([]ctoken.Token, n)
	}
	scratch = scratch[:n]
	copy(scratch, s.Tokens[sp.Start:sp.End])
	scratch[index-sp.Start] = repl

	prog, perrs := cparser.ParseTokens(scratch)
	if len(perrs) > 0 || len(prog.Decls) != 1 {
		return scratch, 0, nil, ErrSpanUnsafe
	}
	d := prog.Decls[0]
	kind, name := declShape(d)
	if kind != sp.Kind || name != sp.Name {
		// The replacement changed the program's global surface (e.g. a
		// renamed declaration): other declarations may now resolve
		// differently, which only the full front end models.
		return scratch, 0, nil, ErrSpanUnsafe
	}
	return scratch, si, d, nil
}

// Mutation names one single-token mutant of an analysed source: the
// boot input form of the incremental front end. Tokens at Index is
// replaced by Replacement; everything else is the pristine stream.
type Mutation struct {
	Src         *Source
	Index       int
	Replacement ctoken.Token
}

// Apply materialises the full mutated token stream — the fallback path
// and the input of the full-recompile differential.
func (m *Mutation) Apply() []ctoken.Token {
	out := make([]ctoken.Token, len(m.Src.Tokens))
	copy(out, m.Src.Tokens)
	if m.Index >= 0 && m.Index < len(out) {
		out[m.Index] = m.Replacement
	}
	return out
}
