package main

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/experiment"
)

// renderStoreTables renders a store's report tables exactly as
// `campaign report` lays them out — the byte-comparison currency of the
// fleet determinism assertions.
func renderStoreTables(t *testing.T, path string) string {
	t.Helper()
	st, err := campaign.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	tables, order, err := campaign.Aggregate(st.Records())
	if err != nil {
		t.Fatal(err)
	}
	var text string
	for _, label := range order {
		if !tables[label].Complete() {
			t.Fatalf("cell %s incomplete: %d/%d", label, tables[label].Results, tables[label].Selected)
		}
		text += experiment.FormatDriverTable(experiment.TableFromCampaign(tables[label]), label)
	}
	return text
}

// TestFleetCLI drives the fleet lifecycle through the subcommand
// surface: `serve` coordinates, two `worker` processes (in-process
// here) lease and boot, and the canonical store's report tables are
// byte-identical to a serial `campaign run` of the same spec.
func TestFleetCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet CLI test is not short")
	}
	dir := t.TempDir()
	fleetStore := filepath.Join(dir, "fleet.jsonl")
	serialStore := filepath.Join(dir, "serial.jsonl")
	addrFile := filepath.Join(dir, "addr.txt")

	if err := run([]string{"campaign", "run", "-store", serialStore,
		"-drivers", "busmouse_c", "-sample", "8", "-seed", "11", "-quiet"}); err != nil {
		t.Fatalf("serial campaign run: %v", err)
	}

	serveDone := make(chan error, 1)
	go func() {
		serveDone <- run([]string{"serve", "-store", fleetStore,
			"-addr", "127.0.0.1:0", "-addr-file", addrFile,
			"-drivers", "busmouse_c", "-sample", "8", "-seed", "11",
			"-shards", "4", "-quiet"})
	}()
	var addr string
	for deadline := time.Now().Add(10 * time.Second); addr == ""; {
		if time.Now().After(deadline) {
			t.Fatal("serve never wrote its address file")
		}
		if data, err := os.ReadFile(addrFile); err == nil {
			addr = strings.TrimSpace(string(data))
		} else {
			time.Sleep(20 * time.Millisecond)
		}
	}

	var wg sync.WaitGroup
	workerErrs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := []string{"cli-w0", "cli-w1"}[i]
			workerErrs[i] = run([]string{"worker", "-connect", addr, "-name", name, "-quiet"})
		}(i)
	}
	wg.Wait()
	for i, err := range workerErrs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("serve: %v", err)
	}

	want := renderStoreTables(t, serialStore)
	got := renderStoreTables(t, fleetStore)
	if got != want {
		t.Errorf("fleet report tables differ from serial:\n--- serial\n%s\n--- fleet\n%s", want, got)
	}
	if err := run([]string{"campaign", "report", "-store", fleetStore}); err != nil {
		t.Errorf("campaign report over the fleet store: %v", err)
	}
}

// TestFleetCLIErrors pins the flag validation of the new subcommands.
func TestFleetCLIErrors(t *testing.T) {
	if err := run([]string{"serve"}); err == nil {
		t.Error("serve without -store accepted")
	}
	if err := run([]string{"worker"}); err == nil {
		t.Error("worker without -connect accepted")
	}
	if err := run([]string{"worker", "-connect", "127.0.0.1:1", "-frontend", "psychic"}); err == nil {
		t.Error("worker with unknown front end accepted")
	}
	if err := run([]string{"serve", "-store", filepath.Join(t.TempDir(), "x.jsonl"),
		"-resume"}); err == nil {
		t.Error("serve -resume over an empty store accepted")
	}
	for _, args := range [][]string{{"serve", "-h"}, {"worker", "-h"}} {
		if err := run(args); err != nil {
			t.Errorf("run(%v) = %v, want nil (help is not an error)", args, err)
		}
	}
}

// TestStatusUnreachableAddress: `campaign status` against an address
// nothing listens on must fail with a message that names the address it
// tried and points at the serve/worker way of starting one.
func TestStatusUnreachableAddress(t *testing.T) {
	_, err := fetchSnapshot("127.0.0.1:1")
	if err == nil {
		t.Fatal("fetchSnapshot against a dead endpoint succeeded")
	}
	for _, want := range []string{
		"127.0.0.1:1",     // the address it actually tried
		"-status-addr",    // how a single-process run serves status
		"driverlab serve", // how a fleet coordinator serves it
		"worker -connect", // how workers join that fleet
	} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("unreachable-status error %q does not mention %q", err, want)
		}
	}
	// And through the CLI: a non-nil error means a non-zero exit.
	if err := run([]string{"campaign", "status", "127.0.0.1:1"}); err == nil {
		t.Error("campaign status against a dead endpoint accepted")
	}
}

// TestFleetSnapshotFormatting: a snapshot carrying fleet counters
// renders the fleet lines in the status view.
func TestFleetSnapshotFormatting(t *testing.T) {
	s := campaign.Snapshot{
		Name: "fmt", Live: true, Workers: 3, Total: 100, Recorded: 40, Ran: 40,
		Fleet: &campaign.FleetStatus{
			Workers: 3, ShardsTotal: 8, ShardsComplete: 5, ShardsLeased: 2,
			Leases: 9, Releases: 2, RejectedFrames: 1, StaleRecords: 4,
		},
	}
	out := formatSnapshot(s, "test")
	for _, want := range []string{
		"fleet: 3 workers connected", "shards 5/8 complete (2 leased)",
		"9 leases (2 re-leased)", "1 rejected frames", "4 stale records",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("fleet snapshot view lacks %q:\n%s", want, out)
		}
	}
	// Without fleet counters the fleet lines stay out of the view.
	s.Fleet = nil
	if out := formatSnapshot(s, "test"); strings.Contains(out, "fleet") {
		t.Errorf("non-fleet snapshot renders fleet lines:\n%s", out)
	}
}
