package permedia

import (
	"fmt"

	"repro/internal/hw"
)

// Control-register dword indices within the aperture.
const (
	regResetStatus = 0
	regIntEnable   = 1
	regIntFlags    = 2
	regInFIFOSpace = 3
	regOutFIFO     = 4
	regDMAAddress  = 5
	regDMACount    = 6
	regFIFODiscon  = 7
	regChipConfig  = 8
	regScreenBase  = 9
	regStride      = 10
	regHTotal      = 11
	regVTotal      = 16
	regVideoCtl    = 20
	regLineCount   = 21
	regFBReadMode  = 22
	regFBWriteMode = 23
	numRegs        = 24
)

// Interrupt flag bits.
const (
	IntDMA      = 0x01
	IntSync     = 0x02
	IntExternal = 0x04
	IntError    = 0x08
	IntVRetrace = 0x10
)

const (
	resetTicks   = 100
	fifoCapacity = 32
	dmaTickRate  = 8 // dwords drained per tick
)

// GPU is the Permedia 2 model.
type GPU struct {
	regs       [numRegs]uint32
	resetUntil uint64
	fifo       []uint32
	clock      *hw.Clock
	lastNow    uint64
	drained    uint64 // total FIFO words consumed by the core
}

// New attaches a GPU model to the clock.
func New(clock *hw.Clock) *GPU {
	g := &GPU{clock: clock}
	clock.OnTick(g.tick)
	return g
}

func (g *GPU) tick(now uint64) {
	// Clock listeners are invoked once per Tick batch, so the model works
	// in elapsed virtual time rather than per invocation.
	elapsed := now - g.lastNow
	g.lastNow = now
	if elapsed == 0 {
		return
	}
	// The graphics core drains the input FIFO.
	drain := int(elapsed) * dmaTickRate
	if drain > len(g.fifo) {
		drain = len(g.fifo)
	}
	if drain > 0 {
		g.fifo = g.fifo[drain:]
		g.drained += uint64(drain)
	}
	// DMA engine: counts down, raising the DMA interrupt at zero.
	if cnt := g.regs[regDMACount]; cnt > 0 {
		step := uint32(elapsed) * dmaTickRate
		if step > cnt {
			step = cnt
		}
		g.regs[regDMACount] = cnt - step
		if g.regs[regDMACount] == 0 {
			g.regs[regIntFlags] |= IntDMA
		}
	}
	// Video timing: the line counter runs whenever video is enabled.
	if g.regs[regVideoCtl]&0x01 != 0 {
		vtotal := g.regs[regVTotal] & 0xfff
		if vtotal == 0 {
			vtotal = 1024
		}
		line := g.regs[regLineCount] + uint32(elapsed)
		if line >= vtotal {
			g.regs[regIntFlags] |= IntVRetrace
		}
		g.regs[regLineCount] = line % vtotal
	}
}

// Drained reports how many FIFO words the core has consumed.
func (g *GPU) Drained() uint64 { return g.drained }

// control is the control-aperture endpoint.
type control struct{ g *GPU }

// fifoPort is the GP input FIFO endpoint.
type fifoPort struct{ g *GPU }

var (
	_ hw.Device = (*control)(nil)
	_ hw.Device = (*fifoPort)(nil)
)

// Control returns the control-aperture endpoint (24 dword registers).
func (g *GPU) Control() hw.Device { return &control{g: g} }

// FIFO returns the input-FIFO endpoint.
func (g *GPU) FIFO() hw.Device { return &fifoPort{g: g} }

// Name implements hw.Device.
func (c *control) Name() string { return "permedia2" }

// Read implements hw.Device.
func (c *control) Read(offset hw.Port, width hw.AccessWidth) (uint32, error) {
	g := c.g
	if int(offset) >= numRegs {
		return 0, fmt.Errorf("permedia: read of nonexistent register %d", offset)
	}
	switch int(offset) {
	case regResetStatus:
		if g.clock.Now() < g.resetUntil {
			return 1 << 31, nil
		}
		return 0, nil
	case regInFIFOSpace:
		return uint32(fifoCapacity - len(g.fifo)), nil
	case regOutFIFO:
		return 0, nil
	default:
		return g.regs[offset], nil
	}
}

// Write implements hw.Device.
func (c *control) Write(offset hw.Port, width hw.AccessWidth, value uint32) error {
	g := c.g
	if int(offset) >= numRegs {
		return fmt.Errorf("permedia: write of nonexistent register %d", offset)
	}
	switch int(offset) {
	case regResetStatus:
		g.resetUntil = g.clock.Now() + resetTicks
		for i := range g.regs {
			g.regs[i] = 0
		}
		g.fifo = nil
	case regIntFlags:
		g.regs[regIntFlags] &^= value // write 1 to clear
	case regInFIFOSpace, regOutFIFO, regLineCount:
		// read-only
	default:
		g.regs[offset] = value
	}
	return nil
}

// Name implements hw.Device.
func (f *fifoPort) Name() string { return "permedia2-fifo" }

// Read implements hw.Device: the FIFO port is write-only; reads float.
func (f *fifoPort) Read(offset hw.Port, width hw.AccessWidth) (uint32, error) {
	return 0xffffffff, nil
}

// Write implements hw.Device: push a word into the GP input FIFO. An
// overflowing FIFO raises the error interrupt and drops the word — the
// misbehaviour drivers must avoid by polling InFIFOSpace.
func (f *fifoPort) Write(offset hw.Port, width hw.AccessWidth, value uint32) error {
	g := f.g
	if len(g.fifo) >= fifoCapacity {
		g.regs[regIntFlags] |= IntError
		return nil
	}
	g.fifo = append(g.fifo, value)
	return nil
}
