// Command driverlab regenerates every table and figure of the paper's
// evaluation:
//
//	driverlab -table 1        the reconstructed C operator mutation rules
//	driverlab -table 2        Devil-compiler coverage over the 5 specs
//	driverlab -table 3        mutation outcomes of the C IDE driver
//	driverlab -table 4        mutation outcomes of the CDevil IDE driver
//	driverlab -table 5..8     the extension pairs (busmouse, NE2000,
//	                          Permedia 2, 82371FB bus master), numbered
//	                          from the workload registry
//	driverlab -table all      everything (the default)
//	driverlab -figure 1       the two driver architectures side by side
//	driverlab -figure 3       the busmouse specification (round-tripped)
//	driverlab -figure 4       the debug stub of the IDE Drive variable
//	driverlab -ablation       the weak-typing and production-mode ablations
//
// Sampling: -sample selects the percentage of driver mutants booted (the
// paper used 25); -seed makes the selection reproducible. -backend forces
// the hwC execution engine: the closure-compiled hot path (default) or
// the tree-walking reference interpreter.
//
// Campaigns — sharded, resumable, persisted mutation runs — live under
// the campaign subcommand:
//
//	driverlab campaign run    -store c.jsonl -drivers ide_c,ide_devil ...
//	driverlab campaign resume -store c.jsonl
//	driverlab campaign merge  -out merged.jsonl shard0.jsonl shard1.jsonl
//	driverlab campaign report -store c.jsonl
//	driverlab campaign status <addr|store>
//
// With -status-addr a run serves its live telemetry over HTTP —
// Prometheus text at /metrics, a JSON snapshot at /status, pprof under
// /debug/pprof/ — and `campaign status` renders that snapshot, live
// from the endpoint or reconstructed offline from a store. `driverlab
// metrics` lists every metric family the stack can register.
//
// The bench subcommand measures campaign throughput (boots/s,
// allocations per boot) and, with -json, emits BENCH_campaign.json so
// the perf trajectory is tracked across PRs; -phases adds the
// per-phase boot time breakdown, and -obs compare gates the metric
// collector's overhead:
//
//	driverlab bench -json -phases
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/cdriver/ctoken"
	"repro/internal/devil"
	"repro/internal/drivers"
	"repro/internal/experiment"
	"repro/internal/mutation/cmut"
	"repro/internal/specs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "driverlab:", err)
		os.Exit(1)
	}
}

// extensionWorkloads returns the registered non-IDE workloads in
// registration order; table 5+i regenerates pair i.
func extensionWorkloads() []*experiment.WorkloadDesc {
	var exts []*experiment.WorkloadDesc
	for _, d := range experiment.Workloads() {
		if d.Name != "ide" {
			exts = append(exts, d)
		}
	}
	return exts
}

// extensionTableHelp renders the extension-table numbering for help text
// ("5 (busmouse extension), 6 (ne2000 extension), ...").
func extensionTableHelp(exts []*experiment.WorkloadDesc) string {
	parts := make([]string, len(exts))
	for i, d := range exts {
		parts[i] = fmt.Sprintf("%d (%s extension)", 5+i, d.Name)
	}
	return strings.Join(parts, ", ")
}

// usageText is the top-level -h banner: unlike the default flag dump it
// enumerates the subcommands, the embedded drivers and the -backend
// values, so the CLI surface is discoverable without reading the source.
func usageText() string {
	exts := extensionWorkloads()
	return fmt.Sprintf(`driverlab regenerates the paper's tables and figures and runs
mutation campaigns over the embedded driver corpus.

Usage:
  driverlab [flags]                      tables 1-%d, figures, ablations
  driverlab campaign <verb> [flags]      sharded, resumable, persisted campaigns
                                         verbs: run, resume, merge, report, status
  driverlab serve [flags]                coordinate a campaign fleet: lease the
                                         work-list's shards to worker processes
                                         over TCP, append their records to the
                                         canonical -store
  driverlab worker -connect <addr>       join a fleet: lease shards from a
                                         coordinator, boot them, stream the
                                         records back
  driverlab bench [flags]                campaign throughput (-json writes
                                         BENCH_campaign.json, -phases the
                                         per-phase boot time breakdown,
                                         -compare old.json the regression
                                         gate, -min-boots the sampling floor)
  driverlab metrics                      list every metric family the
                                         instrumented stack can register
  driverlab scenarios                    list the hardware scenarios a
                                         campaign matrix can cross its
                                         drivers with (-names: bare list)

Observability: campaign run -status-addr :PORT (and serve -status-addr)
serves Prometheus /metrics, a JSON /status snapshot and /debug/pprof
while the campaign runs; campaign status <addr|store> renders the
snapshot live from that endpoint or offline from a JSONL store. A fleet
coordinator's snapshot adds per-worker throughput and lease counters.

Drivers: %s.
Extension tables: %s.
Backends (-backend): block (closure compilation plus basic-block fusion
and batched port I/O, the default), compiled (per-statement closures)
or interp (the tree-walking reference oracle). All three charge the
watchdog per basic block, so step counts and every other observable are
identical across backends.
Front ends (campaign/bench -frontend): incremental (re-run the front
end only on the mutated declaration, the default) or full (re-lex,
re-parse, re-check and re-compile the whole driver per mutant).
Scenarios (campaign run -scenario): cross the driver list with named
hardware-degradation cells (pristine, flaky-bus[:pct], timing[:ticks]);
fault injection is seeded per task, so matrix cells stay deterministic
across shards, resumes, backends and front ends.

Flags:
`, 4+len(exts), strings.Join(drivers.Names(), ", "), extensionTableHelp(exts))
}

// parseFlags wraps fs.Parse, treating -h/-help as success: the usage was
// printed, not an error, so the process must exit 0.
func parseFlags(fs *flag.FlagSet, args []string) (help bool, err error) {
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return true, nil
		}
		return false, err
	}
	return false, nil
}

func run(args []string) error {
	if len(args) > 0 && args[0] == "campaign" {
		return runCampaign(args[1:])
	}
	if len(args) > 0 && args[0] == "bench" {
		return runBench(args[1:])
	}
	if len(args) > 0 && args[0] == "serve" {
		return runServe(args[1:])
	}
	if len(args) > 0 && args[0] == "worker" {
		return runWorker(args[1:])
	}
	if len(args) > 0 && args[0] == "metrics" {
		return runMetrics(args[1:])
	}
	if len(args) > 0 && args[0] == "scenarios" {
		return runScenarios(args[1:])
	}
	exts := extensionWorkloads()
	fs := flag.NewFlagSet("driverlab", flag.ContinueOnError)
	table := fs.String("table", "", "table to regenerate: 1-4, "+extensionTableHelp(exts)+", or all")
	figure := fs.String("figure", "", "figure to regenerate: 1, 3 or 4")
	ablation := fs.Bool("ablation", false, "run the design-choice ablations")
	sample := fs.Int("sample", 25, "percentage of driver mutants to boot (paper: 25)")
	seed := fs.Uint64("seed", 2001, "sampling seed")
	backendFlag := fs.String("backend", "", "hwC execution backend: block (default), compiled or interp")
	fs.Usage = func() {
		fmt.Fprint(fs.Output(), usageText())
		fs.PrintDefaults()
	}
	if help, err := parseFlags(fs, args); help || err != nil {
		return err
	}
	if *table == "" && *figure == "" && !*ablation {
		*table = "all"
	}
	valid := map[string]bool{"": true, "all": true, "1": true, "2": true, "3": true, "4": true}
	for i := range exts {
		valid[strconv.Itoa(5+i)] = true
	}
	if !valid[*table] {
		return fmt.Errorf("unknown table %q (want 1-%d or all)", *table, 4+len(exts))
	}
	backend, err := experiment.ParseBackend(*backendFlag)
	if err != nil {
		return err
	}
	opts := experiment.MutationOptions{SamplePct: *sample, Seed: *seed, Backend: backend}

	switch *figure {
	case "":
	case "1":
		printFigure1()
	case "3":
		return printFigure3()
	case "4":
		return printFigure4()
	default:
		return fmt.Errorf("unknown figure %q", *figure)
	}

	want := func(t string) bool { return *table == "all" || *table == t }
	if want("1") {
		printTable1()
	}
	if want("2") {
		rows, err := experiment.Table2()
		if err != nil {
			return err
		}
		fmt.Println(experiment.FormatTable2(rows))
	}
	if want("3") {
		t3, err := experiment.Table3(opts)
		if err != nil {
			return err
		}
		fmt.Println(experiment.FormatDriverTable(t3,
			fmt.Sprintf("Table 3: Mutations on C code (%d%% sample, seed %d)", *sample, *seed)))
	}
	if want("4") {
		t4, err := experiment.Table4(opts)
		if err != nil {
			return err
		}
		fmt.Println(experiment.FormatDriverTable(t4,
			fmt.Sprintf("Table 4: Mutations on CDevil code (%d%% sample, seed %d)", *sample, *seed)))
	}
	// The extension tables come straight from the workload registry: one
	// table per registered non-IDE pair, every driver of the pair through
	// the same generic mutation path.
	for i, ext := range exts {
		if !want(strconv.Itoa(5 + i)) {
			continue
		}
		for _, drv := range ext.Drivers {
			tbl, err := experiment.DriverMutation(drv, opts)
			if err != nil {
				return err
			}
			fmt.Println(experiment.FormatDriverTable(tbl,
				fmt.Sprintf("Extension (paper §6 future work): mutations on %s (%d%% sample, seed %d)",
					drv, *sample, *seed)))
		}
	}

	if *ablation {
		return runAblations(opts)
	}
	return nil
}

// printTable1 renders the reconstructed operator mutation classes.
func printTable1() {
	fmt.Println("Table 1: Mutation rules for C operators (reconstruction; see DESIGN.md §6)")
	kinds := make([]ctoken.Kind, 0, len(cmut.OperatorClasses))
	for k := range cmut.OperatorClasses {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		repls := cmut.OperatorClasses[k]
		names := make([]string, len(repls))
		for i, r := range repls {
			names[i] = r.String()
		}
		fmt.Printf("  %-4s -> %s\n", k, strings.Join(names, ", "))
	}
	fmt.Println()
}

// printFigure1 sketches the two development models of Figure 1.
func printFigure1() {
	fmt.Print(`Figure 1: Developing drivers with Devil

  Existing driver                      Devil-based driver
  ---------------                      ------------------
  application                          application
      |                                    |
  system (kernel)                      system (kernel)
      |                                    |
  driver ----------------------+      driver (CDevil glue)
   #define MSE_DATA_PORT 0x23c |          buttons = get_buttons();
   outb(MSE_READ_Y_HIGH,       |          dy = get_dy();
        MSE_CONTROL_PORT);     |           |
   dy |= (inb(MSE_DATA_PORT)   |      generated stubs  <- devilc <- spec.dil
        & 0xf) << 4;           |           |
      |                        |       masking/shifting/pre-actions
  device <---------------------+           |
                                       device

`)
}

// printFigure3 round-trips the busmouse specification through the parser.
func printFigure3() error {
	s, err := specs.Load("busmouse")
	if err != nil {
		return err
	}
	spec, err := devil.Compile(s.Filename, s.Source)
	if err != nil {
		return err
	}
	fmt.Printf("Figure 3: Specification of the Logitech busmouse (%s, %d registers, %d variables)\n\n",
		spec.AST.Name, len(spec.AST.Registers()), len(spec.AST.Variables()))
	fmt.Println(s.Source)
	return nil
}

// printFigure4 emits the debug stub for the IDE Drive variable.
func printFigure4() error {
	s, err := specs.Load("ide")
	if err != nil {
		return err
	}
	spec, err := devil.Compile(s.Filename, s.Source)
	if err != nil {
		return err
	}
	text, err := spec.EmitCVariable(devil.Debug, "Drive")
	if err != nil {
		return err
	}
	fmt.Println("Figure 4: Debug stub for the IDE Drive variable")
	fmt.Println()
	fmt.Print(text)
	return nil
}

// runAblations quantifies the two design choices DESIGN.md calls out.
func runAblations(opts experiment.MutationOptions) error {
	fmt.Println("Ablation A: CDevil with the strict checker downgraded to plain C rules")
	weak := opts
	weak.ForcePermissive = true
	t, err := experiment.Table4(weak)
	if err != nil {
		return err
	}
	fmt.Println(experiment.FormatDriverTable(t, "  (stubs still active at run time)"))

	fmt.Println("Ablation B: CDevil with production-mode stubs (no run-time assertions)")
	prod := opts
	prod.StubMode = devil.Production
	t, err = experiment.Table4(prod)
	if err != nil {
		return err
	}
	fmt.Println(experiment.FormatDriverTable(t, "  (strict typing still active at compile time)"))
	return nil
}
