package pci

import (
	"fmt"

	"repro/internal/hw"
)

// BMICX bits.
const (
	BMStart    = 0x01
	BMReadMode = 0x08
)

// BMISX bits.
const (
	BMActive    = 0x01
	BMError     = 0x02
	BMInterrupt = 0x04
)

// dmaTicks is how long a started transfer stays active.
const dmaTicks = 30

// BusMaster is the 82371FB primary-channel model. It exposes three
// endpoints matching the specification's three port parameters.
type BusMaster struct {
	bmicx   uint8
	bmisx   uint8
	bmidtpx uint32
	doneAt  uint64
	clock   *hw.Clock
}

// New attaches a bus master to the clock.
func New(clock *hw.Clock) *BusMaster {
	bm := &BusMaster{clock: clock, bmisx: 0x60} // both drives DMA-capable
	clock.OnTick(bm.tick)
	return bm
}

func (b *BusMaster) tick(now uint64) {
	if b.bmisx&BMActive != 0 && now >= b.doneAt {
		b.bmisx &^= BMActive
		b.bmisx |= BMInterrupt
	}
}

// Reset returns the bus master to the power-on state New leaves it in:
// engine stopped, latches clear, both drives DMA-capable, descriptor
// pointer zeroed. It is the campaign worker's rig-reuse hook.
func (b *BusMaster) Reset() {
	b.bmicx = 0
	b.bmisx = 0x60
	b.bmidtpx = 0
	b.doneAt = 0
}

// State is saved bus-master state for the campaign engine's
// pristine-prefix snapshot. doneAt is an absolute virtual-time anchor;
// Restore is only exact when the shared clock is rewound to the capture
// instant, which the rig-level snapshot does.
type State struct {
	bmicx   uint8
	bmisx   uint8
	bmidtpx uint32
	doneAt  uint64
}

// Snapshot copies the engine's state into s (copy-in-place).
func (b *BusMaster) Snapshot(s *State) {
	s.bmicx, s.bmisx, s.bmidtpx, s.doneAt = b.bmicx, b.bmisx, b.bmidtpx, b.doneAt
}

// Restore rewinds the engine to the captured state, keeping its clock
// binding.
func (b *BusMaster) Restore(s *State) {
	b.bmicx, b.bmisx, b.bmidtpx, b.doneAt = s.bmicx, s.bmisx, s.bmidtpx, s.doneAt
}

// DescriptorTable returns the programmed PRD table address.
func (b *BusMaster) DescriptorTable() uint32 { return b.bmidtpx &^ 3 }

// Active reports whether a transfer is in flight.
func (b *BusMaster) Active() bool { return b.bmisx&BMActive != 0 }

// IrqPending reports whether the completion interrupt is latched.
func (b *BusMaster) IrqPending() bool { return b.bmisx&BMInterrupt != 0 }

// ErrorLatched reports whether the error latch is set.
func (b *BusMaster) ErrorLatched() bool { return b.bmisx&BMError != 0 }

// Capabilities returns the drive-capability bits (0x60 at power-on).
func (b *BusMaster) Capabilities() uint8 { return b.bmisx & 0x60 }

type endpoint struct {
	bm  *BusMaster
	reg int // 0 = bmicx, 1 = bmisx, 2 = bmidtpx
}

var _ hw.Device = (*endpoint)(nil)

// Command returns the BMICX endpoint.
func (b *BusMaster) Command() hw.Device { return &endpoint{bm: b, reg: 0} }

// Status returns the BMISX endpoint.
func (b *BusMaster) Status() hw.Device { return &endpoint{bm: b, reg: 1} }

// Descriptor returns the BMIDTPX endpoint.
func (b *BusMaster) Descriptor() hw.Device { return &endpoint{bm: b, reg: 2} }

// Name implements hw.Device.
func (e *endpoint) Name() string {
	switch e.reg {
	case 0:
		return "piix-bmicx"
	case 1:
		return "piix-bmisx"
	default:
		return "piix-bmidtpx"
	}
}

// Read implements hw.Device.
func (e *endpoint) Read(offset hw.Port, width hw.AccessWidth) (uint32, error) {
	if offset != 0 {
		return 0, fmt.Errorf("pci: read of nonexistent register %d", offset)
	}
	switch e.reg {
	case 0:
		return uint32(e.bm.bmicx), nil
	case 1:
		return uint32(e.bm.bmisx), nil
	default:
		return e.bm.bmidtpx, nil
	}
}

// Write implements hw.Device.
func (e *endpoint) Write(offset hw.Port, width hw.AccessWidth, value uint32) error {
	if offset != 0 {
		return fmt.Errorf("pci: write of nonexistent register %d", offset)
	}
	switch e.reg {
	case 0:
		prev := e.bm.bmicx
		e.bm.bmicx = uint8(value)
		if value&BMStart != 0 && prev&BMStart == 0 {
			e.bm.bmisx |= BMActive
			e.bm.doneAt = e.bm.clock.Now() + dmaTicks
		}
		if value&BMStart == 0 {
			e.bm.bmisx &^= BMActive
		}
	case 1:
		// Interrupt and error latches are write-1-to-clear; the capability
		// bits are plain read/write.
		v := uint8(value)
		e.bm.bmisx &^= v & (BMInterrupt | BMError)
		e.bm.bmisx = e.bm.bmisx&^0x60 | v&0x60
	default:
		e.bm.bmidtpx = value &^ 3
	}
	return nil
}
