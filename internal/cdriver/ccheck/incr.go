package ccheck

import (
	"repro/internal/cdriver/cast"
	"repro/internal/cdriver/ctypes"
)

// Scope is the collected file-scope symbol surface of a checked program,
// retained so the incremental front end can re-check a single
// replacement declaration without re-walking the rest of the file.
//
// The single-token mutation model guarantees the replacement cannot
// rename a declaration or change a signature (declaration tokens are not
// mutation sites, and cincr.Respan rejects anything that changes a
// declaration's kind or name), so every symbol the other declarations
// see is unchanged and any new diagnostic can only come from the
// replaced declaration itself. CheckReplacement therefore reproduces
// exactly the error list a full Check of the mutated program would emit.
type Scope struct {
	env  *ctypes.Env
	prog *cast.Program
	// globals is the full file-scope table (what function bodies see).
	globals map[string]symbol
}

// NewScope collects the symbol surface of a program that has already
// been checked cleanly against env. The program must not be mutated
// afterwards except through CheckReplacement's splice discipline.
func NewScope(prog *cast.Program, env *ctypes.Env) *Scope {
	return &Scope{env: env, prog: prog, globals: collectSymbols(prog, env, len(prog.Decls))}
}

// collectSymbols rebuilds the file-scope table over decls[0:n] with
// collect's first-declaration-wins semantics. The declarations are
// already normalised (the program was checked), so no diagnostics can
// arise here.
func collectSymbols(prog *cast.Program, env *ctypes.Env, n int) map[string]symbol {
	globals := make(map[string]symbol, n)
	for _, d := range prog.Decls[:n] {
		switch d := d.(type) {
		case *cast.MacroDecl:
			if _, dup := globals[d.Name]; !dup {
				globals[d.Name] = symbol{kind: symMacro, typ: intType}
			}
		case *cast.VarDecl:
			if _, dup := globals[d.Name]; !dup {
				globals[d.Name] = symbol{kind: symVar, typ: d.Type}
			}
		case *cast.FuncDecl:
			if _, dup := globals[d.Name]; !dup {
				globals[d.Name] = symbol{kind: symFunc, typ: d.Result}
			}
		}
	}
	return globals
}

// CheckReplacement checks a freshly parsed declaration destined for
// declaration slot idx, returning the diagnostics a full Check of the
// spliced program would produce. The declaration is normalised in place
// (like any checked declaration) and is afterwards ready for either
// backend.
func (s *Scope) CheckReplacement(idx int, d cast.Decl) ErrorList {
	switch d := d.(type) {
	case *cast.MacroDecl:
		// Macro bodies are not checked at their definition site (use
		// sites see an integer), and the name is unchanged: no possible
		// diagnostic. This mirrors collect's MacroDecl case.
		return nil

	case *cast.FuncDecl:
		// Function bodies are checked after the whole file is collected,
		// so the replacement sees the full global surface.
		c := &checker{env: s.env, prog: s.prog, globals: s.globals}
		c.checkFunc(d)
		return c.errors

	case *cast.VarDecl:
		// Global initialisers are checked during collect, in declaration
		// order: only the prefix of the file is in scope (an initialiser
		// naming a later declaration is "undeclared", exactly as in the
		// full pass).
		c := &checker{env: s.env, prog: s.prog, globals: collectSymbols(s.prog, s.env, idx)}
		c.checkVarType(d)
		if _, dup := c.globals[d.Name]; !dup {
			c.globals[d.Name] = symbol{kind: symVar, typ: d.Type}
		}
		if d.Init != nil {
			c.assignable(d.NamePos, d.Type, c.exprType(d.Init))
		}
		return c.errors
	}
	return nil
}
