package fleet

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/campaign"
	"repro/internal/obs"
)

// Coordinator defaults; CoordinatorConfig overrides them per campaign.
const (
	// DefaultLeaseTTL is how long a lease survives without a sign of
	// life from its owner before the janitor re-leases the shard.
	DefaultLeaseTTL = 15 * time.Second
	// DefaultRetryDelay is the backoff a worker is told to sleep when
	// every pending shard is leased out.
	DefaultRetryDelay = 500 * time.Millisecond
)

// ErrClosed reports that the coordinator was shut down before every
// shard completed. The store is consistent; restarting the coordinator
// on it leases only the remaining tasks.
var ErrClosed = errors.New("fleet: coordinator closed before the campaign completed")

// CoordinatorConfig assembles a Coordinator.
type CoordinatorConfig struct {
	// Spec is the campaign to serve. Spec.Shards is the lease
	// granularity — it should comfortably exceed the expected worker
	// count so the fleet load-balances (shard count is excluded from
	// the spec fingerprint, so it can differ from any prior run's).
	Spec campaign.Spec
	// Workload expands the spec into its deterministic work plan. The
	// coordinator never calls NewWorker — it boots nothing.
	Workload campaign.Workload
	// Store is the canonical record store every accepted result is
	// appended to.
	Store campaign.Store
	// LeaseTTL bounds how stale a lease may go (default DefaultLeaseTTL);
	// workers are told to heartbeat at a quarter of it.
	LeaseTTL time.Duration
	// Status, when non-nil, accumulates live progress for the /status
	// endpoint and `campaign status <addr>`.
	Status *campaign.StatusTracker
	// Collector, when non-nil, receives the fleet metric families.
	Collector *obs.Collector
	// Logf, when non-nil, receives one line per fleet event (worker
	// joins/leaves, leases, re-leases, protocol offenses).
	Logf func(format string, args ...any)
}

// shardState tracks one shard through the lease lifecycle:
// pending -> leased -> (complete | pending again on release).
type shardState struct {
	remaining map[string]bool // task keys the store still lacks
	records   []campaign.Record
	leased    bool
	complete  bool
	owner     *conn
	deadline  time.Time
}

// conn is one connected worker.
type conn struct {
	c    net.Conn
	name string
}

// Coordinator owns the canonical store of one campaign and leases its
// shards to fleet workers. All state mutations happen under mu; the
// per-connection read loops and the lease janitor are the only
// goroutines that take it.
type Coordinator struct {
	spec    campaign.Spec
	fp      string
	wl      campaign.Workload
	store   campaign.Store
	ttl     time.Duration
	status  *campaign.StatusTracker
	m       *metrics
	logf    func(string, ...any)
	metaFor map[string]string // task key -> cell label (for status)

	mu       sync.Mutex
	shards   map[int]*shardState
	pending  []int
	seen     map[string]bool
	conns    map[*conn]bool
	open     int // shards not yet complete
	complete bool

	leases, releases, rejected, stale atomic.Int64

	done    chan struct{} // closed when every shard is complete
	closed  chan struct{} // closed by Close
	closeMu sync.Once
	doneMu  sync.Once
	ln      net.Listener
	wg      sync.WaitGroup
}

// NewCoordinator expands the spec, reconciles the store (appending the
// spec and meta records a fresh store lacks, refusing a store that
// belongs to a different spec), and computes the remaining work per
// shard. A coordinator over a complete store is valid: Wait returns
// immediately and every lease request drains.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	spec := cfg.Spec.Normalized()
	fp := spec.Fingerprint()
	ttl := cfg.LeaseTTL
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	c := &Coordinator{
		spec:    spec,
		fp:      fp,
		wl:      cfg.Workload,
		store:   cfg.Store,
		ttl:     ttl,
		status:  cfg.Status,
		m:       newMetrics(cfg.Collector),
		logf:    logf,
		metaFor: make(map[string]string),
		shards:  make(map[int]*shardState),
		seen:    make(map[string]bool),
		conns:   make(map[*conn]bool),
		done:    make(chan struct{}),
		closed:  make(chan struct{}),
	}

	metas, tasks, err := campaign.ExpandPlan(spec, cfg.Workload)
	if err != nil {
		return nil, err
	}

	// Reconcile the store, exactly as campaign.Run would on resume:
	// fingerprint-check the spec record, note stored metas and results.
	existing := cfg.Store.Records()
	haveSpec := false
	haveMeta := make(map[string]bool)
	doneRow := make(map[string]campaign.Record)
	for _, r := range existing {
		switch r.Kind {
		case campaign.KindSpec:
			if r.Fingerprint != fp {
				return nil, fmt.Errorf("fleet: store belongs to a different spec (fingerprint %s, want %s)",
					r.Fingerprint, fp)
			}
			haveSpec = true
		case campaign.KindMeta:
			haveMeta[campaign.CellLabel(r.Driver, r.Scenario)] = true
		case campaign.KindResult:
			if _, ok := doneRow[r.Key()]; !ok {
				doneRow[r.Key()] = r
			}
		}
	}
	if !haveSpec {
		if err := cfg.Store.Append(campaign.SpecRecord(spec)); err != nil {
			return nil, err
		}
	}
	for _, m := range metas {
		if !haveMeta[campaign.CellLabel(m.Driver, m.Scenario)] {
			if err := cfg.Store.Append(campaign.MetaRecord(m)); err != nil {
				return nil, err
			}
		}
	}

	if c.status != nil {
		c.status.Begin(spec.Name, fp, 0)
	}
	for sh := 0; sh < spec.Shards; sh++ {
		c.shards[sh] = &shardState{remaining: make(map[string]bool)}
	}
	for _, t := range tasks {
		st := c.shards[t.Shard]
		key := t.Key()
		cell := campaign.CellLabel(t.Driver, t.Scenario)
		c.metaFor[key] = cell
		if c.status != nil {
			c.status.Plan(cell, t.Shard)
		}
		if r, ok := doneRow[key]; ok {
			c.seen[key] = true
			st.records = append(st.records, r)
			if c.status != nil {
				c.status.Record(cell, t.Shard, r.Row, campaign.RecordSkip)
			}
			continue
		}
		st.remaining[key] = true
	}
	for sh := 0; sh < spec.Shards; sh++ {
		st := c.shards[sh]
		if len(st.remaining) == 0 {
			st.complete = true
			continue
		}
		c.open++
		c.pending = append(c.pending, sh)
	}
	c.m.shardsComplete.Set(int64(spec.Shards - c.open))
	if c.open == 0 {
		c.complete = true
		c.doneMu.Do(func() { close(c.done) })
	}
	return c, nil
}

// Spec returns the normalized spec the coordinator serves.
func (c *Coordinator) Spec() campaign.Spec { return c.spec }

// Start begins serving the fleet protocol on ln: the accept loop and
// the lease janitor run on background goroutines until Close. The
// coordinator owns ln from here on.
func (c *Coordinator) Start(ln net.Listener) {
	c.ln = ln
	c.wg.Add(2)
	go func() {
		defer c.wg.Done()
		for {
			nc, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			c.wg.Add(1)
			go func() {
				defer c.wg.Done()
				c.handle(nc)
			}()
		}
	}()
	go func() {
		defer c.wg.Done()
		c.janitor()
	}()
}

// Addr returns the listener's bound address (the value workers dial).
func (c *Coordinator) Addr() string {
	if c.ln == nil {
		return ""
	}
	return c.ln.Addr().String()
}

// Done is closed when every shard is complete.
func (c *Coordinator) Done() <-chan struct{} { return c.done }

// Wait blocks until the campaign completes (nil) or the coordinator is
// closed first (ErrClosed).
func (c *Coordinator) Wait() error {
	select {
	case <-c.done:
		return nil
	case <-c.closed:
		select {
		case <-c.done:
			return nil
		default:
			return ErrClosed
		}
	}
}

// Close shuts the coordinator down: the listener stops accepting,
// every worker connection is closed, and the background goroutines
// exit. The store is left consistent (Close does not close it — the
// caller owns it) and a new coordinator can resume it.
func (c *Coordinator) Close() error {
	c.closeMu.Do(func() {
		close(c.closed)
		if c.ln != nil {
			c.ln.Close()
		}
		c.mu.Lock()
		for cc := range c.conns {
			cc.c.Close()
		}
		c.mu.Unlock()
	})
	c.wg.Wait()
	return nil
}

// DrainWorkers blocks until every connected worker has disconnected or
// the timeout passes. Called between completion and Close so workers
// get their drain response instead of a torn connection.
func (c *Coordinator) DrainWorkers(timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for {
		c.mu.Lock()
		n := len(c.conns)
		c.mu.Unlock()
		if n == 0 || time.Now().After(deadline) {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// FleetStatus snapshots the lease and protocol counters.
func (c *Coordinator) FleetStatus() campaign.FleetStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	fs := campaign.FleetStatus{
		Workers:        len(c.conns),
		ShardsTotal:    c.spec.Shards,
		Leases:         c.leases.Load(),
		Releases:       c.releases.Load(),
		RejectedFrames: c.rejected.Load(),
		StaleRecords:   c.stale.Load(),
	}
	for _, st := range c.shards {
		switch {
		case st.complete:
			fs.ShardsComplete++
		case st.leased:
			fs.ShardsLeased++
		}
	}
	return fs
}

// janitor expires stale leases: any leased shard whose deadline has
// passed goes back to the pending queue, so a wedged or silently dead
// worker cannot strand its shard.
func (c *Coordinator) janitor() {
	tick := time.NewTicker(c.ttl / 4)
	defer tick.Stop()
	for {
		select {
		case <-c.closed:
			return
		case now := <-tick.C:
			c.mu.Lock()
			for sh, st := range c.shards {
				if st.leased && !st.complete && now.After(st.deadline) {
					owner := "?"
					if st.owner != nil {
						owner = st.owner.name
					}
					c.releaseLocked(sh, st, "expired")
					c.logf("fleet: lease on shard %d expired (worker %s went quiet); re-leasing", sh, owner)
				}
			}
			c.mu.Unlock()
		}
	}
}

// releaseLocked returns a leased shard to the pending queue (mu held).
func (c *Coordinator) releaseLocked(sh int, st *shardState, reason string) {
	st.leased = false
	st.owner = nil
	c.pending = append(c.pending, sh)
	c.releases.Add(1)
	c.m.release(reason).Inc()
}

// rejectConn sends a reject frame (best effort) and counts the offense.
func (c *Coordinator) rejectConn(nc net.Conn, counter *obs.Counter, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	c.rejected.Add(1)
	counter.Inc()
	c.logf("fleet: %s: %s", nc.RemoteAddr(), msg)
	WriteMsg(nc, Msg{T: MsgReject, Error: msg})
}

// handle owns one worker connection: handshake, then the frame loop.
// Every protocol offense is contained to this connection — the
// offender is named, rejected and dropped; the coordinator, the other
// workers and the store stay untouched.
func (c *Coordinator) handle(nc net.Conn) {
	defer nc.Close()

	// Handshake: the first frame must be a hello with our protocol
	// version; a non-empty fingerprint must match the campaign's.
	nc.SetReadDeadline(time.Now().Add(c.ttl))
	hello, err := ReadMsg(nc)
	if err != nil {
		c.rejectConn(nc, c.m.rejectedFrame, "bad handshake frame: %v", err)
		return
	}
	nc.SetReadDeadline(time.Time{})
	if hello.T != MsgHello {
		c.rejectConn(nc, c.m.rejectedShake, "handshake violation: first frame is %q, want %q", hello.T, MsgHello)
		return
	}
	name := hello.Name
	if name == "" {
		name = nc.RemoteAddr().String()
	}
	if hello.Proto != Proto {
		c.rejectConn(nc, c.m.rejectedShake, "worker %q speaks fleet protocol %d, this coordinator speaks %d",
			name, hello.Proto, Proto)
		return
	}
	if hello.Fingerprint != "" && hello.Fingerprint != c.fp {
		c.rejectConn(nc, c.m.rejectedShake, "worker %q built for spec fingerprint %s, this campaign is %s; rejecting it",
			name, hello.Fingerprint, c.fp)
		return
	}
	spec := c.spec
	if err := WriteMsg(nc, Msg{
		T: MsgWelcome, Spec: &spec, Fingerprint: c.fp,
		HeartbeatMS: int(c.ttl.Milliseconds()) / 4,
		LeaseTTLMS:  int(c.ttl.Milliseconds()),
	}); err != nil {
		return
	}

	w := &conn{c: nc, name: name}
	c.mu.Lock()
	c.conns[w] = true
	n := len(c.conns)
	c.mu.Unlock()
	c.m.workers.Set(int64(n))
	if c.status != nil {
		c.status.SetWorkers(n)
	}
	c.logf("fleet: worker %q connected (%s); %d connected", name, nc.RemoteAddr(), n)
	recAccepted := c.m.workerRecords(name)

	defer func() {
		c.mu.Lock()
		delete(c.conns, w)
		n := len(c.conns)
		// A dropped connection releases every lease it still owns.
		for sh, st := range c.shards {
			if st.owner == w && !st.complete {
				c.releaseLocked(sh, st, "disconnect")
				c.logf("fleet: worker %q left holding shard %d; re-leasing", name, sh)
			}
		}
		c.mu.Unlock()
		c.m.workers.Set(int64(n))
		if c.status != nil {
			c.status.SetWorkers(n)
		}
		c.logf("fleet: worker %q disconnected; %d connected", name, n)
	}()

	for {
		m, err := ReadMsg(nc)
		if err != nil {
			if err != io.EOF {
				select {
				case <-c.closed:
				default:
					c.rejectConn(nc, c.m.rejectedFrame, "dropping worker %q: %v", name, err)
				}
			}
			return
		}
		switch m.T {
		case MsgLease:
			if err := c.grant(w); err != nil {
				return
			}
		case MsgHeartbeat:
			c.touch(w)
		case MsgRecords:
			c.accept(w, m.Records, recAccepted)
		case MsgDone:
			c.finish(w, m.Shard)
		default:
			// A structurally valid frame that makes no sense from a
			// worker (welcome/grant/...): name it and drop the sender.
			c.rejectConn(nc, c.m.rejectedFrame, "dropping worker %q: unexpected %q frame from a worker", name, m.T)
			return
		}
	}
}

// grant answers one lease request: the next pending shard, a retry
// backoff when everything is leased out, or drain when the campaign is
// complete.
func (c *Coordinator) grant(w *conn) error {
	c.mu.Lock()
	if c.complete {
		c.mu.Unlock()
		return WriteMsg(w.c, Msg{T: MsgDrain})
	}
	if len(c.pending) == 0 {
		c.mu.Unlock()
		return WriteMsg(w.c, Msg{T: MsgRetry, DelayMS: int(DefaultRetryDelay.Milliseconds())})
	}
	sh := c.pending[0]
	c.pending = c.pending[1:]
	st := c.shards[sh]
	st.leased = true
	st.owner = w
	st.deadline = time.Now().Add(c.ttl)
	done := append([]campaign.Record(nil), st.records...)
	remaining := len(st.remaining)
	c.leases.Add(1)
	c.mu.Unlock()
	c.m.leases.Inc()
	c.logf("fleet: leased shard %d to worker %q (%d tasks remaining, %d already stored)",
		sh, w.name, remaining, len(done))
	return WriteMsg(w.c, Msg{T: MsgGrant, Shard: sh, Done: done})
}

// touch refreshes the deadlines of every lease the worker owns — any
// sign of life (heartbeat, records, done) counts.
func (c *Coordinator) touch(w *conn) {
	c.mu.Lock()
	defer c.mu.Unlock()
	deadline := time.Now().Add(c.ttl)
	for _, st := range c.shards {
		if st.owner == w && st.leased {
			st.deadline = deadline
		}
	}
}

// accept appends a batch of streamed result records to the canonical
// store, deduplicating by task key: the first record for a task wins,
// later ones (a re-leased shard's residue) are counted and dropped. A
// store append failure is fatal to the campaign — the coordinator
// closes, leaving the store consistent for a restart.
func (c *Coordinator) accept(w *conn, records []campaign.Record, accepted *obs.Counter) {
	c.touch(w)
	c.mu.Lock()
	for _, r := range records {
		if r.Kind != campaign.KindResult {
			continue // workers only stream results; anything else is noise
		}
		key := r.Key()
		if c.seen[key] {
			c.stale.Add(1)
			c.m.stale.Inc()
			continue
		}
		cell, known := c.metaFor[key]
		if !known {
			// A record for a task outside the plan: a worker from some
			// other campaign slipped past dedup. Count and drop it.
			c.stale.Add(1)
			c.m.stale.Inc()
			c.logf("fleet: worker %q streamed record for unplanned task %s; dropping it", w.name, key)
			continue
		}
		if err := c.store.Append(r); err != nil {
			c.mu.Unlock()
			c.logf("fleet: store append failed (%v); shutting down", err)
			go c.Close()
			return
		}
		c.seen[key] = true
		accepted.Inc()
		// The shard is recomputed from the task identity, not read from
		// the record: shard accounting must stay canonical even if a
		// worker mislabels its frames.
		sh := campaign.ShardOfTask(campaign.Task{
			Driver: r.Driver, Mutant: r.Mutant, Scenario: r.Scenario,
		}, c.spec.Shards)
		if st := c.shards[sh]; st != nil {
			delete(st.remaining, key)
			st.records = append(st.records, r)
			if len(st.remaining) == 0 && !st.complete {
				c.completeLocked(sh, st)
			}
		}
		if c.status != nil {
			c.status.Record(cell, sh, r.Row, campaign.KindOfRecord(r))
		}
	}
	c.mu.Unlock()
}

// finish handles a shard-done report. Trust but verify: the shard only
// completes when every one of its task keys has a stored record; a
// premature done (lost records, a worker bug) re-leases the shard
// instead of silently losing tasks.
func (c *Coordinator) finish(w *conn, sh int) {
	c.touch(w)
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.shards[sh]
	if !ok {
		c.logf("fleet: worker %q reported done on unknown shard %d", w.name, sh)
		return
	}
	if st.complete {
		return // a stale worker finishing work that was re-leased and completed
	}
	if len(st.remaining) > 0 {
		// Incomplete done. If the reporter still owns the lease, the
		// shard goes back to the queue; if the lease already moved on,
		// the current owner keeps it.
		if st.owner == w {
			c.releaseLocked(sh, st, "incomplete")
			c.logf("fleet: worker %q reported shard %d done with %d tasks missing; re-leasing",
				w.name, sh, len(st.remaining))
		}
		return
	}
	c.completeLocked(sh, st)
}

// completeLocked marks a shard complete (mu held): the moment its last
// task record lands, whether that arrived in a records batch or was
// verified by a done report.
func (c *Coordinator) completeLocked(sh int, st *shardState) {
	st.complete = true
	st.leased = false
	st.owner = nil
	c.open--
	c.m.shardsComplete.Set(int64(c.spec.Shards - c.open))
	c.logf("fleet: shard %d complete (%d/%d shards)", sh, c.spec.Shards-c.open, c.spec.Shards)
	if c.open == 0 {
		c.complete = true
		if fs, ok := c.store.(interface{ Flush() error }); ok {
			fs.Flush()
		}
		c.doneMu.Do(func() { close(c.done) })
	}
}
