// Package check implements the consistency verification of Devil
// specifications described in §2.2 of the paper.
//
// Devil is layered — ports, registers, device variables — and each layer
// introduces information exactly once, so redundancy across layers opens
// verification opportunities. The checker enforces:
//
// Intra-layer properties:
//   - uniqueness of port parameters, registers, variables, and of symbolic
//     names and bit patterns within an enumerated type;
//   - size correctness: register size vs port data width, mask length vs
//     register size, fragment bit ranges vs register size, variable type
//     width vs assembled fragment width, enum pattern width vs variable
//     width, port offsets vs the declared port range;
//   - pre-action validity: the variable exists, is writable, and the value
//     is representable in its type.
//
// Inter-layer properties:
//   - read/write attribute consistency between a variable and the registers
//     it is assembled from, and between a variable and its type mappings;
//   - exhaustiveness of read mappings of enumerated types;
//   - no omission: every port parameter, every offset of a ranged port,
//     every register, and every relevant register bit must be used;
//   - no overlap: a port is touched by at most one register per direction
//     unless the registers carry disjoint pre-actions or masks, and no
//     register bit feeds two different variables.
package check

import (
	"fmt"

	"repro/internal/devil/ast"
	"repro/internal/devil/token"
)

// Error is a semantic diagnostic produced by the checker.
type Error struct {
	Pos  token.Pos
	Rule string // short rule identifier, e.g. "uniqueness", "no-overlap"
	Msg  string
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("%s: %s: %s", e.Pos, e.Rule, e.Msg)
}

// ErrorList is the ordered set of diagnostics from one check.
type ErrorList []*Error

// Error implements the error interface, summarising the first diagnostic.
func (l ErrorList) Error() string {
	switch len(l) {
	case 0:
		return "no errors"
	case 1:
		return l[0].Error()
	}
	return fmt.Sprintf("%s (and %d more errors)", l[0].Error(), len(l)-1)
}

// Err returns the list as an error, or nil when empty.
func (l ErrorList) Err() error {
	if len(l) == 0 {
		return nil
	}
	return l
}

// VarInfo is the resolved view of one device variable.
type VarInfo struct {
	Decl      *ast.Variable
	Width     int             // total width in bits of the assembled fragments
	Mode      ast.Access      // effective access mode (intersection over fragments)
	Fragments []*FragmentInfo // most-significant first
}

// FragmentInfo resolves one fragment of a variable to its register.
type FragmentInfo struct {
	Frag  *ast.Fragment
	Reg   *ast.Register
	Hi    int // resolved most-significant bit (inclusive)
	Lo    int // resolved least-significant bit (inclusive)
	Width int
}

// Info is the product of a successful check: symbol tables and resolved
// variable layouts that the code generator consumes.
type Info struct {
	Device    *ast.Device
	Params    map[string]*ast.PortParam
	Registers map[string]*ast.Register
	Variables map[string]*VarInfo
	// VarOrder lists variable names in declaration order.
	VarOrder []string
	// TypeIDs assigns each variable's type a specification-unique counter,
	// mirroring the "type" field of the paper's debug stub structures.
	TypeIDs map[string]int
}

type checker struct {
	dev    *ast.Device
	info   *Info
	errors ErrorList
}

// Check verifies dev and returns the resolved Info. Info is non-nil even on
// error (best-effort resolution) so tooling can still inspect partial
// results; callers must treat a non-empty ErrorList as failure.
func Check(dev *ast.Device) (*Info, ErrorList) {
	c := &checker{
		dev: dev,
		info: &Info{
			Device:    dev,
			Params:    make(map[string]*ast.PortParam),
			Registers: make(map[string]*ast.Register),
			Variables: make(map[string]*VarInfo),
			TypeIDs:   make(map[string]int),
		},
	}
	c.collect()
	c.checkRegisters()
	c.checkVariables()
	c.checkPreActions()
	c.checkNoOmission()
	c.checkNoOverlap()
	return c.info, c.errors
}

func (c *checker) errorf(pos token.Pos, rule, format string, args ...interface{}) {
	c.errors = append(c.errors, &Error{Pos: pos, Rule: rule, Msg: fmt.Sprintf(format, args...)})
}

// collect builds symbol tables and enforces uniqueness.
func (c *checker) collect() {
	for _, p := range c.dev.Params {
		if prev, ok := c.info.Params[p.Name]; ok {
			c.errorf(p.NamePos, "uniqueness",
				"port parameter %s redeclared (first at %s)", p.Name, prev.NamePos)
			continue
		}
		c.info.Params[p.Name] = p
		if p.RangeHi < p.RangeLo {
			c.errorf(p.NamePos, "size",
				"port %s: empty offset range {%d..%d}", p.Name, p.RangeLo, p.RangeHi)
		}
		switch p.DataBits {
		case 8, 16, 32:
		default:
			c.errorf(p.NamePos, "size",
				"port %s: unsupported data width bit[%d] (want 8, 16 or 32)", p.Name, p.DataBits)
		}
	}
	if len(c.dev.Params) == 0 {
		c.errorf(c.dev.NamePos, "no-omission", "device %s declares no port parameters", c.dev.Name)
	}
	for _, r := range c.dev.Registers() {
		if prev, ok := c.info.Registers[r.Name]; ok {
			c.errorf(r.NamePos, "uniqueness",
				"register %s redeclared (first at %s)", r.Name, prev.NamePos)
			continue
		}
		if _, clash := c.info.Params[r.Name]; clash {
			c.errorf(r.NamePos, "uniqueness", "register %s shadows a port parameter", r.Name)
		}
		c.info.Registers[r.Name] = r
	}
	typeID := 1
	for _, v := range c.dev.Variables() {
		if prev, ok := c.info.Variables[v.Name]; ok {
			c.errorf(v.NamePos, "uniqueness",
				"variable %s redeclared (first at %s)", v.Name, prev.Decl.NamePos)
			continue
		}
		if _, clash := c.info.Registers[v.Name]; clash {
			c.errorf(v.NamePos, "uniqueness", "variable %s shadows a register", v.Name)
		}
		c.info.Variables[v.Name] = &VarInfo{Decl: v}
		c.info.VarOrder = append(c.info.VarOrder, v.Name)
		c.info.TypeIDs[v.Name] = typeID
		typeID++
	}
}

// checkPortRef validates that a port reference names a declared parameter
// with the offset inside the declared range, and returns the parameter.
func (c *checker) checkPortRef(ref *ast.PortRef, regName string) *ast.PortParam {
	p, ok := c.info.Params[ref.Name]
	if !ok {
		c.errorf(ref.NamePos, "type",
			"register %s: unknown port parameter %s", regName, ref.Name)
		return nil
	}
	if ref.Offset < p.RangeLo || ref.Offset > p.RangeHi {
		c.errorf(ref.NamePos, "size",
			"register %s: offset %d outside range {%d..%d} of port %s",
			regName, ref.Offset, p.RangeLo, p.RangeHi, ref.Name)
	}
	return p
}

func (c *checker) checkRegisters() {
	for _, r := range c.dev.Registers() {
		if r.Size <= 0 || r.Size > 32 {
			c.errorf(r.NamePos, "size",
				"register %s: invalid size bit[%d]", r.Name, r.Size)
			continue
		}
		if r.Mode.CanRead() && r.ReadPort != nil {
			if p := c.checkPortRef(r.ReadPort, r.Name); p != nil && p.DataBits != r.Size {
				c.errorf(r.NamePos, "size",
					"register %s: size bit[%d] does not match %d-bit data width of port %s",
					r.Name, r.Size, p.DataBits, p.Name)
			}
		}
		if r.Mode.CanWrite() && r.WritePort != nil {
			if p := c.checkPortRef(r.WritePort, r.Name); p != nil && p.DataBits != r.Size {
				// Avoid a duplicate diagnostic when read and write share a port.
				if !(r.Mode.CanRead() && r.ReadPort == r.WritePort) {
					c.errorf(r.NamePos, "size",
						"register %s: size bit[%d] does not match %d-bit data width of port %s",
						r.Name, r.Size, p.DataBits, p.Name)
				}
			}
		}
		if r.Mask != "" && len(r.Mask) != r.Size {
			c.errorf(r.MaskPos, "size",
				"register %s: mask %q has %d bits, register is bit[%d]",
				r.Name, r.Mask, len(r.Mask), r.Size)
		}
	}
}

// fragmentWidth resolves one fragment against its register.
func (c *checker) resolveFragment(v *ast.Variable, f *ast.Fragment) *FragmentInfo {
	r, ok := c.info.Registers[f.Reg]
	if !ok {
		c.errorf(f.RegPos, "type",
			"variable %s: unknown register %s", v.Name, f.Reg)
		return nil
	}
	hi, lo := f.Hi, f.Lo
	if f.Whole() {
		hi, lo = r.Size-1, 0
	}
	if lo > hi {
		c.errorf(f.RegPos, "size",
			"variable %s: reversed bit range %s[%d..%d]", v.Name, f.Reg, f.Hi, f.Lo)
		hi, lo = lo, hi
	}
	if hi >= r.Size {
		c.errorf(f.RegPos, "size",
			"variable %s: bit %d outside register %s (bit[%d])", v.Name, hi, f.Reg, r.Size)
		return nil
	}
	return &FragmentInfo{Frag: f, Reg: r, Hi: hi, Lo: lo, Width: hi - lo + 1}
}

func (c *checker) checkVariables() {
	for _, name := range c.info.VarOrder {
		vi := c.info.Variables[name]
		v := vi.Decl
		mode := ast.ReadWrite
		valid := true
		for _, f := range v.Fragments {
			fi := c.resolveFragment(v, f)
			if fi == nil {
				valid = false
				continue
			}
			vi.Fragments = append(vi.Fragments, fi)
			vi.Width += fi.Width
			mode = intersectMode(mode, fi.Reg.Mode)
		}
		if !valid {
			continue
		}
		if mode == 0 {
			c.errorf(v.NamePos, "attribute",
				"variable %s combines read-only and write-only registers; no access mode remains",
				v.Name)
			vi.Mode = ast.ReadWrite // keep resolving
		} else {
			vi.Mode = mode
		}
		c.checkMaskedBitsRelevant(vi)
		c.checkVariableType(vi)
	}
}

// intersectMode intersects access capabilities; 0 means the empty mode.
func intersectMode(a, b ast.Access) ast.Access {
	canRead := a.CanRead() && b.CanRead()
	canWrite := a.CanWrite() && b.CanWrite()
	switch {
	case canRead && canWrite:
		return ast.ReadWrite
	case canRead:
		return ast.ReadOnly
	case canWrite:
		return ast.WriteOnly
	default:
		return 0
	}
}

// maskAt returns the mask character governing bit i (LSB = 0) of register r;
// '.' (relevant) when the register has no mask.
func maskAt(r *ast.Register, bit int) byte {
	if r.Mask == "" {
		return '.'
	}
	idx := len(r.Mask) - 1 - bit
	if idx < 0 || idx >= len(r.Mask) {
		return '.'
	}
	return r.Mask[idx]
}

// checkMaskedBitsRelevant rejects variables built from bits the register
// mask declares irrelevant or fixed.
func (c *checker) checkMaskedBitsRelevant(vi *VarInfo) {
	for _, fi := range vi.Fragments {
		for b := fi.Lo; b <= fi.Hi; b++ {
			if m := maskAt(fi.Reg, b); m != '.' {
				c.errorf(fi.Frag.RegPos, "type",
					"variable %s uses bit %d of register %s, which the mask marks %q",
					vi.Decl.Name, b, fi.Reg.Name, string(m))
			}
		}
	}
}

func (c *checker) checkVariableType(vi *VarInfo) {
	v := vi.Decl
	t := v.Type
	if t == nil {
		c.errorf(v.NamePos, "type", "variable %s has no type", v.Name)
		return
	}
	switch t.Kind {
	case ast.TypeBool:
		if vi.Width != 1 {
			c.errorf(t.TypePos, "size",
				"variable %s: bool requires 1 bit, fragments supply %d", v.Name, vi.Width)
		}
	case ast.TypeInt:
		if t.Bits != vi.Width {
			c.errorf(t.TypePos, "size",
				"variable %s: type %s does not match fragment width %d",
				v.Name, t, vi.Width)
		}
		if t.Bits <= 0 || t.Bits > 32 {
			c.errorf(t.TypePos, "size", "variable %s: invalid int width %d", v.Name, t.Bits)
		}
	case ast.TypeIntSet:
		if len(t.Set) == 0 {
			c.errorf(t.TypePos, "type", "variable %s: empty integer set", v.Name)
		}
		seen := make(map[int64]bool, len(t.Set))
		var maxVal int64
		if vi.Width < 63 {
			maxVal = (1 << uint(vi.Width)) - 1
		} else {
			maxVal = 1<<62 - 1
		}
		for _, val := range t.Set {
			if seen[val] {
				c.errorf(t.TypePos, "uniqueness",
					"variable %s: duplicate value %d in integer set", v.Name, val)
			}
			seen[val] = true
			if val < 0 || val > maxVal {
				c.errorf(t.TypePos, "size",
					"variable %s: set value %d not representable in %d bit(s)",
					v.Name, val, vi.Width)
			}
		}
	case ast.TypeEnum:
		c.checkEnumType(vi)
	}
	// Type direction vs variable mode: a readable mapping requires a
	// readable variable, and symmetrically for writing (§2.2 inter-layer).
	if t.Kind == ast.TypeEnum {
		for _, cs := range t.Cases {
			if (cs.Dir == token.MapFrom || cs.Dir == token.MapBoth) && !vi.Mode.CanRead() {
				c.errorf(cs.NamePos, "attribute",
					"variable %s: read mapping %s on a %s variable",
					v.Name, cs.Name, vi.Mode)
			}
			if (cs.Dir == token.MapTo || cs.Dir == token.MapBoth) && !vi.Mode.CanWrite() {
				c.errorf(cs.NamePos, "attribute",
					"variable %s: write mapping %s on a %s variable",
					v.Name, cs.Name, vi.Mode)
			}
		}
	}
}

// patternMatches reports whether a concrete value matches an enum bit
// pattern ('*' is a wildcard; width is the variable width).
func patternMatches(pattern string, value uint32, width int) bool {
	for i := 0; i < width; i++ {
		bit := (value >> uint(width-1-i)) & 1
		switch pattern[i] {
		case '0':
			if bit != 0 {
				return false
			}
		case '1':
			if bit != 1 {
				return false
			}
		case '*':
		default:
			return false
		}
	}
	return true
}

func (c *checker) checkEnumType(vi *VarInfo) {
	v := vi.Decl
	t := v.Type
	if len(t.Cases) == 0 {
		c.errorf(t.TypePos, "type", "variable %s: empty enumerated type", v.Name)
		return
	}
	names := make(map[string]bool, len(t.Cases))
	for _, cs := range t.Cases {
		if names[cs.Name] {
			c.errorf(cs.NamePos, "uniqueness",
				"variable %s: duplicate enum name %s", v.Name, cs.Name)
		}
		names[cs.Name] = true
		if cs.Pattern == "" {
			continue // parse error already reported
		}
		if len(cs.Pattern) != vi.Width {
			c.errorf(cs.PatPos, "size",
				"variable %s: enum pattern %q has %d bits, variable has %d",
				v.Name, cs.Pattern, len(cs.Pattern), vi.Width)
		}
		for i := 0; i < len(cs.Pattern); i++ {
			if ch := cs.Pattern[i]; ch != '0' && ch != '1' && ch != '*' {
				c.errorf(cs.PatPos, "type",
					"variable %s: enum pattern %q contains %q", v.Name, cs.Pattern, string(ch))
			}
		}
	}
	// Distinct write patterns must not be ambiguous... distinct read
	// patterns must not overlap (a value decodable as two names).
	if vi.Width <= 0 || vi.Width > 16 {
		return // coverage enumeration only for small variables
	}
	total := uint32(1) << uint(vi.Width)
	readCases := make([]*ast.EnumCase, 0, len(t.Cases))
	for _, cs := range t.Cases {
		if len(cs.Pattern) != vi.Width {
			return // size error already reported; coverage meaningless
		}
		if cs.Dir == token.MapFrom || cs.Dir == token.MapBoth {
			readCases = append(readCases, cs)
		}
	}
	for val := uint32(0); val < total; val++ {
		var matches []*ast.EnumCase
		for _, cs := range readCases {
			if patternMatches(cs.Pattern, val, vi.Width) {
				matches = append(matches, cs)
			}
		}
		if len(matches) > 1 {
			c.errorf(matches[1].PatPos, "uniqueness",
				"variable %s: value %d matches both %s and %s when read",
				v.Name, val, matches[0].Name, matches[1].Name)
		}
		// §2.2: "Read elements of a type mapping must be exhaustive."
		if len(readCases) > 0 && len(matches) == 0 && vi.Mode.CanRead() {
			c.errorf(t.TypePos, "no-omission",
				"variable %s: read mapping is not exhaustive (value %d unmapped)",
				v.Name, val)
			return // one diagnostic suffices
		}
	}
	// A readable enum variable must have at least one read mapping.
	if vi.Mode == ast.ReadOnly && len(readCases) == 0 {
		c.errorf(t.TypePos, "attribute",
			"variable %s is read-only but its type has no read mapping", v.Name)
	}
}

func (c *checker) checkPreActions() {
	for _, r := range c.dev.Registers() {
		for _, pa := range r.Pre {
			vi, ok := c.info.Variables[pa.Var]
			if !ok {
				c.errorf(pa.VarPos, "type",
					"register %s: pre-action sets unknown variable %s", r.Name, pa.Var)
				continue
			}
			if !vi.Mode.CanWrite() {
				c.errorf(pa.VarPos, "attribute",
					"register %s: pre-action sets unwritable variable %s", r.Name, pa.Var)
			}
			if vi.Width > 0 && vi.Width < 32 {
				if pa.Value < 0 || pa.Value >= int64(1)<<uint(vi.Width) {
					c.errorf(pa.VarPos, "size",
						"register %s: pre-action value %d not representable in %s (int(%d))",
						r.Name, pa.Value, pa.Var, vi.Width)
				}
			}
			// Pre-actions must not set a variable derived from the register
			// they guard (that would recurse).
			for _, fi := range vi.Fragments {
				if fi.Reg == r {
					c.errorf(pa.VarPos, "type",
						"register %s: pre-action variable %s is derived from %s itself",
						r.Name, pa.Var, r.Name)
				}
			}
		}
	}
}

// checkNoOmission enforces the §2.2 no-omission constraints.
func (c *checker) checkNoOmission() {
	// Every port parameter (and every offset of its range) must be used.
	type portUse struct{ used map[int64]bool }
	uses := make(map[string]*portUse, len(c.info.Params))
	for name := range c.info.Params {
		uses[name] = &portUse{used: make(map[int64]bool)}
	}
	for _, r := range c.dev.Registers() {
		for _, ref := range []*ast.PortRef{r.ReadPort, r.WritePort} {
			if ref == nil {
				continue
			}
			if u, ok := uses[ref.Name]; ok {
				u.used[ref.Offset] = true
			}
		}
	}
	for _, p := range c.dev.Params {
		u := uses[p.Name]
		if len(u.used) == 0 {
			c.errorf(p.NamePos, "no-omission",
				"port parameter %s is never used by a register", p.Name)
			continue
		}
		for off := p.RangeLo; off <= p.RangeHi; off++ {
			if !u.used[off] {
				c.errorf(p.NamePos, "no-omission",
					"offset %d of port %s is not used by any register", off, p.Name)
			}
		}
	}

	// Every register must contribute to a variable, and every relevant bit
	// of every register must be used by some variable.
	used := make(map[string][]bool, len(c.info.Registers))
	for name, r := range c.info.Registers {
		if r.Size > 0 && r.Size <= 32 {
			used[name] = make([]bool, r.Size)
		}
	}
	for _, name := range c.info.VarOrder {
		for _, fi := range c.info.Variables[name].Fragments {
			bits, ok := used[fi.Reg.Name]
			if !ok {
				continue
			}
			for b := fi.Lo; b <= fi.Hi && b < len(bits); b++ {
				bits[b] = true
			}
		}
	}
	for _, r := range c.dev.Registers() {
		bits, ok := used[r.Name]
		if !ok {
			continue
		}
		anyUsed := false
		for _, u := range bits {
			if u {
				anyUsed = true
				break
			}
		}
		if !anyUsed {
			c.errorf(r.NamePos, "no-omission",
				"register %s is not used by any variable", r.Name)
			continue
		}
		for b, u := range bits {
			if !u && maskAt(r, b) == '.' {
				c.errorf(r.NamePos, "no-omission",
					"bit %d of register %s is relevant but unused", b, r.Name)
			}
		}
	}
}

// preActionsDisjoint reports whether two registers are distinguished by
// their pre-actions: some shared pre-variable is set to different values.
func preActionsDisjoint(a, b *ast.Register) bool {
	for _, pa := range a.Pre {
		for _, pb := range b.Pre {
			if pa.Var == pb.Var && pa.Value != pb.Value {
				return true
			}
		}
	}
	return false
}

// masksDisjoint reports whether two registers of equal size have masks whose
// relevant bits do not intersect.
func masksDisjoint(a, b *ast.Register) bool {
	if a.Size != b.Size || a.Mask == "" || b.Mask == "" {
		return false
	}
	for bit := 0; bit < a.Size; bit++ {
		if maskAt(a, bit) == '.' && maskAt(b, bit) == '.' {
			return false
		}
	}
	return true
}

// checkNoOverlap enforces the §2.2 no-overlap constraints.
func (c *checker) checkNoOverlap() {
	regs := c.dev.Registers()
	// Port overlap, per direction.
	for dir := 0; dir < 2; dir++ {
		type claim struct {
			reg *ast.Register
			ref *ast.PortRef
		}
		claims := make(map[string][]claim)
		for _, r := range regs {
			var ref *ast.PortRef
			if dir == 0 && r.Mode.CanRead() {
				ref = r.ReadPort
			} else if dir == 1 && r.Mode.CanWrite() {
				ref = r.WritePort
			}
			if ref == nil {
				continue
			}
			key := fmt.Sprintf("%s@%d", ref.Name, ref.Offset)
			for _, prev := range claims[key] {
				if preActionsDisjoint(prev.reg, r) || masksDisjoint(prev.reg, r) {
					continue
				}
				dirName := "reading"
				if dir == 1 {
					dirName = "writing"
				}
				c.errorf(ref.NamePos, "no-overlap",
					"registers %s and %s both use port %s for %s without disjoint pre-actions or masks",
					prev.reg.Name, r.Name, key, dirName)
			}
			claims[key] = append(claims[key], claim{reg: r, ref: ref})
		}
	}

	// Variable bit overlap: no register bit in two different variables.
	type bitOwner struct {
		varName string
		pos     token.Pos
	}
	owners := make(map[string]map[int]bitOwner)
	for _, name := range c.info.VarOrder {
		for _, fi := range c.info.Variables[name].Fragments {
			m, ok := owners[fi.Reg.Name]
			if !ok {
				m = make(map[int]bitOwner)
				owners[fi.Reg.Name] = m
			}
			for b := fi.Lo; b <= fi.Hi; b++ {
				if prev, taken := m[b]; taken && prev.varName != name {
					c.errorf(fi.Frag.RegPos, "no-overlap",
						"bit %d of register %s used by both %s and %s",
						b, fi.Reg.Name, prev.varName, name)
				} else {
					m[b] = bitOwner{varName: name, pos: fi.Frag.RegPos}
				}
			}
		}
	}
}
