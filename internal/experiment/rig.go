package experiment

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/cdriver/ccov"
	"repro/internal/cdriver/cinterp"
	"repro/internal/devil"
	"repro/internal/devil/codegen"
	"repro/internal/hw"
	"repro/internal/hw/sysboard"
	"repro/internal/kernel"
	"repro/internal/specs"
)

// This file is the workload registry and the generic boot rig. A
// workload — one driver pair booting against one simulated device — is
// declared as a WorkloadDesc: which drivers route to it, which Devil
// specification its stubs compile from, how its devices assemble on the
// bus, how they rewind between boots, and the boot script that drives
// the driver through its kernel duty and audits the result. Everything
// else — machine assembly, per-worker caches, both execution backends,
// both front ends, campaign routing, table rendering — is shared: adding
// a device family to the evaluation is a registry entry, a driver pair
// and (if the device is new) a hardware model, never a fourth copy of
// the boot loop.

// specFor returns (compiling on first use) the named embedded Devil
// specification. The cache is shared by every workload: specifications
// are not mutated by the driver experiments, so one compiled Spec serves
// all rigs, stub modes and workers.
func specFor(name string) (*devil.Spec, error) {
	specCache.mu.Lock()
	defer specCache.mu.Unlock()
	if s, ok := specCache.specs[name]; ok {
		return s, nil
	}
	src, err := specs.Load(name)
	if err != nil {
		return nil, err
	}
	spec, err := devil.Compile(src.Filename, src.Source)
	if err != nil {
		return nil, fmt.Errorf("compile spec %s: %w", name, err)
	}
	if specCache.specs == nil {
		specCache.specs = make(map[string]*devil.Spec)
	}
	specCache.specs[name] = spec
	return spec, nil
}

var specCache struct {
	mu    sync.Mutex
	specs map[string]*devil.Spec
}

// Engine is the surface a boot script drives; both backends satisfy it
// (cinterp.Interp and ccompile.Proc).
type Engine interface {
	Call(name string, args ...cinterp.Value) (cinterp.Value, error)
	Coverage() *ccov.Set
}

// WorkloadDesc declares one registered workload: a driver pair, its
// specification, and the three hooks (Build, Reset, Run) that are the
// only per-device code in the evaluation.
type WorkloadDesc struct {
	// Name is the workload's short name ("ide", "busmouse", ...). It keys
	// rig reuse in campaign workers and names the workload in CLI help.
	Name string
	// Drivers lists the embedded driver sources routed to this workload,
	// conventionally the Name+"_c" / Name+"_devil" pair.
	Drivers []string
	// Spec names the embedded Devil specification the pair's CDevil
	// driver compiles against ("" for a workload without one; such a
	// workload can only boot plain-C drivers).
	Spec string
	// Bases assigns a bus base address to each of the specification's
	// port parameters; stub generation binds them on the rig's bus.
	Bases map[string]hw.Port
	// Build assembles the workload's devices on the rig's bus (the
	// system board is already mapped) and returns the device handle
	// Reset and Run receive through the rig.
	Build func(r *Rig) (dev any, err error)
	// Reset returns Build's devices to their power-on state; the rig
	// resets the kernel itself. Nil for stateless devices.
	Reset func(dev any)
	// Run is the boot script: drive the compiled driver through its
	// kernel duty and audit the result against ground truth the driver
	// never sees. It returns the terminating error (nil for a completed
	// boot) and whether the completed boot left visible damage.
	Run func(r *Rig, ex Engine, res *BootResult) (error, bool)
	// Snapshot and Restore are the pristine-prefix snapshot hooks.
	// Snapshot copies the device state Build returned into the pooled
	// snapshot handle (allocating it when snap is nil) and returns the
	// handle; Restore copies a captured handle back onto the devices.
	// Both nil opts the workload out of snapshotting — its campaign
	// boots then always run the full prefix (counted as fallbacks).
	Snapshot func(dev, snap any) any
	// Restore is Snapshot's inverse; see Snapshot.
	Restore func(dev, snap any)
}

// Interface builds the stub interface enumeration needs for the
// workload's CDevil driver (the identifier-mutation pools): stubs
// generated against a throwaway bus, since only the name surface is
// consulted.
func (d *WorkloadDesc) Interface() (*codegen.Interface, error) {
	if d.Spec == "" {
		return nil, fmt.Errorf("workload %s has no Devil specification", d.Name)
	}
	spec, err := specFor(d.Spec)
	if err != nil {
		return nil, err
	}
	stubs, err := spec.Generate(devil.Config{
		Bus:   hw.NewBus(),
		Bases: d.Bases,
		Mode:  codegen.Debug,
	})
	if err != nil {
		return nil, err
	}
	return stubs.Interface(), nil
}

// NewRig assembles one rig for this workload: clock, floating ISA bus
// with the fragile system-board devices mapped, kernel, the workload's
// devices, and the per-worker compilation caches.
func (d *WorkloadDesc) NewRig() (*Rig, error) {
	clock := &hw.Clock{}
	bus := hw.NewBus()
	// ISA semantics: unmapped ports float, and the fragile system devices
	// (PIC, timer, DMA, CMOS) share the port space — see hw/sysboard.
	bus.SetFloating(true)
	if err := sysboard.MapAll(bus); err != nil {
		return nil, err
	}
	r := &Rig{
		Clock:  clock,
		Bus:    bus,
		Kern:   kernel.New(clock),
		Desc:   d,
		caches: newExecCaches(),
	}
	dev, err := d.Build(r)
	if err != nil {
		return nil, err
	}
	r.Dev = dev
	return r, nil
}

// registry holds the registered workloads in registration order. The
// built-in workloads register from a single init below, so the order —
// which numbers the extension tables in cmd/driverlab — is explicit
// rather than file-name-dependent.
var registry = struct {
	mu       sync.RWMutex
	order    []*WorkloadDesc
	byName   map[string]*WorkloadDesc
	byDriver map[string]*WorkloadDesc
	// initErr records the first builtin registration failure. A bad
	// builtin descriptor must not panic the process at import time (the
	// campaign engine is built to survive per-boot faults, not init
	// crashes): every lookup surfaces the error instead, so a campaign
	// over a broken registry fails cleanly with the root cause.
	initErr error
}{
	byName:   make(map[string]*WorkloadDesc),
	byDriver: make(map[string]*WorkloadDesc),
}

// RegisterWorkload adds a workload to the registry. It rejects
// descriptors missing a name, drivers, Build or Run hook, and names or
// drivers already claimed — each driver routes to exactly one workload.
func RegisterWorkload(d WorkloadDesc) error {
	if d.Name == "" {
		return fmt.Errorf("register workload: empty name")
	}
	if len(d.Drivers) == 0 {
		return fmt.Errorf("register workload %s: no drivers", d.Name)
	}
	if d.Build == nil || d.Run == nil {
		return fmt.Errorf("register workload %s: Build and Run hooks are required", d.Name)
	}
	registry.mu.Lock()
	defer registry.mu.Unlock()
	// Names and drivers share NewRig's lookup space, so collisions are
	// rejected across both namespaces: a driver may not shadow another
	// workload's name, nor a name another workload's driver.
	if _, ok := registry.byName[d.Name]; ok {
		return fmt.Errorf("register workload %s: name already registered", d.Name)
	}
	if prev, ok := registry.byDriver[d.Name]; ok {
		return fmt.Errorf("register workload %s: name collides with a driver of %s",
			d.Name, prev.Name)
	}
	for _, drv := range d.Drivers {
		if prev, ok := registry.byDriver[drv]; ok {
			return fmt.Errorf("register workload %s: driver %s already routed to %s",
				d.Name, drv, prev.Name)
		}
		if prev, ok := registry.byName[drv]; ok {
			return fmt.Errorf("register workload %s: driver %s collides with workload name %s",
				d.Name, drv, prev.Name)
		}
	}
	desc := d
	registry.byName[d.Name] = &desc
	for _, drv := range d.Drivers {
		registry.byDriver[drv] = &desc
	}
	registry.order = append(registry.order, &desc)
	return nil
}

// registerBuiltin registers one builtin workload, recording (rather
// than panicking on) a bad descriptor; registryErr surfaces the failure
// from every lookup.
func registerBuiltin(d WorkloadDesc) {
	if err := RegisterWorkload(d); err != nil {
		registry.mu.Lock()
		if registry.initErr == nil {
			registry.initErr = fmt.Errorf("builtin workload registry: %w", err)
		}
		registry.mu.Unlock()
	}
}

// registryErr returns the recorded builtin-registration failure, if any.
// Callers must not hold the registry lock.
func registryErr() error {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	return registry.initErr
}

// unregisterWorkload removes a workload and its driver routes from the
// registry. Registration is meant to be init-time and permanent; this
// exists so tests that register synthetic workloads can clean up after
// themselves (t.Cleanup), keeping repeated in-process runs independent.
func unregisterWorkload(name string) {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	d, ok := registry.byName[name]
	if !ok {
		return
	}
	delete(registry.byName, name)
	for _, drv := range d.Drivers {
		delete(registry.byDriver, drv)
	}
	for i, o := range registry.order {
		if o == d {
			registry.order = append(registry.order[:i], registry.order[i+1:]...)
			break
		}
	}
}

func init() {
	// Registration order is presentation order: the paper's IDE pair
	// first, then the extension pairs in the order they joined the
	// evaluation (driverlab numbers its extension tables from it).
	for _, d := range []WorkloadDesc{
		ideWorkload,
		mouseWorkload,
		netWorkload,
		gfxWorkload,
		dmaWorkload,
	} {
		registerBuiltin(d)
	}
}

// WorkloadFor routes a driver name to its registered workload.
func WorkloadFor(driver string) (*WorkloadDesc, error) {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	if registry.initErr != nil {
		return nil, registry.initErr
	}
	if d, ok := registry.byDriver[driver]; ok {
		return d, nil
	}
	var known []string
	for drv := range registry.byDriver {
		known = append(known, drv)
	}
	sort.Strings(known)
	return nil, fmt.Errorf("no workload registered for driver %q (known: %v)", driver, known)
}

// Workloads returns the registered workloads in registration order.
func Workloads() []*WorkloadDesc {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	out := make([]*WorkloadDesc, len(registry.order))
	copy(out, registry.order)
	return out
}

// Rig is one assembled simulated PC booting one workload: clock, bus
// (system board plus the workload's devices), kernel, the workload's
// device handle, and the per-worker caches of the campaign hot path —
// generated stubs (reset, not regenerated, between boots), type
// environments, the compiled backend's pooled execution buffers and the
// incremental front end's pristine pipelines. A campaign worker builds
// one rig per workload and Resets it between boots.
type Rig struct {
	Clock *hw.Clock
	Bus   *hw.Bus
	Kern  *kernel.Kernel
	// Desc is the workload this rig was assembled for.
	Desc *WorkloadDesc
	// Dev is the device handle Desc.Build returned; Desc.Run and the
	// workload's tests type-assert it back.
	Dev any
	// Injector is the fault injector a scenario's Build wrapper armed on
	// the bus (nil on pristine rigs). Boot reseeds it per task so fault
	// patterns are a function of the task, not of boot order.
	Injector *hw.Injector
	// Scenario is the scenario name this rig was transformed under (""
	// for a pristine rig).
	Scenario string
	// DisableSnapshot turns pristine-prefix snapshotting off for this
	// rig (the campaign spec's snapshot=off knob and the determinism
	// suite's A/B legs). The default is on; per-boot safety gates still
	// decide restore versus full prefix for every mutant.
	DisableSnapshot bool

	caches execCaches
	// snap is the captured pristine-prefix snapshot (see snapshot.go).
	snap rigSnap
}

// NewRig builds a rig for the named driver (or, if no driver matches,
// the named workload).
func NewRig(name string) (*Rig, error) {
	registry.mu.RLock()
	initErr := registry.initErr
	d, ok := registry.byDriver[name]
	if !ok {
		d = registry.byName[name]
	}
	registry.mu.RUnlock()
	if initErr != nil {
		return nil, initErr
	}
	if d == nil {
		return nil, fmt.Errorf("no workload registered for %q", name)
	}
	return d.NewRig()
}

// Reset returns the rig to its power-on state: the workload's devices
// through the descriptor hook, then the kernel (console, watchdog,
// transfer buffer). A campaign worker calls it between boots so the
// simulated PC is built once per worker instead of once per mutant.
func (r *Rig) Reset() {
	if r.Desc.Reset != nil {
		r.Desc.Reset(r.Dev)
	}
	r.Kern.Reset()
}

// Stubs generates the workload's Devil stubs bound to the rig's bus.
func (r *Rig) Stubs(mode codegen.Mode) (*codegen.Stubs, error) {
	if r.Desc.Spec == "" {
		return nil, fmt.Errorf("workload %s has no Devil specification", r.Desc.Name)
	}
	spec, err := specFor(r.Desc.Spec)
	if err != nil {
		return nil, err
	}
	return spec.Generate(devil.Config{Bus: r.Bus, Bases: r.Desc.Bases, Mode: mode})
}

// Boot compiles and boots one driver build on the rig, which must be
// freshly built or Reset.
func (r *Rig) Boot(input BootInput) (*BootResult, error) {
	// Scenario plumbing: rewind the fault injector to this task's seed —
	// never global randomness, so the fault pattern a mutant meets is
	// identical in serial, sharded and resumed runs on either backend —
	// and arm the wall-clock safety net behind the step watchdog.
	if r.Injector != nil {
		r.Injector.Reseed(input.FaultSeed)
	}
	if input.WallBudget > 0 {
		r.Kern.SetDeadline(input.WallBudget)
	}
	// Phase 1: "compilation" — parse plus type check, against the rig's
	// per-worker caches. Only the mutated token stream (or, with the
	// incremental front end, the one mutated declaration) is per-mutant
	// work. The incremental path may also serve the boot's prefix from
	// the rig's pristine snapshot instead of re-running Init.
	ex, res, err := r.caches.buildEngine(r, input)
	if err != nil {
		return nil, err
	}
	if ex == nil {
		return res, nil
	}
	// Phase 2: the workload's boot script drives the driver and audits
	// the result; the classification below is shared by every workload.
	o := r.caches.obs
	te := o.execute.Start()
	runErr, damaged := r.Desc.Run(r, ex, res)
	te.Stop()
	tc := o.classify.Start()
	res.Console = r.Kern.ConsoleView()
	res.Coverage = ex.Coverage()
	res.Steps = r.Kern.Steps()
	res.RunErr = runErr
	res.Outcome = kernel.Classify(runErr)
	if runErr == nil && damaged {
		res.Outcome = kernel.OutcomeDamagedBoot
	}
	tc.Stop()
	return res, nil
}

// BootOn compiles and boots one driver build on r. It is the generic
// boot entry point campaign workers use to amortise machine
// construction — and, with the compiled backend, stub generation, type
// environments and execution buffers — across boots.
func BootOn(r *Rig, input BootInput) (*BootResult, error) {
	return r.Boot(input)
}

// BootDriver compiles and boots one driver build on a freshly built rig
// of the driver's workload.
func BootDriver(driver string, input BootInput) (*BootResult, error) {
	r, err := NewRig(driver)
	if err != nil {
		return nil, err
	}
	return r.Boot(input)
}

// rigSet pools one reused rig per (workload, scenario) cell: rigFor
// builds a cell's rig on first use — applying the scenario's descriptor
// transform — and Resets it on every later one: the per-worker reuse
// pattern campaign workers and the differential oracle share.
type rigSet map[string]*Rig

func (s rigSet) rigFor(driver, scenario string) (*Rig, error) {
	desc, err := WorkloadFor(driver)
	if err != nil {
		return nil, err
	}
	key := desc.Name + "@" + scenario
	if r, ok := s[key]; ok {
		r.Reset()
		return r, nil
	}
	d := *desc
	if scenario != "" {
		d, err = ApplyScenario(scenario, d)
		if err != nil {
			return nil, err
		}
	}
	r, err := d.NewRig()
	if err != nil {
		return nil, err
	}
	r.Scenario = scenario
	s[key] = r
	return r, nil
}
