package campaign

import (
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
)

// Metric family names the campaign engine registers. Every name listed
// here must appear in ARCHITECTURE.md's Observability section —
// scripts/check_docs.sh enforces that via `driverlab metrics`.
const (
	// MetricBoots counts boots actually executed, per driver.
	MetricBoots = "driverlab_campaign_boots_total"
	// MetricOutcomes histograms recorded results by outcome row, per
	// driver — booted, deduped and resume-skipped results all count,
	// so the totals match the store.
	MetricOutcomes = "driverlab_campaign_outcomes_total"
	// MetricDedup counts results recorded from a representative's
	// outcome instead of booting, per driver.
	MetricDedup = "driverlab_campaign_dedup_hits_total"
	// MetricSkipped counts results the store already held (resume),
	// per driver.
	MetricSkipped = "driverlab_campaign_skipped_total"
	// MetricWorkerBoots counts boots per pool goroutine — the
	// per-worker throughput surface.
	MetricWorkerBoots = "driverlab_campaign_worker_boots_total"
	// MetricSteps histograms the watchdog step count each boot
	// consumed, per driver.
	MetricSteps = "driverlab_campaign_boot_steps"
	// MetricAppend histograms store.Append latency in seconds.
	MetricAppend = "driverlab_campaign_store_append_seconds"
	// MetricFlush histograms store checkpoint-flush latency in seconds.
	MetricFlush = "driverlab_campaign_store_flush_seconds"
	// MetricPanics counts boots the harness panicked on (recovered,
	// recorded as RowHarnessPanic and quarantined), per cell.
	MetricPanics = "driverlab_campaign_harness_panics_total"
	// MetricStoreRetries counts store appends that needed a backoff
	// retry after a transient failure.
	MetricStoreRetries = "driverlab_campaign_store_retries_total"
)

// MetricNames lists every metric family the campaign engine can
// register, for the docs check and the `driverlab metrics` subcommand.
func MetricNames() []string {
	return []string{
		MetricBoots, MetricOutcomes, MetricDedup, MetricSkipped,
		MetricWorkerBoots, MetricSteps, MetricAppend, MetricFlush,
		MetricPanics, MetricStoreRetries,
	}
}

// Metrics is the engine's instrumentation bundle: per-driver counters
// and histograms resolved lazily against one obs.Collector. A nil
// *Metrics is the disabled bundle — every method is a no-op — so the
// engine threads it unconditionally.
type Metrics struct {
	col     *obs.Collector
	appendH *obs.Histogram
	flushH  *obs.Histogram
	retries *obs.Counter

	mu      sync.Mutex
	drivers map[string]*driverMetrics
	workers map[int]*obs.Counter
}

type driverMetrics struct {
	boots   *obs.Counter
	dedups  *obs.Counter
	skipped *obs.Counter
	panics  *obs.Counter
	steps   *obs.Histogram

	mu       sync.Mutex
	outcomes map[string]*obs.Counter
}

// NewMetrics builds the engine's metric bundle on col. A nil collector
// yields a nil (disabled) bundle.
func NewMetrics(col *obs.Collector) *Metrics {
	if col == nil {
		return nil
	}
	return &Metrics{
		col: col,
		appendH: col.Histogram(MetricAppend,
			"Latency of one campaign store append.", obs.DurationBuckets),
		flushH: col.Histogram(MetricFlush,
			"Latency of one campaign store checkpoint flush.", obs.DurationBuckets),
		retries: col.Counter(MetricStoreRetries,
			"Store appends retried after a transient failure."),
		drivers: make(map[string]*driverMetrics),
		workers: make(map[int]*obs.Counter),
	}
}

// Collector returns the underlying collector (nil when disabled).
func (m *Metrics) Collector() *obs.Collector {
	if m == nil {
		return nil
	}
	return m.col
}

// ObserveFlush records one store checkpoint-flush duration; FileStore
// calls it through SetFlushHook.
func (m *Metrics) ObserveFlush(d time.Duration) {
	if m == nil {
		return
	}
	m.flushH.Observe(d.Seconds())
}

func (m *Metrics) driver(name string) *driverMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	d, ok := m.drivers[name]
	if !ok {
		d = &driverMetrics{
			boots: m.col.Counter(MetricBoots,
				"Boots executed, per driver.", "driver", name),
			dedups: m.col.Counter(MetricDedup,
				"Results recorded from an identical mutant's outcome instead of booting.",
				"driver", name),
			skipped: m.col.Counter(MetricSkipped,
				"Results the store already held on resume.", "driver", name),
			panics: m.col.Counter(MetricPanics,
				"Boots the harness panicked on (recovered and quarantined).",
				"driver", name),
			steps: m.col.Histogram(MetricSteps,
				"Watchdog steps one boot consumed.", obs.StepBuckets, "driver", name),
			outcomes: make(map[string]*obs.Counter),
		}
		m.drivers[name] = d
	}
	return d
}

// boot records one executed boot and its outcome.
func (m *Metrics) boot(driver, row string, steps int64) {
	if m == nil {
		return
	}
	d := m.driver(driver)
	d.boots.Inc()
	d.steps.Observe(float64(steps))
	m.outcomeCounter(d, driver, row).Inc()
}

// dedup records one result copied from a representative's outcome.
func (m *Metrics) dedup(driver, row string) {
	if m == nil {
		return
	}
	d := m.driver(driver)
	d.dedups.Inc()
	m.outcomeCounter(d, driver, row).Inc()
}

// panicked records one recovered harness panic; the quarantined result
// also lands in the outcome histogram under RowHarnessPanic.
func (m *Metrics) panicked(driver string) {
	if m == nil {
		return
	}
	d := m.driver(driver)
	d.panics.Inc()
	m.outcomeCounter(d, driver, RowHarnessPanic).Inc()
}

// retry records one store append that needed a backoff retry.
func (m *Metrics) retry() {
	if m == nil {
		return
	}
	m.retries.Inc()
}

// skip records one result the store already held.
func (m *Metrics) skip(driver, row string) {
	if m == nil {
		return
	}
	d := m.driver(driver)
	d.skipped.Inc()
	m.outcomeCounter(d, driver, row).Inc()
}

func (m *Metrics) outcomeCounter(d *driverMetrics, driver, row string) *obs.Counter {
	d.mu.Lock()
	defer d.mu.Unlock()
	c, ok := d.outcomes[row]
	if !ok {
		c = m.col.Counter(MetricOutcomes,
			"Recorded results by outcome row (booted, deduped and resumed alike).",
			"driver", driver, "row", row)
		d.outcomes[row] = c
	}
	return c
}

// worker returns the boots counter for pool goroutine i (nil when the
// bundle is disabled — obs.Counter methods are nil-safe).
func (m *Metrics) worker(i int) *obs.Counter {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.workers[i]
	if !ok {
		c = m.col.Counter(MetricWorkerBoots,
			"Boots executed, per pool goroutine.", "worker", strconv.Itoa(i))
		m.workers[i] = c
	}
	return c
}
