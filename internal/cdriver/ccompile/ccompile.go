// Package ccompile is the compiled hwC execution backend: a one-pass
// compiler from the checked AST to closure form, built for the campaign
// hot path where tens of thousands of mutants boot per run.
//
// The tree-walking interpreter (cinterp) resolves every name through
// string-keyed map scope chains, scans the program's function list on
// every call, and records coverage in a hash map — per-statement costs
// that dominate a mutant boot. The compiler pays those costs once, at
// compile time:
//
//   - variables resolve to integer slot indices into a flat frame array,
//     sliced from one preallocated value stack (no per-call or per-block
//     map allocation);
//   - calls resolve to direct *cfunc references (driver functions),
//     baked builtin closures, or pre-resolved Devil stub accessors (no
//     per-call string prefix matching);
//   - macros inline at their use sites, keeping the interpreter's
//     depth-guard semantics;
//   - coverage is a dense ccov bitset, pooled (like the value stack and
//     argument buffers) in a Mach that one campaign worker reuses across
//     every boot.
//
// cinterp remains the reference oracle: the compiled closures replicate
// its observable semantics exactly — evaluation order, coverage points,
// watchdog step charging, truncation, and error construction — and the
// experiment suite's differential test boots every mutant on both
// backends and requires identical results. Program shapes the compiler
// cannot prove it executes identically (today: a macro expansion cycle,
// creatable only by exotic mutants) are rejected with ErrUnsupported so
// the caller can fall back to the interpreter.
package ccompile

import (
	"errors"
	"fmt"
	"iter"

	"repro/internal/cdriver/cast"
	"repro/internal/cdriver/ccov"
	"repro/internal/cdriver/cinterp"
	"repro/internal/devil/codegen"
	"repro/internal/hw"
	"repro/internal/kernel"
)

// Value is the shared runtime value representation of both backends.
type Value = cinterp.Value

// ErrUnsupported marks a program shape the compiler cannot prove it
// executes identically to the interpreter; callers fall back to cinterp.
var ErrUnsupported = errors.New("program shape not supported by the compiled backend")

// maxCallDepth mirrors the interpreter's recursion bound.
const maxCallDepth = 64

var voidValue = cinterp.VoidValue

func intValue(x int64) Value { return cinterp.IntValue(x) }

// flow is the control-flow signal of statement execution.
type flow int

const (
	flowNormal flow = iota
	flowBreak
	flowContinue
	flowReturn
)

// state is the mutable execution state of one boot: the machine bindings
// plus the pooled buffers borrowed from a Mach.
type state struct {
	kern    *kernel.Kernel
	bus     *hw.Bus
	stubs   *codegen.Stubs
	globals []Value
	stack   []Value
	sp      int
	depth   int
	cov     *ccov.Set
	argPool *[][]Value
	// declsReady is the number of top-level declarations whose run-time
	// registration has happened; during global initialisation it trails
	// the declaration being initialised, reproducing the interpreter's
	// incremental global/macro visibility at insmod time.
	declsReady int
}

// exprFn evaluates one compiled expression.
type exprFn func(st *state, fr []Value) (Value, error)

// stmtFn executes one compiled statement.
type stmtFn func(st *state, fr []Value) (flow, Value, error)

// cfunc is one compiled driver function.
type cfunc struct {
	name   string
	nslots int
	params []cast.CType
	result cast.CType
	body   []stmtFn
}

// Mach holds the execution buffers one campaign worker reuses across
// boots: the value stack frames are sliced from, the coverage bitset and
// the call-argument freelist. A nil Mach in Compile allocates a private
// one; sharing a Mach between concurrently running Procs is not safe.
type Mach struct {
	stack   []Value
	argFree [][]Value
	cov     ccov.Set
}

// NewMach returns an empty buffer pool.
func NewMach() *Mach { return &Mach{} }

// Proc is one compiled, machine-bound driver program.
type Proc struct {
	st      state
	byName  map[string]*cfunc
	inits   []initStep
	inited  bool
	maxDecl int
	stats   BlockStats
}

// Stats reports what the block-fusion pass produced for this program
// (zero-valued under plain Compile except the I/O-site counters).
func (p *Proc) Stats() BlockStats { return p.stats }

// initStep is one global-variable initialisation.
type initStep struct {
	declOrd int
	slot    int
	typ     cast.CType
	def     Value
	init    exprFn // nil when the declaration has no initialiser
}

// BlockStats counts what the block-fusion pass produced during one
// compilation (or one incremental Patch): how many basic blocks were
// emitted, how many statements were fused into them, how many port-I/O
// sites compiled to the batched single-resolution path, and how many
// fell back to the generic per-access bus lookup. The experiment layer
// surfaces these as the driverlab_exec_blocks_* metric family.
type BlockStats struct {
	// Blocks is the number of fused basic blocks emitted (maximal runs
	// of simple statements charging one watchdog step at entry).
	Blocks int64
	// FusedStmts is the number of statements inside those blocks.
	FusedStmts int64
	// BatchedIO is the number of port-I/O sites compiled to a cached
	// single-resolution bus handle.
	BatchedIO int64
	// FallbackIO is the number of port-I/O sites left on the generic
	// per-access bus lookup (wrong arity or no bus bound at compile
	// time).
	FallbackIO int64
	// Superblocks is the number of while/for loops compiled to loop
	// superblocks: the whole loop runs inside one closure with a
	// specialized bool predicate and lean error-only statement cores,
	// charging the watchdog in per-iteration batches.
	Superblocks int64
	// SuperStmts is the number of body statements inside those
	// superblocks (the post statement of a for loop counts too).
	SuperStmts int64
}

// add accumulates another compilation's counts.
func (s *BlockStats) add(o BlockStats) {
	s.Blocks += o.Blocks
	s.FusedStmts += o.FusedStmts
	s.BatchedIO += o.BatchedIO
	s.FallbackIO += o.FallbackIO
	s.Superblocks += o.Superblocks
	s.SuperStmts += o.SuperStmts
}

// sub returns the counts accumulated since an earlier snapshot.
func (s BlockStats) sub(o BlockStats) BlockStats {
	return BlockStats{
		Blocks:      s.Blocks - o.Blocks,
		FusedStmts:  s.FusedStmts - o.FusedStmts,
		BatchedIO:   s.BatchedIO - o.BatchedIO,
		FallbackIO:  s.FallbackIO - o.FallbackIO,
		Superblocks: s.Superblocks - o.Superblocks,
		SuperStmts:  s.SuperStmts - o.SuperStmts,
	}
}

// Compile lowers a checked program to closure form bound to a concrete
// machine (kernel, bus, and — for CDevil drivers — generated stubs). The
// returned Proc is not yet initialised: Init runs the global
// initialisers, whose faults are insmod-time boot outcomes, not compile
// errors. Compile itself fails only with ErrUnsupported.
//
// Compile emits one closure per statement — the "compiled" backend.
// CompileBlocks additionally fuses straight-line statement runs into
// basic-block closures — the "block" backend, the campaign default.
// Both charge the watchdog per basic block (see cinterp.SimpleStmt for
// the shared fusion rule), so step counts are identical across every
// backend.
func Compile(prog *cast.Program, kern *kernel.Kernel, bus *hw.Bus,
	stubs *codegen.Stubs, m *Mach) (*Proc, error) {
	return compile(prog, kern, bus, stubs, m, false)
}

// CompileBlocks is Compile with the block-fusion pass enabled: maximal
// runs of simple statements compile to single basic-block closures
// (same one-charge-per-block watchdog accounting, fewer closure
// dispatches), and port-I/O sites batch consecutive accesses to the
// same device through one cached hw.Bus resolution.
func CompileBlocks(prog *cast.Program, kern *kernel.Kernel, bus *hw.Bus,
	stubs *codegen.Stubs, m *Mach) (*Proc, error) {
	return compile(prog, kern, bus, stubs, m, true)
}

func compile(prog *cast.Program, kern *kernel.Kernel, bus *hw.Bus,
	stubs *codegen.Stubs, m *Mach, fuse bool) (*Proc, error) {
	c := newCompiler(prog, stubs)
	c.fuse = fuse
	c.bus = bus
	c.registerDecls()
	inits := c.compileInits(nil)
	c.compileFuncs(nil)
	if c.err != nil {
		return nil, c.err
	}
	if m == nil {
		m = NewMach()
	}
	c.sizeMach(m)
	return c.newProc(kern, bus, stubs, m, inits), nil
}

// newCompiler builds an empty compiler over a checked program.
func newCompiler(prog *cast.Program, stubs *codegen.Stubs) *compiler {
	c := &compiler{
		prog:      prog,
		stubs:     stubs,
		varSigs:   make(map[string]codegen.VarSig),
		funcIdx:   make(map[string]int),
		globalIdx: make(map[string]globalRef),
		macros:    make(map[string]macroRef),
		domLine:   -1,
	}
	if stubs != nil {
		for _, sig := range stubs.Interface().Vars {
			c.varSigs[sig.Name] = sig
		}
	}
	return c
}

// registerDecls is pass 1: register every top-level declaration with its
// order, so function bodies compile against the full global surface
// while the declsReady guard reproduces insmod-time visibility.
func (c *compiler) registerDecls() {
	for ord, d := range c.prog.Decls {
		switch d := d.(type) {
		case *cast.MacroDecl:
			if _, dup := c.macros[d.Name]; !dup {
				c.macros[d.Name] = macroRef{ord: ord, decl: d}
			}
		case *cast.VarDecl:
			if _, dup := c.globalIdx[d.Name]; !dup {
				c.globalIdx[d.Name] = globalRef{ord: ord, slot: len(c.globalTypes), typ: d.Type}
				c.globalTypes = append(c.globalTypes, d.Type)
			}
		case *cast.FuncDecl:
			if _, dup := c.funcIdx[d.Name]; !dup {
				c.funcIdx[d.Name] = len(c.funcs)
				c.funcs = append(c.funcs, &cfunc{name: d.Name, result: d.Result})
				c.funcDecls = append(c.funcDecls, d)
			}
		}
	}
}

// compileInits is the first half of pass 2: compile every global
// initialiser (run later by Init). onUnit, when non-nil, is invoked with
// each step's index before its expression compiles — the incremental
// compiler's dependency-recording hook.
func (c *compiler) compileInits(onUnit func(initIdx int)) []initStep {
	var inits []initStep
	for ord, d := range c.prog.Decls {
		if vd, ok := d.(*cast.VarDecl); ok {
			ref := c.globalIdx[vd.Name]
			if ref.ord != ord {
				continue // duplicate declaration: unreachable post-check
			}
			if onUnit != nil {
				onUnit(len(inits))
			}
			step := initStep{declOrd: ord, slot: ref.slot, typ: vd.Type, def: defaultValue(vd.Type)}
			if vd.Init != nil {
				step.init = c.expr(vd.Init)
			}
			inits = append(inits, step)
		}
	}
	return inits
}

// compileFuncs is the second half of pass 2: compile every function
// body. onUnit mirrors compileInits.
func (c *compiler) compileFuncs(onUnit func(funcIdx int)) {
	for i, fd := range c.funcDecls {
		if onUnit != nil {
			onUnit(i)
		}
		c.compileFunc(c.funcs[i], fd)
	}
}

// sizeMach grows the pooled execution buffers to the compiled program's
// needs and rewinds the coverage bitset for the coming boot.
func (c *compiler) sizeMach(m *Mach) {
	need := maxCallDepth * c.maxSlots
	if cap(m.stack) < need {
		m.stack = make([]Value, need)
	}
	m.cov.Reset()
	m.cov.Grow(c.maxLine)
}

// newProc assembles the machine-bound Proc for a fully compiled program.
func (c *compiler) newProc(kern *kernel.Kernel, bus *hw.Bus, stubs *codegen.Stubs,
	m *Mach, inits []initStep) *Proc {
	p := &Proc{
		st: state{
			kern:    kern,
			bus:     bus,
			stubs:   stubs,
			globals: make([]Value, len(c.globalTypes)),
			stack:   m.stack[:cap(m.stack)],
			cov:     &m.cov,
			argPool: &m.argFree,
		},
		byName:  make(map[string]*cfunc, len(c.funcs)),
		inits:   inits,
		maxDecl: len(c.prog.Decls),
	}
	for _, f := range c.funcs {
		p.byName[f.name] = f
	}
	p.stats = c.stats
	return p
}

// defaultValue is the interpreter's zero value for a declared type.
func defaultValue(t cast.CType) Value {
	if t.Kind == cast.TypeDevilStruct {
		return Value{Kind: cinterp.ValDevil}
	}
	return intValue(0)
}

// Init runs the global initialisers in declaration order, exactly as the
// interpreter does while being constructed. An error is an insmod-time
// machine fault and classifies like any other boot-terminating error.
func (p *Proc) Init() error {
	p.inited = true
	st := &p.st
	for _, step := range p.inits {
		st.declsReady = step.declOrd
		v := step.def
		if step.init != nil {
			iv, err := step.init(st, nil)
			if err != nil {
				return err
			}
			v = cinterp.Truncate(step.typ, iv)
		}
		st.globals[step.slot] = v
	}
	st.declsReady = p.maxDecl
	return nil
}

// InitSnapshot is a Proc's saved post-Init value state: the global
// variable slots, the coverage bitset and the declaration-visibility
// watermark at the moment Init returned. The zero value is an empty
// snapshot whose buffers are grown on first capture and reused by every
// later one (copy-in-place, like kernel.Snapshot).
type InitSnapshot struct {
	globals    []Value
	cov        ccov.Set
	declsReady int
}

// SnapshotInit captures p's post-Init value state into s. It is only
// meaningful after a successful Init and before the boot script runs —
// the pristine-prefix snapshot point of the campaign engine.
func (p *Proc) SnapshotInit(s *InitSnapshot) {
	s.globals = append(s.globals[:0], p.st.globals...)
	s.cov.CopyFrom(p.st.cov)
	s.declsReady = p.st.declsReady
}

// RestoreInit rewinds p to a captured post-Init state, standing in for
// an Init call on a freshly patched Proc: globals, coverage and the
// visibility watermark are restored, the stack and call depth rewound.
// The snapshot must come from a Proc of the same program shape (the
// incremental compiler's Patch preserves global slot assignment), which
// the campaign rig's snapshot validity key guarantees.
func (p *Proc) RestoreInit(s *InitSnapshot) {
	copy(p.st.globals, s.globals)
	p.st.cov.CopyFrom(&s.cov)
	p.st.sp, p.st.depth = 0, 0
	p.st.declsReady = s.declsReady
	p.inited = true
}

// Call invokes a driver function by name — the boot script entry point.
func (p *Proc) Call(name string, args ...Value) (Value, error) {
	if !p.inited {
		st := &p.st
		st.declsReady = p.maxDecl // defensive: Call without Init
	}
	f, ok := p.byName[name]
	if !ok {
		return voidValue, &kernel.CrashError{Cause: fmt.Errorf("call to undefined function %q", name)}
	}
	return p.st.callFunc(f, args)
}

// Coverage returns the executed-line set. The set is owned by the Mach
// the Proc was compiled with, so it is valid until the next Compile on
// that Mach — callers that outlive the boot must Clone it.
func (p *Proc) Coverage() *ccov.Set { return p.st.cov }

// CoveredLines iterates the executed lines in ascending order without
// copying the coverage structure.
func (p *Proc) CoveredLines() iter.Seq[int] { return p.st.cov.Lines() }

// Covered reports whether a line was executed.
func (p *Proc) Covered(line int) bool { return p.st.cov.Covered(line) }

// callFunc is the compiled activation: depth and arity guards, a frame
// sliced from the preallocated stack, parameters truncated into the
// leading slots, and the body closures run in order.
func (st *state) callFunc(f *cfunc, args []Value) (Value, error) {
	if st.depth >= maxCallDepth {
		return voidValue, &kernel.CrashError{Cause: fmt.Errorf("call stack overflow in %q", f.name)}
	}
	st.depth++
	if len(args) != len(f.params) {
		st.depth--
		return voidValue, &kernel.CrashError{
			Cause: fmt.Errorf("call of %q with %d args, want %d", f.name, len(args), len(f.params)),
		}
	}
	fr := st.stack[st.sp : st.sp+f.nslots]
	st.sp += f.nslots
	for i, t := range f.params {
		fr[i] = cinterp.Truncate(t, args[i])
	}
	var (
		fl  flow
		ret Value
		err error
	)
	for _, sf := range f.body {
		fl, ret, err = sf(st, fr)
		if err != nil || fl != flowNormal {
			break
		}
	}
	st.sp -= f.nslots
	st.depth--
	if err != nil {
		return voidValue, err
	}
	if fl == flowReturn {
		return cinterp.Truncate(f.result, ret), nil
	}
	return voidValue, nil
}

// grabArgs borrows a call-argument buffer from the pool. Buffers are
// recursion-safe: a buffer is in use from grab to release, and nested
// calls grab their own.
func (st *state) grabArgs(n int) []Value {
	if n == 0 {
		return nil
	}
	pool := *st.argPool
	if k := len(pool) - 1; k >= 0 {
		b := pool[k]
		*st.argPool = pool[:k]
		if cap(b) >= n {
			return b[:n]
		}
	}
	if n < 8 {
		return make([]Value, n, 8)
	}
	return make([]Value, n)
}

func (st *state) releaseArgs(b []Value) {
	if cap(b) == 0 {
		return
	}
	*st.argPool = append(*st.argPool, b)
}
