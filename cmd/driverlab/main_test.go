package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/drivers"
	"repro/internal/experiment"
	"repro/internal/obs"
)

// TestFastPaths exercises the non-mutation paths of the CLI (the mutation
// tables are covered by the experiment package and the benchmarks).
func TestFastPaths(t *testing.T) {
	for _, args := range [][]string{
		{"-table", "1"},
		{"-figure", "1"},
		{"-figure", "3"},
		{"-figure", "4"},
	} {
		if err := run(args); err != nil {
			t.Errorf("driverlab %v: %v", args, err)
		}
	}
}

// TestAdvertisedTables runs every value the -table help text promises,
// with a minimal sample so the mutation tables stay affordable.
func TestAdvertisedTables(t *testing.T) {
	if testing.Short() {
		t.Skip("full table sweep is not short")
	}
	for _, args := range [][]string{
		{"-table", "1"},
		{"-table", "2"},
		{"-table", "3", "-sample", "1"},
		{"-table", "4", "-sample", "1"},
		{"-table", "5", "-sample", "2"},
		{"-table", "6", "-sample", "1"},
		{"-table", "7", "-sample", "1"},
		{"-table", "8", "-sample", "2"},
		{"-table", "all", "-sample", "1"},
	} {
		if err := run(args); err != nil {
			t.Errorf("driverlab %v: %v", args, err)
		}
	}
}

// TestUsageEnumeratesSurface: the top-level -h banner must name the
// campaign and bench subcommands, every embedded driver, and both
// -backend values — the CLI's whole surface, not just the flag list —
// and asking for help is success, not an error.
func TestUsageEnumeratesSurface(t *testing.T) {
	usage := usageText()
	wants := []string{
		"campaign", "run", "resume", "merge", "report", "status", "bench",
		"metrics", "block", "compiled", "interp", "BENCH_campaign.json",
		"-compare", "-min-boots",
		"-status-addr", "-phases", "/metrics", "/status",
		"scenarios", "-scenario",
		"serve", "worker", "-connect",
	}
	wants = append(wants, drivers.Names()...)
	// Every registered scenario must be named in the usage text, so the
	// matrix axis is discoverable without reading the source.
	for _, sc := range experiment.Scenarios() {
		wants = append(wants, sc.Name)
	}
	// Every registered extension pair must appear in the table numbering.
	for _, d := range experiment.Workloads() {
		if d.Name != "ide" {
			wants = append(wants, d.Name+" extension)")
		}
	}
	for _, want := range wants {
		if !strings.Contains(usage, want) {
			t.Errorf("usage text does not mention %q", want)
		}
	}
	for _, args := range [][]string{
		{"-h"},
		{"campaign", "run", "-h"},
		{"campaign", "status", "-h"},
		{"bench", "-h"},
		{"scenarios", "-h"},
	} {
		if err := run(args); err != nil {
			t.Errorf("run(%v) = %v, want nil (help is not an error)", args, err)
		}
	}
}

// TestMetricsCLI: the metrics subcommand lists every registered family
// and rejects arguments.
func TestMetricsCLI(t *testing.T) {
	if err := run([]string{"metrics"}); err != nil {
		t.Errorf("metrics: %v", err)
	}
	if err := run([]string{"metrics", "extra"}); err == nil {
		t.Error("metrics with arguments accepted")
	}
}

func TestBadFlags(t *testing.T) {
	if err := run([]string{"-figure", "99"}); err == nil {
		t.Error("unknown figure accepted")
	}
	if err := run([]string{"-table", "9"}); err == nil {
		t.Error("table past the registered extensions accepted")
	}
	if err := run([]string{"-table", "busmouse"}); err == nil {
		t.Error("non-numeric table accepted")
	}
	if err := run([]string{"-table", "3", "-backend", "jit"}); err == nil {
		t.Error("unknown backend accepted")
	}
}

// TestBenchCLI runs the throughput bench on a small sample and checks
// the JSON report lands with the advertised fields.
func TestBenchCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("bench is not short")
	}
	dir := t.TempDir()
	out := filepath.Join(dir, "BENCH_campaign.json")
	if err := run([]string{"bench", "-drivers", "busmouse_devil", "-sample", "50",
		"-phases", "-json", "-out", out}); err != nil {
		t.Fatalf("bench: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("bench report missing: %v", err)
	}
	var rep BenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("bench report is not JSON: %v", err)
	}
	if rep.Bench != "campaign" || rep.Backend != "block" {
		t.Errorf("report header = %q/%q, want campaign/block", rep.Bench, rep.Backend)
	}
	// The default -frontend both emits one driver row and one total per
	// front end, full first.
	if len(rep.Frontends) != 2 || rep.Frontends[0] != "full" || rep.Frontends[1] != "incremental" {
		t.Errorf("report frontends = %v, want [full incremental]", rep.Frontends)
	}
	if len(rep.Totals) != 2 {
		t.Fatalf("report has %d totals, want one per front end", len(rep.Totals))
	}
	for _, total := range rep.Totals {
		if total.Boots == 0 || total.BootsPerSec <= 0 {
			t.Errorf("report total = %+v, want >0 boots and boots/s", total)
		}
	}
	// -phases attaches the per-phase breakdown to every driver row, in
	// pipeline order, with shares summing to ~1.
	for _, d := range rep.Drivers {
		if len(d.Phases) == 0 {
			t.Errorf("driver row %s/%s has no phase rows under -phases", d.Driver, d.Frontend)
			continue
		}
		var share float64
		seen := make(map[string]bool)
		for _, p := range d.Phases {
			if p.Count <= 0 || p.TotalSec < 0 {
				t.Errorf("phase row %+v has no spans", p)
			}
			seen[p.Phase] = true
			share += p.Share
		}
		if !seen[experiment.PhaseExecute] || !seen[experiment.PhaseClassify] {
			t.Errorf("phase rows %v lack execute/classify", d.Phases)
		}
		if share < 0.99 || share > 1.01 {
			t.Errorf("phase shares sum to %v, want ~1", share)
		}
	}
	if err := run([]string{"bench", "-backend", "jit"}); err == nil {
		t.Error("bench with unknown backend accepted")
	}
	if err := run([]string{"bench", "-frontend", "psychic"}); err == nil {
		t.Error("bench with unknown front end accepted")
	}
	if err := run([]string{"bench", "-obs", "sideways"}); err == nil {
		t.Error("bench with unknown -obs mode accepted")
	}
}

// TestCampaignCLI drives the full campaign lifecycle through the
// subcommand surface: sharded runs into separate stores, merge, report,
// and an idempotent resume.
func TestCampaignCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign CLI test is not short")
	}
	dir := t.TempDir()
	a := filepath.Join(dir, "a.jsonl")
	b := filepath.Join(dir, "b.jsonl")
	m := filepath.Join(dir, "m.jsonl")
	base := []string{"-drivers", "busmouse_c", "-sample", "10", "-seed", "11",
		"-shards", "2", "-quiet"}

	if err := run(append([]string{"campaign", "run", "-store", a, "-shard", "0"}, base...)); err != nil {
		t.Fatalf("campaign run shard 0: %v", err)
	}
	if err := run(append([]string{"campaign", "run", "-store", b, "-shard", "1"}, base...)); err != nil {
		t.Fatalf("campaign run shard 1: %v", err)
	}
	if err := run([]string{"campaign", "merge", "-out", m, a, b}); err != nil {
		t.Fatalf("campaign merge: %v", err)
	}
	if err := run([]string{"campaign", "report", "-store", m}); err != nil {
		t.Fatalf("campaign report: %v", err)
	}
	if err := run([]string{"campaign", "resume", "-store", m, "-quiet"}); err != nil {
		t.Fatalf("campaign resume: %v", err)
	}
	// The offline status view reconstructs the snapshot from the same
	// store, through the positional and the flag spelling alike.
	if err := run([]string{"campaign", "status", m}); err != nil {
		t.Fatalf("campaign status <store>: %v", err)
	}
	if err := run([]string{"campaign", "status", "-store", m}); err != nil {
		t.Fatalf("campaign status -store: %v", err)
	}
	snap := func(path string) *campaign.Snapshot {
		st, err := campaign.OpenFile(path)
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		return campaign.SnapshotFromRecords(st.Records())
	}
	s := snap(m)
	if s.Recorded == 0 || s.Recorded != s.Ran+s.Deduped || len(s.Outcomes) == 0 {
		t.Errorf("offline snapshot inconsistent: %+v", s)
	}
	if s.Total == 0 || s.Recorded > s.Total {
		t.Errorf("offline snapshot total/recorded inconsistent: %d/%d", s.Recorded, s.Total)
	}
}

// TestCampaignStatusLive serves a snapshot over the obs endpoint and
// drives the live status path — URL, -addr, and bare host:port forms —
// plus the flag-validation errors.
func TestCampaignStatusLive(t *testing.T) {
	want := campaign.Snapshot{
		Name: "wire", Live: true, Workers: 2, ElapsedSec: 3.5,
		Total: 10, Recorded: 6, Ran: 5, Deduped: 1,
		BootsPerSec: 1.5, ETASec: 2.7,
		Outcomes: map[string]int{"Boot": 5, "Crash": 1},
		Drivers:  []campaign.DriverStatus{{Driver: "ide_c", Selected: 10, Recorded: 6, Ran: 5}},
		Shards:   []campaign.ShardStatus{{Shard: 0, Planned: 10, Recorded: 6}},
	}
	srv, err := obs.Serve("127.0.0.1:0", obs.New(), func() any { return want })
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	addr := strings.TrimPrefix(srv.URL, "http://")
	got, err := fetchSnapshot(addr)
	if err != nil {
		t.Fatalf("fetchSnapshot(%s): %v", addr, err)
	}
	if !got.Live || got.Name != "wire" || got.Recorded != 6 || got.Outcomes["Boot"] != 5 {
		t.Errorf("fetched snapshot = %+v, want the served one", got)
	}
	for _, args := range [][]string{
		{"campaign", "status", srv.URL},
		{"campaign", "status", addr},
		{"campaign", "status", "-addr", addr},
	} {
		if err := run(args); err != nil {
			t.Errorf("run(%v) = %v", args, err)
		}
	}
	if err := run([]string{"campaign", "status"}); err == nil {
		t.Error("status without a target accepted")
	}
	if err := run([]string{"campaign", "status", "-store", "x", "-addr", "y"}); err == nil {
		t.Error("status with both -store and -addr accepted")
	}
	if err := run([]string{"campaign", "status", "-addr", addr, "extra"}); err == nil {
		t.Error("status with flags plus positional accepted")
	}
	if err := run([]string{"campaign", "status", "127.0.0.1:1"}); err == nil {
		t.Error("status against a dead endpoint accepted")
	}
}

// TestStatusFormatting pins the snapshot renderers: one source of
// truth for /status, the status view and the progress line, and the
// progress line must clamp to the terminal width instead of wrapping.
func TestStatusFormatting(t *testing.T) {
	s := campaign.Snapshot{
		Name: "fmt", Live: true, Workers: 4, ElapsedSec: 61,
		Total: 200, Recorded: 50, Ran: 40, Deduped: 7, Skipped: 3,
		BootsPerSec: 12.5, ETASec: 12,
		Outcomes: map[string]int{"Boot": 30, "Crash": 10, "Halt": 10},
		Drivers:  []campaign.DriverStatus{{Driver: "ide_c", Selected: 200, Recorded: 50, Ran: 40, BootsPerSec: 12.5}},
		Shards:   []campaign.ShardStatus{{Shard: 0, Planned: 100, Recorded: 30}, {Shard: 1, Planned: 100, Recorded: 20}},
	}
	out := formatSnapshot(s, "test")
	for _, want := range []string{
		`campaign "fmt" (live, test)`, "50/200 recorded (25.0%)", "12.5 boots/s",
		"ETA 12s", "ide_c", "shards: 0: 30/100, 1: 20/100", "Boot 30", "workers 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("formatSnapshot output lacks %q:\n%s", want, out)
		}
	}

	line := progressLine(s, 80)
	for _, want := range []string{"50/200 recorded", "25.0%", "12.5 boots/s", "ETA 12s"} {
		if !strings.Contains(line, want) {
			t.Errorf("progressLine lacks %q: %q", want, line)
		}
	}
	for _, width := range []int{80, 40, 20, 10, 5} {
		if got := progressLine(s, width); len(got) > width-1 {
			t.Errorf("progressLine(width=%d) is %d chars: %q", width, len(got), got)
		}
	}
	t.Setenv("COLUMNS", "42")
	if got := termWidth(); got != 42 {
		t.Errorf("termWidth() = %d with COLUMNS=42", got)
	}
	t.Setenv("COLUMNS", "bogus")
	if got := termWidth(); got != 80 {
		t.Errorf("termWidth() = %d with bogus COLUMNS, want the 80 default", got)
	}
}

func TestCampaignCLIErrors(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"campaign"}); err == nil {
		t.Error("missing campaign verb accepted")
	}
	if err := run([]string{"campaign", "destroy"}); err == nil {
		t.Error("unknown campaign verb accepted")
	}
	if err := run([]string{"campaign", "run"}); err == nil {
		t.Error("campaign run without -store accepted")
	}
	if err := run([]string{"campaign", "resume", "-store",
		filepath.Join(dir, "empty.jsonl"), "-quiet"}); err == nil {
		t.Error("resume of an empty store accepted")
	}
	if err := run([]string{"campaign", "merge", "-out", filepath.Join(dir, "out.jsonl")}); err == nil {
		t.Error("merge without inputs accepted")
	}
	if err := run([]string{"campaign", "run", "-store", filepath.Join(dir, "s.jsonl"),
		"-drivers", "busmouse_c", "-sample", "10", "-shards", "2", "-shard", "7", "-quiet"}); err == nil {
		t.Error("out-of-range shard accepted")
	}
	_ = os.Remove(filepath.Join(dir, "s.jsonl"))
}

// TestScenariosCLI: the scenarios subcommand lists every registered
// scenario, -names emits the machine-readable form the docs gate
// consumes, and positional arguments are rejected.
func TestScenariosCLI(t *testing.T) {
	if err := run([]string{"scenarios"}); err != nil {
		t.Errorf("scenarios: %v", err)
	}
	if err := run([]string{"scenarios", "-names"}); err != nil {
		t.Errorf("scenarios -names: %v", err)
	}
	if err := run([]string{"scenarios", "extra"}); err == nil {
		t.Error("scenarios with arguments accepted")
	}
}

// TestCampaignMatrixCLI drives a small fault-injection matrix through
// the full CLI lifecycle — run with -scenario, offline status, report —
// and checks the store holds every cell. This is the -race CI smoke for
// the scenario engine.
func TestCampaignMatrixCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign matrix CLI test is not short")
	}
	store := filepath.Join(t.TempDir(), "matrix.jsonl")
	if err := run([]string{"campaign", "run", "-store", store,
		"-drivers", "busmouse_devil", "-sample", "20", "-seed", "11",
		"-scenario", "pristine,flaky-bus:10", "-quiet"}); err != nil {
		t.Fatalf("campaign run -scenario: %v", err)
	}
	if err := run([]string{"campaign", "status", store}); err != nil {
		t.Fatalf("campaign status: %v", err)
	}
	if err := run([]string{"campaign", "report", "-store", store}); err != nil {
		t.Fatalf("campaign report: %v", err)
	}

	st, err := campaign.OpenFile(store)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	tables, order, err := campaign.Aggregate(st.Records())
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 {
		t.Fatalf("matrix store aggregates to cells %v, want 2", order)
	}
	for _, cell := range []string{"busmouse_devil", "busmouse_devil@flaky-bus:10"} {
		if tables[cell] == nil || !tables[cell].Complete() {
			t.Errorf("cell %s missing or incomplete", cell)
		}
	}

	// A bad scenario name fails before any rig is assembled, naming the
	// known scenarios.
	err = run([]string{"campaign", "run", "-store",
		filepath.Join(t.TempDir(), "bad.jsonl"),
		"-drivers", "busmouse_devil", "-sample", "20",
		"-scenario", "flaky-buss", "-quiet"})
	if err == nil || !strings.Contains(err.Error(), "flaky-bus") {
		t.Errorf("unknown scenario error = %v, want the known names listed", err)
	}
}
