package pci_test

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/hw/pci"
)

func newRig(t *testing.T) (*hw.Bus, *hw.Clock, *pci.BusMaster) {
	t.Helper()
	clock := &hw.Clock{}
	bus := hw.NewBus()
	bm := pci.New(clock)
	if err := bus.Map(0xc000, 1, bm.Command()); err != nil {
		t.Fatal(err)
	}
	if err := bus.Map(0xc002, 1, bm.Status()); err != nil {
		t.Fatal(err)
	}
	if err := bus.Map(0xc004, 1, bm.Descriptor()); err != nil {
		t.Fatal(err)
	}
	return bus, clock, bm
}

func TestDescriptorAlignment(t *testing.T) {
	bus, _, bm := newRig(t)
	if err := bus.Out32(0xc004, 0x12345677); err != nil {
		t.Fatal(err)
	}
	if got := bm.DescriptorTable(); got != 0x12345674 {
		t.Errorf("descriptor table = %#x, want dword-aligned 0x12345674", got)
	}
	v, err := bus.In32(0xc004)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0x12345674 {
		t.Errorf("readback = %#x", v)
	}
}

func TestDMAEngineLifecycle(t *testing.T) {
	bus, clock, _ := newRig(t)
	// Start a read transfer.
	if err := bus.Out8(0xc000, pci.BMStart|pci.BMReadMode); err != nil {
		t.Fatal(err)
	}
	s, _ := bus.In8(0xc002)
	if s&pci.BMActive == 0 {
		t.Fatalf("engine not active after start: %#x", s)
	}
	clock.Tick(100)
	s, _ = bus.In8(0xc002)
	if s&pci.BMActive != 0 {
		t.Errorf("engine still active after completion: %#x", s)
	}
	if s&pci.BMInterrupt == 0 {
		t.Errorf("completion interrupt not latched: %#x", s)
	}
	// Write-1-to-clear the interrupt.
	if err := bus.Out8(0xc002, pci.BMInterrupt); err != nil {
		t.Fatal(err)
	}
	s, _ = bus.In8(0xc002)
	if s&pci.BMInterrupt != 0 {
		t.Errorf("interrupt latch survived clear: %#x", s)
	}
}

// TestHostileProgramming drives the engine the way mutated drivers do —
// restarts while active, garbage register values, wide accesses to the
// byte registers, out-of-range offsets — and requires device errors or
// benign latching, never a panic.
func TestHostileProgramming(t *testing.T) {
	bus, clock, bm := newRig(t)
	// Restart while active: the engine stays active and completes once.
	if err := bus.Out8(0xc000, pci.BMStart); err != nil {
		t.Fatal(err)
	}
	if err := bus.Out8(0xc000, pci.BMStart|pci.BMReadMode); err != nil {
		t.Fatal(err)
	}
	clock.Tick(1 << 40) // a mutated delay constant: one enormous batch
	if bm.Active() {
		t.Error("engine still active after huge elapsed batch")
	}
	if !bm.IrqPending() {
		t.Error("completion not latched after huge elapsed batch")
	}
	// Garbage wide writes to the byte registers truncate politely.
	if err := bus.Write(0xc000, hw.Width32, 0xdeadbeef); err != nil {
		t.Fatal(err)
	}
	if err := bus.Write(0xc002, hw.Width32, 0xffffffff); err != nil {
		t.Fatal(err)
	}
	if bm.ErrorLatched() || bm.IrqPending() {
		t.Errorf("write-1-to-clear did not clear latches: err=%v irq=%v",
			bm.ErrorLatched(), bm.IrqPending())
	}
	// Out-of-range offsets are device errors, not panics.
	if _, err := bm.Status().Read(1, hw.Width8); err == nil {
		t.Error("read past the status register succeeded")
	}
	if err := bm.Command().Write(7, hw.Width8, 1); err == nil {
		t.Error("write past the command register succeeded")
	}
}

// TestBusMasterReset: Reset returns the engine to the power-on state —
// the campaign rig-reuse contract.
func TestBusMasterReset(t *testing.T) {
	bus, clock, bm := newRig(t)
	if err := bus.Out32(0xc004, 0x1234); err != nil {
		t.Fatal(err)
	}
	if err := bus.Out8(0xc000, pci.BMStart); err != nil {
		t.Fatal(err)
	}
	clock.Tick(100)
	bm.Reset()
	if bm.DescriptorTable() != 0 || bm.Active() || bm.IrqPending() ||
		bm.ErrorLatched() || bm.Capabilities() != 0x60 {
		t.Errorf("state survived Reset: prdt=%#x active=%v irq=%v err=%v caps=%#x",
			bm.DescriptorTable(), bm.Active(), bm.IrqPending(),
			bm.ErrorLatched(), bm.Capabilities())
	}
}

func TestStopCancelsTransfer(t *testing.T) {
	bus, _, _ := newRig(t)
	if err := bus.Out8(0xc000, pci.BMStart); err != nil {
		t.Fatal(err)
	}
	if err := bus.Out8(0xc000, 0); err != nil {
		t.Fatal(err)
	}
	s, _ := bus.In8(0xc002)
	if s&pci.BMActive != 0 {
		t.Errorf("engine active after stop: %#x", s)
	}
}
