package experiment

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/campaign/fleet"
)

// hookedWorkload wraps the real experiment workload so chaos tests can
// act at boot boundaries (the moment a fleet worker is deepest in real
// work) without touching the workload itself.
type hookedWorkload struct {
	campaign.Workload
	onBoot func()
}

func (h *hookedWorkload) NewWorker(spec campaign.Spec) (campaign.Worker, error) {
	w, err := h.Workload.NewWorker(spec)
	if err != nil {
		return nil, err
	}
	return &hookedWorker{Worker: w, onBoot: h.onBoot}, nil
}

type hookedWorker struct {
	campaign.Worker
	onBoot func()
}

func (w *hookedWorker) Boot(t campaign.Task) (campaign.Outcome, error) {
	w.onBoot()
	return w.Worker.Boot(t)
}

// TestFleetCampaignSurvivesKilledWorker is the chaos leg of the fleet
// story on the real workload: a worker is killed mid-shard while
// booting actual driver mutants, its lease moves to a healthy worker,
// and the final report tables are byte-identical to the serial run —
// no task lost, none duplicated, no outcome changed by the crash.
func TestFleetCampaignSurvivesKilledWorker(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet chaos test is not short")
	}
	spec := CampaignSpec("busmouse_c", MutationOptions{SamplePct: 6, Seed: 13})
	spec.Name = "fleet-chaos"
	spec.Shards = 4

	render := func(st campaign.Store) string {
		t.Helper()
		tables, order, err := campaign.Aggregate(st.Records())
		if err != nil {
			t.Fatal(err)
		}
		var text string
		for _, d := range order {
			if !tables[d].Complete() {
				t.Fatalf("%s incomplete: %d/%d", d, tables[d].Results, tables[d].Selected)
			}
			text += FormatDriverTable(TableFromCampaign(tables[d]), d)
		}
		return text
	}

	serial := campaign.NewMemStore()
	if _, err := campaign.Run(spec, NewWorkload(), serial, campaign.Options{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	want := render(serial)

	store := campaign.NewMemStore()
	co, err := fleet.NewCoordinator(fleet.CoordinatorConfig{
		Spec: spec, Workload: NewWorkload(), Store: store,
		LeaseTTL: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	co.Start(ln)
	defer co.Close()

	// The victim dies on its 4th real boot: records already streamed
	// (BatchSize 1), shard unfinished.
	interrupt := make(chan struct{})
	var once sync.Once
	boots := 0
	var mu sync.Mutex
	victim := &hookedWorkload{Workload: NewWorkload(), onBoot: func() {
		mu.Lock()
		boots++
		n := boots
		mu.Unlock()
		if n >= 4 {
			once.Do(func() { close(interrupt) })
		}
	}}
	var wg sync.WaitGroup
	wg.Add(1)
	var victimErr error
	go func() {
		defer wg.Done()
		_, victimErr = fleet.RunWorker(co.Addr(), victim, fleet.WorkerOptions{
			Name: "victim", Workers: 1, BatchSize: 1, Interrupt: interrupt,
		})
	}()
	<-interrupt
	wg.Wait()
	if !errors.Is(victimErr, campaign.ErrInterrupted) {
		t.Fatalf("victim returned %v, want ErrInterrupted", victimErr)
	}

	if _, err := fleet.RunWorker(co.Addr(), NewWorkload(), fleet.WorkerOptions{
		Name: "survivor", Workers: 2,
	}); err != nil {
		t.Fatal(err)
	}
	if err := co.Wait(); err != nil {
		t.Fatal(err)
	}
	if fs := co.FleetStatus(); fs.Releases == 0 {
		t.Errorf("the kill released no lease; re-leasing was not exercised (status %+v)", fs)
	}

	// Exactly-once: one result record per planned task.
	_, tasks, err := campaign.ExpandPlan(spec, NewWorkload())
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	for _, r := range store.Records() {
		if r.Kind == campaign.KindResult {
			counts[r.Key()]++
		}
	}
	for _, task := range tasks {
		if counts[task.Key()] != 1 {
			t.Errorf("task %s has %d records, want exactly 1", task.Key(), counts[task.Key()])
		}
	}
	if len(counts) != len(tasks) {
		t.Errorf("store holds %d result keys, plan has %d tasks", len(counts), len(tasks))
	}

	if got := render(store); got != want {
		t.Errorf("post-kill fleet tables differ from serial:\n--- serial\n%s\n--- fleet\n%s", want, got)
	}
}
