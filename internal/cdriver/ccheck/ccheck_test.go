package ccheck_test

import (
	"strings"
	"testing"

	"repro/internal/cdriver/ccheck"
	"repro/internal/cdriver/cparser"
	"repro/internal/cdriver/ctypes"
	"repro/internal/devil"
	"repro/internal/hw"
	"repro/internal/specs"
)

// strictEnv builds a strict environment loaded with the IDE stub interface.
func strictEnv(t *testing.T) *ctypes.Env {
	t.Helper()
	s, err := specs.Load("ide")
	if err != nil {
		t.Fatal(err)
	}
	spec, err := devil.Compile(s.Filename, s.Source)
	if err != nil {
		t.Fatal(err)
	}
	bus := hw.NewBus()
	bus.SetFloating(true)
	stubs, err := spec.Generate(devil.Config{
		Bus:   bus,
		Bases: map[string]hw.Port{"cmd": 0x1f0, "ctl": 0x3f6, "data": 0x1f0},
		Mode:  devil.Debug,
	})
	if err != nil {
		t.Fatal(err)
	}
	env := ctypes.NewEnv(true)
	if err := env.AddStubs(stubs.Interface()); err != nil {
		t.Fatal(err)
	}
	return env
}

func checkWith(t *testing.T, env *ctypes.Env, src string) []string {
	t.Helper()
	prog, perrs := cparser.Parse(src)
	if len(perrs) != 0 {
		t.Fatalf("parse: %v", perrs)
	}
	errs := ccheck.Check(prog, env)
	msgs := make([]string, len(errs))
	for i, e := range errs {
		msgs[i] = e.Error()
	}
	return msgs
}

func expectClean(t *testing.T, env *ctypes.Env, src string) {
	t.Helper()
	if msgs := checkWith(t, env, src); len(msgs) != 0 {
		t.Errorf("expected clean, got %v", msgs)
	}
}

func expectError(t *testing.T, env *ctypes.Env, src, want string) {
	t.Helper()
	msgs := checkWith(t, env, src)
	for _, m := range msgs {
		if strings.Contains(m, want) {
			return
		}
	}
	t.Errorf("no error containing %q; got %v", want, msgs)
}

func TestPermissiveAcceptsWeaklyTypedCode(t *testing.T) {
	env := ctypes.NewEnv(false)
	// Macros, ports, commands and masks are interchangeable integers: the
	// classic C driver compiles even with "wrong" mixtures.
	expectClean(t, env, `
#define PORT 0x1f0
#define CMD  0x20
int f(void) {
    u8 s = inb(CMD);
    outb(PORT, CMD);
    return s & PORT;
}`)
}

func TestPermissiveStructuralErrors(t *testing.T) {
	env := ctypes.NewEnv(false)
	expectError(t, env, `int f(void) { return x; }`, "undeclared")
	expectError(t, env, `
#define M 5
int f(void) { M = 3; return 0; }`, "lvalue required")
	expectError(t, env, `
#define M 5
int f(void) { return M(1); }`, "not a function")
	expectError(t, env, `int f(void) { return inb(1, 2); }`, "wrong number of arguments")
	expectError(t, env, `int g(void) { return 0; } int f(void) { return g + 1; }`,
		"used as a value")
	expectError(t, env, `int f(void) { return nosuch(); }`, "implicit declaration")
	expectError(t, env, `int f(void) { panic(42); return 0; }`, "string literal")
	expectError(t, env, `void f(void) { return 5; }`, "void function")
	expectError(t, env, `int f(void) { return; }`, "return with no value")
	expectError(t, env, `int inb(void) { return 0; }`, "conflicts with a builtin")
	expectError(t, env, `int f(int a, int a) { return a; }`, "redeclared")
}

func TestStrictTypeWorld(t *testing.T) {
	env := strictEnv(t)
	// The canonical CDevil idioms compile.
	expectClean(t, env, `
int f(void) {
    Drive_t who = get_Drive();
    set_Drive(MASTER);
    set_SectorCount(4);
    if (dil_eq(who, SLAVE)) { return 1; }
    return 0;
}`)
	// Wrong constant to a stub: distinct struct types reject it.
	expectError(t, env, `void f(void) { set_Drive(CMD_IDENTIFY); }`,
		"incompatible type for argument")
	// Integers cannot initialise enum-typed variables.
	expectError(t, env, `void f(void) { set_Drive(1); }`,
		"incompatible type for argument")
	// Devil values cannot enter arithmetic or comparison.
	expectError(t, env, `int f(void) { return get_Drive() == 1; }`,
		"invalid operands")
	expectError(t, env, `int f(void) { return get_Busy() + 1; }`,
		"invalid operands")
	// Devil values are not scalars in conditions.
	expectError(t, env, `void f(void) { while (get_Busy()) { } }`,
		"not scalar")
	// dil_eq demands Devil values on both sides.
	expectError(t, env, `int f(void) { return dil_eq(get_Drive(), 1); }`,
		"not a Devil value")
	// dil_eq across different Devil types compiles (checked at run time).
	expectClean(t, env, `int f(void) { return dil_eq(get_Drive(), BUSY); }`)
	// Assigning across Devil types fails.
	expectError(t, env, `void f(void) { Drive_t d = get_Busy(); }`,
		"incompatible types in assignment")
	// Casting a struct is impossible.
	expectError(t, env, `int f(void) { return (u8) get_Drive(); }`,
		"cannot convert")
	expectError(t, env, `void f(void) { Drive_t d = (Drive_t) 1; }`,
		"conversion to non-scalar")
	// Unknown Devil type names do not exist.
	expectError(t, env, `void f(void) { Bogus_t x = get_Drive(); }`,
		"unknown type")
	// Block stubs take (offset, count).
	expectClean(t, env, `void f(void) { get_block_DataWord(0, 256); }`)
	expectError(t, env, `void f(void) { get_block_DataWord(MASTER, 256); }`,
		"incompatible type for argument")
}

func TestPermissiveDowngradesDevilTypes(t *testing.T) {
	// The weak-typing ablation: stubs registered in a permissive env make
	// Devil type names plain integers, so everything compiles.
	s, err := specs.Load("ide")
	if err != nil {
		t.Fatal(err)
	}
	spec, err := devil.Compile(s.Filename, s.Source)
	if err != nil {
		t.Fatal(err)
	}
	bus := hw.NewBus()
	stubs, err := spec.Generate(devil.Config{
		Bus:   bus,
		Bases: map[string]hw.Port{"cmd": 0x1f0, "ctl": 0x3f6, "data": 0x1f0},
		Mode:  devil.Debug,
	})
	if err != nil {
		t.Fatal(err)
	}
	env := ctypes.NewEnv(false)
	if err := env.AddStubs(stubs.Interface()); err != nil {
		t.Fatal(err)
	}
	expectClean(t, env, `
int f(void) {
    Drive_t who = get_Drive();
    set_Drive(CMD_IDENTIFY);
    return who + 1;
}`)
}
