package cmut_test

import (
	"strings"
	"testing"

	"repro/internal/cdriver/clexer"
	"repro/internal/cdriver/cparser"
	"repro/internal/cdriver/ctoken"
	"repro/internal/devil/codegen"
	"repro/internal/mutation/cmut"
)

const sampleDriver = `
#define PORT 0x1f0
#define MASK 0x80
int helper(int x) { return x; }
int outside_region(void) { return PORT + 1; }
int f(int n) {
    int t = 0;
    //@hw
    while ((inb(PORT) & MASK) != 0) {
        t++;
        if (t > 100) { return 1; }
    }
    //@endhw
    return helper(t);
}
`

func enumerate(t *testing.T, src string, opts cmut.Options) *cmut.Result {
	t.Helper()
	toks, errs := clexer.Lex(src)
	if len(errs) != 0 {
		t.Fatalf("lex: %v", errs)
	}
	res, err := cmut.Enumerate(toks, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestOnlyTaggedRegionsMutated(t *testing.T) {
	res := enumerate(t, sampleDriver, cmut.Options{})
	for _, s := range res.Sites {
		tok := res.Tokens[s.Index]
		if !tok.Tagged {
			t.Errorf("site outside tagged region: %v at %v", tok, s.Pos)
		}
	}
	if len(res.Sites) == 0 {
		t.Fatal("no sites found")
	}
}

func TestSiteKinds(t *testing.T) {
	res := enumerate(t, sampleDriver, cmut.Options{})
	kinds := map[cmut.SiteKind]int{}
	for _, s := range res.Sites {
		kinds[s.Kind]++
	}
	if kinds[cmut.SiteLiteral] == 0 || kinds[cmut.SiteOperator] == 0 ||
		kinds[cmut.SiteIdent] == 0 {
		t.Errorf("missing site kinds: %v", kinds)
	}
}

func TestMutantsAreSingleTokenSwaps(t *testing.T) {
	res := enumerate(t, sampleDriver, cmut.Options{})
	for _, m := range res.Mutants[:50] {
		applied := res.Apply(m)
		if len(applied) != len(res.Tokens) {
			t.Fatal("token count changed")
		}
		diffs := 0
		for i := range applied {
			if applied[i].Lit != res.Tokens[i].Lit || applied[i].Kind != res.Tokens[i].Kind {
				diffs++
				if i != m.TokenIndex {
					t.Errorf("mutant %d changed token %d, expected %d", m.ID, i, m.TokenIndex)
				}
			}
		}
		if diffs != 1 {
			t.Errorf("mutant %d changed %d tokens", m.ID, diffs)
		}
	}
}

// TestMutantsParse: every generated mutant must be syntactically correct
// (§3.1: "mutation rules are always defined such that mutants are
// syntactically correct").
func TestMutantsParse(t *testing.T) {
	res := enumerate(t, sampleDriver, cmut.Options{})
	for _, m := range res.Mutants {
		if _, errs := cparser.ParseTokens(res.Apply(m)); len(errs) != 0 {
			t.Errorf("mutant %q does not parse: %v", m.Description, errs[0])
		}
	}
}

func TestIdentifierPoolScoping(t *testing.T) {
	res := enumerate(t, sampleDriver, cmut.Options{})
	// Find a mutant of the identifier "t" inside the tagged region: the
	// replacement pool must include macros and in-scope locals but not
	// declaration sites themselves.
	var repls []string
	for _, m := range res.Mutants {
		tok := res.Tokens[m.TokenIndex]
		if tok.Lit == "t" && res.Sites[m.SiteIndex].Kind == cmut.SiteIdent {
			repls = append(repls, m.Replacement.Lit)
		}
	}
	if len(repls) == 0 {
		t.Fatal("no identifier mutants of t")
	}
	pool := strings.Join(repls, " ")
	for _, want := range []string{"PORT", "MASK", "n", "helper", "f"} {
		if !strings.Contains(pool, want) {
			t.Errorf("pool misses %q: %v", want, repls)
		}
	}
	for _, m := range res.Mutants {
		if m.Replacement.Lit == "t" && res.Tokens[m.TokenIndex].Lit == "t" {
			t.Error("identity replacement generated")
		}
	}
}

func TestDeclarationSitesExcluded(t *testing.T) {
	src := `
//@hw
#define A 1
#define B 2
int f(void) { return A + B; }
//@endhw
`
	res := enumerate(t, src, cmut.Options{})
	for _, s := range res.Sites {
		if s.Kind != cmut.SiteIdent {
			continue
		}
		tok := res.Tokens[s.Index]
		// Declaration names follow #define; uses are inside f.
		if s.Index > 0 && res.Tokens[s.Index-1].Kind == ctoken.HashDefine {
			t.Errorf("macro declaration name %q is a site", tok.Lit)
		}
	}
}

func TestOperatorClassesAreClosed(t *testing.T) {
	// Every replacement of a mutable operator is itself mutable (swaps
	// stay within the world of Table 1).
	for op, repls := range cmut.OperatorClasses {
		for _, r := range repls {
			if r == op {
				t.Errorf("%v lists itself as a replacement", op)
			}
			if _, ok := cmut.OperatorClasses[r]; !ok {
				t.Errorf("%v -> %v leaves the rule table", op, r)
			}
		}
	}
}

func TestLiteralSemanticFilter(t *testing.T) {
	// Literal mutants must change the value: "0" has no single-digit
	// replacement producing 0 again, and "07" != "7" is false (same
	// value), so such texts are filtered.
	src := "//@hw\n#define V 7\n//@endhw\nint f(void) { return V; }"
	res := enumerate(t, src, cmut.Options{})
	for _, m := range res.Mutants {
		if res.Sites[m.SiteIndex].Kind != cmut.SiteLiteral {
			continue
		}
		if m.Replacement.Lit == "07" {
			t.Errorf("value-preserving mutant generated: %s", m.Description)
		}
	}
}

func TestCDevilClassRestriction(t *testing.T) {
	iface := &codegen.Interface{
		Consts: map[string]string{"MASTER": "Drive", "SLAVE": "Drive", "BUSY": "Busy"},
		Vars: []codegen.VarSig{
			{Name: "Drive", Readable: true, Writable: true, Kind: codegen.KindEnum,
				Consts: []string{"MASTER", "SLAVE"}},
			{Name: "Busy", Readable: true, Kind: codegen.KindEnum, Consts: []string{"BUSY"}},
			{Name: "SectorCount", Writable: true, Kind: codegen.KindInt},
		},
	}
	src := `
#define LIMIT 10
#define RETRIES 3
int f(void) {
    //@hw
    set_Drive(MASTER);
    set_SectorCount(LIMIT);
    if (dil_eq(get_Drive(), SLAVE)) { return 1; }
    //@endhw
    return 0;
}`
	res := enumerate(t, src, cmut.Options{Interface: iface})
	classOf := map[string]cmut.IdentClass{}
	replsOf := map[string][]string{}
	for _, m := range res.Mutants {
		tok := res.Tokens[m.TokenIndex]
		site := res.Sites[m.SiteIndex]
		if site.Kind != cmut.SiteIdent {
			continue
		}
		classOf[tok.Lit] = site.Class
		replsOf[tok.Lit] = append(replsOf[tok.Lit], m.Replacement.Lit)
	}
	if classOf["MASTER"] != cmut.ClassConst {
		t.Errorf("MASTER class = %v", classOf["MASTER"])
	}
	if classOf["set_Drive"] != cmut.ClassSetter {
		t.Errorf("set_Drive class = %v", classOf["set_Drive"])
	}
	if classOf["get_Drive"] != cmut.ClassGetter {
		t.Errorf("get_Drive class = %v", classOf["get_Drive"])
	}
	if classOf["LIMIT"] != cmut.ClassMacro {
		t.Errorf("LIMIT class = %v", classOf["LIMIT"])
	}
	// Setter swaps stay among setters.
	for _, r := range replsOf["set_Drive"] {
		if !strings.HasPrefix(r, "set_") {
			t.Errorf("set_Drive replaced by non-setter %q", r)
		}
	}
	// Constants swap only with constants.
	for _, r := range replsOf["MASTER"] {
		if r != "SLAVE" && r != "BUSY" {
			t.Errorf("MASTER replaced by %q", r)
		}
	}
}

func TestEnumerateRejectsBrokenSource(t *testing.T) {
	toks, _ := clexer.Lex("int f( {")
	if _, err := cmut.Enumerate(toks, cmut.Options{}); err == nil {
		t.Error("broken source enumerated")
	}
}

// TestStreamKeysIdentifyMutatedStreams: equal keys exactly for equal
// (position, replacement) pairs — the identity of a mutated stream —
// and DedupKeys marks only keys shared by at least two mutants.
func TestStreamKeysIdentifyMutatedStreams(t *testing.T) {
	toks, _ := clexer.Lex("//@hw\nint f(void) { return 10 + 2; }\n//@endhw\n")
	res, err := cmut.Enumerate(toks, cmut.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Mutants) < 2 {
		t.Fatalf("expected several literal mutants, got %d", len(res.Mutants))
	}
	seen := make(map[string]int)
	for i, m := range res.Mutants {
		key := res.StreamKey(m)
		if j, dup := seen[key]; dup {
			a, b := res.Mutants[j], m
			if a.TokenIndex != b.TokenIndex || a.Replacement.Kind != b.Replacement.Kind ||
				a.Replacement.Lit != b.Replacement.Lit {
				t.Fatalf("mutants %d and %d share a key but differ in stream", j, i)
			}
		}
		seen[key] = i
	}
	// The enumeration pre-deduplicates literal edits per site, so every
	// stream is unique and DedupKeys must be all-empty.
	for i, k := range res.DedupKeys() {
		if k != "" {
			t.Errorf("mutant %d marked as duplicate in a dedup-free enumeration", i)
		}
	}

	// Synthetic duplicates: two operators yielding the same stream.
	dup := *res
	dup.Mutants = append([]cmut.Mutant(nil), res.Mutants[:2]...)
	dup.Mutants = append(dup.Mutants, cmut.Mutant{
		ID: 2, SiteIndex: dup.Mutants[0].SiteIndex,
		TokenIndex:  dup.Mutants[0].TokenIndex,
		Replacement: dup.Mutants[0].Replacement,
	})
	keys := dup.DedupKeys()
	if keys[0] == "" || keys[2] == "" || keys[0] != keys[2] {
		t.Errorf("identical streams not keyed together: %q vs %q", keys[0], keys[2])
	}
	if keys[1] != "" {
		t.Errorf("unique stream keyed as duplicate: %q", keys[1])
	}
}
