// Command devilmut runs the specification-mutation experiment of §4.1 on
// one Devil specification: it enumerates every mutant the §3.2 rules
// admit, compiles each with the Devil front end, and reports the Table-2
// row (plus, with -v, a sample of surviving mutants — the errors the
// compiler cannot catch).
//
// Usage:
//
//	devilmut [-v] [-survivors N] <spec>
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiment"
	"repro/internal/mutation/devilmut"
	"repro/internal/specs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "devilmut:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("devilmut", flag.ContinueOnError)
	verbose := fs.Bool("v", false, "list undetected (surviving) mutants")
	survivors := fs.Int("survivors", 20, "how many survivors to list with -v")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: devilmut [-v] [-survivors N] <spec>")
	}

	name := fs.Arg(0)
	var spec specs.Spec
	if !strings.ContainsAny(name, "/.") {
		s, err := specs.Load(name)
		if err != nil {
			return err
		}
		spec = s
	} else {
		data, err := os.ReadFile(name)
		if err != nil {
			return err
		}
		spec = specs.Spec{Name: name, Title: name, Filename: name, Source: string(data)}
	}

	row, err := experiment.Table2Row(spec)
	if err != nil {
		return err
	}
	fmt.Printf("%-34s lines=%d sites=%d mutants=%d detected=%.1f%%\n",
		row.Title, row.Lines, row.Sites, row.Mutants, row.PctDetected())

	if !*verbose {
		return nil
	}
	res, err := devilmut.Enumerate(spec.Source)
	if err != nil {
		return err
	}
	fmt.Printf("\nUndetected mutants (first %d):\n", *survivors)
	shown := 0
	for _, m := range res.Mutants {
		if shown >= *survivors {
			break
		}
		if detected, _ := devilmut.CheckMutant(res, m, spec.Filename); !detected {
			fmt.Printf("  %s\n", m.Description)
			shown++
		}
	}
	return nil
}
