package kernel

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// SectorSize is the disk sector size in bytes.
const SectorSize = 512

// The simulated filesystem ("SFS") layout:
//
//	LBA 0              master boot record: partition entry + 0x55AA magic
//	LBA partStart      superblock: magic, file count, dirty flag
//	LBA partStart+1    file table: one 32-byte entry per file
//	LBA partStart+2..  file data, each file starting on a sector boundary
//
// The layout is deliberately simple but checkable: every file carries a
// checksum, so any corruption a mutated driver introduces — whether by
// writing to the wrong sector or by returning garbage reads — is visible to
// the post-boot audit, reproducing the paper's "Damaged boot" class and its
// "crashed the partition table, required reformatting" anecdote.

const (
	fsMagic       = 0x31534653 // "SFS1" little-endian
	mbrMagicOff   = 510
	partEntryOff  = 446
	fileEntrySize = 32
	maxFileName   = 15
)

// File is one file of the simulated filesystem.
type File struct {
	Name string
	Data []byte
}

// FSImage is a fully materialised disk image plus its layout metadata.
type FSImage struct {
	// Sectors is the disk content, indexed by LBA.
	Sectors [][]byte
	// PartStart is the LBA of the partition (superblock).
	PartStart uint32
	// PartLen is the partition length in sectors.
	PartLen uint32
	// Files are the files the image was built from.
	Files []File
}

// checksum is the simple rolling checksum stored in file table entries.
func checksum(data []byte) uint32 {
	var a, b uint32 = 1, 0
	for _, c := range data {
		a = (a + uint32(c)) % 65521
		b = (b + a) % 65521
	}
	return b<<16 | a
}

// DefaultFiles returns the boot-critical files used by the evaluation: the
// same set on every run, so audits are deterministic.
func DefaultFiles() []File {
	mkdata := func(seed byte, n int) []byte {
		d := make([]byte, n)
		x := uint32(seed) + 1
		for i := range d {
			x = x*1664525 + 1013904223
			d[i] = byte(x >> 24)
		}
		return d
	}
	return []File{
		{Name: "vmunix", Data: mkdata(1, 3*SectorSize)},
		{Name: "init", Data: mkdata(2, 2*SectorSize)},
		{Name: "fstab", Data: mkdata(3, 200)},
		{Name: "passwd", Data: mkdata(4, 700)},
	}
}

// BuildImage materialises a disk image holding the given files behind a
// partition starting at partStart.
func BuildImage(files []File, partStart uint32) (*FSImage, error) {
	if partStart < 1 {
		return nil, fmt.Errorf("fs: partition must start after the MBR")
	}
	// Lay out files after the superblock and file table.
	dataStart := partStart + 2
	type placed struct {
		lba     uint32
		sectors uint32
	}
	placements := make([]placed, len(files))
	next := dataStart
	for i, f := range files {
		if len(f.Name) > maxFileName {
			return nil, fmt.Errorf("fs: file name %q too long", f.Name)
		}
		n := uint32((len(f.Data) + SectorSize - 1) / SectorSize)
		if n == 0 {
			n = 1
		}
		placements[i] = placed{lba: next, sectors: n}
		next += n
	}
	totalSectors := next + 4 // slack so stray in-range writes are detectable
	img := &FSImage{
		Sectors:   make([][]byte, totalSectors),
		PartStart: partStart,
		PartLen:   totalSectors - partStart,
		Files:     files,
	}
	for i := range img.Sectors {
		img.Sectors[i] = make([]byte, SectorSize)
	}

	// MBR: one partition entry + magic.
	mbr := img.Sectors[0]
	mbr[partEntryOff] = 0x80 // bootable
	mbr[partEntryOff+4] = 0x83
	binary.LittleEndian.PutUint32(mbr[partEntryOff+8:], partStart)
	binary.LittleEndian.PutUint32(mbr[partEntryOff+12:], img.PartLen)
	mbr[mbrMagicOff] = 0x55
	mbr[mbrMagicOff+1] = 0xaa

	// Superblock.
	sb := img.Sectors[partStart]
	binary.LittleEndian.PutUint32(sb[0:], fsMagic)
	binary.LittleEndian.PutUint32(sb[4:], uint32(len(files)))
	sb[8] = 0 // clean

	// File table.
	ft := img.Sectors[partStart+1]
	if len(files)*fileEntrySize > SectorSize {
		return nil, fmt.Errorf("fs: too many files for a one-sector table")
	}
	for i, f := range files {
		e := ft[i*fileEntrySize:]
		copy(e[0:maxFileName], f.Name)
		binary.LittleEndian.PutUint32(e[16:], placements[i].lba)
		binary.LittleEndian.PutUint32(e[20:], uint32(len(f.Data)))
		binary.LittleEndian.PutUint32(e[24:], checksum(f.Data))
	}

	// File data.
	for i, f := range files {
		lba := placements[i].lba
		for off := 0; off < len(f.Data); off += SectorSize {
			end := off + SectorSize
			if end > len(f.Data) {
				end = len(f.Data)
			}
			copy(img.Sectors[lba], f.Data[off:end])
			lba++
		}
	}
	return img, nil
}

// RestoreFrom copies the sector contents of src into img in place. Both
// images must share a layout (src is normally the pristine Clone taken at
// build time); restoring reuses every allocation, which is what makes
// machine reuse cheaper than rebuilding and re-checksumming a new image
// per boot.
func (img *FSImage) RestoreFrom(src *FSImage) {
	for i, s := range src.Sectors {
		copy(img.Sectors[i], s)
	}
}

// Clone deep-copies the image (the pristine snapshot kept for the audit).
func (img *FSImage) Clone() *FSImage {
	c := &FSImage{
		PartStart: img.PartStart,
		PartLen:   img.PartLen,
		Files:     img.Files,
		Sectors:   make([][]byte, len(img.Sectors)),
	}
	for i, s := range img.Sectors {
		c.Sectors[i] = append([]byte(nil), s...)
	}
	return c
}

// BlockDriver is the interface the kernel's mount path uses to reach the
// disk: in the evaluation it is backed by the mutated driver under test.
type BlockDriver interface {
	// ReadSectors reads count sectors starting at lba into a new buffer.
	ReadSectors(lba uint32, count int) ([]byte, error)
	// WriteSectors writes len(data)/SectorSize sectors starting at lba.
	WriteSectors(lba uint32, data []byte) error
}

// BootReport is the result of the mount-and-audit phase.
type BootReport struct {
	// Mounted reports whether the filesystem mounted (valid MBR + superblock).
	Mounted bool
	// FilesOK counts files whose checksums verified.
	FilesOK int
	// FilesBad counts files missing or corrupt as seen through the driver.
	FilesBad int
	// Problems lists human-readable damage descriptions.
	Problems []string
}

// Damaged reports whether the boot left visible damage.
func (r *BootReport) Damaged() bool {
	return !r.Mounted || r.FilesBad > 0 || len(r.Problems) > 0
}

// MountAndCheck performs the boot-time filesystem activity through the
// driver: read the MBR, locate the partition, validate it against the
// drive geometry the driver's IDENTIFY reported (totalSectors; 0 skips the
// check), validate the superblock, mark it dirty (one legitimate write),
// then read every file and verify its checksum. It mirrors what the
// paper's test kernel does between driver initialisation and the end of
// boot.
func (k *Kernel) MountAndCheck(drv BlockDriver, pristine *FSImage, totalSectors uint32) (*BootReport, error) {
	rep := &BootReport{}
	mbr, err := drv.ReadSectors(0, 1)
	if err != nil {
		return rep, err
	}
	if len(mbr) < SectorSize || mbr[mbrMagicOff] != 0x55 || mbr[mbrMagicOff+1] != 0xaa {
		rep.Problems = append(rep.Problems, "invalid partition table magic")
		k.Printk("VFS: unable to read partition table")
		return rep, nil
	}
	partStart := binary.LittleEndian.Uint32(mbr[partEntryOff+8:])
	partLen := binary.LittleEndian.Uint32(mbr[partEntryOff+12:])
	if partStart == 0 || partLen == 0 || partStart != pristine.PartStart {
		rep.Problems = append(rep.Problems, "corrupt partition entry")
		k.Printk("VFS: corrupt partition entry")
		return rep, nil
	}
	if totalSectors != 0 && partStart+partLen > totalSectors {
		// The geometry the driver reported cannot hold the partition: the
		// kernel refuses to mount rather than address past the drive.
		rep.Problems = append(rep.Problems, "partition exceeds reported drive capacity")
		k.Printk("VFS: partition exceeds drive capacity")
		return rep, nil
	}

	sb, err := drv.ReadSectors(partStart, 1)
	if err != nil {
		return rep, err
	}
	if binary.LittleEndian.Uint32(sb[0:]) != fsMagic {
		rep.Problems = append(rep.Problems, "bad superblock magic")
		k.Printk("VFS: cannot mount root fs")
		return rep, nil
	}
	fileCount := binary.LittleEndian.Uint32(sb[4:])
	rep.Mounted = true
	k.Printk("VFS: mounted root filesystem")

	// Mark the superblock dirty: the boot's one legitimate disk write.
	sb[8] = 1
	if err := drv.WriteSectors(partStart, sb[:SectorSize]); err != nil {
		return rep, err
	}

	ft, err := drv.ReadSectors(partStart+1, 1)
	if err != nil {
		return rep, err
	}
	for i := uint32(0); i < fileCount && int(i)*fileEntrySize < SectorSize; i++ {
		e := ft[i*fileEntrySize:]
		name := string(bytes.TrimRight(e[0:maxFileName], "\x00"))
		lba := binary.LittleEndian.Uint32(e[16:])
		size := binary.LittleEndian.Uint32(e[20:])
		want := binary.LittleEndian.Uint32(e[24:])
		if size > uint32(len(pristine.Sectors))*SectorSize {
			rep.FilesBad++
			rep.Problems = append(rep.Problems, fmt.Sprintf("file %q: absurd size %d", name, size))
			continue
		}
		nsec := int((size + SectorSize - 1) / SectorSize)
		data, err := drv.ReadSectors(lba, nsec)
		if err != nil {
			return rep, err
		}
		if uint32(len(data)) < size || checksum(data[:size]) != want {
			rep.FilesBad++
			rep.Problems = append(rep.Problems, fmt.Sprintf("file %q: checksum mismatch", name))
			k.Printk(fmt.Sprintf("EXT: checksum error on %q", name))
			continue
		}
		rep.FilesOK++
	}
	return rep, nil
}

// AuditDisk compares the raw disk content after boot against the pristine
// image plus the expected legitimate mutation (the dirty flag). Any other
// difference is damage a stray driver write inflicted; damage to LBA 0 is
// the paper's "crashed the partition table" case.
func AuditDisk(after *FSImage, pristine *FSImage) (damaged []uint32, partitionTableLost bool) {
	expected := pristine.Clone()
	expected.Sectors[expected.PartStart][8] = 1 // dirty flag
	n := len(after.Sectors)
	if len(expected.Sectors) < n {
		n = len(expected.Sectors)
	}
	for lba := 0; lba < n; lba++ {
		if bytes.Equal(after.Sectors[lba], expected.Sectors[lba]) {
			continue
		}
		// The superblock is legitimately either clean (mount never got that
		// far) or dirty (mount completed); anything else is damage.
		if uint32(lba) == pristine.PartStart &&
			bytes.Equal(after.Sectors[lba], pristine.Sectors[lba]) {
			continue
		}
		damaged = append(damaged, uint32(lba))
		if lba == 0 {
			partitionTableLost = true
		}
	}
	return damaged, partitionTableLost
}
