// ne2000: bring up the simulated NE2000 adapter through Devil stubs and
// send a frame to ourselves — remote-DMA the frame into packet memory,
// transmit in internal loopback, and read it back out of the receive
// ring. The banked page-0/page-1 registers are handled transparently by
// the specification's pre-actions on the private page variable.
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/internal/devil"
	"repro/internal/hw"
	"repro/internal/hw/ne2000"
	"repro/internal/specs"
)

const (
	txPage    = 0x40 // transmit buffer page
	ringStart = 0x46 // receive ring
	ringStop  = 0x60
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Assemble the adapter at the conventional 0x300 base.
	bus := hw.NewBus()
	nic := ne2000.New()
	if err := bus.Map(0x300, 16, nic.Registers()); err != nil {
		return err
	}
	if err := bus.Map(0x310, 1, nic.DataPort()); err != nil {
		return err
	}
	if err := bus.Map(0x31f, 1, nic.ResetPort()); err != nil {
		return err
	}

	src, err := specs.Load("ne2000")
	if err != nil {
		return err
	}
	spec, err := devil.Compile(src.Filename, src.Source)
	if err != nil {
		return err
	}
	stubs, err := spec.Generate(devil.Config{
		Bus:   bus,
		Bases: map[string]hw.Port{"reg": 0x300, "dma": 0x310, "reset": 0x31f},
		Mode:  devil.Debug,
	})
	if err != nil {
		return err
	}

	set := func(name string, val int64) {
		if err := stubs.Set(name, devil.Value{Val: uint32(val), Raw: val}); err != nil {
			log.Fatalf("set %s: %v", name, err)
		}
	}
	setc := func(name, constName string) {
		v, ok := stubs.Const(constName)
		if !ok {
			log.Fatalf("no constant %s", constName)
		}
		if err := stubs.Set(name, v); err != nil {
			log.Fatalf("set %s: %v", name, err)
		}
	}
	get := func(name string) int64 {
		v, err := stubs.Get(name)
		if err != nil {
			log.Fatalf("get %s: %v", name, err)
		}
		return int64(v.Val)
	}

	// Reset pulse, then check the reset latch.
	set("ResetTrigger", 0xff)
	if get("ResetStatus") != 1 {
		return fmt.Errorf("adapter did not enter reset")
	}

	// Bring the core up: word transfers, loopback, ring layout, MAC.
	set("Stop", 1)
	set("WordTransfer", 1)
	set("FifoThreshold", 2)
	setc("Loopback", "LOOP_INTERNAL")
	set("AcceptBroadcast", 1)
	set("PageStart", ringStart)
	set("PageStop", ringStop)
	set("Boundary", ringStart)
	set("CurrentPage", ringStart+1)
	mac := []int64{0x02, 0x11, 0x22, 0x33, 0x44, 0x55}
	for i, b := range mac {
		set(fmt.Sprintf("PhysAddr%d", i), b)
	}
	set("PacketReceived", 1) // write 1 to clear the ISR latches
	set("PacketTransmitted", 1)
	set("Stop", 0)
	set("Start", 1)
	fmt.Printf("ne2000: core started, MAC %x\n", nic.MAC())

	// Remote-DMA the frame into the transmit page.
	frame := append(bytes.Repeat([]byte{0xff}, 6), // broadcast dst
		0x02, 0x11, 0x22, 0x33, 0x44, 0x55, // src
		0x08, 0x00, 'h', 'e', 'l', 'l', 'o', '!')
	if len(frame)%2 == 1 {
		frame = append(frame, 0)
	}
	set("RemoteStartLow", 0x00)
	set("RemoteStartHigh", txPage)
	set("RemoteCountLow", int64(len(frame)&0xff))
	set("RemoteCountHigh", int64(len(frame)>>8))
	setc("RemoteOp", "DMA_WRITE")
	for i := 0; i < len(frame); i += 2 {
		set("DataWord", int64(frame[i])|int64(frame[i+1])<<8)
	}

	// Transmit.
	set("TransmitPage", txPage)
	set("TxCountLow", int64(len(frame)&0xff))
	set("TxCountHigh", int64(len(frame)>>8))
	setc("Transmit", "TX_START")
	if get("PacketTransmitted") != 1 {
		return fmt.Errorf("transmit did not complete")
	}
	if get("PacketReceived") != 1 {
		return fmt.Errorf("loopback frame was not received")
	}
	fmt.Println("ne2000: frame transmitted and looped back")

	// Read the frame back from the receive ring: 4-byte header + payload.
	rxPage := ringStart + 1
	set("RemoteStartLow", 0x00)
	set("RemoteStartHigh", int64(rxPage))
	total := len(frame) + 4
	set("RemoteCountLow", int64(total&0xff))
	set("RemoteCountHigh", int64(total>>8))
	setc("RemoteOp", "DMA_READ")
	rx := make([]byte, 0, total)
	for i := 0; i < total; i += 2 {
		w, err := stubs.Get("DataWord")
		if err != nil {
			return err
		}
		rx = append(rx, byte(w.Val), byte(w.Val>>8))
	}
	status, next := rx[0], rx[1]
	length := int(rx[2]) | int(rx[3])<<8
	fmt.Printf("ne2000: ring header: status=%#02x next=%#02x len=%d\n", status, next, length)
	if !bytes.Equal(rx[4:4+len(frame)], frame) {
		return fmt.Errorf("received frame differs from transmitted frame")
	}
	fmt.Printf("ne2000: payload verified: %q\n", rx[4+14:4+len(frame)])
	return nil
}
