package obs

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket histogram: ascending upper bounds plus
// an implicit +Inf overflow bucket, atomic per-bucket counts, and an
// atomically maintained float64 sum. A nil *Histogram is the disabled
// histogram; Observe and Start on nil are no-ops.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	total  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, updated by CAS
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DurationBuckets
	}
	if !sort.Float64sAreSorted(bounds) {
		panic("obs: histogram bounds must be ascending")
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Smallest bound >= v is exactly Prometheus `le` semantics; misses
	// every bound -> the +Inf bucket at len(bounds).
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Snapshot returns the observation count, the running sum, and the
// per-bucket (non-cumulative) counts, +Inf bucket last.
func (h *Histogram) Snapshot() (count uint64, sum float64, buckets []uint64) {
	if h == nil {
		return 0, 0, nil
	}
	buckets = make([]uint64, len(h.counts))
	for i := range h.counts {
		buckets[i] = h.counts[i].Load()
	}
	return h.total.Load(), math.Float64frombits(h.sum.Load()), buckets
}

// Bounds returns the configured upper bounds (without the implicit
// +Inf bucket).
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return append([]float64(nil), h.bounds...)
}

// Timer is an in-flight span measurement. The zero Timer (what a nil
// histogram's Start returns) is inert: Stop on it does nothing, so the
// disabled path never reads the clock.
type Timer struct {
	h  *Histogram
	t0 time.Time
}

// Start opens a span whose duration lands in h when stopped.
func (h *Histogram) Start() Timer {
	if h == nil {
		return Timer{}
	}
	return Timer{h: h, t0: time.Now()}
}

// Stop closes the span, recording its duration in seconds.
func (t Timer) Stop() {
	if t.h == nil {
		return
	}
	t.h.Observe(time.Since(t.t0).Seconds())
}

// ExpBuckets returns n exponentially spaced upper bounds starting at
// start and growing by factor.
func ExpBuckets(start, factor float64, n int) []float64 {
	if n <= 0 || start <= 0 || factor <= 1 {
		panic("obs: ExpBuckets needs n > 0, start > 0, factor > 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DurationBuckets spans 1µs to ~4.2s in powers of four — wide enough
// for both single pipeline phases and whole C-workload boots.
var DurationBuckets = ExpBuckets(1e-6, 4, 12)

// StepBuckets spans 16 to ~4M engine steps in powers of four, matching
// the per-boot step budgets the experiment layer uses.
var StepBuckets = ExpBuckets(16, 4, 10)
