// Package scanner turns Devil source text into a token stream.
//
// Quoted literals are classified by content: a string containing only the
// characters 0, 1 and * is a bit string; one that also contains '.' is a bit
// pattern (register masks use '.' for "relevant bit"). The distinction
// matters both to the checker and to the mutation engine, which must mutate
// characters within the same semantic class.
package scanner

import (
	"fmt"
	"strings"

	"repro/internal/devil/token"
)

// Error is a lexical diagnostic.
type Error struct {
	Pos token.Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Scanner tokenises one Devil source buffer.
type Scanner struct {
	src    string
	off    int
	line   int
	col    int
	errors []*Error
}

// New returns a scanner over src positioned at the first byte.
func New(src string) *Scanner {
	return &Scanner{src: src, line: 1, col: 1}
}

// Errors returns the lexical errors accumulated so far.
func (s *Scanner) Errors() []*Error { return s.errors }

func (s *Scanner) errorf(pos token.Pos, format string, args ...interface{}) {
	s.errors = append(s.errors, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (s *Scanner) pos() token.Pos {
	return token.Pos{Offset: s.off, Line: s.line, Col: s.col}
}

func (s *Scanner) peek() byte {
	if s.off >= len(s.src) {
		return 0
	}
	return s.src[s.off]
}

func (s *Scanner) peek2() byte {
	if s.off+1 >= len(s.src) {
		return 0
	}
	return s.src[s.off+1]
}

func (s *Scanner) advance() byte {
	c := s.src[s.off]
	s.off++
	if c == '\n' {
		s.line++
		s.col = 1
	} else {
		s.col++
	}
	return c
}

func (s *Scanner) skipSpaceAndComments() {
	for s.off < len(s.src) {
		c := s.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			s.advance()
		case c == '/' && s.peek2() == '/':
			for s.off < len(s.src) && s.peek() != '\n' {
				s.advance()
			}
		case c == '/' && s.peek2() == '*':
			start := s.pos()
			s.advance()
			s.advance()
			closed := false
			for s.off < len(s.src) {
				if s.peek() == '*' && s.peek2() == '/' {
					s.advance()
					s.advance()
					closed = true
					break
				}
				s.advance()
			}
			if !closed {
				s.errorf(start, "unterminated block comment")
			}
		default:
			return
		}
	}
}

func isLetter(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isHexDigit(c byte) bool {
	return isDigit(c) || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}

// Next returns the next token, or an EOF token when the input is exhausted.
func (s *Scanner) Next() token.Token {
	s.skipSpaceAndComments()
	pos := s.pos()
	if s.off >= len(s.src) {
		return token.Token{Kind: token.EOF, Pos: pos}
	}
	c := s.peek()
	switch {
	case isLetter(c):
		start := s.off
		for s.off < len(s.src) && (isLetter(s.peek()) || isDigit(s.peek())) {
			s.advance()
		}
		lit := s.src[start:s.off]
		return token.Token{Kind: token.Lookup(lit), Lit: lit, Pos: pos}
	case isDigit(c):
		return s.scanNumber(pos)
	case c == '\'':
		return s.scanQuoted(pos)
	}
	s.advance()
	switch c {
	case '(':
		return token.Token{Kind: token.LParen, Lit: "(", Pos: pos}
	case ')':
		return token.Token{Kind: token.RParen, Lit: ")", Pos: pos}
	case '{':
		return token.Token{Kind: token.LBrace, Lit: "{", Pos: pos}
	case '}':
		return token.Token{Kind: token.RBrace, Lit: "}", Pos: pos}
	case '[':
		return token.Token{Kind: token.LBracket, Lit: "[", Pos: pos}
	case ']':
		return token.Token{Kind: token.RBracket, Lit: "]", Pos: pos}
	case '@':
		return token.Token{Kind: token.At, Lit: "@", Pos: pos}
	case ':':
		return token.Token{Kind: token.Colon, Lit: ":", Pos: pos}
	case ';':
		return token.Token{Kind: token.Semi, Lit: ";", Pos: pos}
	case ',':
		return token.Token{Kind: token.Comma, Lit: ",", Pos: pos}
	case '#':
		return token.Token{Kind: token.Hash, Lit: "#", Pos: pos}
	case '=':
		if s.peek() == '>' {
			s.advance()
			return token.Token{Kind: token.MapTo, Lit: "=>", Pos: pos}
		}
		return token.Token{Kind: token.Assign, Lit: "=", Pos: pos}
	case '<':
		if s.peek() == '=' {
			s.advance()
			if s.peek() == '>' {
				s.advance()
				return token.Token{Kind: token.MapBoth, Lit: "<=>", Pos: pos}
			}
			return token.Token{Kind: token.MapFrom, Lit: "<=", Pos: pos}
		}
		s.errorf(pos, "unexpected character %q", "<")
		return token.Token{Kind: token.Illegal, Lit: "<", Pos: pos}
	case '.':
		if s.peek() == '.' {
			s.advance()
			return token.Token{Kind: token.DotDot, Lit: "..", Pos: pos}
		}
		s.errorf(pos, "unexpected character %q", ".")
		return token.Token{Kind: token.Illegal, Lit: ".", Pos: pos}
	}
	s.errorf(pos, "unexpected character %q", string(c))
	return token.Token{Kind: token.Illegal, Lit: string(c), Pos: pos}
}

func (s *Scanner) scanNumber(pos token.Pos) token.Token {
	start := s.off
	if s.peek() == '0' && (s.peek2() == 'x' || s.peek2() == 'X') {
		s.advance()
		s.advance()
		hexStart := s.off
		for s.off < len(s.src) && isHexDigit(s.peek()) {
			s.advance()
		}
		if s.off == hexStart {
			s.errorf(pos, "hexadecimal literal has no digits")
			return token.Token{Kind: token.Illegal, Lit: s.src[start:s.off], Pos: pos}
		}
		return token.Token{Kind: token.HexInt, Lit: s.src[start:s.off], Pos: pos}
	}
	for s.off < len(s.src) && isDigit(s.peek()) {
		s.advance()
	}
	return token.Token{Kind: token.Int, Lit: s.src[start:s.off], Pos: pos}
}

// scanQuoted scans a bit string or bit pattern: a single-quoted run of the
// characters 0, 1, *, and (for patterns) '.'.
func (s *Scanner) scanQuoted(pos token.Pos) token.Token {
	s.advance() // opening quote
	start := s.off
	for s.off < len(s.src) && s.peek() != '\'' && s.peek() != '\n' {
		s.advance()
	}
	body := s.src[start:s.off]
	if s.off >= len(s.src) || s.peek() != '\'' {
		s.errorf(pos, "unterminated bit literal")
		return token.Token{Kind: token.Illegal, Lit: body, Pos: pos}
	}
	s.advance() // closing quote
	kind := token.BitString
	for i := 0; i < len(body); i++ {
		switch body[i] {
		case '0', '1', '*':
		case '.':
			kind = token.BitPattern
		default:
			s.errorf(pos, "invalid character %q in bit literal %q", string(body[i]), body)
			return token.Token{Kind: token.Illegal, Lit: body, Pos: pos}
		}
	}
	if len(body) == 0 {
		s.errorf(pos, "empty bit literal")
		return token.Token{Kind: token.Illegal, Lit: body, Pos: pos}
	}
	return token.Token{Kind: kind, Lit: body, Pos: pos}
}

// ScanAll tokenises the whole buffer (excluding EOF) and returns the tokens
// plus any lexical errors. It is the entry point used by the mutation
// engine, which needs the complete token stream with positions.
func ScanAll(src string) ([]token.Token, []*Error) {
	s := New(src)
	var toks []token.Token
	for {
		t := s.Next()
		if t.Kind == token.EOF {
			break
		}
		toks = append(toks, t)
	}
	return toks, s.Errors()
}

// Render reassembles source text from a token stream. The output is not
// byte-identical to the original (whitespace is normalised) but is
// lexically identical, which is all the mutation pipeline requires.
func Render(toks []token.Token) string {
	var b strings.Builder
	line := 1
	for i, t := range toks {
		for line < t.Pos.Line {
			b.WriteByte('\n')
			line++
		}
		if i > 0 && toks[i-1].Pos.Line == t.Pos.Line {
			b.WriteByte(' ')
		}
		switch t.Kind {
		case token.BitString, token.BitPattern:
			b.WriteByte('\'')
			b.WriteString(t.Lit)
			b.WriteByte('\'')
		default:
			b.WriteString(t.Lit)
		}
	}
	b.WriteByte('\n')
	return b.String()
}
