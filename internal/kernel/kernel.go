package kernel

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/devil/codegen"
	"repro/internal/hw"
)

// PanicError is a kernel panic: the boot halts and the message is printed
// on the console (the paper's "Halt" outcome).
type PanicError struct {
	Msg string
}

// Error implements the error interface.
func (e *PanicError) Error() string { return "kernel panic: " + e.Msg }

// WatchdogError reports that the boot exceeded its step budget — the
// simulator's detector for the paper's "Infinite loop" outcome.
type WatchdogError struct {
	Budget int64
}

// Error implements the error interface.
func (e *WatchdogError) Error() string {
	return fmt.Sprintf("watchdog: boot did not complete within %d steps", e.Budget)
}

// DeadlineError reports that the boot exceeded its wall-clock deadline.
// The step-count watchdog is the deterministic detector for driver
// loops; the deadline is the harness safety net behind it, catching
// boots whose real time diverges from their step count (a sim spinning
// inside one "step", a scheduler stall) so a fault-heavy campaign can
// never wedge on one mutant.
type DeadlineError struct {
	Limit time.Duration
}

// Error implements the error interface.
func (e *DeadlineError) Error() string {
	return fmt.Sprintf("deadline: boot did not complete within %v of wall time", e.Limit)
}

// CrashError reports a machine-level failure that prints nothing: an
// unhandled bus fault, a divide by zero, a wild jump. The paper's "Crash".
type CrashError struct {
	Cause error
}

// Error implements the error interface.
func (e *CrashError) Error() string { return fmt.Sprintf("machine crash: %v", e.Cause) }

// Unwrap exposes the cause.
func (e *CrashError) Unwrap() error { return e.Cause }

// DefaultStepBudget bounds one boot. A clean boot of the simulated IDE
// driver takes well under 1% of this, so expiry reliably indicates a
// non-terminating wait loop rather than a slow path.
const DefaultStepBudget = 2_000_000

// deadlineCheckMask picks how often the watchdog consults the wall
// clock: every 4096 steps, so the deadline costs one mask test on the
// step hot path instead of a time syscall per step.
const deadlineCheckMask = 1<<12 - 1

// Kernel is one simulated machine boot context.
type Kernel struct {
	clock   *hw.Clock
	console []string
	budget  int64
	steps   int64
	// deadline, when set, is the wall-clock instant the boot must finish
	// by; limit is the duration it was derived from, for the error text.
	deadline time.Time
	limit    time.Duration
	// buf is the kernel transfer buffer drivers DMA/PIO sector data into,
	// exposed to driver code through the kbuf_* builtins.
	buf []byte
}

// New creates a kernel with the default step budget.
func New(clock *hw.Clock) *Kernel {
	return &Kernel{clock: clock, budget: DefaultStepBudget, buf: make([]byte, 64*1024)}
}

// SetBudget overrides the watchdog step budget (tests use small budgets).
func (k *Kernel) SetBudget(n int64) { k.budget = n }

// SetDeadline arms the wall-clock watchdog: the boot fails with a
// DeadlineError once wall time passes limit from now. A zero limit
// disarms it. Reset disarms it too, so reused kernels re-arm per boot.
func (k *Kernel) SetDeadline(limit time.Duration) {
	if limit <= 0 {
		k.deadline = time.Time{}
		k.limit = 0
		return
	}
	k.deadline = time.Now().Add(limit)
	k.limit = limit
}

// checkDeadline polls the wall clock; it only runs every
// deadlineCheckMask+1 steps.
func (k *Kernel) checkDeadline() error {
	if !k.deadline.IsZero() && time.Now().After(k.deadline) {
		return &DeadlineError{Limit: k.limit}
	}
	return nil
}

// Reset returns the kernel to its power-on state — console cleared,
// watchdog rewound to the default budget, transfer buffer zeroed — so a
// campaign worker can reuse the kernel across boots instead of allocating
// a new one per mutant. The clock is shared with the attached device
// models and deliberately keeps running: devices only measure relative
// time, so a monotonic clock does not change boot behaviour.
func (k *Kernel) Reset() {
	k.console = k.console[:0]
	k.steps = 0
	k.budget = DefaultStepBudget
	k.deadline = time.Time{}
	k.limit = 0
	for i := range k.buf {
		k.buf[i] = 0
	}
}

// Snapshot is saved kernel boot state: everything Reset rewinds (console,
// watchdog, transfer buffer). The zero value is an empty snapshot whose
// buffers are grown on first capture and reused by every later one —
// copy-in-place, like FSImage.RestoreFrom.
type Snapshot struct {
	console []string
	steps   int64
	budget  int64
	buf     []byte
}

// Snapshot captures the kernel's per-boot state into s, reusing s's
// buffers. The wall-clock deadline is per boot (re-armed by SetDeadline
// each time) and is not captured.
func (k *Kernel) Snapshot(s *Snapshot) {
	s.console = append(s.console[:0], k.console...)
	s.steps = k.steps
	s.budget = k.budget
	if s.buf == nil {
		s.buf = make([]byte, len(k.buf))
	}
	copy(s.buf, k.buf)
}

// Restore rewinds the kernel to the captured state. Like Reset, it
// disarms the wall-clock deadline so the next boot re-arms its own.
func (k *Kernel) Restore(s *Snapshot) {
	k.console = append(k.console[:0], s.console...)
	k.steps = s.steps
	k.budget = s.budget
	k.deadline = time.Time{}
	k.limit = 0
	copy(k.buf, s.buf)
}

// Steps returns the number of steps consumed so far.
func (k *Kernel) Steps() int64 { return k.steps }

// Clock returns the virtual time source.
func (k *Kernel) Clock() *hw.Clock { return k.clock }

// Step charges one execution step against the watchdog and advances virtual
// time. The interpreter calls it once per statement/expression step.
func (k *Kernel) Step() error {
	k.steps++
	if k.clock != nil {
		k.clock.Tick(1)
	}
	if k.steps > k.budget {
		return &WatchdogError{Budget: k.budget}
	}
	if k.steps&deadlineCheckMask == 0 {
		return k.checkDeadline()
	}
	return nil
}

// StepN charges n execution steps at once — the block backend's loop
// superblocks batch the per-iteration charges that sequential Step calls
// would make back to back with nothing in between. The count is clamped
// to the budget so a watchdog-tripped boot lands on exactly budget+1
// steps, byte-identical to n sequential Step calls; virtual time advances
// in one Tick batch (device models work in elapsed time, see hw.Clock),
// and the wall clock is polled once when the batch crosses a
// deadline-check boundary.
func (k *Kernel) StepN(n int64) error {
	if n <= 0 {
		return nil
	}
	if remaining := k.budget + 1 - k.steps; n > remaining {
		n = remaining
		if n <= 0 {
			return &WatchdogError{Budget: k.budget}
		}
	}
	before := k.steps
	k.steps += n
	if k.clock != nil {
		k.clock.Tick(uint64(n))
	}
	if k.steps > k.budget {
		return &WatchdogError{Budget: k.budget}
	}
	if before>>12 != k.steps>>12 {
		return k.checkDeadline()
	}
	return nil
}

// Delay advances virtual time by n ticks (the udelay builtin), charging the
// watchdog proportionally so a mutated delay constant cannot stall forever.
func (k *Kernel) Delay(n int64) error {
	if n < 0 {
		n = 0
	}
	k.steps += n
	if k.clock != nil {
		k.clock.Tick(uint64(n))
	}
	if k.steps > k.budget {
		return &WatchdogError{Budget: k.budget}
	}
	// Delays are rare and large; always worth a wall-clock poll.
	return k.checkDeadline()
}

// Printk appends a console line.
func (k *Kernel) Printk(msg string) {
	k.console = append(k.console, msg)
}

// Console returns a copy of the console log.
func (k *Kernel) Console() []string {
	out := make([]string, len(k.console))
	copy(out, k.console)
	return out
}

// ConsoleView returns the console log without copying. The slice
// aliases the kernel's pooled buffer: it is valid until the kernel is
// Reset or logs again, so callers that keep it across boots must copy.
// The campaign hot path reads one boot's console before the next boot
// starts, which is why BootResult carries the view rather than paying a
// per-boot copy.
func (k *Kernel) ConsoleView() []string { return k.console }

// Panic halts the kernel with a message.
func (k *Kernel) Panic(msg string) error {
	k.console = append(k.console, "Kernel panic: "+msg)
	return &PanicError{Msg: msg}
}

// Buf returns the kernel transfer buffer.
func (k *Kernel) Buf() []byte { return k.buf }

// BufRead8 reads one byte of the transfer buffer, with bounds checking that
// crashes (wild pointer) rather than erroring politely.
func (k *Kernel) BufRead8(off int64) (uint8, error) {
	if off < 0 || off >= int64(len(k.buf)) {
		return 0, &CrashError{Cause: fmt.Errorf("wild buffer read at %d", off)}
	}
	return k.buf[off], nil
}

// BufWrite8 writes one byte of the transfer buffer.
func (k *Kernel) BufWrite8(off int64, v uint8) error {
	if off < 0 || off >= int64(len(k.buf)) {
		return &CrashError{Cause: fmt.Errorf("wild buffer write at %d", off)}
	}
	k.buf[off] = v
	return nil
}

// BufRead16 reads a little-endian 16-bit word of the transfer buffer.
func (k *Kernel) BufRead16(off int64) (uint16, error) {
	lo, err := k.BufRead8(off)
	if err != nil {
		return 0, err
	}
	hi, err := k.BufRead8(off + 1)
	if err != nil {
		return 0, err
	}
	return uint16(lo) | uint16(hi)<<8, nil
}

// BufWrite16 writes a little-endian 16-bit word of the transfer buffer.
func (k *Kernel) BufWrite16(off int64, v uint16) error {
	if err := k.BufWrite8(off, uint8(v)); err != nil {
		return err
	}
	return k.BufWrite8(off+1, uint8(v>>8))
}

// Classify maps the error (or nil) a boot terminated with to its outcome
// class. A nil error yields OutcomeBoot; the caller upgrades it to
// OutcomeDamagedBoot after the filesystem audit, or to OutcomeDeadCode when
// the mutation site was never executed.
func Classify(err error) Outcome {
	if err == nil {
		return OutcomeBoot
	}
	var assertErr *codegen.AssertError
	if errors.As(err, &assertErr) {
		return OutcomeRuntimeCheck
	}
	var panicErr *PanicError
	if errors.As(err, &panicErr) {
		return OutcomeHalt
	}
	var wdErr *WatchdogError
	if errors.As(err, &wdErr) {
		return OutcomeInfiniteLoop
	}
	// A wall-clock deadline expiry is the non-terminating-boot detector's
	// safety net: same outcome class as the step watchdog.
	var dlErr *DeadlineError
	if errors.As(err, &dlErr) {
		return OutcomeInfiniteLoop
	}
	// Bus faults, wild pointers and any other machine-level error print
	// nothing: the machine just stops.
	return OutcomeCrash
}

// IsCrash reports whether the error is machine-level (prints nothing).
func IsCrash(err error) bool {
	var busErr *hw.BusFaultError
	var crashErr *CrashError
	return errors.As(err, &busErr) || errors.As(err, &crashErr)
}
