package cincr

import (
	"testing"

	"repro/internal/cdriver/cast"
	"repro/internal/cdriver/clexer"
	"repro/internal/cdriver/cparser"
	"repro/internal/cdriver/ctoken"
)

// FuzzRespanMatchesFullParse fuzzes the incremental front end's core
// invariant over arbitrary sources and arbitrary single-token
// replacements: whenever Respan accepts a mutation, splicing its
// declaration into the pristine AST must yield exactly the program a
// full parse of the materialised stream yields; everything else must be
// ErrSpanUnsafe. The seed corpus covers every span kind, span-boundary
// tokens, and replacement kinds the mutation operators produce plus
// structural ones they never do.
func FuzzRespanMatchesFullParse(f *testing.F) {
	seeds := []struct {
		src  string
		idx  int
		kind int
		lit  string
	}{
		{miniDriver, 0, int(ctoken.Ident), "oops"},    // first token
		{miniDriver, 2, int(ctoken.DecInt), "497"},    // macro body literal
		{miniDriver, 1, int(ctoken.Ident), "RENAMED"}, // macro name
		{miniDriver, 40, int(ctoken.Or), "|"},         // operator swap
		{miniDriver, 40, int(ctoken.RBrace), "}"},     // structural replacement
		{miniDriver, 9999, int(ctoken.Semi), ";"},     // out of range
		{"int x = 2;", 3, int(ctoken.DecInt), "3"},    // var initialiser
		{"int f(void) { return 1; }", 8, int(ctoken.DecInt), "0"},
		{"int f(void) { return 1; }", 12, int(ctoken.Semi), ";"}, // last token
		{"#define A 1\nint g(void) { return A; }", 2, int(ctoken.Ident), "g"},
		{"int h(int a) { return a; }", 5, int(ctoken.Ident), "b"},
	}
	for _, s := range seeds {
		f.Add(s.src, s.idx, s.kind, s.lit)
	}
	f.Fuzz(func(t *testing.T, src string, idx int, kind int, lit string) {
		toks, lerrs := clexer.Lex(src)
		if len(lerrs) > 0 || len(toks) == 0 {
			t.Skip()
		}
		s, err := Analyze(toks)
		if err != nil {
			t.Skip() // outside the recognised shape: full pipeline territory
		}
		at := ctoken.Token{Kind: ctoken.Semi}
		if idx >= 0 && idx < len(toks) {
			at = toks[idx]
		}
		repl := ctoken.Token{Kind: ctoken.Kind(kind), Lit: lit, Pos: at.Pos, Tagged: at.Tagged}

		_, declIdx, decl, rerr := s.Respan(nil, idx, repl)
		mut := &Mutation{Src: s, Index: idx, Replacement: repl}
		full, perrs := cparser.ParseTokens(mut.Apply())
		if rerr != nil {
			return // fallback path: the full pipeline is authoritative
		}
		if len(perrs) > 0 {
			t.Fatalf("Respan accepted a mutation the full parse rejects: src=%q idx=%d repl=%v: %v",
				src, idx, repl, perrs[0])
		}
		pristine, _ := cparser.ParseTokens(toks)
		spliced := &cast.Program{Decls: append([]cast.Decl(nil), pristine.Decls...)}
		spliced.Decls[declIdx] = decl
		if got, want := dumpProgram(spliced), dumpProgram(full); got != want {
			t.Fatalf("incremental/full divergence: src=%q idx=%d repl=%v\n--- incremental\n%s\n--- full\n%s",
				src, idx, repl, got, want)
		}
	})
}
