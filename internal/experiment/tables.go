package experiment

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/campaign"
	"repro/internal/devil/codegen"
	"repro/internal/kernel"
	"repro/internal/mutation"
	"repro/internal/mutation/cmut"
	"repro/internal/mutation/devilmut"
	"repro/internal/specs"
)

// ExperimentBudget is the watchdog budget used for mutant boots: ~23× a
// clean boot (17k steps), and comfortably above the longest legitimate
// driver-timeout path (~140k steps), so watchdog expiry reliably means a
// non-terminating loop.
const ExperimentBudget = 400_000

// DefaultBootWallBudget is the wall-clock deadline campaign workers arm
// per boot behind the deterministic step watchdog: a harness safety net
// against real time sinks the step count cannot see, orders of
// magnitude above any legitimate boot (milliseconds). Overridable per
// spec via BootTimeoutMS.
const DefaultBootWallBudget = 30 * time.Second

// SpecRow is one row of Table 2.
type SpecRow struct {
	Title    string
	Lines    int
	Sites    int
	Mutants  int
	Detected int
}

// PctDetected is the Table 2 percentage.
func (r SpecRow) PctDetected() float64 {
	if r.Mutants == 0 {
		return 0
	}
	return 100 * float64(r.Detected) / float64(r.Mutants)
}

// Table2 runs the Devil-compiler coverage experiment over every embedded
// specification: enumerate all mutants, compile each, count detections.
func Table2() ([]SpecRow, error) {
	var rows []SpecRow
	for _, s := range specs.All() {
		row, err := Table2Row(s)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Table2Row runs the Table 2 experiment for a single specification.
func Table2Row(s specs.Spec) (SpecRow, error) {
	res, err := devilmut.Enumerate(s.Source)
	if err != nil {
		return SpecRow{}, fmt.Errorf("spec %s: %w", s.Name, err)
	}
	row := SpecRow{
		Title:   s.Title,
		Lines:   s.Lines(),
		Sites:   len(res.Sites),
		Mutants: len(res.Mutants),
	}
	detected := parallelCount(len(res.Mutants), func(i int) bool {
		ok, _ := devilmut.CheckMutant(res, res.Mutants[i], s.Filename)
		return ok
	})
	row.Detected = detected
	return row, nil
}

// DriverTable is the outcome histogram of Table 3 / Table 4.
type DriverTable struct {
	Driver string
	// Rows maps a row label to its mutant count.
	Counts map[string]int
	// SiteSets maps a row label to the set of sites contributing to it.
	SiteSets map[string]map[int]bool
	// TotalSites is the number of mutation sites enumerated.
	TotalSites int
	// TotalMutants is the number of mutants booted (after sampling).
	TotalMutants int
	// Enumerated is the full mutant population before sampling.
	Enumerated int
	// PartitionTableLosses counts runs that destroyed the partition table
	// (the paper's "required re-formatting the disk" anecdote).
	PartitionTableLosses int
}

// Row labels, in the paper's presentation order.
const (
	RowCompile = "Compile-time check"
	RowRuntime = "Run-time check"
	RowCrash   = "Crash"
	RowLoop    = "Infinite loop"
	RowHalt    = "Halt"
	RowDamaged = "Damaged boot"
	RowBoot    = "Boot"
	RowDead    = "Dead code"
)

// RowOrder is the presentation order of driver-table rows.
var RowOrder = []string{
	RowCompile, RowRuntime, RowCrash, RowLoop, RowHalt, RowDamaged, RowBoot, RowDead,
}

// Pct returns a row's share of booted mutants.
func (t *DriverTable) Pct(row string) float64 {
	if t.TotalMutants == 0 {
		return 0
	}
	return 100 * float64(t.Counts[row]) / float64(t.TotalMutants)
}

// Sites returns the number of distinct sites contributing to a row.
func (t *DriverTable) Sites(row string) int { return len(t.SiteSets[row]) }

// DetectedPct is the paper's headline metric: mutants detected either at
// compile time or by a run-time check.
func (t *DriverTable) DetectedPct() float64 {
	if t.TotalMutants == 0 {
		return 0
	}
	return 100 * float64(t.Counts[RowCompile]+t.Counts[RowRuntime]) / float64(t.TotalMutants)
}

// SilentPct is the worst-case metric: mutants that boot with no observable
// effect.
func (t *DriverTable) SilentPct() float64 {
	if t.TotalMutants == 0 {
		return 0
	}
	return 100 * float64(t.Counts[RowBoot]) / float64(t.TotalMutants)
}

// MutationOptions configures a Table 3/4 run.
type MutationOptions struct {
	// SamplePct selects the percentage of mutants to boot (the paper used
	// 25%); 0 or 100 boots everything.
	SamplePct int
	// Seed drives the deterministic sampler.
	Seed uint64
	// Workers overrides the boot worker count (default: GOMAXPROCS).
	Workers int
	// StubMode overrides the Devil stub mode (ablation support).
	StubMode codegen.Mode
	// ForcePermissive downgrades CDevil type checking to plain C rules
	// (ablation: how much of Table 4 comes from strict typing alone).
	ForcePermissive bool
	// Backend selects the hwC execution engine (compiled when empty).
	Backend Backend
}

// Table3 mutates the C IDE driver and boots every (sampled) mutant.
func Table3(opts MutationOptions) (*DriverTable, error) {
	return DriverMutation("ide_c", opts)
}

// Table4 mutates the CDevil IDE driver and boots every (sampled) mutant.
func Table4(opts MutationOptions) (*DriverTable, error) {
	return DriverMutation("ide_devil", opts)
}

// DriverMutation runs the full per-driver mutation experiment (any
// embedded driver — the workload registry routes each one to its
// registered boot rig) as a one-driver campaign against an in-memory
// store, so the serial tables and the sharded, persisted
// `driverlab campaign` runs share execution and aggregation logic end
// to end.
func DriverMutation(driver string, opts MutationOptions) (*DriverTable, error) {
	return RunCampaignTable(driver, opts)
}

// classifyRow maps a boot result to its table row, applying the dead-code
// rule: a clean boot whose mutation site never executed is an irrelevant
// test (§4.2 case 2).
func classifyRow(br *BootResult, site cmut.Site) string {
	if br.CompileDetected() {
		return RowCompile
	}
	if br.Outcome == kernel.OutcomeBoot && !br.Coverage.Covered(site.Pos.Line) {
		return RowDead
	}
	switch br.Outcome {
	case kernel.OutcomeRuntimeCheck:
		return RowRuntime
	case kernel.OutcomeCrash:
		return RowCrash
	case kernel.OutcomeInfiniteLoop:
		return RowLoop
	case kernel.OutcomeHalt:
		return RowHalt
	case kernel.OutcomeDamagedBoot:
		return RowDamaged
	default:
		return RowBoot
	}
}

func selectMutants(n int, opts MutationOptions) []int {
	pct := opts.SamplePct
	if pct <= 0 || pct >= 100 {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		return all
	}
	k := n * pct / 100
	if k < 1 {
		k = 1
	}
	return mutation.Sample(n, k, opts.Seed)
}

// parallelCount runs pred over [0,n) on all cores and counts true results,
// delegating the fan-out to the campaign engine's pool primitive.
func parallelCount(n int, pred func(i int) bool) int {
	results := make([]bool, n)
	campaign.ParallelDo(n, 0, func(i int) { results[i] = pred(i) })
	count := 0
	for _, b := range results {
		if b {
			count++
		}
	}
	return count
}

// FormatTable2 renders Table 2 in the paper's layout.
func FormatTable2(rows []SpecRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: Mutation coverage of the Devil compiler\n")
	fmt.Fprintf(&b, "%-34s %8s %8s %10s %12s\n",
		"", "Lines", "Sites", "Mutants", "% detected")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-34s %8d %8d %10d %11.1f%%\n",
			r.Title, r.Lines, r.Sites, r.Mutants, r.PctDetected())
	}
	return b.String()
}

// FormatDriverTable renders Table 3 or 4 in the paper's layout.
func FormatDriverTable(t *DriverTable, caption string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", caption)
	fmt.Fprintf(&b, "%-22s %8s %10s %12s\n",
		"", "Sites", "Mutants", "% of total")
	inOrder := make(map[string]bool, len(RowOrder))
	for _, row := range RowOrder {
		inOrder[row] = true
		if t.Counts[row] == 0 && (row == RowRuntime || row == RowDead) &&
			t.Driver == "ide_c" {
			continue // the C table has no run-time-check or dead-code rows
		}
		fmt.Fprintf(&b, "%-22s %8d %10d %11.1f%%\n",
			row, t.Sites(row), t.Counts[row], t.Pct(row))
	}
	// Engine-level rows outside the paper's taxonomy (e.g. the campaign's
	// "Harness panic" quarantine row) print only when present, so they
	// are never silently dropped from a report.
	var extra []string
	for row, n := range t.Counts {
		if n > 0 && !inOrder[row] {
			extra = append(extra, row)
		}
	}
	sort.Strings(extra)
	for _, row := range extra {
		fmt.Fprintf(&b, "%-22s %8d %10d %11.1f%%\n",
			row, t.Sites(row), t.Counts[row], t.Pct(row))
	}
	fmt.Fprintf(&b, "%-22s %8d %10d (of %d enumerated)\n",
		"Total", t.TotalSites, t.TotalMutants, t.Enumerated)
	fmt.Fprintf(&b, "Detected (compile or run-time): %.1f%%   Silent boots: %.1f%%   Partition table lost: %d\n",
		t.DetectedPct(), t.SilentPct(), t.PartitionTableLosses)
	return b.String()
}

// SortedRows returns the row labels present in a table, presentation order
// first, for stable test output.
func (t *DriverTable) SortedRows() []string {
	var present []string
	seen := make(map[string]bool)
	for _, r := range RowOrder {
		if t.Counts[r] > 0 {
			present = append(present, r)
			seen[r] = true
		}
	}
	var extra []string
	for r := range t.Counts {
		if !seen[r] {
			extra = append(extra, r)
		}
	}
	sort.Strings(extra)
	return append(present, extra...)
}
