package campaign_test

import (
	"fmt"
	"log"

	"repro/internal/campaign"
)

// toyWorkload is a minimal Workload: one "driver" with four mutants,
// classified by parity. Real campaigns plug in internal/experiment,
// which boots each mutant on a simulated PC.
type toyWorkload struct{}

func (toyWorkload) Expand(spec campaign.Spec) ([]campaign.Meta, []campaign.Task, error) {
	meta := campaign.Meta{Driver: "toy", Sites: 2, Enumerated: 4, Selected: 4}
	var tasks []campaign.Task
	for i := 0; i < 4; i++ {
		tasks = append(tasks, campaign.Task{Driver: "toy", Mutant: i})
	}
	return []campaign.Meta{meta}, tasks, nil
}

func (toyWorkload) NewWorker(spec campaign.Spec) (campaign.Worker, error) {
	return toyWorker{}, nil
}

type toyWorker struct{}

func (toyWorker) Boot(t campaign.Task) (campaign.Outcome, error) {
	row := "Boot"
	if t.Mutant%2 == 1 {
		row = "Crash"
	}
	return campaign.Outcome{Row: row, Site: t.Mutant % 2}, nil
}

func (toyWorker) Close() {}

// ExampleRun executes a campaign against an in-memory store and
// re-derives the outcome histogram purely from the stored records —
// the same records a file store would persist as JSONL.
func ExampleRun() {
	spec := campaign.Spec{Name: "toy", Drivers: []string{"toy"}}
	store := campaign.NewMemStore()
	sum, err := campaign.Run(spec, toyWorkload{}, store, campaign.Options{Workers: 1})
	if err != nil {
		log.Fatal(err)
	}
	tables, _, err := campaign.Aggregate(store.Records())
	if err != nil {
		log.Fatal(err)
	}
	t := tables["toy"]
	fmt.Printf("booted %d of %d: Boot=%d Crash=%d\n",
		sum.Ran, sum.Total, t.Counts["Boot"], t.Counts["Crash"])
	// Output: booted 4 of 4: Boot=2 Crash=2
}
