package clexer_test

import (
	"testing"

	"repro/internal/cdriver/clexer"
	"repro/internal/cdriver/ctoken"
)

func lex(t *testing.T, src string) []ctoken.Token {
	t.Helper()
	toks, errs := clexer.Lex(src)
	if len(errs) != 0 {
		t.Fatalf("lex errors: %v", errs)
	}
	return toks
}

func TestLiteralBases(t *testing.T) {
	toks := lex(t, "10 010 0x10 0 0xffUL 07l")
	want := []ctoken.Kind{ctoken.DecInt, ctoken.OctInt, ctoken.HexInt,
		ctoken.DecInt, ctoken.HexInt, ctoken.OctInt}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens", len(toks))
	}
	for i := range want {
		if toks[i].Kind != want[i] {
			t.Errorf("token %d (%q) = %v, want %v", i, toks[i].Lit, toks[i].Kind, want[i])
		}
	}
}

func TestOperatorMaximalMunch(t *testing.T) {
	toks := lex(t, "a <<= b << c < d <= e == f = g != h ! i")
	var ops []ctoken.Kind
	for _, tok := range toks {
		if tok.Kind != ctoken.Ident {
			ops = append(ops, tok.Kind)
		}
	}
	want := []ctoken.Kind{ctoken.ShlAssign, ctoken.Shl, ctoken.Lt, ctoken.Le,
		ctoken.Eq, ctoken.Assign, ctoken.Ne, ctoken.Not}
	if len(ops) != len(want) {
		t.Fatalf("ops = %v", ops)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Errorf("op %d = %v, want %v", i, ops[i], want[i])
		}
	}
}

func TestDefineDirective(t *testing.T) {
	toks := lex(t, "#define FOO 0x1f0\nint x;")
	if toks[0].Kind != ctoken.HashDefine {
		t.Fatalf("first token = %v", toks[0])
	}
	if toks[1].Kind != ctoken.Ident || toks[1].Lit != "FOO" {
		t.Errorf("name token = %v", toks[1])
	}
	if toks[2].Kind != ctoken.HexInt {
		t.Errorf("body token = %v", toks[2])
	}
	if toks[3].Kind != ctoken.EndDefine {
		t.Errorf("missing EndDefine: %v", toks[3])
	}
	if toks[4].Kind != ctoken.KwInt {
		t.Errorf("after directive: %v", toks[4])
	}
}

func TestDefineAtEOF(t *testing.T) {
	toks := lex(t, "#define FOO 1")
	last := toks[len(toks)-1]
	if last.Kind != ctoken.EndDefine {
		t.Errorf("directive at EOF not closed: %v", last)
	}
}

func TestHwTags(t *testing.T) {
	toks := lex(t, `
int a;
//@hw
int b;
//@endhw
int c;
`)
	tagged := map[string]bool{}
	for _, tok := range toks {
		if tok.Kind == ctoken.Ident {
			tagged[tok.Lit] = tok.Tagged
		}
	}
	if tagged["a"] || !tagged["b"] || tagged["c"] {
		t.Errorf("tagging wrong: %v", tagged)
	}
}

func TestStringsAndChars(t *testing.T) {
	toks := lex(t, `panic("ide: \"timeout\"\n"); x = 'A';`)
	var str, ch ctoken.Token
	for _, tok := range toks {
		switch tok.Kind {
		case ctoken.String:
			str = tok
		case ctoken.CharLit:
			ch = tok
		}
	}
	if str.Lit != "ide: \"timeout\"\n" {
		t.Errorf("string = %q", str.Lit)
	}
	if ch.Lit != "A" {
		t.Errorf("char = %q", ch.Lit)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{
		`"unterminated`,
		`'a`,
		`#include <x>`,
		`0x`,
		`089`, // bad octal
		"/* open",
	} {
		_, errs := clexer.Lex(src)
		if len(errs) == 0 {
			t.Errorf("%q lexed without errors", src)
		}
	}
}

// TestRenderRoundTrip: rendering and re-lexing preserves the stream.
func TestRenderRoundTrip(t *testing.T) {
	src := `#define P 0x1f0
static int f(u8 v)
{
    int t = 0;
    while ((inb(P) & 0x80) != 0) {
        t++;
        if (t > 100) { panic("timeout"); }
    }
    return t;
}
`
	toks := lex(t, src)
	rendered := clexer.Render(toks)
	toks2, errs := clexer.Lex(rendered)
	if len(errs) != 0 {
		t.Fatalf("re-lex: %v\n%s", errs, rendered)
	}
	// Compare ignoring EndDefine bookkeeping positions.
	if len(toks) != len(toks2) {
		t.Fatalf("token count %d -> %d\n%s", len(toks), len(toks2), rendered)
	}
	for i := range toks {
		if toks[i].Kind != toks2[i].Kind || toks[i].Lit != toks2[i].Lit {
			t.Errorf("token %d: %v -> %v", i, toks[i], toks2[i])
		}
	}
}
