// Package campaign turns the paper's evaluation into a scalable batch
// execution engine: a declarative Spec expands into a deterministic
// mutant work-list, the work-list partitions into hash-assigned shards,
// shards execute on a worker pool with per-worker machine reuse, and
// every boot outcome is appended to a Store as one JSONL record.
//
// The record stream — not the in-memory run — is the source of truth:
// an interrupted campaign resumes by skipping mutants the store already
// holds, independent shard runs merge by concatenation and
// deduplication, and the paper's Tables 3/4 are re-derived purely from
// stored records, so a serial run and a 4-way sharded run of the same
// spec aggregate to identical tables.
//
// The package is deliberately free of repository-specific knowledge:
// what a "mutant" is and how one boots comes in through the Workload
// interface (implemented by internal/experiment), so the engine, store,
// sharding and aggregation logic are reusable for any enumerate-execute
// -classify campaign.
package campaign

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
)

// Spec declares one campaign: the cross-product of target drivers with a
// sampling policy and execution knobs. Specs are pure data — the same
// spec always expands to the same work-list — and are persisted as the
// first record of every store so a campaign can be resumed or audited
// from the file alone.
type Spec struct {
	// Name labels the campaign in stores and reports.
	Name string `json:"name"`
	// Drivers lists the embedded driver sources to mutate (e.g. "ide_c",
	// "ide_devil", "busmouse_c", "busmouse_devil", "ne2000_c",
	// "ne2000_devil").
	Drivers []string `json:"drivers"`
	// SamplePct selects the percentage of mutants to boot (the paper used
	// 25); 0 or 100 boots everything.
	SamplePct int `json:"sample_pct"`
	// Seed drives the deterministic sampler.
	Seed uint64 `json:"seed"`
	// Shards is the partition count of the work-list (default 1).
	Shards int `json:"shards,omitempty"`
	// StubMode overrides the Devil stub mode: "", "debug" or "production".
	StubMode string `json:"stub_mode,omitempty"`
	// Permissive downgrades CDevil type checking to plain C rules.
	Permissive bool `json:"permissive,omitempty"`
	// Budget overrides the per-boot watchdog budget when non-zero.
	Budget int64 `json:"budget,omitempty"`
	// Backend forces the hwC execution backend: "" (the block-compiled
	// default), "block", "compiled" (per-statement closures) or "interp"
	// (the tree-walking reference oracle).
	Backend string `json:"backend,omitempty"`
	// Scenarios lists the hardware scenarios to cross the driver list
	// with, making the spec a scenario × driver matrix: every driver's
	// selected mutants boot once per scenario, and records carry the
	// scenario so each cell aggregates separately. Empty (or the single
	// "pristine" entry) is the classic one-cell campaign on unmodified
	// hardware. Scenario names are workload-defined (the experiment
	// workload registers "pristine", "flaky-bus" and "timing", with
	// optional ":param" suffixes); "" and "pristine" are the same cell.
	Scenarios []string `json:"scenarios,omitempty"`
	// Frontend forces the per-mutant front-end strategy: "" (the
	// incremental default), "incremental" or "full" (re-run the whole
	// lex/parse/check/compile pipeline per mutant). An execution
	// strategy, not a workload change: it is excluded from the
	// fingerprint, so a store can be resumed under either front end.
	Frontend string `json:"frontend,omitempty"`
	// FlushEvery overrides the file store's flush interval (records per
	// checkpoint; 0 keeps the store's default). Long campaigns raise it
	// to trade crash-loss window for fewer write(2) calls. A durability
	// knob, not a workload change: excluded from the fingerprint.
	FlushEvery int `json:"flush_every,omitempty"`
	// BootTimeoutMS overrides the per-boot wall-clock deadline in
	// milliseconds (0 keeps the workload's default). The deadline is the
	// harness safety net behind the deterministic step-count watchdog;
	// an execution knob, not a workload change: excluded from the
	// fingerprint.
	BootTimeoutMS int `json:"boot_timeout_ms,omitempty"`
	// Snapshot controls pristine-prefix snapshotting on worker rigs: ""
	// or "on" enables it (the default), "off" forces every boot through
	// the full prefix. An execution knob, not a workload change —
	// restored boots are byte-identical to full boots by construction —
	// so it is excluded from the fingerprint.
	Snapshot string `json:"snapshot,omitempty"`
}

// Normalized returns the spec with defaults applied and the backend
// name canonicalized, so every spelling of the same engine ("" vs
// "block", "tree" vs "interp") expands — and fingerprints — the same.
func (s Spec) Normalized() Spec {
	if s.Shards <= 0 {
		s.Shards = 1
	}
	if s.Name == "" {
		s.Name = "campaign"
	}
	switch s.Backend {
	case "block":
		s.Backend = "" // the default engine
	case "tree", "interpreter":
		s.Backend = "interp"
	}
	if s.Frontend == "incremental" {
		s.Frontend = "" // the default front end
	}
	if s.Snapshot == "on" {
		s.Snapshot = "" // the default
	}
	// Scenario canonicalization: "pristine" and "" name the same cell,
	// duplicates collapse, and a list that is nothing but the pristine
	// cell is the same campaign as no list at all — so every spelling of
	// the classic campaign fingerprints identically to the pre-matrix
	// stores.
	if len(s.Scenarios) > 0 {
		var norm []string
		seen := make(map[string]bool)
		for _, sc := range s.Scenarios {
			if sc == "pristine" {
				sc = ""
			}
			if seen[sc] {
				continue
			}
			seen[sc] = true
			norm = append(norm, sc)
		}
		if len(norm) == 1 && norm[0] == "" {
			norm = nil
		}
		s.Scenarios = norm
	}
	return s
}

// Fingerprint is a stable hash of the normalized spec, stored in every
// spec record; resume and merge refuse stores whose fingerprints differ.
func (s Spec) Fingerprint() string {
	n := s.Normalized()
	n.Shards = 1        // shard count does not change the work-list, only its partition
	n.Frontend = ""     // front-end strategy does not change results (the oracle's guarantee)
	n.FlushEvery = 0    // durability tuning does not change the work-list
	n.BootTimeoutMS = 0 // the wall-clock safety net does not change the work-list
	n.Snapshot = ""     // prefix snapshotting does not change results (byte-identical restores)
	data, err := json.Marshal(n)
	if err != nil {
		return "unhashable"
	}
	h := fnv.New64a()
	h.Write(data)
	return fmt.Sprintf("%016x", h.Sum64())
}

// Task is one unit of campaign work: boot one mutant of one driver.
// Mutant is the absolute mutant ID within the driver's enumeration, so a
// task's identity is stable across runs, shards and resumes.
type Task struct {
	Driver string
	Mutant int
	// Scenario is the hardware scenario cell this boot runs under (""
	// for pristine hardware). Part of the task's stable identity: the
	// same mutant boots once per matrix cell.
	Scenario string
	Shard    int
	// Dedup, when non-empty, identifies the task's mutated token stream
	// exactly. Distinct mutation operators occasionally synthesise
	// byte-identical streams (two literal edits with the same result);
	// tasks sharing a Dedup key within one driver boot once, and the
	// engine records the shared outcome for the rest with dedup_of
	// provenance. The workload only sets Dedup on keys shared by at
	// least two mutants.
	Dedup string
}

// Key is the task's stable identity in stores.
func (t Task) Key() string { return CellKey(t.Driver, t.Mutant, t.Scenario) }

// FaultSeed derives the task's fault-injection seed: an fnv64a hash of
// its stable identity. Scenario injectors reseed from it per boot, so
// the fault pattern a mutant meets is a pure function of the task —
// identical in serial, sharded and resumed runs, on either backend and
// front end, never drawn from global randomness.
func (t Task) FaultSeed() uint64 {
	h := fnv.New64a()
	h.Write([]byte(t.Key()))
	return h.Sum64()
}

// TaskKey builds the stable identity of a pristine (driver, mutant)
// pair — the record key every pre-matrix store used.
func TaskKey(driver string, mutant int) string {
	return fmt.Sprintf("%s#%d", driver, mutant)
}

// CellKey builds the stable identity of a (driver, mutant, scenario)
// boot. The pristine cell keeps the historical two-part key, so matrix
// machinery resumes and merges pre-matrix stores unchanged.
func CellKey(driver string, mutant int, scenario string) string {
	if scenario == "" {
		return TaskKey(driver, mutant)
	}
	return fmt.Sprintf("%s#%d@%s", driver, mutant, scenario)
}

// CellLabel names a (driver, scenario) matrix cell in aggregates,
// status views and reports; the pristine cell is just the driver.
func CellLabel(driver, scenario string) string {
	if scenario == "" {
		return driver
	}
	return driver + "@" + scenario
}

// recordKey is a result record's stable identity — CellKey over its
// driver, mutant and scenario fields.
func recordKey(r Record) string {
	return CellKey(r.Driver, r.Mutant, r.Scenario)
}

// Key is a result record's stable task identity — the same CellKey the
// matching Task carries, so stores, coordinators and workers agree on
// which task a record decides.
func (r Record) Key() string { return recordKey(r) }

// ShardOf assigns a pristine task to a shard by hashing its stable key;
// ShardOfTask is the scenario-aware form.
func ShardOf(driver string, mutant int, shards int) int {
	return ShardOfTask(Task{Driver: driver, Mutant: mutant}, shards)
}

// ShardOfTask assigns a task to a shard by hashing its stable key, so
// the partition is independent of enumeration order and worker count —
// and, for matrix campaigns, spreads each cell independently.
func ShardOfTask(t Task, shards int) int {
	if shards <= 1 {
		return 0
	}
	h := fnv.New64a()
	h.Write([]byte(t.Key()))
	return int(h.Sum64() % uint64(shards))
}

// Meta is the per-cell enumeration metadata a run captures so tables
// can be re-derived from the store without re-enumerating. Scenario is
// "" for the pristine cell.
type Meta struct {
	Driver     string
	Scenario   string
	Sites      int
	Enumerated int
	Selected   int
}

// Record kinds.
const (
	KindSpec   = "spec"   // first record: the campaign spec + fingerprint
	KindMeta   = "meta"   // one per driver: enumeration metadata
	KindResult = "result" // one per booted mutant
)

// RowHarnessPanic is the outcome row of a boot the harness itself blew
// up on: a recovered panic in the worker loop, recorded (and the mutant
// quarantined) instead of killing the campaign. An engine-level row, not
// part of the paper's taxonomy — it signals a harness bug to fix, and
// reports only print it when present.
const RowHarnessPanic = "Harness panic"

// Record is one line of a campaign store. A single flat schema keeps the
// JSONL human-greppable; Kind selects which fields are meaningful.
type Record struct {
	Kind string `json:"kind"`

	// Spec fields (KindSpec).
	Fingerprint string `json:"fingerprint,omitempty"`
	Spec        *Spec  `json:"spec,omitempty"`

	// Driver is set on meta and result records.
	Driver string `json:"driver,omitempty"`
	// Scenario is the matrix cell the record belongs to, on meta and
	// result records ("" — omitted — for the pristine cell, which keeps
	// pre-matrix stores byte-compatible).
	Scenario string `json:"scenario,omitempty"`

	// Meta fields (KindMeta).
	Sites      int `json:"sites,omitempty"`
	Enumerated int `json:"enumerated,omitempty"`
	Selected   int `json:"selected,omitempty"`

	// Result fields (KindResult).
	Mutant int    `json:"mutant"`
	Site   int    `json:"site"`
	Row    string `json:"row,omitempty"`
	Lost   bool   `json:"lost,omitempty"`
	Steps  int64  `json:"steps,omitempty"`
	Shard  int    `json:"shard"`
	// DedupOf, when set, records that this mutant's token stream was
	// byte-identical to the named mutant's, which is the one that
	// actually booted; the outcome fields are copies of its record.
	// Pure provenance: aggregation treats the record like any other.
	DedupOf *int `json:"dedup_of,omitempty"`
	// HarnessPanic marks a quarantined boot: the harness panicked, the
	// engine recovered, and Row is RowHarnessPanic. Panic carries the
	// recovered value's text for forensics.
	HarnessPanic bool   `json:"harness_panic,omitempty"`
	Panic        string `json:"panic,omitempty"`
}

// SpecRecord builds the leading store record for a spec.
func SpecRecord(s Spec) Record {
	n := s.Normalized()
	return Record{Kind: KindSpec, Fingerprint: n.Fingerprint(), Spec: &n}
}

// MetaRecord builds the store record for one cell's enumeration.
func MetaRecord(m Meta) Record {
	return Record{Kind: KindMeta, Driver: m.Driver, Scenario: m.Scenario,
		Sites: m.Sites, Enumerated: m.Enumerated, Selected: m.Selected}
}
