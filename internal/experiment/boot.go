// Package experiment drives the paper's evaluation: it assembles simulated
// machines, compiles (and later mutates) driver sources, boots them, and
// classifies every run into the outcome taxonomy of §4.2.
package experiment

import (
	"fmt"

	"repro/internal/cdriver/cast"
	"repro/internal/cdriver/ccheck"
	"repro/internal/cdriver/cinterp"
	"repro/internal/cdriver/clexer"
	"repro/internal/cdriver/cparser"
	"repro/internal/cdriver/ctoken"
	"repro/internal/cdriver/ctypes"
	"repro/internal/devil"
	"repro/internal/devil/codegen"
	"repro/internal/hw"
	"repro/internal/hw/ide"
	"repro/internal/hw/sysboard"
	"repro/internal/kernel"
	"repro/internal/specs"
)

// Port assignment of the simulated machine, matching the PC convention the
// driver sources hard-code.
const (
	ideCmdBase hw.Port = 0x1f0
	ideCtlBase hw.Port = 0x3f6
)

// Machine is one assembled simulated PC: clock, bus, kernel, IDE controller
// and disk, with a pristine snapshot for the damage audit.
type Machine struct {
	Clock    *hw.Clock
	Bus      *hw.Bus
	Kern     *kernel.Kernel
	Ctrl     *ide.Controller
	Image    *kernel.FSImage
	Pristine *kernel.FSImage
}

// NewMachine builds a machine with the default filesystem image.
func NewMachine() (*Machine, error) {
	img, err := kernel.BuildImage(kernel.DefaultFiles(), 8)
	if err != nil {
		return nil, fmt.Errorf("build image: %w", err)
	}
	pristine := img.Clone()
	clock := &hw.Clock{}
	bus := hw.NewBus()
	// ISA semantics: unmapped ports float, and the fragile system devices
	// (PIC, timer, DMA, CMOS) share the port space — see hw/sysboard.
	bus.SetFloating(true)
	if err := sysboard.MapAll(bus); err != nil {
		return nil, err
	}
	disk := ide.NewDisk("REPRO HARDDISK v1.0", img.Sectors)
	ctrl := ide.NewController(clock, disk)
	if err := bus.Map(ideCmdBase, 8, ctrl); err != nil {
		return nil, err
	}
	if err := bus.Map(ideCtlBase, 1, ctrl.ControlBlock()); err != nil {
		return nil, err
	}
	return &Machine{
		Clock:    clock,
		Bus:      bus,
		Kern:     kernel.New(clock),
		Ctrl:     ctrl,
		Image:    img,
		Pristine: pristine,
	}, nil
}

// Reset returns the machine to its power-on state with a pristine
// filesystem image: sectors restored in place, controller cold-started,
// kernel rewound. A campaign worker calls it between boots so the
// simulated PC and its checksummed disk image are built once per worker
// instead of once per mutant — the engine's hot-path saving.
func (m *Machine) Reset() {
	m.Image.RestoreFrom(m.Pristine)
	m.Ctrl.Reset()
	m.Kern.Reset()
}

// ideSpec caches the compiled IDE specification (it is not mutated in the
// Table 3/4 experiments).
var ideSpec = mustCompileIDE()

func mustCompileIDE() *devil.Spec {
	s, err := specs.Load("ide")
	if err != nil {
		panic(err)
	}
	spec, err := devil.Compile(s.Filename, s.Source)
	if err != nil {
		panic(err)
	}
	return spec
}

// IDEStubs generates IDE stubs bound to the machine's bus.
func (m *Machine) IDEStubs(mode codegen.Mode) (*devil.Stubs, error) {
	return ideSpec.Generate(devil.Config{
		Bus: m.Bus,
		Bases: map[string]hw.Port{
			"cmd":  ideCmdBase,
			"ctl":  ideCtlBase,
			"data": ideCmdBase,
		},
		Mode: mode,
	})
}

// BootInput describes one driver build to boot.
type BootInput struct {
	// Tokens is the (possibly mutated) driver token stream.
	Tokens []ctoken.Token
	// Devil selects the CDevil pipeline: strict typing + generated stubs.
	Devil bool
	// StubMode is the stub generation mode for Devil drivers (Debug when
	// zero, matching the paper's development configuration).
	StubMode codegen.Mode
	// Permissive downgrades the CDevil type checker to plain C rules while
	// keeping the stubs at run time — the weak-typing ablation.
	Permissive bool
	// Budget overrides the watchdog budget when non-zero.
	Budget int64
}

// BootResult is the classified outcome of one build-and-boot.
type BootResult struct {
	// CompileErrors is non-empty when the mutant died at compile time.
	CompileErrors []error
	// Outcome classifies the run (meaningless if CompileErrors is set).
	Outcome kernel.Outcome
	// RunErr is the error the boot terminated with, if any.
	RunErr error
	// Console is the kernel console log.
	Console []string
	// Coverage is the executed-line set (for dead-code classification).
	Coverage map[int]bool
	// Report is the filesystem mount/check report (nil if boot died first).
	Report *kernel.BootReport
	// DamagedSectors lists LBAs the audit found corrupted.
	DamagedSectors []uint32
	// PartitionTableLost mirrors the paper's reformat-the-disk anecdote.
	PartitionTableLost bool
	// Steps is the watchdog step count consumed.
	Steps int64
}

// CompileDetected reports whether the mutant died at compile time.
func (r *BootResult) CompileDetected() bool { return len(r.CompileErrors) > 0 }

// blockAdapter exposes the interpreted driver as a kernel.BlockDriver.
type blockAdapter struct {
	in   *cinterp.Interp
	kern *kernel.Kernel
}

var _ kernel.BlockDriver = (*blockAdapter)(nil)

// ReadSectors implements kernel.BlockDriver.
func (a *blockAdapter) ReadSectors(lba uint32, count int) ([]byte, error) {
	ret, err := a.in.Call("ide_read_sectors",
		cinterp.IntValue(int64(lba)), cinterp.IntValue(int64(count)))
	if err != nil {
		return nil, err
	}
	data := make([]byte, count*kernel.SectorSize)
	if ret.Kind == cinterp.ValInt && ret.I != 0 {
		// The driver reported failure: the kernel logs an I/O error and the
		// zero-filled buffer fails the filesystem checks downstream.
		a.kern.Printk(fmt.Sprintf("ide0: read error at sector %d", lba))
		return data, nil
	}
	copy(data, a.kern.Buf())
	return data, nil
}

// WriteSectors implements kernel.BlockDriver.
func (a *blockAdapter) WriteSectors(lba uint32, data []byte) error {
	copy(a.kern.Buf(), data)
	count := len(data) / kernel.SectorSize
	ret, err := a.in.Call("ide_write_sectors",
		cinterp.IntValue(int64(lba)), cinterp.IntValue(int64(count)))
	if err != nil {
		return err
	}
	if ret.Kind == cinterp.ValInt && ret.I != 0 {
		a.kern.Printk(fmt.Sprintf("ide0: write error at sector %d", lba))
	}
	return nil
}

// Boot compiles and boots one driver build on a freshly built machine.
func Boot(input BootInput) (*BootResult, error) {
	return boot(nil, input)
}

// BootOn compiles and boots one driver build on m, which must be freshly
// built or Reset. Campaign workers use it to amortise machine
// construction across boots.
func BootOn(m *Machine, input BootInput) (*BootResult, error) {
	return boot(m, input)
}

func boot(m *Machine, input BootInput) (*BootResult, error) {
	res := &BootResult{}

	// Phase 1: "compilation" — parse plus type check.
	prog, perrs := cparser.ParseTokens(input.Tokens)
	if len(perrs) > 0 {
		for _, e := range perrs {
			res.CompileErrors = append(res.CompileErrors, e)
		}
		return res, nil
	}

	if m == nil {
		var err error
		m, err = NewMachine()
		if err != nil {
			return nil, err
		}
	}
	if input.Budget > 0 {
		m.Kern.SetBudget(input.Budget)
	}

	env := ctypes.NewEnv(input.Devil && !input.Permissive)
	var stubs *codegen.Stubs
	if input.Devil {
		mode := input.StubMode
		if mode == 0 {
			mode = codegen.Debug
		}
		var err error
		stubs, err = m.IDEStubs(mode)
		if err != nil {
			return nil, err
		}
		if err := env.AddStubs(stubs.Interface()); err != nil {
			return nil, err
		}
	}
	if cerrs := ccheck.Check(prog, env); len(cerrs) > 0 {
		for _, e := range cerrs {
			res.CompileErrors = append(res.CompileErrors, e)
		}
		return res, nil
	}

	// Phase 2: boot the kernel with the driver installed.
	in, err := cinterp.New(prog, env, m.Kern, m.Bus, stubs)
	if err != nil {
		// Global initialiser fault: machine-level failure at insmod time.
		res.Outcome = kernel.Classify(err)
		res.RunErr = err
		return res, nil
	}
	runErr := runBoot(m, in, res)
	res.Console = m.Kern.Console()
	res.Coverage = in.Coverage()
	res.Steps = m.Kern.Steps()
	res.RunErr = runErr
	res.Outcome = kernel.Classify(runErr)
	if runErr == nil {
		damaged, lost := kernel.AuditDisk(m.Image, m.Pristine)
		res.DamagedSectors = damaged
		res.PartitionTableLost = lost
		if (res.Report != nil && res.Report.Damaged()) || len(damaged) > 0 {
			res.Outcome = kernel.OutcomeDamagedBoot
		}
	}
	return res, nil
}

// runBoot performs the boot sequence: driver initialisation, then the
// filesystem mount-and-check through the driver.
func runBoot(m *Machine, in *cinterp.Interp, res *BootResult) error {
	ret, err := in.Call("ide_init")
	if err != nil {
		return err
	}
	if ret.Kind == cinterp.ValInt && ret.I != 0 {
		return m.Kern.Panic("ide: initialisation failed")
	}
	// The driver left the IDENTIFY block in the transfer buffer; the
	// kernel extracts the drive capacity (words 60/61) and uses it to
	// sanity-check the partition, as a real block layer would.
	buf := m.Kern.Buf()
	totalSectors := uint32(buf[120]) | uint32(buf[121])<<8 |
		uint32(buf[122])<<16 | uint32(buf[123])<<24
	adapter := &blockAdapter{in: in, kern: m.Kern}
	rep, err := m.Kern.MountAndCheck(adapter, m.Pristine, totalSectors)
	res.Report = rep
	if err != nil {
		return err
	}
	m.Kern.Printk("boot: reached userspace")
	return nil
}

// ParseDriver lexes a driver source for mutation or direct boot.
func ParseDriver(src string) ([]ctoken.Token, error) {
	toks, errs := clexer.Lex(src)
	if len(errs) > 0 {
		return nil, fmt.Errorf("lex driver: %v", errs[0])
	}
	return toks, nil
}

// Program parses a token stream without checking (test helper).
func Program(toks []ctoken.Token) (*cast.Program, error) {
	prog, errs := cparser.ParseTokens(toks)
	return prog, errs.Err()
}
