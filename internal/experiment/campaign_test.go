package experiment

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/campaign"
	"repro/internal/campaign/fleet"
)

// assertCampaignDeterminism runs the determinism protocol every
// workload's campaign must satisfy: the same spec and seed aggregate
// to byte-identical tables whether the campaign runs serially, sharded
// into separate stores and merged, killed halfway and resumed from the
// JSONL store, or executed on the tree-walking oracle instead of the
// compiled backend. The serial run's aggregated tables are returned
// for workload-specific assertions.
func assertCampaignDeterminism(t *testing.T, spec campaign.Spec) map[string]*campaign.TableData {
	t.Helper()
	wl := NewWorkload()

	render := func(st campaign.Store) (string, map[string]*campaign.TableData) {
		t.Helper()
		tables, order, err := campaign.Aggregate(st.Records())
		if err != nil {
			t.Fatal(err)
		}
		var text string
		for _, d := range order {
			if !tables[d].Complete() {
				t.Fatalf("%s incomplete: %d/%d", d, tables[d].Results, tables[d].Selected)
			}
			text += FormatDriverTable(TableFromCampaign(tables[d]), d)
		}
		return text, tables
	}

	// Serial reference run (one worker, one shard selection: everything).
	serial := campaign.NewMemStore()
	if _, err := campaign.Run(spec, wl, serial, campaign.Options{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	want, tables := render(serial)

	// Sharded: each shard runs into its own file store; merge and compare.
	dir := t.TempDir()
	var stores []campaign.Store
	for sh := 0; sh < spec.Shards; sh++ {
		st, err := campaign.OpenFile(filepath.Join(dir, "shard"+string(rune('0'+sh))+".jsonl"))
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		if _, err := campaign.Run(spec, wl, st, campaign.Options{Shards: []int{sh}}); err != nil {
			t.Fatal(err)
		}
		stores = append(stores, st)
	}
	merged, err := campaign.OpenFile(filepath.Join(dir, "merged.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer merged.Close()
	if err := campaign.Merge(merged, stores...); err != nil {
		t.Fatal(err)
	}
	if got, _ := render(merged); got != want {
		t.Errorf("sharded+merged tables differ from serial:\n--- serial\n%s\n--- sharded\n%s", want, got)
	}

	// Interrupted: keep only a prefix of the serial store (as a kill mid-
	// run would), resume, and compare.
	interrupted, err := campaign.OpenFile(filepath.Join(dir, "interrupted.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer interrupted.Close()
	recs := serial.Records()
	for _, r := range recs[:len(recs)/2] {
		if err := interrupted.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	sum, err := campaign.Run(spec, wl, interrupted, campaign.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Ran == 0 {
		t.Fatal("resume booted nothing; the interruption was not simulated")
	}
	if got, _ := render(interrupted); got != want {
		t.Errorf("resumed tables differ from serial:\n--- serial\n%s\n--- resumed\n%s", want, got)
	}

	// The tree-walking oracle must aggregate to the identical text.
	oracle := spec
	oracle.Backend = "interp"
	ost := campaign.NewMemStore()
	if _, err := campaign.Run(oracle, wl, ost, campaign.Options{}); err != nil {
		t.Fatal(err)
	}
	if got, _ := render(ost); got != want {
		t.Errorf("interp-backend tables differ from compiled:\n--- compiled\n%s\n--- interp\n%s", want, got)
	}

	// Fleet: a loopback coordinator leasing shards to three in-process
	// workers — one deliberately forced onto the full front end while
	// the others run incremental — must converge to the identical text.
	// Shard count is fingerprint-excluded, so the fleet repartitions.
	fleetSpec := spec
	if fleetSpec.Shards < 4 {
		fleetSpec.Shards = 4
	}
	fstore := campaign.NewMemStore()
	co, err := fleet.NewCoordinator(fleet.CoordinatorConfig{
		Spec: fleetSpec, Workload: wl, Store: fstore,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	co.Start(ln)
	defer co.Close()
	var wg sync.WaitGroup
	workerErrs := make([]error, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			opts := fleet.WorkerOptions{Name: fmt.Sprintf("det-w%d", i), Workers: 1}
			if i == 0 {
				opts.Frontend = "full"
			}
			_, workerErrs[i] = fleet.RunWorker(co.Addr(), NewWorkload(), opts)
		}(i)
	}
	wg.Wait()
	for i, werr := range workerErrs {
		if werr != nil {
			t.Fatalf("fleet worker %d: %v", i, werr)
		}
	}
	if err := co.Wait(); err != nil {
		t.Fatal(err)
	}
	if got, _ := render(fstore); got != want {
		t.Errorf("fleet tables differ from serial:\n--- serial\n%s\n--- fleet\n%s", want, got)
	}
	return tables
}

// TestCampaignDeterminism runs the shared protocol over a small,
// seeded sample of the C IDE driver's mutants, sharded four ways.
func TestCampaignDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign determinism test is not short")
	}
	spec := CampaignSpec("ide_c", MutationOptions{SamplePct: 2, Seed: 7})
	spec.Name = "determinism"
	spec.Shards = 4
	assertCampaignDeterminism(t, spec)
}

// TestMachineReuseMatchesFreshBoots: booting through a Reset machine
// must classify identically to booting on a fresh machine — the
// machine-reuse fast path may not leak state between boots.
func TestMachineReuseMatchesFreshBoots(t *testing.T) {
	wl := NewWorkload().(*workload)
	p, err := wl.plan("ide_c")
	if err != nil {
		t.Fatal(err)
	}
	selected := selectMutants(len(p.res.Mutants), MutationOptions{SamplePct: 1, Seed: 3})
	m, err := NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range selected {
		mut := p.res.Mutants[id]
		input := BootInput{Tokens: p.res.Apply(mut), Budget: ExperimentBudget}
		fresh, err := Boot(input)
		if err != nil {
			t.Fatalf("mutant %d: fresh boot: %v", id, err)
		}
		m.Reset()
		reused, err := BootOn(m, input)
		if err != nil {
			t.Fatalf("mutant %d: reused boot: %v", id, err)
		}
		site := p.res.Sites[mut.SiteIndex]
		if classifyRow(fresh, site) != classifyRow(reused, site) {
			t.Errorf("mutant %d: fresh=%s reused=%s", id,
				classifyRow(fresh, site), classifyRow(reused, site))
		}
		if fresh.PartitionTableLost != reused.PartitionTableLost {
			t.Errorf("mutant %d: partition-loss divergence", id)
		}
	}
}

// TestMachineResetRestoresCleanBoot: after a damaging boot, Reset must
// return the machine to a state where the clean driver boots cleanly.
func TestMachineResetRestoresCleanBoot(t *testing.T) {
	res := assertResetRestoresCleanBoot(t, "ide_c", func(m *Rig) {
		// Scribble over the whole image, then Reset.
		for _, s := range m.Dev.(*ideDev).Image.Sectors {
			for i := range s {
				s[i] = 0xaa
			}
		}
	}, nil)
	if len(res.DamagedSectors) != 0 || res.PartitionTableLost {
		t.Errorf("audit found damage after Reset: %v", res.DamagedSectors)
	}
}

// TestCampaignMatrixDeterminism runs the shared determinism protocol
// over a scenario matrix: fault-injected cells must aggregate to
// byte-identical tables across serial, sharded+merged, resumed and
// interp-backend runs, because each boot's fault pattern is seeded from
// the task identity rather than global randomness.
func TestCampaignMatrixDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign matrix determinism test is not short")
	}
	spec := CampaignSpec("busmouse_devil", MutationOptions{SamplePct: 10, Seed: 11})
	spec.Name = "matrix-determinism"
	spec.Shards = 4
	spec.Scenarios = []string{"pristine", "flaky-bus:10", "timing:16"}
	tables := assertCampaignDeterminism(t, spec)
	for _, cell := range []string{"busmouse_devil", "busmouse_devil@flaky-bus:10", "busmouse_devil@timing:16"} {
		if tables[cell] == nil {
			t.Errorf("matrix run produced no %s cell", cell)
		}
	}
}

// TestCampaignMatrixCrashResume is the crash story end to end: a
// fault-injected matrix campaign with a small FlushEvery is killed
// mid-cell — the store is abandoned unclosed with a torn trailing line,
// exactly what SIGKILL leaves behind — and the resumed run must finish
// every cell with tables byte-identical to an uninterrupted campaign.
func TestCampaignMatrixCrashResume(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign crash-resume test is not short")
	}
	spec := CampaignSpec("busmouse_devil", MutationOptions{SamplePct: 10, Seed: 11})
	spec.Name = "matrix-crash"
	spec.Scenarios = []string{"pristine", "flaky-bus:10"}
	spec.FlushEvery = 3
	wl := NewWorkload()

	render := func(st campaign.Store) string {
		t.Helper()
		tables, order, err := campaign.Aggregate(st.Records())
		if err != nil {
			t.Fatal(err)
		}
		var text string
		for _, d := range order {
			if !tables[d].Complete() {
				t.Fatalf("cell %s incomplete after resume: %d/%d", d, tables[d].Results, tables[d].Selected)
			}
			text += FormatDriverTable(TableFromCampaign(tables[d]), d)
		}
		return text
	}

	// Uninterrupted reference.
	reference := campaign.NewMemStore()
	if _, err := campaign.Run(spec, wl, reference, campaign.Options{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	want := render(reference)

	// Kill mid-second-cell: keep a record prefix that cuts inside the
	// flaky-bus cell, so resume must both finish that cell and notice the
	// pristine cell is already complete.
	recs := reference.Records()
	firstFlaky := -1
	for i, r := range recs {
		if r.Kind == campaign.KindResult && r.Scenario != "" {
			firstFlaky = i
			break
		}
	}
	if firstFlaky < 0 || firstFlaky+2 >= len(recs) {
		t.Fatalf("sample too small to cut mid-cell: %d records, first scenario result at %d",
			len(recs), firstFlaky)
	}
	path := filepath.Join(t.TempDir(), "crash.jsonl")
	torn, err := campaign.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs[:firstFlaky+2] {
		if err := torn.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := torn.Close(); err != nil {
		t.Fatal(err)
	}
	// The SIGKILL artefact: a half-written record with no newline.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"kind":"result","driver":"busmouse_de`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	resumed, err := campaign.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	sum, err := campaign.Run(spec, wl, resumed, campaign.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Ran == 0 || sum.Skipped == 0 {
		t.Fatalf("resume summary %+v: the crash cut must leave both done and pending work", sum)
	}
	if got := render(resumed); got != want {
		t.Errorf("resumed matrix tables differ from uninterrupted run:\n--- want\n%s\n--- got\n%s", want, got)
	}
}
