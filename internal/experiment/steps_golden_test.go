package experiment

import (
	"testing"

	"repro/internal/drivers"
	"repro/internal/kernel"
)

// TestGoldenPristineSteps pins the watchdog step count of every embedded
// driver's pristine boot, on all three execution backends.
//
// Step counts were re-based once, when basic-block charging landed: the
// watchdog charges one step per maximal run of straight-line statements
// (plus one per control-flow statement and per loop back edge), in the
// interpreter and both compiled backends alike. These constants pin that
// contract. If a change moves them, it changed the charging semantics —
// which moves every budget-edge mutant's outcome and the device timing
// of every boot — and must re-base deliberately: update the constants,
// note the re-base in the commit, and expect BENCH and table churn.
func TestGoldenPristineSteps(t *testing.T) {
	golden := map[string]int64{
		"busmaster_c":     158,
		"busmaster_devil": 162,
		"busmouse_c":      35,
		"busmouse_devil":  11,
		"ide_c":           13922,
		"ide_devil":       4205,
		"ne2000_c":        1900,
		"ne2000_devil":    536,
		"permedia_c":      1333,
		"permedia_devil":  1333,
	}
	for _, driver := range drivers.Names() {
		want, ok := golden[driver]
		if !ok {
			t.Errorf("%s: no golden step count — pin the new driver here", driver)
			continue
		}
		src, err := drivers.Load(driver)
		if err != nil {
			t.Fatal(err)
		}
		toks, err := ParseDriver(src.Text)
		if err != nil {
			t.Fatal(err)
		}
		for _, backend := range []Backend{BackendInterp, BackendCompiled, BackendBlock} {
			res, err := BootDriver(driver, BootInput{Tokens: toks, Devil: src.Devil, Backend: backend})
			if err != nil {
				t.Fatalf("%s/%s: %v", driver, backend, err)
			}
			if res.Outcome != kernel.OutcomeBoot {
				t.Fatalf("%s/%s: pristine boot outcome = %v (%v)", driver, backend, res.Outcome, res.RunErr)
			}
			if res.Steps != want {
				t.Errorf("%s/%s: pristine boot took %d steps, golden %d", driver, backend, res.Steps, want)
			}
		}
	}
}
