// Package cinterp executes hwC driver code against the simulated machine:
// the hw.Bus for port I/O, the kernel for panics, delays, the transfer
// buffer and the watchdog, and (for CDevil drivers) the generated Devil
// stubs.
//
// Execution is the second half of the paper's per-mutant experiment: a
// mutant that survives compilation is "booted", and the way the run
// terminates — Devil assertion, bus fault, watchdog expiry, panic, or
// clean completion — determines its Table 3/4 row.
//
// The interpreter also records statement-level line coverage, which the
// experiment harness uses to recognise dead-code mutants (a mutation on a
// line the boot never executes cannot be blamed on the driver).
package cinterp

import (
	"fmt"
	"iter"
	"strings"

	"repro/internal/cdriver/cast"
	"repro/internal/cdriver/ccov"
	"repro/internal/cdriver/ctoken"
	"repro/internal/cdriver/ctypes"
	"repro/internal/devil/codegen"
	"repro/internal/hw"
	"repro/internal/kernel"
)

// ValueKind discriminates runtime values.
type ValueKind int

// Runtime value kinds.
const (
	ValInt ValueKind = iota + 1
	ValDevil
	ValString
	ValVoid
)

// Value is one hwC runtime value.
type Value struct {
	Kind  ValueKind
	I     int64
	Devil codegen.Value
	S     string
}

// IntValue builds an integer value.
func IntValue(x int64) Value { return Value{Kind: ValInt, I: x} }

// VoidValue is the result of void calls.
var VoidValue = Value{Kind: ValVoid}

// Truthy reports C truth.
func (v Value) Truthy() bool { return v.Kind == ValInt && v.I != 0 }

// slot is one storage cell: its current value and its declared type, which
// governs C truncation semantics on every store.
type slot struct {
	val Value
	typ cast.CType
}

// Interp executes one parsed driver program.
type Interp struct {
	prog    *cast.Program
	env     *ctypes.Env
	kern    *kernel.Kernel
	bus     *hw.Bus
	stubs   *codegen.Stubs
	globals map[string]*slot
	macros  map[string]cast.Expr
	varSigs map[string]codegen.VarSig
	// coverage records executed source lines.
	coverage *ccov.Set
	depth    int
}

// maxCallDepth bounds recursion (a mutated recursive call crashes like a
// blown kernel stack would).
const maxCallDepth = 64

// New prepares an interpreter. stubs may be nil for plain C drivers.
// Global initialisers run immediately, in declaration order.
func New(prog *cast.Program, env *ctypes.Env, kern *kernel.Kernel, bus *hw.Bus,
	stubs *codegen.Stubs) (*Interp, error) {
	in := &Interp{
		prog:     prog,
		env:      env,
		kern:     kern,
		bus:      bus,
		stubs:    stubs,
		globals:  make(map[string]*slot),
		macros:   make(map[string]cast.Expr),
		varSigs:  make(map[string]codegen.VarSig),
		coverage: &ccov.Set{},
	}
	if stubs != nil {
		for _, sig := range stubs.Interface().Vars {
			in.varSigs[sig.Name] = sig
		}
	}
	for _, d := range prog.Decls {
		switch d := d.(type) {
		case *cast.MacroDecl:
			in.macros[d.Name] = d.Body
		case *cast.VarDecl:
			v := IntValue(0)
			if d.Type.Kind == cast.TypeDevilStruct {
				v = Value{Kind: ValDevil}
			}
			if d.Init != nil {
				iv, err := in.evalIn(nil, d.Init)
				if err != nil {
					return nil, err
				}
				v = truncate(d.Type, iv)
			}
			in.globals[d.Name] = &slot{val: v, typ: d.Type}
		}
	}
	return in, nil
}

// Coverage returns the executed-line set.
func (in *Interp) Coverage() *ccov.Set { return in.coverage }

// CoveredLines iterates the executed lines in ascending order without
// copying the coverage structure.
func (in *Interp) CoveredLines() iter.Seq[int] { return in.coverage.Lines() }

// Covered reports whether a line was executed.
func (in *Interp) Covered(line int) bool { return in.coverage.Covered(line) }

// frame is one call activation.
type frame struct {
	scopes []map[string]*slot
}

func (f *frame) push() { f.scopes = append(f.scopes, make(map[string]*slot)) }
func (f *frame) pop()  { f.scopes = f.scopes[:len(f.scopes)-1] }

func (f *frame) declare(name string, typ cast.CType, v Value) {
	f.scopes[len(f.scopes)-1][name] = &slot{val: v, typ: typ}
}

func (f *frame) lookup(name string) (*slot, bool) {
	for i := len(f.scopes) - 1; i >= 0; i-- {
		if s, ok := f.scopes[i][name]; ok {
			return s, true
		}
	}
	return nil, false
}

// flow is the control-flow signal of statement execution.
type flow int

const (
	flowNormal flow = iota
	flowBreak
	flowContinue
	flowReturn
)

// Call invokes a driver function by name.
func (in *Interp) Call(name string, args ...Value) (Value, error) {
	f := in.prog.Func(name)
	if f == nil {
		return VoidValue, &kernel.CrashError{Cause: fmt.Errorf("call to undefined function %q", name)}
	}
	return in.callFunc(f, args)
}

func (in *Interp) callFunc(f *cast.FuncDecl, args []Value) (Value, error) {
	if in.depth >= maxCallDepth {
		return VoidValue, &kernel.CrashError{Cause: fmt.Errorf("call stack overflow in %q", f.Name)}
	}
	in.depth++
	defer func() { in.depth-- }()
	if len(args) != len(f.Params) {
		return VoidValue, &kernel.CrashError{
			Cause: fmt.Errorf("call of %q with %d args, want %d", f.Name, len(args), len(f.Params)),
		}
	}
	fr := &frame{}
	fr.push()
	for i, p := range f.Params {
		fr.declare(p.Name, p.Type, truncate(p.Type, args[i]))
	}
	fl, ret, err := in.execBlock(fr, f.Body)
	if err != nil {
		return VoidValue, err
	}
	if fl == flowReturn {
		return truncate(f.Result, ret), nil
	}
	return VoidValue, nil
}

func (in *Interp) cover(pos ctoken.Pos) {
	in.coverage.Add(pos.Line)
}

// SimpleStmt reports whether s is a straight-line statement for
// basic-block fusion: in a statement list, a maximal run of consecutive
// simple statements charges ONE watchdog step at run entry instead of
// one per statement. The predicate is the single definition of the
// fusion rule — the compiled backend (ccompile) segments its basic
// blocks with this exact function, so both backends charge identically
// by construction. Control-flow statements (blocks, conditionals,
// loops, switches — and unknown kinds) are not simple: they charge
// their own step, and statements in statement position (a loop body, an
// if branch, a for init/post) always charge individually.
func SimpleStmt(s cast.Stmt) bool {
	switch s.(type) {
	case *cast.DeclStmt, *cast.ExprStmt, *cast.AssignStmt, *cast.IncDecStmt,
		*cast.BreakStmt, *cast.ContinueStmt, *cast.ReturnStmt:
		return true
	}
	return false
}

func (in *Interp) execBlock(fr *frame, b *cast.Block) (flow, Value, error) {
	fr.push()
	defer fr.pop()
	return in.execSeq(fr, b.Stmts)
}

// execSeq executes a statement list with basic-block step accounting:
// one watchdog charge at the head of every maximal run of simple
// statements (see SimpleStmt), one per control-flow statement. When the
// charge at a run's head fails, none of the run's statements execute or
// cover — the compiled backends reproduce exactly this.
func (in *Interp) execSeq(fr *frame, stmts []cast.Stmt) (flow, Value, error) {
	prevSimple := false
	for _, s := range stmts {
		simple := SimpleStmt(s)
		if !simple || !prevSimple {
			if err := in.kern.Step(); err != nil {
				return flowNormal, VoidValue, err
			}
		}
		prevSimple = simple
		fl, v, err := in.stmtBody(fr, s)
		if err != nil || fl != flowNormal {
			return fl, v, err
		}
	}
	return flowNormal, VoidValue, nil
}

// execStmt runs one statement in statement position (a loop body, an if
// branch, a for init/post): its own watchdog charge, then the body.
func (in *Interp) execStmt(fr *frame, s cast.Stmt) (flow, Value, error) {
	if err := in.kern.Step(); err != nil {
		return flowNormal, VoidValue, err
	}
	return in.stmtBody(fr, s)
}

// stmtBody covers the statement's line and executes it, without the
// watchdog charge (the caller decides run-head vs per-statement
// charging).
func (in *Interp) stmtBody(fr *frame, s cast.Stmt) (flow, Value, error) {
	in.cover(s.Pos())
	switch s := s.(type) {
	case *cast.Block:
		return in.execBlock(fr, s)
	case *cast.DeclStmt:
		d := s.Decl
		v := IntValue(0)
		if d.Type.Kind == cast.TypeDevilStruct {
			v = Value{Kind: ValDevil}
		}
		if d.Init != nil {
			iv, err := in.evalIn(fr, d.Init)
			if err != nil {
				return flowNormal, VoidValue, err
			}
			v = truncate(d.Type, iv)
		}
		fr.declare(d.Name, d.Type, v)
	case *cast.ExprStmt:
		if _, err := in.evalIn(fr, s.X); err != nil {
			return flowNormal, VoidValue, err
		}
	case *cast.AssignStmt:
		if err := in.execAssign(fr, s); err != nil {
			return flowNormal, VoidValue, err
		}
	case *cast.IncDecStmt:
		cell, err := in.loadSlot(fr, s.X)
		if err != nil {
			return flowNormal, VoidValue, err
		}
		delta := int64(1)
		if s.Op == ctoken.MinusMinus {
			delta = -1
		}
		cell.val = truncate(cell.typ, IntValue(cell.val.I+delta))
	case *cast.IfStmt:
		cond, err := in.evalIn(fr, s.Cond)
		if err != nil {
			return flowNormal, VoidValue, err
		}
		if cond.Truthy() {
			return in.execStmt(fr, s.Then)
		}
		if s.Else != nil {
			return in.execStmt(fr, s.Else)
		}
	case *cast.WhileStmt:
		for {
			cond, err := in.evalIn(fr, s.Cond)
			if err != nil {
				return flowNormal, VoidValue, err
			}
			if !cond.Truthy() {
				break
			}
			fl, v, err := in.execStmt(fr, s.Body)
			if err != nil {
				return flowNormal, VoidValue, err
			}
			if fl == flowBreak {
				break
			}
			if fl == flowReturn {
				return fl, v, nil
			}
			if err := in.kern.Step(); err != nil {
				return flowNormal, VoidValue, err
			}
		}
	case *cast.DoWhileStmt:
		for {
			fl, v, err := in.execStmt(fr, s.Body)
			if err != nil {
				return flowNormal, VoidValue, err
			}
			if fl == flowBreak {
				break
			}
			if fl == flowReturn {
				return fl, v, nil
			}
			cond, err := in.evalIn(fr, s.Cond)
			if err != nil {
				return flowNormal, VoidValue, err
			}
			if !cond.Truthy() {
				break
			}
			if err := in.kern.Step(); err != nil {
				return flowNormal, VoidValue, err
			}
		}
	case *cast.ForStmt:
		fr.push()
		defer fr.pop()
		if s.Init != nil {
			if fl, v, err := in.execStmt(fr, s.Init); err != nil || fl != flowNormal {
				return fl, v, err
			}
		}
		for {
			if s.Cond != nil {
				cond, err := in.evalIn(fr, s.Cond)
				if err != nil {
					return flowNormal, VoidValue, err
				}
				if !cond.Truthy() {
					break
				}
			}
			fl, v, err := in.execStmt(fr, s.Body)
			if err != nil {
				return flowNormal, VoidValue, err
			}
			if fl == flowBreak {
				break
			}
			if fl == flowReturn {
				return fl, v, nil
			}
			if s.Post != nil {
				if fl, v, err := in.execStmt(fr, s.Post); err != nil || fl == flowReturn {
					return fl, v, err
				}
			}
			if err := in.kern.Step(); err != nil {
				return flowNormal, VoidValue, err
			}
		}
	case *cast.SwitchStmt:
		return in.execSwitch(fr, s)
	case *cast.BreakStmt:
		return flowBreak, VoidValue, nil
	case *cast.ContinueStmt:
		return flowContinue, VoidValue, nil
	case *cast.ReturnStmt:
		if s.X == nil {
			return flowReturn, VoidValue, nil
		}
		v, err := in.evalIn(fr, s.X)
		if err != nil {
			return flowNormal, VoidValue, err
		}
		return flowReturn, v, nil
	}
	return flowNormal, VoidValue, nil
}

func (in *Interp) execSwitch(fr *frame, s *cast.SwitchStmt) (flow, Value, error) {
	tag, err := in.evalIn(fr, s.Tag)
	if err != nil {
		return flowNormal, VoidValue, err
	}
	var chosen *cast.CaseClause
	var deflt *cast.CaseClause
	for _, cl := range s.Clauses {
		if cl.Values == nil {
			deflt = cl
			continue
		}
		for _, vx := range cl.Values {
			v, err := in.evalIn(fr, vx)
			if err != nil {
				return flowNormal, VoidValue, err
			}
			if v.I == tag.I {
				chosen = cl
				break
			}
		}
		if chosen != nil {
			break
		}
	}
	if chosen == nil {
		chosen = deflt
	}
	if chosen == nil {
		return flowNormal, VoidValue, nil
	}
	in.cover(chosen.CasePos)
	fr.push()
	defer fr.pop()
	prevSimple := false
	for _, st := range chosen.Stmts {
		simple := SimpleStmt(st)
		if !simple || !prevSimple {
			if err := in.kern.Step(); err != nil {
				return flowNormal, VoidValue, err
			}
		}
		prevSimple = simple
		fl, v, err := in.stmtBody(fr, st)
		if err != nil {
			return flowNormal, VoidValue, err
		}
		switch fl {
		case flowBreak:
			return flowNormal, VoidValue, nil
		case flowReturn, flowContinue:
			return fl, v, nil
		}
	}
	return flowNormal, VoidValue, nil
}

// loadSlot resolves a variable's storage cell.
func (in *Interp) loadSlot(fr *frame, id *cast.Ident) (*slot, error) {
	if fr != nil {
		if s, ok := fr.lookup(id.Name); ok {
			return s, nil
		}
	}
	if s, ok := in.globals[id.Name]; ok {
		return s, nil
	}
	return nil, &kernel.CrashError{
		Cause: fmt.Errorf("read of undefined variable %q", id.Name),
	}
}

func (in *Interp) execAssign(fr *frame, s *cast.AssignStmt) error {
	rhs, err := in.evalIn(fr, s.RHS)
	if err != nil {
		return err
	}
	cell, err := in.loadSlot(fr, s.LHS)
	if err != nil {
		return err
	}
	if s.Op == ctoken.Assign {
		// Direct assignment: Devil values flow through unchanged.
		if cell.val.Kind == ValDevil || rhs.Kind == ValDevil {
			cell.val = rhs
			return nil
		}
		cell.val = truncate(cell.typ, IntValue(rhs.I))
		return nil
	}
	cur := cell.val
	var res int64
	switch s.Op {
	case ctoken.OrAssign:
		res = cur.I | rhs.I
	case ctoken.AndAssign:
		res = cur.I & rhs.I
	case ctoken.XorAssign:
		res = cur.I ^ rhs.I
	case ctoken.ShlAssign:
		res = cur.I << uint(rhs.I&63)
	case ctoken.ShrAssign:
		res = cur.I >> uint(rhs.I&63)
	case ctoken.AddAssign:
		res = cur.I + rhs.I
	case ctoken.SubAssign:
		res = cur.I - rhs.I
	default:
		return &kernel.CrashError{Cause: fmt.Errorf("bad assignment operator %s", s.Op)}
	}
	cell.val = truncate(cell.typ, IntValue(res))
	return nil
}

// Truncate applies C storage semantics for the declared type. It is
// exported so the compiled backend shares the exact store semantics.
func Truncate(t cast.CType, v Value) Value { return truncate(t, v) }

// truncate applies C storage semantics for the declared type.
func truncate(t cast.CType, v Value) Value {
	if v.Kind != ValInt {
		return v
	}
	x := v.I
	switch t.Kind {
	case cast.TypeU8:
		x = int64(uint8(x))
	case cast.TypeU16:
		x = int64(uint16(x))
	case cast.TypeU32:
		x = int64(uint32(x))
	case cast.TypeS8:
		x = int64(int8(x))
	case cast.TypeS16:
		x = int64(int16(x))
	case cast.TypeInt, cast.TypeS32:
		x = int64(int32(x))
	}
	return IntValue(x)
}

func (in *Interp) evalIn(fr *frame, x cast.Expr) (Value, error) {
	in.cover(x.Pos())
	switch x := x.(type) {
	case *cast.IntLit:
		return IntValue(x.Value), nil
	case *cast.StringLit:
		return Value{Kind: ValString, S: x.Value}, nil
	case *cast.Ident:
		return in.evalIdent(fr, x)
	case *cast.CallExpr:
		return in.evalCall(fr, x)
	case *cast.UnaryExpr:
		v, err := in.evalIn(fr, x.X)
		if err != nil {
			return VoidValue, err
		}
		switch x.Op {
		case ctoken.Not:
			if v.Truthy() {
				return IntValue(0), nil
			}
			return IntValue(1), nil
		case ctoken.BitNot:
			return IntValue(^v.I), nil
		case ctoken.Sub:
			return IntValue(-v.I), nil
		}
		return VoidValue, &kernel.CrashError{Cause: fmt.Errorf("bad unary operator %s", x.Op)}
	case *cast.BinaryExpr:
		return in.evalBinary(fr, x)
	case *cast.CondExpr:
		cond, err := in.evalIn(fr, x.Cond)
		if err != nil {
			return VoidValue, err
		}
		if cond.Truthy() {
			return in.evalIn(fr, x.Then)
		}
		return in.evalIn(fr, x.Else)
	case *cast.CastExpr:
		v, err := in.evalIn(fr, x.X)
		if err != nil {
			return VoidValue, err
		}
		return truncate(x.To, v), nil
	}
	return VoidValue, &kernel.CrashError{Cause: fmt.Errorf("unknown expression at %s", x.Pos())}
}

// evalIdent resolves an identifier: local, global, macro (lazily
// evaluated), or Devil enum constant.
func (in *Interp) evalIdent(fr *frame, id *cast.Ident) (Value, error) {
	if fr != nil {
		if s, ok := fr.lookup(id.Name); ok {
			return s.val, nil
		}
	}
	if s, ok := in.globals[id.Name]; ok {
		return s.val, nil
	}
	if body, ok := in.macros[id.Name]; ok {
		if in.depth >= maxCallDepth {
			return VoidValue, &kernel.CrashError{
				Cause: fmt.Errorf("macro expansion too deep at %q", id.Name),
			}
		}
		in.depth++
		v, err := in.evalIn(fr, body)
		in.depth--
		return v, err
	}
	if in.stubs != nil {
		if cv, ok := in.stubs.Const(id.Name); ok {
			return Value{Kind: ValDevil, Devil: cv}, nil
		}
	}
	return VoidValue, &kernel.CrashError{
		Cause: fmt.Errorf("use of undefined identifier %q", id.Name),
	}
}

func (in *Interp) evalBinary(fr *frame, x *cast.BinaryExpr) (Value, error) {
	// Short-circuit operators first.
	if x.Op == ctoken.LAnd || x.Op == ctoken.LOr {
		l, err := in.evalIn(fr, x.X)
		if err != nil {
			return VoidValue, err
		}
		if x.Op == ctoken.LAnd && !l.Truthy() {
			return IntValue(0), nil
		}
		if x.Op == ctoken.LOr && l.Truthy() {
			return IntValue(1), nil
		}
		r, err := in.evalIn(fr, x.Y)
		if err != nil {
			return VoidValue, err
		}
		if r.Truthy() {
			return IntValue(1), nil
		}
		return IntValue(0), nil
	}
	l, err := in.evalIn(fr, x.X)
	if err != nil {
		return VoidValue, err
	}
	r, err := in.evalIn(fr, x.Y)
	if err != nil {
		return VoidValue, err
	}
	a, b := l.I, r.I
	boolVal := func(ok bool) (Value, error) {
		if ok {
			return IntValue(1), nil
		}
		return IntValue(0), nil
	}
	switch x.Op {
	case ctoken.Or:
		return IntValue(a | b), nil
	case ctoken.Xor:
		return IntValue(a ^ b), nil
	case ctoken.And:
		return IntValue(a & b), nil
	case ctoken.Shl:
		return IntValue(a << uint(b&63)), nil
	case ctoken.Shr:
		return IntValue(a >> uint(b&63)), nil
	case ctoken.Add:
		return IntValue(a + b), nil
	case ctoken.Sub:
		return IntValue(a - b), nil
	case ctoken.Mul:
		return IntValue(a * b), nil
	case ctoken.Div:
		if b == 0 {
			return VoidValue, &kernel.CrashError{Cause: fmt.Errorf("division by zero at %s", x.OpPos)}
		}
		return IntValue(a / b), nil
	case ctoken.Mod:
		if b == 0 {
			return VoidValue, &kernel.CrashError{Cause: fmt.Errorf("division by zero at %s", x.OpPos)}
		}
		return IntValue(a % b), nil
	case ctoken.Eq:
		return boolVal(a == b)
	case ctoken.Ne:
		return boolVal(a != b)
	case ctoken.Lt:
		return boolVal(a < b)
	case ctoken.Gt:
		return boolVal(a > b)
	case ctoken.Le:
		return boolVal(a <= b)
	case ctoken.Ge:
		return boolVal(a >= b)
	}
	return VoidValue, &kernel.CrashError{Cause: fmt.Errorf("bad binary operator %s", x.Op)}
}

func (in *Interp) evalCall(fr *frame, x *cast.CallExpr) (Value, error) {
	// Driver-defined functions take priority over builtins of the same
	// name (the checker rejects such shadowing anyway).
	if f := in.prog.Func(x.Name); f != nil {
		args := make([]Value, len(x.Args))
		for i, a := range x.Args {
			v, err := in.evalIn(fr, a)
			if err != nil {
				return VoidValue, err
			}
			args[i] = v
		}
		return in.callFunc(f, args)
	}
	args := make([]Value, len(x.Args))
	for i, a := range x.Args {
		v, err := in.evalIn(fr, a)
		if err != nil {
			return VoidValue, err
		}
		args[i] = v
	}
	return in.builtin(x, args)
}

func (in *Interp) builtin(x *cast.CallExpr, args []Value) (Value, error) {
	argInt := func(i int) int64 {
		if i < len(args) {
			return args[i].I
		}
		return 0
	}
	switch x.Name {
	case "inb":
		v, err := in.bus.Read(hw.Port(argInt(0)), hw.Width8)
		return IntValue(int64(v)), err
	case "inw":
		v, err := in.bus.Read(hw.Port(argInt(0)), hw.Width16)
		return IntValue(int64(v)), err
	case "inl":
		v, err := in.bus.Read(hw.Port(argInt(0)), hw.Width32)
		return IntValue(int64(v)), err
	case "outb":
		return VoidValue, in.bus.Write(hw.Port(argInt(1)), hw.Width8, uint32(argInt(0)))
	case "outw":
		return VoidValue, in.bus.Write(hw.Port(argInt(1)), hw.Width16, uint32(argInt(0)))
	case "outl":
		return VoidValue, in.bus.Write(hw.Port(argInt(1)), hw.Width32, uint32(argInt(0)))
	case "panic":
		msg := "panic"
		if len(args) > 0 && args[0].Kind == ValString {
			msg = args[0].S
		}
		return VoidValue, in.kern.Panic(fmt.Sprintf("%s (at %s)", msg, x.NamePos))
	case "printk":
		in.kern.Printk(FormatPrintk(args))
		return VoidValue, nil
	case "udelay":
		return VoidValue, in.kern.Delay(argInt(0))
	case "kbuf_read8":
		v, err := in.kern.BufRead8(argInt(0))
		return IntValue(int64(v)), err
	case "kbuf_write8":
		return VoidValue, in.kern.BufWrite8(argInt(0), uint8(argInt(1)))
	case "kbuf_read16":
		v, err := in.kern.BufRead16(argInt(0))
		return IntValue(int64(v)), err
	case "kbuf_write16":
		return VoidValue, in.kern.BufWrite16(argInt(0), uint16(argInt(1)))
	case "dil_eq":
		return in.dilEq(args)
	}
	if in.stubs != nil {
		if v, handled, err := in.stubCall(x.Name, args); handled {
			return v, err
		}
	}
	return VoidValue, &kernel.CrashError{
		Cause: fmt.Errorf("call to undefined function %q at %s", x.Name, x.NamePos),
	}
}

// dilEq implements the run-time typed comparison of the paper's dil_eq
// macro.
func (in *Interp) dilEq(args []Value) (Value, error) {
	if in.stubs == nil || len(args) != 2 {
		return VoidValue, &kernel.CrashError{Cause: fmt.Errorf("dil_eq without stubs")}
	}
	toDevil := func(v Value) codegen.Value {
		if v.Kind == ValDevil {
			return v.Devil
		}
		return codegen.UntypedInt(v.I)
	}
	eq, err := in.stubs.Eq(toDevil(args[0]), toDevil(args[1]))
	if err != nil {
		return VoidValue, err
	}
	if eq {
		return IntValue(1), nil
	}
	return IntValue(0), nil
}

// stubCall dispatches get_X/set_X calls to the generated stubs, converting
// between hwC values and Devil values per the variable's kind.
func (in *Interp) stubCall(name string, args []Value) (Value, bool, error) {
	switch {
	case strings.HasPrefix(name, "get_block_"), strings.HasPrefix(name, "set_block_"):
		return in.blockCall(name, args)
	case strings.HasPrefix(name, "get_"):
		varName := name[len("get_"):]
		sig, ok := in.varSigs[varName]
		if !ok {
			return VoidValue, false, nil
		}
		dv, err := in.stubs.Get(varName)
		if err != nil {
			return VoidValue, true, err
		}
		if sig.Kind == codegen.KindEnum {
			return Value{Kind: ValDevil, Devil: dv}, true, nil
		}
		x := int64(dv.Val)
		if sig.Kind == codegen.KindSignedInt && sig.Width > 0 && sig.Width < 64 {
			// Sign-extend the raw field.
			shift := uint(64 - sig.Width)
			x = x << shift >> shift
		}
		return IntValue(x), true, nil
	case strings.HasPrefix(name, "set_"):
		varName := name[len("set_"):]
		sig, ok := in.varSigs[varName]
		if !ok {
			return VoidValue, false, nil
		}
		var dv codegen.Value
		if len(args) == 1 && args[0].Kind == ValDevil {
			dv = args[0].Devil
		} else if len(args) == 1 {
			dv = codegen.UntypedInt(args[0].I)
		}
		_ = sig
		return VoidValue, true, in.stubs.Set(varName, dv)
	}
	return VoidValue, false, nil
}

// blockCall implements the block-transfer stubs generated for FIFO
// variables: get_block_X(off, count) reads count values from the device
// variable into the transfer buffer at byte offset off; set_block_X writes
// them back out. One watchdog step is charged per element, so a mutated
// count cannot stall the machine unnoticed.
func (in *Interp) blockCall(name string, args []Value) (Value, bool, error) {
	reading := strings.HasPrefix(name, "get_block_")
	varName := strings.TrimPrefix(strings.TrimPrefix(name, "get_block_"), "set_block_")
	sig, ok := in.varSigs[varName]
	if !ok || !sig.Block {
		return VoidValue, false, nil
	}
	if len(args) != 2 {
		return VoidValue, true, &kernel.CrashError{
			Cause: fmt.Errorf("%s: wrong argument count", name),
		}
	}
	off, count := args[0].I, args[1].I
	elem := int64(sig.Width / 8)
	for k := int64(0); k < count; k++ {
		if err := in.kern.Step(); err != nil {
			return VoidValue, true, err
		}
		byteOff := off + k*elem
		if reading {
			dv, err := in.stubs.Get(varName)
			if err != nil {
				return VoidValue, true, err
			}
			var werr error
			if elem == 2 {
				werr = in.kern.BufWrite16(byteOff, uint16(dv.Val))
			} else {
				if werr = in.kern.BufWrite16(byteOff, uint16(dv.Val)); werr == nil {
					werr = in.kern.BufWrite16(byteOff+2, uint16(dv.Val>>16))
				}
			}
			if werr != nil {
				return VoidValue, true, werr
			}
			continue
		}
		var val uint32
		if elem == 2 {
			w, err := in.kern.BufRead16(byteOff)
			if err != nil {
				return VoidValue, true, err
			}
			val = uint32(w)
		} else {
			lo, err := in.kern.BufRead16(byteOff)
			if err != nil {
				return VoidValue, true, err
			}
			hi, err := in.kern.BufRead16(byteOff + 2)
			if err != nil {
				return VoidValue, true, err
			}
			val = uint32(lo) | uint32(hi)<<16
		}
		if err := in.stubs.Set(varName, codegen.UntypedInt(int64(val))); err != nil {
			return VoidValue, true, err
		}
	}
	return VoidValue, true, nil
}

// FormatPrintk renders a printk call: %d, %x, %s and %% are supported. It
// is exported so the compiled backend (ccompile) produces byte-identical
// console output.
func FormatPrintk(args []Value) string {
	if len(args) == 0 || args[0].Kind != ValString {
		return ""
	}
	format := args[0].S
	rest := args[1:]
	var b strings.Builder
	ai := 0
	for i := 0; i < len(format); i++ {
		if format[i] != '%' || i+1 >= len(format) {
			b.WriteByte(format[i])
			continue
		}
		i++
		switch format[i] {
		case 'd':
			if ai < len(rest) {
				fmt.Fprintf(&b, "%d", rest[ai].I)
				ai++
			}
		case 'x':
			if ai < len(rest) {
				fmt.Fprintf(&b, "%x", uint64(rest[ai].I))
				ai++
			}
		case 's':
			if ai < len(rest) {
				b.WriteString(rest[ai].S)
				ai++
			}
		case '%':
			b.WriteByte('%')
		default:
			b.WriteByte('%')
			b.WriteByte(format[i])
		}
	}
	return b.String()
}
