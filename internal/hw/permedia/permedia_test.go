package permedia_test

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/hw/permedia"
)

func newRig(t *testing.T) (*hw.Bus, *hw.Clock, *permedia.GPU) {
	t.Helper()
	clock := &hw.Clock{}
	bus := hw.NewBus()
	gpu := permedia.New(clock)
	if err := bus.Map(0x8000, 24, gpu.Control()); err != nil {
		t.Fatal(err)
	}
	if err := bus.Map(0x9000, 1, gpu.FIFO()); err != nil {
		t.Fatal(err)
	}
	return bus, clock, gpu
}

func TestSoftwareReset(t *testing.T) {
	bus, clock, _ := newRig(t)
	if err := bus.Out32(0x8009, 0xdead); err != nil { // scribble ScreenBase
		t.Fatal(err)
	}
	if err := bus.Out32(0x8000, 1); err != nil { // trigger reset
		t.Fatal(err)
	}
	v, _ := bus.In32(0x8000)
	if v>>31 != 1 {
		t.Fatalf("reset not in progress: %#x", v)
	}
	clock.Tick(200)
	v, _ = bus.In32(0x8000)
	if v>>31 != 0 {
		t.Errorf("reset still pending after delay: %#x", v)
	}
	v, _ = bus.In32(0x8009)
	if v != 0 {
		t.Errorf("registers not cleared by reset: ScreenBase=%#x", v)
	}
}

func TestFIFOFlowControl(t *testing.T) {
	bus, clock, gpu := newRig(t)
	space, _ := bus.In32(0x8003)
	if space == 0 {
		t.Fatal("no FIFO space at power-on")
	}
	for i := uint32(0); i < space; i++ {
		if err := bus.Out32(0x9000, i); err != nil {
			t.Fatal(err)
		}
	}
	if s, _ := bus.In32(0x8003); s != 0 {
		t.Errorf("FIFO space after filling = %d, want 0", s)
	}
	// Overflow raises the error interrupt.
	if err := bus.Out32(0x9000, 0xffffffff); err != nil {
		t.Fatal(err)
	}
	if flags, _ := bus.In32(0x8002); flags&permedia.IntError == 0 {
		t.Errorf("overflow did not raise error interrupt: %#x", flags)
	}
	// The core drains the FIFO over time.
	clock.Tick(16)
	if s, _ := bus.In32(0x8003); s == 0 {
		t.Error("core did not drain the FIFO")
	}
	if gpu.Drained() == 0 {
		t.Error("drain counter did not advance")
	}
}

func TestVerticalRetraceInterrupt(t *testing.T) {
	bus, clock, _ := newRig(t)
	if err := bus.Out32(0x8010, 100); err != nil { // VTotal
		t.Fatal(err)
	}
	if err := bus.Out32(0x8014, 1); err != nil { // VideoControl: enable
		t.Fatal(err)
	}
	clock.Tick(150)
	line, _ := bus.In32(0x8015)
	if line == 0 || line >= 100 {
		t.Errorf("line counter = %d, want 1..99", line)
	}
	if flags, _ := bus.In32(0x8002); flags&permedia.IntVRetrace == 0 {
		t.Errorf("no vertical retrace interrupt after a full frame: %#x", flags)
	}
	// Write-1-to-clear.
	if err := bus.Out32(0x8002, permedia.IntVRetrace); err != nil {
		t.Fatal(err)
	}
	if flags, _ := bus.In32(0x8002); flags&permedia.IntVRetrace != 0 {
		t.Error("retrace flag survived clear")
	}
}

func TestDMACompletionInterrupt(t *testing.T) {
	bus, clock, _ := newRig(t)
	if err := bus.Out32(0x8005, 0x1000); err != nil { // DMAAddress
		t.Fatal(err)
	}
	if err := bus.Out32(0x8006, 64); err != nil { // DMACount
		t.Fatal(err)
	}
	clock.Tick(16)
	if cnt, _ := bus.In32(0x8006); cnt != 0 {
		t.Errorf("DMA count did not drain: %d", cnt)
	}
	if flags, _ := bus.In32(0x8002); flags&permedia.IntDMA == 0 {
		t.Errorf("DMA completion interrupt missing: %#x", flags)
	}
}
