// idedisk: drive the simulated PIIX4 IDE disk entirely through Devil
// stubs — soft reset, IDENTIFY, and a partition-table read — mirroring
// what the re-engineered Linux driver of the evaluation does at boot.
//
// Note what is absent: port numbers, status masks, and the four-way LBA
// split. set_Lba writes one 28-bit device variable; the generated stub
// distributes it over the drive/head, cylinder and sector registers.
package main

import (
	"fmt"
	"log"

	"repro/internal/devil"
	"repro/internal/hw"
	"repro/internal/hw/ide"
	"repro/internal/kernel"
	"repro/internal/specs"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Assemble the machine: a disk image with a partition table, behind a
	// PIIX4-style controller at the PC-standard ports.
	img, err := kernel.BuildImage(kernel.DefaultFiles(), 8)
	if err != nil {
		return err
	}
	clock := &hw.Clock{}
	bus := hw.NewBus()
	disk := ide.NewDisk("DEVIL EXAMPLE DISK", img.Sectors)
	ctrl := ide.NewController(clock, disk)
	if err := bus.Map(0x1f0, 8, ctrl); err != nil {
		return err
	}
	if err := bus.Map(0x3f6, 1, ctrl.ControlBlock()); err != nil {
		return err
	}

	// Compile the specification and generate debug stubs.
	src, err := specs.Load("ide")
	if err != nil {
		return err
	}
	spec, err := devil.Compile(src.Filename, src.Source)
	if err != nil {
		return err
	}
	stubs, err := spec.Generate(devil.Config{
		Bus:   bus,
		Bases: map[string]hw.Port{"cmd": 0x1f0, "ctl": 0x3f6, "data": 0x1f0},
		Mode:  devil.Debug,
	})
	if err != nil {
		return err
	}
	c := constants(stubs)

	set := func(name string, v devil.Value) {
		if err := stubs.Set(name, v); err != nil {
			log.Fatalf("set %s: %v", name, err)
		}
	}
	// waitWhile polls a status variable until it stops matching want.
	waitWhile := func(varName string, want devil.Value) error {
		for i := 0; i < 10_000; i++ {
			got, err := stubs.Get(varName)
			if err != nil {
				return err
			}
			if eq, err := stubs.Eq(got, want); err != nil {
				return err
			} else if !eq {
				return nil
			}
			clock.Tick(1)
		}
		return fmt.Errorf("timeout waiting on %s", varName)
	}

	// Soft reset, exactly as the CDevil driver does it.
	set("IrqControl", c["IRQ_DISABLE"])
	set("SoftReset", c["ASSERT_RESET"])
	clock.Tick(100)
	set("SoftReset", c["RELEASE_RESET"])
	if err := waitWhile("Busy", c["BUSY"]); err != nil {
		return err
	}
	set("Drive", c["MASTER"])
	set("AddressMode", c["LBA_MODE"])
	fmt.Println("ide: reset complete, master selected")

	// IDENTIFY: 256 words through the DataWord variable.
	set("Command", c["CMD_IDENTIFY"])
	if err := waitWhile("DataRequest", c["NO_DRQ"]); err != nil {
		return err
	}
	identify := make([]uint16, 256)
	for i := range identify {
		w, err := stubs.Get("DataWord")
		if err != nil {
			return err
		}
		identify[i] = uint16(w.Val)
	}
	total := uint32(identify[60]) | uint32(identify[61])<<16
	fmt.Printf("ide: identified drive: %d cylinders, %d heads, %d sectors (total %d LBAs)\n",
		identify[1], identify[3], identify[6], total)

	// Read the partition table: LBA 0 via the concatenated Lba variable.
	set("SectorCount", devil.Value{Val: 1, Raw: 1})
	set("Lba", devil.Value{Val: 0})
	set("Command", c["CMD_READ_SECTORS"])
	if err := waitWhile("DataRequest", c["NO_DRQ"]); err != nil {
		return err
	}
	sector := make([]byte, 512)
	for i := 0; i < 256; i++ {
		w, err := stubs.Get("DataWord")
		if err != nil {
			return err
		}
		sector[2*i] = byte(w.Val)
		sector[2*i+1] = byte(w.Val >> 8)
	}
	if sector[510] == 0x55 && sector[511] == 0xaa {
		fmt.Println("ide: valid partition table magic 55 AA")
	} else {
		return fmt.Errorf("bad partition table magic % x", sector[510:512])
	}
	fmt.Printf("ide: partition starts at LBA %d\n",
		uint32(sector[454])|uint32(sector[455])<<8|uint32(sector[456])<<16|uint32(sector[457])<<24)
	return nil
}

// constants collects every enum constant of the stub set.
func constants(stubs *devil.Stubs) map[string]devil.Value {
	out := make(map[string]devil.Value)
	for _, name := range stubs.ConstNames() {
		v, _ := stubs.Const(name)
		out[name] = v
	}
	return out
}
