#!/bin/sh
# fleet_smoke.sh — the end-to-end fleet exercise CI runs: build
# driverlab with the race detector, run one small campaign serially,
# then run the same spec as a fleet (one `serve` coordinator, two
# `worker` processes over loopback TCP) and require the report tables
# to be byte-identical.
#
# The `dedup savings` report line is excluded from the comparison on
# purpose: dedup groups form within one engine invocation, so a fleet
# worker booting one shard per lease may legitimately dedup fewer
# mutants than a serial run — the *tables* (every mutant's outcome)
# are what must not differ, and they are compared byte for byte.
#
# Run from the repository root.
set -e

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT INT TERM

echo "building driverlab (-race)..."
go build -race -o "$tmp/driverlab" ./cmd/driverlab

echo "serial baseline..."
"$tmp/driverlab" campaign run -store "$tmp/serial.jsonl" \
    -drivers busmouse_c -sample 8 -seed 11 -quiet >/dev/null

echo "fleet run: 1 coordinator, 2 workers..."
"$tmp/driverlab" serve -store "$tmp/fleet.jsonl" \
    -addr 127.0.0.1:0 -addr-file "$tmp/addr" \
    -drivers busmouse_c -sample 8 -seed 11 -shards 4 -quiet \
    >"$tmp/serve.out" 2>"$tmp/serve.err" &
serve_pid=$!

addr=
for _ in $(seq 1 200); do
    if [ -s "$tmp/addr" ]; then
        addr=$(cat "$tmp/addr")
        break
    fi
    if ! kill -0 "$serve_pid" 2>/dev/null; then
        echo "serve exited before binding:" >&2
        cat "$tmp/serve.err" >&2
        exit 1
    fi
    sleep 0.05
done
if [ -z "$addr" ]; then
    echo "serve never wrote its address file" >&2
    kill "$serve_pid" 2>/dev/null || true
    exit 1
fi

"$tmp/driverlab" worker -connect "$addr" -name smoke-w0 -quiet \
    >"$tmp/w0.out" 2>&1 &
w0=$!
"$tmp/driverlab" worker -connect "$addr" -name smoke-w1 -quiet \
    >"$tmp/w1.out" 2>&1 &
w1=$!

for p in "$w0" "$w1" "$serve_pid"; do
    if ! wait "$p"; then
        echo "fleet process $p failed:" >&2
        cat "$tmp/serve.err" "$tmp/w0.out" "$tmp/w1.out" >&2
        exit 1
    fi
done
cat "$tmp/serve.out"

echo "comparing report tables (serial vs fleet)..."
"$tmp/driverlab" campaign report -store "$tmp/serial.jsonl" \
    | grep -v '^dedup savings' >"$tmp/serial.report"
"$tmp/driverlab" campaign report -store "$tmp/fleet.jsonl" \
    | grep -v '^dedup savings' >"$tmp/fleet.report"
if ! diff -u "$tmp/serial.report" "$tmp/fleet.report"; then
    echo "fleet report tables differ from the serial baseline" >&2
    exit 1
fi

echo "fleet smoke: ok ($(wc -l <"$tmp/fleet.report") report lines byte-identical)"
