// Benchmark harness: one bench per table and figure of the paper's
// evaluation, plus the ablations DESIGN.md calls out. The table benches
// report their headline numbers as custom metrics (percentages, counts),
// so `go test -bench=. -benchmem` regenerates the evaluation end to end.
package repro_test

import (
	"fmt"
	"testing"
	"unsafe"

	"repro/internal/campaign"
	"repro/internal/devil"
	"repro/internal/devil/codegen"
	"repro/internal/drivers"
	"repro/internal/experiment"
	"repro/internal/hw"
	"repro/internal/hw/ide"
	"repro/internal/kernel"
	"repro/internal/mutation/cmut"
	"repro/internal/mutation/devilmut"
	"repro/internal/obs"
	"repro/internal/specs"
)

// benchSample keeps the driver-mutation benches affordable per iteration;
// cmd/driverlab runs the paper's 25% (or 100%) when exact numbers are
// wanted.
const benchSample = 10

// BenchmarkTable1OperatorRules measures operator-mutant enumeration over
// the C driver and reports the reconstructed rule count (Table 1).
func BenchmarkTable1OperatorRules(b *testing.B) {
	src, err := drivers.Load("ide_c")
	if err != nil {
		b.Fatal(err)
	}
	toks, err := experiment.ParseDriver(src.Text)
	if err != nil {
		b.Fatal(err)
	}
	var ops int
	for i := 0; i < b.N; i++ {
		res, err := cmut.Enumerate(toks, cmut.Options{})
		if err != nil {
			b.Fatal(err)
		}
		ops = 0
		for _, s := range res.Sites {
			if s.Kind == cmut.SiteOperator {
				ops++
			}
		}
	}
	b.ReportMetric(float64(len(cmut.OperatorClasses)), "rules")
	b.ReportMetric(float64(ops), "operator-sites")
}

// BenchmarkTable2SpecCoverage regenerates Table 2: per specification, the
// full mutant enumeration and Devil-compiler detection rate.
func BenchmarkTable2SpecCoverage(b *testing.B) {
	for _, s := range specs.All() {
		s := s
		b.Run(s.Name, func(b *testing.B) {
			var row experiment.SpecRow
			for i := 0; i < b.N; i++ {
				r, err := experiment.Table2Row(s)
				if err != nil {
					b.Fatal(err)
				}
				row = r
			}
			b.ReportMetric(float64(row.Mutants), "mutants")
			b.ReportMetric(float64(row.Sites), "sites")
			b.ReportMetric(row.PctDetected(), "%detected")
		})
	}
}

// driverBench runs a Table 3/4 experiment per iteration and reports the
// paper's headline rows as metrics.
func driverBench(b *testing.B, table func(experiment.MutationOptions) (*experiment.DriverTable, error),
	opts experiment.MutationOptions) {
	b.Helper()
	var t *experiment.DriverTable
	for i := 0; i < b.N; i++ {
		res, err := table(opts)
		if err != nil {
			b.Fatal(err)
		}
		t = res
	}
	b.ReportMetric(t.Pct(experiment.RowCompile), "%compile")
	b.ReportMetric(t.Pct(experiment.RowRuntime), "%runtime")
	b.ReportMetric(t.Pct(experiment.RowBoot), "%silent-boot")
	b.ReportMetric(t.Pct(experiment.RowCrash), "%crash")
	b.ReportMetric(t.DetectedPct(), "%detected")
	b.ReportMetric(float64(t.TotalMutants), "mutants-booted")
}

// BenchmarkTable3CMutations regenerates Table 3 (C driver mutation run).
func BenchmarkTable3CMutations(b *testing.B) {
	driverBench(b, experiment.Table3,
		experiment.MutationOptions{SamplePct: benchSample, Seed: 2001})
}

// BenchmarkTable4CDevilMutations regenerates Table 4 (CDevil mutation run).
func BenchmarkTable4CDevilMutations(b *testing.B) {
	driverBench(b, experiment.Table4,
		experiment.MutationOptions{SamplePct: benchSample, Seed: 2001})
}

// BenchmarkExtensionBusmouseMutations runs the second-driver-pair
// extension (the paper's stated future work) end to end.
func BenchmarkExtensionBusmouseMutations(b *testing.B) {
	for _, drv := range []string{"busmouse_c", "busmouse_devil"} {
		drv := drv
		b.Run(drv, func(b *testing.B) {
			var t *experiment.DriverTable
			for i := 0; i < b.N; i++ {
				res, err := experiment.MouseMutation(drv,
					experiment.MutationOptions{SamplePct: 50, Seed: 2001})
				if err != nil {
					b.Fatal(err)
				}
				t = res
			}
			b.ReportMetric(t.DetectedPct(), "%detected")
			b.ReportMetric(t.SilentPct(), "%silent-boot")
			b.ReportMetric(float64(t.TotalMutants), "mutants-booted")
		})
	}
}

// BenchmarkExtensionNE2000Mutations runs the third-driver-pair extension
// (the interrupt- and DMA-heavy NE2000 adapter) end to end.
func BenchmarkExtensionNE2000Mutations(b *testing.B) {
	for _, drv := range []string{"ne2000_c", "ne2000_devil"} {
		drv := drv
		b.Run(drv, func(b *testing.B) {
			var t *experiment.DriverTable
			for i := 0; i < b.N; i++ {
				res, err := experiment.DriverMutation(drv,
					experiment.MutationOptions{SamplePct: 5, Seed: 2001})
				if err != nil {
					b.Fatal(err)
				}
				t = res
			}
			b.ReportMetric(t.DetectedPct(), "%detected")
			b.ReportMetric(t.SilentPct(), "%silent-boot")
			b.ReportMetric(float64(t.TotalMutants), "mutants-booted")
		})
	}
}

// BenchmarkExtensionTable2Completion runs the last two Table-2 device
// pairs (the Permedia 2 frame buffer and the 82371FB bus master) end to
// end — the workloads that completed the five-specification evaluation.
func BenchmarkExtensionTable2Completion(b *testing.B) {
	for _, tc := range []struct {
		driver string
		sample int
	}{
		{"permedia_c", 5}, {"permedia_devil", 10},
		{"busmaster_c", 10}, {"busmaster_devil", 25},
	} {
		tc := tc
		b.Run(tc.driver, func(b *testing.B) {
			var t *experiment.DriverTable
			for i := 0; i < b.N; i++ {
				res, err := experiment.DriverMutation(tc.driver,
					experiment.MutationOptions{SamplePct: tc.sample, Seed: 2001})
				if err != nil {
					b.Fatal(err)
				}
				t = res
			}
			b.ReportMetric(t.DetectedPct(), "%detected")
			b.ReportMetric(t.SilentPct(), "%silent-boot")
			b.ReportMetric(float64(t.TotalMutants), "mutants-booted")
		})
	}
}

// BenchmarkFigure1CleanBoot measures the two clean boots of Figure 1's two
// driver architectures — the baseline every mutant run is compared to.
func BenchmarkFigure1CleanBoot(b *testing.B) {
	for _, name := range []string{"ide_c", "ide_devil"} {
		name := name
		b.Run(name, func(b *testing.B) {
			src, err := drivers.Load(name)
			if err != nil {
				b.Fatal(err)
			}
			toks, err := experiment.ParseDriver(src.Text)
			if err != nil {
				b.Fatal(err)
			}
			var steps int64
			for i := 0; i < b.N; i++ {
				res, err := experiment.Boot(experiment.BootInput{Tokens: toks, Devil: src.Devil})
				if err != nil {
					b.Fatal(err)
				}
				if res.CompileDetected() || res.Outcome != kernel.OutcomeBoot {
					b.Fatalf("clean boot failed: %v / %v", res.CompileErrors, res.Outcome)
				}
				steps = res.Steps
			}
			b.ReportMetric(float64(steps), "boot-steps")
		})
	}
}

// BenchmarkFigure3SpecCompile measures compiling the busmouse spec of
// Figure 3 through the full front end.
func BenchmarkFigure3SpecCompile(b *testing.B) {
	s, err := specs.Load("busmouse")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := devil.Compile(s.Filename, s.Source); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure4StubEmission measures emitting the Figure-4 debug stub
// text for the IDE Drive variable.
func BenchmarkFigure4StubEmission(b *testing.B) {
	s, err := specs.Load("ide")
	if err != nil {
		b.Fatal(err)
	}
	spec, err := devil.Compile(s.Filename, s.Source)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := spec.EmitCVariable(devil.Debug, "Drive"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationWeakTyping reruns Table 4 with the strict checker
// downgraded to plain C rules: the compile-time column collapses, showing
// how much of the Devil win is the distinct-struct-type encoding.
func BenchmarkAblationWeakTyping(b *testing.B) {
	driverBench(b, experiment.Table4, experiment.MutationOptions{
		SamplePct: benchSample, Seed: 2001, ForcePermissive: true,
	})
}

// BenchmarkAblationProductionStubs reruns Table 4 with production-mode
// stubs: the run-time-check row collapses, isolating the contribution of
// the debug assertions.
func BenchmarkAblationProductionStubs(b *testing.B) {
	driverBench(b, experiment.Table4, experiment.MutationOptions{
		SamplePct: benchSample, Seed: 2001, StubMode: codegen.Production,
	})
}

// BenchmarkStubOverhead compares a device-variable read through production
// vs debug stubs — the cost the paper's companion result says is paid only
// during development.
func BenchmarkStubOverhead(b *testing.B) {
	for _, mode := range []devil.Mode{devil.Production, devil.Debug} {
		mode := mode
		b.Run(fmt.Sprintf("%v", mode), func(b *testing.B) {
			s, err := specs.Load("ide")
			if err != nil {
				b.Fatal(err)
			}
			spec, err := devil.Compile(s.Filename, s.Source)
			if err != nil {
				b.Fatal(err)
			}
			clock := &hw.Clock{}
			bus := hw.NewBus()
			img, err := kernel.BuildImage(kernel.DefaultFiles(), 8)
			if err != nil {
				b.Fatal(err)
			}
			ctrl := ide.NewController(clock, ide.NewDisk("BENCH", img.Sectors))
			if err := bus.Map(0x1f0, 8, ctrl); err != nil {
				b.Fatal(err)
			}
			if err := bus.Map(0x3f6, 1, ctrl.ControlBlock()); err != nil {
				b.Fatal(err)
			}
			stubs, err := spec.Generate(devil.Config{
				Bus:   bus,
				Bases: map[string]hw.Port{"cmd": 0x1f0, "ctl": 0x3f6, "data": 0x1f0},
				Mode:  mode,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := stubs.Get("Busy"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDevilMutantCheck measures one spec-mutant compile (the unit of
// Table 2's inner loop).
func BenchmarkDevilMutantCheck(b *testing.B) {
	s, err := specs.Load("busmouse")
	if err != nil {
		b.Fatal(err)
	}
	res, err := devilmut.Enumerate(s.Source)
	if err != nil {
		b.Fatal(err)
	}
	if len(res.Mutants) == 0 {
		b.Fatal("no mutants")
	}
	for i := 0; i < b.N; i++ {
		devilmut.CheckMutant(res, res.Mutants[i%len(res.Mutants)], s.Filename)
	}
}

// BenchmarkCampaignThroughput measures end-to-end campaign execution —
// enumeration amortised, per-worker machine/stub/env reuse, the compiled
// execution backend, JSONL-shaped records into an in-memory store — and
// reports boots per second, the headline throughput number of the batch
// engine. Each driver runs under both front ends: incremental (the
// default hot path: only the mutated declaration re-runs the
// parse-check-compile chain) and full (the whole pipeline per mutant);
// CI fails if incremental is ever slower.
func BenchmarkCampaignThroughput(b *testing.B) {
	for _, driver := range drivers.Names() {
		for _, frontend := range []experiment.Frontend{experiment.FrontendIncremental, experiment.FrontendFull} {
			b.Run(driver+"/"+string(frontend), func(b *testing.B) {
				wl := experiment.NewWorkload()
				spec := experiment.CampaignSpec(driver,
					experiment.MutationOptions{SamplePct: 2, Seed: 2001})
				spec.Frontend = string(frontend)
				boots := 0
				for i := 0; i < b.N; i++ {
					store := campaign.NewMemStore()
					sum, err := campaign.Run(spec, wl, store, campaign.Options{})
					if err != nil {
						b.Fatal(err)
					}
					boots += sum.Ran
				}
				b.ReportMetric(float64(boots)/b.Elapsed().Seconds(), "boots/s")
				b.ReportMetric(float64(boots)/float64(b.N), "boots/op")
			})
		}
	}
}

// BenchmarkCampaignThroughputObserved is the campaign throughput bench
// with the full observability stack enabled — boot-pipeline phase
// spans, engine counters, store latency histograms, and a live status
// tracker. Comparing against BenchmarkCampaignThroughput quantifies the
// instrumentation overhead, which CI separately gates at 3% via
// `driverlab bench -obs compare`.
func BenchmarkCampaignThroughputObserved(b *testing.B) {
	for _, driver := range []string{"ide_c", "ide_devil"} {
		driver := driver
		b.Run(driver, func(b *testing.B) {
			col := obs.New()
			wl := experiment.NewObservedWorkload(col)
			metrics := campaign.NewMetrics(col)
			spec := experiment.CampaignSpec(driver,
				experiment.MutationOptions{SamplePct: 2, Seed: 2001})
			boots := 0
			for i := 0; i < b.N; i++ {
				store := campaign.NewMemStore()
				sum, err := campaign.Run(spec, wl, store, campaign.Options{
					Metrics: metrics, Status: campaign.NewStatusTracker(),
				})
				if err != nil {
					b.Fatal(err)
				}
				boots += sum.Ran
			}
			b.ReportMetric(float64(boots)/b.Elapsed().Seconds(), "boots/s")
			b.ReportMetric(float64(boots)/float64(b.N), "boots/op")
		})
	}
}

// BenchmarkBackendComparison pits the compiled execution backend against
// the tree-walking reference oracle on the same campaign, isolating the
// win of closure compilation from the rest of the engine.
func BenchmarkBackendComparison(b *testing.B) {
	for _, backend := range []experiment.Backend{experiment.BackendCompiled, experiment.BackendInterp} {
		backend := backend
		b.Run(string(backend), func(b *testing.B) {
			wl := experiment.NewWorkload()
			spec := experiment.CampaignSpec("ide_devil",
				experiment.MutationOptions{SamplePct: 2, Seed: 2001, Backend: backend})
			boots := 0
			for i := 0; i < b.N; i++ {
				store := campaign.NewMemStore()
				sum, err := campaign.Run(spec, wl, store, campaign.Options{})
				if err != nil {
					b.Fatal(err)
				}
				boots += sum.Ran
			}
			b.ReportMetric(float64(boots)/b.Elapsed().Seconds(), "boots/s")
		})
	}
}

// BenchmarkMachineReuse isolates the campaign engine's hot-path saving:
// booting the clean CDevil driver on a freshly built machine per boot
// versus Reset-and-reuse of one machine.
func BenchmarkMachineReuse(b *testing.B) {
	src, err := drivers.Load("ide_devil")
	if err != nil {
		b.Fatal(err)
	}
	toks, err := experiment.ParseDriver(src.Text)
	if err != nil {
		b.Fatal(err)
	}
	input := experiment.BootInput{Tokens: toks, Devil: true, Budget: experiment.ExperimentBudget}
	b.Run("fresh", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := experiment.Boot(input); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reused", func(b *testing.B) {
		m, err := experiment.NewMachine()
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		// Zero-delta check on the pooled console buffer: across reused
		// boots BootResult.Console must alias one kernel-owned array —
		// the same backing pointer every boot — rather than a per-boot
		// copy. (The first boot may still grow the buffer, so the
		// anchor is taken from boot two.)
		var consoleBuf *string
		for i := 0; i < b.N; i++ {
			m.Reset()
			res, err := experiment.BootOn(m, input)
			if err != nil {
				b.Fatal(err)
			}
			if i >= 1 && len(res.Console) > 0 {
				p := unsafe.SliceData(res.Console)
				if consoleBuf == nil {
					consoleBuf = p
				} else if p != consoleBuf {
					b.Fatal("console buffer reallocated between reused boots (pooling regressed)")
				}
			}
		}
	})
}

// BenchmarkMutantBoot measures one mutant boot (the unit of Table 3/4's
// inner loop), using the unmutated driver as a stand-in.
func BenchmarkMutantBoot(b *testing.B) {
	src, err := drivers.Load("ide_devil")
	if err != nil {
		b.Fatal(err)
	}
	toks, err := experiment.ParseDriver(src.Text)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Boot(experiment.BootInput{
			Tokens: toks, Devil: true, Budget: experiment.ExperimentBudget,
		}); err != nil {
			b.Fatal(err)
		}
	}
}
