package devil

import (
	"repro/internal/devil/codegen"
	"repro/internal/hw"
)

// Mode re-exports the stub generation mode.
type Mode = codegen.Mode

// Generation modes, re-exported for façade users.
const (
	Production = codegen.Production
	Debug      = codegen.Debug
)

// Config re-exports the stub generation configuration.
type Config = codegen.Config

// Stubs re-exports the generated stub set.
type Stubs = codegen.Stubs

// Value re-exports the typed Devil value.
type Value = codegen.Value

// AssertError re-exports the Devil run-time assertion failure.
type AssertError = codegen.AssertError

// Generate builds executable stubs for this specification bound to a
// concrete bus and base-address assignment.
func (s *Spec) Generate(cfg Config) (*Stubs, error) {
	return codegen.Generate(s.Filename, s.Info, cfg)
}

// GenerateOn is a convenience wrapper binding every port parameter listed in
// bases on the given bus in debug mode (the development configuration the
// paper's evaluation studies).
func (s *Spec) GenerateOn(bus *hw.Bus, bases map[string]hw.Port) (*Stubs, error) {
	return s.Generate(Config{Bus: bus, Bases: bases, Mode: Debug})
}

// EmitC renders the C stub text the compiler generates for this
// specification (the paper's Figure 4 form).
func (s *Spec) EmitC(mode Mode) string {
	return codegen.EmitC(s.Filename, s.Info, mode)
}

// EmitCVariable renders the C stubs of a single device variable.
func (s *Spec) EmitCVariable(mode Mode, varName string) (string, error) {
	return codegen.EmitCVariable(s.Filename, s.Info, mode, varName)
}
