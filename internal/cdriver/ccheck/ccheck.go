// Package ccheck is the semantic front end of the hwC "compiler": the
// component that decides the compile-time-check row of Tables 3 and 4.
//
// In permissive mode it enforces only what any C compiler enforces on the
// weakly-typed hardware operating code the paper describes: identifiers
// must be declared, assignment targets must be lvalues, called objects must
// be functions with the right arity, and function names are not values.
//
// In strict mode it additionally enforces the distinct struct types of
// Devil debug stubs: Devil values cannot enter integer arithmetic, cannot
// be compared with ==, cannot be passed to a stub of a different device
// variable, and dil_eq accepts only Devil values.
package ccheck

import (
	"fmt"

	"repro/internal/cdriver/cast"
	"repro/internal/cdriver/ctoken"
	"repro/internal/cdriver/ctypes"
)

// Error is a semantic diagnostic.
type Error struct {
	Pos ctoken.Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: error: %s", e.Pos, e.Msg) }

// ErrorList is the ordered diagnostics of one check.
type ErrorList []*Error

// Error implements the error interface.
func (l ErrorList) Error() string {
	switch len(l) {
	case 0:
		return "no errors"
	case 1:
		return l[0].Error()
	}
	return fmt.Sprintf("%s (and %d more errors)", l[0].Error(), len(l)-1)
}

// Err returns the list as an error, or nil when empty.
func (l ErrorList) Err() error {
	if len(l) == 0 {
		return nil
	}
	return l
}

// symbol classifies one name in scope.
type symbol struct {
	kind symKind
	typ  cast.CType
}

type symKind int

const (
	symMacro symKind = iota + 1
	symVar
	symFunc
	symConst // Devil enum constant
)

type checker struct {
	env    *ctypes.Env
	prog   *cast.Program
	errors ErrorList
	// globals maps file-scope names.
	globals map[string]symbol
	// scopes is the local scope stack of the function being checked.
	scopes []map[string]symbol
	// curFunc is the function being checked.
	curFunc *cast.FuncDecl
}

// Check verifies prog against env and returns the diagnostics.
func Check(prog *cast.Program, env *ctypes.Env) ErrorList {
	c := &checker{env: env, prog: prog, globals: make(map[string]symbol)}
	c.collect()
	for _, f := range prog.Funcs() {
		c.checkFunc(f)
	}
	return c.errors
}

func (c *checker) errorf(pos ctoken.Pos, format string, args ...interface{}) {
	c.errors = append(c.errors, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

var intType = cast.CType{Kind: cast.TypeInt}

func (c *checker) isIntegerLike(t cast.CType) bool {
	return t.IsInteger()
}

// normType maps declared types into the active type world: in permissive
// mode the Devil struct types do not exist — the production stub header
// typedefs them to plain integers — so declarations like "Drive_t who"
// still compile, they just lose all checking.
func (c *checker) normType(t cast.CType) cast.CType {
	if !c.env.Strict && t.Kind == cast.TypeDevilStruct {
		return cast.CType{Kind: cast.TypeU32}
	}
	return t
}

func (c *checker) collect() {
	for _, d := range c.prog.Decls {
		switch d := d.(type) {
		case *cast.MacroDecl:
			if _, dup := c.globals[d.Name]; dup {
				c.errorf(d.NamePos, "%q redefined", d.Name)
			}
			c.globals[d.Name] = symbol{kind: symMacro, typ: intType}
		case *cast.VarDecl:
			if _, dup := c.globals[d.Name]; dup {
				c.errorf(d.NamePos, "%q redefined", d.Name)
			}
			c.checkVarType(d)
			c.globals[d.Name] = symbol{kind: symVar, typ: d.Type}
			if d.Init != nil {
				c.assignable(d.NamePos, d.Type, c.exprType(d.Init))
			}
		case *cast.FuncDecl:
			if _, dup := c.globals[d.Name]; dup {
				c.errorf(d.NamePos, "%q redefined", d.Name)
			}
			if _, clash := c.env.Funcs[d.Name]; clash {
				c.errorf(d.NamePos, "%q conflicts with a builtin", d.Name)
			}
			c.globals[d.Name] = symbol{kind: symFunc, typ: d.Result}
		}
	}
}

// checkVarType rejects variable declarations of types that cannot hold a
// value (void) or that do not exist (unknown Devil struct in strict mode;
// any Devil struct in permissive mode, where no such types are defined).
func (c *checker) checkVarType(d *cast.VarDecl) {
	d.Type = c.normType(d.Type)
	switch d.Type.Kind {
	case cast.TypeVoid:
		c.errorf(d.TypePos, "variable %q declared void", d.Name)
	case cast.TypeDevilStruct:
		if !c.devilTypeExists(d.Type) {
			c.errorf(d.TypePos, "unknown type %q", d.Type.Name)
		}
	}
}

// devilTypeExists reports whether a Devil struct type is defined by the
// stub interface in scope.
func (c *checker) devilTypeExists(t cast.CType) bool {
	if !c.env.Strict {
		return false
	}
	for _, ct := range c.env.Consts {
		if ct.Kind == cast.TypeDevilStruct && ct.Name == t.Name {
			return true
		}
	}
	for _, f := range c.env.Funcs {
		if f.Result.Kind == cast.TypeDevilStruct && f.Result.Name == t.Name {
			return true
		}
		for _, p := range f.Params {
			if p.Kind == cast.TypeDevilStruct && p.Name == t.Name {
				return true
			}
		}
	}
	return false
}

func (c *checker) pushScope() { c.scopes = append(c.scopes, make(map[string]symbol)) }
func (c *checker) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) declareLocal(pos ctoken.Pos, name string, typ cast.CType) {
	top := c.scopes[len(c.scopes)-1]
	if _, dup := top[name]; dup {
		c.errorf(pos, "%q redeclared in this scope", name)
	}
	top[name] = symbol{kind: symVar, typ: typ}
}

// lookup resolves a name through locals, globals, builtins and constants.
func (c *checker) lookup(name string) (symbol, bool) {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if s, ok := c.scopes[i][name]; ok {
			return s, true
		}
	}
	if s, ok := c.globals[name]; ok {
		return s, true
	}
	if f, ok := c.env.Funcs[name]; ok {
		return symbol{kind: symFunc, typ: f.Result}, true
	}
	if t, ok := c.env.Consts[name]; ok {
		return symbol{kind: symConst, typ: t}, true
	}
	return symbol{}, false
}

func (c *checker) checkFunc(f *cast.FuncDecl) {
	f.Result = c.normType(f.Result)
	c.curFunc = f
	c.pushScope()
	for i := range f.Params {
		p := &f.Params[i]
		p.Type = c.normType(p.Type)
		if p.Type.Kind == cast.TypeVoid {
			c.errorf(p.NamePos, "parameter %q declared void", p.Name)
		}
		if p.Type.Kind == cast.TypeDevilStruct && !c.devilTypeExists(p.Type) {
			c.errorf(p.NamePos, "unknown type %q", p.Type.Name)
		}
		c.declareLocal(p.NamePos, p.Name, p.Type)
	}
	c.checkStmt(f.Body)
	c.popScope()
	c.curFunc = nil
}

func (c *checker) checkStmt(s cast.Stmt) {
	switch s := s.(type) {
	case *cast.Block:
		c.pushScope()
		for _, st := range s.Stmts {
			c.checkStmt(st)
		}
		c.popScope()
	case *cast.DeclStmt:
		d := s.Decl
		c.checkVarType(d)
		if d.Init != nil {
			c.assignable(d.NamePos, d.Type, c.exprType(d.Init))
		}
		c.declareLocal(d.NamePos, d.Name, d.Type)
	case *cast.ExprStmt:
		c.exprType(s.X)
	case *cast.AssignStmt:
		c.checkAssign(s)
	case *cast.IncDecStmt:
		sym, ok := c.lookup(s.X.Name)
		if !ok {
			c.errorf(s.X.NamePos, "%q undeclared", s.X.Name)
			return
		}
		if sym.kind != symVar {
			c.errorf(s.X.NamePos, "lvalue required as operand of %s", s.Op)
			return
		}
		if !c.isIntegerLike(sym.typ) {
			c.errorf(s.X.NamePos, "wrong type argument to %s", s.Op)
		}
	case *cast.IfStmt:
		c.condType(s.Cond)
		c.checkStmt(s.Then)
		if s.Else != nil {
			c.checkStmt(s.Else)
		}
	case *cast.WhileStmt:
		c.condType(s.Cond)
		c.checkStmt(s.Body)
	case *cast.DoWhileStmt:
		c.checkStmt(s.Body)
		c.condType(s.Cond)
	case *cast.ForStmt:
		c.pushScope()
		if s.Init != nil {
			c.checkStmt(s.Init)
		}
		if s.Cond != nil {
			c.condType(s.Cond)
		}
		if s.Post != nil {
			c.checkStmt(s.Post)
		}
		c.checkStmt(s.Body)
		c.popScope()
	case *cast.SwitchStmt:
		c.condType(s.Tag)
		for _, cl := range s.Clauses {
			for _, v := range cl.Values {
				t := c.exprType(v)
				if !c.isIntegerLike(t) {
					c.errorf(v.Pos(), "case label is not an integer constant")
				}
			}
			c.pushScope()
			for _, st := range cl.Stmts {
				c.checkStmt(st)
			}
			c.popScope()
		}
	case *cast.BreakStmt, *cast.ContinueStmt:
		// Loop/switch nesting is enforced syntactically well enough for the
		// driver corpus; a stray break is harmless at run time.
	case *cast.ReturnStmt:
		c.checkReturn(s)
	}
}

func (c *checker) checkReturn(s *cast.ReturnStmt) {
	want := c.curFunc.Result
	if want.Kind == cast.TypeVoid {
		if s.X != nil {
			c.errorf(s.KwPos, "%q returns a value from a void function", c.curFunc.Name)
		}
		return
	}
	if s.X == nil {
		c.errorf(s.KwPos, "%q: return with no value", c.curFunc.Name)
		return
	}
	c.assignable(s.KwPos, want, c.exprType(s.X))
}

func (c *checker) checkAssign(s *cast.AssignStmt) {
	sym, ok := c.lookup(s.LHS.Name)
	if !ok {
		c.errorf(s.LHS.NamePos, "%q undeclared", s.LHS.Name)
		c.exprType(s.RHS)
		return
	}
	if sym.kind != symVar {
		// Assignment to a macro, function or enum constant: the classic
		// compile error an identifier typo produces.
		c.errorf(s.LHS.NamePos, "lvalue required as left operand of assignment")
		c.exprType(s.RHS)
		return
	}
	rt := c.exprType(s.RHS)
	if s.Op == ctoken.Assign {
		c.assignable(s.LHS.NamePos, sym.typ, rt)
		return
	}
	// Compound assignment requires integers on both sides.
	if !c.isIntegerLike(sym.typ) || !c.isIntegerLike(rt) {
		c.errorf(s.LHS.NamePos, "invalid operands to %s", s.Op)
	}
}

// assignable checks C assignment compatibility: integers convert freely;
// Devil struct types require identity; strings never assign.
func (c *checker) assignable(pos ctoken.Pos, dst, src cast.CType) {
	if ctypes.IsStringType(src) || ctypes.IsStringType(dst) {
		c.errorf(pos, "incompatible types in assignment")
		return
	}
	if dst.Kind == cast.TypeDevilStruct || src.Kind == cast.TypeDevilStruct {
		if dst.Kind != src.Kind || dst.Name != src.Name {
			c.errorf(pos, "incompatible types in assignment (%s vs %s)", dst, src)
		}
		return
	}
	if !c.isIntegerLike(dst) || !c.isIntegerLike(src) {
		c.errorf(pos, "incompatible types in assignment (%s vs %s)", dst, src)
	}
}

// condType requires an integer-valued controlling expression.
func (c *checker) condType(x cast.Expr) {
	t := c.exprType(x)
	if !c.isIntegerLike(t) {
		c.errorf(x.Pos(), "controlling expression is not scalar (%s)", t)
	}
}

// exprType computes the static type of an expression, emitting diagnostics
// for misuse on the way.
func (c *checker) exprType(x cast.Expr) cast.CType {
	switch x := x.(type) {
	case *cast.IntLit:
		return intType
	case *cast.StringLit:
		return ctypes.StringType()
	case *cast.Ident:
		sym, ok := c.lookup(x.Name)
		if !ok {
			c.errorf(x.NamePos, "%q undeclared", x.Name)
			return intType
		}
		if sym.kind == symFunc {
			// Using a function name as a value: no function pointers in
			// the subset (and a hard error in kernels built with -Werror).
			c.errorf(x.NamePos, "function %q used as a value", x.Name)
			return intType
		}
		return sym.typ
	case *cast.CallExpr:
		return c.callType(x)
	case *cast.UnaryExpr:
		t := c.exprType(x.X)
		if !c.isIntegerLike(t) {
			c.errorf(x.OpPos, "wrong type argument to unary %s (%s)", x.Op, t)
		}
		return intType
	case *cast.BinaryExpr:
		lt := c.exprType(x.X)
		rt := c.exprType(x.Y)
		if !c.isIntegerLike(lt) || !c.isIntegerLike(rt) {
			// This is where "x == MASTER" dies in strict mode: C has no
			// struct comparison, arithmetic or logic.
			c.errorf(x.OpPos, "invalid operands to binary %s (%s and %s)", x.Op, lt, rt)
		}
		return intType
	case *cast.CondExpr:
		c.condType(x.Cond)
		tt := c.exprType(x.Then)
		et := c.exprType(x.Else)
		if tt.Kind == cast.TypeDevilStruct && et.Kind == cast.TypeDevilStruct &&
			tt.Name == et.Name {
			return tt
		}
		if !c.isIntegerLike(tt) || !c.isIntegerLike(et) {
			c.errorf(x.Cond.Pos(), "type mismatch in conditional expression (%s vs %s)", tt, et)
			return intType
		}
		return intType
	case *cast.CastExpr:
		t := c.exprType(x.X)
		x.To = c.normType(x.To)
		if x.To.Kind == cast.TypeDevilStruct {
			c.errorf(x.LParen, "conversion to non-scalar type %q", x.To.Name)
			return x.To
		}
		if !c.isIntegerLike(t) {
			c.errorf(x.LParen, "cannot convert %s to %s", t, x.To)
		}
		return x.To
	}
	return intType
}

func (c *checker) callType(x *cast.CallExpr) cast.CType {
	// User-defined functions shadow nothing; builtins and stubs come from
	// the environment.
	if sym, ok := c.firstNonFunc(x.Name); ok {
		c.errorf(x.NamePos, "called object %q is not a function", x.Name)
		_ = sym
		for _, a := range x.Args {
			c.exprType(a)
		}
		return intType
	}
	if f := c.prog.Func(x.Name); f != nil {
		return c.checkCall(x, funcSig(f))
	}
	if f, ok := c.env.Funcs[x.Name]; ok {
		if f.StubKind == "eq" {
			return c.checkDilEq(x)
		}
		return c.checkCall(x, f)
	}
	c.errorf(x.NamePos, "implicit declaration of function %q", x.Name)
	for _, a := range x.Args {
		c.exprType(a)
	}
	return intType
}

// firstNonFunc reports whether name resolves to a non-function symbol
// before any function does (locals shadow functions).
func (c *checker) firstNonFunc(name string) (symbol, bool) {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if s, ok := c.scopes[i][name]; ok {
			return s, s.kind != symFunc
		}
	}
	if s, ok := c.globals[name]; ok {
		return s, s.kind != symFunc
	}
	if t, ok := c.env.Consts[name]; ok {
		return symbol{kind: symConst, typ: t}, true
	}
	return symbol{}, false
}

func funcSig(f *cast.FuncDecl) *ctypes.Func {
	sig := &ctypes.Func{Name: f.Name, Result: f.Result}
	for _, p := range f.Params {
		sig.Params = append(sig.Params, p.Type)
	}
	return sig
}

func (c *checker) checkCall(x *cast.CallExpr, sig *ctypes.Func) cast.CType {
	if sig.Variadic {
		if len(x.Args) < len(sig.Params) {
			c.errorf(x.NamePos, "too few arguments to function %q", x.Name)
		}
	} else if len(x.Args) != len(sig.Params) {
		c.errorf(x.NamePos, "wrong number of arguments to function %q (have %d, want %d)",
			x.Name, len(x.Args), len(sig.Params))
	}
	for i, a := range x.Args {
		at := c.exprType(a)
		if i >= len(sig.Params) {
			if !sig.Variadic {
				continue
			}
			if !c.isIntegerLike(at) && !ctypes.IsStringType(at) {
				c.errorf(a.Pos(), "invalid variadic argument %d to %q", i+1, x.Name)
			}
			continue
		}
		want := sig.Params[i]
		switch {
		case ctypes.IsStringType(want):
			if !ctypes.IsStringType(at) {
				c.errorf(a.Pos(), "argument %d of %q must be a string literal", i+1, x.Name)
			}
		case want.Kind == cast.TypeDevilStruct:
			if at.Kind != cast.TypeDevilStruct || at.Name != want.Name {
				c.errorf(a.Pos(),
					"incompatible type for argument %d of %q (expected %s, got %s)",
					i+1, x.Name, want, at)
			}
		default:
			if !c.isIntegerLike(at) {
				c.errorf(a.Pos(),
					"incompatible type for argument %d of %q (expected %s, got %s)",
					i+1, x.Name, want, at)
			}
		}
	}
	return sig.Result
}

// checkDilEq types the polymorphic dil_eq comparison: exactly two
// arguments, each a Devil struct value (of possibly different types — the
// type identity check happens at run time, by design: §2.3 trades this
// check to run time to keep CDevil readable).
func (c *checker) checkDilEq(x *cast.CallExpr) cast.CType {
	if len(x.Args) != 2 {
		c.errorf(x.NamePos, "wrong number of arguments to dil_eq (have %d, want 2)", len(x.Args))
	}
	for i, a := range x.Args {
		at := c.exprType(a)
		if c.env.Strict && at.Kind != cast.TypeDevilStruct {
			c.errorf(a.Pos(), "argument %d of dil_eq is not a Devil value (%s)", i+1, at)
		}
	}
	return intType
}
