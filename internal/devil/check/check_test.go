package check_test

import (
	"strings"
	"testing"

	"repro/internal/devil/check"
	"repro/internal/devil/parser"
)

// checkSrc parses and checks, returning the rule names of all diagnostics.
func checkSrc(t *testing.T, src string) []string {
	t.Helper()
	dev, perrs := parser.Parse(src)
	if len(perrs) != 0 {
		t.Fatalf("parse: %v", perrs)
	}
	_, errs := check.Check(dev)
	rules := make([]string, len(errs))
	for i, e := range errs {
		rules[i] = e.Rule + ": " + e.Msg
	}
	return rules
}

func expectRule(t *testing.T, src, rule string) {
	t.Helper()
	rules := checkSrc(t, src)
	for _, r := range rules {
		if strings.HasPrefix(r, rule) {
			return
		}
	}
	t.Errorf("no %q diagnostic; got %v", rule, rules)
}

// wrap builds a minimal valid device around the given body.
func wrap(body string) string {
	return "device d (a : bit[8] port @ {0..1}) {\n" + body + "\n}"
}

func TestValidSpecPasses(t *testing.T) {
	src := wrap(`
		register r = a @ 0 : bit[8];
		register s = a @ 1, mask '1100....' : bit[8];
		variable V = r : int(8);
		variable W = s[3..0] : int(4);
	`)
	if rules := checkSrc(t, src); len(rules) != 0 {
		t.Errorf("valid spec rejected: %v", rules)
	}
}

func TestUniquenessRules(t *testing.T) {
	expectRule(t, `device d (a : bit[8] port @ {0..0}, a : bit[8] port @ {0..0}) {
		register r = a @ 0 : bit[8];
		variable V = r : int(8);
	}`, "uniqueness")
	expectRule(t, wrap(`
		register r = a @ 0 : bit[8];
		register s = a @ 1 : bit[8];
		variable V = r : int(8);
		variable V = s : int(8);
	`), "uniqueness")
	expectRule(t, wrap(`
		register r = a @ 0 : bit[8];
		register s = a @ 1, mask '0000000.' : bit[8];
		variable V = r : int(8);
		variable F = s[0] : { ON => '1', ON => '0' };
	`), "uniqueness")
}

func TestSizeRules(t *testing.T) {
	// Register size vs port width.
	expectRule(t, wrap(`
		register r = a @ 0 : bit[16];
		register f = a @ 1 : bit[8];
		variable V = r : int(16);
		variable W = f : int(8);
	`), "size")
	// Port offset outside the declared range.
	expectRule(t, wrap(`
		register r = a @ 0 : bit[8];
		register s = a @ 7 : bit[8];
		variable V = r : int(8);
		variable W = s : int(8);
	`), "size")
	// Fragment bit outside the register.
	expectRule(t, wrap(`
		register r = a @ 0 : bit[8];
		register s = a @ 1 : bit[8];
		variable V = r[9] : bool;
		variable W = s : int(8);
	`), "size")
	// Enum pattern width vs variable width.
	expectRule(t, wrap(`
		register r = a @ 0, mask '0000000.' : bit[8];
		register s = a @ 1 : bit[8];
		variable F = r[0] : { ON => '11', OFF => '00' };
		variable W = s : int(8);
	`), "size")
	// Set value not representable.
	expectRule(t, wrap(`
		register r = a @ 0, mask '000000..' : bit[8];
		register s = a @ 1 : bit[8];
		variable F = r[1..0] : int {0, 9};
		variable W = s : int(8);
	`), "size")
}

func TestAttributeRules(t *testing.T) {
	// Read mapping on a write-only variable.
	expectRule(t, wrap(`
		register r = write a @ 0, mask '0000000.' : bit[8];
		register s = a @ 1 : bit[8];
		variable F = r[0] : { ON <=> '1', OFF <=> '0' };
		variable W = s : int(8);
	`), "attribute")
	// Pre-action on an unwritable variable.
	expectRule(t, `device d (a : bit[8] port @ {0..2}) {
		register src = read a @ 0, mask '000000..' : bit[8];
		variable ro = src[1..0] : int(2);
		register g = read a @ 1, pre {ro = 1} : bit[8];
		register h = a @ 2 : bit[8];
		variable V = g : int(8);
		variable W = h : int(8);
	}`, "attribute")
}

func TestNoOmissionRules(t *testing.T) {
	// Unused port offset.
	expectRule(t, `device d (a : bit[8] port @ {0..3}) {
		register r = a @ 0 : bit[8];
		variable V = r : int(8);
	}`, "no-omission")
	// Register not used by any variable.
	expectRule(t, wrap(`
		register r = a @ 0 : bit[8];
		register unused = a @ 1 : bit[8];
		variable V = r : int(8);
	`), "no-omission")
	// Relevant register bit unused.
	expectRule(t, wrap(`
		register r = a @ 0 : bit[8];
		register s = a @ 1 : bit[8];
		variable V = r[7..1] : int(7);
		variable W = s : int(8);
	`), "no-omission")
	// Non-exhaustive read mapping.
	expectRule(t, wrap(`
		register r = a @ 0, mask '000000..' : bit[8];
		register s = a @ 1 : bit[8];
		variable F = r[1..0] : { A <=> '00', B <=> '01' };
		variable W = s : int(8);
	`), "no-omission")
}

func TestNoOverlapRules(t *testing.T) {
	// Two registers writing one port without disjoint masks/pre-actions.
	expectRule(t, wrap(`
		register r = write a @ 0 : bit[8];
		register q = write a @ 0 : bit[8];
		register s = a @ 1 : bit[8];
		variable V = r : int(8);
		variable Q = q : int(8);
		variable W = s : int(8);
	`), "no-overlap")
	// Overlapping masks do not license sharing.
	expectRule(t, wrap(`
		register r = write a @ 0, mask '....0000' : bit[8];
		register q = write a @ 0, mask '00......' : bit[8];
		register s = a @ 1 : bit[8];
		variable V = r[7..4] : int(4);
		variable Q = q[5..0] : int(6);
		variable W = s : int(8);
	`), "no-overlap")
	// One register bit feeding two variables.
	expectRule(t, wrap(`
		register r = a @ 0 : bit[8];
		register s = a @ 1 : bit[8];
		variable V = r[7..3] : int(5);
		variable X = r[4..0] : int(5);
		variable W = s : int(8);
	`), "no-overlap")
}

func TestDisjointPreActionsAllowPortSharing(t *testing.T) {
	src := `device d (a : bit[8] port @ {0..1}) {
		register ctl = write a @ 1, mask '1..00000' : bit[8];
		private variable idx = ctl[6..5] : int(2);
		register w0 = read a @ 0, pre {idx = 0} : bit[8];
		register w1 = read a @ 0, pre {idx = 1} : bit[8];
		variable A = w0 : int(8);
		variable B = w1 : int(8);
	}`
	if rules := checkSrc(t, src); len(rules) != 0 {
		t.Errorf("disjoint pre-actions rejected: %v", rules)
	}
}

func TestReadWriteSplitPortAllowed(t *testing.T) {
	// One port read by one register and written by another is legal.
	src := `device d (a : bit[8] port @ {0..0}) {
		register st = read a @ 0 : bit[8];
		register cmd = write a @ 0 : bit[8];
		variable S = st, volatile : int(8);
		variable C = cmd : int(8);
	}`
	if rules := checkSrc(t, src); len(rules) != 0 {
		t.Errorf("read/write port split rejected: %v", rules)
	}
}

func TestTypeIDsAreStable(t *testing.T) {
	src := wrap(`
		register r = a @ 0 : bit[8];
		register s = a @ 1 : bit[8];
		variable V = r : int(8);
		variable W = s : int(8);
	`)
	dev, _ := parser.Parse(src)
	info, errs := check.Check(dev)
	if len(errs) != 0 {
		t.Fatalf("check: %v", errs)
	}
	if info.TypeIDs["V"] != 1 || info.TypeIDs["W"] != 2 {
		t.Errorf("type ids: %v", info.TypeIDs)
	}
	if info.Variables["V"].Width != 8 {
		t.Errorf("V width = %d", info.Variables["V"].Width)
	}
}
