package experiment

import (
	"strings"
	"testing"

	"repro/internal/cdriver/cinterp"
	"repro/internal/drivers"
	"repro/internal/kernel"
)

// The registry is tested apart from the five real device workloads: a
// synthetic in-test descriptor exercises registration validation, the
// generic boot path, worker rig reuse with Reset, and unknown-driver
// rejection, so the abstraction itself has coverage independent of any
// hardware model.

// synthDev is the synthetic workload's device handle: hook counters the
// test asserts on.
type synthDev struct {
	builds int
	resets int
	runs   int
}

// synthSource is the synthetic driver: no hardware at all, just an
// entry point the boot script calls.
const synthSource = `
//@hw
#define PROBE_OK 0
//@endhw

int probe(void)
{
    //@hw
    return PROBE_OK;
    //@endhw
}
`

func registerSynthetic(t *testing.T) *synthDev {
	t.Helper()
	dev := &synthDev{}
	err := RegisterWorkload(WorkloadDesc{
		Name:    "synthetic-" + t.Name(),
		Drivers: []string{"synthetic_c-" + t.Name()},
		Build: func(r *Rig) (any, error) {
			dev.builds++
			return dev, nil
		},
		Reset: func(d any) { d.(*synthDev).resets++ },
		Run: func(r *Rig, ex Engine, res *BootResult) (error, bool) {
			d := r.Dev.(*synthDev)
			d.runs++
			v, err := ex.Call("probe")
			if err != nil {
				return err, false
			}
			if v.Kind == cinterp.ValInt && v.I != 0 {
				return r.Kern.Panic("synthetic: probe failed"), false
			}
			r.Kern.Printk("synthetic: probed")
			return nil, false
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Registration is process-global; clean up so repeated in-process
	// runs (-count=2, stress reruns) stay independent.
	t.Cleanup(func() { unregisterWorkload("synthetic-" + t.Name()) })
	return dev
}

// assertResetRestoresCleanBoot is the registry-driven rig-reuse
// regression shared by every workload: boot the clean driver once to
// dirty the rig, scribble kernel state (console, watchdog), optionally
// dirty device state further, Reset, then require a clean re-boot with
// no stale console. postReset, when non-nil, asserts the descriptor's
// Reset hook rewound the device before the second boot; the re-boot's
// result is returned for workload-specific assertions.
func assertResetRestoresCleanBoot(t *testing.T, driver string,
	dirty func(*Rig), postReset func(*testing.T, *Rig)) *BootResult {
	t.Helper()
	m, err := NewRig(driver)
	if err != nil {
		t.Fatal(err)
	}
	src, err := drivers.Load(driver)
	if err != nil {
		t.Fatal(err)
	}
	toks, err := ParseDriver(src.Text)
	if err != nil {
		t.Fatal(err)
	}
	input := BootInput{Tokens: toks, Devil: src.Devil}
	if _, err := BootOn(m, input); err != nil {
		t.Fatal(err)
	}
	if dirty != nil {
		dirty(m)
	}
	m.Kern.Printk("stale console line")
	m.Kern.SetBudget(1)
	m.Reset()
	if postReset != nil {
		postReset(t, m)
	}
	res, err := BootOn(m, input)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != kernel.OutcomeBoot {
		t.Fatalf("clean boot on reset rig: %v (%v)", res.Outcome, res.RunErr)
	}
	for _, line := range res.Console {
		if line == "stale console line" {
			t.Error("console not cleared by Reset")
		}
	}
	return res
}

// TestRegistryBootAndReuse: a registered synthetic workload boots
// through the generic rig on both backends, and a campaign worker
// reuses one rig per workload with Reset between boots.
func TestRegistryBootAndReuse(t *testing.T) {
	dev := registerSynthetic(t)
	driver := "synthetic_c-" + t.Name()
	toks, err := ParseDriver(synthSource)
	if err != nil {
		t.Fatal(err)
	}
	for _, backend := range []Backend{BackendBlock, BackendCompiled, BackendInterp} {
		res, err := BootDriver(driver, BootInput{Tokens: toks, Backend: backend})
		if err != nil {
			t.Fatal(err)
		}
		if res.Outcome != kernel.OutcomeBoot {
			t.Fatalf("%s: outcome = %v (%v)", backend, res.Outcome, res.RunErr)
		}
		if len(res.Console) == 0 || res.Console[0] != "synthetic: probed" {
			t.Errorf("%s: console = %v", backend, res.Console)
		}
	}
	if dev.builds != 3 || dev.runs != 3 {
		t.Errorf("fresh-rig boots: builds=%d runs=%d, want 3/3", dev.builds, dev.runs)
	}

	// A worker's rig pool builds the workload's rig once and Resets it
	// on every later request — the campaign hot-path contract.
	rigs := make(rigSet)
	r1, err := rigs.rigFor(driver, "")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := rigs.rigFor(driver, "")
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("worker built a second rig instead of reusing the first")
	}
	if dev.builds != 4 {
		t.Errorf("builds = %d after worker reuse, want 4", dev.builds)
	}
	if dev.resets != 1 {
		t.Errorf("resets = %d after worker reuse, want 1", dev.resets)
	}
	// Rig.Reset also rewinds the kernel.
	r1.Kern.Printk("stale")
	r1.Reset()
	if dev.resets != 2 || len(r1.Kern.ConsoleView()) != 0 {
		t.Errorf("Reset: resets=%d console=%v", dev.resets, r1.Kern.ConsoleView())
	}
}

// TestRegistryValidation: structurally invalid descriptors and
// double-registrations are rejected.
func TestRegistryValidation(t *testing.T) {
	noop := func(r *Rig) (any, error) { return nil, nil }
	run := func(r *Rig, ex Engine, res *BootResult) (error, bool) { return nil, false }
	for name, d := range map[string]WorkloadDesc{
		"empty name":              {Drivers: []string{"x_c"}, Build: noop, Run: run},
		"no drivers":              {Name: "no-drivers-" + t.Name(), Build: noop, Run: run},
		"no hooks":                {Name: "no-hooks-" + t.Name(), Drivers: []string{"y_c"}},
		"duplicate name":          {Name: "ide", Drivers: []string{"z_c"}, Build: noop, Run: run},
		"claimed driver":          {Name: "other-" + t.Name(), Drivers: []string{"ide_c"}, Build: noop, Run: run},
		"name shadowing a driver": {Name: "ide_c", Drivers: []string{"w_c"}, Build: noop, Run: run},
		"driver shadowing a name": {Name: "shadow-" + t.Name(), Drivers: []string{"ide"}, Build: noop, Run: run},
	} {
		if err := RegisterWorkload(d); err == nil {
			t.Errorf("%s: registration accepted", name)
		}
	}
}

// TestRegistryUnknownDriver: lookups and boots of unrouted drivers fail
// with an informative error instead of defaulting to some rig.
func TestRegistryUnknownDriver(t *testing.T) {
	if _, err := WorkloadFor("floppy_c"); err == nil ||
		!strings.Contains(err.Error(), "floppy_c") {
		t.Errorf("WorkloadFor(floppy_c) = %v", err)
	}
	if _, err := NewRig("floppy_c"); err == nil {
		t.Error("NewRig built a rig for an unrouted driver")
	}
	if _, err := BootDriver("floppy_c", BootInput{}); err == nil {
		t.Error("BootDriver booted an unrouted driver")
	}
	if _, err := make(rigSet).rigFor("floppy_c", ""); err == nil {
		t.Error("worker built a rig for an unrouted driver")
	}
}

// TestRegistryCoversCorpus: every embedded driver routes to a workload
// whose descriptor lists it, and the registered workloads carry the
// spec/bases a Devil driver needs.
func TestRegistryCoversCorpus(t *testing.T) {
	for _, d := range Workloads() {
		if strings.HasPrefix(d.Name, "synthetic") {
			continue
		}
		if d.Spec == "" {
			t.Errorf("workload %s has no specification", d.Name)
		}
		if _, err := d.Interface(); err != nil {
			t.Errorf("workload %s: interface: %v", d.Name, err)
		}
		for _, drv := range d.Drivers {
			back, err := WorkloadFor(drv)
			if err != nil {
				t.Errorf("driver %s: %v", drv, err)
				continue
			}
			if back.Name != d.Name {
				t.Errorf("driver %s routes to %s, registered under %s", drv, back.Name, d.Name)
			}
		}
	}
}
