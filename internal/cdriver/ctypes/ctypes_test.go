package ctypes_test

import (
	"testing"

	"repro/internal/cdriver/cast"
	"repro/internal/cdriver/ctypes"
	"repro/internal/devil/codegen"
)

func TestBuiltinInventory(t *testing.T) {
	env := ctypes.NewEnv(false)
	for _, name := range []string{
		"inb", "inw", "inl", "outb", "outw", "outl",
		"panic", "printk", "udelay",
		"kbuf_read8", "kbuf_write8", "kbuf_read16", "kbuf_write16",
	} {
		f, ok := env.Funcs[name]
		if !ok {
			t.Errorf("builtin %q missing", name)
			continue
		}
		if !f.Builtin {
			t.Errorf("%q not marked builtin", name)
		}
	}
	if env.Funcs["printk"].Variadic != true {
		t.Error("printk must be variadic")
	}
}

func testIface() *codegen.Interface {
	return &codegen.Interface{
		SpecFile: "t.dil",
		Consts:   map[string]string{"ON": "Power", "OFF": "Power"},
		Vars: []codegen.VarSig{
			{Name: "Power", TypeID: 1, Kind: codegen.KindEnum,
				Readable: true, Writable: true, Consts: []string{"ON", "OFF"}},
			{Name: "Count", TypeID: 2, Kind: codegen.KindInt, Writable: true},
			{Name: "Delta", TypeID: 3, Kind: codegen.KindSignedInt, Readable: true},
			{Name: "Data", TypeID: 4, Kind: codegen.KindInt, Width: 16,
				Readable: true, Writable: true, Block: true},
		},
	}
}

func TestAddStubsStrict(t *testing.T) {
	env := ctypes.NewEnv(true)
	if err := env.AddStubs(testIface()); err != nil {
		t.Fatal(err)
	}
	get := env.Funcs["get_Power"]
	if get == nil || get.Result.Kind != cast.TypeDevilStruct || get.Result.Name != "Power_t" {
		t.Errorf("get_Power signature: %+v", get)
	}
	set := env.Funcs["set_Power"]
	if set == nil || len(set.Params) != 1 || set.Params[0].Name != "Power_t" {
		t.Errorf("set_Power signature: %+v", set)
	}
	if env.Consts["ON"].Name != "Power_t" {
		t.Errorf("constant ON typed %v", env.Consts["ON"])
	}
	// Integer-typed variables use plain C types (Figure 1 style).
	if f := env.Funcs["set_Count"]; f.Params[0].Kind != cast.TypeU32 {
		t.Errorf("set_Count param: %v", f.Params[0])
	}
	if f := env.Funcs["get_Delta"]; f.Result.Kind != cast.TypeS32 {
		t.Errorf("get_Delta result: %v", f.Result)
	}
	// No setter for read-only, no getter for write-only.
	if _, ok := env.Funcs["set_Delta"]; ok {
		t.Error("setter generated for read-only variable")
	}
	if _, ok := env.Funcs["get_Count"]; ok {
		t.Error("getter generated for write-only variable")
	}
	// Block stubs for the FIFO variable.
	if f, ok := env.Funcs["get_block_Data"]; !ok || len(f.Params) != 2 {
		t.Errorf("get_block_Data: %+v", f)
	}
	if _, ok := env.Funcs["set_block_Data"]; !ok {
		t.Error("set_block_Data missing")
	}
	// dil_eq is registered.
	if f, ok := env.Funcs["dil_eq"]; !ok || f.StubKind != "eq" {
		t.Errorf("dil_eq: %+v", f)
	}
}

func TestAddStubsPermissive(t *testing.T) {
	env := ctypes.NewEnv(false)
	if err := env.AddStubs(testIface()); err != nil {
		t.Fatal(err)
	}
	if env.Funcs["get_Power"].Result.Kind != cast.TypeU32 {
		t.Errorf("permissive get_Power returns %v", env.Funcs["get_Power"].Result)
	}
	if env.Consts["ON"].Kind != cast.TypeU32 {
		t.Errorf("permissive constant typed %v", env.Consts["ON"])
	}
}

func TestStringTypeHelpers(t *testing.T) {
	if !ctypes.IsStringType(ctypes.StringType()) {
		t.Error("StringType not recognised")
	}
	if ctypes.IsStringType(cast.CType{Kind: cast.TypeVoid}) {
		t.Error("plain void recognised as string")
	}
}

func TestBuiltinNamesSorted(t *testing.T) {
	env := ctypes.NewEnv(false)
	names := env.BuiltinNames()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted at %d: %v", i, names[i-1:i+1])
		}
	}
}
