package pci_test

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/hw/pci"
)

func newRig(t *testing.T) (*hw.Bus, *hw.Clock, *pci.BusMaster) {
	t.Helper()
	clock := &hw.Clock{}
	bus := hw.NewBus()
	bm := pci.New(clock)
	if err := bus.Map(0xc000, 1, bm.Command()); err != nil {
		t.Fatal(err)
	}
	if err := bus.Map(0xc002, 1, bm.Status()); err != nil {
		t.Fatal(err)
	}
	if err := bus.Map(0xc004, 1, bm.Descriptor()); err != nil {
		t.Fatal(err)
	}
	return bus, clock, bm
}

func TestDescriptorAlignment(t *testing.T) {
	bus, _, bm := newRig(t)
	if err := bus.Out32(0xc004, 0x12345677); err != nil {
		t.Fatal(err)
	}
	if got := bm.DescriptorTable(); got != 0x12345674 {
		t.Errorf("descriptor table = %#x, want dword-aligned 0x12345674", got)
	}
	v, err := bus.In32(0xc004)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0x12345674 {
		t.Errorf("readback = %#x", v)
	}
}

func TestDMAEngineLifecycle(t *testing.T) {
	bus, clock, _ := newRig(t)
	// Start a read transfer.
	if err := bus.Out8(0xc000, pci.BMStart|pci.BMReadMode); err != nil {
		t.Fatal(err)
	}
	s, _ := bus.In8(0xc002)
	if s&pci.BMActive == 0 {
		t.Fatalf("engine not active after start: %#x", s)
	}
	clock.Tick(100)
	s, _ = bus.In8(0xc002)
	if s&pci.BMActive != 0 {
		t.Errorf("engine still active after completion: %#x", s)
	}
	if s&pci.BMInterrupt == 0 {
		t.Errorf("completion interrupt not latched: %#x", s)
	}
	// Write-1-to-clear the interrupt.
	if err := bus.Out8(0xc002, pci.BMInterrupt); err != nil {
		t.Fatal(err)
	}
	s, _ = bus.In8(0xc002)
	if s&pci.BMInterrupt != 0 {
		t.Errorf("interrupt latch survived clear: %#x", s)
	}
}

func TestStopCancelsTransfer(t *testing.T) {
	bus, _, _ := newRig(t)
	if err := bus.Out8(0xc000, pci.BMStart); err != nil {
		t.Fatal(err)
	}
	if err := bus.Out8(0xc000, 0); err != nil {
		t.Fatal(err)
	}
	s, _ := bus.In8(0xc002)
	if s&pci.BMActive != 0 {
		t.Errorf("engine active after stop: %#x", s)
	}
}
