package ne2000_test

import (
	"bytes"
	"testing"

	"repro/internal/hw"
	"repro/internal/hw/ne2000"
)

func newRig(t *testing.T) (*hw.Bus, *ne2000.NIC) {
	t.Helper()
	bus := hw.NewBus()
	nic := ne2000.New()
	if err := bus.Map(0x300, 16, nic.Registers()); err != nil {
		t.Fatal(err)
	}
	if err := bus.Map(0x310, 1, nic.DataPort()); err != nil {
		t.Fatal(err)
	}
	if err := bus.Map(0x31f, 1, nic.ResetPort()); err != nil {
		t.Fatal(err)
	}
	return bus, nic
}

func out(t *testing.T, bus *hw.Bus, port hw.Port, v uint8) {
	t.Helper()
	if err := bus.Out8(port, v); err != nil {
		t.Fatal(err)
	}
}

func in(t *testing.T, bus *hw.Bus, port hw.Port) uint8 {
	t.Helper()
	v, err := bus.In8(port)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestResetLatch(t *testing.T) {
	bus, _ := newRig(t)
	_ = in(t, bus, 0x31f) // reset pulse
	if isr := in(t, bus, 0x307); isr&ne2000.IsrReset == 0 {
		t.Errorf("reset latch not set: isr=%#x", isr)
	}
}

func TestPagedMACRegisters(t *testing.T) {
	bus, nic := newRig(t)
	out(t, bus, 0x300, 0x21) // stop, page 0
	// Write PSTART on page 0 offset 1.
	out(t, bus, 0x301, 0x46)
	// Switch to page 1 and write PAR0 at the same offset.
	out(t, bus, 0x300, 0x61)
	out(t, bus, 0x301, 0xaa)
	if mac := nic.MAC(); mac[0] != 0xaa {
		t.Errorf("PAR0 = %#x, want 0xaa", mac[0])
	}
	// Page 0 PSTART must be untouched by the page-1 write.
	out(t, bus, 0x300, 0x21)
	out(t, bus, 0x302, 0x60) // pstop, to exercise another page-0 reg
	if got := in(t, bus, 0x307); got&ne2000.IsrReset == 0 {
		t.Log("isr state:", got) // informational
	}
}

// setupCore brings the NIC into a running loopback configuration.
func setupCore(t *testing.T, bus *hw.Bus) {
	out(t, bus, 0x300, 0x21) // stop, abort DMA, page 0
	out(t, bus, 0x30e, 0x01) // DCR: word transfer
	out(t, bus, 0x30d, 0x02) // TCR: internal loopback
	out(t, bus, 0x301, 0x46) // PSTART
	out(t, bus, 0x302, 0x60) // PSTOP
	out(t, bus, 0x303, 0x46) // BNRY
	out(t, bus, 0x300, 0x61) // page 1
	out(t, bus, 0x307, 0x47) // CURR
	out(t, bus, 0x300, 0x22) // start, page 0
}

func dmaWrite(t *testing.T, bus *hw.Bus, addr uint16, data []byte) {
	out(t, bus, 0x308, uint8(addr))
	out(t, bus, 0x309, uint8(addr>>8))
	out(t, bus, 0x30a, uint8(len(data)))
	out(t, bus, 0x30b, uint8(len(data)>>8))
	out(t, bus, 0x300, 0x12) // start + DMA write
	for i := 0; i < len(data); i += 2 {
		if err := bus.Out16(0x310, uint16(data[i])|uint16(data[i+1])<<8); err != nil {
			t.Fatal(err)
		}
	}
}

func dmaRead(t *testing.T, bus *hw.Bus, addr uint16, n int) []byte {
	out(t, bus, 0x308, uint8(addr))
	out(t, bus, 0x309, uint8(addr>>8))
	out(t, bus, 0x30a, uint8(n))
	out(t, bus, 0x30b, uint8(n>>8))
	out(t, bus, 0x300, 0x0a) // start + DMA read
	data := make([]byte, 0, n)
	for i := 0; i < n; i += 2 {
		w, err := bus.In16(0x310)
		if err != nil {
			t.Fatal(err)
		}
		data = append(data, byte(w), byte(w>>8))
	}
	return data
}

func TestRemoteDMARoundTrip(t *testing.T) {
	bus, _ := newRig(t)
	setupCore(t, bus)
	payload := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	dmaWrite(t, bus, 0x4000, payload)
	if isr := in(t, bus, 0x307); isr&ne2000.IsrRemoteDone == 0 {
		t.Errorf("remote DMA complete not latched: %#x", isr)
	}
	got := dmaRead(t, bus, 0x4000, len(payload))
	if !bytes.Equal(got, payload) {
		t.Errorf("DMA round trip = % x, want % x", got, payload)
	}
}

func TestLoopbackTransmitReceive(t *testing.T) {
	bus, nic := newRig(t)
	setupCore(t, bus)
	frame := make([]byte, 60)
	for i := range frame {
		frame[i] = byte(i)
	}
	dmaWrite(t, bus, 0x4000, frame)
	out(t, bus, 0x304, 0x40)              // TPSR
	out(t, bus, 0x305, uint8(len(frame))) // TBCR0
	out(t, bus, 0x306, 0)
	out(t, bus, 0x300, 0x26) // start + TXP
	isr := in(t, bus, 0x307)
	if isr&ne2000.IsrPacketSent == 0 {
		t.Fatalf("PTX not set: isr=%#x", isr)
	}
	if isr&ne2000.IsrPacketReceived == 0 {
		t.Fatalf("PRX not set after loopback: isr=%#x", isr)
	}
	// The frame sits behind a 4-byte ring header at CURR's old page.
	got := dmaRead(t, bus, 0x4700, len(frame)+4)
	if got[0] != 0x01 {
		t.Errorf("ring status byte = %#x, want 0x01", got[0])
	}
	length := int(got[2]) | int(got[3])<<8
	if length != len(frame)+4 {
		t.Errorf("ring length = %d, want %d", length, len(frame)+4)
	}
	if !bytes.Equal(got[4:], frame) {
		t.Error("looped frame differs from transmitted frame")
	}
	_ = nic
}

func TestOversizeReceiveRejected(t *testing.T) {
	bus, nic := newRig(t)
	setupCore(t, bus)
	big := make([]byte, 8*1024)
	nic.Receive(big)
	if isr := in(t, bus, 0x307); isr&ne2000.IsrReceiveError == 0 {
		t.Errorf("oversize frame accepted: isr=%#x", isr)
	}
}

func TestTransmitWhileStoppedDoesNothing(t *testing.T) {
	bus, _ := newRig(t)
	out(t, bus, 0x300, 0x21) // stopped
	out(t, bus, 0x300, 0x25) // TXP while stopped
	if isr := in(t, bus, 0x307); isr&ne2000.IsrPacketSent != 0 {
		t.Errorf("stopped NIC transmitted: isr=%#x", isr)
	}
}
