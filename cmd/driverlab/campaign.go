package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/campaign"
	"repro/internal/drivers"
	"repro/internal/experiment"
)

// runCampaign dispatches the campaign subcommands: run, resume, merge,
// report.
func runCampaign(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("campaign: want a verb: run, resume, merge or report")
	}
	verb, rest := args[0], args[1:]
	switch verb {
	case "run":
		return campaignRun(rest, false)
	case "resume":
		return campaignRun(rest, true)
	case "merge":
		return campaignMerge(rest)
	case "report":
		return campaignReport(rest)
	default:
		return fmt.Errorf("campaign: unknown verb %q (want run, resume, merge or report)", verb)
	}
}

// parseShards parses "-shard 0,2,5" into indices.
func parseShards(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad shard list %q: %w", s, err)
		}
		out = append(out, n)
	}
	return out, nil
}

// storedSpec extracts the spec record of an existing store.
func storedSpec(store campaign.Store) (campaign.Spec, bool) {
	for _, r := range store.Records() {
		if r.Kind == campaign.KindSpec && r.Spec != nil {
			return *r.Spec, true
		}
	}
	return campaign.Spec{}, false
}

// campaignRun executes (or resumes) a campaign against a JSONL store.
// Resume takes its spec from the store, so it only accepts execution
// flags; the run-shaping flags are rejected rather than silently
// ignored.
func campaignRun(args []string, resume bool) error {
	verb := "run"
	if resume {
		verb = "resume"
	}
	fs := flag.NewFlagSet("driverlab campaign "+verb, flag.ContinueOnError)
	store := fs.String("store", "", "JSONL result store (required)")
	shard := fs.String("shard", "", "comma-separated shard indices to run (default: all)")
	workers := fs.Int("workers", 0, "boot worker count (default: GOMAXPROCS)")
	quiet := fs.Bool("quiet", false, "suppress live progress")
	var name, driversFlag, stub, backend *string
	var sample, shards *int
	var seed *uint64
	var permissive *bool
	if !resume {
		name = fs.String("name", "campaign", "campaign name")
		driversFlag = fs.String("drivers", "ide_c,ide_devil",
			"comma-separated driver list ("+strings.Join(drivers.Names(), ", ")+")")
		sample = fs.Int("sample", 25, "percentage of mutants to boot (paper: 25)")
		seed = fs.Uint64("seed", 2001, "sampling seed")
		shards = fs.Int("shards", 1, "shard count the work-list partitions into")
		stub = fs.String("stub", "", "Devil stub mode: debug (default) or production")
		permissive = fs.Bool("permissive", false, "downgrade CDevil typing to plain C rules")
		backend = fs.String("backend", "", "hwC execution backend: compiled (default) or interp")
	}
	// Execution-strategy knobs are fingerprint-excluded, so both run and
	// resume accept them: a store started under one front end or flush
	// interval may finish under another.
	frontend := fs.String("frontend", "", "per-mutant front end: incremental (default) or full")
	flushEvery := fs.Int("flush-every", 0,
		"store checkpoint interval in records (0: the store default of 64); raise on long campaigns to trade crash-loss window for fewer writes")
	if help, err := parseFlags(fs, args); help || err != nil {
		return err
	}
	if *store == "" {
		return fmt.Errorf("campaign run: -store is required")
	}
	shardSel, err := parseShards(*shard)
	if err != nil {
		return err
	}

	st, err := campaign.OpenFile(*store)
	if err != nil {
		return err
	}
	defer st.Close()

	var spec campaign.Spec
	if resume {
		// Resume takes the spec from the store itself; only the
		// fingerprint-excluded execution knobs may be overridden.
		prior, ok := storedSpec(st)
		if !ok {
			return fmt.Errorf("campaign resume: %s holds no spec record", *store)
		}
		spec = prior
		if _, err := experiment.ParseFrontend(*frontend); err != nil {
			return err
		}
		if *frontend != "" {
			spec.Frontend = *frontend
		}
		if *flushEvery > 0 {
			spec.FlushEvery = *flushEvery
		}
		fmt.Fprintf(os.Stderr, "campaign: resuming %q from %s\n", spec.Name, *store)
	} else {
		// Run builds the spec from flags; on an existing store the engine
		// rejects it if the fingerprint differs from the stored spec.
		var driverList []string
		for _, d := range strings.Split(*driversFlag, ",") {
			if d = strings.TrimSpace(d); d != "" {
				driverList = append(driverList, d)
			}
		}
		// Aliases of the same engine ("tree", "compiled" vs "") are
		// canonicalized by Spec.Normalized, so they fingerprint the same;
		// here only validity is checked.
		if _, err := experiment.ParseBackend(*backend); err != nil {
			return err
		}
		if _, err := experiment.ParseFrontend(*frontend); err != nil {
			return err
		}
		spec = campaign.Spec{
			Name:       *name,
			Drivers:    driverList,
			SamplePct:  *sample,
			Seed:       *seed,
			Shards:     *shards,
			StubMode:   *stub,
			Permissive: *permissive,
			Backend:    *backend,
			Frontend:   *frontend,
			FlushEvery: *flushEvery,
		}
	}

	opts := campaign.Options{Workers: *workers, Shards: shardSel}
	if !*quiet {
		opts.Progress = progressPrinter()
	}
	sum, err := campaign.Run(spec, experiment.NewWorkload(), st, opts)
	if !*quiet {
		fmt.Fprintln(os.Stderr)
	}
	if err != nil {
		return err
	}
	dedup := ""
	if sum.Deduped > 0 {
		dedup = fmt.Sprintf(", %d recorded from identical streams", sum.Deduped)
	}
	fmt.Printf("campaign %q: %d selected, %d already stored, %d booted this run%s\n",
		spec.Normalized().Name, sum.Total, sum.Skipped, sum.Ran, dedup)
	for _, line := range campaign.Completion(st.Records()) {
		fmt.Println("  " + line)
	}
	return nil
}

// progressPrinter returns a rate-limited live progress callback.
func progressPrinter() func(done, total int) {
	start := time.Now()
	var last time.Time
	return func(done, total int) {
		now := time.Now()
		if done < total && now.Sub(last) < 200*time.Millisecond {
			return
		}
		last = now
		rate := float64(done) / now.Sub(start).Seconds()
		fmt.Fprintf(os.Stderr, "\rcampaign: %d/%d booted (%.1f%%, %.1f boots/s)   ",
			done, total, 100*float64(done)/float64(total), rate)
	}
}

// campaignMerge folds shard stores into one.
func campaignMerge(args []string) error {
	fs := flag.NewFlagSet("driverlab campaign merge", flag.ContinueOnError)
	out := fs.String("out", "", "merged JSONL store to write (required)")
	if help, err := parseFlags(fs, args); help || err != nil {
		return err
	}
	ins := fs.Args()
	if *out == "" || len(ins) == 0 {
		return fmt.Errorf("campaign merge: want -out merged.jsonl plus input stores")
	}
	dst, err := campaign.OpenFile(*out)
	if err != nil {
		return err
	}
	defer dst.Close()
	var sources []campaign.Store
	for _, path := range ins {
		src, err := campaign.OpenFile(path)
		if err != nil {
			return err
		}
		defer src.Close()
		sources = append(sources, src)
	}
	if err := campaign.Merge(dst, sources...); err != nil {
		return err
	}
	fmt.Printf("merged %d stores into %s\n", len(ins), *out)
	for _, line := range campaign.Completion(dst.Records()) {
		fmt.Println("  " + line)
	}
	return nil
}

// campaignReport re-derives the paper's tables from a store.
func campaignReport(args []string) error {
	fs := flag.NewFlagSet("driverlab campaign report", flag.ContinueOnError)
	store := fs.String("store", "", "JSONL result store (required)")
	if help, err := parseFlags(fs, args); help || err != nil {
		return err
	}
	if *store == "" {
		return fmt.Errorf("campaign report: -store is required")
	}
	st, err := campaign.OpenFile(*store)
	if err != nil {
		return err
	}
	defer st.Close()
	spec, ok := storedSpec(st)
	if !ok {
		return fmt.Errorf("campaign report: %s holds no spec record", *store)
	}
	tables, order, err := campaign.Aggregate(st.Records())
	if err != nil {
		return err
	}
	for _, driver := range order {
		t := tables[driver]
		status := "complete"
		if !t.Complete() {
			status = fmt.Sprintf("partial: %d/%d booted", t.Results, t.Selected)
		}
		caption := fmt.Sprintf("Campaign %q: mutations on %s (%d%% sample, seed %d; %s)",
			spec.Name, driver, spec.SamplePct, spec.Seed, status)
		fmt.Println(experiment.FormatDriverTable(experiment.TableFromCampaign(t), caption))
	}
	return nil
}
