package ccov

import (
	"reflect"
	"testing"
)

func TestAddCoveredLen(t *testing.T) {
	s := New(100)
	for _, line := range []int{1, 64, 65, 100, 1} {
		s.Add(line)
	}
	s.Add(0)  // "no position" marker: ignored
	s.Add(-3) // defensive: ignored
	if s.Len() != 4 {
		t.Errorf("Len = %d, want 4", s.Len())
	}
	for _, line := range []int{1, 64, 65, 100} {
		if !s.Covered(line) {
			t.Errorf("line %d not covered", line)
		}
	}
	for _, line := range []int{0, 2, 63, 66, 101, 100000} {
		if s.Covered(line) {
			t.Errorf("line %d covered, want not", line)
		}
	}
}

func TestZeroValueGrows(t *testing.T) {
	var s Set
	s.Add(5000)
	if !s.Covered(5000) || s.Len() != 1 {
		t.Errorf("zero-value set: Covered(5000)=%v Len=%d", s.Covered(5000), s.Len())
	}
}

func TestLinesAndSlice(t *testing.T) {
	s := New(300)
	want := []int{3, 64, 127, 128, 255, 300}
	for i := len(want) - 1; i >= 0; i-- {
		s.Add(want[i])
	}
	if got := s.Slice(); !reflect.DeepEqual(got, want) {
		t.Errorf("Slice = %v, want %v", got, want)
	}
	// Early-exit iteration.
	var first int
	for line := range s.Lines() {
		first = line
		break
	}
	if first != 3 {
		t.Errorf("first line = %d, want 3", first)
	}
}

func TestResetKeepsStorage(t *testing.T) {
	s := New(200)
	s.Add(7)
	s.Add(199)
	words := &s.words[0]
	s.Reset()
	if s.Len() != 0 || s.Covered(7) || s.Covered(199) {
		t.Error("Reset left lines covered")
	}
	if &s.words[0] != words {
		t.Error("Reset reallocated the backing storage")
	}
}

func TestEqualAcrossCapacities(t *testing.T) {
	a := New(64)
	b := New(4096)
	for _, line := range []int{2, 40, 60} {
		a.Add(line)
		b.Add(line)
	}
	if !a.Equal(b) || !b.Equal(a) {
		t.Error("sets with equal lines but different capacities compare unequal")
	}
	b.Add(2000)
	if a.Equal(b) || b.Equal(a) {
		t.Error("different sets compare equal")
	}
}

func TestClone(t *testing.T) {
	a := New(10)
	a.Add(9)
	b := a.Clone()
	a.Add(3)
	if b.Covered(3) || !b.Covered(9) || b.Len() != 1 {
		t.Error("Clone is not independent")
	}
}
