package specs

import (
	"embed"
	"fmt"
	"sort"
	"strings"
)

//go:embed *.dil
var files embed.FS

// Spec is one embedded specification.
type Spec struct {
	// Name is the short device name ("busmouse", "ide", ...).
	Name string
	// Title is the device description used in Table 2.
	Title string
	// Filename is the embedded file name.
	Filename string
	// Source is the specification text.
	Source string
}

// Lines counts the non-blank, non-comment-only source lines, matching the
// "Number of lines" column of Table 2.
func (s Spec) Lines() int {
	n := 0
	for _, line := range strings.Split(s.Source, "\n") {
		t := strings.TrimSpace(line)
		if t == "" || strings.HasPrefix(t, "//") {
			continue
		}
		n++
	}
	return n
}

var titles = map[string]string{
	"busmouse": "Logitech Busmouse",
	"pci":      "PCI Bus Master (Intel 82371FB)",
	"ide":      "IDE (Intel PIIX4)",
	"dma":      "DMA controller (Intel 8237)",
	"ne2000":   "Ethernet NE2000 (ns8390)",
	"permedia": "Graphic card (Permedia 2)",
}

// tableOrder is the row order of Table 2.
var tableOrder = []string{"busmouse", "pci", "ide", "ne2000", "permedia"}

// Load returns the named specification.
func Load(name string) (Spec, error) {
	fn := name + ".dil"
	data, err := files.ReadFile(fn)
	if err != nil {
		return Spec{}, fmt.Errorf("specs: unknown specification %q", name)
	}
	title := titles[name]
	if title == "" {
		title = name
	}
	return Spec{Name: name, Title: title, Filename: fn, Source: string(data)}, nil
}

// All returns every embedded specification in Table 2 row order, followed by
// any extras in lexical order.
func All() []Spec {
	seen := make(map[string]bool, len(tableOrder))
	var out []Spec
	for _, name := range tableOrder {
		if s, err := Load(name); err == nil {
			out = append(out, s)
			seen[name] = true
		}
	}
	entries, err := files.ReadDir(".")
	if err != nil {
		return out
	}
	var extras []string
	for _, e := range entries {
		name := strings.TrimSuffix(e.Name(), ".dil")
		if !seen[name] {
			extras = append(extras, name)
		}
	}
	sort.Strings(extras)
	for _, name := range extras {
		if s, err := Load(name); err == nil {
			out = append(out, s)
		}
	}
	return out
}
