package experiment

import (
	"repro/internal/cdriver/ccompile"
	"repro/internal/obs"
)

// Phase labels of the boot pipeline, in execution order. The
// incremental front end records respan/check/compile for its span
// re-parse, declaration re-check and in-place patch; the full pipeline
// records the same three phases for its whole-program parse, check and
// backend construction (compile includes insmod-time global
// initialisers). Execute covers the workload's boot sequence, classify
// the outcome taxonomy tail (console scan, coverage, damage audit).
const (
	PhaseRespan   = "respan"
	PhaseCheck    = "check"
	PhaseCompile  = "compile"
	PhaseExecute  = "execute"
	PhaseClassify = "classify"
)

// BootPhases lists the phase labels in pipeline order.
var BootPhases = []string{PhaseRespan, PhaseCheck, PhaseCompile, PhaseExecute, PhaseClassify}

// Metric family names the boot pipeline registers. Every name listed
// here must appear in ARCHITECTURE.md's Observability section —
// scripts/check_docs.sh enforces that via `driverlab metrics`.
const (
	// MetricBootPhase histograms wall time per pipeline phase, labelled
	// {workload, phase}.
	MetricBootPhase = "driverlab_boot_phase_seconds"
	// MetricInterpFallbacks counts boots that requested the compiled
	// backend but executed on the reference interpreter because the
	// compiler rejected the program shape (ErrUnsupported).
	MetricInterpFallbacks = "driverlab_boot_interp_fallbacks_total"
	// MetricFullFrontend counts incremental-front-end boots that fell
	// back to the full lex/parse/check/compile pipeline because the
	// mutation was span-unsafe (or the configuration cannot run
	// incrementally).
	MetricFullFrontend = "driverlab_boot_frontend_full_total"
	// MetricBlocksCompiled counts basic blocks the block backend fused
	// (full compiles and incremental patches alike).
	MetricBlocksCompiled = "driverlab_exec_blocks_compiled_total"
	// MetricBlocksFusedStmts counts statements folded into fused blocks.
	MetricBlocksFusedStmts = "driverlab_exec_blocks_fused_stmts_total"
	// MetricBlocksBatchedIO counts port-I/O call sites compiled to the
	// batched (cached bus-resolution) path.
	MetricBlocksBatchedIO = "driverlab_exec_blocks_batched_io_total"
	// MetricBlocksFallback counts port-I/O call sites the block backend
	// left on the generic per-access bus path (wrong-arity mutants).
	MetricBlocksFallback = "driverlab_exec_blocks_fallback_total"
	// MetricSuperblocksCompiled counts loops the block backend compiled
	// to single-closure superblocks (threaded loop bodies).
	MetricSuperblocksCompiled = "driverlab_exec_superblocks_compiled_total"
	// MetricSuperblockStmts counts statements folded into loop
	// superblocks.
	MetricSuperblockStmts = "driverlab_exec_superblocks_stmts_total"
	// MetricSnapshotHits counts mutation boots served from the rig's
	// pristine-prefix snapshot instead of re-running global
	// initialisers.
	MetricSnapshotHits = "driverlab_exec_snapshot_hits_total"
	// MetricSnapshotFallbacks counts mutation boots on a
	// snapshot-enabled rig that ran the full prefix because a safety
	// gate failed (scenario rig, Devil stubs, non-function mutant,
	// calls in global initialisers, cold snapshot, ...).
	MetricSnapshotFallbacks = "driverlab_exec_snapshot_fallbacks_total"
)

// BootMetricNames lists every metric family the boot pipeline can
// register, for the docs check and the `driverlab metrics` subcommand.
func BootMetricNames() []string {
	return []string{MetricBootPhase, MetricInterpFallbacks, MetricFullFrontend,
		MetricBlocksCompiled, MetricBlocksFusedStmts, MetricBlocksBatchedIO, MetricBlocksFallback,
		MetricSuperblocksCompiled, MetricSuperblockStmts,
		MetricSnapshotHits, MetricSnapshotFallbacks}
}

// bootObs is the per-rig instrumentation bundle the boot pipeline
// records into. All fields of the shared noObs instance are nil, and
// every obs operation on nil is a no-op, so the uninstrumented hot
// path costs one pointer load per phase and zero allocations.
type bootObs struct {
	respan   *obs.Histogram
	check    *obs.Histogram
	compile  *obs.Histogram
	execute  *obs.Histogram
	classify *obs.Histogram

	interpFallback *obs.Counter
	fullFrontend   *obs.Counter

	blocksCompiled   *obs.Counter
	blocksFused      *obs.Counter
	blocksBatchedIO  *obs.Counter
	blocksFallback   *obs.Counter
	superblocks      *obs.Counter
	superblockStmts  *obs.Counter
	snapshotHit      *obs.Counter
	snapshotFallback *obs.Counter
}

// addBlockStats records one compile's (or patch's) fusion work.
func (o *bootObs) addBlockStats(s ccompile.BlockStats) {
	o.blocksCompiled.Add(s.Blocks)
	o.blocksFused.Add(s.FusedStmts)
	o.blocksBatchedIO.Add(s.BatchedIO)
	o.blocksFallback.Add(s.FallbackIO)
	o.superblocks.Add(s.Superblocks)
	o.superblockStmts.Add(s.SuperStmts)
}

// noObs is the disabled bundle every rig starts with.
var noObs = &bootObs{}

// newBootObs binds one workload's boot-pipeline metrics on col (the
// disabled bundle when col is nil).
func newBootObs(col *obs.Collector, workload string) *bootObs {
	if col == nil {
		return noObs
	}
	h := func(phase string) *obs.Histogram {
		return col.Histogram(MetricBootPhase,
			"Wall time of one boot-pipeline phase.", obs.DurationBuckets,
			"workload", workload, "phase", phase)
	}
	return &bootObs{
		respan:   h(PhaseRespan),
		check:    h(PhaseCheck),
		compile:  h(PhaseCompile),
		execute:  h(PhaseExecute),
		classify: h(PhaseClassify),
		interpFallback: col.Counter(MetricInterpFallbacks,
			"Compiled-backend boots that executed on the reference interpreter (ErrUnsupported).",
			"workload", workload),
		fullFrontend: col.Counter(MetricFullFrontend,
			"Incremental-front-end boots that fell back to the full pipeline (span-unsafe).",
			"workload", workload),
		blocksCompiled: col.Counter(MetricBlocksCompiled,
			"Basic blocks the block backend fused (compiles and patches).",
			"workload", workload),
		blocksFused: col.Counter(MetricBlocksFusedStmts,
			"Statements folded into fused basic blocks.",
			"workload", workload),
		blocksBatchedIO: col.Counter(MetricBlocksBatchedIO,
			"Port-I/O call sites compiled to the batched bus-resolution path.",
			"workload", workload),
		blocksFallback: col.Counter(MetricBlocksFallback,
			"Port-I/O call sites left on the generic per-access bus path.",
			"workload", workload),
		superblocks: col.Counter(MetricSuperblocksCompiled,
			"Loops compiled to single-closure superblocks.",
			"workload", workload),
		superblockStmts: col.Counter(MetricSuperblockStmts,
			"Statements folded into loop superblocks.",
			"workload", workload),
		snapshotHit: col.Counter(MetricSnapshotHits,
			"Mutation boots served from the pristine-prefix snapshot.",
			"workload", workload),
		snapshotFallback: col.Counter(MetricSnapshotFallbacks,
			"Mutation boots that ran the full prefix on a snapshot-enabled rig.",
			"workload", workload),
	}
}
