// Package obs is the repository's zero-dependency observability layer:
// atomic counters and gauges, fixed-bucket histograms with span timers,
// a registry that renders Prometheus text format, and a small HTTP
// server exposing /metrics, /status and pprof.
//
// The package is built around one contract: instrumentation must cost
// nothing when it is off. A nil *Collector hands out nil metrics, and
// every operation on a nil metric — Inc, Add, Observe, Start/Stop — is
// a nil-check that costs about a nanosecond and zero allocations, so
// hot paths (the campaign boot loop runs tens of thousands of boots
// per second) carry their instrumentation unconditionally and the
// caller decides at construction time whether it is live.
//
// Metrics are identified by a family name plus ordered key/value label
// pairs; asking the collector for the same (name, labels) twice
// returns the same instance, so concurrent workers share counters by
// construction. Families render in registration order, series in
// creation order, which keeps /metrics output stable within a run.
package obs

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind names a metric family's type.
type Kind int

// The three metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "unknown"
}

// Collector is the metric registry. A nil *Collector is the disabled
// collector: it hands out nil metrics whose operations are no-ops.
type Collector struct {
	mu       sync.Mutex
	families map[string]*family
	order    []*family
}

// New returns an empty, enabled collector.
func New() *Collector {
	return &Collector{families: make(map[string]*family)}
}

// family is one metric family: a name, a help string, a kind, and the
// label-distinguished series registered under it.
type family struct {
	name   string
	help   string
	kind   Kind
	bounds []float64 // histogram families only

	mu     sync.Mutex
	series map[string]*series
	order  []*series
}

// series is one (family, labels) instance. Exactly one of the metric
// fields is non-nil, matching the family's kind.
type series struct {
	labels []string // ordered k,v pairs
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Counter registers (or returns) the counter series under name with
// the given ordered label pairs. A nil collector returns nil, and
// every Counter method on nil is a no-op.
func (c *Collector) Counter(name, help string, labels ...string) *Counter {
	if c == nil {
		return nil
	}
	return c.family(name, help, KindCounter, nil).at(labels).c
}

// Gauge registers (or returns) the gauge series under name.
func (c *Collector) Gauge(name, help string, labels ...string) *Gauge {
	if c == nil {
		return nil
	}
	return c.family(name, help, KindGauge, nil).at(labels).g
}

// Histogram registers (or returns) the histogram series under name.
// Buckets are ascending upper bounds (an implicit +Inf bucket is
// appended); the first registration of a family fixes its buckets.
func (c *Collector) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	if c == nil {
		return nil
	}
	return c.family(name, help, KindHistogram, buckets).at(labels).h
}

// Names returns the registered family names in registration order.
func (c *Collector) Names() []string {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(c.order))
	for i, f := range c.order {
		out[i] = f.name
	}
	return out
}

func (c *Collector) family(name, help string, kind Kind, bounds []float64) *family {
	c.mu.Lock()
	defer c.mu.Unlock()
	f, ok := c.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, bounds: bounds,
			series: make(map[string]*series)}
		c.families[name] = f
		c.order = append(c.order, f)
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %s registered as %s, requested as %s", name, f.kind, kind))
	}
	return f
}

func (f *family) at(labels []string) *series {
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: metric %s: labels must be key/value pairs, got %d strings",
			f.name, len(labels)))
	}
	key := strings.Join(labels, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: append([]string(nil), labels...)}
		switch f.kind {
		case KindCounter:
			s.c = &Counter{}
		case KindGauge:
			s.g = &Gauge{}
		case KindHistogram:
			s.h = newHistogram(f.bounds)
		}
		f.series[key] = s
		f.order = append(f.order, s)
	}
	return s
}

// Counter is a monotonically increasing atomic counter. The zero value
// is usable; a nil *Counter is the disabled counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n (n must not be negative; counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on the disabled counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. The zero value is usable; a
// nil *Gauge is the disabled gauge.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add shifts the value by n (which may be negative).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value (0 on the disabled gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}
