package hw

import (
	"fmt"
	"sort"
	"sync"
)

// Port is a port-space address (the argument of inb/outb).
type Port uint32

// AccessWidth is the size of a single I/O operation in bits.
type AccessWidth int

// Supported I/O operation widths.
const (
	Width8 AccessWidth = 8 + iota*8
	Width16
	Width32
)

// String returns the conventional name of the width ("8-bit", ...).
func (w AccessWidth) String() string {
	return fmt.Sprintf("%d-bit", int(w))
}

// BusFaultError reports an I/O access that no device could satisfy.
type BusFaultError struct {
	Port  Port
	Width AccessWidth
	Write bool
}

// Error implements the error interface.
func (e *BusFaultError) Error() string {
	dir := "read"
	if e.Write {
		dir = "write"
	}
	return fmt.Sprintf("bus fault: %s %s at port %#x (unmapped)", w(e.Width), dir, uint32(e.Port))
}

func w(width AccessWidth) string { return width.String() }

// Device is the handler side of the bus: a device claims a contiguous port
// range and services reads and writes within it. Offsets passed to Read and
// Write are relative to the claimed base.
type Device interface {
	// Name identifies the device in traces and error messages.
	Name() string
	// Read services an input operation at the given relative offset.
	Read(offset Port, width AccessWidth) (uint32, error)
	// Write services an output operation at the given relative offset.
	Write(offset Port, width AccessWidth, value uint32) error
}

// Access records one bus transaction, for the trace consumed by tests and by
// the experiment harness (dead-code detection and damage forensics).
type Access struct {
	Port  Port
	Width AccessWidth
	Write bool
	Value uint32
	Fault bool
}

// mapping binds a device to its claimed range [base, base+size).
type mapping struct {
	base Port
	size Port
	dev  Device
}

// Bus is a port-mapped I/O space. The zero value is unusable; construct with
// NewBus.
//
// Like the rest of a simulated machine (kernel, devices, stubs), a Bus
// belongs to one worker goroutine: the Read/Write data path is
// lock-free and caches the last-hit mapping, because a port access sits
// on the innermost loop of every driver poll. Configuration (Map,
// Unmap, SetTracing, SetFloating) happens during machine assembly,
// before execution starts, and stays internally locked.
type Bus struct {
	mu       sync.Mutex
	mappings []mapping
	last     *mapping // last-hit cache: polls hammer one register block
	inj      *Injector
	trace    []Access
	tracing  bool
	floating bool
	accesses uint64
	faults   uint64
}

// NewBus returns an empty I/O space with tracing disabled. Accesses to
// unmapped ports fault; call SetFloating for ISA semantics.
func NewBus() *Bus {
	return &Bus{}
}

// SetFloating selects what an access to an unmapped port does. A strict
// bus (the default) returns a BusFaultError; a floating bus behaves like
// the ISA bus of the paper's test machine — reads see the floating data
// lines (all ones) and writes vanish, so a typo'd port number does not by
// itself crash the machine.
func (b *Bus) SetFloating(on bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.floating = on
}

// SetInjector attaches (or, with nil, detaches) a fault injector to the
// mapped-device data path. Like Map, it is a machine-assembly call: the
// data path reads the field without locking, so it must not race with
// execution. A bus without an injector pays one nil check per access.
func (b *Bus) SetInjector(inj *Injector) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.inj = inj
}

// Injector returns the attached fault injector, if any.
func (b *Bus) Injector() *Injector {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.inj
}

// Map claims the port range [base, base+size) for dev. Overlapping claims are
// rejected, mirroring resource conflicts on a real bus.
func (b *Bus) Map(base Port, size Port, dev Device) error {
	if size == 0 {
		return fmt.Errorf("map %s: empty port range at %#x", dev.Name(), uint32(base))
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, m := range b.mappings {
		if base < m.base+m.size && m.base < base+size {
			return fmt.Errorf("map %s: ports %#x..%#x overlap %s at %#x..%#x",
				dev.Name(), uint32(base), uint32(base+size-1),
				m.dev.Name(), uint32(m.base), uint32(m.base+m.size-1))
		}
	}
	b.mappings = append(b.mappings, mapping{base: base, size: size, dev: dev})
	sort.Slice(b.mappings, func(i, j int) bool { return b.mappings[i].base < b.mappings[j].base })
	b.last = nil // the append/sort may have moved every mapping
	return nil
}

// Unmap releases every range claimed by dev.
func (b *Bus) Unmap(dev Device) {
	b.mu.Lock()
	defer b.mu.Unlock()
	kept := b.mappings[:0]
	for _, m := range b.mappings {
		if m.dev != dev {
			kept = append(kept, m)
		}
	}
	b.mappings = kept
	b.last = nil
}

// SetTracing enables or disables transaction tracing.
func (b *Bus) SetTracing(on bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tracing = on
	if !on {
		b.trace = nil
	}
}

// Trace returns a copy of the recorded transactions.
func (b *Bus) Trace() []Access {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Access, len(b.trace))
	copy(out, b.trace)
	return out
}

// Stats reports the total number of accesses and the number that faulted.
func (b *Bus) Stats() (accesses, faults uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.accesses, b.faults
}

// find locates the mapping that covers port, or nil. The one-entry
// cache makes the typical poll loop — thousands of reads of the same
// status register — a single range test.
func (b *Bus) find(port Port) *mapping {
	if m := b.last; m != nil && port >= m.base && port < m.base+m.size {
		return m
	}
	for i := range b.mappings {
		m := &b.mappings[i]
		if port >= m.base && port < m.base+m.size {
			b.last = m
			return m
		}
	}
	return nil
}

func (b *Bus) record(a Access) {
	b.accesses++
	if a.Fault {
		b.faults++
	}
	if b.tracing {
		b.trace = append(b.trace, a)
	}
}

// Read performs an input operation of the given width at port.
func (b *Bus) Read(port Port, width AccessWidth) (uint32, error) {
	m := b.find(port)
	if m == nil {
		if b.floating {
			b.record(Access{Port: port, Width: width, Value: widthMask(width)})
			return widthMask(width), nil
		}
		b.record(Access{Port: port, Width: width, Fault: true})
		return 0, &BusFaultError{Port: port, Width: width}
	}
	if b.inj != nil {
		return b.inj.read(b, m, port, width)
	}
	v, err := m.dev.Read(port-m.base, width)
	b.record(Access{Port: port, Width: width, Value: v, Fault: err != nil})
	if err != nil {
		return 0, deviceError(m, err)
	}
	return v & widthMask(width), nil
}

// deviceError wraps a device-level access error with the device name.
func deviceError(m *mapping, err error) error {
	return fmt.Errorf("%s: %w", m.dev.Name(), err)
}

// Write performs an output operation of the given width at port.
func (b *Bus) Write(port Port, width AccessWidth, value uint32) error {
	m := b.find(port)
	if m == nil {
		if b.floating {
			b.record(Access{Port: port, Width: width, Write: true, Value: value})
			return nil
		}
		b.record(Access{Port: port, Width: width, Write: true, Value: value, Fault: true})
		return &BusFaultError{Port: port, Width: width, Write: true}
	}
	if b.inj != nil {
		b.inj.write()
	}
	err := m.dev.Write(port-m.base, width, value&widthMask(width))
	b.record(Access{Port: port, Width: width, Write: true, Value: value, Fault: err != nil})
	if err != nil {
		return deviceError(m, err)
	}
	return nil
}

// PortHandle is a pre-resolved mapped port: the device lookup that
// Read/Write repeat on every access done once, up front. The compiled
// driver backends cache one handle per I/O call site, so a poll loop
// that hammers a status register pays the mapping scan a single time.
//
// A handle captures the mapping by value: Map and Unmap rewrite the
// bus's mapping slice, so interior pointers into it would dangle. That
// makes a handle valid only for the assembled machine — resolution
// happens after machine assembly, and the per-site caches re-resolve
// whenever the port expression's value changes.
type PortHandle struct {
	b    *Bus
	m    mapping
	port Port
}

// Resolve returns a handle for port, or nil when no device claims it
// (the caller falls back to the generic Read/Write path, which owns the
// floating/fault semantics).
func (b *Bus) Resolve(port Port) *PortHandle {
	b.mu.Lock()
	defer b.mu.Unlock()
	for i := range b.mappings {
		m := &b.mappings[i]
		if port >= m.base && port < m.base+m.size {
			return &PortHandle{b: b, m: *m, port: port}
		}
	}
	return nil
}

// Read performs an input operation at the resolved port. Semantics are
// identical to Bus.Read on a mapped port: injector, trace, accounting
// and error wrapping all match, only the mapping scan is skipped.
func (h *PortHandle) Read(width AccessWidth) (uint32, error) {
	b := h.b
	if b.inj != nil {
		return b.inj.read(b, &h.m, h.port, width)
	}
	v, err := h.m.dev.Read(h.port-h.m.base, width)
	b.record(Access{Port: h.port, Width: width, Value: v, Fault: err != nil})
	if err != nil {
		return 0, deviceError(&h.m, err)
	}
	return v & widthMask(width), nil
}

// Write performs an output operation at the resolved port, with
// Bus.Write's mapped-port semantics.
func (h *PortHandle) Write(width AccessWidth, value uint32) error {
	b := h.b
	if b.inj != nil {
		b.inj.write()
	}
	err := h.m.dev.Write(h.port-h.m.base, width, value&widthMask(width))
	b.record(Access{Port: h.port, Width: width, Write: true, Value: value, Fault: err != nil})
	if err != nil {
		return deviceError(&h.m, err)
	}
	return nil
}

// In8 is the inb(2) convenience wrapper.
func (b *Bus) In8(port Port) (uint8, error) {
	v, err := b.Read(port, Width8)
	return uint8(v), err
}

// Out8 is the outb(2) convenience wrapper.
func (b *Bus) Out8(port Port, v uint8) error {
	return b.Write(port, Width8, uint32(v))
}

// In16 is the inw(2) convenience wrapper.
func (b *Bus) In16(port Port) (uint16, error) {
	v, err := b.Read(port, Width16)
	return uint16(v), err
}

// Out16 is the outw(2) convenience wrapper.
func (b *Bus) Out16(port Port, v uint16) error {
	return b.Write(port, Width16, uint32(v))
}

// In32 is the inl(2) convenience wrapper.
func (b *Bus) In32(port Port) (uint32, error) {
	return b.Read(port, Width32)
}

// Out32 is the outl(2) convenience wrapper.
func (b *Bus) Out32(port Port, v uint32) error {
	return b.Write(port, Width32, v)
}

func widthMask(width AccessWidth) uint32 {
	switch width {
	case Width8:
		return 0xff
	case Width16:
		return 0xffff
	default:
		return 0xffffffff
	}
}
