package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/campaign"
	"repro/internal/drivers"
	"repro/internal/experiment"
)

// BenchDriver is the measured throughput of one driver's campaign.
type BenchDriver struct {
	Driver        string  `json:"driver"`
	Boots         int     `json:"boots"`
	ElapsedSec    float64 `json:"elapsed_s"`
	BootsPerSec   float64 `json:"boots_per_s"`
	AllocsPerBoot float64 `json:"allocs_per_boot"`
	BytesPerBoot  float64 `json:"bytes_per_boot"`
}

// BenchReport is the JSON shape of BENCH_campaign.json: one campaign
// throughput measurement per driver plus the aggregate, keyed by the
// exact configuration so numbers are comparable across PRs.
type BenchReport struct {
	Bench      string        `json:"bench"`
	Backend    string        `json:"backend"`
	SamplePct  int           `json:"sample_pct"`
	Seed       uint64        `json:"seed"`
	Workers    int           `json:"workers"`
	GoMaxProcs int           `json:"go_max_procs"`
	Drivers    []BenchDriver `json:"drivers"`
	Total      BenchDriver   `json:"total"`
}

// runBench measures end-to-end campaign throughput — the boots/s number
// every future scenario multiplies against — and optionally persists it.
func runBench(args []string) error {
	fs := flag.NewFlagSet("driverlab bench", flag.ContinueOnError)
	driversFlag := fs.String("drivers", strings.Join(drivers.Names(), ","),
		"comma-separated driver list to measure")
	sample := fs.Int("sample", 2, "percentage of mutants to boot per driver")
	seed := fs.Uint64("seed", 2001, "sampling seed")
	backendFlag := fs.String("backend", "", "hwC execution backend: compiled (default) or interp")
	workers := fs.Int("workers", 0, "boot worker count (default: GOMAXPROCS)")
	jsonOut := fs.Bool("json", false, "write the report to -out as JSON")
	out := fs.String("out", "BENCH_campaign.json", "report path for -json")
	if help, err := parseFlags(fs, args); help || err != nil {
		return err
	}
	backend, err := experiment.ParseBackend(*backendFlag)
	if err != nil {
		return err
	}

	report := BenchReport{
		Bench:      "campaign",
		Backend:    string(backend),
		SamplePct:  *sample,
		Seed:       *seed,
		Workers:    *workers,
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	wl := experiment.NewWorkload()
	for _, driver := range strings.Split(*driversFlag, ",") {
		driver = strings.TrimSpace(driver)
		if driver == "" {
			continue
		}
		opts := experiment.MutationOptions{SamplePct: *sample, Seed: *seed, Backend: backend}
		spec := experiment.CampaignSpec(driver, opts)
		spec.Name = "bench"

		// Warm the per-campaign caches (enumeration, spec compilation) so
		// the measurement is the steady-state hot path.
		if _, _, err := wl.Expand(spec); err != nil {
			return err
		}

		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		store := campaign.NewMemStore()
		sum, err := campaign.Run(spec, wl, store, campaign.Options{Workers: *workers})
		if err != nil {
			return fmt.Errorf("bench %s: %w", driver, err)
		}
		elapsed := time.Since(start).Seconds()
		runtime.ReadMemStats(&after)

		boots := sum.Ran
		d := BenchDriver{
			Driver:     driver,
			Boots:      boots,
			ElapsedSec: elapsed,
		}
		if boots > 0 && elapsed > 0 {
			d.BootsPerSec = float64(boots) / elapsed
			d.AllocsPerBoot = float64(after.Mallocs-before.Mallocs) / float64(boots)
			d.BytesPerBoot = float64(after.TotalAlloc-before.TotalAlloc) / float64(boots)
		}
		report.Drivers = append(report.Drivers, d)
		report.Total.Boots += boots
		report.Total.ElapsedSec += elapsed
		fmt.Printf("bench %-14s %5d boots  %8.1f boots/s  %8.0f allocs/boot  %10.0f B/boot\n",
			driver, d.Boots, d.BootsPerSec, d.AllocsPerBoot, d.BytesPerBoot)
	}
	report.Total.Driver = "total"
	if report.Total.Boots > 0 && report.Total.ElapsedSec > 0 {
		report.Total.BootsPerSec = float64(report.Total.Boots) / report.Total.ElapsedSec
		var allocs, bytes float64
		for _, d := range report.Drivers {
			allocs += d.AllocsPerBoot * float64(d.Boots)
			bytes += d.BytesPerBoot * float64(d.Boots)
		}
		report.Total.AllocsPerBoot = allocs / float64(report.Total.Boots)
		report.Total.BytesPerBoot = bytes / float64(report.Total.Boots)
	}
	fmt.Printf("bench %-14s %5d boots  %8.1f boots/s  %8.0f allocs/boot  %10.0f B/boot\n",
		"total", report.Total.Boots, report.Total.BootsPerSec,
		report.Total.AllocsPerBoot, report.Total.BytesPerBoot)

	if *jsonOut {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("bench report written to %s\n", *out)
	}
	return nil
}
