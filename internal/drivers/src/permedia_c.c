/*
 * permedia_c.c — traditional hand-written Permedia 2 frame-buffer driver.
 *
 * Everything the Devil re-engineering derives from the specification is
 * spelled out by hand here: the dword register offsets of the control
 * aperture, the reset-busy bit, the write-1-to-clear interrupt flags,
 * and the input-FIFO flow control against the free-space register. The
 * workload is chip reset, video-timing bring-up, a FIFO-fed render
 * script, and a DMA transfer acknowledged through the interrupt flags.
 */

//@hw
#define GFX_RESET    0x8000
#define GFX_INTEN    0x8001
#define GFX_INTFLAG  0x8002
#define GFX_FIFOSPC  0x8003
#define GFX_DMAADDR  0x8005
#define GFX_DMACNT   0x8006
#define GFX_SCREEN   0x8009
#define GFX_STRIDE   0x800a
#define GFX_HTOTAL   0x800b
#define GFX_VTOTAL   0x8010
#define GFX_VIDCTL   0x8014
#define GFX_FIFO     0x9000

#define INT_DMA      0x01
#define INT_ERROR    0x08
#define INT_VRETRACE 0x10
#define INT_MASK     0x19

#define FIFO_ROOM    32

#define H_TOTAL      100
#define V_TOTAL      64
#define SCREEN_BASE  0
#define STRIDE       640

#define GFX_TIMEOUT  20000
//@endhw

/* Bounded wait for the chip to leave the reset phase. */
static int wait_reset_done(void)
{
    int t;
    //@hw
    for (t = 0; t < GFX_TIMEOUT; t++) {
        if ((inl(GFX_RESET) >> 31) == 0) {
            return 0;
        }
    }
    //@endhw
    return 1;
}

/* Bounded wait for an interrupt flag. */
static int wait_flag(int mask)
{
    int t;
    //@hw
    for (t = 0; t < GFX_TIMEOUT; t++) {
        if (inl(GFX_INTFLAG) & mask) {
            return 0;
        }
    }
    //@endhw
    return 1;
}

/* Bounded wait for free space in the input FIFO. */
static int fifo_wait(void)
{
    int t;
    //@hw
    for (t = 0; t < GFX_TIMEOUT; t++) {
        if (inl(GFX_FIFOSPC) != 0) {
            return 0;
        }
    }
    //@endhw
    return 1;
}

/* Bounded wait for the graphics core to consume the whole FIFO. */
static int fifo_drain(void)
{
    int t;
    //@hw
    for (t = 0; t < GFX_TIMEOUT; t++) {
        if (inl(GFX_FIFOSPC) == FIFO_ROOM) {
            return 0;
        }
    }
    //@endhw
    return 1;
}

int gfx_init(void)
{
    //@hw
    outl(1, GFX_RESET);
    if (wait_reset_done()) {
        printk("permedia: reset stuck");
        return 1;
    }
    outl(SCREEN_BASE, GFX_SCREEN);
    outl(STRIDE, GFX_STRIDE);
    outl(H_TOTAL, GFX_HTOTAL);
    outl(V_TOTAL, GFX_VTOTAL);
    outl(1, GFX_VIDCTL);
    outl(INT_MASK, GFX_INTEN);
    if (wait_flag(INT_VRETRACE)) {
        printk("permedia: no vertical retrace");
        return 1;
    }
    outl(INT_VRETRACE, GFX_INTFLAG);
    //@endhw
    printk("permedia: chip up");
    return 0;
}

/* Feed words render commands into the GP input FIFO under flow control,
 * then wait for the core to consume them all. */
int gfx_render(int words)
{
    int w;
    //@hw
    for (w = 0; w < words; w++) {
        if (fifo_wait()) {
            printk("permedia: fifo stalled");
            return 1;
        }
        outl(w, GFX_FIFO);
    }
    if (fifo_drain()) {
        printk("permedia: fifo never drained");
        return 1;
    }
    //@endhw
    return 0;
}

/* Run one DMA transfer of count dwords from addr and acknowledge the
 * completion interrupt. */
int gfx_dma(int addr, int count)
{
    //@hw
    outl(addr, GFX_DMAADDR);
    outl(count, GFX_DMACNT);
    if (wait_flag(INT_DMA)) {
        printk("permedia: dma timeout");
        return 1;
    }
    outl(INT_DMA, GFX_INTFLAG);
    //@endhw
    return 0;
}
