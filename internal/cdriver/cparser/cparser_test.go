package cparser_test

import (
	"testing"

	"repro/internal/cdriver/cast"
	"repro/internal/cdriver/cparser"
)

func mustParse(t *testing.T, src string) *cast.Program {
	t.Helper()
	prog, errs := cparser.Parse(src)
	if len(errs) != 0 {
		t.Fatalf("parse: %v", errs)
	}
	return prog
}

func TestParseDeclarations(t *testing.T) {
	prog := mustParse(t, `
#define LIMIT 100
static u32 base = 0x1f0;
static inline int add(u8 a, u16 b) { return a + b; }
void nothing(void) { }
`)
	if len(prog.Macros()) != 1 || prog.Macros()[0].Name != "LIMIT" {
		t.Errorf("macros: %v", prog.Macros())
	}
	if len(prog.Funcs()) != 2 {
		t.Fatalf("funcs: %d", len(prog.Funcs()))
	}
	add := prog.Func("add")
	if add == nil || len(add.Params) != 2 || add.Result.Kind != cast.TypeInt {
		t.Errorf("add signature wrong: %+v", add)
	}
	if prog.Func("nothing").Result.Kind != cast.TypeVoid {
		t.Error("void result lost")
	}
}

func TestDevilTypeHeuristic(t *testing.T) {
	prog := mustParse(t, `
int f(Drive_t who) {
    Drive_t other = who;
    u32 x = (u8) 5;
    return 0;
}`)
	f := prog.Func("f")
	if f.Params[0].Type.Kind != cast.TypeDevilStruct || f.Params[0].Type.Name != "Drive_t" {
		t.Errorf("param type: %v", f.Params[0].Type)
	}
	decl := f.Body.Stmts[0].(*cast.DeclStmt)
	if decl.Decl.Type.Name != "Drive_t" {
		t.Errorf("local type: %v", decl.Decl.Type)
	}
}

// TestPrecedence evaluates constant expressions through the parser shape:
// the tree must reflect C precedence.
func TestPrecedence(t *testing.T) {
	prog := mustParse(t, `int f(void) { return 1 | 2 ^ 3 & 4 == 5 << 1 + 2 * 3; }`)
	ret := prog.Func("f").Body.Stmts[0].(*cast.ReturnStmt)
	// Top node must be | (lowest precedence present).
	top, ok := ret.X.(*cast.BinaryExpr)
	if !ok {
		t.Fatalf("return expr is %T", ret.X)
	}
	if top.Op.String() != "|" {
		t.Errorf("top operator = %v, want |", top.Op)
	}
	xor := top.Y.(*cast.BinaryExpr)
	if xor.Op.String() != "^" {
		t.Errorf("second level = %v, want ^", xor.Op)
	}
}

func TestStatements(t *testing.T) {
	prog := mustParse(t, `
int f(int n) {
    int acc = 0;
    int i;
    for (i = 0; i < n; i++) {
        acc += i;
    }
    while (acc > 100) { acc -= 10; }
    do { acc--; } while (acc > 50);
    switch (acc) {
    case 1:
    case 2:
        acc = 0;
        break;
    case 3:
        return 3;
    default:
        acc = acc ? 1 : 2;
    }
    if (acc == 1) { return 1; } else { return acc; }
}`)
	f := prog.Func("f")
	kinds := make([]string, 0, len(f.Body.Stmts))
	for _, s := range f.Body.Stmts {
		switch s.(type) {
		case *cast.DeclStmt:
			kinds = append(kinds, "decl")
		case *cast.ForStmt:
			kinds = append(kinds, "for")
		case *cast.WhileStmt:
			kinds = append(kinds, "while")
		case *cast.DoWhileStmt:
			kinds = append(kinds, "do")
		case *cast.SwitchStmt:
			kinds = append(kinds, "switch")
		case *cast.IfStmt:
			kinds = append(kinds, "if")
		default:
			kinds = append(kinds, "?")
		}
	}
	want := []string{"decl", "decl", "for", "while", "do", "switch", "if"}
	if len(kinds) != len(want) {
		t.Fatalf("statement kinds: %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("stmt %d = %s, want %s", i, kinds[i], want[i])
		}
	}
	sw := f.Body.Stmts[5].(*cast.SwitchStmt)
	if len(sw.Clauses) != 3 {
		t.Fatalf("switch clauses: %d", len(sw.Clauses))
	}
	if len(sw.Clauses[0].Values) != 2 {
		t.Errorf("shared case labels: %d values", len(sw.Clauses[0].Values))
	}
	if sw.Clauses[2].Values != nil {
		t.Error("default clause has values")
	}
}

func TestLiteralValues(t *testing.T) {
	prog := mustParse(t, `int f(void) { return 0x1f0 + 010 + 42 + 'A'; }`)
	ret := prog.Func("f").Body.Stmts[0].(*cast.ReturnStmt)
	sum := 0
	var walk func(e cast.Expr)
	walk = func(e cast.Expr) {
		switch e := e.(type) {
		case *cast.BinaryExpr:
			walk(e.X)
			walk(e.Y)
		case *cast.IntLit:
			sum += int(e.Value)
		}
	}
	walk(ret.X)
	if sum != 0x1f0+8+42+65 {
		t.Errorf("literal sum = %d, want %d", sum, 0x1f0+8+42+65)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`int f( { }`,
		`int f(void) { return }`,
		`int f(void) { x = ; }`,
		`int f(void) { if ( { } }`,
		`int 5func(void) {}`,
		`int f(void) { switch (x) { stray; } }`,
	}
	for _, src := range cases {
		if _, errs := cparser.Parse(src); len(errs) == 0 {
			t.Errorf("%q parsed without errors", src)
		}
	}
}

func TestErrorRecovery(t *testing.T) {
	prog, errs := cparser.Parse(`
int broken(void) { return +; }
int fine(void) { return 1; }
`)
	if len(errs) == 0 {
		t.Fatal("no errors")
	}
	if prog.Func("fine") == nil {
		t.Error("parser did not recover to the next function")
	}
}
