package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestServeEndpoints boots a real listener and exercises all three
// surfaces: /metrics, /status, and pprof.
func TestServeEndpoints(t *testing.T) {
	c := New()
	c.Counter("boots_total", "boots", "driver", "ide_c").Add(3)
	type st struct {
		Done int `json:"done"`
	}
	srv, err := Serve("127.0.0.1:0", c, func() any { return st{Done: 42} })
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != 200 || !strings.Contains(body, `boots_total{driver="ide_c"} 3`) {
		t.Fatalf("/metrics: code %d body:\n%s", code, body)
	}

	code, body = get("/status")
	if code != 200 {
		t.Fatalf("/status: code %d", code)
	}
	var got st
	if err := json.Unmarshal([]byte(body), &got); err != nil || got.Done != 42 {
		t.Fatalf("/status body %q: err %v", body, err)
	}

	if code, _ = get("/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("/debug/pprof/cmdline: code %d", code)
	}

	if code, _ = get("/nope"); code != 404 {
		t.Fatalf("unknown path: code %d, want 404", code)
	}
}
