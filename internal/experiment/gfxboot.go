package experiment

import (
	"fmt"

	"repro/internal/cdriver/cinterp"
	"repro/internal/hw"
	"repro/internal/hw/permedia"
)

// The Permedia 2 experiment lights up the fourth Table-2 device: a
// frame-buffer bring-up workload over the graphics chip's control
// aperture. The boot is reset (with the chip's real reset latency),
// video-timing programming, interrupt enable, then a FIFO-fed render
// script under flow control and a DMA transfer acknowledged through the
// interrupt flags. The kernel — not the driver — holds the expected
// timing values, word counts and DMA parameters, so a driver that
// misprograms the timing generator, overruns the FIFO, drops render
// words or leaves interrupts pending is caught as visible damage: the
// graphics analogue of the busmouse's wild cursor.

// Bus assembly: the 24-dword control aperture and the separate
// graphics-processor input-FIFO window.
const (
	gfxCtrlBase hw.Port = 0x8000
	gfxFIFOBase hw.Port = 0x9000
)

// The ground truth the kernel audits against; the driver sources
// program the same values from their own constants, so a mutated
// literal diverges visibly.
const (
	gfxVTotal   = 64       // vertical total, in lines
	gfxDMAAddr  = 0x200000 // DMA base address
	gfxDMACount = 96       // DMA transfer length in dwords
	gfxIntMask  = 0x19     // DMA | Error | VRetrace enable bits
)

// gfxBatches is the deterministic render script: FIFO word counts the
// kernel asks the driver to feed the graphics processor, sized around
// the 32-word FIFO so the largest batch cannot complete without flow
// control.
var gfxBatches = []int{12, 32, 48}

var gfxWorkload = WorkloadDesc{
	Name:    "permedia",
	Drivers: []string{"permedia_c", "permedia_devil"},
	Spec:    "permedia",
	Bases: map[string]hw.Port{
		"ctrl": gfxCtrlBase,
		"fifo": gfxFIFOBase,
	},
	Build: func(r *Rig) (any, error) {
		gpu := permedia.New(r.Clock)
		if err := r.Bus.Map(gfxCtrlBase, 24, gpu.Control()); err != nil {
			return nil, err
		}
		if err := r.Bus.Map(gfxFIFOBase, 1, gpu.FIFO()); err != nil {
			return nil, err
		}
		return gpu, nil
	},
	Reset: func(dev any) { dev.(*permedia.GPU).Reset() },
	Snapshot: func(dev, snap any) any {
		s, _ := snap.(*permedia.State)
		if s == nil {
			s = &permedia.State{}
		}
		dev.(*permedia.GPU).Snapshot(s)
		return s
	},
	Restore: func(dev, snap any) { dev.(*permedia.GPU).Restore(snap.(*permedia.State)) },
	Run:     runGfxBoot,
}

// runGfxBoot drives the bring-up: initialise (reset, timing, video,
// interrupts), feed the render script through the input FIFO, run one
// DMA transfer, then audit the chip state against the expected script.
func runGfxBoot(r *Rig, ex Engine, res *BootResult) (error, bool) {
	kern, gpu := r.Kern, r.Dev.(*permedia.GPU)
	ret, err := ex.Call("gfx_init")
	if err != nil {
		return err, false
	}
	if ret.Kind == cinterp.ValInt && ret.I != 0 {
		return kern.Panic("permedia: initialisation failed"), false
	}
	damaged := false
	total := 0
	for i, words := range gfxBatches {
		total += words
		v, err := ex.Call("gfx_render", cinterp.IntValue(int64(words)))
		if err != nil {
			return err, false
		}
		if v.Kind == cinterp.ValInt && v.I != 0 {
			kern.Printk(fmt.Sprintf("permedia: render batch %d failed", i))
			damaged = true
		}
	}
	v, err := ex.Call("gfx_dma",
		cinterp.IntValue(gfxDMAAddr), cinterp.IntValue(gfxDMACount))
	if err != nil {
		return err, false
	}
	if v.Kind == cinterp.ValInt && v.I != 0 {
		kern.Printk("permedia: dma transfer failed")
		damaged = true
	}
	// The audit: the chip must hold exactly the state the script implies.
	if !gpu.VideoEnabled() {
		kern.Printk("permedia: video left disabled")
		damaged = true
	}
	if gpu.VTotal() != gfxVTotal {
		kern.Printk(fmt.Sprintf("permedia: vertical total %d, expected %d",
			gpu.VTotal(), gfxVTotal))
		damaged = true
	}
	if gpu.IntEnable() != gfxIntMask {
		kern.Printk(fmt.Sprintf("permedia: interrupt mask %#x, expected %#x",
			gpu.IntEnable(), gfxIntMask))
		damaged = true
	}
	if gpu.Drained() != uint64(total) {
		kern.Printk(fmt.Sprintf("permedia: core consumed %d words, expected %d",
			gpu.Drained(), total))
		damaged = true
	}
	if gpu.DMAAddress() != gfxDMAAddr || gpu.DMACount() != 0 {
		kern.Printk(fmt.Sprintf("permedia: dma state addr=%#x count=%d, expected addr=%#x count=0",
			gpu.DMAAddress(), gpu.DMACount(), uint32(gfxDMAAddr)))
		damaged = true
	}
	if gpu.IntFlags()&(permedia.IntDMA|permedia.IntError) != 0 {
		kern.Printk(fmt.Sprintf("permedia: interrupts left pending: %#x", gpu.IntFlags()))
		damaged = true
	}
	kern.Printk("permedia: bring-up complete")
	return nil, damaged
}
